// Quickstart: run the paper's Redis model under Thermostat with a 3%
// tolerable slowdown, then compare against an all-DRAM baseline.
//
//	go run ./examples/quickstart
//
// Pass -telemetry to attach a collector to the managed run and print its
// per-epoch metric table (one row per scan interval: accesses, faults,
// demotions, migration traffic).
package main

import (
	"flag"
	"fmt"
	"log"

	"thermostat"
)

func main() {
	telemetryFlag := flag.Bool("telemetry", false, "record per-epoch telemetry for the managed run and print the epoch table")
	flag.Parse()

	// The Redis model's full footprint is 17.2GB (Table 2); divide by 64
	// so the demo runs in seconds. Tier capacities leave headroom.
	const scale = 64
	const footprint = uint64(18<<30) / scale

	run := func(policy thermostat.Policy, rec thermostat.TelemetryRecorder) *thermostat.RunResult {
		cfg := thermostat.DefaultMachineConfig(footprint+64<<20, footprint)
		// Scale the TLB and LLC with the footprint so translation reach
		// stays proportional (see DESIGN.md on scaling).
		cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 16
		cfg.LLC.SizeBytes = (45 << 20) / scale
		cfg.Recorder = rec
		m, err := thermostat.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		app, err := thermostat.NewWorkload(thermostat.Redis(), scale, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := thermostat.Run(m, app, policy, thermostat.RunConfig{
			DurationNs: 20e9, // 20 simulated seconds
			WarmupNs:   4e9,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Thermostat's single input: the tolerable slowdown. Compress the 30s
	// scan interval to 1s so the short demo completes several sampling
	// periods.
	params := thermostat.DefaultParams()
	params.TolerableSlowdownPct = 3
	params.SamplePeriodNs = 1e9
	engine, err := thermostat.NewEngine(params, 42)
	if err != nil {
		log.Fatal(err)
	}

	var col *thermostat.TelemetryCollector
	var rec thermostat.TelemetryRecorder
	if *telemetryFlag {
		col = thermostat.NewTelemetryCollector()
		rec = col
	}

	baseline := run(thermostat.NullPolicy{Interval: 1e9}, nil)
	managed := run(engine, rec)

	fp := managed.FinalFootprint
	fmt.Printf("application:        redis (hotspot: 0.01%% of keys take 90%% of traffic)\n")
	fmt.Printf("baseline:           %.0f ops/s, all %d MB in DRAM\n",
		baseline.Throughput, baseline.FinalFootprint.Total()>>20)
	fmt.Printf("thermostat:         %.0f ops/s\n", managed.Throughput)
	fmt.Printf("measured slowdown:  %.2f%% (target 3%%)\n",
		thermostat.Slowdown(baseline, managed)*100)
	fmt.Printf("cold data found:    %d MB (%.0f%% of footprint) now in slow memory\n",
		fp.Cold()>>20, fp.ColdFraction()*100)
	fmt.Printf("  as 2MB pages:     %d MB\n", fp.Cold2M>>20)
	fmt.Printf("  as split 4KB:     %d MB (pages mid-sampling when demoted)\n", fp.Cold4K>>20)
	st := engine.Stats()
	fmt.Printf("engine:             %d pages sampled, %d demotions, %d corrections\n",
		st.Sampled, st.Demotions, st.Promotions)

	if col != nil {
		fmt.Printf("\ntelemetry:          %d events over %d epochs\n", col.EventCount(), col.Epoch())
		fmt.Println(col.EpochTable())
	}
}
