// database: the TPC-C scenario from the paper's motivation — an OLTP
// database whose LINEITEM table dominates the footprint but is almost never
// read. Thermostat finds it and moves it to slow memory while the hot
// tables and indexes stay in DRAM; the example then retunes the slowdown
// knob at runtime through the cgroup interface (§5.1).
//
//	go run ./examples/database
package main

import (
	"fmt"
	"log"

	"thermostat"
)

func main() {
	const scale = 16
	spec := thermostat.MySQLTPCC()

	cfg := thermostat.DefaultMachineConfig(800<<20, 700<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 4, 64
	cfg.LLC.SizeBytes = 3 << 20
	m, err := thermostat.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	app, err := thermostat.NewWorkload(spec, scale, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Build the engine inside an explicit cgroup so the knob can move at
	// runtime.
	params := thermostat.DefaultParams()
	params.SamplePeriodNs = 15e8 // 1.5s scan interval for the short demo
	group, err := thermostat.NewGroup("oltp", params)
	if err != nil {
		log.Fatal(err)
	}
	engine := thermostat.NewEngineInGroup(group, 5)

	// Phase 1: conservative 3% target.
	res1, err := thermostat.Run(m, app, engine, thermostat.RunConfig{DurationNs: 30e9})
	if err != nil {
		log.Fatal(err)
	}
	fp1 := res1.FinalFootprint
	fmt.Printf("phase 1 (3%% target):  %.0f ops/s, cold %4.0f%% of %d MB\n",
		res1.Throughput, fp1.ColdFraction()*100, fp1.Total()>>20)

	// Phase 2: the administrator decides 10% slowdown is acceptable
	// tonight (batch window) — retune live, keep running on the same
	// machine and page tables. More lukewarm data becomes movable, but
	// TPCC saturates: the remaining tables are simply hot (Figure 11).
	if err := group.SetTolerableSlowdown(10); err != nil {
		log.Fatal(err)
	}
	start := m.Clock()
	next := start + params.SamplePeriodNs
	var ops uint64
	for m.Clock()-start < 30e9 {
		v, w := app.Next()
		if _, err := m.Access(v, w); err != nil {
			log.Fatal(err)
		}
		m.AdvanceClock(spec.ComputeNs)
		ops++
		if now := m.Clock(); now >= next {
			if err := app.Tick(m, now); err != nil {
				log.Fatal(err)
			}
			if err := engine.Tick(m, now); err != nil {
				log.Fatal(err)
			}
			next += params.SamplePeriodNs
		}
	}
	fp2 := engine.Footprint(m)
	fmt.Printf("phase 2 (10%% target): %.0f ops/s, cold %4.0f%% of %d MB\n",
		float64(ops)*1e9/float64(m.Clock()-start), fp2.ColdFraction()*100, fp2.Total()>>20)

	st := engine.Stats()
	fmt.Printf("\nlifetime: %d pages sampled, %d demotions, %d corrections\n",
		st.Sampled, st.Demotions, st.Promotions)
	fmt.Println("\nLINEITEM-style history data is what moved: it is large, contiguous and")
	fmt.Println("nearly unread, so its estimated access rate sorts to the bottom of every")
	fmt.Println("sampling period. Raising the knob adds lukewarm order-history pages until")
	fmt.Println("the cold fraction saturates — everything left is genuinely hot.")
}
