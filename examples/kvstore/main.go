// kvstore: build a custom key-value store workload against the public API —
// a skewed-popularity store with an expiry scanner, the access pattern that
// defeats naive Accessed-bit placement — and compare three policies:
// all-DRAM, naive idle-demote, and Thermostat.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"thermostat"
)

// store is a hand-rolled thermostat.App: a key-value store whose values
// live in a big hash-table arena. 95% of lookups hit a Zipfian-popular key
// set; a background expiry scanner cycles through the entire arena.
type store struct {
	spec thermostat.WorkloadSpec
	app  *thermostat.Workload
}

func newStore() *store {
	// Compose the workload from the library's segment vocabulary.
	spec := thermostat.WorkloadSpec{
		Name:      "kvstore",
		ComputeNs: 2000,
		Segments: []thermostat.Segment{
			{Name: "arena", Bytes: 1 << 30, Weight: 0.95, Picker: &thermostat.ZipfPicker{}, WriteFrac: 0.2},
			{Name: "expiry", Bytes: 3 << 30, Weight: 0.05, Picker: &thermostat.SweepPicker{Dwell: 16}},
		},
	}
	return &store{spec: spec}
}

func main() {
	const fast, slow = 6 << 30 / 16, 5 << 30 / 16

	runUnder := func(policy thermostat.Policy) *thermostat.RunResult {
		cfg := thermostat.DefaultMachineConfig(fast, slow)
		cfg.TLB.L1Entries, cfg.TLB.L2Entries = 4, 32
		cfg.LLC.SizeBytes = 4 << 20
		m, err := thermostat.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		s := newStore()
		app, err := thermostat.NewWorkload(s.spec, 16, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := thermostat.Run(m, app, policy, thermostat.RunConfig{
			DurationNs: 25e9,
			WarmupNs:   5e9,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	params := thermostat.DefaultParams()
	params.SamplePeriodNs = 1e9
	engine, err := thermostat.NewEngine(params, 3)
	if err != nil {
		log.Fatal(err)
	}

	baseline := runUnder(thermostat.NullPolicy{Interval: 1e9})
	naive := runUnder(&thermostat.IdleDemote{Interval: 25e8, IdleScans: 4})
	managed := runUnder(engine)

	fmt.Println("policy        throughput    slowdown   cold")
	show := func(name string, r *thermostat.RunResult) {
		fmt.Printf("%-12s  %9.0f/s   %6.2f%%   %4.0f%%\n",
			name, r.Throughput,
			thermostat.Slowdown(baseline, r)*100,
			r.FinalFootprint.ColdFraction()*100)
	}
	show("all-dram", baseline)
	show("idle-demote", naive)
	show("thermostat", managed)
	fmt.Println()
	fmt.Println("The expiry scanner revisits every page within the idle window, so to an")
	fmt.Println("Accessed-bit scan nothing ever looks idle: idle-demote strands everything")
	fmt.Println("in DRAM (and with a longer window it would demote pages the scanner is")
	fmt.Println("about to revisit at full speed). Thermostat instead measures per-page")
	fmt.Println("rates, sees that the sweep's traffic is thinly spread, and safely moves")
	fmt.Println("half the footprint while keeping the slowdown near the 3% target.")
}
