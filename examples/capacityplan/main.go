// capacityplan: use the simulator as a provisioning tool (§6's "merits of
// slow memory software-emulation"): before buying slow memory, sweep
// slowdown targets and price points for your workload and see whether the
// cost savings are worth it.
//
//	go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"thermostat"
	"thermostat/internal/pricing"
)

func main() {
	const scale = 32
	spec := thermostat.Cassandra(thermostat.WriteHeavy)

	baselineThroughput := 0.0
	fmt.Println("workload: cassandra (write-heavy), 8GB RSS + 4GB file at paper scale")
	fmt.Println()
	fmt.Println("target  measured  cold    savings at slow-memory price")
	fmt.Println("slowdn  slowdn    frac    1/3x    1/4x    1/5x")
	fmt.Println("------  --------  ------  ------  ------  ------")

	for _, target := range []float64{1, 3, 6, 10} {
		res, cold := run(spec, scale, target)
		if baselineThroughput == 0 {
			base, _ := run(spec, scale, 0) // 0 => all-DRAM baseline
			baselineThroughput = base.Throughput
		}
		slow := baselineThroughput/res.Throughput - 1
		fmt.Printf("%5.0f%%  %7.2f%%  %5.1f%%", target, slow*100, cold*100)
		for _, ratio := range pricing.PaperRatios {
			s, err := pricing.Savings(cold, ratio)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5.1f%%", s*100)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Reading the table: pick the row whose measured slowdown your SLA absorbs,")
	fmt.Println("then check the savings column for the slow-memory price you were quoted.")
	fmt.Println("If memory is ~20% of system cost, savings must exceed slowdown·(80/20) to")
	fmt.Println("be a net win (see pricing.BreakEvenSlowdown).")
}

func run(spec thermostat.WorkloadSpec, scale uint64, targetPct float64) (*thermostat.RunResult, float64) {
	cfg := thermostat.DefaultMachineConfig(700<<20, 600<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 32
	cfg.LLC.SizeBytes = 2 << 20
	m, err := thermostat.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	app, err := thermostat.NewWorkload(spec, scale, 9)
	if err != nil {
		log.Fatal(err)
	}
	var pol thermostat.Policy = thermostat.NullPolicy{Interval: 1e9}
	if targetPct > 0 {
		params := thermostat.DefaultParams()
		params.TolerableSlowdownPct = targetPct
		params.SamplePeriodNs = 1e9
		eng, err := thermostat.NewEngine(params, 13)
		if err != nil {
			log.Fatal(err)
		}
		pol = eng
	}
	res, err := thermostat.Run(m, app, pol, thermostat.RunConfig{
		DurationNs: 45e9, WarmupNs: 10e9,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res, res.MeanColdFraction(10e9)
}
