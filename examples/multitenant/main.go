// multitenant: the cloud-provider scenario from the paper's introduction —
// a host co-locates two customers' workloads and wants to substitute cheap
// memory transparently, per customer, with per-cgroup slowdown SLAs. Each
// tenant gets its own Thermostat engine scoped to its own pages; both share
// one machine (one TLB, one LLC, one pair of memory tiers).
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"thermostat"
)

func main() {
	const scale = 32

	cfg := thermostat.DefaultMachineConfig(1300<<20, 1200<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 32
	cfg.LLC.SizeBytes = 2 << 20
	m, err := thermostat.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Tenant 1: an OLTP database with a strict 1% SLA.
	dbApp, err := thermostat.NewWorkload(thermostat.MySQLTPCC(), scale, 21)
	if err != nil {
		log.Fatal(err)
	}
	dbParams := thermostat.DefaultParams()
	dbParams.TolerableSlowdownPct = 1
	dbParams.SamplePeriodNs = 1e9
	dbGroup, err := thermostat.NewGroup("tenant-db", dbParams)
	if err != nil {
		log.Fatal(err)
	}
	dbEngine := thermostat.NewEngineInGroup(dbGroup, 1)
	dbEngine.SetScope(dbApp.Regions)

	// Tenant 2: a batch analytics job that tolerates 10%.
	batchApp, err := thermostat.NewWorkload(thermostat.InMemAnalytics(), scale, 22)
	if err != nil {
		log.Fatal(err)
	}
	batchParams := thermostat.DefaultParams()
	batchParams.TolerableSlowdownPct = 10
	batchParams.SamplePeriodNs = 1e9
	batchGroup, err := thermostat.NewGroup("tenant-batch", batchParams)
	if err != nil {
		log.Fatal(err)
	}
	batchEngine := thermostat.NewEngineInGroup(batchGroup, 2)
	batchEngine.SetScope(batchApp.Regions)

	res, err := thermostat.RunMulti(m, []thermostat.Tenant{
		{App: dbApp, Policy: dbEngine},
		{App: batchApp, Policy: batchEngine},
	}, thermostat.RunConfig{DurationNs: 30e9, WindowNs: 1e9})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tenant      sla    throughput   cold    demoted  corrected")
	for i, t := range res.Tenants {
		eng := dbEngine
		sla := "1%"
		if i == 1 {
			eng = batchEngine
			sla = "10%"
		}
		st := eng.Stats()
		fmt.Printf("%-10s  %-4s  %9.0f/s  %5.1f%%  %7d  %9d\n",
			t.AppName, sla, t.Throughput,
			t.Footprint.ColdFraction()*100, st.Demotions, st.Promotions)
	}
	fmt.Println()
	fmt.Printf("shared slow tier now holds %d MB across both tenants\n",
		(res.Tenants[0].Footprint.Cold()+res.Tenants[1].Footprint.Cold())>>20)
	fmt.Println()
	fmt.Println("Each engine samples, classifies, and corrects only inside its own cgroup's")
	fmt.Println("address ranges; fault counts on the shared trap are consumed as per-engine")
	fmt.Println("deltas, so neither tenant's monitoring disturbs the other's.")
}
