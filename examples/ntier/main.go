// N-tier demo: run the Redis model on a three-tier DRAM/CXL/NVM hierarchy.
// Thermostat's engine demotes cold pages one tier at a time — pages that
// stay idle in CXL sink on to NVM, and reheated pages climb back toward
// DRAM — so the footprint spreads across the hierarchy by measured access
// rate, and each tier's cheaper capacity cuts the memory bill.
//
//	go run ./examples/ntier
package main

import (
	"fmt"
	"log"

	"thermostat"
)

func main() {
	// The Redis model's footprint is 17.2GB (Table 2); divide by 64 so the
	// demo runs in seconds. Each tier could hold the whole footprint —
	// placement is driven by access rates, not capacity pressure.
	const scale = 64
	const footprint = uint64(18<<30) / scale

	cfg := thermostat.DefaultTieredConfig(
		thermostat.DRAMTier(footprint+64<<20),
		thermostat.CXLTier(footprint),
		thermostat.NVMTier(footprint),
	)
	// Device mode charges each tier's own latency (80/250/1000ns); the
	// paper's fault-based emulation knows only one slow latency.
	cfg.Mode = thermostat.Device
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 16
	cfg.LLC.SizeBytes = (45 << 20) / scale
	m, err := thermostat.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	app, err := thermostat.NewWorkload(thermostat.Redis(), scale, 1)
	if err != nil {
		log.Fatal(err)
	}

	params := thermostat.DefaultParams()
	params.TolerableSlowdownPct = 3
	params.SamplePeriodNs = 1e9
	engine, err := thermostat.NewEngine(params, 42)
	if err != nil {
		log.Fatal(err)
	}

	res, err := thermostat.Run(m, app, engine, thermostat.RunConfig{
		DurationNs: 20e9, // 20 simulated seconds
		WarmupNs:   4e9,
	})
	if err != nil {
		log.Fatal(err)
	}

	sys := m.Memory()
	fp := res.FinalFootprint
	fmt.Printf("hierarchy:   ")
	for i := 0; i < sys.NumTiers(); i++ {
		t := sys.Tier(thermostat.TierID(i))
		if i > 0 {
			fmt.Printf(" -> ")
		}
		fmt.Printf("%s (%dns)", t.Name(), t.Spec().ReadLatency)
	}
	fmt.Println()
	fmt.Printf("throughput:  %.0f ops/s\n", res.Throughput)

	total := fp.Total()
	for i, tb := range fp.ByTier {
		t := sys.Tier(thermostat.TierID(i))
		fmt.Printf("  %-5s %5d MB  (%4.1f%% of footprint, cost %.2fx DRAM)\n",
			t.Name()+":", tb.Total()>>20, float64(tb.Total())/float64(total)*100,
			t.Spec().CostPerGB)
	}

	// Per-tier-pair migration traffic: which hops actually moved data.
	meter := m.Migrator().Meter()
	for _, p := range meter.Pairs() {
		tr := meter.PairTraffic(p.Src, p.Dst)
		fmt.Printf("moved %s -> %s: %d MB (%d huge pages)\n",
			p.Src, p.Dst, tr.Bytes>>20, tr.Pages2M)
	}

	st := engine.Stats()
	fmt.Printf("engine:      %d sampled, %d demotions, %d corrections, %d sinks to lower tiers\n",
		st.Sampled, st.Demotions, st.Promotions, st.Sinks)
}
