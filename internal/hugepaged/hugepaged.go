// Package hugepaged models the kernel's khugepaged daemon: a background
// scanner that finds 2MB-aligned spans fully mapped by 4KB pages and
// collapses them into transparent huge pages by copy — allocate a fresh 2MB
// frame in the same tier, move the 512 children onto it, and install a
// single PMD mapping.
//
// Thermostat assumes THP is active (its benefits are the paper's Table 1);
// khugepaged is the substrate mechanism that repairs huge mappings when an
// application starts life with 4KB pages or after mappings fragment. The
// daemon skips pages Thermostat has split for sampling (SplitSampled) and
// anything poisoned — exactly as the real khugepaged skips pages with
// special PTE bits.
package hugepaged

import (
	"errors"

	"thermostat/internal/addr"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
	"thermostat/internal/sim"
	"thermostat/internal/stats"
	"thermostat/internal/telemetry"
)

// Modeled costs: a collapse copies 2MB and rewrites one PMD.
const (
	collapseCopyCostNs = 250_000 // ~2MB at ~8GB/s
	scanCostPerLeafNs  = 50
)

// Daemon is the collapse scanner. It implements sim.Policy (footprint
// reporting delegates to whole-table accounting) and is typically stacked
// under a placement policy with sim.Stack.
type Daemon struct {
	// Interval is the scan period (khugepaged's scan_sleep_millisecs).
	Interval int64
	// MaxCollapsesPerScan bounds work per wakeup (0 = 8, khugepaged's
	// pages_to_scan spirit).
	MaxCollapsesPerScan int

	m         *sim.Machine
	collapses stats.Counter
	skipped   stats.Counter
}

// Name implements sim.Policy.
func (d *Daemon) Name() string { return "khugepaged" }

// IntervalNs implements sim.Policy.
func (d *Daemon) IntervalNs() int64 { return d.Interval }

// Attach implements sim.Policy.
func (d *Daemon) Attach(m *sim.Machine) error {
	if d.Interval <= 0 {
		return errors.New("hugepaged: non-positive interval")
	}
	if d.MaxCollapsesPerScan <= 0 {
		d.MaxCollapsesPerScan = 8
	}
	d.m = m
	return nil
}

// Collapses returns the number of successful collapses.
func (d *Daemon) Collapses() uint64 { return d.collapses.Value() }

// Skipped returns candidates rejected (poisoned, split-sampled, mixed
// tiers, or allocation failure).
func (d *Daemon) Skipped() uint64 { return d.skipped.Value() }

// candidate describes one 2MB-aligned span of 4KB mappings.
type candidate struct {
	children int
	poisoned bool
	sampled  bool
	tier     mem.TierID
	mixed    bool
}

// Tick implements sim.Policy: scan for collapse candidates and collapse up
// to the per-scan budget.
func (d *Daemon) Tick(m *sim.Machine, now int64) error {
	pt := m.PageTable()
	cands := map[addr.Virt]*candidate{}
	leaves := 0
	pt.Scan(func(base addr.Virt, e *pagetable.Entry, lvl pagetable.Level) {
		leaves++
		if lvl != pagetable.Level4K {
			return
		}
		hb := base.Base2M()
		c := cands[hb]
		if c == nil {
			c = &candidate{tier: mem.TierOf(e.Frame)}
			cands[hb] = c
		}
		c.children++
		if e.Flags.Has(pagetable.Poisoned) {
			c.poisoned = true
		}
		if e.Flags.Has(pagetable.SplitSampled) {
			c.sampled = true
		}
		if mem.TierOf(e.Frame) != c.tier {
			c.mixed = true
		}
	})
	m.ChargeDaemon(int64(leaves) * scanCostPerLeafNs)

	done := 0
	for hb, c := range cands {
		if done >= d.MaxCollapsesPerScan {
			break
		}
		if c.children != addr.PagesPerHuge || c.poisoned || c.sampled || c.mixed {
			d.skipped.Inc()
			continue
		}
		if err := d.collapse(hb, c.tier); err != nil {
			// Allocation pressure: skip, retry next scan.
			d.skipped.Inc()
			continue
		}
		done++
	}
	return nil
}

// collapse copy-collapses the span at hb into a huge mapping.
func (d *Daemon) collapse(hb addr.Virt, tier mem.TierID) error {
	pt := d.m.PageTable()
	t := d.m.Memory().Tier(tier)
	newFrame, err := t.Alloc2M()
	if err != nil {
		return err
	}
	// Move children onto the fresh contiguous frame, remembering the old
	// frames to free.
	old := make([]addr.Phys, 0, addr.PagesPerHuge)
	for i := 0; i < addr.PagesPerHuge; i++ {
		cv := hb + addr.Virt(uint64(i)*addr.PageSize4K)
		prev, err := pt.Remap(cv, newFrame+addr.Phys(uint64(i)*addr.PageSize4K))
		if err != nil {
			// Roll back the frames moved so far (restore mappings).
			for j := 0; j < i; j++ {
				rv := hb + addr.Virt(uint64(j)*addr.PageSize4K)
				if _, rerr := pt.Remap(rv, old[j]); rerr != nil {
					panic("hugepaged: rollback failed: " + rerr.Error())
				}
			}
			t.Free2M(newFrame)
			return err
		}
		old = append(old, prev)
		d.m.TLB().Invalidate(cv, d.m.VPID())
	}
	if err := pt.Collapse(hb); err != nil {
		// Should be impossible after contiguous remap; fail loudly.
		panic("hugepaged: collapse after remap failed: " + err.Error())
	}
	for _, p := range old {
		t.Free4K(p)
	}
	d.m.ChargeDaemon(collapseCopyCostNs)
	d.collapses.Inc()
	if rec := d.m.Recorder(); rec != nil {
		rec.Event(telemetry.Event{
			Kind: telemetry.KindHugePageCollapse, TimeNs: d.m.Clock(), Page: hb,
		})
	}
	return nil
}

// Footprint implements sim.Policy.
func (d *Daemon) Footprint(m *sim.Machine) sim.Footprint {
	return sim.ScanFootprint(m, nil)
}
