package hugepaged

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/mem"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
)

func newMachine(t *testing.T) *sim.Machine {
	t.Helper()
	cfg := sim.DefaultConfig(128<<20, 64<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 8
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func attach(t *testing.T, m *sim.Machine) *Daemon {
	t.Helper()
	d := &Daemon{Interval: 1e8, MaxCollapsesPerScan: 64}
	if err := d.Attach(m); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCollapsesFull4KSpans(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	d := attach(t, m)
	// 8MB of native 4KB mappings: four full 2MB spans.
	if _, err := m.AllocRegion(8<<20, false); err != nil {
		t.Fatal(err)
	}
	if got := m.PageTable().Count4K(); got != 4*addr.PagesPerHuge {
		t.Fatalf("setup: %d 4K leaves", got)
	}
	if err := d.Tick(m, 1e8); err != nil {
		t.Fatal(err)
	}
	if d.Collapses() != 4 {
		t.Fatalf("collapses = %d, want 4", d.Collapses())
	}
	if m.PageTable().Count2M() != 4 || m.PageTable().Count4K() != 0 {
		t.Fatalf("post: %d/%d", m.PageTable().Count2M(), m.PageTable().Count4K())
	}
	// No frame leaks, no double-maps.
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// Old 4KB frames were freed: used bytes equal the four huge frames.
	if used := m.Memory().Tier(mem.Fast).Used(); used != 4*addr.PageSize2M {
		t.Fatalf("fast tier used = %d", used)
	}
	// Translations still work.
	if _, err := m.Access(addr.Virt(1)<<40+12345, false); err != nil {
		t.Fatal(err)
	}
}

func TestRespectsPerScanBudget(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	d := &Daemon{Interval: 1e8, MaxCollapsesPerScan: 2}
	if err := d.Attach(m); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocRegion(8<<20, false); err != nil {
		t.Fatal(err)
	}
	if err := d.Tick(m, 1e8); err != nil {
		t.Fatal(err)
	}
	if d.Collapses() != 2 {
		t.Fatalf("collapses = %d, want 2 (budget)", d.Collapses())
	}
	if err := d.Tick(m, 2e8); err != nil {
		t.Fatal(err)
	}
	if d.Collapses() != 4 {
		t.Fatalf("collapses = %d, want 4 after second scan", d.Collapses())
	}
}

func TestSkipsPartialPoisonedAndSampled(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	d := attach(t, m)
	// Partial span: only 1MB of 4K pages in a 2MB region.
	if _, err := m.AllocRegion(1<<20, false); err != nil {
		t.Fatal(err)
	}
	// Full span but poisoned child.
	r2, err := m.AllocRegion(2<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Trap().Poison(r2.Start+4096, m.VPID()); err != nil {
		t.Fatal(err)
	}
	// A split-sampled huge page must not be stolen from the sampler.
	r3, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PageTable().Split(r3.Start); err != nil {
		t.Fatal(err)
	}
	if err := d.Tick(m, 1e8); err != nil {
		t.Fatal(err)
	}
	if d.Collapses() != 0 {
		t.Fatalf("collapses = %d, want 0", d.Collapses())
	}
	if d.Skipped() == 0 {
		t.Fatal("nothing recorded as skipped")
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipsWhenTierFull(t *testing.T) {
	t.Parallel()
	cfg := sim.DefaultConfig(4<<20, 0) // two huge frames only
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := attach(t, m)
	// Fill the tier with 4K mappings: no spare 2M frame for the copy.
	if _, err := m.AllocRegion(4<<20, false); err != nil {
		t.Fatal(err)
	}
	if err := d.Tick(m, 1e8); err != nil {
		t.Fatal(err)
	}
	if d.Collapses() != 0 {
		t.Fatalf("collapsed without room: %d", d.Collapses())
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	if err := (&Daemon{}).Attach(m); err == nil {
		t.Fatal("zero interval accepted")
	}
	d := &Daemon{Interval: 1e9}
	if err := d.Attach(m); err != nil {
		t.Fatal(err)
	}
	if d.MaxCollapsesPerScan != 8 {
		t.Fatalf("default budget = %d", d.MaxCollapsesPerScan)
	}
	if d.Name() != "khugepaged" || d.IntervalNs() != 1e9 {
		t.Fatal("identity wrong")
	}
}

func TestStackedUnderNullPolicyRecoversTHP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	// An app that starts with 4KB mappings: khugepaged collapses its
	// footprint, and throughput improves relative to staying on 4KB pages
	// (the dynamic version of Table 1).
	run := func(withDaemon bool) float64 {
		m := newMachine(t)
		app := &uniformApp{size: 16 << 20, r: rng.New(9), compute: 1000}
		var pol sim.Policy = sim.NullPolicy{Interval: 1e8}
		if withDaemon {
			pol = &sim.Stack{Policies: []sim.Policy{
				sim.NullPolicy{Interval: 1e8},
				&Daemon{Interval: 1e8, MaxCollapsesPerScan: 64},
			}}
		}
		res, err := sim.Run(m, app, pol, sim.RunConfig{DurationNs: 3e9, WarmupNs: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		if withDaemon && res.FinalFootprint.Hot2M == 0 {
			t.Fatal("daemon collapsed nothing")
		}
		return res.Throughput
	}
	plain := run(false)
	helped := run(true)
	if helped <= plain {
		t.Fatalf("khugepaged did not help: %v vs %v", helped, plain)
	}
}

// uniformApp allocates 4KB-backed memory and accesses it uniformly.
type uniformApp struct {
	size    uint64
	r       *rng.PCG
	region  addr.Range
	compute int64
}

func (a *uniformApp) Name() string { return "uniform4k" }
func (a *uniformApp) Init(m *sim.Machine) error {
	reg, err := m.AllocRegion(a.size, false)
	a.region = reg
	return err
}
func (a *uniformApp) Next() (addr.Virt, bool) {
	return a.region.Start + addr.Virt(a.r.Uint64n(a.region.Size())), false
}
func (a *uniformApp) ComputeNs() int64               { return a.compute }
func (a *uniformApp) Tick(*sim.Machine, int64) error { return nil }
