package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"thermostat/internal/addr"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
	"thermostat/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	regions := []RegionInfo{{Size: 4 << 20, Huge: true}, {Size: 8192, Huge: false}}
	w, err := NewWriter(&buf, regions, 2500)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{V: 0x1000, Write: false},
		{V: 0x1040, Write: true},
		{V: 0xfff000, Write: false},
		{V: 0x1000, Write: true}, // negative delta
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 4 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.ComputeNs() != 2500 {
		t.Fatalf("ComputeNs = %d", r.ComputeNs())
	}
	got := r.Regions()
	if len(got) != 2 || got[0] != regions[0] || got[1] != regions[1] {
		t.Fatalf("regions = %v", got)
	}
	for i, want := range recs {
		rec, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec != want {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, []RegionInfo{{Size: 0}}, 0); err == nil {
		t.Fatal("zero-size region accepted")
	}
}

// Property: arbitrary record sequences round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw)%200 + 1
		var buf bytes.Buffer
		w, err := NewWriter(&buf, []RegionInfo{{Size: 1 << 20, Huge: true}}, 100)
		if err != nil {
			return false
		}
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{V: addr.Virt(r.Uint64n(1 << 48)), Write: r.Bool(0.3)}
			if w.Write(recs[i]) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		rd, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for _, want := range recs {
			got, err := rd.Read()
			if err != nil || got != want {
				return false
			}
		}
		_, err = rd.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRecorderAndReplayEquivalence(t *testing.T) {
	// Record a workload's accesses, then replay them on a fresh machine:
	// the replayed stream must drive the machine without unmapped faults
	// and reproduce the same addresses.
	spec := workload.Redis()
	app, err := workload.NewApp(spec, 512, 11)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := sim.New(sim.DefaultConfig(256<<20, 256<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Init(m1); err != nil {
		t.Fatal(err)
	}
	rss, file := app.FootprintBytes()
	_ = file

	var buf bytes.Buffer
	// Region sizes must match what the app actually allocated; rebuild
	// from its segments (each segment one region, rounded to 2MB).
	var regions []RegionInfo
	for _, seg := range spec.Segments {
		size := seg.Bytes / 512
		if size < addr.PageSize2M {
			size = addr.PageSize2M
		}
		size = (size + addr.PageSize2M - 1) / addr.PageSize2M * addr.PageSize2M
		regions = append(regions, RegionInfo{Size: size, Huge: true})
	}
	w, err := NewWriter(&buf, regions, spec.ComputeNs)
	if err != nil {
		t.Fatal(err)
	}
	var recorded []Record
	const n = 20000
	for i := 0; i < n; i++ {
		v, wr := app.Next()
		if err := w.Write(Record{V: v, Write: wr}); err != nil {
			t.Fatal(err)
		}
		recorded = append(recorded, Record{V: v, Write: wr})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = rss

	rp, err := NewReplay("redis-replay", func() (*Reader, error) {
		return NewReader(bytes.NewReader(buf.Bytes()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != n {
		t.Fatalf("Len = %d", rp.Len())
	}
	if rp.ComputeNs() != spec.ComputeNs {
		t.Fatal("compute lost")
	}
	m2, err := sim.New(sim.DefaultConfig(256<<20, 256<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Init(m2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, wr := rp.Next()
		if v != recorded[i].V || wr != recorded[i].Write {
			t.Fatalf("record %d diverged", i)
		}
		if _, err := m2.Access(v, wr); err != nil {
			t.Fatalf("replay access %d: %v", i, err)
		}
	}
	// Wrap-around.
	v, _ := rp.Next()
	if v != recorded[0].V || rp.Loops() != 1 {
		t.Fatal("trace did not wrap")
	}
}

func TestRecorderTees(t *testing.T) {
	spec := workload.WebSearch()
	app, err := workload.NewApp(spec, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.DefaultConfig(128<<20, 128<<20))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []RegionInfo{{Size: 2 << 20, Huge: true}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{App: app, W: w}
	if rec.Name() != "web-search+trace" {
		t.Fatal("recorder name")
	}
	if err := rec.Init(m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rec.Next()
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	if w.Count() != 100 {
		t.Fatalf("recorded %d", w.Count())
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []RegionInfo{{Size: 1 << 20, Huge: true}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplay("empty", func() (*Reader, error) {
		return NewReader(bytes.NewReader(buf.Bytes()))
	}); err == nil {
		t.Fatal("empty trace accepted")
	}
}
