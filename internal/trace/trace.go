// Package trace records and replays memory-access streams in a compact
// binary format (delta-encoded varints), so experiments can be captured
// once and replayed deterministically — the Pin-trace analogue of the
// X-Mem profiling flow the paper contrasts itself with.
//
// A trace carries a header describing the regions the workload allocated;
// replay re-allocates them in order on a fresh machine (whose deterministic
// bump allocator reproduces identical virtual addresses) and streams the
// recorded accesses.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"thermostat/internal/addr"
	"thermostat/internal/sim"
)

// Magic identifies a trace stream.
var magic = [4]byte{'T', 'H', 'R', 'M'}

const version = 1

// RegionInfo describes one allocation the traced workload made, in order.
type RegionInfo struct {
	// Size in bytes.
	Size uint64
	// Huge selects 2MB THP backing.
	Huge bool
}

// Record is one memory access.
type Record struct {
	V     addr.Virt
	Write bool
}

// Writer encodes a trace.
type Writer struct {
	w       *bufio.Writer
	prev    uint64
	count   uint64
	started bool
}

// NewWriter writes the header (regions and per-op compute) and returns a
// record encoder.
func NewWriter(w io.Writer, regions []RegionInfo, computeNs int64) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(version); err != nil {
		return nil, err
	}
	if err := putUvarint(uint64(computeNs)); err != nil {
		return nil, err
	}
	if err := putUvarint(uint64(len(regions))); err != nil {
		return nil, err
	}
	for _, r := range regions {
		if r.Size == 0 {
			return nil, fmt.Errorf("trace: zero-size region in header")
		}
		if err := putUvarint(r.Size); err != nil {
			return nil, err
		}
		h := uint64(0)
		if r.Huge {
			h = 1
		}
		if err := putUvarint(h); err != nil {
			return nil, err
		}
	}
	return &Writer{w: bw}, nil
}

// Write appends one record: zigzag-varint address delta, with the write
// flag folded into the low bit.
func (t *Writer) Write(rec Record) error {
	delta := int64(uint64(rec.V) - t.prev)
	if !t.started {
		delta = int64(uint64(rec.V))
		t.started = true
	}
	t.prev = uint64(rec.V)
	// Zigzag the delta, shift left one, fold the write bit in.
	zz := uint64(delta<<1) ^ uint64(delta>>63)
	payload := zz << 1
	if rec.Write {
		payload |= 1
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], payload)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush drains buffered output; call before closing the destination.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader decodes a trace.
type Reader struct {
	r         *bufio.Reader
	regions   []RegionInfo
	computeNs int64
	prev      uint64
	started   bool
}

// NewReader parses the header and returns a record decoder.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: short magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic")
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	compute, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("trace: absurd region count %d", n)
	}
	regions := make([]RegionInfo, n)
	for i := range regions {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		huge, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		regions[i] = RegionInfo{Size: size, Huge: huge == 1}
	}
	return &Reader{r: br, regions: regions, computeNs: int64(compute)}, nil
}

// Regions returns the header's allocation list.
func (t *Reader) Regions() []RegionInfo {
	return append([]RegionInfo(nil), t.regions...)
}

// ComputeNs returns the recorded per-op compute time.
func (t *Reader) ComputeNs() int64 { return t.computeNs }

// Read returns the next record, or io.EOF at the end of the trace.
func (t *Reader) Read() (Record, error) {
	payload, err := binary.ReadUvarint(t.r)
	if err != nil {
		return Record{}, err
	}
	write := payload&1 == 1
	zz := payload >> 1
	delta := int64(zz>>1) ^ -int64(zz&1)
	var v uint64
	if !t.started {
		v = uint64(delta)
		t.started = true
	} else {
		v = t.prev + uint64(delta)
	}
	t.prev = v
	return Record{V: addr.Virt(v), Write: write}, nil
}

// Recorder wraps a sim.App and tees every access it produces into a Writer.
type Recorder struct {
	App sim.App
	W   *Writer

	err error
}

// Name implements sim.App.
func (r *Recorder) Name() string { return r.App.Name() + "+trace" }

// Init implements sim.App.
func (r *Recorder) Init(m *sim.Machine) error { return r.App.Init(m) }

// ComputeNs implements sim.App.
func (r *Recorder) ComputeNs() int64 { return r.App.ComputeNs() }

// Tick implements sim.App.
func (r *Recorder) Tick(m *sim.Machine, now int64) error { return r.App.Tick(m, now) }

// Next implements sim.App.
func (r *Recorder) Next() (addr.Virt, bool) {
	v, w := r.App.Next()
	if r.err == nil {
		r.err = r.W.Write(Record{V: v, Write: w})
	}
	return v, w
}

// Err reports any write error swallowed during Next.
func (r *Recorder) Err() error { return r.err }

// Replay is a sim.App that replays a trace. When the trace is exhausted it
// wraps to the beginning, so runs may be longer than the recording; Loops
// reports how many times it wrapped. The rewind callback must re-open the
// underlying stream.
type Replay struct {
	name      string
	open      func() (*Reader, error)
	r         *Reader
	records   []Record // fully buffered for cheap looping
	pos       int
	loops     int
	computeNs int64
}

// NewReplay builds a replay app; open must return a fresh Reader over the
// trace each time it is called (it is called once immediately).
func NewReplay(name string, open func() (*Reader, error)) (*Replay, error) {
	r, err := open()
	if err != nil {
		return nil, err
	}
	rp := &Replay{name: name, open: open, r: r, computeNs: r.ComputeNs()}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rp.records = append(rp.records, rec)
	}
	if len(rp.records) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	return rp, nil
}

// Name implements sim.App.
func (p *Replay) Name() string { return p.name }

// ComputeNs implements sim.App.
func (p *Replay) ComputeNs() int64 { return p.computeNs }

// Tick implements sim.App.
func (p *Replay) Tick(*sim.Machine, int64) error { return nil }

// Init implements sim.App: re-allocate the recorded regions in order.
func (p *Replay) Init(m *sim.Machine) error {
	for _, reg := range p.r.Regions() {
		if _, err := m.AllocRegion(reg.Size, reg.Huge); err != nil {
			return err
		}
	}
	return nil
}

// Next implements sim.App.
func (p *Replay) Next() (addr.Virt, bool) {
	rec := p.records[p.pos]
	p.pos++
	if p.pos == len(p.records) {
		p.pos = 0
		p.loops++
	}
	return rec.V, rec.Write
}

// Loops reports how many times the trace wrapped.
func (p *Replay) Loops() int { return p.loops }

// Len returns the number of records in the trace.
func (p *Replay) Len() int { return len(p.records) }
