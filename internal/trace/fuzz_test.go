package trace

import (
	"bytes"
	"io"
	"testing"

	"thermostat/internal/addr"
)

func addrVirt(x uint64) addr.Virt { return addr.Virt(x & 0x0000ffffffffffff) }

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic, and any stream it accepts must decode without error until EOF.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []RegionInfo{{Size: 1 << 20, Huge: true}}, 100)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := w.Write(Record{V: 0x1000 * 3, Write: i%2 == 0}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("THRM"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		for i := 0; i < 1<<16; i++ {
			if _, err := r.Read(); err != nil {
				if err != io.EOF && i == 0 && len(data) > 4 {
					// Truncated records are acceptable errors too.
					return
				}
				return
			}
		}
	})
}

// FuzzRoundTrip checks write-then-read identity for arbitrary address
// deltas derived from fuzz input.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(1<<47))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, []RegionInfo{{Size: 4096, Huge: false}}, 7)
		if err != nil {
			t.Fatal(err)
		}
		recs := []Record{
			{V: addrVirt(a), Write: a%2 == 0},
			{V: addrVirt(b), Write: b%3 == 0},
			{V: addrVirt(c), Write: c%5 == 0},
		}
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range recs {
			got, err := r.Read()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("record %d = %+v, want %+v", i, got, want)
			}
		}
	})
}
