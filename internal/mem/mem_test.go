package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"thermostat/internal/addr"
	"thermostat/internal/rng"
)

func testTier(capacity uint64) *Tier {
	return NewTier(Fast, DefaultDRAM(capacity))
}

func TestTierOf(t *testing.T) {
	s := NewSystem(DefaultDRAM(16<<20), DefaultSlow(16<<20))
	pf, err := s.Tier(Fast).Alloc2M()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.Tier(Slow).Alloc2M()
	if err != nil {
		t.Fatal(err)
	}
	if TierOf(pf) != Fast {
		t.Errorf("fast frame %s attributed to %s", pf, TierOf(pf))
	}
	if TierOf(ps) != Slow {
		t.Errorf("slow frame %s attributed to %s", ps, TierOf(ps))
	}
}

func TestAlloc2MExhaustion(t *testing.T) {
	tier := testTier(4 << 20) // two 2MB frames
	if _, err := tier.Alloc2M(); err != nil {
		t.Fatal(err)
	}
	if _, err := tier.Alloc2M(); err != nil {
		t.Fatal(err)
	}
	if _, err := tier.Alloc2M(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	if tier.Free() != 0 {
		t.Fatalf("Free = %d, want 0", tier.Free())
	}
}

func TestAllocFreeCycle2M(t *testing.T) {
	tier := testTier(2 << 20)
	p, err := tier.Alloc2M()
	if err != nil {
		t.Fatal(err)
	}
	tier.Free2M(p)
	if tier.Used() != 0 {
		t.Fatalf("Used = %d after free", tier.Used())
	}
	p2, err := tier.Alloc2M()
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatalf("re-allocation got %s, want recycled %s", p2, p)
	}
}

func TestAlloc4KBreaksAndCoalesces(t *testing.T) {
	tier := testTier(2 << 20) // single 2MB frame
	var frames []addr.Phys
	for i := 0; i < addr.PagesPerHuge; i++ {
		p, err := tier.Alloc4K()
		if err != nil {
			t.Fatalf("Alloc4K #%d: %v", i, err)
		}
		frames = append(frames, p)
	}
	if tier.Used() != addr.PageSize2M {
		t.Fatalf("Used = %d, want full frame", tier.Used())
	}
	// Frame exhausted at both grains now.
	if _, err := tier.Alloc4K(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("expected exhaustion")
	}
	// Distinctness.
	seen := map[addr.Phys]bool{}
	for _, p := range frames {
		if seen[p] {
			t.Fatalf("duplicate 4K frame %s", p)
		}
		seen[p] = true
	}
	// Free all: should coalesce back to a 2MB allocation.
	for _, p := range frames {
		tier.Free4K(p)
	}
	if tier.Used() != 0 {
		t.Fatalf("Used = %d after freeing all", tier.Used())
	}
	if _, err := tier.Alloc2M(); err != nil {
		t.Fatalf("2MB frame did not coalesce: %v", err)
	}
}

func TestFree4KDoubleFreePanics(t *testing.T) {
	tier := testTier(2 << 20)
	p, _ := tier.Alloc4K()
	tier.Free4K(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	tier.Free4K(p)
}

func TestFree2MUnalignedPanics(t *testing.T) {
	tier := testTier(2 << 20)
	p, _ := tier.Alloc2M()
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Free2M did not panic")
		}
	}()
	tier.Free2M(p + 4096)
}

func TestMixedGrainAccounting(t *testing.T) {
	tier := testTier(8 << 20)
	p2, _ := tier.Alloc2M()
	p4, _ := tier.Alloc4K()
	want := addr.PageSize2M + addr.PageSize4K
	if tier.Used() != want {
		t.Fatalf("Used = %d, want %d", tier.Used(), want)
	}
	tier.Free2M(p2)
	tier.Free4K(p4)
	if tier.Used() != 0 {
		t.Fatalf("Used = %d, want 0", tier.Used())
	}
}

func TestSystemLatencies(t *testing.T) {
	s := NewSystem(DefaultDRAM(4<<20), DefaultSlow(4<<20))
	pf, _ := s.Tier(Fast).Alloc2M()
	ps, _ := s.Tier(Slow).Alloc2M()
	if s.ReadLatency(pf) >= s.ReadLatency(ps) {
		t.Fatal("fast tier should have lower read latency than slow")
	}
	if s.ReadLatency(ps) != 1000 {
		t.Fatalf("slow read latency = %d, want 1000ns", s.ReadLatency(ps))
	}
}

// Property: any interleaving of allocs and frees keeps Used() equal to the
// sum of outstanding allocations, and never hands out overlapping frames.
func TestAllocatorInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tier := testTier(16 << 20)
		var live4K []addr.Phys
		var live2M []addr.Phys
		owned := map[addr.Phys]bool{} // 4K-grain ownership map
		for step := 0; step < 500; step++ {
			switch r.Intn(4) {
			case 0: // alloc 4K
				if p, err := tier.Alloc4K(); err == nil {
					if owned[p] {
						return false
					}
					owned[p] = true
					live4K = append(live4K, p)
				}
			case 1: // alloc 2M
				if p, err := tier.Alloc2M(); err == nil {
					for i := 0; i < addr.PagesPerHuge; i++ {
						q := p + addr.Phys(uint64(i)*addr.PageSize4K)
						if owned[q] {
							return false
						}
						owned[q] = true
					}
					live2M = append(live2M, p)
				}
			case 2: // free 4K
				if len(live4K) > 0 {
					i := r.Intn(len(live4K))
					p := live4K[i]
					live4K[i] = live4K[len(live4K)-1]
					live4K = live4K[:len(live4K)-1]
					delete(owned, p)
					tier.Free4K(p)
				}
			case 3: // free 2M
				if len(live2M) > 0 {
					i := r.Intn(len(live2M))
					p := live2M[i]
					live2M[i] = live2M[len(live2M)-1]
					live2M = live2M[:len(live2M)-1]
					for j := 0; j < addr.PagesPerHuge; j++ {
						delete(owned, p+addr.Phys(uint64(j)*addr.PageSize4K))
					}
					tier.Free2M(p)
				}
			}
			want := uint64(len(live4K))*addr.PageSize4K + uint64(len(live2M))*addr.PageSize2M
			if tier.Used() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter(0)
	m.Record(Demotion, addr.PageSize2M)
	m.Record(Promotion, addr.PageSize4K)
	if m.Bytes(Demotion) != addr.PageSize2M {
		t.Fatalf("demotion bytes = %d", m.Bytes(Demotion))
	}
	if m.TotalBytes() != addr.PageSize2M+addr.PageSize4K {
		t.Fatalf("total bytes = %d", m.TotalBytes())
	}
	if m.Pages2M(Demotion) != 1 || m.Pages4K(Promotion) != 1 {
		t.Fatal("page counts wrong")
	}
	// 2MB over one virtual second = 2MiB/s ≈ 2.097 MB/s.
	got := m.RateMBps(Demotion, 1e9)
	if got < 2.0 || got > 2.2 {
		t.Fatalf("RateMBps = %v", got)
	}
}

// TestAllocContig2M serves contiguous runs from the bump region: before any
// free it hands out exactly the frames successive Alloc2M calls would.
func TestAllocContig2M(t *testing.T) {
	tier := testTier(16 << 20) // eight 2MB frames
	base, err := tier.AllocContig2M(4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tier.Alloc2M()
	if err != nil {
		t.Fatal(err)
	}
	if want := base + addr.Phys(4*addr.PageSize2M); p != want {
		t.Fatalf("Alloc2M after AllocContig2M(4) = %s, want %s", p, want)
	}
	if tier.Used() != 5*addr.PageSize2M {
		t.Fatalf("Used = %d, want %d", tier.Used(), 5*addr.PageSize2M)
	}
	// Freed frames don't defragment into contiguous runs: three bump frames
	// remain, and the freed one doesn't extend them.
	tier.Free2M(base)
	if _, err := tier.AllocContig2M(4); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("AllocContig2M beyond bump region = %v, want ErrOutOfMemory", err)
	}
	if _, err := tier.AllocContig2M(3); err != nil {
		t.Fatal(err)
	}
}

// TestLazyAllocOrder pins the allocation sequence the lazy bump allocator
// must preserve from the eager free list it replaced: frames hand out from
// the tier base upward, and freed frames are reused LIFO before the bump
// pointer advances.
func TestLazyAllocOrder(t *testing.T) {
	tier := testTier(8 << 20)
	var got []addr.Phys
	for i := 0; i < 3; i++ {
		p, err := tier.Alloc2M()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p)
	}
	for i, p := range got {
		if want := addr.Phys(uint64(i) * addr.PageSize2M); p != want {
			t.Fatalf("alloc %d = %s, want %s (base upward)", i, p, want)
		}
	}
	tier.Free2M(got[0])
	tier.Free2M(got[2])
	if p, _ := tier.Alloc2M(); p != got[2] {
		t.Fatalf("first realloc = %s, want LIFO %s", p, got[2])
	}
	if p, _ := tier.Alloc2M(); p != got[0] {
		t.Fatalf("second realloc = %s, want LIFO %s", p, got[0])
	}
	if p, _ := tier.Alloc2M(); p != addr.Phys(3*addr.PageSize2M) {
		t.Fatal("bump pointer did not resume after freed list drained")
	}
}

// TestTierStateBytesO1: allocator state is independent of capacity until
// frames are actually freed or broken.
func TestTierStateBytesO1(t *testing.T) {
	small := testTier(1 << 30)
	huge := testTier(1 << 40)
	if small.StateBytes() != huge.StateBytes() {
		t.Fatalf("state scales with capacity: %d vs %d bytes", small.StateBytes(), huge.StateBytes())
	}
}
