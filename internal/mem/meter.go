package mem

import "thermostat/internal/stats"

// TrafficKind labels why bytes moved between tiers, so the harness can
// report the paper's Table 3 split (migration vs. false-classification).
type TrafficKind int

// Traffic categories.
const (
	// Demotion is cold data moving fast -> slow (planned placement).
	Demotion TrafficKind = iota
	// Promotion is data moving slow -> fast after a mis-classification or
	// working-set change was detected.
	Promotion
	nTrafficKinds
)

// String names the traffic kind.
func (k TrafficKind) String() string {
	switch k {
	case Demotion:
		return "demotion"
	case Promotion:
		return "promotion"
	default:
		return "unknown"
	}
}

// Meter accumulates inter-tier traffic by kind. The simulator's virtual
// clock supplies timestamps; rates are over virtual time.
type Meter struct {
	bytes   [nTrafficKinds]stats.Counter
	pages4K [nTrafficKinds]stats.Counter
	pages2M [nTrafficKinds]stats.Counter
	startNs int64
}

// NewMeter returns a meter whose rate window starts at startNs.
func NewMeter(startNs int64) *Meter { return &Meter{startNs: startNs} }

// Record accounts one page movement of the given kind and size.
func (m *Meter) Record(kind TrafficKind, bytes uint64) {
	m.bytes[kind].Add(bytes)
	switch {
	case bytes >= 2<<20:
		m.pages2M[kind].Add(bytes / (2 << 20))
	default:
		m.pages4K[kind].Add(bytes / 4096)
	}
}

// Bytes returns the total bytes moved for the kind.
func (m *Meter) Bytes(kind TrafficKind) uint64 { return m.bytes[kind].Value() }

// TotalBytes returns all bytes moved.
func (m *Meter) TotalBytes() uint64 {
	var sum uint64
	for k := TrafficKind(0); k < nTrafficKinds; k++ {
		sum += m.bytes[k].Value()
	}
	return sum
}

// RateMBps returns the kind's average rate in MB/s over virtual time
// [startNs, nowNs].
func (m *Meter) RateMBps(kind TrafficKind, nowNs int64) float64 {
	return stats.Rate(m.bytes[kind].Value(), nowNs-m.startNs) / 1e6
}

// Pages2M returns the number of 2MB page moves of the kind.
func (m *Meter) Pages2M(kind TrafficKind) uint64 { return m.pages2M[kind].Value() }

// Pages4K returns the number of 4KB page moves of the kind.
func (m *Meter) Pages4K(kind TrafficKind) uint64 { return m.pages4K[kind].Value() }
