package mem

import (
	"sort"

	"thermostat/internal/stats"
)

// TrafficKind labels why bytes moved between tiers, so the harness can
// report the paper's Table 3 split (migration vs. false-classification).
type TrafficKind int

// Traffic categories.
const (
	// Demotion is cold data moving down the hierarchy (planned placement).
	Demotion TrafficKind = iota
	// Promotion is data moving up the hierarchy after a mis-classification
	// or working-set change was detected.
	Promotion
	nTrafficKinds
)

// String names the traffic kind.
func (k TrafficKind) String() string {
	switch k {
	case Demotion:
		return "demotion"
	case Promotion:
		return "promotion"
	default:
		return "unknown"
	}
}

// TierPair is one ordered (source, destination) tier pair of the migration
// traffic matrix.
type TierPair struct {
	Src, Dst TierID
}

// PairTraffic is the accumulated movement over one tier pair.
type PairTraffic struct {
	Bytes   uint64
	Pages2M uint64
	Pages4K uint64
}

type pairCounters struct {
	bytes   stats.Counter
	pages2M stats.Counter
	pages4K stats.Counter
}

// Meter accumulates inter-tier traffic by kind and by (src, dst) tier pair.
// The simulator's virtual clock supplies timestamps; rates are over virtual
// time.
type Meter struct {
	bytes   [nTrafficKinds]stats.Counter
	pages4K [nTrafficKinds]stats.Counter
	pages2M [nTrafficKinds]stats.Counter
	pairs   map[TierPair]*pairCounters
	startNs int64
}

// NewMeter returns a meter whose rate window starts at startNs.
func NewMeter(startNs int64) *Meter {
	return &Meter{startNs: startNs, pairs: make(map[TierPair]*pairCounters)}
}

// Record accounts one page movement of the given kind and size without pair
// attribution (legacy two-tier entry point; the pair is implied by the
// kind there). Prefer RecordPair.
func (m *Meter) Record(kind TrafficKind, bytes uint64) {
	m.bytes[kind].Add(bytes)
	switch {
	case bytes >= 2<<20:
		m.pages2M[kind].Add(bytes / (2 << 20))
	default:
		m.pages4K[kind].Add(bytes / 4096)
	}
}

// RecordPair accounts one page movement of the given kind and size over the
// (src, dst) tier pair.
func (m *Meter) RecordPair(kind TrafficKind, src, dst TierID, bytes uint64) {
	m.Record(kind, bytes)
	key := TierPair{Src: src, Dst: dst}
	pc, ok := m.pairs[key]
	if !ok {
		pc = &pairCounters{}
		m.pairs[key] = pc
	}
	pc.bytes.Add(bytes)
	switch {
	case bytes >= 2<<20:
		pc.pages2M.Add(bytes / (2 << 20))
	default:
		pc.pages4K.Add(bytes / 4096)
	}
}

// Bytes returns the total bytes moved for the kind.
func (m *Meter) Bytes(kind TrafficKind) uint64 { return m.bytes[kind].Value() }

// TotalBytes returns all bytes moved.
func (m *Meter) TotalBytes() uint64 {
	var sum uint64
	for k := TrafficKind(0); k < nTrafficKinds; k++ {
		sum += m.bytes[k].Value()
	}
	return sum
}

// RateMBps returns the kind's average rate in MB/s over virtual time
// [startNs, nowNs].
func (m *Meter) RateMBps(kind TrafficKind, nowNs int64) float64 {
	return stats.Rate(m.bytes[kind].Value(), nowNs-m.startNs) / 1e6
}

// Pages2M returns the number of 2MB page moves of the kind.
func (m *Meter) Pages2M(kind TrafficKind) uint64 { return m.pages2M[kind].Value() }

// Pages4K returns the number of 4KB page moves of the kind.
func (m *Meter) Pages4K(kind TrafficKind) uint64 { return m.pages4K[kind].Value() }

// Pairs returns every tier pair with recorded traffic, ordered by (src,
// dst) so reports render deterministically.
func (m *Meter) Pairs() []TierPair {
	out := make([]TierPair, 0, len(m.pairs))
	for k := range m.pairs {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// PairTraffic returns the accumulated movement over the (src, dst) pair.
func (m *Meter) PairTraffic(src, dst TierID) PairTraffic {
	pc, ok := m.pairs[TierPair{Src: src, Dst: dst}]
	if !ok {
		return PairTraffic{}
	}
	return PairTraffic{
		Bytes:   pc.bytes.Value(),
		Pages2M: pc.pages2M.Value(),
		Pages4K: pc.pages4K.Value(),
	}
}

// PairRateMBps returns the (src, dst) pair's average rate in MB/s over
// virtual time [startNs, nowNs].
func (m *Meter) PairRateMBps(src, dst TierID, nowNs int64) float64 {
	pc, ok := m.pairs[TierPair{Src: src, Dst: dst}]
	if !ok {
		return 0
	}
	return stats.Rate(pc.bytes.Value(), nowNs-m.startNs) / 1e6
}
