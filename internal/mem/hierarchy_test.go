package mem

import (
	"strings"
	"testing"

	"thermostat/internal/addr"
)

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

func TestNewHierarchy(t *testing.T) {
	specs := []Spec{
		DefaultDRAM(64 << 20),
		DefaultCXL(64 << 20),
		DefaultNVM(64 << 20),
	}
	s, err := NewHierarchy(specs...)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTiers() != 3 {
		t.Fatalf("NumTiers = %d, want 3", s.NumTiers())
	}
	if s.Bottom() != 2 {
		t.Fatalf("Bottom = %d, want 2", s.Bottom())
	}
	for i, want := range []string{"fast", "cxl", "nvm"} {
		if got := s.Tier(TierID(i)).Name(); got != want {
			t.Errorf("tier %d name = %q, want %q", i, got, want)
		}
	}
	// Each tier's allocator hands out frames inside its own address window.
	for i := 0; i < s.NumTiers(); i++ {
		p, err := s.Tier(TierID(i)).Alloc2M()
		if err != nil {
			t.Fatal(err)
		}
		if got := s.TierOf(p); got != TierID(i) {
			t.Errorf("tier %d allocated %s which TierOf maps to %d", i, p, got)
		}
	}
	if _, err := NewHierarchy(); err == nil {
		t.Error("empty hierarchy accepted")
	}
	too := make([]Spec, MaxTiers+1)
	for i := range too {
		too[i] = DefaultSlow(2 << 20)
	}
	if _, err := NewHierarchy(too...); err == nil {
		t.Errorf("%d-tier hierarchy accepted beyond MaxTiers=%d", len(too), MaxTiers)
	}
}

func TestTierOfBounds(t *testing.T) {
	// Package-level TierOf tolerates any address inside the MaxTiers map...
	p := addr.Phys(uint64(MaxTiers-1) << TierShift)
	if got := TierOf(p); got != TierID(MaxTiers-1) {
		t.Fatalf("TierOf(%s) = %d", p, got)
	}
	// ...but panics beyond it: such an address is corrupt.
	mustPanic(t, "physical map", func() {
		TierOf(addr.Phys(uint64(MaxTiers) << TierShift))
	})

	s := NewSystem(DefaultDRAM(4<<20), DefaultSlow(4<<20))
	// System.TierOf additionally validates against the configured depth.
	mustPanic(t, "only 2 tiers are configured", func() {
		s.TierOf(addr.Phys(uint64(2) << TierShift))
	})
	mustPanic(t, "outside the configured 2-tier hierarchy", func() {
		s.Tier(TierID(5))
	})
	mustPanic(t, "outside the configured 2-tier hierarchy", func() {
		s.Tier(TierID(-1))
	})
	mustPanic(t, "outside [0, 8)", func() {
		NewTier(TierID(MaxTiers), DefaultSlow(2<<20))
	})
}

func TestTierNames(t *testing.T) {
	// The registry is seeded with the paper's two tiers.
	if Fast.String() != "fast" || Slow.String() != "slow" {
		t.Fatalf("seed names = %q/%q", Fast.String(), Slow.String())
	}
	// Building a named hierarchy registers deeper tier names so TierID
	// renders them instead of the positional fallback.
	if _, err := NewHierarchy(DefaultDRAM(2<<20), DefaultCXL(2<<20), DefaultNVM(2<<20)); err != nil {
		t.Fatal(err)
	}
	if got := TierID(2).String(); got != "nvm" {
		t.Errorf("TierID(2).String() = %q, want %q", got, "nvm")
	}
	// Tiers no hierarchy has named render positionally.
	if got := TierID(7).String(); got != "tier7" {
		t.Errorf("TierID(7).String() = %q, want %q", got, "tier7")
	}
	// An unnamed spec keeps the tier's positional name.
	s, err := NewHierarchy(Spec{Capacity: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Tier(0).Name(); got != "fast" {
		t.Errorf("unnamed tier 0 Name() = %q, want registry name %q", got, "fast")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		spec, ok := Preset(name, 32<<20)
		if !ok {
			t.Fatalf("Preset(%q) unknown", name)
		}
		if spec.Capacity != 32<<20 {
			t.Errorf("Preset(%q).Capacity = %d", name, spec.Capacity)
		}
		if spec.ReadLatency <= 0 || spec.Bandwidth <= 0 || spec.CostPerGB <= 0 {
			t.Errorf("Preset(%q) has unset fields: %+v", name, spec)
		}
	}
	if _, ok := Preset("hbm", 1<<20); ok {
		t.Error("unknown preset resolved")
	}
	// The hierarchy must get cheaper going down: that ordering is what the
	// savings model depends on.
	dram, _ := Preset("dram", 1<<30)
	cxl, _ := Preset("cxl", 1<<30)
	nvm, _ := Preset("nvm", 1<<30)
	if !(dram.CostPerGB > cxl.CostPerGB && cxl.CostPerGB > nvm.CostPerGB) {
		t.Errorf("preset costs not descending: %v %v %v", dram.CostPerGB, cxl.CostPerGB, nvm.CostPerGB)
	}
	if !(dram.ReadLatency < cxl.ReadLatency && cxl.ReadLatency < nvm.ReadLatency) {
		t.Errorf("preset latencies not ascending: %v %v %v", dram.ReadLatency, cxl.ReadLatency, nvm.ReadLatency)
	}
}

func TestMeterPairs(t *testing.T) {
	m := NewMeter(0)
	m.RecordPair(Demotion, 0, 1, addr.PageSize2M)
	m.RecordPair(Demotion, 1, 2, addr.PageSize2M)
	m.RecordPair(Demotion, 1, 2, addr.PageSize4K)
	m.RecordPair(Promotion, 2, 0, addr.PageSize2M)

	// Legacy per-kind aggregates still see everything.
	if m.Bytes(Demotion) != 2*addr.PageSize2M+addr.PageSize4K {
		t.Fatalf("aggregate demotion bytes = %d", m.Bytes(Demotion))
	}

	pt := m.PairTraffic(1, 2)
	if pt.Bytes != addr.PageSize2M+addr.PageSize4K || pt.Pages2M != 1 || pt.Pages4K != 1 {
		t.Fatalf("PairTraffic(1,2) = %+v", pt)
	}
	if z := m.PairTraffic(0, 2); z.Bytes != 0 {
		t.Fatalf("untouched pair has traffic: %+v", z)
	}

	pairs := m.Pairs()
	want := []TierPair{{0, 1}, {1, 2}, {2, 0}}
	if len(pairs) != len(want) {
		t.Fatalf("Pairs() = %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("Pairs()[%d] = %v, want %v", i, pairs[i], want[i])
		}
	}

	// 2MB+4K over one virtual second across pair (1,2).
	rate := m.PairRateMBps(1, 2, 1e9)
	if rate < 2.0 || rate > 2.2 {
		t.Fatalf("PairRateMBps = %v", rate)
	}
}
