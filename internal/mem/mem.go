// Package mem models the tiered physical memory system: an ordered
// hierarchy of memory devices from fastest (tier 0, conventional DRAM) to
// slowest (dense, cheap technologies such as CXL-attached DRAM or
// 3D-XPoint-class NVM). Each tier owns a slice of the simulated physical
// address space, a frame allocator at 4KB and 2MB grains, and
// latency/bandwidth parameters used by the machine model.
//
// The paper's system is the two-tier special case (DRAM + slow memory);
// NewSystem builds exactly that. NewHierarchy accepts any ordered spec list
// up to MaxTiers, and the rest of the stack (migrator, simulator, policies)
// is tier-count-agnostic.
//
// Physical address space layout: tier i owns addresses [i<<TierShift,
// (i+1)<<TierShift), so the owning tier of any physical address is recovered
// with a shift — mirroring how a real system carves NUMA zones out of the
// physical map.
package mem

import (
	"errors"
	"fmt"
	mathbits "math/bits"
	"sync"

	"thermostat/internal/addr"
)

// TierID identifies a memory tier by its position in the ordered hierarchy:
// 0 is the fastest device, higher IDs are progressively slower and cheaper.
type TierID int

// The two tiers of the paper's hybrid memory system. In an N-tier hierarchy
// Fast remains the top tier; Slow is the second tier (the paper's only
// other tier), not necessarily the bottom.
const (
	// Fast is conventional DRAM, always tier 0.
	Fast TierID = 0
	// Slow is the dense, cheap, higher-latency technology.
	Slow TierID = 1
)

// MaxTiers bounds the hierarchy depth. The physical map carves one
// TierShift-sized window per tier, so the bound also guards TierOf against
// corrupt physical addresses.
const MaxTiers = 8

// tierNames is the process-wide name table TierID.String renders from. It
// is seeded with the paper's two tiers and extended by NewHierarchy when a
// system with named specs is built.
var (
	tierNamesMu sync.RWMutex
	tierNames   = map[TierID]string{Fast: "fast", Slow: "slow"}
)

// registerTierNames records the names of a hierarchy's tiers so String can
// render them (e.g. "nvm" instead of a "tier2" fallback).
func registerTierNames(specs []Spec) {
	tierNamesMu.Lock()
	defer tierNamesMu.Unlock()
	for i, s := range specs {
		if s.Name != "" {
			tierNames[TierID(i)] = s.Name
		}
	}
}

// String names the tier from the registered tier table, falling back to
// "tierN" for tiers no built hierarchy has named.
func (id TierID) String() string {
	tierNamesMu.RLock()
	name, ok := tierNames[id]
	tierNamesMu.RUnlock()
	if ok {
		return name
	}
	return fmt.Sprintf("tier%d", int(id))
}

// TierShift positions each tier 16TB apart in the physical map.
const TierShift = 44

// TierOf returns the tier owning physical address p. It panics on addresses
// outside the MaxTiers-bounded physical map — such an address is corrupt
// (never produced by any tier's allocator), and silently indexing a
// nonexistent tier with it would corrupt placement decisions. Callers with
// access to a System should prefer System.TierOf, which also validates the
// tier against the configured hierarchy.
func TierOf(p addr.Phys) TierID {
	id := TierID(uint64(p) >> TierShift)
	if id >= MaxTiers {
		panic(fmt.Sprintf("mem: physical address %s beyond the %d-tier physical map (corrupt frame?)", p, MaxTiers))
	}
	return id
}

// Spec describes one tier's hardware characteristics.
type Spec struct {
	// Name labels the device class ("fast", "cxl", "nvm", ...) in reports
	// and error messages. Empty is allowed; the tier then renders by
	// position.
	Name string
	// Capacity in bytes; rounded down to whole 2MB frames.
	Capacity uint64
	// ReadLatency is the device read latency in nanoseconds (DRAM ~80ns,
	// slow memory ~1000ns in the paper's emulation).
	ReadLatency int64
	// WriteLatency is the device write latency in nanoseconds.
	WriteLatency int64
	// Bandwidth is the sustainable device bandwidth in bytes/second, used
	// to sanity-check migration traffic (Table 3) and to bound migration
	// copy costs.
	Bandwidth float64
	// CostPerGB is the relative cost per GB (DRAM = 1.0); used by the
	// Table 4 cost model and its N-tier generalization.
	CostPerGB float64
}

// DefaultDRAM returns the paper's DRAM-tier parameters for the given
// capacity.
func DefaultDRAM(capacity uint64) Spec {
	return Spec{
		Name:         "fast",
		Capacity:     capacity,
		ReadLatency:  80,
		WriteLatency: 80,
		Bandwidth:    50e9,
		CostPerGB:    1.0,
	}
}

// DefaultSlow returns the paper's emulated slow-memory parameters (1us
// average access latency, one third of DRAM cost) for the given capacity.
func DefaultSlow(capacity uint64) Spec {
	return Spec{
		Name:         "slow",
		Capacity:     capacity,
		ReadLatency:  1000,
		WriteLatency: 1000,
		Bandwidth:    10e9,
		CostPerGB:    1.0 / 3.0,
	}
}

// DefaultCXL returns parameters for a CXL-attached DRAM expander: a middle
// tier between local DRAM and NVM (~250ns loads, half of DRAM cost) as
// evaluated by terabyte-scale tiering work (e.g. Telescope).
func DefaultCXL(capacity uint64) Spec {
	return Spec{
		Name:         "cxl",
		Capacity:     capacity,
		ReadLatency:  250,
		WriteLatency: 250,
		Bandwidth:    30e9,
		CostPerGB:    0.5,
	}
}

// DefaultNVM returns parameters for a 3D-XPoint-class NVM bottom tier: the
// paper's slow-memory latency point at the cheapest Table 4 price ratio.
func DefaultNVM(capacity uint64) Spec {
	return Spec{
		Name:         "nvm",
		Capacity:     capacity,
		ReadLatency:  1000,
		WriteLatency: 1000,
		Bandwidth:    10e9,
		CostPerGB:    1.0 / 5.0,
	}
}

// presets maps device-class names to their Spec constructors.
var presets = map[string]func(uint64) Spec{
	"fast": DefaultDRAM,
	"dram": DefaultDRAM,
	"slow": DefaultSlow,
	"cxl":  DefaultCXL,
	"nvm":  DefaultNVM,
}

// Preset resolves a named device preset ("dram", "fast", "cxl", "nvm",
// "slow") at the given capacity.
func Preset(name string, capacity uint64) (Spec, bool) {
	f, ok := presets[name]
	if !ok {
		return Spec{}, false
	}
	return f(capacity), true
}

// PresetNames lists the device classes Preset resolves.
func PresetNames() []string { return []string{"dram", "fast", "cxl", "nvm", "slow"} }

// ErrOutOfMemory is returned when a tier cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("mem: tier out of memory")

// Tier is one memory tier: spec plus a frame allocator. Allocation is
// buddy-lite: the tier hands out whole 2MB frames; a 2MB frame may be broken
// into 512 4KB frames, and 4KB frames coalesce back when all 512 siblings
// are free.
type Tier struct {
	id   TierID
	spec Spec

	// The 2MB allocator is a lazy bump pointer plus a freed LIFO: next2M is
	// the lowest never-allocated frame number, end2M one past the tier's
	// last frame, and freed2M holds returned frames, reused LIFO before the
	// bump region advances. The allocation sequence is identical to the
	// eager free-list this replaces (a descending list popped from its
	// tail), but constructing a tier is O(1) instead of O(frames) — a 1 TB
	// tier no longer materializes half a million list entries up front.
	next2M, end2M uint64
	freed2M       []uint64
	// broken tracks 2MB frames that have been split for 4KB allocation:
	// frame number -> bitmap of free 4KB children (1 = free).
	broken map[uint64]*childMap

	used uint64 // bytes allocated
}

type childMap struct {
	free  [8]uint64 // 512-bit bitmap
	nFree int
}

func newChildMap() *childMap {
	c := &childMap{nFree: addr.PagesPerHuge}
	for i := range c.free {
		c.free[i] = ^uint64(0)
	}
	return c
}

func (c *childMap) take() int {
	for w, bits := range c.free {
		if bits == 0 {
			continue
		}
		b := mathbits.TrailingZeros64(bits)
		c.free[w] &^= 1 << uint(b)
		c.nFree--
		return w*64 + b
	}
	return -1
}

func (c *childMap) put(i int) bool {
	w, b := i/64, uint(i%64)
	if c.free[w]&(1<<b) != 0 {
		return false // already free: double free
	}
	c.free[w] |= 1 << b
	c.nFree++
	return true
}

// NewTier builds a tier with the given identity and spec.
func NewTier(id TierID, spec Spec) *Tier {
	if id < 0 || id >= MaxTiers {
		panic(fmt.Sprintf("mem: tier id %d outside [0, %d)", int(id), MaxTiers))
	}
	t := &Tier{id: id, spec: spec, broken: make(map[uint64]*childMap)}
	base := uint64(id) << (TierShift - addr.PageShift2M) // in 2MB frame numbers
	t.next2M = base
	t.end2M = base + spec.Capacity/addr.PageSize2M
	return t
}

// ID returns the tier's identity.
func (t *Tier) ID() TierID { return t.id }

// Name returns the tier's device-class name, falling back to the positional
// name when the spec is unnamed.
func (t *Tier) Name() string {
	if t.spec.Name != "" {
		return t.spec.Name
	}
	return t.id.String()
}

// Spec returns the tier's hardware characteristics.
func (t *Tier) Spec() Spec { return t.spec }

// Capacity returns the usable capacity in bytes (whole 2MB frames).
func (t *Tier) Capacity() uint64 {
	return (t.spec.Capacity / addr.PageSize2M) * addr.PageSize2M
}

// Used returns the number of allocated bytes.
func (t *Tier) Used() uint64 { return t.used }

// Free returns the number of unallocated bytes.
func (t *Tier) Free() uint64 { return t.Capacity() - t.used }

// Alloc2M allocates one 2MB frame: the most recently freed frame if any,
// else the next frame above the bump pointer (tier base upward).
func (t *Tier) Alloc2M() (addr.Phys, error) {
	var fn uint64
	if n := len(t.freed2M); n > 0 {
		fn = t.freed2M[n-1]
		t.freed2M = t.freed2M[:n-1]
	} else if t.next2M < t.end2M {
		fn = t.next2M
		t.next2M++
	} else {
		return 0, fmt.Errorf("%w: %s tier full (%d bytes used)", ErrOutOfMemory, t.id, t.used)
	}
	t.used += addr.PageSize2M
	return addr.Phys2M(fn), nil
}

// AllocContig2M allocates n physically contiguous 2MB frames and returns the
// base of the run. It serves only from the never-allocated bump region (the
// freed LIFO is not defragmented), so it is primarily an initial-population
// path: before any Free2M it hands out exactly the frames n successive
// Alloc2M calls would.
func (t *Tier) AllocContig2M(n int) (addr.Phys, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem: AllocContig2M of %d frames", n)
	}
	if t.end2M-t.next2M < uint64(n) {
		return 0, fmt.Errorf("%w: %s tier has %d contiguous frames, need %d",
			ErrOutOfMemory, t.id, t.end2M-t.next2M, n)
	}
	fn := t.next2M
	t.next2M += uint64(n)
	t.used += uint64(n) * addr.PageSize2M
	return addr.Phys2M(fn), nil
}

// Free2M releases a 2MB frame previously returned by Alloc2M.
func (t *Tier) Free2M(p addr.Phys) {
	if p.Base2M() != p {
		panic(fmt.Sprintf("mem: Free2M of unaligned address %s", p))
	}
	fn := p.FrameNum2M()
	if _, isBroken := t.broken[fn]; isBroken {
		panic(fmt.Sprintf("mem: Free2M of broken frame %s", p))
	}
	if fn >= t.next2M {
		panic(fmt.Sprintf("mem: Free2M of never-allocated frame %s", p))
	}
	t.freed2M = append(t.freed2M, fn)
	t.used -= addr.PageSize2M
}

// Alloc4K allocates one 4KB frame, breaking a 2MB frame if necessary.
func (t *Tier) Alloc4K() (addr.Phys, error) {
	for fn, cm := range t.broken {
		if cm.nFree > 0 {
			i := cm.take()
			t.used += addr.PageSize4K
			return addr.Phys2M(fn) + addr.Phys(uint64(i)*addr.PageSize4K), nil
		}
	}
	// Break a fresh 2MB frame.
	p, err := t.Alloc2M()
	if err != nil {
		return 0, err
	}
	t.used -= addr.PageSize2M // Alloc2M charged the full frame; re-charge per 4K
	fn := p.FrameNum2M()
	cm := newChildMap()
	t.broken[fn] = cm
	i := cm.take()
	t.used += addr.PageSize4K
	return addr.Phys2M(fn) + addr.Phys(uint64(i)*addr.PageSize4K), nil
}

// Free4K releases a 4KB frame previously returned by Alloc4K. When all 512
// children of the parent 2MB frame are free it coalesces back to the 2MB
// free list.
func (t *Tier) Free4K(p addr.Phys) {
	fn := p.FrameNum2M()
	cm, ok := t.broken[fn]
	if !ok {
		panic(fmt.Sprintf("mem: Free4K of address %s not in a broken frame", p))
	}
	i := int(uint64(p.Base4K()-p.Base2M()) / addr.PageSize4K)
	if !cm.put(i) {
		panic(fmt.Sprintf("mem: double free of 4K frame %s", p))
	}
	t.used -= addr.PageSize4K
	if cm.nFree == addr.PagesPerHuge {
		delete(t.broken, fn)
		t.freed2M = append(t.freed2M, fn)
	}
}

// StateBytes returns the tier allocator's resident simulator-state bytes:
// the freed-frame list and the broken-frame maps. The bump region costs
// nothing, which is what makes constructing terabyte tiers O(1).
func (t *Tier) StateBytes() uint64 {
	const perBroken = 8 /* map key */ + 8 /* ptr */ + 72 /* childMap */
	return uint64(cap(t.freed2M))*8 + uint64(len(t.broken))*perBroken + 64
}

// System is the full physical memory: an ordered tier hierarchy with one
// allocator per tier.
type System struct {
	tiers []*Tier
}

// NewSystem builds the paper's two-tier system from the given specs,
// indexed by TierID (Fast, Slow).
func NewSystem(fast, slow Spec) *System {
	s, err := NewHierarchy(fast, slow)
	if err != nil {
		panic(err) // unreachable: two specs always form a valid hierarchy
	}
	return s
}

// NewHierarchy builds an N-tier system from an ordered spec list, fastest
// first. Between 1 and MaxTiers tiers are supported; spec names are
// registered into the tier name table.
func NewHierarchy(specs ...Spec) (*System, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("mem: hierarchy needs at least one tier")
	}
	if len(specs) > MaxTiers {
		return nil, fmt.Errorf("mem: %d tiers exceed the physical map's %d-tier bound", len(specs), MaxTiers)
	}
	registerTierNames(specs)
	s := &System{tiers: make([]*Tier, len(specs))}
	for i, spec := range specs {
		s.tiers[i] = NewTier(TierID(i), spec)
	}
	return s, nil
}

// NumTiers returns the hierarchy depth.
func (s *System) NumTiers() int { return len(s.tiers) }

// Bottom returns the slowest (last) tier's identity.
func (s *System) Bottom() TierID { return TierID(len(s.tiers) - 1) }

// Tier returns the tier with the given identity. It panics with a
// descriptive message when id does not name a configured tier — indexing a
// nonexistent tier means a corrupt TierID or physical address upstream.
func (s *System) Tier(id TierID) *Tier {
	if id < 0 || int(id) >= len(s.tiers) {
		panic(fmt.Sprintf("mem: tier %d outside the configured %d-tier hierarchy", int(id), len(s.tiers)))
	}
	return s.tiers[id]
}

// Tiers returns all tiers, fastest first.
func (s *System) Tiers() []*Tier { return s.tiers }

// TierOf returns the tier owning physical address p, validated against the
// configured hierarchy: it panics descriptively if p falls in an address
// window no tier owns.
func (s *System) TierOf(p addr.Phys) TierID {
	id := TierOf(p)
	if int(id) >= len(s.tiers) {
		panic(fmt.Sprintf("mem: physical address %s maps to tier %d but only %d tiers are configured", p, int(id), len(s.tiers)))
	}
	return id
}

// StateBytes sums the allocator state of every tier.
func (s *System) StateBytes() uint64 {
	var b uint64
	for _, t := range s.tiers {
		b += t.StateBytes()
	}
	return b
}

// ReadLatency returns the device read latency for the tier owning p.
func (s *System) ReadLatency(p addr.Phys) int64 {
	return s.Tier(s.TierOf(p)).spec.ReadLatency
}

// WriteLatency returns the device write latency for the tier owning p.
func (s *System) WriteLatency(p addr.Phys) int64 {
	return s.Tier(s.TierOf(p)).spec.WriteLatency
}
