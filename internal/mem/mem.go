// Package mem models the two-tiered physical memory system: a fast DRAM tier
// and a slow, cheap tier (3D-XPoint-class). Each tier owns a slice of the
// simulated physical address space, a frame allocator at 4KB and 2MB grains,
// and latency/bandwidth parameters used by the machine model.
//
// Physical address space layout: tier i owns addresses [i<<TierShift,
// (i+1)<<TierShift), so the owning tier of any physical address is recovered
// with a shift — mirroring how a real system carves NUMA zones out of the
// physical map.
package mem

import (
	"errors"
	"fmt"

	"thermostat/internal/addr"
)

// TierID identifies a memory tier.
type TierID int

// The two tiers of the paper's hybrid memory system.
const (
	// Fast is conventional DRAM.
	Fast TierID = 0
	// Slow is the dense, cheap, higher-latency technology.
	Slow TierID = 1
)

// String names the tier.
func (id TierID) String() string {
	switch id {
	case Fast:
		return "fast"
	case Slow:
		return "slow"
	default:
		return fmt.Sprintf("tier%d", int(id))
	}
}

// TierShift positions each tier 16TB apart in the physical map.
const TierShift = 44

// TierOf returns the tier owning physical address p.
func TierOf(p addr.Phys) TierID { return TierID(uint64(p) >> TierShift) }

// Spec describes one tier's hardware characteristics.
type Spec struct {
	// Capacity in bytes; rounded down to whole 2MB frames.
	Capacity uint64
	// ReadLatency is the device read latency in nanoseconds (DRAM ~80ns,
	// slow memory ~1000ns in the paper's emulation).
	ReadLatency int64
	// WriteLatency is the device write latency in nanoseconds.
	WriteLatency int64
	// Bandwidth is the sustainable device bandwidth in bytes/second, used
	// to sanity-check migration traffic (Table 3).
	Bandwidth float64
	// CostPerGB is the relative cost per GB (DRAM = 1.0); used by the
	// Table 4 cost model.
	CostPerGB float64
}

// DefaultDRAM returns the paper's DRAM-tier parameters for the given
// capacity.
func DefaultDRAM(capacity uint64) Spec {
	return Spec{
		Capacity:     capacity,
		ReadLatency:  80,
		WriteLatency: 80,
		Bandwidth:    50e9,
		CostPerGB:    1.0,
	}
}

// DefaultSlow returns the paper's emulated slow-memory parameters (1us
// average access latency, one third of DRAM cost) for the given capacity.
func DefaultSlow(capacity uint64) Spec {
	return Spec{
		Capacity:     capacity,
		ReadLatency:  1000,
		WriteLatency: 1000,
		Bandwidth:    10e9,
		CostPerGB:    1.0 / 3.0,
	}
}

// ErrOutOfMemory is returned when a tier cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("mem: tier out of memory")

// Tier is one memory tier: spec plus a frame allocator. Allocation is
// buddy-lite: the tier hands out whole 2MB frames; a 2MB frame may be broken
// into 512 4KB frames, and 4KB frames coalesce back when all 512 siblings
// are free.
type Tier struct {
	id   TierID
	spec Spec

	free2M []uint64 // free 2MB frame numbers (LIFO)
	// broken tracks 2MB frames that have been split for 4KB allocation:
	// frame number -> bitmap of free 4KB children (1 = free).
	broken map[uint64]*childMap

	used uint64 // bytes allocated
}

type childMap struct {
	free  [8]uint64 // 512-bit bitmap
	nFree int
}

func newChildMap() *childMap {
	c := &childMap{nFree: addr.PagesPerHuge}
	for i := range c.free {
		c.free[i] = ^uint64(0)
	}
	return c
}

func (c *childMap) take() int {
	for w, bits := range c.free {
		if bits == 0 {
			continue
		}
		b := trailingZeros(bits)
		c.free[w] &^= 1 << uint(b)
		c.nFree--
		return w*64 + b
	}
	return -1
}

func (c *childMap) put(i int) bool {
	w, b := i/64, uint(i%64)
	if c.free[w]&(1<<b) != 0 {
		return false // already free: double free
	}
	c.free[w] |= 1 << b
	c.nFree++
	return true
}

func trailingZeros(v uint64) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// NewTier builds a tier with the given identity and spec.
func NewTier(id TierID, spec Spec) *Tier {
	t := &Tier{id: id, spec: spec, broken: make(map[uint64]*childMap)}
	base := uint64(id) << (TierShift - addr.PageShift2M) // in 2MB frame numbers
	nFrames := spec.Capacity / addr.PageSize2M
	// Push in reverse so allocation proceeds from the tier base upward.
	for i := nFrames; i > 0; i-- {
		t.free2M = append(t.free2M, base+i-1)
	}
	return t
}

// ID returns the tier's identity.
func (t *Tier) ID() TierID { return t.id }

// Spec returns the tier's hardware characteristics.
func (t *Tier) Spec() Spec { return t.spec }

// Capacity returns the usable capacity in bytes (whole 2MB frames).
func (t *Tier) Capacity() uint64 {
	return (t.spec.Capacity / addr.PageSize2M) * addr.PageSize2M
}

// Used returns the number of allocated bytes.
func (t *Tier) Used() uint64 { return t.used }

// Free returns the number of unallocated bytes.
func (t *Tier) Free() uint64 { return t.Capacity() - t.used }

// Alloc2M allocates one 2MB frame.
func (t *Tier) Alloc2M() (addr.Phys, error) {
	n := len(t.free2M)
	if n == 0 {
		return 0, fmt.Errorf("%w: %s tier full (%d bytes used)", ErrOutOfMemory, t.id, t.used)
	}
	fn := t.free2M[n-1]
	t.free2M = t.free2M[:n-1]
	t.used += addr.PageSize2M
	return addr.Phys2M(fn), nil
}

// Free2M releases a 2MB frame previously returned by Alloc2M.
func (t *Tier) Free2M(p addr.Phys) {
	if p.Base2M() != p {
		panic(fmt.Sprintf("mem: Free2M of unaligned address %s", p))
	}
	fn := p.FrameNum2M()
	if _, isBroken := t.broken[fn]; isBroken {
		panic(fmt.Sprintf("mem: Free2M of broken frame %s", p))
	}
	t.free2M = append(t.free2M, fn)
	t.used -= addr.PageSize2M
}

// Alloc4K allocates one 4KB frame, breaking a 2MB frame if necessary.
func (t *Tier) Alloc4K() (addr.Phys, error) {
	for fn, cm := range t.broken {
		if cm.nFree > 0 {
			i := cm.take()
			t.used += addr.PageSize4K
			return addr.Phys2M(fn) + addr.Phys(uint64(i)*addr.PageSize4K), nil
		}
	}
	// Break a fresh 2MB frame.
	p, err := t.Alloc2M()
	if err != nil {
		return 0, err
	}
	t.used -= addr.PageSize2M // Alloc2M charged the full frame; re-charge per 4K
	fn := p.FrameNum2M()
	cm := newChildMap()
	t.broken[fn] = cm
	i := cm.take()
	t.used += addr.PageSize4K
	return addr.Phys2M(fn) + addr.Phys(uint64(i)*addr.PageSize4K), nil
}

// Free4K releases a 4KB frame previously returned by Alloc4K. When all 512
// children of the parent 2MB frame are free it coalesces back to the 2MB
// free list.
func (t *Tier) Free4K(p addr.Phys) {
	fn := p.FrameNum2M()
	cm, ok := t.broken[fn]
	if !ok {
		panic(fmt.Sprintf("mem: Free4K of address %s not in a broken frame", p))
	}
	i := int(uint64(p.Base4K()-p.Base2M()) / addr.PageSize4K)
	if !cm.put(i) {
		panic(fmt.Sprintf("mem: double free of 4K frame %s", p))
	}
	t.used -= addr.PageSize4K
	if cm.nFree == addr.PagesPerHuge {
		delete(t.broken, fn)
		t.free2M = append(t.free2M, fn)
	}
}

// System is the full physical memory: one allocator per tier.
type System struct {
	tiers []*Tier
}

// NewSystem builds a two-tier system from the given specs, indexed by TierID.
func NewSystem(fast, slow Spec) *System {
	return &System{tiers: []*Tier{NewTier(Fast, fast), NewTier(Slow, slow)}}
}

// Tier returns the tier with the given identity.
func (s *System) Tier(id TierID) *Tier {
	return s.tiers[id]
}

// Tiers returns all tiers.
func (s *System) Tiers() []*Tier { return s.tiers }

// ReadLatency returns the device read latency for the tier owning p.
func (s *System) ReadLatency(p addr.Phys) int64 {
	return s.tiers[TierOf(p)].spec.ReadLatency
}

// WriteLatency returns the device write latency for the tier owning p.
func (s *System) WriteLatency(p addr.Phys) int64 {
	return s.tiers[TierOf(p)].spec.WriteLatency
}
