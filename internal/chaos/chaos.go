// Package chaos provides deterministic fault injection for the simulator's
// migration and sampling machinery. An Injector is seeded once, draws from
// its own rng stream (independent of the workload and placement streams even
// under equal seeds), and stamps every injected fault with the machine's
// virtual clock so chaos runs replay bit-identically across worker counts.
//
// The zero-rate contract: a site whose rate is zero never consumes a random
// draw, so an Injector configured with all-zero rates is provably inert —
// wiring it in cannot perturb any rng sequence or any simulated state. A nil
// *Injector is equally inert; every method is nil-receiver safe.
package chaos

import (
	"errors"
	"fmt"

	"thermostat/internal/rng"
)

// chaosStream is the dedicated PCG stream for fault injection. It differs
// from rng.New's default stream so chaos draws never correlate with workload
// key draws at equal seeds.
const chaosStream = 0x9e3779b97f4a7c15

// Site identifies a fault-injection point in the migration/sampling stack.
type Site int

const (
	// MigrateCopy fails a migration mid-copy, after the destination frame
	// has been allocated and (for split regions) part of the children have
	// been remapped. Exercises the transactional rollback path.
	MigrateCopy Site = iota
	// DestFull fails a migration before allocation, simulating destination
	// tier pressure. Surfaces as mem.ErrOutOfMemory to callers.
	DestFull
	// TLBShootdown loses the TLB shootdown after the copy completed; the
	// migrator treats the move as failed and rolls back.
	TLBShootdown
	// PoisonArm fails arming a PTE poison (BadgerTrap sampling).
	PoisonArm
	// PoisonDisarm fails clearing a PTE poison before promotion.
	PoisonDisarm

	// NumSites is the number of injection sites; not itself a site.
	NumSites
)

// String returns the site's stable lowercase name.
func (s Site) String() string {
	switch s {
	case MigrateCopy:
		return "migrate-copy"
	case DestFull:
		return "dest-full"
	case TLBShootdown:
		return "tlb-shootdown"
	case PoisonArm:
		return "poison-arm"
	case PoisonDisarm:
		return "poison-disarm"
	}
	return fmt.Sprintf("site(%d)", int(s))
}

// Fault is an injected failure. It implements error; Unwrap exposes the
// simulated underlying condition (e.g. mem.ErrOutOfMemory for DestFull) so
// errors.Is keeps working through the chaos layer.
type Fault struct {
	Site      Site
	TimeNs    int64 // virtual time of injection
	Permanent bool  // retrying can never succeed for this page
	Cause     error // optional simulated condition, set by the fault site
}

func (f *Fault) Error() string {
	mode := "transient"
	if f.Permanent {
		mode = "permanent"
	}
	if f.Cause != nil {
		return fmt.Sprintf("chaos: %s %s fault at t=%dns: %v", mode, f.Site, f.TimeNs, f.Cause)
	}
	return fmt.Sprintf("chaos: %s %s fault at t=%dns", mode, f.Site, f.TimeNs)
}

func (f *Fault) Unwrap() error { return f.Cause }

// AsFault extracts the injected *Fault from err's chain, if any.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// IsInjected reports whether err originates from an injected fault.
func IsInjected(err error) bool {
	_, ok := AsFault(err)
	return ok
}

// IsPermanent reports whether err is an injected fault marked permanent.
func IsPermanent(err error) bool {
	f, ok := AsFault(err)
	return ok && f.Permanent
}

// Config selects fault rates. The zero value disables injection entirely.
type Config struct {
	// Seed seeds the injector's private rng stream.
	Seed uint64
	// Rate is the default per-site injection probability in [0, 1].
	Rate float64
	// SiteRates overrides Rate per site. A negative override disables the
	// site even when Rate is positive.
	SiteRates map[Site]float64
	// PermanentFraction is the probability, given an injected fault at a
	// migration site, that it is permanent (retries can never succeed).
	PermanentFraction float64
}

// Enabled reports whether any site has a positive injection rate.
func (c Config) Enabled() bool {
	if c.Rate > 0 {
		return true
	}
	for _, r := range c.SiteRates {
		if r > 0 {
			return true
		}
	}
	return false
}

// Report is a point-in-time summary of chaos activity, combining injector
// counts with the downstream handling counters (rollbacks from the
// migrator, retries/quarantines from the policy engine).
type Report struct {
	Injected    uint64           // faults injected, total
	Permanent   uint64           // of which permanent
	BySite      [NumSites]uint64 // injected, per site
	Retried     uint64           // migration attempts retried after a failure
	RolledBack  uint64           // migration transactions aborted and undone
	Quarantined uint64           // pages quarantined after permanent/exhausted failure
}

// Sub returns the per-field difference r - base (counters are monotonic).
func (r Report) Sub(base Report) Report {
	out := Report{
		Injected:    r.Injected - base.Injected,
		Permanent:   r.Permanent - base.Permanent,
		Retried:     r.Retried - base.Retried,
		RolledBack:  r.RolledBack - base.RolledBack,
		Quarantined: r.Quarantined - base.Quarantined,
	}
	for i := range out.BySite {
		out.BySite[i] = r.BySite[i] - base.BySite[i]
	}
	return out
}

// Zero reports whether every counter in r is zero.
func (r Report) Zero() bool {
	return r == Report{}
}

// Injector decides, per fault site, whether an operation fails. All methods
// are nil-receiver safe (a nil Injector never injects).
type Injector struct {
	r     *rng.PCG
	rates [NumSites]float64
	perm  float64

	injected  uint64
	permanent uint64
	bySite    [NumSites]uint64
}

// New builds an Injector from cfg. Returns nil when cfg is disabled, so
// callers can wire the result unconditionally.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	in := &Injector{
		r:    rng.NewStream(cfg.Seed, chaosStream),
		perm: cfg.PermanentFraction,
	}
	for s := Site(0); s < NumSites; s++ {
		in.rates[s] = cfg.Rate
		if r, ok := cfg.SiteRates[s]; ok {
			in.rates[s] = r
		}
	}
	return in
}

// Inject rolls the dice for site at virtual time now. Returns a *Fault to
// inject, or nil to let the operation proceed. A site with rate <= 0 returns
// nil without consuming a random draw (the zero-rate inertness contract);
// rate >= 1 always fires, also without a draw, so forced-failure tests stay
// on the same rng sequence regardless of call count.
func (in *Injector) Inject(site Site, now int64) *Fault {
	if in == nil {
		return nil
	}
	rate := in.rates[site]
	if rate <= 0 {
		return nil
	}
	if rate < 1 && in.r.Float64() >= rate {
		return nil
	}
	f := &Fault{Site: site, TimeNs: now}
	if in.perm > 0 && (site == MigrateCopy || site == DestFull || site == TLBShootdown) {
		if in.perm >= 1 || in.r.Float64() < in.perm {
			f.Permanent = true
			in.permanent++
		}
	}
	in.injected++
	in.bySite[site]++
	return f
}

// SetRates retunes the uniform per-site fault probability and the permanent
// fraction on a live injector — the daemon's hot-reload path for the chaos
// knobs. The rng stream is untouched, so a retune is deterministic given
// its virtual-time position; rates outside [0, 1] are clamped. Must be
// called from the simulation goroutine (tick hooks qualify). A nil
// injector ignores the call: chaos cannot be switched on after the fact,
// because a disabled config installs no injector at all.
func (in *Injector) SetRates(rate, permanentFraction float64) {
	if in == nil {
		return
	}
	rate = clamp01(rate)
	for s := Site(0); s < NumSites; s++ {
		in.rates[s] = rate
	}
	in.perm = clamp01(permanentFraction)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// AbortIndex picks the child index at which a mid-copy abort strikes, for a
// region of n children. Deterministic given the injector's stream position.
// A nil injector returns 0.
func (in *Injector) AbortIndex(n int) int {
	if in == nil || n <= 1 {
		return 0
	}
	return in.r.Intn(n)
}

// Report returns the injector's cumulative counts. Downstream handling
// counters (Retried/RolledBack/Quarantined) are zero here; the machine and
// engine layers fill them in. A nil injector reports all zeros.
func (in *Injector) Report() Report {
	if in == nil {
		return Report{}
	}
	return Report{
		Injected:  in.injected,
		Permanent: in.permanent,
		BySite:    in.bySite,
	}
}
