package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestDisabledConfigYieldsNilInjector(t *testing.T) {
	t.Parallel()
	if in := New(Config{Seed: 1}); in != nil {
		t.Fatalf("zero-rate config must build a nil injector, got %+v", in)
	}
	if in := New(Config{Seed: 1, SiteRates: map[Site]float64{MigrateCopy: 0}}); in != nil {
		t.Fatalf("all-zero site rates must build a nil injector")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	t.Parallel()
	var in *Injector
	if f := in.Inject(MigrateCopy, 42); f != nil {
		t.Fatalf("nil injector injected %v", f)
	}
	if i := in.AbortIndex(512); i != 0 {
		t.Fatalf("nil injector AbortIndex = %d, want 0", i)
	}
	if r := in.Report(); !r.Zero() {
		t.Fatalf("nil injector report = %+v, want zero", r)
	}
}

func TestZeroRateSiteConsumesNoDraws(t *testing.T) {
	t.Parallel()
	// Only MigrateCopy has a positive rate. Injecting at other sites any
	// number of times must not advance the rng stream: the MigrateCopy
	// decision sequence must be identical with and without the extra calls.
	cfg := Config{Seed: 7, SiteRates: map[Site]float64{MigrateCopy: 0.5}}
	a, b := New(cfg), New(cfg)
	var seqA, seqB []bool
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.Inject(MigrateCopy, int64(i)) != nil)
		for s := Site(0); s < NumSites; s++ {
			if s != MigrateCopy {
				if f := b.Inject(s, int64(i)); f != nil {
					t.Fatalf("zero-rate site %s injected", s)
				}
			}
		}
		seqB = append(seqB, b.Inject(MigrateCopy, int64(i)) != nil)
	}
	if !reflect.DeepEqual(seqA, seqB) {
		t.Fatalf("zero-rate sites perturbed the injection sequence")
	}
}

func TestInjectionDeterministic(t *testing.T) {
	t.Parallel()
	cfg := Config{Seed: 99, Rate: 0.3, PermanentFraction: 0.25}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		site := Site(i % int(NumSites))
		fa, fb := a.Inject(site, int64(i)), b.Inject(site, int64(i))
		if (fa == nil) != (fb == nil) {
			t.Fatalf("step %d: injectors diverged", i)
		}
		if fa != nil && (fa.Permanent != fb.Permanent || fa.Site != fb.Site || fa.TimeNs != fb.TimeNs) {
			t.Fatalf("step %d: faults differ: %+v vs %+v", i, fa, fb)
		}
	}
	if a.Report() != b.Report() {
		t.Fatalf("reports diverged: %+v vs %+v", a.Report(), b.Report())
	}
	if a.Report().Zero() {
		t.Fatalf("rate 0.3 over 500 draws injected nothing")
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	t.Parallel()
	in := New(Config{Seed: 3, Rate: 1})
	for i := 0; i < 50; i++ {
		f := in.Inject(DestFull, int64(i))
		if f == nil {
			t.Fatalf("rate-1 injector skipped at %d", i)
		}
		if f.TimeNs != int64(i) {
			t.Fatalf("fault time = %d, want %d", f.TimeNs, i)
		}
	}
	r := in.Report()
	if r.Injected != 50 || r.BySite[DestFull] != 50 {
		t.Fatalf("report = %+v, want 50 DestFull injections", r)
	}
}

func TestPermanentFractionBounds(t *testing.T) {
	t.Parallel()
	all := New(Config{Seed: 5, Rate: 1, PermanentFraction: 1})
	for i := 0; i < 20; i++ {
		if f := all.Inject(MigrateCopy, 0); !f.Permanent {
			t.Fatalf("PermanentFraction=1 produced a transient fault")
		}
	}
	none := New(Config{Seed: 5, Rate: 1})
	for i := 0; i < 20; i++ {
		if f := none.Inject(MigrateCopy, 0); f.Permanent {
			t.Fatalf("PermanentFraction=0 produced a permanent fault")
		}
	}
	// Poison sites are never permanent: they are retried by re-sampling.
	if f := all.Inject(PoisonArm, 0); f.Permanent {
		t.Fatalf("poison-arm fault marked permanent")
	}
}

func TestFaultErrorChain(t *testing.T) {
	t.Parallel()
	cause := errors.New("out of memory")
	f := &Fault{Site: DestFull, TimeNs: 10, Cause: cause}
	var err error = fmt.Errorf("numa: MoveHuge: %w", f)
	if !IsInjected(err) {
		t.Fatalf("IsInjected missed wrapped fault")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("Cause not reachable via errors.Is")
	}
	got, ok := AsFault(err)
	if !ok || got.Site != DestFull {
		t.Fatalf("AsFault = %+v, %v", got, ok)
	}
	if IsPermanent(err) {
		t.Fatalf("transient fault reported permanent")
	}
	f.Permanent = true
	if !IsPermanent(err) {
		t.Fatalf("permanent fault not reported")
	}
	if IsInjected(errors.New("plain")) {
		t.Fatalf("IsInjected on plain error")
	}
}

func TestReportSubAndZero(t *testing.T) {
	t.Parallel()
	a := Report{Injected: 5, Permanent: 2, Retried: 7, RolledBack: 3, Quarantined: 1}
	a.BySite[MigrateCopy] = 4
	a.BySite[DestFull] = 1
	b := Report{Injected: 2, Permanent: 1, Retried: 3, RolledBack: 1}
	b.BySite[MigrateCopy] = 2
	d := a.Sub(b)
	want := Report{Injected: 3, Permanent: 1, Retried: 4, RolledBack: 2, Quarantined: 1}
	want.BySite[MigrateCopy] = 2
	want.BySite[DestFull] = 1
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
	if !(Report{}).Zero() || a.Zero() {
		t.Fatalf("Zero misbehaves")
	}
}

func TestSiteStrings(t *testing.T) {
	t.Parallel()
	want := map[Site]string{
		MigrateCopy:  "migrate-copy",
		DestFull:     "dest-full",
		TLBShootdown: "tlb-shootdown",
		PoisonArm:    "poison-arm",
		PoisonDisarm: "poison-disarm",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("Site(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
	if Site(99).String() != "site(99)" {
		t.Fatalf("unknown site string = %q", Site(99).String())
	}
}

func TestAbortIndexDeterministicAndBounded(t *testing.T) {
	t.Parallel()
	a, b := New(Config{Seed: 11, Rate: 1}), New(Config{Seed: 11, Rate: 1})
	for i := 0; i < 100; i++ {
		ia, ib := a.AbortIndex(512), b.AbortIndex(512)
		if ia != ib {
			t.Fatalf("AbortIndex diverged at %d: %d vs %d", i, ia, ib)
		}
		if ia < 0 || ia >= 512 {
			t.Fatalf("AbortIndex out of range: %d", ia)
		}
	}
	if a.AbortIndex(1) != 0 || a.AbortIndex(0) != 0 {
		t.Fatalf("degenerate AbortIndex not 0")
	}
}
