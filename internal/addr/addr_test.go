package addr

import (
	"testing"
	"testing/quick"
)

func TestPageConstants(t *testing.T) {
	if PageSize4K != 4096 {
		t.Fatalf("PageSize4K = %d, want 4096", PageSize4K)
	}
	if PageSize2M != 2<<20 {
		t.Fatalf("PageSize2M = %d, want 2MiB", PageSize2M)
	}
	if PagesPerHuge != 512 {
		t.Fatalf("PagesPerHuge = %d, want 512", PagesPerHuge)
	}
}

func TestPageNumAndOffset(t *testing.T) {
	v := Virt(0x12345678)
	if got, want := v.PageNum4K(), uint64(0x12345); got != want {
		t.Errorf("PageNum4K = %#x, want %#x", got, want)
	}
	if got, want := v.Offset4K(), uint64(0x678); got != want {
		t.Errorf("Offset4K = %#x, want %#x", got, want)
	}
	if got, want := v.PageNum2M(), uint64(0x12345678>>21); got != want {
		t.Errorf("PageNum2M = %#x, want %#x", got, want)
	}
}

func TestBaseAddresses(t *testing.T) {
	v := Virt(0x40001234)
	if got := v.Base4K(); got != Virt(0x40001000) {
		t.Errorf("Base4K = %s", got)
	}
	if got := v.Base2M(); got != Virt(0x40000000) {
		t.Errorf("Base2M = %s", got)
	}
}

func TestSubpageIndex(t *testing.T) {
	base := Virt2M(7)
	for _, i := range []int{0, 1, 255, 511} {
		v := base + Virt(uint64(i)*PageSize4K+13)
		if got := v.SubpageIndex(); got != i {
			t.Errorf("SubpageIndex(%s) = %d, want %d", v, got, i)
		}
	}
}

func TestIndexLevels(t *testing.T) {
	// Construct an address with distinct known indices at each level.
	// idx4=1, idx3=2, idx2=3, idx1=4, offset=5.
	v := Virt(1<<39 | 2<<30 | 3<<21 | 4<<12 | 5)
	for level, want := range map[int]int{4: 1, 3: 2, 2: 3, 1: 4} {
		if got := Index(v, level); got != want {
			t.Errorf("Index(level %d) = %d, want %d", level, got, want)
		}
	}
}

func TestIndexPanicsOnBadLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Index(0) did not panic")
		}
	}()
	Index(0, 0)
}

func TestCanonical(t *testing.T) {
	if !Virt(0x7fffffffffff).Canonical() {
		t.Error("top of lower half should be canonical")
	}
	if Virt(0x800000000000).Canonical() {
		t.Error("just past lower half should be non-canonical")
	}
	if !Virt(0xffff800000000000).Canonical() {
		t.Error("bottom of upper half should be canonical")
	}
}

func TestRangeBasics(t *testing.T) {
	r := NewRange(Virt(0x1000), 0x3000)
	if r.Size() != 0x3000 {
		t.Errorf("Size = %#x", r.Size())
	}
	if !r.Contains(0x1000) || !r.Contains(0x3fff) || r.Contains(0x4000) {
		t.Error("Contains boundary behaviour wrong")
	}
	if r.Pages4K() != 3 {
		t.Errorf("Pages4K = %d, want 3", r.Pages4K())
	}
}

func TestRangePartialPages(t *testing.T) {
	// A one-byte range straddling nothing still touches one page.
	r := NewRange(Virt(0x1fff), 2) // bytes 0x1fff and 0x2000: two pages
	if r.Pages4K() != 2 {
		t.Errorf("straddling Pages4K = %d, want 2", r.Pages4K())
	}
	if NewRange(0, 0).Pages4K() != 0 {
		t.Error("empty range should touch 0 pages")
	}
}

func TestRangeOverlaps(t *testing.T) {
	a := NewRange(0x1000, 0x1000)
	b := NewRange(0x1800, 0x1000)
	c := NewRange(0x2000, 0x1000)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("adjacent ranges should not overlap")
	}
}

func TestEach2M(t *testing.T) {
	r := NewRange(Virt2M(3)+5, 2*PageSize2M)
	var bases []Virt
	r.Each2M(func(b Virt) { bases = append(bases, b) })
	want := []Virt{Virt2M(3), Virt2M(4), Virt2M(5)}
	if len(bases) != len(want) {
		t.Fatalf("Each2M visited %d pages, want %d", len(bases), len(want))
	}
	for i := range want {
		if bases[i] != want[i] {
			t.Errorf("bases[%d] = %s, want %s", i, bases[i], want[i])
		}
	}
}

func TestEach4KCount(t *testing.T) {
	r := NewRange(Virt(0x1234), 3*PageSize4K)
	n := 0
	r.Each4K(func(Virt) { n++ })
	if uint64(n) != r.Pages4K() {
		t.Errorf("Each4K visited %d, Pages4K says %d", n, r.Pages4K())
	}
}

// Property: page base plus offset reconstructs the address, at both grains.
func TestAddressDecompositionProperty(t *testing.T) {
	f := func(raw uint64) bool {
		v := Virt(raw & 0x0000ffffffffffff) // keep canonical lower-half
		ok4 := v.Base4K()+Virt(v.Offset4K()) == v
		ok2 := v.Base2M()+Virt(v.Offset2M()) == v
		nested := v.Base2M()+Virt(uint64(v.SubpageIndex())*PageSize4K) == v.Base4K()
		return ok4 && ok2 && nested
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: radix indices reconstruct the 4KB page number.
func TestRadixReconstructionProperty(t *testing.T) {
	f := func(raw uint64) bool {
		v := Virt(raw & 0x0000ffffffffffff)
		n := uint64(Index(v, 4))<<27 | uint64(Index(v, 3))<<18 |
			uint64(Index(v, 2))<<9 | uint64(Index(v, 1))
		return n == v.PageNum4K()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: round-tripping page numbers through Virt4K/Virt2M is stable.
func TestPageNumRoundTripProperty(t *testing.T) {
	f := func(n uint64) bool {
		n4 := n & 0x0000000fffffffff
		n2 := n & 0x0000000007ffffff
		return Virt4K(n4).PageNum4K() == n4 && Virt2M(n2).PageNum2M() == n2 &&
			Phys4K(n4).FrameNum4K() == n4 && Phys2M(n2).FrameNum2M() == n2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
