// Package addr provides virtual- and physical-address arithmetic for the
// simulated x86-64 memory system: 4KB base pages, 2MB huge pages, page
// numbers, offsets, and address ranges.
//
// All addresses are 64-bit. Virtual addresses follow the canonical x86-64
// layout with 48 significant bits split into four 9-bit radix indices plus a
// 12-bit page offset. A 2MB huge page maps an entire page-directory (level 2)
// leaf: 21 offset bits.
package addr

import "fmt"

// Page-size constants, in bytes.
const (
	// PageShift4K is the offset width of a 4KB base page.
	PageShift4K = 12
	// PageShift2M is the offset width of a 2MB huge page.
	PageShift2M = 21

	// PageSize4K is the size of a base page (4096 bytes).
	PageSize4K uint64 = 1 << PageShift4K
	// PageSize2M is the size of a huge page (2MiB).
	PageSize2M uint64 = 1 << PageShift2M

	// PagesPerHuge is the number of 4KB pages spanned by one 2MB page (512).
	PagesPerHuge = int(PageSize2M / PageSize4K)

	// CanonicalBits is the number of significant virtual-address bits.
	CanonicalBits = 48
)

// Virt is a virtual address in the simulated guest address space.
type Virt uint64

// Phys is a physical (machine) address in the simulated memory system.
type Phys uint64

// PageNum4K returns the 4KB virtual page number containing v.
func (v Virt) PageNum4K() uint64 { return uint64(v) >> PageShift4K }

// PageNum2M returns the 2MB virtual page number containing v.
func (v Virt) PageNum2M() uint64 { return uint64(v) >> PageShift2M }

// Offset4K returns the byte offset of v within its 4KB page.
func (v Virt) Offset4K() uint64 { return uint64(v) & (PageSize4K - 1) }

// Offset2M returns the byte offset of v within its 2MB page.
func (v Virt) Offset2M() uint64 { return uint64(v) & (PageSize2M - 1) }

// Base4K returns the base address of the 4KB page containing v.
func (v Virt) Base4K() Virt { return v &^ Virt(PageSize4K-1) }

// Base2M returns the base address of the 2MB page containing v.
func (v Virt) Base2M() Virt { return v &^ Virt(PageSize2M-1) }

// SubpageIndex returns the index (0..511) of v's 4KB page within its 2MB page.
func (v Virt) SubpageIndex() int {
	return int((uint64(v) >> PageShift4K) & (uint64(PagesPerHuge) - 1))
}

// Canonical reports whether v is a canonical 48-bit address (upper bits are a
// sign extension of bit 47). The simulator only hands out lower-half
// canonical addresses, so in practice this checks bits 48..63 are zero.
func (v Virt) Canonical() bool {
	upper := uint64(v) >> (CanonicalBits - 1)
	return upper == 0 || upper == (1<<(65-CanonicalBits))-1
}

// String renders the address in hex.
func (v Virt) String() string { return fmt.Sprintf("0x%012x", uint64(v)) }

// String renders the address in hex.
func (p Phys) String() string { return fmt.Sprintf("0x%012x", uint64(p)) }

// FrameNum4K returns the 4KB physical frame number containing p.
func (p Phys) FrameNum4K() uint64 { return uint64(p) >> PageShift4K }

// FrameNum2M returns the 2MB physical frame number containing p.
func (p Phys) FrameNum2M() uint64 { return uint64(p) >> PageShift2M }

// Base4K returns the base address of the 4KB frame containing p.
func (p Phys) Base4K() Phys { return p &^ Phys(PageSize4K-1) }

// Base2M returns the base address of the 2MB frame containing p.
func (p Phys) Base2M() Phys { return p &^ Phys(PageSize2M-1) }

// Virt4K returns the base virtual address of 4KB page number n.
func Virt4K(n uint64) Virt { return Virt(n << PageShift4K) }

// Virt2M returns the base virtual address of 2MB page number n.
func Virt2M(n uint64) Virt { return Virt(n << PageShift2M) }

// Phys4K returns the base physical address of 4KB frame number n.
func Phys4K(n uint64) Phys { return Phys(n << PageShift4K) }

// Phys2M returns the base physical address of 2MB frame number n.
func Phys2M(n uint64) Phys { return Phys(n << PageShift2M) }

// Radix indices for the 4-level x86-64 page-table walk. Level 4 is the root
// (PML4), level 1 the page table whose entries map 4KB pages.
const (
	radixBits = 9
	radixMask = (1 << radixBits) - 1
)

// Index returns the 9-bit radix index of v at the given page-table level
// (4 = PML4, 3 = PDPT, 2 = PD, 1 = PT).
func Index(v Virt, level int) int {
	if level < 1 || level > 4 {
		panic(fmt.Sprintf("addr: invalid page-table level %d", level))
	}
	shift := PageShift4K + radixBits*(level-1)
	return int((uint64(v) >> shift) & radixMask)
}

// Range is a half-open virtual address interval [Start, End).
type Range struct {
	Start Virt
	End   Virt
}

// NewRange returns the range [start, start+size).
func NewRange(start Virt, size uint64) Range {
	return Range{Start: start, End: start + Virt(size)}
}

// Size returns the byte length of the range.
func (r Range) Size() uint64 {
	if r.End <= r.Start {
		return 0
	}
	return uint64(r.End - r.Start)
}

// Contains reports whether v lies inside the range.
func (r Range) Contains(v Virt) bool { return v >= r.Start && v < r.End }

// Overlaps reports whether r and o share any address.
func (r Range) Overlaps(o Range) bool {
	return r.Start < o.End && o.Start < r.End
}

// Pages4K returns the number of 4KB pages the range touches, counting partial
// pages at either end.
func (r Range) Pages4K() uint64 {
	if r.Size() == 0 {
		return 0
	}
	first := r.Start.PageNum4K()
	last := (r.End - 1).PageNum4K()
	return last - first + 1
}

// Pages2M returns the number of 2MB pages the range touches, counting partial
// pages at either end.
func (r Range) Pages2M() uint64 {
	if r.Size() == 0 {
		return 0
	}
	first := r.Start.PageNum2M()
	last := (r.End - 1).PageNum2M()
	return last - first + 1
}

// Each2M calls fn with the base address of every 2MB page the range touches.
func (r Range) Each2M(fn func(base Virt)) {
	if r.Size() == 0 {
		return
	}
	for n := r.Start.PageNum2M(); n <= (r.End - 1).PageNum2M(); n++ {
		fn(Virt2M(n))
	}
}

// Each4K calls fn with the base address of every 4KB page the range touches.
func (r Range) Each4K(fn func(base Virt)) {
	if r.Size() == 0 {
		return
	}
	for n := r.Start.PageNum4K(); n <= (r.End - 1).PageNum4K(); n++ {
		fn(Virt4K(n))
	}
}

// String renders the range as [start, end).
func (r Range) String() string {
	return fmt.Sprintf("[%s, %s)", r.Start, r.End)
}
