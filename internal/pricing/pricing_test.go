package pricing

import (
	"math"
	"testing"
)

func TestSavingsMatchesTable4(t *testing.T) {
	// Table 4: Cassandra (≈40% cold) saves 27%/30%/32% at cost ratios
	// 1/3, 1/4, 1/5.
	cases := []struct {
		cold, ratio, want float64
	}{
		{0.40, 1.0 / 3, 0.27},
		{0.40, 1.0 / 4, 0.30},
		{0.40, 1.0 / 5, 0.32},
		// Aerospike (≈15% cold): 10%/11%/12%.
		{0.15, 1.0 / 3, 0.10},
		{0.15, 1.0 / 4, 0.11},
		{0.15, 1.0 / 5, 0.12},
	}
	for _, c := range cases {
		got, err := Savings(c.cold, c.ratio)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 0.005 {
			t.Errorf("Savings(%v, %v) = %v, want ~%v", c.cold, c.ratio, got, c.want)
		}
	}
}

func TestSavingsBounds(t *testing.T) {
	if _, err := Savings(-0.1, 0.3); err == nil {
		t.Error("negative cold fraction accepted")
	}
	if _, err := Savings(0.5, 1.5); err == nil {
		t.Error("cost ratio > 1 accepted")
	}
	if s, _ := Savings(0, 0.3); s != 0 {
		t.Error("no cold data should save nothing")
	}
	if s, _ := Savings(1, 0); s != 1 {
		t.Error("all-cold free memory should save everything")
	}
}

func TestPaperRatios(t *testing.T) {
	if len(PaperRatios) != 3 {
		t.Fatal("Table 4 has three cost points")
	}
	for i := 1; i < len(PaperRatios); i++ {
		if PaperRatios[i] >= PaperRatios[i-1] {
			t.Fatal("ratios should descend (cheaper slow memory)")
		}
	}
}

func TestBreakEvenSlowdown(t *testing.T) {
	// 30% savings when memory is 20% of system cost: tolerable slowdown
	// before net loss = 0.3*0.2/0.8 = 7.5%.
	got, err := BreakEvenSlowdown(0.30, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.075) > 1e-9 {
		t.Fatalf("BreakEvenSlowdown = %v, want 0.075", got)
	}
	if _, err := BreakEvenSlowdown(0.3, 0); err == nil {
		t.Error("zero memory share accepted")
	}
	if _, err := BreakEvenSlowdown(2, 0.5); err == nil {
		t.Error("savings > 1 accepted")
	}
}
