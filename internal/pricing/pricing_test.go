package pricing

import (
	"math"
	"testing"
)

func TestSavingsMatchesTable4(t *testing.T) {
	// Table 4: Cassandra (≈40% cold) saves 27%/30%/32% at cost ratios
	// 1/3, 1/4, 1/5.
	cases := []struct {
		cold, ratio, want float64
	}{
		{0.40, 1.0 / 3, 0.27},
		{0.40, 1.0 / 4, 0.30},
		{0.40, 1.0 / 5, 0.32},
		// Aerospike (≈15% cold): 10%/11%/12%.
		{0.15, 1.0 / 3, 0.10},
		{0.15, 1.0 / 4, 0.11},
		{0.15, 1.0 / 5, 0.12},
	}
	for _, c := range cases {
		got, err := Savings(c.cold, c.ratio)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 0.005 {
			t.Errorf("Savings(%v, %v) = %v, want ~%v", c.cold, c.ratio, got, c.want)
		}
	}
}

func TestSavingsBounds(t *testing.T) {
	if _, err := Savings(-0.1, 0.3); err == nil {
		t.Error("negative cold fraction accepted")
	}
	if _, err := Savings(0.5, 1.5); err == nil {
		t.Error("cost ratio > 1 accepted")
	}
	if s, _ := Savings(0, 0.3); s != 0 {
		t.Error("no cold data should save nothing")
	}
	if s, _ := Savings(1, 0); s != 1 {
		t.Error("all-cold free memory should save everything")
	}
}

func TestPaperRatios(t *testing.T) {
	if len(PaperRatios) != 3 {
		t.Fatal("Table 4 has three cost points")
	}
	for i := 1; i < len(PaperRatios); i++ {
		if PaperRatios[i] >= PaperRatios[i-1] {
			t.Fatal("ratios should descend (cheaper slow memory)")
		}
	}
}

func TestBreakEvenSlowdown(t *testing.T) {
	// 30% savings when memory is 20% of system cost: tolerable slowdown
	// before net loss = 0.3*0.2/0.8 = 7.5%.
	got, err := BreakEvenSlowdown(0.30, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.075) > 1e-9 {
		t.Fatalf("BreakEvenSlowdown = %v, want 0.075", got)
	}
	if _, err := BreakEvenSlowdown(0.3, 0); err == nil {
		t.Error("zero memory share accepted")
	}
	if _, err := BreakEvenSlowdown(2, 0.5); err == nil {
		t.Error("savings > 1 accepted")
	}
}

func TestSavingsTiered(t *testing.T) {
	// Two-tier degenerate case reproduces Savings exactly.
	want, _ := Savings(0.40, 1.0/3)
	got, err := SavingsTiered([]TierShare{
		{Name: "dram", Fraction: 0.60, CostRatio: 1.0},
		{Name: "slow", Fraction: 0.40, CostRatio: 1.0 / 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("two-tier SavingsTiered = %v, Savings = %v", got, want)
	}

	// Three-tier DRAM/CXL/NVM split: blended cost 0.5 + 0.3*0.5 + 0.2*0.2
	// = 0.69, saving 31%.
	got, err = SavingsTiered([]TierShare{
		{Name: "dram", Fraction: 0.5, CostRatio: 1.0},
		{Name: "cxl", Fraction: 0.3, CostRatio: 0.5},
		{Name: "nvm", Fraction: 0.2, CostRatio: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.31) > 1e-12 {
		t.Fatalf("three-tier SavingsTiered = %v, want 0.31", got)
	}

	// All bytes in DRAM saves nothing.
	got, err = SavingsTiered([]TierShare{{Name: "dram", Fraction: 1, CostRatio: 1}})
	if err != nil || got != 0 {
		t.Fatalf("all-DRAM = %v, %v", got, err)
	}

	// Validation: empty, bad fraction, bad ratio, fractions not summing to 1.
	if _, err := SavingsTiered(nil); err == nil {
		t.Error("empty shares accepted")
	}
	if _, err := SavingsTiered([]TierShare{{Fraction: 1.2, CostRatio: 1}}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := SavingsTiered([]TierShare{{Fraction: 1, CostRatio: 2}}); err == nil {
		t.Error("cost ratio > 1 accepted")
	}
	if _, err := SavingsTiered([]TierShare{
		{Fraction: 0.5, CostRatio: 1},
		{Fraction: 0.2, CostRatio: 0.5},
	}); err == nil {
		t.Error("fractions summing to 0.7 accepted")
	}
}
