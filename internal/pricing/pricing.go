// Package pricing implements the paper's DRAM cost-savings model (§5.3,
// Table 4): when a fraction of the application footprint lives in slow
// memory priced at a fraction of DRAM, the memory spend saved relative to
// an all-DRAM system is coldFrac · (1 − costRatio).
package pricing

import "fmt"

// PaperRatios are the slow:DRAM cost points Table 4 evaluates.
var PaperRatios = []float64{1.0 / 3, 1.0 / 4, 1.0 / 5}

// Savings returns the fraction of memory spending saved when coldFrac of
// the footprint is placed in slow memory costing costRatio of DRAM per GB.
func Savings(coldFrac, costRatio float64) (float64, error) {
	if coldFrac < 0 || coldFrac > 1 {
		return 0, fmt.Errorf("pricing: cold fraction %v outside [0, 1]", coldFrac)
	}
	if costRatio < 0 || costRatio > 1 {
		return 0, fmt.Errorf("pricing: cost ratio %v outside [0, 1]", costRatio)
	}
	return coldFrac * (1 - costRatio), nil
}

// TierShare is one tier's slice of the footprint for the N-tier cost model:
// the fraction of application bytes resident there and the tier's per-GB
// cost relative to DRAM.
type TierShare struct {
	Name      string
	Fraction  float64
	CostRatio float64
}

// SavingsTiered generalizes Savings to an N-tier hierarchy: the blended
// per-GB spend is Σ fraction_i · costRatio_i, and the savings relative to an
// all-DRAM system of the same footprint is one minus that. Fractions must
// sum to 1 (within rounding); the paper's two-tier model is the special case
// {(hot, 1.0), (cold, ratio)}.
func SavingsTiered(shares []TierShare) (float64, error) {
	if len(shares) == 0 {
		return 0, fmt.Errorf("pricing: no tier shares")
	}
	var fracSum, blended float64
	for _, s := range shares {
		if s.Fraction < 0 || s.Fraction > 1 {
			return 0, fmt.Errorf("pricing: tier %q fraction %v outside [0, 1]", s.Name, s.Fraction)
		}
		if s.CostRatio < 0 || s.CostRatio > 1 {
			return 0, fmt.Errorf("pricing: tier %q cost ratio %v outside [0, 1]", s.Name, s.CostRatio)
		}
		fracSum += s.Fraction
		blended += s.Fraction * s.CostRatio
	}
	if fracSum < 0.999 || fracSum > 1.001 {
		return 0, fmt.Errorf("pricing: tier fractions sum to %v, want 1", fracSum)
	}
	return 1 - blended, nil
}

// BreakEvenSlowdown estimates the maximum tolerable slowdown before the
// memory savings are wiped out by extra CPU provisioning, given the
// memory share of total system cost and the achieved savings fraction.
// A slowdown of s requires ~s more CPU+rest capacity to hold throughput:
// net win requires savings·memShare > s·(1−memShare).
func BreakEvenSlowdown(savings, memShare float64) (float64, error) {
	if savings < 0 || savings > 1 {
		return 0, fmt.Errorf("pricing: savings %v outside [0, 1]", savings)
	}
	if memShare <= 0 || memShare >= 1 {
		return 0, fmt.Errorf("pricing: memory cost share %v outside (0, 1)", memShare)
	}
	return savings * memShare / (1 - memShare), nil
}
