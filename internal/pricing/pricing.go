// Package pricing implements the paper's DRAM cost-savings model (§5.3,
// Table 4): when a fraction of the application footprint lives in slow
// memory priced at a fraction of DRAM, the memory spend saved relative to
// an all-DRAM system is coldFrac · (1 − costRatio).
package pricing

import "fmt"

// PaperRatios are the slow:DRAM cost points Table 4 evaluates.
var PaperRatios = []float64{1.0 / 3, 1.0 / 4, 1.0 / 5}

// Savings returns the fraction of memory spending saved when coldFrac of
// the footprint is placed in slow memory costing costRatio of DRAM per GB.
func Savings(coldFrac, costRatio float64) (float64, error) {
	if coldFrac < 0 || coldFrac > 1 {
		return 0, fmt.Errorf("pricing: cold fraction %v outside [0, 1]", coldFrac)
	}
	if costRatio < 0 || costRatio > 1 {
		return 0, fmt.Errorf("pricing: cost ratio %v outside [0, 1]", costRatio)
	}
	return coldFrac * (1 - costRatio), nil
}

// BreakEvenSlowdown estimates the maximum tolerable slowdown before the
// memory savings are wiped out by extra CPU provisioning, given the
// memory share of total system cost and the achieved savings fraction.
// A slowdown of s requires ~s more CPU+rest capacity to hold throughput:
// net win requires savings·memShare > s·(1−memShare).
func BreakEvenSlowdown(savings, memShare float64) (float64, error) {
	if savings < 0 || savings > 1 {
		return 0, fmt.Errorf("pricing: savings %v outside [0, 1]", savings)
	}
	if memShare <= 0 || memShare >= 1 {
		return 0, fmt.Errorf("pricing: memory cost share %v outside (0, 1)", memShare)
	}
	return savings * memShare / (1 - memShare), nil
}
