package cache

import (
	"testing"
	"testing/quick"

	"thermostat/internal/addr"
	"thermostat/internal/rng"
)

func small() *Cache {
	// 4 sets x 2 ways x 64B lines = 512B.
	return New(Config{SizeBytes: 512, LineSize: 64, Ways: 2})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if c.Access(addr.Phys(0)) {
		t.Fatal("cold access hit")
	}
	if !c.Access(addr.Phys(0)) {
		t.Fatal("warm access missed")
	}
	if !c.Access(addr.Phys(63)) {
		t.Fatal("same-line access missed")
	}
	if c.Access(addr.Phys(64)) {
		t.Fatal("next-line access hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	c := small() // 4 sets, 2 ways: lines mapping to set 0 are 0, 4, 8, ...
	lineBytes := uint64(64)
	setStride := 4 * lineBytes
	a := addr.Phys(0 * setStride)
	b := addr.Phys(1 * setStride)
	d := addr.Phys(2 * setStride)
	c.Access(a)
	c.Access(b)
	c.Access(a) // refresh a; b is LRU
	c.Access(d) // evicts b
	if !c.Contains(a) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(b) {
		t.Fatal("LRU line survived")
	}
	if !c.Contains(d) {
		t.Fatal("inserted line missing")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := small()
	c.Access(addr.Phys(0))
	before := c.Stats()
	if !c.Contains(addr.Phys(0)) || c.Contains(addr.Phys(64)) {
		t.Fatal("Contains wrong")
	}
	if c.Stats() != before {
		t.Fatal("Contains changed counters")
	}
}

func TestFlush(t *testing.T) {
	c := small()
	c.Access(addr.Phys(0))
	c.Flush()
	if c.Contains(addr.Phys(0)) {
		t.Fatal("line survived flush")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 20, LineSize: 64, Ways: 16})
	// Touch 256KB twice; second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		c.ResetStats()
		for off := uint64(0); off < 256<<10; off += 64 {
			c.Access(addr.Phys(off))
		}
		if pass == 1 && c.Stats().Misses != 0 {
			t.Fatalf("resident working set missed %d times", c.Stats().Misses)
		}
	}
}

func TestWorkingSetExceedsCapacityThrashes(t *testing.T) {
	c := New(Config{SizeBytes: 64 << 10, LineSize: 64, Ways: 16})
	// Stream 1MB repeatedly: with LRU and a working set 16x capacity,
	// essentially everything misses.
	c.ResetStats()
	for pass := 0; pass < 2; pass++ {
		for off := uint64(0); off < 1<<20; off += 64 {
			c.Access(addr.Phys(off))
		}
	}
	if mr := c.Stats().MissRate(); mr < 0.99 {
		t.Fatalf("streaming miss rate = %v, want ~1", mr)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(Config{})
	if c.nSets == 0 || c.ways != 16 {
		t.Fatalf("defaults not applied: %d sets, %d ways", c.nSets, c.ways)
	}
}

func TestBadLineSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two line")
		}
	}()
	New(Config{SizeBytes: 1024, LineSize: 48, Ways: 2})
}

func TestMissRateEmpty(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty MissRate should be 0")
	}
}

// Property: an immediate re-access of any address is always a hit, and the
// hit+miss counters always sum to the access count.
func TestReaccessHitsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := New(Config{SizeBytes: 8 << 10, LineSize: 64, Ways: 4})
		accesses := uint64(0)
		for i := 0; i < 500; i++ {
			p := addr.Phys(r.Uint64n(1 << 20))
			c.Access(p)
			accesses++
			if !c.Access(p) {
				return false
			}
			accesses++
		}
		return c.Stats().Accesses() == accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := New(DefaultConfig())
	c.Access(addr.Phys(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addr.Phys(0))
	}
}

func BenchmarkAccessStream(b *testing.B) {
	c := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addr.Phys(uint64(i) * 64))
	}
}
