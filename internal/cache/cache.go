// Package cache models a set-associative last-level cache over physical
// addresses. The simulator uses it for two things: charging realistic memory
// latency only on misses, and providing the ground-truth per-page memory
// access rate (LLC misses per page) that Figure 2 plots against
// Accessed-bit-derived estimates.
package cache

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/stats"
)

// Config sizes the cache.
type Config struct {
	// SizeBytes is total capacity (default 45MB, the testbed's per-socket
	// LLC).
	SizeBytes uint64
	// LineSize is the cache-line size in bytes (default 64).
	LineSize uint64
	// Ways is the associativity (default 16).
	Ways int
}

// DefaultConfig matches the paper's Xeon E5-2699 v3 (45MB LLC).
func DefaultConfig() Config {
	return Config{SizeBytes: 45 << 20, LineSize: 64, Ways: 16}
}

// Cache is a set-associative LRU cache of physical line addresses.
type Cache struct {
	lineShift uint
	nSets     uint64
	ways      int
	// tags[set*ways : (set+1)*ways] holds line tags, most recent first;
	// valid[i] marks live entries.
	tags  []uint64
	valid []bool

	hits   stats.Counter
	misses stats.Counter
}

// New builds a cache from cfg, applying defaults for zero fields. Panics if
// the geometry is degenerate (fewer than one set).
func New(cfg Config) *Cache {
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = DefaultConfig().SizeBytes
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = 64
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 16
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", cfg.LineSize))
	}
	nSets := cfg.SizeBytes / cfg.LineSize / uint64(cfg.Ways)
	if nSets == 0 {
		panic(fmt.Sprintf("cache: config %+v yields zero sets", cfg))
	}
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{
		lineShift: shift,
		nSets:     nSets,
		ways:      cfg.Ways,
		tags:      make([]uint64, nSets*uint64(cfg.Ways)),
		valid:     make([]bool, nSets*uint64(cfg.Ways)),
	}
}

// Access looks up the line containing p, inserting it on a miss. Returns
// true on a hit.
func (c *Cache) Access(p addr.Phys) bool {
	line := uint64(p) >> c.lineShift
	set := line % c.nSets
	base := int(set) * c.ways
	// Search the set.
	for i := 0; i < c.ways; i++ {
		if c.valid[base+i] && c.tags[base+i] == line {
			// Move to front (LRU position 0).
			for j := i; j > 0; j-- {
				c.tags[base+j] = c.tags[base+j-1]
				c.valid[base+j] = c.valid[base+j-1]
			}
			c.tags[base] = line
			c.valid[base] = true
			c.hits.Inc()
			return true
		}
	}
	// Miss: evict LRU (last way), shift, insert at front.
	for j := c.ways - 1; j > 0; j-- {
		c.tags[base+j] = c.tags[base+j-1]
		c.valid[base+j] = c.valid[base+j-1]
	}
	c.tags[base] = line
	c.valid[base] = true
	c.misses.Inc()
	return false
}

// Contains reports whether the line holding p is cached, without updating
// LRU state or counters.
func (c *Cache) Contains(p addr.Phys) bool {
	line := uint64(p) >> c.lineShift
	set := line % c.nSets
	base := int(set) * c.ways
	for i := 0; i < c.ways; i++ {
		if c.valid[base+i] && c.tags[base+i] == line {
			return true
		}
	}
	return false
}

// Flush invalidates every line.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// Stats reports hit/miss counts.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns total lookups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses (0 if none).
func (s Stats) MissRate() float64 {
	n := s.Accesses()
	if n == 0 {
		return 0
	}
	return float64(s.Misses) / float64(n)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Value(), Misses: c.misses.Value()}
}

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() {
	c.hits.Reset()
	c.misses.Reset()
}
