// Package cache models a set-associative last-level cache over physical
// addresses. The simulator uses it for two things: charging realistic memory
// latency only on misses, and providing the ground-truth per-page memory
// access rate (LLC misses per page) that Figure 2 plots against
// Accessed-bit-derived estimates.
package cache

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/stats"
)

// Config sizes the cache.
type Config struct {
	// SizeBytes is total capacity (default 45MB, the testbed's per-socket
	// LLC).
	SizeBytes uint64
	// LineSize is the cache-line size in bytes (default 64).
	LineSize uint64
	// Ways is the associativity (default 16).
	Ways int
}

// DefaultConfig matches the paper's Xeon E5-2699 v3 (45MB LLC).
func DefaultConfig() Config {
	return Config{SizeBytes: 45 << 20, LineSize: 64, Ways: 16}
}

// Cache is a set-associative LRU cache of physical line addresses.
type Cache struct {
	lineShift uint
	nSets     uint64
	ways      int
	// tags[set*ways : (set+1)*ways] holds line tags biased by +1, most
	// recent first; 0 marks an invalid way, so no separate valid bitmap is
	// needed on the per-access path.
	tags []uint64

	hits   stats.Counter
	misses stats.Counter
}

// New builds a cache from cfg, applying defaults for zero fields. Panics if
// the geometry is degenerate (fewer than one set).
func New(cfg Config) *Cache {
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = DefaultConfig().SizeBytes
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = 64
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 16
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", cfg.LineSize))
	}
	nSets := cfg.SizeBytes / cfg.LineSize / uint64(cfg.Ways)
	if nSets == 0 {
		panic(fmt.Sprintf("cache: config %+v yields zero sets", cfg))
	}
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{
		lineShift: shift,
		nSets:     nSets,
		ways:      cfg.Ways,
		tags:      make([]uint64, nSets*uint64(cfg.Ways)),
	}
}

// Access looks up the line containing p, inserting it on a miss. Returns
// true on a hit.
func (c *Cache) Access(p addr.Phys) bool {
	line := uint64(p) >> c.lineShift
	set := line % c.nSets
	base := int(set) * c.ways
	ways := c.tags[base : base+c.ways]
	tag := line + 1
	if ways[0] == tag {
		c.hits.Inc()
		return true
	}
	// Search the rest of the set.
	for i := 1; i < len(ways); i++ {
		if ways[i] == tag {
			// Move to front (LRU position 0).
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			c.hits.Inc()
			return true
		}
	}
	// Miss: evict LRU (last way), shift, insert at front.
	copy(ways[1:], ways)
	ways[0] = tag
	c.misses.Inc()
	return false
}

// Contains reports whether the line holding p is cached, without updating
// LRU state or counters.
func (c *Cache) Contains(p addr.Phys) bool {
	line := uint64(p) >> c.lineShift
	set := line % c.nSets
	base := int(set) * c.ways
	for i := 0; i < c.ways; i++ {
		if c.tags[base+i] == line+1 {
			return true
		}
	}
	return false
}

// Flush invalidates every line.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
	}
}

// Stats reports hit/miss counts.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns total lookups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses (0 if none).
func (s Stats) MissRate() float64 {
	n := s.Accesses()
	if n == 0 {
		return 0
	}
	return float64(s.Misses) / float64(n)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Value(), Misses: c.misses.Value()}
}

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() {
	c.hits.Reset()
	c.misses.Reset()
}
