// Package fleet arbitrates one two-tiered memory hierarchy among many
// tenants. Each tenant runs its own Tracker × Policy engine against its own
// slowdown objective; the fleet layer owns the machine-wide DRAM budget and
// redistributes it every arbiter period: floors first, then surplus in
// proportion to priority, boosted for tenants currently missing their SLO.
// Grants are enforced through the tenants' cgroups (SetLimit + Squeeze).
//
// Everything here is deterministic: the arbiter is a pure integer function
// of its inputs, the run loop interleaves tenants by smooth weighted
// round-robin, and churn follows an explicit virtual-time schedule. A fleet
// of one tenant with the full pool degenerates to exactly the single-tenant
// sim.Run loop — bit-identical counters and telemetry — which is the
// anchor the differential tests pin.
package fleet

import (
	"errors"
	"fmt"
)

// Demand is one tenant's input to an arbitration round.
type Demand struct {
	// Name identifies the tenant (reports only; the arbiter is positional).
	Name string
	// Priority weights surplus distribution (must be >= 1).
	Priority int
	// FloorBytes is the guaranteed minimum grant.
	FloorBytes uint64
	// DemandBytes is the tenant's current total footprint. Informational:
	// grants may exceed it (idle headroom is how fleet-wide savings show
	// up — granted-but-unused DRAM is measured, not spent).
	DemandBytes uint64
	// SlowdownPct is the tenant engine's own slowdown estimate (measured
	// cold-access rate × slow-memory latency); SLOPct its objective.
	// SlowdownPct > SLOPct boosts the tenant's surplus weight.
	SlowdownPct float64
	SLOPct      float64
}

// ErrOversubscribed reports that the tenants' floors alone exceed the pool.
var ErrOversubscribed = errors.New("fleet: floor grants oversubscribe the pool")

// sloBoostCap bounds the SLO-pressure multiplier so one badly-missing
// tenant cannot starve the rest of the surplus.
const sloBoostCap = 4

// weight is the tenant's surplus share: priority, multiplied by how badly
// it is missing its SLO (clamped to sloBoostCap). A tenant with no SLO
// (SLOPct <= 0) never gets a boost.
func weight(d Demand) uint64 {
	w := uint64(d.Priority)
	if d.SLOPct > 0 && d.SlowdownPct > d.SLOPct {
		boost := uint64(d.SlowdownPct / d.SLOPct)
		if boost < 2 {
			boost = 2
		}
		if boost > sloBoostCap {
			boost = sloBoostCap
		}
		w *= boost
	}
	return w
}

// Arbitrate splits poolBytes among the tenants: every tenant receives its
// floor, and the surplus is divided in proportion to weight() using integer
// arithmetic with the sub-byte remainder handed to the first tenant — fully
// deterministic, no rounding drift. The whole pool is always handed out
// (granted-but-unused DRAM is the fleet's measured saving).
//
// Invariants, for every error-free return (enforced by FuzzFleetArbiter):
//
//	sum(grants) == poolBytes
//	grants[i] >= ds[i].FloorBytes for all i
//
// A single tenant always receives the full pool, which is what keeps the
// degenerate one-tenant fleet bit-identical to a solo run.
func Arbitrate(poolBytes uint64, ds []Demand) ([]uint64, error) {
	if len(ds) == 0 {
		return nil, nil
	}
	var floors uint64
	for i, d := range ds {
		if d.Priority < 1 {
			return nil, fmt.Errorf("fleet: tenant %d (%s) priority %d < 1", i, d.Name, d.Priority)
		}
		if d.FloorBytes > poolBytes-floors {
			return nil, ErrOversubscribed
		}
		floors += d.FloorBytes
	}
	surplus := poolBytes - floors
	var totalW uint64
	for _, d := range ds {
		totalW += weight(d)
	}
	grants := make([]uint64, len(ds))
	var handed uint64
	for i, d := range ds {
		extra := surplus / totalW * weight(d)
		// Two-step division instead of surplus*w/totalW: immune to
		// overflow for any pool size, still deterministic. The per-tenant
		// truncation loss goes to tenant 0 below.
		grants[i] = d.FloorBytes + extra
		handed += extra
	}
	grants[0] += surplus - handed
	return grants, nil
}
