package fleet

import (
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestArbitrateSingleTenantGetsPool(t *testing.T) {
	t.Parallel()
	for _, pool := range []uint64{0, 1, 2 << 20, 123456789, 1 << 40} {
		grants, err := Arbitrate(pool, []Demand{{Name: "solo", Priority: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if grants[0] != pool {
			t.Fatalf("pool %d: lone tenant granted %d", pool, grants[0])
		}
	}
}

func TestArbitratePriorityWeighting(t *testing.T) {
	t.Parallel()
	pool := uint64(300 << 20)
	grants, err := Arbitrate(pool, []Demand{
		{Name: "a", Priority: 2},
		{Name: "b", Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if grants[0] <= grants[1] {
		t.Fatalf("priority 2 granted %d <= priority 1 granted %d", grants[0], grants[1])
	}
	if grants[0]+grants[1] != pool {
		t.Fatalf("grants %d+%d != pool %d", grants[0], grants[1], pool)
	}
}

func TestArbitrateSLOBoost(t *testing.T) {
	t.Parallel()
	pool := uint64(300 << 20)
	flat, err := Arbitrate(pool, []Demand{
		{Name: "a", Priority: 1, SlowdownPct: 1, SLOPct: 3},
		{Name: "b", Priority: 1, SlowdownPct: 1, SLOPct: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := Arbitrate(pool, []Demand{
		{Name: "a", Priority: 1, SlowdownPct: 9, SLOPct: 3},
		{Name: "b", Priority: 1, SlowdownPct: 1, SLOPct: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if flat[0] != flat[1] {
		t.Fatalf("equal tenants granted unequally: %v", flat)
	}
	if boosted[0] <= boosted[1] {
		t.Fatalf("SLO-missing tenant not boosted: %v", boosted)
	}
}

func TestArbitrateFloorsAndOversubscription(t *testing.T) {
	t.Parallel()
	pool := uint64(100 << 20)
	grants, err := Arbitrate(pool, []Demand{
		{Name: "a", Priority: 1, FloorBytes: 90 << 20},
		{Name: "b", Priority: 9, FloorBytes: 5 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if grants[0] < 90<<20 || grants[1] < 5<<20 {
		t.Fatalf("floors violated: %v", grants)
	}
	_, err = Arbitrate(pool, []Demand{
		{Name: "a", Priority: 1, FloorBytes: 90 << 20},
		{Name: "b", Priority: 1, FloorBytes: 20 << 20},
	})
	if !errors.Is(err, ErrOversubscribed) {
		t.Fatalf("want ErrOversubscribed, got %v", err)
	}
}

// decodeDemands derives a tenant population from fuzz bytes: 26 bytes per
// tenant, up to 64 tenants. Priorities land in [1, 8] so only the
// pool/floor geometry is fuzzed through the error path.
func decodeDemands(data []byte) []Demand {
	const rec = 26
	n := len(data) / rec
	if n > 64 {
		n = 64
	}
	ds := make([]Demand, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*rec : (i+1)*rec]
		ds = append(ds, Demand{
			Priority:    1 + int(b[0]%8),
			FloorBytes:  binary.LittleEndian.Uint64(b[1:9]),
			DemandBytes: binary.LittleEndian.Uint64(b[9:17]),
			SlowdownPct: float64(binary.LittleEndian.Uint32(b[17:21])) / 1000,
			SLOPct:      float64(binary.LittleEndian.Uint32(b[21:25])) / 1000,
		})
	}
	return ds
}

// FuzzFleetArbiter holds Arbitrate to its contract on arbitrary pools and
// tenant populations: error-free rounds hand out exactly the pool with
// every floor honored; error rounds only ever reject genuinely
// oversubscribed floors; and the function is a pure deterministic map.
func FuzzFleetArbiter(f *testing.F) {
	seed := func(pool uint64, ds []Demand) {
		data := make([]byte, 0, len(ds)*26)
		for _, d := range ds {
			var b [26]byte
			b[0] = byte(d.Priority - 1)
			binary.LittleEndian.PutUint64(b[1:9], d.FloorBytes)
			binary.LittleEndian.PutUint64(b[9:17], d.DemandBytes)
			binary.LittleEndian.PutUint32(b[17:21], uint32(d.SlowdownPct*1000))
			binary.LittleEndian.PutUint32(b[21:25], uint32(d.SLOPct*1000))
			data = append(data, b[:]...)
		}
		f.Add(pool, data)
	}
	seed(1<<30, []Demand{{Priority: 1}})
	seed(1<<30, []Demand{
		{Priority: 2, FloorBytes: 64 << 20, SlowdownPct: 5, SLOPct: 3},
		{Priority: 1, FloorBytes: 32 << 20, SlowdownPct: 1, SLOPct: 3},
		{Priority: 8, FloorBytes: 0, SlowdownPct: 50, SLOPct: 1},
	})
	seed(100<<20, []Demand{
		{Priority: 1, FloorBytes: 90 << 20},
		{Priority: 1, FloorBytes: 20 << 20},
	})
	seed(0, []Demand{{Priority: 1}, {Priority: 4}})
	seed(math.MaxUint64, []Demand{
		{Priority: 8, FloorBytes: math.MaxUint64 / 2},
		{Priority: 8, FloorBytes: math.MaxUint64 / 2},
	})

	f.Fuzz(func(t *testing.T, pool uint64, data []byte) {
		ds := decodeDemands(data)
		grants, err := Arbitrate(pool, ds)
		if err != nil {
			if !errors.Is(err, ErrOversubscribed) {
				t.Fatalf("unexpected error class: %v", err)
			}
			var floors uint64
			for _, d := range ds {
				next := floors + d.FloorBytes
				if next < floors { // genuine uint64 overflow oversubscribes any pool
					return
				}
				floors = next
			}
			if floors <= pool {
				t.Fatalf("rejected feasible floors: sum %d <= pool %d", floors, pool)
			}
			return
		}
		if len(ds) == 0 {
			if grants != nil {
				t.Fatalf("empty population granted %v", grants)
			}
			return
		}
		var sum uint64
		for i, g := range grants {
			if g < ds[i].FloorBytes {
				t.Fatalf("tenant %d granted %d below floor %d", i, g, ds[i].FloorBytes)
			}
			sum += g
		}
		if sum != pool {
			t.Fatalf("grants sum %d != pool %d", sum, pool)
		}
		again, err := Arbitrate(pool, ds)
		if err != nil || !reflect.DeepEqual(grants, again) {
			t.Fatalf("arbitration is not deterministic: %v vs %v (err %v)", grants, again, err)
		}
	})
}
