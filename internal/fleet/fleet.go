package fleet

import (
	"fmt"

	"thermostat/internal/cgroup"
	"thermostat/internal/core"
	"thermostat/internal/sim"
	"thermostat/internal/stats"
	"thermostat/internal/telemetry"
)

// Member is one tenant's fleet-run entry: the tenant plus its churn
// schedule. Times are relative to run start in virtual nanoseconds.
type Member struct {
	Tenant *core.Tenant
	// ArriveNs is when the tenant arrives (0 = present from the start).
	ArriveNs int64
	// DepartNs is when the tenant departs (0 = stays to the end).
	DepartNs int64
	// EstBytes is the expected initial footprint, used for admission
	// control on mid-run arrivals: the fleet squeezes incumbents to make
	// room and rejects the arrival if the fast tier still cannot hold it.
	// 0 skips the check (the arrival then fails the run on a real OOM).
	EstBytes uint64
}

// Config controls a fleet run.
type Config struct {
	// PoolBytes is the DRAM budget arbitrated among tenants (default: the
	// fast tier's capacity).
	PoolBytes uint64
	// Root, when non-nil, is the cgroup parent of every tenant group; its
	// limit is set to PoolBytes so hierarchical accounting caps the fleet.
	Root *cgroup.Group
	// DurationNs is the virtual run length; WindowNs the metric window
	// (default: the arbiter period); WarmupNs the span excluded from
	// summary statistics; MaxOps a safety valve — all as sim.RunConfig.
	DurationNs int64
	WindowNs   int64
	WarmupNs   int64
	MaxOps     uint64
	// ArbiterPeriodNs is the grant-revision period (default: the largest
	// tenant engine interval).
	ArbiterPeriodNs int64
}

// TenantResult summarizes one tenant's run.
type TenantResult struct {
	Name     string
	Priority int
	Share    int
	SLOPct   float64

	// Ops is the tenant's access count; Throughput its post-warmup
	// ops/sec over its resident span.
	Ops        uint64
	Throughput float64
	// Stats is the tenant engine's counters at departure or run end.
	Stats core.Stats
	// MeanSlowdownPct averages the engine's own slowdown estimate over the
	// tenant's post-warmup arbiter periods — the number to hold against
	// SLOPct.
	MeanSlowdownPct float64
	// GrantBytes is the final DRAM grant; FastBytes and FootprintBytes the
	// final residency (zero after departure).
	GrantBytes     uint64
	FastBytes      uint64
	FootprintBytes uint64

	// ArrivedNs and DepartedNs are absolute virtual times; DepartedNs is 0
	// while resident. Rejected marks an arrival the pool could not admit.
	ArrivedNs  int64
	DepartedNs int64
	Rejected   bool
}

// Result is a fleet run's full outcome.
type Result struct {
	// Global carries the machine-wide series and counters in sim.Run's
	// exact shape (PolicyName "fleet"); for a single-tenant fleet it is
	// bit-identical to the solo sim.Run result.
	Global *sim.RunResult
	// Tenants holds per-tenant summaries in member order.
	Tenants []TenantResult
	// Series holds per-tenant snapshots, one per resident tenant per
	// arbiter period, period-major in member order.
	Series []telemetry.TenantSnapshot
	// PoolBytes echoes the arbitrated budget; Periods counts completed
	// arbiter rounds.
	PoolBytes uint64
	Periods   uint64
}

// tenantState is the runner's per-member bookkeeping.
type tenantState struct {
	mem Member
	t   *core.Tenant

	arrived  bool
	active   bool
	rejected bool

	ops       uint64
	warmupOps uint64
	grant     uint64
	interval  int64
	computeNs int64
	nextTick  int64
	wrr       int

	arrivedAt   int64
	departedAt  int64
	slowdownSum float64
	slowdownN   int

	finalStats     core.Stats
	finalFast      uint64
	finalFootprint uint64
}

type runner struct {
	m      *sim.Machine
	cfg    Config
	pool   uint64
	states []tenantState

	start       int64
	warmupClock int64
	totalShare  int
	periods     uint64
	series      []telemetry.TenantSnapshot
}

// Run executes the members' workloads concurrently on one machine under
// fleet arbitration. The loop replicates sim.Run's serial ordering exactly
// — access, clock advance, window drain, then boundary drain — with the
// tenant interleave chosen by smooth weighted round-robin over Share and
// the arbiter riding the boundary drain at its own period. One tenant with
// the full pool and no churn reduces to sim.Run verbatim.
func Run(m *sim.Machine, cfg Config, members []Member) (*Result, error) {
	if cfg.DurationNs <= 0 {
		return nil, fmt.Errorf("fleet: non-positive duration %d", cfg.DurationNs)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: no members")
	}
	pool := cfg.PoolBytes
	if pool == 0 {
		pool = m.Memory().Tier(0).Capacity()
	}
	r := &runner{m: m, cfg: cfg, pool: pool, states: make([]tenantState, len(members))}
	maxInterval := int64(0)
	for i, mb := range members {
		if mb.Tenant == nil {
			return nil, fmt.Errorf("fleet: member %d has no tenant", i)
		}
		if err := mb.Tenant.Validate(); err != nil {
			return nil, err
		}
		iv := mb.Tenant.Engine.IntervalNs()
		if iv <= 0 {
			return nil, fmt.Errorf("fleet: tenant %q interval %d <= 0", mb.Tenant.Name, iv)
		}
		if iv > maxInterval {
			maxInterval = iv
		}
		r.states[i] = tenantState{
			mem: mb, t: mb.Tenant,
			interval:  iv,
			computeNs: mb.Tenant.App.ComputeNs(),
		}
	}
	arb := cfg.ArbiterPeriodNs
	if arb <= 0 {
		arb = maxInterval
	}
	window := cfg.WindowNs
	if window <= 0 {
		window = arb
	}
	if cfg.Root != nil {
		cfg.Root.SetLimit(pool)
	}

	r.start = m.Clock()
	end := r.start + cfg.DurationNs
	r.warmupClock = r.start + cfg.WarmupNs

	// Admit the initial population in member order, then assign initial
	// grants silently (no telemetry: tenants present at start are part of
	// the run's shape, not churn events).
	for i := range r.states {
		st := &r.states[i]
		if st.mem.ArriveNs <= 0 {
			if err := r.attach(st, r.start); err != nil {
				return nil, err
			}
		}
	}
	if r.totalShare == 0 && !r.anyPendingArrival() {
		return nil, fmt.Errorf("fleet: no tenant ever present")
	}
	if err := r.assignGrants(r.start); err != nil {
		return nil, err
	}

	// A single-tenant no-churn fleet is the degenerate case the
	// differential tests pin against sim.Run: bind the epoch tracker to
	// that tenant's engine so per-epoch confusion and fault columns match
	// the solo run. With real multi-tenancy no single policy owns the
	// machine and the tracker runs unbound.
	var et *sim.EpochTracker
	if len(r.states) == 1 && r.states[0].mem.ArriveNs <= 0 && r.states[0].mem.DepartNs == 0 {
		et = sim.NewEpochTracker(m, r.states[0].t.Engine)
	} else {
		et = sim.NewEpochTracker(m, nil)
	}

	res := &sim.RunResult{
		AppName:    r.fleetName(),
		PolicyName: "fleet",
		SlowRate:   stats.NewSeries("slow-access-rate"),
		Cold2M:     stats.NewSeries("cold-2M-bytes"),
		Cold4K:     stats.NewSeries("cold-4K-bytes"),
		Hot2M:      stats.NewSeries("hot-2M-bytes"),
		Hot4K:      stats.NewSeries("hot-4K-bytes"),
	}

	nextWindow := r.start + window
	nextArb := r.start + arb
	var windowStartSlow uint64
	var totalOps, warmupOps uint64

	for m.Clock() < end {
		if cfg.MaxOps > 0 && totalOps >= cfg.MaxOps {
			break
		}
		if pick := r.pickTenant(); pick >= 0 {
			st := &r.states[pick]
			st.wrr -= r.totalShare
			v, write := st.t.App.Next()
			if _, err := m.Access(v, write); err != nil {
				return nil, fmt.Errorf("fleet: %s op %d: %w", st.t.Name, st.ops, err)
			}
			if st.computeNs > 0 {
				m.AdvanceClock(st.computeNs)
			}
			st.ops++
			totalOps++
			if cfg.WarmupNs > 0 && m.Clock() <= r.warmupClock {
				warmupOps = totalOps
				st.warmupOps = st.ops
			}
		} else {
			// Nobody resident: idle forward to the next boundary or
			// arrival so churn-only stretches cannot spin.
			next := nextWindow
			if nextArb < next {
				next = nextArb
			}
			for i := range r.states {
				st := &r.states[i]
				if !st.arrived && !st.rejected {
					if at := r.start + st.mem.ArriveNs; at > m.Clock() && at < next {
						next = at
					}
				}
			}
			if end < next {
				next = end
			}
			if d := next - m.Clock(); d > 0 {
				m.AdvanceClock(d)
			}
		}

		now := m.Clock()
		// Window drain first, exactly as sim.Run: the metric series see
		// machine state before any boundary work at the same instant.
		for now >= nextWindow {
			slow := m.Metrics().SlowAccesses
			res.SlowRate.Append(nextWindow-r.start, stats.Rate(slow-windowStartSlow, window))
			windowStartSlow = slow
			fp := sim.ScanFootprint(m, nil)
			res.Cold2M.Append(nextWindow-r.start, float64(fp.Cold2M))
			res.Cold4K.Append(nextWindow-r.start, float64(fp.Cold4K))
			res.Hot2M.Append(nextWindow-r.start, float64(fp.Hot2M))
			res.Hot4K.Append(nextWindow-r.start, float64(fp.Hot4K))
			nextWindow += window
		}
		// Churn: due arrivals then due departures, member order.
		for i := range r.states {
			st := &r.states[i]
			if !st.arrived && !st.rejected && st.mem.ArriveNs > 0 && now >= r.start+st.mem.ArriveNs {
				if err := r.admit(st, now); err != nil {
					return nil, err
				}
			}
		}
		for i := range r.states {
			st := &r.states[i]
			if st.active && st.mem.DepartNs > 0 && now >= r.start+st.mem.DepartNs {
				if err := r.depart(st, now); err != nil {
					return nil, err
				}
			}
		}
		// Boundary drain: tenant ticks and arbiter rounds in time order,
		// ties to the tenant (matching sim.Run, where the policy tick runs
		// before the epoch roll at the same boundary).
		for {
			bi, bt := -1, int64(0)
			for i := range r.states {
				st := &r.states[i]
				if st.active && now >= st.nextTick && (bi == -1 || st.nextTick < bt) {
					bi, bt = i, st.nextTick
				}
			}
			if now >= nextArb && (bi == -1 || nextArb < bt) {
				if err := r.arbitrate(now); err != nil {
					return nil, err
				}
				r.periods++
				et.Roll(now)
				nextArb += arb
				continue
			}
			if bi == -1 {
				break
			}
			st := &r.states[bi]
			if err := st.t.App.Tick(m, now); err != nil {
				return nil, fmt.Errorf("fleet: %s tick: %w", st.t.Name, err)
			}
			if err := st.t.Engine.Tick(m, now); err != nil {
				return nil, fmt.Errorf("fleet: %s tick: %w", st.t.Name, err)
			}
			st.nextTick += st.interval
		}
	}
	et.End(m.Clock())

	res.Ops = totalOps
	res.DurationNs = m.Clock() - r.start
	span := res.DurationNs - cfg.WarmupNs
	if span <= 0 {
		span = res.DurationNs
		warmupOps = 0
	}
	res.Throughput = stats.Rate(totalOps-warmupOps, span)
	res.FinalFootprint = sim.ScanFootprint(m, nil)
	res.Metrics = m.Metrics()

	out := &Result{Global: res, PoolBytes: pool, Periods: r.periods, Series: r.series}
	for i := range r.states {
		st := &r.states[i]
		if st.active {
			st.finalStats = st.t.Engine.Stats()
			st.finalFast = st.t.FastBytes(m)
			st.finalFootprint = st.t.FootprintBytes(m)
		}
		tr := TenantResult{
			Name: st.t.Name, Priority: st.t.Priority, Share: st.t.Share,
			SLOPct: st.t.SLOPct, Ops: st.ops, Stats: st.finalStats,
			GrantBytes: st.grant, FastBytes: st.finalFast,
			FootprintBytes: st.finalFootprint,
			ArrivedNs:      st.arrivedAt, DepartedNs: st.departedAt,
			Rejected: st.rejected,
		}
		if st.slowdownN > 0 {
			tr.MeanSlowdownPct = st.slowdownSum / float64(st.slowdownN)
		}
		if st.arrived {
			from := st.arrivedAt
			if r.warmupClock > from {
				from = r.warmupClock
			}
			to := st.departedAt
			if to == 0 {
				to = m.Clock()
			}
			tspan := to - from
			tops := st.ops - st.warmupOps
			if tspan <= 0 {
				tspan = to - st.arrivedAt
				tops = st.ops
			}
			tr.Throughput = stats.Rate(tops, tspan)
		}
		out.Tenants = append(out.Tenants, tr)
	}
	return out, nil
}

// fleetName joins the member names for the global result.
func (r *runner) fleetName() string {
	name := ""
	for i := range r.states {
		if i > 0 {
			name += "+"
		}
		name += r.states[i].t.Name
	}
	return name
}

// pickTenant runs one step of smooth weighted round-robin over the resident
// tenants: bump every credit by its share, run the highest (first wins
// ties), debit it by the total. Deterministic, and with one tenant it
// degenerates to "always tenant 0".
func (r *runner) pickTenant() int {
	pick := -1
	for i := range r.states {
		st := &r.states[i]
		if !st.active {
			continue
		}
		st.wrr += st.t.Share
		if pick < 0 || st.wrr > r.states[pick].wrr {
			pick = i
		}
	}
	return pick
}

func (r *runner) anyPendingArrival() bool {
	for i := range r.states {
		if !r.states[i].arrived && r.states[i].mem.ArriveNs > 0 {
			return true
		}
	}
	return false
}

// attach initializes a tenant's workload and engine on the machine.
func (r *runner) attach(st *tenantState, now int64) error {
	if err := st.t.App.Init(r.m); err != nil {
		return fmt.Errorf("fleet: init %s: %w", st.t.Name, err)
	}
	if err := st.t.Engine.Attach(r.m); err != nil {
		return fmt.Errorf("fleet: attach %s: %w", st.t.Name, err)
	}
	st.arrived, st.active = true, true
	st.arrivedAt = now
	st.nextTick = now + st.interval
	r.totalShare += st.t.Share
	return nil
}

// admit handles one mid-run arrival: check floors, squeeze incumbents down
// to the post-arrival grants, verify the fast tier can hold the newcomer,
// then attach it. A rejected tenant never joins arbitration again.
func (r *runner) admit(st *tenantState, now int64) error {
	var floors uint64
	for i := range r.states {
		if r.states[i].active {
			floors += r.states[i].t.FloorBytes
		}
	}
	if floors+st.t.FloorBytes > r.pool {
		st.rejected = true
		return nil
	}
	// Provisional arbitration with the newcomer's estimate as its demand:
	// incumbents shrink to their post-arrival grants and squeeze out the
	// difference before the newcomer allocates.
	ds := make([]Demand, 0, len(r.states))
	idx := make([]int, 0, len(r.states))
	for i := range r.states {
		s := &r.states[i]
		if s.active {
			ds = append(ds, r.demandOf(s))
			idx = append(idx, i)
		}
	}
	ds = append(ds, Demand{Name: st.t.Name, Priority: st.t.Priority,
		FloorBytes: st.t.FloorBytes, DemandBytes: st.mem.EstBytes, SLOPct: st.t.SLOPct})
	grants, err := Arbitrate(r.pool, ds)
	if err != nil {
		st.rejected = true
		return nil
	}
	for k, i := range idx {
		if err := r.applyGrant(&r.states[i], grants[k], now); err != nil {
			return err
		}
	}
	if st.mem.EstBytes > 0 && r.m.Memory().Tier(0).Free() < st.mem.EstBytes {
		st.rejected = true
		return nil
	}
	if err := r.attach(st, now); err != nil {
		return err
	}
	if err := r.applyGrant(st, grants[len(grants)-1], now); err != nil {
		return err
	}
	r.syncUsage(st)
	if rec := r.m.Recorder(); rec != nil {
		rec.Event(telemetry.Event{Kind: telemetry.KindTenantArrived,
			TimeNs: now, Tenant: st.t.Name, Bytes: st.grant})
	}
	return nil
}

// depart tears one tenant down: release its memory wholesale, settle its
// accounting, and freeze its summary counters. The pages, TLB entries and
// trap state all vanish with FreeRegion, so nothing of the tenant outlives
// it on the machine — the fuzz battery holds the run to that.
func (r *runner) depart(st *tenantState, now int64) error {
	st.finalStats = st.t.Engine.Stats()
	var freed uint64
	for _, reg := range st.t.Regions() {
		perTier, err := r.m.FreeRegion(reg)
		if err != nil {
			return fmt.Errorf("fleet: depart %s: %w", st.t.Name, err)
		}
		for _, b := range perTier {
			freed += b
		}
	}
	st.t.Group.Uncharge(st.t.Group.Usage())
	st.t.Group.SetLimit(0)
	st.active = false
	st.departedAt = now
	r.totalShare -= st.t.Share
	if rec := r.m.Recorder(); rec != nil {
		rec.Event(telemetry.Event{Kind: telemetry.KindTenantDeparted,
			TimeNs: now, Tenant: st.t.Name, Bytes: freed})
	}
	return nil
}

func (r *runner) demandOf(st *tenantState) Demand {
	return Demand{
		Name:        st.t.Name,
		Priority:    st.t.Priority,
		FloorBytes:  st.t.FloorBytes,
		DemandBytes: st.t.FootprintBytes(r.m),
		SlowdownPct: st.t.Engine.EstimatedSlowdownPct(),
		SLOPct:      st.t.SLOPct,
	}
}

// applyGrant moves one tenant to a new grant: update its cgroup limit,
// emit the revision event, and squeeze its residency down when the new
// grant leaves it over limit. Unchanged grants are a strict no-op — that
// silence is what keeps the degenerate single-tenant fleet byte-identical
// to the solo run.
func (r *runner) applyGrant(st *tenantState, grant uint64, now int64) error {
	if grant != st.grant || st.t.Group.Limit() != grant {
		changed := st.grant != 0 && grant != st.grant
		st.grant = grant
		st.t.Group.SetLimit(grant)
		if changed {
			if rec := r.m.Recorder(); rec != nil {
				rec.Event(telemetry.Event{Kind: telemetry.KindGrantChanged,
					TimeNs: now, Tenant: st.t.Name, Bytes: grant})
			}
		}
	}
	r.syncUsage(st)
	if over := st.t.Group.OverLimit(); over > 0 {
		freed, err := st.t.Engine.Squeeze(over)
		if err != nil {
			return fmt.Errorf("fleet: squeeze %s: %w", st.t.Name, err)
		}
		if freed > 0 {
			r.syncUsage(st)
		}
	}
	return nil
}

// syncUsage mirrors the tenant's measured top-tier residency into its
// cgroup's usage (the simulator's stand-in for per-page charge/uncharge on
// the allocation and migration paths).
func (r *runner) syncUsage(st *tenantState) {
	measured := st.t.FastBytes(r.m)
	cur := st.t.Group.Usage()
	if measured > cur {
		st.t.Group.Charge(measured - cur)
	} else if cur > measured {
		st.t.Group.Uncharge(cur - measured)
	}
}

// assignGrants runs one grant computation over the resident tenants and
// applies the results — the arbitration core, shared by the initial silent
// assignment and the periodic rounds. Returns the demands and member
// indexes it acted on.
func (r *runner) assignGrants(now int64) error {
	_, _, err := r.grantRound(now)
	return err
}

func (r *runner) grantRound(now int64) ([]Demand, []int, error) {
	ds := make([]Demand, 0, len(r.states))
	idx := make([]int, 0, len(r.states))
	for i := range r.states {
		st := &r.states[i]
		if st.active {
			ds = append(ds, r.demandOf(st))
			idx = append(idx, i)
		}
	}
	if len(ds) == 0 {
		return nil, nil, nil
	}
	grants, err := Arbitrate(r.pool, ds)
	if err != nil {
		return nil, nil, err
	}
	for k, i := range idx {
		if err := r.applyGrant(&r.states[i], grants[k], now); err != nil {
			return nil, nil, err
		}
	}
	return ds, idx, nil
}

// arbitrate runs one grant-revision round over the resident tenants and
// records their period snapshots. With a lone tenant the grant equals the
// pool every round, so the whole pass reduces to bookkeeping with no
// machine or telemetry side effects.
func (r *runner) arbitrate(now int64) error {
	ds, idx, err := r.grantRound(now)
	if err != nil || len(ds) == 0 {
		return err
	}
	sink, _ := r.m.Recorder().(telemetry.TenantSink)
	for k, i := range idx {
		st := &r.states[i]
		sd := ds[k].SlowdownPct
		if now > r.warmupClock {
			st.slowdownSum += sd
			st.slowdownN++
		}
		snap := telemetry.TenantSnapshot{
			Epoch: r.periods + 1, EndNs: now, Tenant: st.t.Name,
			GrantBytes: st.grant, UsageBytes: st.t.Group.Usage(),
			FootprintBytes: ds[k].DemandBytes,
			SlowdownPct:    sd, SLOPct: st.t.SLOPct, Ops: st.ops,
			ColdPages:        st.t.Engine.ColdPages(),
			QuarantinedPages: st.t.Engine.QuarantinedPages(),
		}
		r.series = append(r.series, snap)
		// The live observability plane (an optional TenantSink recorder)
		// gets the same snapshot; the standard Collector is not a sink,
		// so plain runs are untouched.
		if sink != nil {
			sink.TenantSnapshot(snap)
		}
	}
	return nil
}
