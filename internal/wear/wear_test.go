package wear

import (
	"testing"
	"testing/quick"

	"thermostat/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0, false, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	s, err := New(16, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Frames() != 16 || s.Slots() != 17 {
		t.Fatalf("frames/slots = %d/%d", s.Frames(), s.Slots())
	}
}

func TestMapInjective(t *testing.T) {
	for _, randomize := range []bool{false, true} {
		s, err := New(64, 5, randomize, 7)
		if err != nil {
			t.Fatal(err)
		}
		// Injectivity must hold at every wear-leveling state.
		for step := 0; step < 400; step++ {
			seen := map[uint64]bool{}
			for l := uint64(0); l < 64; l++ {
				p := s.Map(l)
				if p >= s.Slots() {
					t.Fatalf("slot %d out of range", p)
				}
				if seen[p] {
					t.Fatalf("collision at step %d (randomize=%v)", step, randomize)
				}
				seen[p] = true
			}
			s.OnWrite()
		}
	}
}

func TestMapOutOfRangePanics(t *testing.T) {
	s, _ := New(8, 0, false, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Map(8)
}

func TestGapRotationCoversAllSlots(t *testing.T) {
	s, err := New(8, 1, false, 0) // move every write
	if err != nil {
		t.Fatal(err)
	}
	gaps := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		// The gap is the one slot no logical frame maps to.
		used := map[uint64]bool{}
		for l := uint64(0); l < 8; l++ {
			used[s.Map(l)] = true
		}
		for slot := uint64(0); slot < s.Slots(); slot++ {
			if !used[slot] {
				gaps[slot] = true
			}
		}
		s.OnWrite()
	}
	if len(gaps) != int(s.Slots()) {
		t.Fatalf("gap visited %d slots, want %d", len(gaps), s.Slots())
	}
}

func TestMoveOverheadRatio(t *testing.T) {
	s, _ := New(32, 100, false, 0)
	for i := 0; i < 100000; i++ {
		s.OnWrite()
	}
	ratio := float64(s.Moves()) / float64(s.TotalWrites())
	if ratio < 0.009 || ratio > 0.011 {
		t.Fatalf("move overhead = %v, want ~1%%", ratio)
	}
}

func TestWearFlattening(t *testing.T) {
	// Skewed write traffic: 90% of writes to one logical frame. Without
	// leveling the hot slot takes ~90% of wear; with Start-Gap the wear
	// spreads as rotations complete.
	const n = 32
	const writes = 400000
	r := rng.New(1)

	noLevel := NewMeter(n + 1)
	for i := 0; i < writes; i++ {
		l := uint64(0)
		if r.Bool(0.1) {
			l = r.Uint64n(n)
		}
		noLevel.Record(l) // identity mapping
	}

	s, err := New(n, 10, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	leveled := NewMeter(s.Slots())
	r = rng.New(1)
	for i := 0; i < writes; i++ {
		l := uint64(0)
		if r.Bool(0.1) {
			l = r.Uint64n(n)
		}
		leveled.Record(s.Map(l))
		s.OnWrite()
	}

	if noLevel.MaxOverMean() < 10 {
		t.Fatalf("unleveled wear unexpectedly flat: %v", noLevel.MaxOverMean())
	}
	if leveled.MaxOverMean() > noLevel.MaxOverMean()/5 {
		t.Fatalf("leveling too weak: %v vs %v",
			leveled.MaxOverMean(), noLevel.MaxOverMean())
	}
	if leveled.Lifetime() < 5*noLevel.Lifetime() {
		t.Fatalf("lifetime gain too small: %v vs %v",
			leveled.Lifetime(), noLevel.Lifetime())
	}
}

func TestMeterEmpty(t *testing.T) {
	m := NewMeter(4)
	if m.MaxOverMean() != 0 || m.Lifetime() != 0 {
		t.Fatal("empty meter should report zeros")
	}
}

// Property: Map stays injective for arbitrary sizes, periods and seeds.
func TestInjectivityProperty(t *testing.T) {
	f := func(nRaw uint8, psiRaw uint8, seed uint64, randomize bool) bool {
		n := uint64(nRaw%100) + 2
		psi := uint64(psiRaw%20) + 1
		s, err := New(n, psi, randomize, seed)
		if err != nil {
			return false
		}
		for step := 0; step < 50; step++ {
			seen := map[uint64]bool{}
			for l := uint64(0); l < n; l++ {
				p := s.Map(l)
				if p >= s.Slots() || seen[p] {
					return false
				}
				seen[p] = true
			}
			for k := uint64(0); k < psi; k++ {
				s.OnWrite()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
