// Package wear addresses the paper's device-wear discussion (§6): dense
// slow-memory technologies endure a bounded number of writes per cell, so a
// two-tier system should both (a) keep the write rate to slow memory low —
// which Thermostat does by construction, Table 3 — and (b) spread the
// writes it does make. This package implements the Start-Gap wear-leveling
// scheme the paper cites (Qureshi et al., MICRO 2009): an algebraic mapping
// between logical and physical frames with one spare slot (the gap) that
// rotates through the device, plus an optional address randomizer.
package wear

import (
	"fmt"

	"thermostat/internal/rng"
)

// DefaultGapMovePeriod is ψ, the writes between gap movements; Qureshi et
// al. recommend ~100 to keep overhead below 1% while approaching uniform
// wear.
const DefaultGapMovePeriod = 100

// StartGap maps n logical frames onto n+1 physical slots, rotating the
// spare slot one position every ψ writes. With the randomizer enabled,
// logical addresses are first spread by an invertible affine map so spatially
// clustered write traffic cannot chase the gap.
type StartGap struct {
	n     uint64
	start uint64
	gap   uint64
	psi   uint64

	writesSinceMove uint64
	moves           uint64
	totalWrites     uint64

	// affine randomizer y = (a·x + b) mod n with gcd(a, n) = 1.
	randomize bool
	a, b      uint64
}

// New builds a Start-Gap mapper over n logical frames. psi <= 0 selects the
// default period.
func New(n uint64, psi uint64, randomize bool, seed uint64) (*StartGap, error) {
	if n < 2 {
		return nil, fmt.Errorf("wear: need at least 2 frames, got %d", n)
	}
	if psi == 0 {
		psi = DefaultGapMovePeriod
	}
	s := &StartGap{n: n, gap: n, psi: psi, randomize: randomize}
	if randomize {
		r := rng.New(seed)
		s.a = 2*r.Uint64n(n/2)%n + 1 // odd-ish; fix up for coprimality below
		for gcd(s.a, n) != 1 {
			s.a = (s.a + 1) % n
			if s.a == 0 {
				s.a = 1
			}
		}
		s.b = r.Uint64n(n)
	}
	return s, nil
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Frames returns the number of logical frames.
func (s *StartGap) Frames() uint64 { return s.n }

// Slots returns the number of physical slots (frames + 1 spare).
func (s *StartGap) Slots() uint64 { return s.n + 1 }

// Map translates a logical frame number to its current physical slot.
func (s *StartGap) Map(logical uint64) uint64 {
	if logical >= s.n {
		panic(fmt.Sprintf("wear: logical frame %d out of range %d", logical, s.n))
	}
	if s.randomize {
		logical = (s.a*logical + s.b) % s.n
	}
	pa := (logical + s.start) % s.n
	if pa >= s.gap {
		pa++
	}
	return pa
}

// OnWrite advances the wear-leveling state machine: every ψ writes the gap
// moves one slot (copying one frame in a real device); when the gap returns
// to the top, the start register advances, completing one full rotation.
// Returns true when a gap movement (one frame copy) occurred.
func (s *StartGap) OnWrite() bool {
	s.totalWrites++
	s.writesSinceMove++
	if s.writesSinceMove < s.psi {
		return false
	}
	s.writesSinceMove = 0
	s.moves++
	if s.gap == 0 {
		s.gap = s.n
		s.start = (s.start + 1) % s.n
	} else {
		s.gap--
	}
	return true
}

// Moves returns the number of gap movements (each costs one frame copy of
// device bandwidth — the scheme's overhead is Moves/TotalWrites ≈ 1/ψ).
func (s *StartGap) Moves() uint64 { return s.moves }

// TotalWrites returns the writes observed.
func (s *StartGap) TotalWrites() uint64 { return s.totalWrites }

// Meter tracks per-physical-slot write counts to quantify wear flatness.
type Meter struct {
	writes []uint64
	total  uint64
}

// NewMeter tracks slots physical slots.
func NewMeter(slots uint64) *Meter {
	return &Meter{writes: make([]uint64, slots)}
}

// Record counts one write to a physical slot.
func (m *Meter) Record(slot uint64) {
	m.writes[slot]++
	m.total++
}

// MaxOverMean returns the wear-flatness metric: the most-worn slot's write
// count over the mean. 1.0 is perfectly uniform; without leveling, a
// write-hot frame drives this toward the skew of the traffic. Returns 0
// with no writes.
func (m *Meter) MaxOverMean() float64 {
	if m.total == 0 {
		return 0
	}
	var max uint64
	for _, w := range m.writes {
		if w > max {
			max = w
		}
	}
	mean := float64(m.total) / float64(len(m.writes))
	return float64(max) / mean
}

// Lifetime estimates achievable device lifetime as the fraction of ideal:
// ideal wears all slots evenly, so lifetime fraction = mean/max.
func (m *Meter) Lifetime() float64 {
	if r := m.MaxOverMean(); r > 0 {
		return 1 / r
	}
	return 0
}
