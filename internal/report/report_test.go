package report

import (
	"strings"
	"testing"

	"thermostat/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "app", "value")
	tb.Add("redis", "10")
	tb.Add("cassandra", "45")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Title") {
		t.Fatal("missing title")
	}
	// All data lines equal width (aligned columns).
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("header/separator misaligned:\n%s", out)
	}
	if !strings.Contains(lines[3], "redis") || !strings.Contains(lines[4], "cassandra") {
		t.Fatalf("rows missing:\n%s", out)
	}
}

func TestTableNoHeader(t *testing.T) {
	tb := NewTable("")
	tb.Add("a", "b")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Fatal("separator without header")
	}
}

func TestAddF(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddF("x", 0.12345, 42)
	row := tb.Rows[0]
	if row[0] != "x" || row[1] != "0.123" || row[2] != "42" {
		t.Fatalf("row = %v", row)
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.Add("a,b", `say "hi"`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSeriesTable(t *testing.T) {
	s1 := stats.NewSeries("cold")
	s2 := stats.NewSeries("hot")
	s1.Append(1e9, 10)
	s1.Append(2e9, 20)
	s2.Append(1e9, 90)
	s2.Append(3e9, 70)
	tb := SeriesTable("fig", s1, s2)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (union of timestamps)", len(tb.Rows))
	}
	if tb.Rows[0][0] != "1.0" || tb.Rows[0][1] != "10" || tb.Rows[0][2] != "90" {
		t.Fatalf("row0 = %v", tb.Rows[0])
	}
	// Missing cell renders empty.
	if tb.Rows[1][2] != "" {
		t.Fatalf("row1 = %v", tb.Rows[1])
	}
	if tb.Rows[2][1] != "" || tb.Rows[2][2] != "70" {
		t.Fatalf("row2 = %v", tb.Rows[2])
	}
}

func TestSeriesTableUnsortedTimes(t *testing.T) {
	s := stats.NewSeries("x")
	s.Append(3e9, 3)
	s.Append(1e9, 1)
	tb := SeriesTable("", s)
	if tb.Rows[0][0] != "1.0" || tb.Rows[1][0] != "3.0" {
		t.Fatalf("rows unsorted: %v", tb.Rows)
	}
}

func TestBar(t *testing.T) {
	out := Bar("idle", []string{"mysql", "redis"}, []float64{0.55, 0.25}, 20)
	if !strings.Contains(out, "mysql") || !strings.Contains(out, "55.0%") {
		t.Fatalf("bar output:\n%s", out)
	}
	// Clamping.
	out = Bar("", []string{"x"}, []float64{1.5}, 10)
	if !strings.Contains(out, strings.Repeat("#", 10)) {
		t.Fatalf("overflow not clamped:\n%s", out)
	}
	out = Bar("", []string{"x"}, []float64{-1}, 10)
	if strings.Contains(out, "#") {
		t.Fatalf("negative not clamped:\n%s", out)
	}
}
