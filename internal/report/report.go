// Package report renders the experiment harness's outputs: aligned text
// tables for the paper's tables, and time/value column dumps (text or CSV)
// for its figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"thermostat/internal/stats"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; missing cells render empty, extra cells extend the
// grid.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddF appends a row of formatted values: strings pass through, float64
// render with 3 significant decimals, integers plainly.
func (t *Table) AddF(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int, int64, uint64, uint:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Add(row...)
}

func (t *Table) widths() []int {
	n := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders an aligned text table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	line := func(cells []string) {
		for i := 0; i < len(w); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		line(t.Header)
		sep := make([]string, len(w))
		for i := range sep {
			sep[i] = strings.Repeat("-", w[i])
		}
		line(sep)
	}
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (RFC-4180-style quoting for cells
// containing commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// SeriesTable tabulates one or more series over their union of timestamps:
// the figure-regeneration format (first column seconds, one column per
// series). Series are expected to share timestamps (same sampling window);
// missing points render empty.
func SeriesTable(title string, series ...*stats.Series) *Table {
	header := []string{"time_s"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	t := NewTable(title, header...)

	// Union of timestamps in order.
	seen := map[int64]bool{}
	var times []int64
	for _, s := range series {
		for _, ts := range s.Times {
			if !seen[ts] {
				seen[ts] = true
				times = append(times, ts)
			}
		}
	}
	sortInt64(times)

	// Index per series.
	idx := make([]map[int64]float64, len(series))
	for i, s := range series {
		idx[i] = make(map[int64]float64, len(s.Times))
		for j, ts := range s.Times {
			idx[i][ts] = s.Values[j]
		}
	}
	for _, ts := range times {
		row := []string{fmt.Sprintf("%.1f", float64(ts)/1e9)}
		for i := range series {
			if v, ok := idx[i][ts]; ok {
				row = append(row, fmt.Sprintf("%.4g", v))
			} else {
				row = append(row, "")
			}
		}
		t.Add(row...)
	}
	return t
}

func sortInt64(xs []int64) {
	// Insertion sort: series timestamps are nearly sorted already.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Bar renders a labeled horizontal ASCII bar chart of fractions in [0, 1] —
// the quick-look format for Figure 1 and Figure 11.
func Bar(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := int(v * float64(width))
		if n > width {
			n = width
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s |%s%s| %5.1f%%\n",
			labelW, l, strings.Repeat("#", n), strings.Repeat(" ", width-n), v*100)
	}
	return b.String()
}
