package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"thermostat/internal/stats"
)

// SVG rendering produces self-contained figure files for the
// footprint-over-time and rate-over-time plots (Figures 3 and 5-10), so the
// regenerated artifacts are directly comparable to the paper's figures.
// Stdlib-only: hand-assembled SVG markup.

// seriesPalette cycles through distinguishable stroke colors.
var seriesPalette = []string{
	"#1f6feb", "#d29922", "#2da44e", "#cf222e", "#8250df", "#6e7781",
}

// LinePlot describes one figure.
type LinePlot struct {
	Title  string
	XLabel string
	YLabel string
	// Series share the x-unit (seconds); timestamps are nanoseconds.
	Series []*stats.Series
	// YMax optionally fixes the y-axis top (0 = auto).
	YMax float64
	// HLine optionally draws a horizontal reference line (e.g. the 30K
	// accesses/sec target in Figure 3); 0 = none.
	HLine float64
	// Stacked renders the series as a cumulative stacked area chart (the
	// paper's footprint breakdowns); default is plain lines.
	Stacked bool
}

const (
	plotW, plotH           = 720, 420
	marginL, marginR       = 70, 20
	marginT, marginB       = 40, 50
	innerW                 = plotW - marginL - marginR
	innerH                 = plotH - marginT - marginB
	maxPointsPerSeriesGoal = 400
)

// WriteSVG renders the plot.
func (p *LinePlot) WriteSVG(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", plotW, plotH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Data extents.
	var xMax float64
	yMax := p.YMax
	for _, s := range p.Series {
		for i, ts := range s.Times {
			x := float64(ts) / 1e9
			if x > xMax {
				xMax = x
			}
			if p.YMax == 0 && !p.Stacked && s.Values[i] > yMax {
				yMax = s.Values[i]
			}
		}
	}
	if p.Stacked && p.YMax == 0 {
		// Stacked height = sum across series at each index.
		n := 0
		for _, s := range p.Series {
			if s.Len() > n {
				n = s.Len()
			}
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for _, s := range p.Series {
				if i < s.Len() {
					sum += s.Values[i]
				}
			}
			if sum > yMax {
				yMax = sum
			}
		}
	}
	if p.HLine > yMax {
		yMax = p.HLine
	}
	if xMax == 0 {
		xMax = 1
	}
	if yMax == 0 {
		yMax = 1
	}
	yMax *= 1.05

	xPix := func(x float64) float64 { return marginL + x/xMax*float64(innerW) }
	yPix := func(y float64) float64 { return marginT + (1-y/yMax)*float64(innerH) }

	// Axes and gridlines.
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, escapeXML(p.Title))
	for i := 0; i <= 4; i++ {
		gy := yMax / 1.05 * float64(i) / 4
		py := yPix(gy)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`+"\n", marginL, py, plotW-marginR, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" fill="#555">%s</text>`+"\n", marginL-6, py+4, compactNum(gy))
		gx := xMax * float64(i) / 4
		px := xPix(gx)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#555">%s</text>`+"\n", px, plotH-marginB+18, compactNum(gx))
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", marginL, plotH-marginB, plotW-marginR, plotH-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", marginL, marginT, marginL, plotH-marginB)
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#333">%s</text>`+"\n",
		float64(marginL+innerW/2), plotH-8, escapeXML(p.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" fill="#333" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginT+innerH/2), float64(marginT+innerH/2), escapeXML(p.YLabel))

	// Reference line.
	if p.HLine > 0 {
		py := yPix(p.HLine)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#cf222e" stroke-dasharray="6,4"/>`+"\n",
			marginL, py, plotW-marginR, py)
	}

	// Series.
	base := make([]float64, 0)
	if p.Stacked {
		n := 0
		for _, s := range p.Series {
			if s.Len() > n {
				n = s.Len()
			}
		}
		base = make([]float64, n)
	}
	for si, s := range p.Series {
		color := seriesPalette[si%len(seriesPalette)]
		step := 1
		if s.Len() > maxPointsPerSeriesGoal {
			step = s.Len() / maxPointsPerSeriesGoal
		}
		if p.Stacked {
			// Area from base to base+value.
			var top, bottom []string
			for i := 0; i < s.Len(); i += step {
				x := xPix(float64(s.Times[i]) / 1e9)
				top = append(top, fmt.Sprintf("%.1f,%.1f", x, yPix(base[i]+s.Values[i])))
				bottom = append(bottom, fmt.Sprintf("%.1f,%.1f", x, yPix(base[i])))
			}
			for i, j := 0, len(bottom)-1; i < j; i, j = i+1, j-1 {
				bottom[i], bottom[j] = bottom[j], bottom[i]
			}
			pts := strings.Join(append(top, bottom...), " ")
			fmt.Fprintf(&b, `<polygon points="%s" fill="%s" fill-opacity="0.65" stroke="%s"/>`+"\n", pts, color, color)
			for i := 0; i < s.Len(); i++ {
				base[i] += s.Values[i]
			}
		} else {
			var pts []string
			for i := 0; i < s.Len(); i += step {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f",
					xPix(float64(s.Times[i])/1e9), yPix(s.Values[i])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		// Legend.
		lx := marginL + 10
		ly := marginT + 16 + 16*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", lx, ly-10, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", lx+16, ly, escapeXML(s.Name))
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ScatterPlot renders x/y points (Figure 2).
type ScatterPlot struct {
	Title  string
	XLabel string
	YLabel string
	X, Y   []float64
}

// WriteSVG renders the scatter.
func (p *ScatterPlot) WriteSVG(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", plotW, plotH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	var xMax, yMax float64
	for i := range p.X {
		xMax = math.Max(xMax, p.X[i])
		yMax = math.Max(yMax, p.Y[i])
	}
	if xMax == 0 {
		xMax = 1
	}
	if yMax == 0 {
		yMax = 1
	}
	xMax *= 1.05
	yMax *= 1.05
	xPix := func(x float64) float64 { return marginL + x/xMax*float64(innerW) }
	yPix := func(y float64) float64 { return marginT + (1-y/yMax)*float64(innerH) }
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, escapeXML(p.Title))
	for i := 0; i <= 4; i++ {
		gy := yMax / 1.05 * float64(i) / 4
		py := yPix(gy)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`+"\n", marginL, py, plotW-marginR, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" fill="#555">%s</text>`+"\n", marginL-6, py+4, compactNum(gy))
		gx := xMax / 1.05 * float64(i) / 4
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#555">%s</text>`+"\n", xPix(gx), plotH-marginB+18, compactNum(gx))
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", marginL, plotH-marginB, plotW-marginR, plotH-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", marginL, marginT, marginL, plotH-marginB)
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#333">%s</text>`+"\n",
		float64(marginL+innerW/2), plotH-8, escapeXML(p.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" fill="#333" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginT+innerH/2), float64(marginT+innerH/2), escapeXML(p.YLabel))
	for i := range p.X {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="#1f6feb" fill-opacity="0.55"/>`+"\n",
			xPix(p.X[i]), yPix(p.Y[i]))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// BarPlot renders labeled bars (Figures 1 and 11).
type BarPlot struct {
	Title  string
	YLabel string
	Labels []string
	// Groups: one value per label per group (grouped bars); single group
	// for Figure 1.
	Groups     [][]float64
	GroupNames []string
}

// WriteSVG renders the bars.
func (p *BarPlot) WriteSVG(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", plotW, plotH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	yMax := 0.0
	for _, g := range p.Groups {
		for _, v := range g {
			yMax = math.Max(yMax, v)
		}
	}
	if yMax == 0 {
		yMax = 1
	}
	yMax *= 1.1
	yPix := func(y float64) float64 { return marginT + (1-y/yMax)*float64(innerH) }
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, escapeXML(p.Title))
	for i := 0; i <= 4; i++ {
		gy := yMax / 1.1 * float64(i) / 4
		py := yPix(gy)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`+"\n", marginL, py, plotW-marginR, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" fill="#555">%s</text>`+"\n", marginL-6, py+4, compactNum(gy))
	}
	n := len(p.Labels)
	if n == 0 {
		n = 1
	}
	slot := float64(innerW) / float64(n)
	ng := len(p.Groups)
	if ng == 0 {
		ng = 1
	}
	barW := slot * 0.7 / float64(ng)
	for li, label := range p.Labels {
		x0 := float64(marginL) + slot*float64(li) + slot*0.15
		for gi, g := range p.Groups {
			if li >= len(g) {
				continue
			}
			color := seriesPalette[gi%len(seriesPalette)]
			x := x0 + barW*float64(gi)
			y := yPix(g[li])
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW, float64(plotH-marginB)-y, color)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#333" font-size="10">%s</text>`+"\n",
			x0+slot*0.35, plotH-marginB+16, escapeXML(shorten(label, 14)))
	}
	for gi, name := range p.GroupNames {
		color := seriesPalette[gi%len(seriesPalette)]
		lx := plotW - marginR - 150
		ly := marginT + 16 + 16*gi
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", lx, ly-10, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", lx+16, ly, escapeXML(name))
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", marginL, plotH-marginB, plotW-marginR, plotH-marginB)
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" fill="#333" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginT+innerH/2), float64(marginT+innerH/2), escapeXML(p.YLabel))
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func compactNum(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
