package report

import (
	"strings"
	"testing"

	"thermostat/internal/stats"
)

func validSVG(t *testing.T, out string) {
	t.Helper()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not an SVG document:\n%.120s...", out)
	}
	// Balanced critical elements.
	if strings.Count(out, "<svg") != 1 {
		t.Fatal("nested svg")
	}
}

func TestLinePlotSVG(t *testing.T) {
	s1 := stats.NewSeries("slow_rate")
	for i := int64(0); i < 50; i++ {
		s1.Append(i*1e9, float64(i*600))
	}
	p := &LinePlot{
		Title: "Figure 3", XLabel: "time (s)", YLabel: "accesses/sec",
		Series: []*stats.Series{s1}, HLine: 30000,
	}
	var b strings.Builder
	if err := p.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	validSVG(t, out)
	for _, want := range []string{"Figure 3", "polyline", "stroke-dasharray", "slow_rate", "accesses/sec"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestLinePlotStacked(t *testing.T) {
	mk := func(name string, scale float64) *stats.Series {
		s := stats.NewSeries(name)
		for i := int64(0); i < 20; i++ {
			s.Append(i*1e9, scale*float64(i))
		}
		return s
	}
	p := &LinePlot{
		Title: "Figure 5", Stacked: true,
		Series: []*stats.Series{mk("cold", 1), mk("hot", 2)},
	}
	var b strings.Builder
	if err := p.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	validSVG(t, out)
	if strings.Count(out, "<polygon") != 2 {
		t.Errorf("stacked areas = %d, want 2", strings.Count(out, "<polygon"))
	}
}

func TestLinePlotDownsamples(t *testing.T) {
	s := stats.NewSeries("big")
	for i := int64(0); i < 10000; i++ {
		s.Append(i*1e6, float64(i))
	}
	p := &LinePlot{Title: "big", Series: []*stats.Series{s}}
	var b strings.Builder
	if err := p.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	// Point count bounded: the polyline must not carry 10000 points.
	if pts := strings.Count(b.String(), ","); pts > 3000 {
		t.Errorf("too many rendered points: ~%d", pts)
	}
}

func TestScatterPlotSVG(t *testing.T) {
	p := &ScatterPlot{
		Title: "Figure 2", XLabel: "hot regions", YLabel: "rate",
		X: []float64{0, 1, 2, 50}, Y: []float64{5000, 100, 9000, 30},
	}
	var b strings.Builder
	if err := p.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	validSVG(t, out)
	if strings.Count(out, "<circle") != 4 {
		t.Errorf("circles = %d", strings.Count(out, "<circle"))
	}
}

func TestBarPlotSVG(t *testing.T) {
	p := &BarPlot{
		Title: "Figure 11", YLabel: "cold %",
		Labels:     []string{"aerospike", "cassandra"},
		Groups:     [][]float64{{10, 40}, {15, 50}, {20, 60}},
		GroupNames: []string{"3%", "6%", "10%"},
	}
	var b strings.Builder
	if err := p.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	validSVG(t, out)
	if strings.Count(out, "<rect") < 6 {
		t.Errorf("bars missing:\n%s", out)
	}
	if !strings.Contains(out, "aerospike") {
		t.Error("labels missing")
	}
}

func TestSVGEscaping(t *testing.T) {
	p := &LinePlot{Title: `a <b> & "c"`, Series: []*stats.Series{stats.NewSeries("x")}}
	var b strings.Builder
	if err := p.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "<b>") {
		t.Error("title not escaped")
	}
}

func TestCompactNum(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		42:      "42",
		1500:    "1.5k",
		2.5e6:   "2.5M",
		3e9:     "3.0G",
		0.25:    "0.25",
		30000:   "30.0k",
		1000000: "1.0M",
	}
	for in, want := range cases {
		if got := compactNum(in); got != want {
			t.Errorf("compactNum(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestShorten(t *testing.T) {
	if shorten("short", 10) != "short" {
		t.Error("shorten changed short string")
	}
	if got := shorten("in-memory-analytics", 10); len(got) > 12 {
		t.Errorf("shorten failed: %q", got)
	}
}
