package counter

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
)

func newMachine(t *testing.T) (*sim.Machine, addr.Range) {
	t.Helper()
	cfg := sim.DefaultConfig(64<<20, 64<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 4
	// Tiny LLC so every access to a fresh page misses.
	cfg.LLC.SizeBytes = 64 << 10
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.AllocRegion(16<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	return m, r
}

func touchPages(t *testing.T, m *sim.Machine, r addr.Range, perPage int) {
	t.Helper()
	for v := r.Start; v < r.End; v += addr.Virt(addr.PageSize2M) {
		for i := 0; i < perPage; i++ {
			// Distinct lines so the tiny LLC misses every time.
			off := addr.Virt(uint64(i) * 64 * 67 % addr.PageSize2M)
			if _, err := m.Access(v+off, false); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestBadgerTrapBackend(t *testing.T) {
	m, r := newMachine(t)
	b := NewBadgerTrap(m)
	if b.Name() != "badgertrap" {
		t.Fatal("name")
	}
	page := r.Start.Base2M()
	if err := b.Arm(page); err != nil {
		t.Fatal(err)
	}
	touchPages(t, m, addr.NewRange(page, addr.PageSize2M), 10)
	if b.Count(page) == 0 {
		t.Fatal("no events counted")
	}
	// BadgerTrap under-counts when the transient TLB entry is resident.
	if b.Count(page) > 10 {
		t.Fatalf("count %d exceeds true accesses", b.Count(page))
	}
	b.Reset()
	if b.Count(page) != 0 {
		t.Fatal("reset failed")
	}
	if err := b.Disarm(page); err != nil {
		t.Fatal(err)
	}
	if err := b.Arm(addr.Virt(0xdead) << 30); err == nil {
		t.Fatal("arming unmapped page should fail")
	}
}

func TestCMBitExactCounting(t *testing.T) {
	m, r := newMachine(t)
	c := NewCMBit(m)
	defer c.Close()
	page := r.Start.Base2M()
	other := page + addr.Virt(addr.PageSize2M)
	if err := c.Arm(page); err != nil {
		t.Fatal(err)
	}
	const n = 25
	touchPages(t, m, addr.NewRange(page, addr.PageSize2M), n)
	touchPages(t, m, addr.NewRange(other, addr.PageSize2M), n)
	// Every touch is an LLC miss (tiny cache, distinct lines), so the
	// CM-bit count is exact for the armed page and zero elsewhere.
	if got := c.Count(page); got != n {
		t.Fatalf("armed count = %d, want %d", got, n)
	}
	if got := c.Count(other); got != 0 {
		t.Fatalf("unarmed count = %d", got)
	}
	if err := c.Disarm(page); err != nil {
		t.Fatal(err)
	}
	touchPages(t, m, addr.NewRange(page, addr.PageSize2M), 5)
	if got := c.Count(page); got != n {
		t.Fatal("counting continued after disarm")
	}
	if err := c.Disarm(page); err == nil {
		t.Fatal("double disarm should fail")
	}
}

func TestCMBitChargesSmallOverhead(t *testing.T) {
	m, r := newMachine(t)
	c := NewCMBit(m)
	defer c.Close()
	page := r.Start.Base2M()
	if err := c.Arm(page); err != nil {
		t.Fatal(err)
	}
	lat, err := m.Access(page, false)
	if err != nil {
		t.Fatal(err)
	}
	// Overhead must be far below a BadgerTrap fault (1us) and present.
	if lat < CMBitOverheadNs || lat > 1000 {
		t.Fatalf("CM-bit miss latency = %d", lat)
	}
}

func TestCMBit4KGrain(t *testing.T) {
	m, r := newMachine(t)
	c := NewCMBit(m)
	defer c.Close()
	if err := m.PageTable().Split(r.Start); err != nil {
		t.Fatal(err)
	}
	child := r.Start + 4096
	if err := c.Arm(child); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Access(child+64, false); err != nil {
		t.Fatal(err)
	}
	if c.Count(child) != 1 {
		t.Fatalf("4K-grain count = %d", c.Count(child))
	}
}

func TestPEBSSamplingAccuracy(t *testing.T) {
	m, r := newMachine(t)
	p := NewPEBS(m, 10)
	defer p.Close()
	page := r.Start.Base2M()
	if err := p.Arm(page); err != nil {
		t.Fatal(err)
	}
	const n = 1000
	touchPages(t, m, addr.NewRange(page, addr.PageSize2M), n)
	got := p.Count(page)
	// Estimate = samples * period; with deterministic every-10th sampling
	// of a single armed page, the estimate is within one period of truth.
	if got < n-10 || got > n+10 {
		t.Fatalf("PEBS estimate = %d, want ~%d", got, n)
	}
}

func TestPEBSMissesLowRatePages(t *testing.T) {
	m, r := newMachine(t)
	p := NewPEBS(m, 1000)
	defer p.Close()
	cold := r.Start.Base2M()
	hot := cold + addr.Virt(addr.PageSize2M)
	if err := p.Arm(cold); err != nil {
		t.Fatal(err)
	}
	// 5 accesses to the cold page drowned in hot traffic: with a period
	// of 1000 the cold page is essentially never sampled — the §6.1.2
	// resolution limit.
	touchPages(t, m, addr.NewRange(cold, addr.PageSize2M), 5)
	touchPages(t, m, addr.NewRange(hot, addr.PageSize2M), 400)
	if got := p.Count(cold); got > 1000 {
		t.Fatalf("cold estimate = %d from 5 true accesses", got)
	}
}

func TestPEBSReset(t *testing.T) {
	m, r := newMachine(t)
	p := NewPEBS(m, 1)
	defer p.Close()
	page := r.Start.Base2M()
	if err := p.Arm(page); err != nil {
		t.Fatal(err)
	}
	touchPages(t, m, addr.NewRange(page, addr.PageSize2M), 3)
	if p.Count(page) == 0 {
		t.Fatal("nothing sampled at period 1")
	}
	p.Reset()
	if p.Count(page) != 0 {
		t.Fatal("reset failed")
	}
}

func TestBackendsCompareOnSkew(t *testing.T) {
	// Head-to-head §6.1 accuracy check: drive identical traffic at two
	// pages (100 vs 10 accesses) and compare each backend's ratio
	// estimate. CM-bit must be exact; BadgerTrap must preserve ordering.
	runWith := func(mk func(m *sim.Machine) Backend) (hot, cold uint64) {
		cfg := sim.DefaultConfig(64<<20, 64<<20)
		cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 4
		cfg.LLC.SizeBytes = 64 << 10
		m, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.AllocRegion(16<<20, true)
		if err != nil {
			t.Fatal(err)
		}
		b := mk(m)
		hotP := r.Start.Base2M()
		coldP := hotP + addr.Virt(addr.PageSize2M)
		if err := b.Arm(hotP); err != nil {
			t.Fatal(err)
		}
		if err := b.Arm(coldP); err != nil {
			t.Fatal(err)
		}
		// Interleave so TLB entries churn.
		for i := 0; i < 100; i++ {
			off := addr.Virt(uint64(i) * 64 * 67 % addr.PageSize2M)
			if _, err := m.Access(hotP+off, false); err != nil {
				t.Fatal(err)
			}
			if i%10 == 0 {
				if _, err := m.Access(coldP+off, false); err != nil {
					t.Fatal(err)
				}
			}
			// Evict translations with unrelated traffic over six pages
			// (the working set exceeds both TLB levels).
			for e := 0; e < 6; e++ {
				ev := r.Start + addr.Virt(uint64(2+e)*addr.PageSize2M) + off
				if _, err := m.Access(ev, false); err != nil {
					t.Fatal(err)
				}
			}
		}
		return b.Count(hotP), b.Count(coldP)
	}

	hotCM, coldCM := runWith(func(m *sim.Machine) Backend { return NewCMBit(m) })
	if hotCM != 100 || coldCM != 10 {
		t.Fatalf("CM-bit counts %d/%d, want 100/10", hotCM, coldCM)
	}
	hotBT, coldBT := runWith(func(m *sim.Machine) Backend { return NewBadgerTrap(m) })
	if hotBT <= coldBT {
		t.Fatalf("BadgerTrap ordering lost: hot %d vs cold %d", hotBT, coldBT)
	}
	if hotBT > 100 {
		t.Fatalf("BadgerTrap hot count %d exceeds truth", hotBT)
	}
}

func TestTLBMissProxyValidForColdPages(t *testing.T) {
	// §3.3's validation: "for pages we identify as cold, the TLB miss rate
	// is typically higher (but always within a factor of two) of the
	// last-level cache miss rate". Reproduce: cold pages receive sparse
	// traffic; their BadgerTrap (TLB-miss) counts must track the
	// simulator's ground-truth LLC-miss counts within ~2x.
	cfg := sim.DefaultConfig(128<<20, 128<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 8
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.EnablePageCounts()
	r, err := m.AllocRegion(32<<20, true) // 16 huge pages
	if err != nil {
		t.Fatal(err)
	}
	// Demote the last 8 pages; they get ~5% of traffic.
	var coldPages []addr.Virt
	for i := 8; i < 16; i++ {
		base := r.Start + addr.Virt(uint64(i)*addr.PageSize2M)
		if _, err := m.Demote(base); err != nil {
			t.Fatal(err)
		}
		coldPages = append(coldPages, base)
	}
	rng1 := newRand()
	for i := 0; i < 300000; i++ {
		var page uint64
		if rng1.Bool(0.05) {
			page = 8 + rng1.Uint64n(8)
		} else {
			page = rng1.Uint64n(8)
		}
		v := r.Start + addr.Virt(page*addr.PageSize2M+rng1.Uint64n(addr.PageSize2M))
		if _, err := m.Access(v, false); err != nil {
			t.Fatal(err)
		}
	}
	truth := m.PageCounts()
	trap := m.Trap()
	for _, base := range coldPages {
		llcMisses := float64(truth[base])
		tlbMisses := float64(trap.Count(base))
		if llcMisses < 100 {
			t.Fatalf("cold page %s got too little traffic (%v) for the check", base, llcMisses)
		}
		ratio := tlbMisses / llcMisses
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("page %s: TLB/LLC miss ratio = %.2f (tlb %v, llc %v), want ~[0.5, 2]",
				base, ratio, tlbMisses, llcMisses)
		}
	}
}

func newRand() *rng.PCG { return rng.New(99) }
