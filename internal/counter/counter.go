// Package counter implements the page-access-counting mechanisms the paper
// discusses: the deployed software-only BadgerTrap poisoning (§3.3) and the
// two proposed hardware extensions of §6.1 — a "count miss" (CM) PTE bit
// that faults on LLC misses to tagged pages, and a PEBS-style sampler that
// records page addresses of sampled LLC misses.
//
// All three expose the same Backend interface, so their accuracy and
// overhead can be compared head-to-head (the §6.1 ablation):
//
//   - BadgerTrap counts TLB misses as a proxy for memory accesses; each
//     event costs ~1us and over/under-estimates as documented in the paper.
//   - CMBit counts true LLC misses; the fault can be overlapped with the
//     memory access, so the modeled overhead is small.
//   - PEBS samples every Nth LLC miss system-wide at negligible per-event
//     cost but bounded resolution: counts are estimates scaled by the
//     sampling period, and low-rate pages may be missed entirely.
package counter

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/badgertrap"
	"thermostat/internal/sim"
)

// Backend counts accesses to armed leaf pages.
type Backend interface {
	// Name identifies the mechanism.
	Name() string
	// Arm starts counting the leaf page with the given base address.
	Arm(base addr.Virt) error
	// Disarm stops counting the page.
	Disarm(base addr.Virt) error
	// Count returns the events recorded for the page since the last
	// Reset, scaled to estimated true accesses.
	Count(base addr.Virt) uint64
	// Reset clears all counts (armed pages stay armed).
	Reset()
}

// BadgerTrap adapts the machine's poison-fault trap to Backend.
type BadgerTrap struct {
	m *sim.Machine
}

// NewBadgerTrap wraps the machine's trap.
func NewBadgerTrap(m *sim.Machine) *BadgerTrap { return &BadgerTrap{m: m} }

// Name implements Backend.
func (b *BadgerTrap) Name() string { return "badgertrap" }

// Arm implements Backend.
func (b *BadgerTrap) Arm(base addr.Virt) error {
	return b.m.Trap().Poison(base, b.m.VPID())
}

// Disarm implements Backend.
func (b *BadgerTrap) Disarm(base addr.Virt) error {
	return b.m.Trap().Unpoison(base)
}

// Count implements Backend.
func (b *BadgerTrap) Count(base addr.Virt) uint64 {
	return b.m.Trap().Count(base)
}

// Reset implements Backend.
func (b *BadgerTrap) Reset() { b.m.Trap().ResetCounts() }

// Trap exposes the underlying trap.
func (b *BadgerTrap) Trap() *badgertrap.Trap { return b.m.Trap() }

// CMBitOverheadNs is the modeled per-event cost of a CM-bit fault: §6.1.1
// notes the memory access can proceed in parallel with the fault handler,
// hiding most of its latency.
const CMBitOverheadNs = 100

// CMBit models the §6.1.1 "count miss" PTE bit: every LLC miss to an armed
// page raises a lightweight fault whose handler increments a counter.
// Counting is exact (true memory accesses, not TLB misses).
type CMBit struct {
	m      *sim.Machine
	armed  map[addr.Virt]bool // leaf base -> armed
	counts map[addr.Virt]uint64
	// OverheadNs per counted event (default CMBitOverheadNs).
	OverheadNs int64
}

// NewCMBit installs the CM-bit model on the machine's miss path.
func NewCMBit(m *sim.Machine) *CMBit {
	c := &CMBit{
		m:          m,
		armed:      make(map[addr.Virt]bool),
		counts:     make(map[addr.Virt]uint64),
		OverheadNs: CMBitOverheadNs,
	}
	m.SetMissHook(c.onMiss)
	return c
}

// Name implements Backend.
func (c *CMBit) Name() string { return "cm-bit" }

func (c *CMBit) leafBase(v addr.Virt) (addr.Virt, bool) {
	// An armed page may be tagged at either grain; check 4K then 2M.
	if c.armed[v.Base4K()] {
		return v.Base4K(), true
	}
	if c.armed[v.Base2M()] {
		return v.Base2M(), true
	}
	return 0, false
}

func (c *CMBit) onMiss(v addr.Virt, write bool) int64 {
	base, ok := c.leafBase(v)
	if !ok {
		return 0
	}
	c.counts[base]++
	return c.OverheadNs
}

// Arm implements Backend.
func (c *CMBit) Arm(base addr.Virt) error {
	if _, _, ok := c.m.PageTable().Lookup(base); !ok {
		return fmt.Errorf("counter: CM-bit arm of unmapped %s", base)
	}
	c.armed[base] = true
	return nil
}

// Disarm implements Backend.
func (c *CMBit) Disarm(base addr.Virt) error {
	if !c.armed[base] {
		return fmt.Errorf("counter: CM-bit disarm of unarmed %s", base)
	}
	delete(c.armed, base)
	return nil
}

// Count implements Backend.
func (c *CMBit) Count(base addr.Virt) uint64 { return c.counts[base] }

// Reset implements Backend.
func (c *CMBit) Reset() { c.counts = make(map[addr.Virt]uint64) }

// Close detaches the model from the machine.
func (c *CMBit) Close() { c.m.SetMissHook(nil) }

// PEBS defaults: the kernel's 1000Hz cap on PEBS interrupts translates, at
// typical miss rates, to sampling roughly every 1000th miss; each record
// write is cheap, and the buffer-drain interrupt is amortized.
const (
	DefaultPEBSPeriod       = 1000
	PEBSRecordOverheadNs    = 20
	PEBSInterruptOverheadNs = 4000
	PEBSBufferRecords       = 64
)

// PEBS models §6.1.2: the CPU samples every Period-th LLC miss system-wide
// and stores the page address in a buffer; a full buffer raises an
// interrupt. Per-page counts are estimated as samples · Period, so pages
// whose true rate is below Period per interval are often missed — the
// resolution limit the paper notes makes PEBS unsuitable at 30K events/s.
type PEBS struct {
	m *sim.Machine
	// Period is the sampling period in misses (default DefaultPEBSPeriod).
	Period uint64

	armed   map[addr.Virt]bool
	samples map[addr.Virt]uint64
	misses  uint64
	inBuf   int
}

// NewPEBS installs the PEBS model on the machine's miss path.
func NewPEBS(m *sim.Machine, period uint64) *PEBS {
	if period == 0 {
		period = DefaultPEBSPeriod
	}
	p := &PEBS{
		m: m, Period: period,
		armed:   make(map[addr.Virt]bool),
		samples: make(map[addr.Virt]uint64),
	}
	m.SetMissHook(p.onMiss)
	return p
}

// Name implements Backend.
func (p *PEBS) Name() string { return "pebs" }

func (p *PEBS) onMiss(v addr.Virt, write bool) int64 {
	p.misses++
	if p.misses%p.Period != 0 {
		return 0
	}
	// Sampled: record the page (whether armed or not — PEBS is
	// system-wide; attribution happens at read-out).
	var lat int64 = PEBSRecordOverheadNs
	if p.armed[v.Base4K()] {
		p.samples[v.Base4K()]++
	} else if p.armed[v.Base2M()] {
		p.samples[v.Base2M()]++
	}
	p.inBuf++
	if p.inBuf >= PEBSBufferRecords {
		p.inBuf = 0
		lat += PEBSInterruptOverheadNs
	}
	return lat
}

// Arm implements Backend.
func (p *PEBS) Arm(base addr.Virt) error {
	if _, _, ok := p.m.PageTable().Lookup(base); !ok {
		return fmt.Errorf("counter: PEBS arm of unmapped %s", base)
	}
	p.armed[base] = true
	return nil
}

// Disarm implements Backend.
func (p *PEBS) Disarm(base addr.Virt) error {
	if !p.armed[base] {
		return fmt.Errorf("counter: PEBS disarm of unarmed %s", base)
	}
	delete(p.armed, base)
	return nil
}

// Count implements Backend: samples scaled by the sampling period.
func (p *PEBS) Count(base addr.Virt) uint64 {
	return p.samples[base] * p.Period
}

// Reset implements Backend.
func (p *PEBS) Reset() { p.samples = make(map[addr.Virt]uint64) }

// Close detaches the model from the machine.
func (p *PEBS) Close() { p.m.SetMissHook(nil) }
