package pagetable

import (
	"testing"
	"testing/quick"

	"thermostat/internal/addr"
	"thermostat/internal/rng"
)

func TestMapLookup4K(t *testing.T) {
	pt := New()
	v, p := addr.Virt4K(100), addr.Phys4K(200)
	if err := pt.Map4K(v, p, Writable); err != nil {
		t.Fatal(err)
	}
	e, lvl, ok := pt.Lookup(v + 17)
	if !ok || lvl != Level4K {
		t.Fatalf("Lookup failed: ok=%v lvl=%v", ok, lvl)
	}
	if e.Frame != p {
		t.Fatalf("frame = %s, want %s", e.Frame, p)
	}
	if !e.Flags.Has(Present | Writable) {
		t.Fatalf("flags = %v", e.Flags)
	}
	if pt.Count4K() != 1 || pt.Count2M() != 0 {
		t.Fatalf("counts = %d/%d", pt.Count4K(), pt.Count2M())
	}
}

func TestMapLookup2M(t *testing.T) {
	pt := New()
	v, p := addr.Virt2M(5), addr.Phys2M(9)
	if err := pt.Map2M(v, p, 0); err != nil {
		t.Fatal(err)
	}
	e, lvl, ok := pt.Lookup(v + addr.Virt(addr.PageSize2M-1))
	if !ok || lvl != Level2M {
		t.Fatalf("Lookup: ok=%v lvl=%v", ok, lvl)
	}
	if !e.Flags.Has(Huge) {
		t.Fatal("missing Huge flag")
	}
	// Translation includes the 2M offset.
	pa, ok := pt.Translate(v + 0x12345)
	if !ok || pa != p+0x12345 {
		t.Fatalf("Translate = %s, want %s", pa, p+0x12345)
	}
}

func TestMapRejectsOverlap(t *testing.T) {
	pt := New()
	v2 := addr.Virt2M(3)
	if err := pt.Map2M(v2, addr.Phys2M(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map4K(v2+4096, addr.Phys4K(7), 0); err == nil {
		t.Fatal("Map4K under a huge page should fail")
	}
	if err := pt.Map2M(v2, addr.Phys2M(2), 0); err == nil {
		t.Fatal("double Map2M should fail")
	}
	pt2 := New()
	if err := pt2.Map4K(v2+4096, addr.Phys4K(7), 0); err != nil {
		t.Fatal(err)
	}
	if err := pt2.Map2M(v2, addr.Phys2M(1), 0); err == nil {
		t.Fatal("Map2M over existing 4K should fail")
	}
}

func TestMapRejectsUnaligned(t *testing.T) {
	pt := New()
	if err := pt.Map2M(addr.Virt(4096), addr.Phys2M(1), 0); err == nil {
		t.Fatal("unaligned virtual should fail")
	}
	if err := pt.Map2M(addr.Virt2M(1), addr.Phys(4096), 0); err == nil {
		t.Fatal("unaligned physical should fail")
	}
}

func TestWalkSetsAccessedAndDirty(t *testing.T) {
	pt := New()
	v := addr.Virt4K(42)
	if err := pt.Map4K(v, addr.Phys4K(1), Writable); err != nil {
		t.Fatal(err)
	}
	r := pt.Walk(v, false)
	if !r.Found || r.Poisoned {
		t.Fatalf("walk result %+v", r)
	}
	if r.Depth != 4 {
		t.Fatalf("4K walk depth = %d, want 4", r.Depth)
	}
	e, _, _ := pt.Lookup(v)
	if !e.Flags.Has(Accessed) || e.Flags.Has(Dirty) {
		t.Fatalf("after read walk flags = %v", e.Flags)
	}
	pt.Walk(v, true)
	e, _, _ = pt.Lookup(v)
	if !e.Flags.Has(Dirty) {
		t.Fatal("write walk did not set Dirty")
	}
}

func TestWalkHugeDepth(t *testing.T) {
	pt := New()
	v := addr.Virt2M(7)
	if err := pt.Map2M(v, addr.Phys2M(3), 0); err != nil {
		t.Fatal(err)
	}
	r := pt.Walk(v+123, false)
	if !r.Found || r.Level != Level2M {
		t.Fatalf("walk %+v", r)
	}
	if r.Depth != 3 {
		t.Fatalf("2M walk depth = %d, want 3", r.Depth)
	}
}

func TestWalkUnmapped(t *testing.T) {
	pt := New()
	r := pt.Walk(addr.Virt4K(9), false)
	if r.Found {
		t.Fatal("walk of unmapped address reported Found")
	}
}

func TestWalkPoisonedFaultsWithoutAccessed(t *testing.T) {
	pt := New()
	v := addr.Virt4K(11)
	if err := pt.Map4K(v, addr.Phys4K(2), 0); err != nil {
		t.Fatal(err)
	}
	pt.SetFlags(v, Poisoned)
	r := pt.Walk(v, true)
	if !r.Found || !r.Poisoned {
		t.Fatalf("walk %+v", r)
	}
	e, _, _ := pt.Lookup(v)
	if e.Flags.Has(Accessed) || e.Flags.Has(Dirty) {
		t.Fatal("poisoned walk must not set Accessed/Dirty")
	}
}

func TestSetClearFlags(t *testing.T) {
	pt := New()
	v := addr.Virt4K(5)
	if ok := pt.SetFlags(v, Poisoned); ok {
		t.Fatal("SetFlags on unmapped should fail")
	}
	if err := pt.Map4K(v, addr.Phys4K(1), 0); err != nil {
		t.Fatal(err)
	}
	pt.SetFlags(v, Poisoned)
	prior, ok := pt.ClearFlags(v, Poisoned)
	if !ok || !prior.Has(Poisoned) {
		t.Fatalf("ClearFlags prior=%v ok=%v", prior, ok)
	}
	e, _, _ := pt.Lookup(v)
	if e.Flags.Has(Poisoned) {
		t.Fatal("Poisoned not cleared")
	}
}

func TestUnmapAndPrune(t *testing.T) {
	pt := New()
	v := addr.Virt4K(77)
	if err := pt.Map4K(v, addr.Phys4K(1), 0); err != nil {
		t.Fatal(err)
	}
	e, lvl, err := pt.Unmap(v)
	if err != nil || lvl != Level4K || e.Frame != addr.Phys4K(1) {
		t.Fatalf("Unmap: %v %v %v", e, lvl, err)
	}
	if pt.Count4K() != 0 {
		t.Fatalf("Count4K = %d", pt.Count4K())
	}
	if _, _, ok := pt.Lookup(v); ok {
		t.Fatal("still mapped after Unmap")
	}
	if _, _, err := pt.Unmap(v); err == nil {
		t.Fatal("double Unmap should fail")
	}
	// After pruning, the root should have no children.
	if pt.root.liveChildren != 0 {
		t.Fatalf("root has %d children after prune", pt.root.liveChildren)
	}
}

func TestSplitPreservesTranslationAndCollapseRestores(t *testing.T) {
	pt := New()
	v, p := addr.Virt2M(4), addr.Phys2M(6)
	if err := pt.Map2M(v, p, Writable); err != nil {
		t.Fatal(err)
	}
	if err := pt.Split(v + 500); err != nil { // any address within the huge page
		t.Fatal(err)
	}
	if pt.Count2M() != 0 || pt.Count4K() != addr.PagesPerHuge {
		t.Fatalf("counts after split: %d/%d", pt.Count2M(), pt.Count4K())
	}
	// Every offset still translates identically.
	for _, off := range []uint64{0, 4096 * 3, 123456, addr.PageSize2M - 1} {
		pa, ok := pt.Translate(v + addr.Virt(off))
		if !ok || pa != p+addr.Phys(off) {
			t.Fatalf("post-split Translate(+%#x) = %s, want %s", off, pa, p+addr.Phys(off))
		}
	}
	if !pt.IsSplit(v + 8192) {
		t.Fatal("IsSplit false after split")
	}
	// Children carry SplitSampled and preserve Writable, clear Accessed.
	e, lvl, _ := pt.Lookup(v + 4096)
	if lvl != Level4K || !e.Flags.Has(SplitSampled|Writable) || e.Flags.Has(Accessed) {
		t.Fatalf("child flags = %v lvl=%v", e.Flags, lvl)
	}

	// Touch one child, then collapse: Accessed should be preserved in merge.
	pt.Walk(v+9000, true)
	if err := pt.Collapse(v); err != nil {
		t.Fatal(err)
	}
	if pt.Count2M() != 1 || pt.Count4K() != 0 {
		t.Fatalf("counts after collapse: %d/%d", pt.Count2M(), pt.Count4K())
	}
	e, lvl, _ = pt.Lookup(v)
	if lvl != Level2M || !e.Flags.Has(Huge|Accessed|Dirty) || e.Flags.Has(SplitSampled) {
		t.Fatalf("merged flags = %v lvl=%v", e.Flags, lvl)
	}
	if e.Frame != p {
		t.Fatalf("merged frame = %s", e.Frame)
	}
}

func TestSplitErrors(t *testing.T) {
	pt := New()
	if err := pt.Split(addr.Virt2M(1)); err == nil {
		t.Fatal("Split of unmapped should fail")
	}
	if err := pt.Map4K(addr.Virt4K(0), addr.Phys4K(0), 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.Split(addr.Virt4K(0)); err == nil {
		t.Fatal("Split of 4K-backed region should fail")
	}
}

func TestCollapseErrors(t *testing.T) {
	pt := New()
	v := addr.Virt2M(2)
	if err := pt.Collapse(v); err == nil {
		t.Fatal("Collapse of unmapped should fail")
	}
	if err := pt.Map2M(v, addr.Phys2M(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.Split(v); err != nil {
		t.Fatal(err)
	}
	// Poisoned child blocks collapse.
	pt.SetFlags(v+4096, Poisoned)
	if err := pt.Collapse(v); err == nil {
		t.Fatal("Collapse with poisoned child should fail")
	}
	pt.ClearFlags(v+4096, Poisoned)
	// Non-contiguous child blocks collapse.
	if _, err := pt.Remap(v+8192, addr.Phys4K(99999)); err != nil {
		t.Fatal(err)
	}
	if err := pt.Collapse(v); err == nil {
		t.Fatal("Collapse with migrated child should fail")
	}
}

func TestRemap(t *testing.T) {
	pt := New()
	v := addr.Virt2M(8)
	if err := pt.Map2M(v, addr.Phys2M(1), 0); err != nil {
		t.Fatal(err)
	}
	pt.Walk(v, true) // set Accessed|Dirty
	old, err := pt.Remap(v, addr.Phys2M(2))
	if err != nil || old != addr.Phys2M(1) {
		t.Fatalf("Remap: old=%s err=%v", old, err)
	}
	e, _, _ := pt.Lookup(v)
	if e.Frame != addr.Phys2M(2) {
		t.Fatalf("frame after remap = %s", e.Frame)
	}
	if e.Flags.Has(Accessed) || e.Flags.Has(Dirty) {
		t.Fatal("Remap should clear Accessed/Dirty")
	}
	if _, err := pt.Remap(v, addr.Phys(4096)); err == nil {
		t.Fatal("Remap 2M to unaligned should fail")
	}
	if _, err := pt.Remap(addr.Virt2M(100), addr.Phys2M(3)); err == nil {
		t.Fatal("Remap of unmapped should fail")
	}
}

func TestScanVisitsAllLeavesInOrder(t *testing.T) {
	pt := New()
	if err := pt.Map2M(addr.Virt2M(10), addr.Phys2M(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map4K(addr.Virt4K(3), addr.Phys4K(2), 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map4K(addr.Virt2M(999)+4096, addr.Phys4K(3), 0); err != nil {
		t.Fatal(err)
	}
	var bases []addr.Virt
	pt.Scan(func(base addr.Virt, e *Entry, lvl Level) {
		bases = append(bases, base)
	})
	if len(bases) != 3 {
		t.Fatalf("Scan visited %d leaves, want 3", len(bases))
	}
	for i := 1; i < len(bases); i++ {
		if bases[i] <= bases[i-1] {
			t.Fatalf("Scan out of order: %v", bases)
		}
	}
}

func TestScanRange(t *testing.T) {
	pt := New()
	for i := uint64(0); i < 10; i++ {
		if err := pt.Map2M(addr.Virt2M(i), addr.Phys2M(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	r := addr.NewRange(addr.Virt2M(3), 4*addr.PageSize2M)
	n := 0
	pt.ScanRange(r, func(base addr.Virt, e *Entry, lvl Level) { n++ })
	if n != 4 {
		t.Fatalf("ScanRange visited %d, want 4", n)
	}
}

func TestScanMutationVisible(t *testing.T) {
	pt := New()
	v := addr.Virt2M(1)
	if err := pt.Map2M(v, addr.Phys2M(1), 0); err != nil {
		t.Fatal(err)
	}
	pt.Walk(v, false)
	pt.Scan(func(base addr.Virt, e *Entry, lvl Level) {
		e.Flags &^= Accessed // kstaled-style clearing
	})
	e, _, _ := pt.Lookup(v)
	if e.Flags.Has(Accessed) {
		t.Fatal("Scan mutation not visible")
	}
}

// Property: mapping a random mix of 2M and 4K pages, every mapped address
// translates to its expected frame, and counts match the mapping set.
func TestMappingConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		pt := New()
		type m struct {
			v    addr.Virt
			p    addr.Phys
			huge bool
		}
		var ms []m
		used2M := map[uint64]bool{}
		n4, n2 := 0, 0
		for i := 0; i < 200; i++ {
			hp := r.Uint64n(1 << 20)
			if used2M[hp] {
				continue
			}
			used2M[hp] = true
			if r.Bool(0.5) {
				v, p := addr.Virt2M(hp), addr.Phys2M(r.Uint64n(1<<20))
				if pt.Map2M(v, p, 0) != nil {
					return false
				}
				ms = append(ms, m{v, p, true})
				n2++
			} else {
				// Map a few scattered 4K pages within the region.
				for _, j := range r.Sample(addr.PagesPerHuge, 3) {
					v := addr.Virt2M(hp) + addr.Virt(uint64(j)*addr.PageSize4K)
					p := addr.Phys4K(r.Uint64n(1 << 30))
					if pt.Map4K(v, p, 0) != nil {
						return false
					}
					ms = append(ms, m{v, p, false})
					n4++
				}
			}
		}
		if pt.Count4K() != n4 || pt.Count2M() != n2 {
			return false
		}
		for _, x := range ms {
			off := addr.Virt(r.Uint64n(addr.PageSize4K))
			pa, ok := pt.Translate(x.v + off)
			if !ok || pa != x.p+addr.Phys(off) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: split followed by collapse is the identity on translation.
func TestSplitCollapseRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		pt := New()
		v := addr.Virt2M(r.Uint64n(1 << 20))
		p := addr.Phys2M(r.Uint64n(1 << 20))
		if pt.Map2M(v, p, Writable) != nil {
			return false
		}
		if pt.Split(v) != nil {
			return false
		}
		if pt.Collapse(v) != nil {
			return false
		}
		e, lvl, ok := pt.Lookup(v)
		return ok && lvl == Level2M && e.Frame == p && e.Flags.Has(Writable|Huge)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWalk4K(b *testing.B) {
	pt := New()
	for i := uint64(0); i < 1024; i++ {
		if err := pt.Map4K(addr.Virt4K(i), addr.Phys4K(i), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Walk(addr.Virt4K(uint64(i)&1023), false)
	}
}

func BenchmarkWalk2M(b *testing.B) {
	pt := New()
	for i := uint64(0); i < 512; i++ {
		if err := pt.Map2M(addr.Virt2M(i), addr.Phys2M(i), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Walk(addr.Virt2M(uint64(i)&511), false)
	}
}

func BenchmarkSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pt := New()
		if err := pt.Map2M(addr.Virt2M(1), addr.Phys2M(1), 0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := pt.Split(addr.Virt2M(1)); err != nil {
			b.Fatal(err)
		}
	}
}
