package pagetable

import (
	"testing"

	"thermostat/internal/addr"
)

// benchTable builds a table shaped like a mid-run machine: nHuge 2MB leaves
// with every splitEvery-th one split into 512 4KB children (the engine keeps
// ~5-10% of pages split for sampling at any instant).
func benchTable(b *testing.B, nHuge, splitEvery int) *Table {
	b.Helper()
	t := New()
	base := addr.Virt(1) << 40
	for i := 0; i < nHuge; i++ {
		v := base + addr.Virt(uint64(i)*addr.PageSize2M)
		p := addr.Phys(uint64(i) * addr.PageSize2M)
		if err := t.Map2M(v, p, Writable); err != nil {
			b.Fatal(err)
		}
	}
	if splitEvery > 0 {
		for i := 0; i < nHuge; i += splitEvery {
			v := base + addr.Virt(uint64(i)*addr.PageSize2M)
			if err := t.Split(v); err != nil {
				b.Fatal(err)
			}
		}
	}
	return t
}

// BenchmarkPTScan measures one full-table leaf scan — the operation every
// policy tick, kstaled pass, footprint classification, and telemetry epoch
// performs, usually several times per tick.
func BenchmarkPTScan(b *testing.B) {
	t := benchTable(b, 512, 16)
	var leaves int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaves = 0
		t.Scan(func(base addr.Virt, e *Entry, lvl Level) { leaves++ })
	}
	b.ReportMetric(float64(leaves), "leaves")
}

// BenchmarkPTScanRadix measures the same full scan through the radix-walk
// reference path the flat leaf index replaced — the before/after comparison
// for the hot-path overhaul (flat Scan is the production path).
func BenchmarkPTScanRadix(b *testing.B) {
	t := benchTable(b, 512, 16)
	var leaves int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaves = 0
		t.scanRadix(func(base addr.Virt, e *Entry, lvl Level) { leaves++ })
	}
	b.ReportMetric(float64(leaves), "leaves")
}

// BenchmarkPTScanRange measures scanning one split 2MB region's 512 children
// — the shape of the engine's per-sample pre-filter and restore passes.
func BenchmarkPTScanRange(b *testing.B) {
	t := benchTable(b, 512, 16)
	base := addr.Virt(1) << 40
	r := addr.NewRange(base, addr.PageSize2M)
	var leaves int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaves = 0
		t.ScanRange(r, func(base addr.Virt, e *Entry, lvl Level) { leaves++ })
	}
	if leaves != addr.PagesPerHuge {
		b.Fatalf("scanned %d children, want %d", leaves, addr.PagesPerHuge)
	}
}

// BenchmarkPTSplitCollapse measures the sampling cycle's structural cost:
// split one huge page and collapse it back.
func BenchmarkPTSplitCollapse(b *testing.B) {
	t := benchTable(b, 512, 0)
	v := addr.Virt(1)<<40 + addr.Virt(uint64(100)*addr.PageSize2M)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.Split(v); err != nil {
			b.Fatal(err)
		}
		if err := t.Collapse(v); err != nil {
			b.Fatal(err)
		}
	}
}
