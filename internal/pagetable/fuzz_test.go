package pagetable

import (
	"testing"

	"thermostat/internal/addr"
)

// visit is one leaf observation during a scan.
type visit struct {
	base addr.Virt
	e    *Entry
	lvl  Level
}

// checkLeafIndex asserts the flat leaf index reproduces the reference radix
// walk exactly: same leaves, same order, same entry pointers.
func checkLeafIndex(t *testing.T, pt *Table) {
	t.Helper()
	var ref []visit
	pt.scanRadix(func(b addr.Virt, e *Entry, l Level) {
		ref = append(ref, visit{b, e, l})
	})
	i := 0
	pt.Scan(func(b addr.Virt, e *Entry, l Level) {
		if i >= len(ref) {
			t.Fatalf("flat index visit %d beyond radix walk's %d leaves", i, len(ref))
		}
		w := ref[i]
		if b != w.base || e != w.e || l != w.lvl {
			t.Fatalf("flat index visit %d: got (%s, %p, %d), radix walk has (%s, %p, %d)",
				i, b, e, l, w.base, w.e, w.lvl)
		}
		i++
	})
	if i != len(ref) {
		t.Fatalf("flat index visited %d leaves, radix walk %d", i, len(ref))
	}
	// Radix-only counts: span-held pages (pt.spanPages) have no leaf refs.
	if got := len(ref); got != pt.count4K+pt.count2M {
		t.Fatalf("scan visited %d leaves, counts say %d", got, pt.count4K+pt.count2M)
	}
}

// FuzzLeafIndex drives random interleavings of the structural mutators and
// checks after every operation that Scan over the flat index yields the
// identical visit sequence to the reference radix walk. Errors from
// individual operations are expected (the fuzzer generates invalid ones) and
// ignored — only index consistency matters.
func FuzzLeafIndex(f *testing.F) {
	// Map2M → Split → Collapse → Unmap on one region.
	f.Add([]byte{0, 1, 0, 3, 1, 0, 4, 1, 0, 2, 1, 0})
	// Scattered 4K maps and unmaps across two regions.
	f.Add([]byte{1, 0, 5, 1, 0, 9, 1, 2, 5, 2, 0, 5, 1, 0, 5, 2, 2, 9})
	// Split without collapse, then unmap children.
	f.Add([]byte{0, 3, 0, 3, 3, 0, 2, 3, 0, 2, 3, 1})
	// Remap at both grains plus an interleaved split.
	f.Add([]byte{0, 2, 0, 5, 2, 0, 3, 2, 0, 5, 2, 7, 1, 4, 0, 5, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 256
		if len(data) > 3*maxOps {
			data = data[:3*maxOps]
		}
		pt := New()
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 6
			reg := uint64(data[i+1] % 24)
			sub := (uint64(data[i+2]) * 7) % uint64(addr.PagesPerHuge)
			hv := addr.Virt2M(reg)
			cv := hv + addr.Virt(sub*addr.PageSize4K)
			switch op {
			case 0:
				pt.Map2M(hv, addr.Phys2M(reg), Writable)
			case 1:
				pt.Map4K(cv, addr.Phys4K(reg*uint64(addr.PagesPerHuge)+sub), 0)
			case 2:
				pt.Unmap(cv)
			case 3:
				pt.Split(hv)
			case 4:
				pt.Collapse(hv)
			case 5:
				pt.Remap(cv, addr.Phys2M(reg+100))
			}
			checkLeafIndex(t, pt)
		}
	})
}

// TestScanClear clears mask bits in one sweep and reports prior flags.
func TestScanClear(t *testing.T) {
	pt := New()
	for i := uint64(0); i < 4; i++ {
		if err := pt.Map2M(addr.Virt2M(i), addr.Phys2M(i), Writable); err != nil {
			t.Fatal(err)
		}
	}
	pt.SetFlags(addr.Virt2M(1), Accessed)
	pt.SetFlags(addr.Virt2M(3), Accessed|Dirty)
	var hot []addr.Virt
	pt.ScanClear(Accessed, func(b addr.Virt, prior Flags, lvl Level) {
		if lvl != Level2M {
			t.Fatalf("unexpected level %d at %s", lvl, b)
		}
		if prior.Has(Accessed) {
			hot = append(hot, b)
		}
	})
	if len(hot) != 2 || hot[0] != addr.Virt2M(1) || hot[1] != addr.Virt2M(3) {
		t.Fatalf("hot = %v", hot)
	}
	pt.Scan(func(b addr.Virt, e *Entry, lvl Level) {
		if e.Flags.Has(Accessed) {
			t.Fatalf("%s still Accessed after ScanClear", b)
		}
	})
	if e, _, _ := pt.Lookup(addr.Virt2M(3)); !e.Flags.Has(Dirty) {
		t.Fatal("ScanClear(Accessed) dropped Dirty")
	}
}

// TestClearFlagsRange matches the per-page ClearFlags loop it replaces.
func TestClearFlagsRange(t *testing.T) {
	pt := New()
	for i := uint64(0); i < 3; i++ {
		if err := pt.Map2M(addr.Virt2M(i), addr.Phys2M(i), Writable); err != nil {
			t.Fatal(err)
		}
	}
	if err := pt.Split(addr.Virt2M(1)); err != nil {
		t.Fatal(err)
	}
	for j := uint64(0); j < uint64(addr.PagesPerHuge); j += 3 {
		pt.SetFlags(addr.Virt2M(1)+addr.Virt(j*addr.PageSize4K), Poisoned)
	}
	r := addr.NewRange(addr.Virt2M(1), addr.PageSize2M)
	if n := pt.ClearFlagsRange(r, Poisoned); n != addr.PagesPerHuge {
		t.Fatalf("visited %d leaves, want %d", n, addr.PagesPerHuge)
	}
	pt.ScanRange(r, func(b addr.Virt, e *Entry, lvl Level) {
		if e.Flags.Has(Poisoned) {
			t.Fatalf("%s still Poisoned", b)
		}
	})
	// Neighbouring huge leaves are untouched and counted one each.
	if n := pt.ClearFlagsRange(addr.NewRange(addr.Virt2M(0), addr.PageSize2M), Accessed); n != 1 {
		t.Fatalf("huge region visited %d leaves, want 1", n)
	}
}

// TestEntryRef returns a stable pointer through which flag edits are seen.
func TestEntryRef(t *testing.T) {
	pt := New()
	if err := pt.Map4K(addr.Virt4K(7), addr.Phys4K(3), Writable); err != nil {
		t.Fatal(err)
	}
	e, lvl, ok := pt.EntryRef(addr.Virt4K(7))
	if !ok || lvl != Level4K {
		t.Fatalf("EntryRef = %v, %d, %v", e, lvl, ok)
	}
	e.Flags |= Poisoned
	if got, _, _ := pt.Lookup(addr.Virt4K(7)); !got.Flags.Has(Poisoned) {
		t.Fatal("flag edit through EntryRef not visible to Lookup")
	}
	if _, _, ok := pt.EntryRef(addr.Virt4K(8)); ok {
		t.Fatal("EntryRef of unmapped address reported ok")
	}
}
