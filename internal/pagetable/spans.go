// Span-compressed sparse mode: Telescope-style region summaries for cold
// address spans.
//
// A span is one record standing for a contiguous run of 2MB huge-page
// mappings whose physical frames are contiguous too — count, aggregate flags
// and a representative base instead of one radix leaf (plus flat-index entry)
// per page. Spans keep the table's state sublinear in footprint: a terabyte
// of cold memory is a handful of span records until something touches it at
// page grain.
//
// The hybrid contract:
//
//   - Read paths (Lookup, Translate, Walk) consult the radix tree first and
//     fall back to the span list; a simulated hardware walk over a span sets
//     Accessed/Dirty on the span's *aggregate* flags — the modeled precision
//     loss of region-grain profiling.
//   - Page-grain mutations (Split, Remap, Unmap, SetFlags, EntryRef — i.e.
//     sampling, poisoning, migration) carve the touched 2MB page out of its
//     span into an ordinary radix leaf first ("re-split on first touch").
//   - Reabsorb merges a clean, unpoisoned, physically-contiguous radix leaf
//     back into the span list once the engine has seen it idle long enough
//     ("collapse after ≥k cold periods" — the engine owns the streak).
//
// Dense tables (EnableSpans never called) take none of these paths: every
// guard is a nil/empty check, so dense behavior and dense goldens are
// byte-identical to the span-free implementation.
package pagetable

import (
	"fmt"
	"sort"
	"unsafe"

	"thermostat/internal/addr"
)

// span is one region summary: pages 2MB mappings starting at vbase, backed
// by physically-contiguous frames starting at pbase, sharing aggregate
// flags (always Present|Huge, never Poisoned — poisoning carves first).
type span struct {
	vbase addr.Virt
	pbase addr.Phys
	pages int
	flags Flags
}

// end returns the first virtual address past the span.
func (s *span) end() addr.Virt { return s.vbase + addr.Virt(uint64(s.pages)*addr.PageSize2M) }

// frameOf returns the 2MB frame backing the span page containing v.
func (s *span) frameOf(v addr.Virt) addr.Phys {
	return s.pbase + addr.Phys(uint64(v.Base2M()-s.vbase))
}

// EnableSpans switches the table into hybrid sparse mode. It only arms the
// span machinery; until MapSpan or Reabsorb installs a span the table
// behaves exactly as a dense one.
func (t *Table) EnableSpans() { t.spansOn = true }

// SpansEnabled reports whether hybrid sparse mode is armed.
func (t *Table) SpansEnabled() bool { return t.spansOn }

// SpanCount returns the number of span records.
func (t *Table) SpanCount() int { return len(t.spans) }

// SpanPages returns the number of 2MB pages held in spans (included in
// Count2M).
func (t *Table) SpanPages() int { return t.spanPages }

// spanIdx returns the index of the span containing v, or -1.
func (t *Table) spanIdx(v addr.Virt) int {
	sp := t.spans
	// First span with vbase > v, then check its predecessor.
	i := sort.Search(len(sp), func(k int) bool { return sp[k].vbase > v })
	if i > 0 && v < sp[i-1].end() {
		return i - 1
	}
	return -1
}

// spanOf returns the span containing v, or nil.
func (t *Table) spanOf(v addr.Virt) *span {
	if i := t.spanIdx(v); i >= 0 {
		return &t.spans[i]
	}
	return nil
}

// spliceSpans replaces t.spans[pos:pos+del] with ins.
func (t *Table) spliceSpans(pos, del int, ins ...span) {
	out := append(t.spans[:pos:pos], ins...)
	out = append(out, t.spans[pos+del:]...)
	t.spans = out
}

// MapSpan installs pages contiguous 2MB translations starting at v -> p as
// one span record. v and p must be 2MB-aligned and the range must not
// overlap any existing mapping (leaf or span). Requires EnableSpans.
func (t *Table) MapSpan(v addr.Virt, p addr.Phys, pages int, flags Flags) error {
	if !t.spansOn {
		return fmt.Errorf("pagetable: MapSpan without EnableSpans")
	}
	if pages <= 0 {
		return fmt.Errorf("pagetable: MapSpan of %d pages", pages)
	}
	if v.Base2M() != v {
		return fmt.Errorf("pagetable: MapSpan of unaligned virtual %s", v)
	}
	if p.Base2M() != p {
		return fmt.Errorf("pagetable: MapSpan of unaligned physical %s", p)
	}
	end := v + addr.Virt(uint64(pages)*addr.PageSize2M)
	// Overlap checks: the flat leaf index covers every radix leaf, and the
	// span list covers every span.
	if pos := t.leafPos(v); pos < len(t.leaves) && t.leaves[pos].base < end {
		return fmt.Errorf("pagetable: MapSpan %s overlaps existing leaf %s", v, t.leaves[pos].base)
	}
	i := sort.Search(len(t.spans), func(k int) bool { return t.spans[k].vbase > v })
	if i > 0 && v < t.spans[i-1].end() {
		return fmt.Errorf("pagetable: MapSpan %s overlaps span at %s", v, t.spans[i-1].vbase)
	}
	if i < len(t.spans) && t.spans[i].vbase < end {
		return fmt.Errorf("pagetable: MapSpan %s overlaps span at %s", v, t.spans[i].vbase)
	}
	ns := span{vbase: v, pbase: p, pages: pages, flags: flags | Present | Huge}
	t.spliceSpans(i, 0, ns)
	t.spanPages += pages
	t.mergeAround(i)
	return nil
}

// spanMergeable reports whether b directly extends a (virtually and
// physically contiguous, compatible flags). Accessed/Dirty differences OR
// together; any other flag difference blocks the merge.
func spanMergeable(a, b *span) bool {
	return a.end() == b.vbase &&
		a.pbase+addr.Phys(uint64(a.pages)*addr.PageSize2M) == b.pbase &&
		a.flags&^(Accessed|Dirty) == b.flags&^(Accessed|Dirty)
}

// mergeAround coalesces the span at index i with contiguous neighbors.
func (t *Table) mergeAround(i int) {
	if i+1 < len(t.spans) && spanMergeable(&t.spans[i], &t.spans[i+1]) {
		t.spans[i].pages += t.spans[i+1].pages
		t.spans[i].flags |= t.spans[i+1].flags & (Accessed | Dirty)
		t.spliceSpans(i+1, 1)
	}
	if i > 0 && spanMergeable(&t.spans[i-1], &t.spans[i]) {
		t.spans[i-1].pages += t.spans[i].pages
		t.spans[i-1].flags |= t.spans[i].flags & (Accessed | Dirty)
		t.spliceSpans(i, 1)
	}
}

// carve extracts the 2MB page containing v out of its span into an ordinary
// radix leaf (inheriting the span's aggregate flags), shrinking or splitting
// the span around it. Reports whether v was span-mapped.
func (t *Table) carve(v addr.Virt) bool {
	i := t.spanIdx(v)
	if i < 0 {
		return false
	}
	s := t.spans[i]
	hv := v.Base2M()
	frame := s.frameOf(hv)
	off := int(uint64(hv-s.vbase) >> addr.PageShift2M)
	var repl []span
	if off > 0 {
		repl = append(repl, span{vbase: s.vbase, pbase: s.pbase, pages: off, flags: s.flags})
	}
	if off < s.pages-1 {
		repl = append(repl, span{
			vbase: hv + addr.Virt(addr.PageSize2M),
			pbase: frame + addr.Phys(addr.PageSize2M),
			pages: s.pages - 1 - off,
			flags: s.flags,
		})
	}
	t.spliceSpans(i, 1, repl...)
	t.spanPages--
	if err := t.Map2M(hv, frame, s.flags&^(Present|Huge)); err != nil {
		// The range was just released by the span; a mapping conflict here
		// means the no-overlap invariant broke earlier.
		panic(fmt.Sprintf("pagetable: carve %s: %v", hv, err))
	}
	return true
}

// UnmapSpan removes the whole span starting exactly at v and returns its
// backing frame base, page count and flags — the bulk munmap path.
func (t *Table) UnmapSpan(v addr.Virt) (addr.Phys, int, Flags, error) {
	i := t.spanIdx(v)
	if i < 0 || t.spans[i].vbase != v {
		return 0, 0, 0, fmt.Errorf("pagetable: UnmapSpan of %s: no span starts there", v)
	}
	s := t.spans[i]
	t.spliceSpans(i, 1)
	t.spanPages -= s.pages
	return s.pbase, s.pages, s.flags, nil
}

// SpanRun is one contiguous run of span pages removed by UnmapSpansRange.
type SpanRun struct {
	Vbase addr.Virt
	Pbase addr.Phys
	Pages int
}

// UnmapSpansRange removes every span page whose address falls in r and
// returns the removed runs in address order. Spans straddling a range
// boundary are trimmed, not carved: the remnants outside r stay spans. This
// is the bulk-munmap path — accretion can merge spans across region
// boundaries, so a region teardown must be able to take just its slice.
func (t *Table) UnmapSpansRange(r addr.Range) []SpanRun {
	if len(t.spans) == 0 {
		return nil
	}
	var runs []SpanRun
	sp := t.spans
	j := sort.Search(len(sp), func(k int) bool { return sp[k].end() > r.Start })
	for j < len(t.spans) && t.spans[j].vbase < r.End {
		s := t.spans[j]
		// Same base-in-range semantics as the leaf scans: a span page is
		// taken when its 2MB base falls in r, even if the page extends past
		// r.End — so both bounds round up to page grain.
		lo, hi := s.vbase, s.end()
		if lo < r.Start {
			lo = (r.Start + addr.Virt(addr.PageSize2M-1)).Base2M()
		}
		if end := (r.End + addr.Virt(addr.PageSize2M-1)).Base2M(); hi > end {
			hi = end
		}
		cut := int(uint64(hi-lo) >> addr.PageShift2M)
		if cut <= 0 {
			j++
			continue
		}
		runs = append(runs, SpanRun{Vbase: lo, Pbase: s.frameOf(lo), Pages: cut})
		var repl []span
		if s.vbase < lo {
			repl = append(repl, span{vbase: s.vbase, pbase: s.pbase,
				pages: int(uint64(lo-s.vbase) >> addr.PageShift2M), flags: s.flags})
		}
		if hi < s.end() {
			repl = append(repl, span{vbase: hi, pbase: s.frameOf(hi),
				pages: int(uint64(s.end()-hi) >> addr.PageShift2M), flags: s.flags})
		}
		t.spliceSpans(j, 1, repl...)
		t.spanPages -= cut
		j += len(repl)
	}
	return runs
}

// Reabsorb merges the 2MB radix leaf at v back into the span list: the leaf
// must be huge, present and unpoisoned. It joins an adjacent span when
// virtually and physically contiguous, or starts a fresh single-page span
// that later reabsorptions can extend. Reports whether the leaf moved.
//
// Callers decide *when* a page is cold enough to collapse (the engine's
// ≥k-idle-periods rule); Reabsorb only performs the representation change.
func (t *Table) Reabsorb(v addr.Virt) bool {
	if !t.spansOn {
		return false
	}
	hv := v.Base2M()
	e, lvl := t.entryRefRadix(hv)
	if e == nil || lvl != Level2M || e.Flags.Has(Poisoned) {
		return false
	}
	flags := e.Flags
	frame := e.Frame
	if _, _, err := t.Unmap(hv); err != nil {
		return false
	}
	i := sort.Search(len(t.spans), func(k int) bool { return t.spans[k].vbase > hv })
	t.spliceSpans(i, 0, span{vbase: hv, pbase: frame, pages: 1, flags: flags})
	t.spanPages++
	t.mergeAround(i)
	return true
}

// lookupSpan resolves v against the span list, synthesizing the 2MB leaf
// entry a dense table would hold for it.
func (t *Table) lookupSpan(v addr.Virt) (Entry, Level, bool) {
	s := t.spanOf(v)
	if s == nil {
		return Entry{}, 0, false
	}
	return Entry{Frame: s.frameOf(v), Flags: s.flags}, Level2M, true
}

// spanWalkDepth is the page-walk depth of a dense 2MB translation (PML4 →
// PDPT → PD-huge); a span hit models the same hardware walk over the
// compressed representation.
const spanWalkDepth = 3

// walkSpan performs the hardware-walk side effects for a span page: set
// Accessed (and Dirty for writes) on the aggregate flags. Spans are never
// poisoned, so the walk always retires.
func (t *Table) walkSpan(v addr.Virt, write bool) (WalkResult, bool) {
	s := t.spanOf(v)
	if s == nil {
		return WalkResult{}, false
	}
	s.flags |= Accessed
	if write {
		s.flags |= Dirty
	}
	return WalkResult{
		Entry: Entry{Frame: s.frameOf(v), Flags: s.flags},
		Level: Level2M, Found: true, Depth: spanWalkDepth,
	}, true
}

// RegionVisitor receives each mapped region during a hybrid scan: page-grain
// leaves arrive with pages == 1 and a live entry pointer; spans arrive with
// pages > 1 (or 1, for a not-yet-merged reabsorbed page) and a synthesized
// entry whose flag mutations write back to the span's aggregate. base is the
// region's first virtual address.
type RegionVisitor func(base addr.Virt, pages int, e *Entry, lvl Level)

// ScanRegions visits every mapped region — radix leaves and spans merged in
// address order. On a dense table it is exactly Scan with pages == 1. The
// visitor must not structurally mutate the table.
func (t *Table) ScanRegions(fn RegionVisitor) {
	if len(t.spans) == 0 {
		ls := t.leaves
		for i := range ls {
			fn(ls[i].base, 1, &ls[i].n.entries[ls[i].slot], ls[i].lvl)
		}
		return
	}
	t.scanRegionsWindow(0, len(t.leaves)+len(t.spans), fn)
}

// RegionCount returns the number of regions ScanRegions visits.
func (t *Table) RegionCount() int { return len(t.leaves) + len(t.spans) }

// ScanRegionsShard visits the shard-th of nShards contiguous chunks of the
// merged region sequence. Concatenating the visits of shards 0..nShards-1
// in shard order reproduces ScanRegions exactly — the deterministic-merge
// contract intra-run sharding relies on. Distinct shards touch distinct
// regions, so concurrent shard scans that only mutate visited entries are
// race-free.
func (t *Table) ScanRegionsShard(shard, nShards int, fn RegionVisitor) {
	total := t.RegionCount()
	lo := shard * total / nShards
	hi := (shard + 1) * total / nShards
	t.scanRegionsWindow(lo, hi, fn)
}

// scanRegionsWindow visits merged regions with positions in [lo, hi).
func (t *Table) scanRegionsWindow(lo, hi int, fn RegionVisitor) {
	ls, sp := t.leaves, t.spans
	i, j := 0, 0
	for k := 0; k < hi && (i < len(ls) || j < len(sp)); k++ {
		leafNext := j >= len(sp) || (i < len(ls) && ls[i].base < sp[j].vbase)
		if k < lo {
			if leafNext {
				i++
			} else {
				j++
			}
			continue
		}
		if leafNext {
			fn(ls[i].base, 1, &ls[i].n.entries[ls[i].slot], ls[i].lvl)
			i++
		} else {
			s := &sp[j]
			tmp := Entry{Frame: s.pbase, Flags: s.flags}
			fn(s.vbase, s.pages, &tmp, Level2M)
			s.flags = tmp.Flags
			j++
		}
	}
}

// ScanRegionsRange visits mapped regions whose base addresses fall in r (the
// region-grain analogue of ScanRange; a span overlapping r but based before
// it is not visited).
func (t *Table) ScanRegionsRange(r addr.Range, fn RegionVisitor) {
	ls := t.leaves
	for i := t.leafPos(r.Start); i < len(ls) && ls[i].base < r.End; i++ {
		fn(ls[i].base, 1, &ls[i].n.entries[ls[i].slot], ls[i].lvl)
	}
	sp := t.spans
	for j := sort.Search(len(sp), func(k int) bool { return sp[k].vbase >= r.Start }); j < len(sp) && sp[j].vbase < r.End; j++ {
		s := &sp[j]
		tmp := Entry{Frame: s.pbase, Flags: s.flags}
		fn(s.vbase, s.pages, &tmp, Level2M)
		s.flags = tmp.Flags
	}
}

// ScanClearRegions visits every mapped region in address order, clearing
// mask from its flags (span aggregates included) and reporting the prior
// flags. On a dense table it is exactly ScanClear with pages == 1.
func (t *Table) ScanClearRegions(mask Flags, fn func(base addr.Virt, pages int, prior Flags, lvl Level)) {
	t.scanClearWindow(0, t.RegionCount(), mask, fn)
}

// ScanClearRegionsShard is the shard-th contiguous chunk of ScanClearRegions
// under the same deterministic-merge contract as ScanRegionsShard.
func (t *Table) ScanClearRegionsShard(shard, nShards int, mask Flags, fn func(base addr.Virt, pages int, prior Flags, lvl Level)) {
	total := t.RegionCount()
	t.scanClearWindow(shard*total/nShards, (shard+1)*total/nShards, mask, fn)
}

func (t *Table) scanClearWindow(lo, hi int, mask Flags, fn func(base addr.Virt, pages int, prior Flags, lvl Level)) {
	ls, sp := t.leaves, t.spans
	i, j := 0, 0
	for k := 0; k < hi && (i < len(ls) || j < len(sp)); k++ {
		leafNext := j >= len(sp) || (i < len(ls) && ls[i].base < sp[j].vbase)
		if k < lo {
			if leafNext {
				i++
			} else {
				j++
			}
			continue
		}
		if leafNext {
			e := &ls[i].n.entries[ls[i].slot]
			prior := e.Flags
			if prior&mask != 0 {
				e.Flags = prior &^ mask
			}
			if fn != nil {
				fn(ls[i].base, 1, prior, ls[i].lvl)
			}
			i++
		} else {
			s := &sp[j]
			prior := s.flags
			if prior&mask != 0 {
				s.flags = prior &^ mask
			}
			if fn != nil {
				fn(s.vbase, s.pages, prior, Level2M)
			}
			j++
		}
	}
}

// StateBytes returns the table's resident simulator-state footprint: radix
// nodes, the flat leaf index and the span list. This is the numerator of the
// scaling benchmark's state-bytes-per-simulated-GB metric.
func (t *Table) StateBytes() uint64 {
	return uint64(t.nodes)*uint64(unsafe.Sizeof(node{})) +
		uint64(cap(t.leaves))*uint64(unsafe.Sizeof(leafRef{})) +
		uint64(cap(t.spans))*uint64(unsafe.Sizeof(span{}))
}

// PageStateView is the read surface over the hybrid page-grain + region-grain
// state. Engine ticks, censuses and telemetry snapshots consume mapped-page
// information through it, so policies never observe whether a page is backed
// by a radix leaf or a span summary. *Table implements it.
type PageStateView interface {
	// ScanRegions visits every mapped region in address order.
	ScanRegions(fn RegionVisitor)
	// ScanRegionsRange restricts the visit to regions based in r.
	ScanRegionsRange(r addr.Range, fn RegionVisitor)
	// RegionCount returns the number of regions a full scan visits.
	RegionCount() int
	// StateBytes returns the view's resident simulator-state bytes.
	StateBytes() uint64
}

var _ PageStateView = (*Table)(nil)
