package pagetable

import (
	"testing"

	"thermostat/internal/addr"
)

func mustMapSpan(t *testing.T, pt *Table, reg, pages uint64) {
	t.Helper()
	if err := pt.MapSpan(addr.Virt2M(reg), addr.Phys2M(reg), int(pages), Writable); err != nil {
		t.Fatal(err)
	}
}

// TestMapSpanReads covers the span fallbacks of Lookup, Translate and Walk.
func TestMapSpanReads(t *testing.T) {
	pt := New()
	pt.EnableSpans()
	mustMapSpan(t, pt, 2, 8)
	if pt.SpanCount() != 1 || pt.SpanPages() != 8 {
		t.Fatalf("spans = %d/%d pages, want 1/8", pt.SpanCount(), pt.SpanPages())
	}
	if pt.Count2M() != 8 {
		t.Fatalf("Count2M = %d, want 8 (span pages included)", pt.Count2M())
	}
	v := addr.Virt2M(5) + addr.Virt(123*addr.PageSize4K)
	e, lvl, ok := pt.Lookup(v)
	if !ok || lvl != Level2M || e.Frame != addr.Phys2M(5) {
		t.Fatalf("Lookup(%s) = %+v, %d, %v", v, e, lvl, ok)
	}
	if !e.Flags.Has(Present|Huge|Writable) || e.Flags.Has(Accessed) {
		t.Fatalf("span entry flags = %b", e.Flags)
	}
	pa, ok := pt.Translate(v)
	if !ok || pa != addr.Phys2M(5)+addr.Phys(123*addr.PageSize4K) {
		t.Fatalf("Translate(%s) = %s, %v", v, pa, ok)
	}
	if _, _, ok := pt.Lookup(addr.Virt2M(1)); ok {
		t.Fatal("Lookup before span start reported mapped")
	}
	if _, _, ok := pt.Lookup(addr.Virt2M(10)); ok {
		t.Fatal("Lookup past span end reported mapped")
	}
	w := pt.Walk(v, true)
	if !w.Found || w.Level != Level2M || w.Depth != spanWalkDepth || w.Poisoned {
		t.Fatalf("Walk over span = %+v", w)
	}
	// The walk set Accessed/Dirty on the span aggregate: every page in the
	// span now reports them (region-grain precision).
	if e, _, _ := pt.Lookup(addr.Virt2M(2)); !e.Flags.Has(Accessed | Dirty) {
		t.Fatalf("span aggregate after write walk = %b", e.Flags)
	}
}

// TestMapSpanOverlap rejects collisions with leaves and other spans.
func TestMapSpanOverlap(t *testing.T) {
	pt := New()
	pt.EnableSpans()
	if err := pt.Map2M(addr.Virt2M(4), addr.Phys2M(100), 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.MapSpan(addr.Virt2M(2), addr.Phys2M(2), 4, 0); err == nil {
		t.Fatal("MapSpan over an existing leaf succeeded")
	}
	mustMapSpan(t, pt, 8, 4)
	if err := pt.MapSpan(addr.Virt2M(10), addr.Phys2M(40), 4, 0); err == nil {
		t.Fatal("MapSpan over an existing span succeeded")
	}
	if err := pt.Map2M(addr.Virt2M(9), addr.Phys2M(50), 0); err == nil {
		t.Fatal("Map2M over a span succeeded")
	}
	if err := pt.Map4K(addr.Virt2M(9), addr.Phys4K(999), 0); err == nil {
		t.Fatal("Map4K over a span succeeded")
	}
}

// TestMapSpanAccretion merges adjacent compatible spans into one record.
func TestMapSpanAccretion(t *testing.T) {
	pt := New()
	pt.EnableSpans()
	mustMapSpan(t, pt, 0, 4)
	mustMapSpan(t, pt, 4, 4)
	if pt.SpanCount() != 1 || pt.SpanPages() != 8 {
		t.Fatalf("adjacent spans not merged: %d spans, %d pages", pt.SpanCount(), pt.SpanPages())
	}
	// Physically discontiguous neighbor stays separate.
	if err := pt.MapSpan(addr.Virt2M(8), addr.Phys2M(100), 2, Writable); err != nil {
		t.Fatal(err)
	}
	if pt.SpanCount() != 2 {
		t.Fatalf("discontiguous span merged: %d spans", pt.SpanCount())
	}
}

// TestCarveOnMutate: page-grain mutators re-split a span page into a radix
// leaf and leave the rest of the span intact.
func TestCarveOnMutate(t *testing.T) {
	pt := New()
	pt.EnableSpans()
	mustMapSpan(t, pt, 0, 8)
	mid := addr.Virt2M(3)
	if !pt.SetFlags(mid, Poisoned) {
		t.Fatal("SetFlags over span failed")
	}
	if pt.SpanCount() != 2 || pt.SpanPages() != 7 {
		t.Fatalf("after carve: %d spans, %d pages, want 2/7", pt.SpanCount(), pt.SpanPages())
	}
	e, lvl := pt.entryRefRadix(mid)
	if e == nil || lvl != Level2M || !e.Flags.Has(Poisoned) || e.Frame != addr.Phys2M(3) {
		t.Fatalf("carved leaf = %+v, %d", e, lvl)
	}
	if pt.Count2M() != 8 {
		t.Fatalf("Count2M = %d after carve, want 8", pt.Count2M())
	}
	// Split carves first, too.
	if err := pt.Split(addr.Virt2M(6)); err != nil {
		t.Fatal(err)
	}
	if pt.Count4K() != addr.PagesPerHuge || pt.SpanPages() != 6 {
		t.Fatalf("after split: %d 4K leaves, %d span pages", pt.Count4K(), pt.SpanPages())
	}
	// Unmap carves first, too.
	if _, _, err := pt.Unmap(addr.Virt2M(1)); err != nil {
		t.Fatal(err)
	}
	if pt.SpanPages() != 5 {
		t.Fatalf("after unmap: %d span pages, want 5", pt.SpanPages())
	}
	if _, _, ok := pt.Lookup(addr.Virt2M(1)); ok {
		t.Fatal("unmapped span page still resolves")
	}
}

// TestUnmapSpan removes a whole span in one call.
func TestUnmapSpan(t *testing.T) {
	pt := New()
	pt.EnableSpans()
	mustMapSpan(t, pt, 2, 6)
	if _, _, _, err := pt.UnmapSpan(addr.Virt2M(3)); err == nil {
		t.Fatal("UnmapSpan mid-span succeeded")
	}
	pbase, pages, _, err := pt.UnmapSpan(addr.Virt2M(2))
	if err != nil || pbase != addr.Phys2M(2) || pages != 6 {
		t.Fatalf("UnmapSpan = %s, %d, %v", pbase, pages, err)
	}
	if pt.SpanCount() != 0 || pt.Count2M() != 0 {
		t.Fatalf("span remains after UnmapSpan: %d/%d", pt.SpanCount(), pt.Count2M())
	}
}

// TestReabsorb merges an idle carved leaf back into its neighbors.
func TestReabsorb(t *testing.T) {
	pt := New()
	pt.EnableSpans()
	mustMapSpan(t, pt, 0, 8)
	mid := addr.Virt2M(3)
	pt.SetFlags(mid, Poisoned) // carve
	if pt.Reabsorb(mid) {
		t.Fatal("Reabsorb of a poisoned leaf succeeded")
	}
	pt.ClearFlags(mid, Poisoned)
	if !pt.Reabsorb(mid) {
		t.Fatal("Reabsorb of clean leaf failed")
	}
	// Bridging merge: left span + page + right span collapse to one record.
	if pt.SpanCount() != 1 || pt.SpanPages() != 8 {
		t.Fatalf("after reabsorb: %d spans, %d pages, want 1/8", pt.SpanCount(), pt.SpanPages())
	}
	if pt.Count2M() != 8 || pt.RegionCount() != 1 {
		t.Fatalf("Count2M=%d RegionCount=%d", pt.Count2M(), pt.RegionCount())
	}
	// A migrated page (discontiguous frame) reabsorbs as its own span.
	pt.Remap(addr.Virt2M(5), addr.Phys2M(200))
	if pt.SpanCount() != 2 {
		t.Fatalf("carve by Remap left %d spans", pt.SpanCount())
	}
	if !pt.Reabsorb(addr.Virt2M(5)) {
		t.Fatal("Reabsorb of migrated leaf failed")
	}
	if pt.SpanCount() != 3 || pt.SpanPages() != 8 {
		t.Fatalf("after migrated reabsorb: %d spans, %d pages, want 3/8", pt.SpanCount(), pt.SpanPages())
	}
}

// TestScanRegionsDense: on a dense table ScanRegions is exactly Scan with
// pages == 1 — the identity the golden-pinned callers rely on.
func TestScanRegionsDense(t *testing.T) {
	pt := New()
	for i := uint64(0); i < 6; i++ {
		if err := pt.Map2M(addr.Virt2M(i), addr.Phys2M(i), Writable); err != nil {
			t.Fatal(err)
		}
	}
	if err := pt.Split(addr.Virt2M(2)); err != nil {
		t.Fatal(err)
	}
	var ref []visit
	pt.Scan(func(b addr.Virt, e *Entry, l Level) { ref = append(ref, visit{b, e, l}) })
	i := 0
	pt.ScanRegions(func(b addr.Virt, pages int, e *Entry, l Level) {
		if pages != 1 {
			t.Fatalf("dense region at %s has %d pages", b, pages)
		}
		w := ref[i]
		if b != w.base || e != w.e || l != w.lvl {
			t.Fatalf("visit %d: got (%s, %p, %d), Scan has (%s, %p, %d)", i, b, e, l, w.base, w.e, w.lvl)
		}
		i++
	})
	if i != len(ref) || pt.RegionCount() != len(ref) {
		t.Fatalf("ScanRegions visited %d, Scan %d, RegionCount %d", i, len(ref), pt.RegionCount())
	}
}

// regionVisit is one region observation (entry copied by value).
type regionVisit struct {
	base  addr.Virt
	pages int
	e     Entry
	lvl   Level
}

func collectRegions(pt *Table) []regionVisit {
	var out []regionVisit
	pt.ScanRegions(func(b addr.Virt, pages int, e *Entry, l Level) {
		out = append(out, regionVisit{b, pages, *e, l})
	})
	return out
}

// TestScanRegionsShard: concatenating shard visits in shard order reproduces
// the full scan for every shard count — the deterministic-merge contract.
func TestScanRegionsShard(t *testing.T) {
	pt := New()
	pt.EnableSpans()
	mustMapSpan(t, pt, 0, 5)
	mustMapSpan(t, pt, 10, 3)
	for i := uint64(6); i < 9; i++ {
		if err := pt.Map2M(addr.Virt2M(i), addr.Phys2M(i+50), 0); err != nil {
			t.Fatal(err)
		}
	}
	pt.Split(addr.Virt2M(7))
	want := collectRegions(pt)
	for _, shards := range []int{1, 2, 3, 7, 16, 1000} {
		var got []regionVisit
		for s := 0; s < shards; s++ {
			pt.ScanRegionsShard(s, shards, func(b addr.Virt, pages int, e *Entry, l Level) {
				got = append(got, regionVisit{b, pages, *e, l})
			})
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d visits, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d visit %d: got %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}
}

// TestScanClearRegionsShard: sharded clear visits every region once with the
// same priors as the serial form.
func TestScanClearRegionsShard(t *testing.T) {
	build := func() *Table {
		pt := New()
		pt.EnableSpans()
		mustMapSpan(t, pt, 0, 4)
		for i := uint64(5); i < 8; i++ {
			pt.Map2M(addr.Virt2M(i), addr.Phys2M(i), 0)
		}
		pt.Walk(addr.Virt2M(1), false) // span aggregate Accessed
		pt.Walk(addr.Virt2M(6), true)  // leaf Accessed|Dirty
		return pt
	}
	type clearVisit struct {
		base  addr.Virt
		pages int
		prior Flags
		lvl   Level
	}
	serial := build()
	var want []clearVisit
	serial.ScanClearRegions(Accessed, func(b addr.Virt, pages int, prior Flags, l Level) {
		want = append(want, clearVisit{b, pages, prior, l})
	})
	sharded := build()
	var got []clearVisit
	for s := 0; s < 4; s++ {
		sharded.ScanClearRegionsShard(s, 4, Accessed, func(b addr.Virt, pages int, prior Flags, l Level) {
			got = append(got, clearVisit{b, pages, prior, l})
		})
	}
	if len(got) != len(want) {
		t.Fatalf("sharded clear: %d visits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visit %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, pt := range []*Table{serial, sharded} {
		pt.ScanRegions(func(b addr.Virt, pages int, e *Entry, l Level) {
			if e.Flags.Has(Accessed) {
				t.Fatalf("%s still Accessed", b)
			}
			if b == addr.Virt2M(6) && !e.Flags.Has(Dirty) {
				t.Fatal("clear dropped Dirty")
			}
		})
	}
}

// TestClearFlagsRangeSpans: spans overlapping the range are cleared at
// aggregate grain and counted by overlapping pages.
func TestClearFlagsRangeSpans(t *testing.T) {
	pt := New()
	pt.EnableSpans()
	mustMapSpan(t, pt, 0, 8)
	pt.Walk(addr.Virt2M(0), false)
	r := addr.NewRange(addr.Virt2M(2), 3*addr.PageSize2M)
	if n := pt.ClearFlagsRange(r, Accessed); n != 3 {
		t.Fatalf("visited %d pages, want 3", n)
	}
	if e, _, _ := pt.Lookup(addr.Virt2M(7)); e.Flags.Has(Accessed) {
		t.Fatal("span aggregate still Accessed after overlapping clear")
	}
}

// TestStateBytes: span-held pages cost no per-page state; carving adds it.
func TestStateBytes(t *testing.T) {
	pt := New()
	pt.EnableSpans()
	empty := pt.StateBytes()
	if empty == 0 {
		t.Fatal("empty table reports zero state")
	}
	mustMapSpan(t, pt, 0, 1024)
	spanCost := pt.StateBytes() - empty
	dense := New()
	for i := uint64(0); i < 1024; i++ {
		if err := dense.Map2M(addr.Virt2M(i), addr.Phys2M(i), Writable); err != nil {
			t.Fatal(err)
		}
	}
	denseCost := dense.StateBytes() - empty
	if spanCost*10 > denseCost {
		t.Fatalf("1024-page span costs %d bytes, dense %d — not sublinear", spanCost, denseCost)
	}
}

// checkSpanInvariants asserts structural health of the hybrid state.
func checkSpanInvariants(t *testing.T, pt *Table) {
	t.Helper()
	pages := 0
	for i := range pt.spans {
		s := &pt.spans[i]
		if s.pages <= 0 {
			t.Fatalf("span %d at %s has %d pages", i, s.vbase, s.pages)
		}
		pages += s.pages
		if i > 0 && pt.spans[i-1].end() > s.vbase {
			t.Fatalf("spans %d/%d overlap or disorder: %s..%s vs %s",
				i-1, i, pt.spans[i-1].vbase, pt.spans[i-1].end(), s.vbase)
		}
		if s.flags.Has(Poisoned) {
			t.Fatalf("span at %s is poisoned", s.vbase)
		}
	}
	if pages != pt.spanPages {
		t.Fatalf("spanPages = %d, spans sum to %d", pt.spanPages, pages)
	}
	checkLeafIndex(t, pt)
}

// FuzzSparseVsDense drives the same randomized operation sequence against a
// hybrid (span-compressed) table and a dense table built over identical
// mappings, asserting after every step that the dense oracle's observable
// state is reproduced: per-page presence, frames, levels, poison and
// non-A/D flags exactly; Accessed/Dirty conservatively (a span walk marks
// the whole region, so the sparse side may over-report but never
// under-report); and the mapping counters exactly.
func FuzzSparseVsDense(f *testing.F) {
	// Walks, poison, split/collapse on one region.
	f.Add([]byte{0, 3, 10, 5, 3, 0, 3, 3, 0, 0, 3, 77, 5, 3, 0, 4, 3, 0})
	// Carve by clearflags, reabsorb, walk the merged span.
	f.Add([]byte{2, 5, 0, 7, 5, 0, 1, 5, 9, 0, 6, 1})
	// Migration carve, unmap, walks at the edges.
	f.Add([]byte{6, 2, 0, 8, 2, 0, 0, 0, 0, 1, 11, 200})
	// Dense-vs-span boundary churn.
	f.Add([]byte{5, 1, 4, 5, 2, 4, 7, 1, 0, 7, 2, 0, 0, 1, 8, 4, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nRegions = 12
		const maxOps = 200
		if len(data) > 3*maxOps {
			data = data[:3*maxOps]
		}
		sp := New()
		sp.EnableSpans()
		if err := sp.MapSpan(0, 0, nRegions, Writable); err != nil {
			t.Fatal(err)
		}
		dn := New()
		for i := uint64(0); i < nRegions; i++ {
			if err := dn.Map2M(addr.Virt2M(i), addr.Phys2M(i), Writable); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 9
			reg := uint64(data[i+1] % nRegions)
			sub := (uint64(data[i+2]) * 7) % uint64(addr.PagesPerHuge)
			hv := addr.Virt2M(reg)
			cv := hv + addr.Virt(sub*addr.PageSize4K)
			switch op {
			case 0:
				sp.Walk(cv, false)
				dn.Walk(cv, false)
			case 1:
				sp.Walk(cv, true)
				dn.Walk(cv, true)
			case 2:
				sp.ClearFlags(cv, Accessed)
				dn.ClearFlags(cv, Accessed)
			case 3:
				sp.Split(hv)
				dn.Split(hv)
			case 4:
				sp.Collapse(hv)
				dn.Collapse(hv)
			case 5:
				// Toggle poison through EntryRef, the badgertrap path.
				if e, _, ok := sp.EntryRef(cv); ok {
					e.Flags ^= Poisoned
				}
				if e, _, ok := dn.EntryRef(cv); ok {
					e.Flags ^= Poisoned
				}
			case 6:
				sp.Remap(cv, addr.Phys2M(reg+100))
				dn.Remap(cv, addr.Phys2M(reg+100))
			case 7:
				// Reabsorb is representation-only: the dense oracle ignores it.
				sp.Reabsorb(hv)
			case 8:
				sp.Unmap(cv)
				dn.Unmap(cv)
			}
			checkSpanInvariants(t, sp)
			if sp.Count4K() != dn.Count4K() || sp.Count2M() != dn.Count2M() {
				t.Fatalf("op %d: counts 4K %d/%d, 2M %d/%d",
					i/3, sp.Count4K(), dn.Count4K(), sp.Count2M(), dn.Count2M())
			}
			if sp.MappedBytes() != dn.MappedBytes() {
				t.Fatalf("op %d: MappedBytes %d vs %d", i/3, sp.MappedBytes(), dn.MappedBytes())
			}
			for r := uint64(0); r < nRegions; r++ {
				probe := addr.Virt2M(r) + addr.Virt((uint64(i)*13%uint64(addr.PagesPerHuge))*addr.PageSize4K)
				se, slvl, sok := sp.Lookup(probe)
				de, dlvl, dok := dn.Lookup(probe)
				if sok != dok {
					t.Fatalf("op %d: presence of %s differs: %v vs %v", i/3, probe, sok, dok)
				}
				if !sok {
					continue
				}
				if slvl != dlvl || se.Frame != de.Frame {
					t.Fatalf("op %d: %s maps (%s, %d) vs (%s, %d)", i/3, probe, se.Frame, slvl, de.Frame, dlvl)
				}
				spa, _ := sp.Translate(probe)
				dpa, _ := dn.Translate(probe)
				if spa != dpa {
					t.Fatalf("op %d: Translate(%s) %s vs %s", i/3, probe, spa, dpa)
				}
				const ad = Accessed | Dirty
				if se.Flags&^ad != de.Flags&^ad {
					t.Fatalf("op %d: %s flags %b vs %b (non-A/D)", i/3, probe, se.Flags, de.Flags)
				}
				if de.Flags&ad&^se.Flags != 0 {
					t.Fatalf("op %d: %s sparse under-reports A/D: %b vs %b", i/3, probe, se.Flags, de.Flags)
				}
			}
		}
	})
}
