// Package pagetable implements an x86-64-style 4-level radix page table for
// the simulated MMU: PML4 → PDPT → PD → PT, with 2MB huge-page leaves at the
// PD level and 4KB leaves at the PT level.
//
// Entries carry the architectural flag bits Thermostat's mechanisms consume:
// Accessed and Dirty (set by simulated hardware walks), and a Poisoned bit
// standing in for PTE reserved bit 51, which BadgerTrap-style fault
// interception uses to trap TLB misses to sampled pages.
//
// The table supports transparent-huge-page style split (one 2MB leaf into
// 512 4KB leaves over the same physical frame) and collapse (the inverse),
// which is how Thermostat samples constituent 4KB pages of a huge page.
package pagetable

import (
	"fmt"

	"thermostat/internal/addr"
)

// Flags is the PTE flag word.
type Flags uint16

// Architectural and software PTE flags.
const (
	// Present marks a valid translation.
	Present Flags = 1 << iota
	// Writable permits stores.
	Writable
	// Accessed is set by every hardware walk that uses the entry.
	Accessed
	// Dirty is set by every hardware walk for a store.
	Dirty
	// Huge marks a PD-level 2MB leaf (the PS bit).
	Huge
	// Poisoned models a set reserved bit (bit 51): a hardware walk that
	// reaches a poisoned entry raises a protection fault, which
	// BadgerTrap intercepts to count accesses.
	Poisoned
	// SplitSampled is a software bit marking 4KB leaves that were created
	// by splitting a huge page for sampling (so the engine can tell them
	// apart from native 4KB mappings when reporting footprints).
	SplitSampled
)

// Has reports whether all bits in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// Entry is one page-table entry.
type Entry struct {
	Frame addr.Phys
	Flags Flags
}

// Level identifies where a translation terminated.
type Level int

// Leaf levels.
const (
	// Level4K is a PT-level 4KB leaf.
	Level4K Level = 1
	// Level2M is a PD-level 2MB huge leaf.
	Level2M Level = 2
)

// node is one 512-entry radix table.
type node struct {
	entries  [512]Entry
	children [512]*node
	// liveLeaves counts present leaf entries in this node (PT and PD-huge),
	// so unmap can prune empty nodes.
	liveLeaves int
	// liveChildren counts non-nil children.
	liveChildren int
}

// Table is a 4-level page table.
type Table struct {
	root    *node
	count4K int
	count2M int
}

// New returns an empty table.
func New() *Table { return &Table{root: &node{}} }

// Count4K returns the number of present 4KB leaf entries.
func (t *Table) Count4K() int { return t.count4K }

// Count2M returns the number of present 2MB leaf entries.
func (t *Table) Count2M() int { return t.count2M }

// MappedBytes returns the total bytes mapped.
func (t *Table) MappedBytes() uint64 {
	return uint64(t.count4K)*addr.PageSize4K + uint64(t.count2M)*addr.PageSize2M
}

// descend returns the node at the given level for v, allocating intermediate
// nodes when create is set. Level 4 is the root; descend(v, 1, true) returns
// the PT node whose entries map 4KB pages.
func (t *Table) descend(v addr.Virt, level int, create bool) *node {
	n := t.root
	for l := 4; l > level; l-- {
		i := addr.Index(v, l)
		// A huge leaf blocks descent below level 2.
		if l == 2 && n.entries[i].Flags.Has(Present|Huge) {
			return nil
		}
		child := n.children[i]
		if child == nil {
			if !create {
				return nil
			}
			child = &node{}
			n.children[i] = child
			n.liveChildren++
		}
		n = child
	}
	return n
}

// Map4K installs a 4KB translation v -> p. Fails if v is already mapped at
// either grain.
func (t *Table) Map4K(v addr.Virt, p addr.Phys, flags Flags) error {
	if e, _, ok := t.Lookup(v); ok {
		return fmt.Errorf("pagetable: %s already mapped to %s", v, e.Frame)
	}
	pt := t.descend(v, 1, true)
	if pt == nil {
		return fmt.Errorf("pagetable: %s covered by a huge mapping", v)
	}
	i := addr.Index(v, 1)
	pt.entries[i] = Entry{Frame: p.Base4K(), Flags: flags | Present}
	pt.liveLeaves++
	t.count4K++
	return nil
}

// Map2M installs a 2MB translation v -> p at the PD level. v and p must be
// 2MB-aligned. Fails if any 4KB page in the range is already mapped.
func (t *Table) Map2M(v addr.Virt, p addr.Phys, flags Flags) error {
	if v.Base2M() != v {
		return fmt.Errorf("pagetable: Map2M of unaligned virtual %s", v)
	}
	if p.Base2M() != p {
		return fmt.Errorf("pagetable: Map2M of unaligned physical %s", p)
	}
	pd := t.descend(v, 2, true)
	if pd == nil {
		return fmt.Errorf("pagetable: %s covered by a huge mapping", v)
	}
	i := addr.Index(v, 2)
	if pd.entries[i].Flags.Has(Present) {
		return fmt.Errorf("pagetable: %s already huge-mapped", v)
	}
	if pd.children[i] != nil {
		return fmt.Errorf("pagetable: %s overlaps existing 4KB mappings", v)
	}
	pd.entries[i] = Entry{Frame: p, Flags: flags | Present | Huge}
	pd.liveLeaves++
	t.count2M++
	return nil
}

// Lookup finds the translation for v without side effects (no Accessed
// update, no poison fault). ok is false if v is unmapped.
func (t *Table) Lookup(v addr.Virt) (Entry, Level, bool) {
	n := t.root
	for l := 4; l >= 1; l-- {
		i := addr.Index(v, l)
		if l == 2 {
			e := n.entries[i]
			if e.Flags.Has(Present | Huge) {
				return e, Level2M, true
			}
		}
		if l == 1 {
			e := n.entries[i]
			if e.Flags.Has(Present) {
				return e, Level4K, true
			}
			return Entry{}, 0, false
		}
		if n.children[i] == nil {
			return Entry{}, 0, false
		}
		n = n.children[i]
	}
	return Entry{}, 0, false
}

// Translate resolves v to a physical address using Lookup (no side effects).
func (t *Table) Translate(v addr.Virt) (addr.Phys, bool) {
	e, lvl, ok := t.Lookup(v)
	if !ok {
		return 0, false
	}
	if lvl == Level2M {
		return e.Frame + addr.Phys(v.Offset2M()), true
	}
	return e.Frame + addr.Phys(v.Offset4K()), true
}

// WalkResult describes a simulated hardware page walk.
type WalkResult struct {
	// Entry is the leaf translation found (zero if !Found).
	Entry Entry
	// Level is the leaf level (Level4K or Level2M).
	Level Level
	// Found is false for an unmapped address (page fault).
	Found bool
	// Poisoned is true when the leaf had the Poisoned bit set: the walk
	// raises a protection fault instead of installing a translation.
	Poisoned bool
	// Depth is the number of page-table levels the walker touched (each
	// costs one memory access in the native walk-cost model).
	Depth int
}

// Walk performs a hardware page walk for v: finds the leaf, sets Accessed
// (and Dirty for writes) unless the entry is poisoned, and reports the walk
// depth. A poisoned leaf reports Poisoned=true and leaves flags untouched —
// the MMU raises the fault before retiring the access.
func (t *Table) Walk(v addr.Virt, write bool) WalkResult {
	n := t.root
	depth := 0
	for l := 4; l >= 1; l-- {
		i := addr.Index(v, l)
		depth++
		if l == 2 && n.entries[i].Flags.Has(Present|Huge) {
			return t.finishWalk(&n.entries[i], Level2M, depth, write)
		}
		if l == 1 {
			if !n.entries[i].Flags.Has(Present) {
				return WalkResult{Depth: depth}
			}
			return t.finishWalk(&n.entries[i], Level4K, depth, write)
		}
		if n.children[i] == nil {
			return WalkResult{Depth: depth}
		}
		n = n.children[i]
	}
	return WalkResult{Depth: depth}
}

func (t *Table) finishWalk(e *Entry, lvl Level, depth int, write bool) WalkResult {
	if e.Flags.Has(Poisoned) {
		return WalkResult{Entry: *e, Level: lvl, Found: true, Poisoned: true, Depth: depth}
	}
	e.Flags |= Accessed
	if write {
		e.Flags |= Dirty
	}
	return WalkResult{Entry: *e, Level: lvl, Found: true, Depth: depth}
}

// entryRef returns a pointer to the leaf entry mapping v, or nil.
func (t *Table) entryRef(v addr.Virt) (*Entry, Level) {
	n := t.root
	for l := 4; l >= 1; l-- {
		i := addr.Index(v, l)
		if l == 2 && n.entries[i].Flags.Has(Present|Huge) {
			return &n.entries[i], Level2M
		}
		if l == 1 {
			if n.entries[i].Flags.Has(Present) {
				return &n.entries[i], Level4K
			}
			return nil, 0
		}
		if n.children[i] == nil {
			return nil, 0
		}
		n = n.children[i]
	}
	return nil, 0
}

// SetFlags ORs mask into the leaf entry mapping v. Returns false if unmapped.
func (t *Table) SetFlags(v addr.Virt, mask Flags) bool {
	e, _ := t.entryRef(v)
	if e == nil {
		return false
	}
	e.Flags |= mask
	return true
}

// ClearFlags removes mask from the leaf entry mapping v. Returns the prior
// flags and whether v was mapped.
func (t *Table) ClearFlags(v addr.Virt, mask Flags) (Flags, bool) {
	e, _ := t.entryRef(v)
	if e == nil {
		return 0, false
	}
	prior := e.Flags
	e.Flags &^= mask
	return prior, true
}

// Remap changes the physical frame of the leaf mapping v (page migration).
// The grain of the existing mapping is preserved; flags other than Accessed
// and Dirty are kept, and Accessed/Dirty are cleared (fresh page, as after a
// migration the kernel re-establishes the mapping). Returns the old frame.
func (t *Table) Remap(v addr.Virt, p addr.Phys) (addr.Phys, error) {
	e, lvl := t.entryRef(v)
	if e == nil {
		return 0, fmt.Errorf("pagetable: Remap of unmapped %s", v)
	}
	if lvl == Level2M && p.Base2M() != p {
		return 0, fmt.Errorf("pagetable: Remap 2M to unaligned %s", p)
	}
	old := e.Frame
	e.Frame = p
	e.Flags &^= Accessed | Dirty
	return old, nil
}

// Unmap removes the leaf mapping v at whichever grain it exists. Returns the
// removed entry and its level.
func (t *Table) Unmap(v addr.Virt) (Entry, Level, error) {
	// Walk down remembering the path so empty nodes can be pruned.
	var path [4]pruneStep
	n := t.root
	for l := 4; l >= 1; l-- {
		i := addr.Index(v, l)
		path[4-l] = pruneStep{n, i}
		if l == 2 && n.entries[i].Flags.Has(Present|Huge) {
			e := n.entries[i]
			n.entries[i] = Entry{}
			n.liveLeaves--
			t.count2M--
			t.prune(path[:4-l+1])
			return e, Level2M, nil
		}
		if l == 1 {
			if !n.entries[i].Flags.Has(Present) {
				return Entry{}, 0, fmt.Errorf("pagetable: Unmap of unmapped %s", v)
			}
			e := n.entries[i]
			n.entries[i] = Entry{}
			n.liveLeaves--
			t.count4K--
			t.prune(path[:])
			return e, Level4K, nil
		}
		if n.children[i] == nil {
			return Entry{}, 0, fmt.Errorf("pagetable: Unmap of unmapped %s", v)
		}
		n = n.children[i]
	}
	return Entry{}, 0, fmt.Errorf("pagetable: Unmap of unmapped %s", v)
}

type pruneStep = struct {
	n *node
	i int
}

func (t *Table) prune(path []pruneStep) {
	// Remove empty nodes bottom-up (never the root).
	for k := len(path) - 1; k >= 1; k-- {
		child := path[k].n
		if child.liveLeaves == 0 && child.liveChildren == 0 {
			parent := path[k-1]
			parent.n.children[parent.i] = nil
			parent.n.liveChildren--
		} else {
			break
		}
	}
}

// Split breaks the 2MB leaf mapping v into 512 4KB leaves over the same
// physical frame (THP split). The children inherit the parent's flags minus
// Huge, plus SplitSampled; Accessed and Dirty are cleared on the children so
// post-split scans observe fresh access information.
func (t *Table) Split(v addr.Virt) error {
	hv := v.Base2M()
	pd := t.descend(hv, 2, false)
	if pd == nil {
		return fmt.Errorf("pagetable: Split of unmapped %s", hv)
	}
	i := addr.Index(hv, 2)
	e := pd.entries[i]
	if !e.Flags.Has(Present | Huge) {
		return fmt.Errorf("pagetable: Split of non-huge mapping at %s", hv)
	}
	childFlags := (e.Flags &^ (Huge | Accessed | Dirty)) | SplitSampled
	pt := &node{}
	for j := 0; j < addr.PagesPerHuge; j++ {
		pt.entries[j] = Entry{
			Frame: e.Frame + addr.Phys(uint64(j)*addr.PageSize4K),
			Flags: childFlags,
		}
	}
	pt.liveLeaves = addr.PagesPerHuge
	pd.entries[i] = Entry{}
	pd.liveLeaves--
	pd.children[i] = pt
	pd.liveChildren++
	t.count2M--
	t.count4K += addr.PagesPerHuge
	return nil
}

// Collapse merges 512 4KB leaves back into one 2MB leaf (THP collapse). All
// 512 children must be present and physically contiguous within one aligned
// 2MB frame. The merged entry's Accessed/Dirty are the OR of the children's;
// Poisoned children block collapse (unpoison first).
func (t *Table) Collapse(v addr.Virt) error {
	hv := v.Base2M()
	pd := t.descend(hv, 2, false)
	if pd == nil {
		return fmt.Errorf("pagetable: Collapse of unmapped %s", hv)
	}
	i := addr.Index(hv, 2)
	pt := pd.children[i]
	if pt == nil {
		return fmt.Errorf("pagetable: Collapse of %s: no 4KB mappings", hv)
	}
	base := pt.entries[0].Frame
	if base.Base2M() != base {
		return fmt.Errorf("pagetable: Collapse of %s: frame %s not 2MB-aligned", hv, base)
	}
	var merged Flags
	for j := 0; j < addr.PagesPerHuge; j++ {
		e := pt.entries[j]
		if !e.Flags.Has(Present) {
			return fmt.Errorf("pagetable: Collapse of %s: child %d absent", hv, j)
		}
		if e.Flags.Has(Poisoned) {
			return fmt.Errorf("pagetable: Collapse of %s: child %d poisoned", hv, j)
		}
		if e.Frame != base+addr.Phys(uint64(j)*addr.PageSize4K) {
			return fmt.Errorf("pagetable: Collapse of %s: child %d not contiguous", hv, j)
		}
		merged |= e.Flags & (Accessed | Dirty)
	}
	parentFlags := (pt.entries[0].Flags &^ SplitSampled) | Huge | merged
	pd.children[i] = nil
	pd.liveChildren--
	pd.entries[i] = Entry{Frame: base, Flags: parentFlags}
	pd.liveLeaves++
	t.count2M++
	t.count4K -= addr.PagesPerHuge
	return nil
}

// IsSplit reports whether the 2MB region containing v is currently mapped by
// 4KB leaves created from a split huge page.
func (t *Table) IsSplit(v addr.Virt) bool {
	e, _, ok := t.Lookup(v)
	return ok && e.Flags.Has(SplitSampled)
}

// LeafVisitor receives each present leaf entry during a Scan. base is the
// leaf's virtual base address. Mutations through the pointer are visible to
// subsequent walks (this is how scanners clear Accessed bits).
type LeafVisitor func(base addr.Virt, e *Entry, lvl Level)

// Scan visits every present leaf in the table in address order.
func (t *Table) Scan(fn LeafVisitor) {
	t.scanNode(t.root, 4, 0, fn)
}

func (t *Table) scanNode(n *node, level int, prefix uint64, fn LeafVisitor) {
	for i := 0; i < 512; i++ {
		va := prefix | uint64(i)<<uint(addr.PageShift4K+9*(level-1))
		if level == 2 && n.entries[i].Flags.Has(Present|Huge) {
			fn(addr.Virt(va), &n.entries[i], Level2M)
			continue
		}
		if level == 1 {
			if n.entries[i].Flags.Has(Present) {
				fn(addr.Virt(va), &n.entries[i], Level4K)
			}
			continue
		}
		if n.children[i] != nil {
			t.scanNode(n.children[i], level-1, va, fn)
		}
	}
}

// ScanRange visits present leaves whose base addresses fall in r.
func (t *Table) ScanRange(r addr.Range, fn LeafVisitor) {
	t.Scan(func(base addr.Virt, e *Entry, lvl Level) {
		if r.Contains(base) {
			fn(base, e, lvl)
		}
	})
}
