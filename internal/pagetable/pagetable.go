// Package pagetable implements an x86-64-style 4-level radix page table for
// the simulated MMU: PML4 → PDPT → PD → PT, with 2MB huge-page leaves at the
// PD level and 4KB leaves at the PT level.
//
// Entries carry the architectural flag bits Thermostat's mechanisms consume:
// Accessed and Dirty (set by simulated hardware walks), and a Poisoned bit
// standing in for PTE reserved bit 51, which BadgerTrap-style fault
// interception uses to trap TLB misses to sampled pages.
//
// The table supports transparent-huge-page style split (one 2MB leaf into
// 512 4KB leaves over the same physical frame) and collapse (the inverse),
// which is how Thermostat samples constituent 4KB pages of a huge page.
package pagetable

import (
	"fmt"
	"sort"

	"thermostat/internal/addr"
)

// Flags is the PTE flag word.
type Flags uint16

// Architectural and software PTE flags.
const (
	// Present marks a valid translation.
	Present Flags = 1 << iota
	// Writable permits stores.
	Writable
	// Accessed is set by every hardware walk that uses the entry.
	Accessed
	// Dirty is set by every hardware walk for a store.
	Dirty
	// Huge marks a PD-level 2MB leaf (the PS bit).
	Huge
	// Poisoned models a set reserved bit (bit 51): a hardware walk that
	// reaches a poisoned entry raises a protection fault, which
	// BadgerTrap intercepts to count accesses.
	Poisoned
	// SplitSampled is a software bit marking 4KB leaves that were created
	// by splitting a huge page for sampling (so the engine can tell them
	// apart from native 4KB mappings when reporting footprints).
	SplitSampled
)

// Has reports whether all bits in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// Entry is one page-table entry.
type Entry struct {
	Frame addr.Phys
	Flags Flags
}

// Level identifies where a translation terminated.
type Level int

// Leaf levels.
const (
	// Level4K is a PT-level 4KB leaf.
	Level4K Level = 1
	// Level2M is a PD-level 2MB huge leaf.
	Level2M Level = 2
)

// node is one 512-entry radix table.
type node struct {
	entries  [512]Entry
	children [512]*node
	// liveLeaves counts present leaf entries in this node (PT and PD-huge),
	// so unmap can prune empty nodes.
	liveLeaves int
	// liveChildren counts non-nil children.
	liveChildren int
}

// leafRef locates one present leaf entry: the node holding it, the slot
// within that node, and the leaf's virtual base. Entry pointers derived from
// a leafRef stay valid for the leaf's lifetime because nodes are never
// reallocated, only unlinked.
type leafRef struct {
	base addr.Virt
	n    *node
	slot int32
	lvl  Level
}

// Table is a 4-level page table.
//
// Alongside the radix tree it maintains leaves, an ordered flat index of all
// present leaf entries sorted by virtual base address. The index is updated
// incrementally by every structural mutation (Map4K, Map2M, Unmap, Split,
// Collapse) and lets Scan/ScanRange run as linear sweeps instead of radix
// descents. Invariant: leaves holds exactly one entry per present leaf, in
// strictly increasing base order — the same order a depth-first radix walk
// produces (scanRadix is kept as the reference walk and the fuzz oracle).
type Table struct {
	root    *node
	count4K int
	count2M int
	leaves  []leafRef
	// nodes counts allocated radix nodes (root included) for StateBytes.
	nodes int
	// Hybrid sparse mode (spans.go): spansOn arms it, spans is the ordered
	// region-summary list, spanPages counts the 2MB pages those spans hold.
	spansOn   bool
	spans     []span
	spanPages int
}

// New returns an empty table.
func New() *Table { return &Table{root: &node{}, nodes: 1} }

// leafPos returns the index of the first flat-index entry with base >= b.
func (t *Table) leafPos(b addr.Virt) int {
	return sort.Search(len(t.leaves), func(i int) bool { return t.leaves[i].base >= b })
}

// spliceLeaves replaces t.leaves[pos:pos+del] with ins.
func (t *Table) spliceLeaves(pos, del int, ins []leafRef) {
	old := t.leaves
	nl := len(old) - del + len(ins)
	if nl > cap(old) {
		grown := make([]leafRef, nl, nl+nl/2+8)
		copy(grown, old[:pos])
		copy(grown[pos:], ins)
		copy(grown[pos+len(ins):], old[pos+del:])
		t.leaves = grown
		return
	}
	t.leaves = old[:nl]
	copy(t.leaves[pos+len(ins):], old[pos+del:])
	copy(t.leaves[pos:], ins)
	// Zero any abandoned tail so pruned nodes can be collected.
	for k := nl; k < len(old); k++ {
		old[k] = leafRef{}
	}
}

// insertLeaf adds one leaf to the flat index. Mappings are installed by a
// bump-pointer allocator in practice, so appending at the end is the common
// case; anything else falls back to a binary search and splice.
func (t *Table) insertLeaf(r leafRef) {
	if n := len(t.leaves); n == 0 || t.leaves[n-1].base < r.base {
		t.leaves = append(t.leaves, r)
		return
	}
	t.spliceLeaves(t.leafPos(r.base), 0, []leafRef{r})
}

// removeLeaf drops the leaf with the given base from the flat index.
func (t *Table) removeLeaf(b addr.Virt) {
	pos := t.leafPos(b)
	if pos < len(t.leaves) && t.leaves[pos].base == b {
		t.spliceLeaves(pos, 1, nil)
	}
}

// Count4K returns the number of present 4KB leaf entries.
func (t *Table) Count4K() int { return t.count4K }

// Count2M returns the number of present 2MB leaf entries, span-held pages
// included.
func (t *Table) Count2M() int { return t.count2M + t.spanPages }

// MappedBytes returns the total bytes mapped.
func (t *Table) MappedBytes() uint64 {
	return uint64(t.count4K)*addr.PageSize4K + uint64(t.count2M+t.spanPages)*addr.PageSize2M
}

// descend returns the node at the given level for v, allocating intermediate
// nodes when create is set. Level 4 is the root; descend(v, 1, true) returns
// the PT node whose entries map 4KB pages.
func (t *Table) descend(v addr.Virt, level int, create bool) *node {
	n := t.root
	for l := 4; l > level; l-- {
		i := addr.Index(v, l)
		// A huge leaf blocks descent below level 2.
		if l == 2 && n.entries[i].Flags.Has(Present|Huge) {
			return nil
		}
		child := n.children[i]
		if child == nil {
			if !create {
				return nil
			}
			child = &node{}
			n.children[i] = child
			n.liveChildren++
			t.nodes++
		}
		n = child
	}
	return n
}

// Map4K installs a 4KB translation v -> p. Fails if v is already mapped at
// either grain.
func (t *Table) Map4K(v addr.Virt, p addr.Phys, flags Flags) error {
	if e, _, ok := t.Lookup(v); ok {
		return fmt.Errorf("pagetable: %s already mapped to %s", v, e.Frame)
	}
	pt := t.descend(v, 1, true)
	if pt == nil {
		return fmt.Errorf("pagetable: %s covered by a huge mapping", v)
	}
	i := addr.Index(v, 1)
	pt.entries[i] = Entry{Frame: p.Base4K(), Flags: flags | Present}
	pt.liveLeaves++
	t.count4K++
	t.insertLeaf(leafRef{base: v.Base4K(), n: pt, slot: int32(i), lvl: Level4K})
	return nil
}

// Map2M installs a 2MB translation v -> p at the PD level. v and p must be
// 2MB-aligned. Fails if any 4KB page in the range is already mapped.
func (t *Table) Map2M(v addr.Virt, p addr.Phys, flags Flags) error {
	if v.Base2M() != v {
		return fmt.Errorf("pagetable: Map2M of unaligned virtual %s", v)
	}
	if p.Base2M() != p {
		return fmt.Errorf("pagetable: Map2M of unaligned physical %s", p)
	}
	if len(t.spans) != 0 && t.spanIdx(v) >= 0 {
		return fmt.Errorf("pagetable: %s already span-mapped", v)
	}
	pd := t.descend(v, 2, true)
	if pd == nil {
		return fmt.Errorf("pagetable: %s covered by a huge mapping", v)
	}
	i := addr.Index(v, 2)
	if pd.entries[i].Flags.Has(Present) {
		return fmt.Errorf("pagetable: %s already huge-mapped", v)
	}
	if pd.children[i] != nil {
		return fmt.Errorf("pagetable: %s overlaps existing 4KB mappings", v)
	}
	pd.entries[i] = Entry{Frame: p, Flags: flags | Present | Huge}
	pd.liveLeaves++
	t.count2M++
	t.insertLeaf(leafRef{base: v, n: pd, slot: int32(i), lvl: Level2M})
	return nil
}

// Lookup finds the translation for v without side effects (no Accessed
// update, no poison fault). ok is false if v is unmapped. In sparse mode a
// radix miss falls back to the span list.
func (t *Table) Lookup(v addr.Virt) (Entry, Level, bool) {
	if e, lvl, ok := t.lookupRadix(v); ok {
		return e, lvl, true
	}
	if len(t.spans) != 0 {
		return t.lookupSpan(v)
	}
	return Entry{}, 0, false
}

func (t *Table) lookupRadix(v addr.Virt) (Entry, Level, bool) {
	n := t.root
	for l := 4; l >= 1; l-- {
		i := addr.Index(v, l)
		if l == 2 {
			e := n.entries[i]
			if e.Flags.Has(Present | Huge) {
				return e, Level2M, true
			}
		}
		if l == 1 {
			e := n.entries[i]
			if e.Flags.Has(Present) {
				return e, Level4K, true
			}
			return Entry{}, 0, false
		}
		if n.children[i] == nil {
			return Entry{}, 0, false
		}
		n = n.children[i]
	}
	return Entry{}, 0, false
}

// Translate resolves v to a physical address using Lookup (no side effects).
func (t *Table) Translate(v addr.Virt) (addr.Phys, bool) {
	e, lvl, ok := t.Lookup(v)
	if !ok {
		return 0, false
	}
	if lvl == Level2M {
		return e.Frame + addr.Phys(v.Offset2M()), true
	}
	return e.Frame + addr.Phys(v.Offset4K()), true
}

// WalkResult describes a simulated hardware page walk.
type WalkResult struct {
	// Entry is the leaf translation found (zero if !Found).
	Entry Entry
	// Level is the leaf level (Level4K or Level2M).
	Level Level
	// Found is false for an unmapped address (page fault).
	Found bool
	// Poisoned is true when the leaf had the Poisoned bit set: the walk
	// raises a protection fault instead of installing a translation.
	Poisoned bool
	// Depth is the number of page-table levels the walker touched (each
	// costs one memory access in the native walk-cost model).
	Depth int
}

// Walk performs a hardware page walk for v: finds the leaf, sets Accessed
// (and Dirty for writes) unless the entry is poisoned, and reports the walk
// depth. A poisoned leaf reports Poisoned=true and leaves flags untouched —
// the MMU raises the fault before retiring the access. In sparse mode a
// radix miss falls back to the span list: a span hit walks at the same depth
// as a dense 2MB leaf and sets Accessed/Dirty on the span aggregate.
func (t *Table) Walk(v addr.Virt, write bool) WalkResult {
	r := t.walkRadix(v, write)
	if !r.Found && len(t.spans) != 0 {
		if sr, ok := t.walkSpan(v, write); ok {
			return sr
		}
	}
	return r
}

func (t *Table) walkRadix(v addr.Virt, write bool) WalkResult {
	n := t.root
	depth := 0
	for l := 4; l >= 1; l-- {
		i := addr.Index(v, l)
		depth++
		if l == 2 && n.entries[i].Flags.Has(Present|Huge) {
			return t.finishWalk(&n.entries[i], Level2M, depth, write)
		}
		if l == 1 {
			if !n.entries[i].Flags.Has(Present) {
				return WalkResult{Depth: depth}
			}
			return t.finishWalk(&n.entries[i], Level4K, depth, write)
		}
		if n.children[i] == nil {
			return WalkResult{Depth: depth}
		}
		n = n.children[i]
	}
	return WalkResult{Depth: depth}
}

func (t *Table) finishWalk(e *Entry, lvl Level, depth int, write bool) WalkResult {
	if e.Flags.Has(Poisoned) {
		return WalkResult{Entry: *e, Level: lvl, Found: true, Poisoned: true, Depth: depth}
	}
	e.Flags |= Accessed
	if write {
		e.Flags |= Dirty
	}
	return WalkResult{Entry: *e, Level: lvl, Found: true, Depth: depth}
}

// entryRef returns a pointer to the leaf entry mapping v, or nil. In sparse
// mode a span-mapped page is carved into a radix leaf first: every
// flag-mutating or migrating caller (SetFlags, ClearFlags, Remap, EntryRef —
// hence poisoning) is a page-grain touch that re-splits its region.
func (t *Table) entryRef(v addr.Virt) (*Entry, Level) {
	e, lvl := t.entryRefRadix(v)
	if e == nil && len(t.spans) != 0 && t.carve(v) {
		return t.entryRefRadix(v)
	}
	return e, lvl
}

func (t *Table) entryRefRadix(v addr.Virt) (*Entry, Level) {
	n := t.root
	for l := 4; l >= 1; l-- {
		i := addr.Index(v, l)
		if l == 2 && n.entries[i].Flags.Has(Present|Huge) {
			return &n.entries[i], Level2M
		}
		if l == 1 {
			if n.entries[i].Flags.Has(Present) {
				return &n.entries[i], Level4K
			}
			return nil, 0
		}
		if n.children[i] == nil {
			return nil, 0
		}
		n = n.children[i]
	}
	return nil, 0
}

// SetFlags ORs mask into the leaf entry mapping v. Returns false if unmapped.
func (t *Table) SetFlags(v addr.Virt, mask Flags) bool {
	e, _ := t.entryRef(v)
	if e == nil {
		return false
	}
	e.Flags |= mask
	return true
}

// ClearFlags removes mask from the leaf entry mapping v. Returns the prior
// flags and whether v was mapped.
func (t *Table) ClearFlags(v addr.Virt, mask Flags) (Flags, bool) {
	e, _ := t.entryRef(v)
	if e == nil {
		return 0, false
	}
	prior := e.Flags
	e.Flags &^= mask
	return prior, true
}

// Remap changes the physical frame of the leaf mapping v (page migration).
// The grain of the existing mapping is preserved; flags other than Accessed
// and Dirty are kept, and Accessed/Dirty are cleared (fresh page, as after a
// migration the kernel re-establishes the mapping). Returns the old frame.
func (t *Table) Remap(v addr.Virt, p addr.Phys) (addr.Phys, error) {
	e, lvl := t.entryRef(v)
	if e == nil {
		return 0, fmt.Errorf("pagetable: Remap of unmapped %s", v)
	}
	if lvl == Level2M && p.Base2M() != p {
		return 0, fmt.Errorf("pagetable: Remap 2M to unaligned %s", p)
	}
	old := e.Frame
	e.Frame = p
	e.Flags &^= Accessed | Dirty
	return old, nil
}

// Unmap removes the leaf mapping v at whichever grain it exists. Returns the
// removed entry and its level. A span-mapped page is carved first (page-grain
// unmap; UnmapSpan is the bulk path).
func (t *Table) Unmap(v addr.Virt) (Entry, Level, error) {
	if len(t.spans) != 0 {
		t.carve(v)
	}
	// Walk down remembering the path so empty nodes can be pruned.
	var path [4]pruneStep
	n := t.root
	for l := 4; l >= 1; l-- {
		i := addr.Index(v, l)
		path[4-l] = pruneStep{n, i}
		if l == 2 && n.entries[i].Flags.Has(Present|Huge) {
			e := n.entries[i]
			n.entries[i] = Entry{}
			n.liveLeaves--
			t.count2M--
			t.removeLeaf(v.Base2M())
			t.prune(path[:4-l+1])
			return e, Level2M, nil
		}
		if l == 1 {
			if !n.entries[i].Flags.Has(Present) {
				return Entry{}, 0, fmt.Errorf("pagetable: Unmap of unmapped %s", v)
			}
			e := n.entries[i]
			n.entries[i] = Entry{}
			n.liveLeaves--
			t.count4K--
			t.removeLeaf(v.Base4K())
			t.prune(path[:])
			return e, Level4K, nil
		}
		if n.children[i] == nil {
			return Entry{}, 0, fmt.Errorf("pagetable: Unmap of unmapped %s", v)
		}
		n = n.children[i]
	}
	return Entry{}, 0, fmt.Errorf("pagetable: Unmap of unmapped %s", v)
}

type pruneStep = struct {
	n *node
	i int
}

func (t *Table) prune(path []pruneStep) {
	// Remove empty nodes bottom-up (never the root).
	for k := len(path) - 1; k >= 1; k-- {
		child := path[k].n
		if child.liveLeaves == 0 && child.liveChildren == 0 {
			parent := path[k-1]
			parent.n.children[parent.i] = nil
			parent.n.liveChildren--
			t.nodes--
		} else {
			break
		}
	}
}

// Split breaks the 2MB leaf mapping v into 512 4KB leaves over the same
// physical frame (THP split). The children inherit the parent's flags minus
// Huge, plus SplitSampled; Accessed and Dirty are cleared on the children so
// post-split scans observe fresh access information.
func (t *Table) Split(v addr.Virt) error {
	hv := v.Base2M()
	if len(t.spans) != 0 {
		t.carve(hv)
	}
	pd := t.descend(hv, 2, false)
	if pd == nil {
		return fmt.Errorf("pagetable: Split of unmapped %s", hv)
	}
	i := addr.Index(hv, 2)
	e := pd.entries[i]
	if !e.Flags.Has(Present | Huge) {
		return fmt.Errorf("pagetable: Split of non-huge mapping at %s", hv)
	}
	childFlags := (e.Flags &^ (Huge | Accessed | Dirty)) | SplitSampled
	pt := &node{}
	for j := 0; j < addr.PagesPerHuge; j++ {
		pt.entries[j] = Entry{
			Frame: e.Frame + addr.Phys(uint64(j)*addr.PageSize4K),
			Flags: childFlags,
		}
	}
	pt.liveLeaves = addr.PagesPerHuge
	pd.entries[i] = Entry{}
	pd.liveLeaves--
	pd.children[i] = pt
	pd.liveChildren++
	t.nodes++
	t.count2M--
	t.count4K += addr.PagesPerHuge
	// Flat index: the huge leaf's slot becomes 512 contiguous child refs.
	children := make([]leafRef, addr.PagesPerHuge)
	for j := range children {
		children[j] = leafRef{
			base: hv + addr.Virt(uint64(j)*addr.PageSize4K),
			n:    pt,
			slot: int32(j),
			lvl:  Level4K,
		}
	}
	t.spliceLeaves(t.leafPos(hv), 1, children)
	return nil
}

// Collapse merges 512 4KB leaves back into one 2MB leaf (THP collapse). All
// 512 children must be present and physically contiguous within one aligned
// 2MB frame. The merged entry's Accessed/Dirty are the OR of the children's;
// Poisoned children block collapse (unpoison first).
func (t *Table) Collapse(v addr.Virt) error {
	hv := v.Base2M()
	pd := t.descend(hv, 2, false)
	if pd == nil {
		return fmt.Errorf("pagetable: Collapse of unmapped %s", hv)
	}
	i := addr.Index(hv, 2)
	pt := pd.children[i]
	if pt == nil {
		return fmt.Errorf("pagetable: Collapse of %s: no 4KB mappings", hv)
	}
	base := pt.entries[0].Frame
	if base.Base2M() != base {
		return fmt.Errorf("pagetable: Collapse of %s: frame %s not 2MB-aligned", hv, base)
	}
	var merged Flags
	for j := 0; j < addr.PagesPerHuge; j++ {
		e := pt.entries[j]
		if !e.Flags.Has(Present) {
			return fmt.Errorf("pagetable: Collapse of %s: child %d absent", hv, j)
		}
		if e.Flags.Has(Poisoned) {
			return fmt.Errorf("pagetable: Collapse of %s: child %d poisoned", hv, j)
		}
		if e.Frame != base+addr.Phys(uint64(j)*addr.PageSize4K) {
			return fmt.Errorf("pagetable: Collapse of %s: child %d not contiguous", hv, j)
		}
		merged |= e.Flags & (Accessed | Dirty)
	}
	parentFlags := (pt.entries[0].Flags &^ SplitSampled) | Huge | merged
	pd.children[i] = nil
	pd.liveChildren--
	t.nodes--
	pd.entries[i] = Entry{Frame: base, Flags: parentFlags}
	pd.liveLeaves++
	t.count2M++
	t.count4K -= addr.PagesPerHuge
	// Flat index: 512 contiguous child refs collapse back to one huge ref.
	t.spliceLeaves(t.leafPos(hv), addr.PagesPerHuge,
		[]leafRef{{base: hv, n: pd, slot: int32(i), lvl: Level2M}})
	return nil
}

// IsSplit reports whether the 2MB region containing v is currently mapped by
// 4KB leaves created from a split huge page.
func (t *Table) IsSplit(v addr.Virt) bool {
	e, _, ok := t.Lookup(v)
	return ok && e.Flags.Has(SplitSampled)
}

// LeafVisitor receives each present leaf entry during a Scan. base is the
// leaf's virtual base address. Mutations through the pointer are visible to
// subsequent walks (this is how scanners clear Accessed bits).
type LeafVisitor func(base addr.Virt, e *Entry, lvl Level)

// Scan visits every present leaf in the table in address order. It sweeps
// the flat leaf index linearly; the visitor must not structurally mutate the
// table (Map/Unmap/Split/Collapse) mid-scan — collect first, mutate after,
// as with the radix walk this replaces.
func (t *Table) Scan(fn LeafVisitor) {
	ls := t.leaves
	for i := range ls {
		fn(ls[i].base, &ls[i].n.entries[ls[i].slot], ls[i].lvl)
	}
}

// scanRadix is the original depth-first radix walk. It is retained as the
// reference visit order the flat index must reproduce (see FuzzLeafIndex)
// and as the radix side of BenchmarkPTScan.
func (t *Table) scanRadix(fn LeafVisitor) {
	t.scanNode(t.root, 4, 0, fn)
}

func (t *Table) scanNode(n *node, level int, prefix uint64, fn LeafVisitor) {
	for i := 0; i < 512; i++ {
		va := prefix | uint64(i)<<uint(addr.PageShift4K+9*(level-1))
		if level == 2 && n.entries[i].Flags.Has(Present|Huge) {
			fn(addr.Virt(va), &n.entries[i], Level2M)
			continue
		}
		if level == 1 {
			if n.entries[i].Flags.Has(Present) {
				fn(addr.Virt(va), &n.entries[i], Level4K)
			}
			continue
		}
		if n.children[i] != nil {
			t.scanNode(n.children[i], level-1, va, fn)
		}
	}
}

// ScanRange visits present leaves whose base addresses fall in r: a binary
// search to the first leaf at or above r.Start, then a linear sweep to r.End.
func (t *Table) ScanRange(r addr.Range, fn LeafVisitor) {
	ls := t.leaves
	for i := t.leafPos(r.Start); i < len(ls) && ls[i].base < r.End; i++ {
		fn(ls[i].base, &ls[i].n.entries[ls[i].slot], ls[i].lvl)
	}
}

// ScanClear visits every present leaf in address order, clearing mask from
// its flags, and reports the leaf's prior flags to fn. Entries without any
// mask bit set are not written, so a scan over mostly-idle leaves stays
// read-mostly. fn may be nil to clear without observing.
func (t *Table) ScanClear(mask Flags, fn func(base addr.Virt, prior Flags, lvl Level)) {
	ls := t.leaves
	for i := range ls {
		e := &ls[i].n.entries[ls[i].slot]
		prior := e.Flags
		if prior&mask != 0 {
			e.Flags = prior &^ mask
		}
		if fn != nil {
			fn(ls[i].base, prior, ls[i].lvl)
		}
	}
}

// ClearFlagsRange clears mask from every present leaf whose base falls in r
// and returns the number of pages visited. It is the batched form of
// per-page ClearFlags for the engine's restore pass: one index splice-free
// sweep instead of one radix descent per page. Spans overlapping r have the
// mask cleared from their whole aggregate (conservative: region-grain flags
// cannot be cleared for part of a region) and contribute their overlapping
// page count to the return value.
func (t *Table) ClearFlagsRange(r addr.Range, mask Flags) int {
	ls := t.leaves
	visited := 0
	for i := t.leafPos(r.Start); i < len(ls) && ls[i].base < r.End; i++ {
		e := &ls[i].n.entries[ls[i].slot]
		if e.Flags&mask != 0 {
			e.Flags &^= mask
		}
		visited++
	}
	if len(t.spans) != 0 {
		sp := t.spans
		j := sort.Search(len(sp), func(k int) bool { return sp[k].end() > r.Start })
		for ; j < len(sp) && sp[j].vbase < r.End; j++ {
			s := &sp[j]
			if s.flags&mask != 0 {
				s.flags &^= mask
			}
			lo, hi := s.vbase, s.end()
			if lo < r.Start {
				lo = r.Start
			}
			if hi > r.End {
				hi = r.End
			}
			visited += int(uint64(hi-lo) >> addr.PageShift2M)
		}
	}
	return visited
}

// EntryRef returns a pointer to the leaf entry mapping v, its level, and
// whether v is mapped. The pointer stays valid until the leaf is unmapped,
// split, or collapsed; mutations through it are visible to later walks. It
// exists so fault handlers can read and update several flag bits with one
// descent instead of separate Lookup/SetFlags/ClearFlags calls.
func (t *Table) EntryRef(v addr.Virt) (*Entry, Level, bool) {
	e, lvl := t.entryRef(v)
	if e == nil {
		return nil, 0, false
	}
	return e, lvl, true
}
