// Package workload models the paper's six cloud applications (§4.3,
// Table 2) as synthetic access-stream generators over the simulated address
// space. Each application is a set of memory segments — heap structures,
// page-cache file mappings, logs — with a traffic share and an
// intra-segment access distribution that reproduces the published hot/cold
// structure: Zipfian key popularity for the NoSQL stores, the 0.01%→90%
// hotspot for Redis plus its background sweep, the cold LINEITEM table for
// TPC-C, growing Memtables for Cassandra, and iterative scans for the
// in-memory analytics job.
package workload

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/rng"
)

// Picker selects the next accessed address within a segment's regions.
// Pickers may keep state (e.g. sweep position); each segment owns one
// instance.
type Picker interface {
	// Pick returns an address within one of the regions. The regions
	// slice is never empty.
	Pick(r *rng.PCG, regions []addr.Range) addr.Virt
}

// totalPages4K sums the 4KB page count across regions.
func totalPages4K(regions []addr.Range) uint64 {
	var n uint64
	for _, reg := range regions {
		n += reg.Pages4K()
	}
	return n
}

// pageAt returns the base address of the idx-th 4KB page across regions.
func pageAt(regions []addr.Range, idx uint64) addr.Virt {
	for _, reg := range regions {
		n := reg.Pages4K()
		if idx < n {
			return reg.Start.Base4K() + addr.Virt(idx*addr.PageSize4K)
		}
		idx -= n
	}
	panic("workload: page index out of range")
}

// Uniform picks uniformly over the segment's bytes (at 4KB-page grain with
// a random in-page offset).
type Uniform struct{}

// Pick implements Picker.
func (Uniform) Pick(r *rng.PCG, regions []addr.Range) addr.Virt {
	n := totalPages4K(regions)
	return pageAt(regions, r.Uint64n(n)) + addr.Virt(r.Uint64n(addr.PageSize4K))
}

// Zipf picks 4KB pages with scrambled-Zipfian popularity — the YCSB-style
// key skew with hot keys hashed across the space.
type Zipf struct {
	// Theta is the skew (default rng.YCSBTheta).
	Theta float64

	z *rng.ScrambledZipfian
}

// Pick implements Picker.
func (p *Zipf) Pick(r *rng.PCG, regions []addr.Range) addr.Virt {
	n := totalPages4K(regions)
	if p.z == nil || p.z.N() != n {
		theta := p.Theta
		if theta == 0 {
			theta = rng.YCSBTheta
		}
		p.z = rng.NewScrambledZipfian(rng.NewStream(n, 0x5eed), n, theta)
	}
	return pageAt(regions, p.z.Next()) + addr.Virt(r.Uint64n(addr.PageSize4K))
}

// Hotspot picks pages so that HotOpFrac of accesses go to the HotSetFrac
// hottest fraction of pages (the paper's Redis load: 0.01% of keys take 90%
// of traffic).
type Hotspot struct {
	HotSetFrac float64
	HotOpFrac  float64

	h *rng.Hotspot
}

// Pick implements Picker.
func (p *Hotspot) Pick(r *rng.PCG, regions []addr.Range) addr.Virt {
	n := totalPages4K(regions)
	if p.h == nil || p.h.N() != n {
		p.h = rng.NewHotspot(rng.NewStream(n, 0x407), n, p.HotSetFrac, p.HotOpFrac)
	}
	return pageAt(regions, p.h.Next()) + addr.Virt(r.Uint64n(addr.PageSize4K))
}

// Sweep cycles sequentially through the segment's pages, dwelling on each
// 4KB page for Dwell accesses before advancing — the background
// scan/expiry/compaction traffic that periodically revisits the entire
// footprint. Dwell preserves the real system's sweep period under footprint
// scaling (see DESIGN.md).
type Sweep struct {
	// Dwell is the number of accesses spent on each page (minimum 1).
	Dwell int

	pos   uint64
	count int
}

// Pick implements Picker.
func (p *Sweep) Pick(r *rng.PCG, regions []addr.Range) addr.Virt {
	n := totalPages4K(regions)
	dwell := p.Dwell
	if dwell < 1 {
		dwell = 1
	}
	if p.pos >= n {
		p.pos = 0
	}
	v := pageAt(regions, p.pos) + addr.Virt(r.Uint64n(addr.PageSize4K))
	p.count++
	if p.count >= dwell {
		p.count = 0
		p.pos++
		if p.pos >= n {
			p.pos = 0
		}
	}
	return v
}

// StridedScan iterates the segment's pages with a fixed page stride,
// wrapping around — the access shape of columnar/matrix scans (Spark's
// collaborative filtering iterates features across rating rows). Unlike
// Sweep it touches a different page on every access, so its traffic is
// visible to TLB-miss-based rate estimation at full fidelity.
type StridedScan struct {
	// Stride is the page step per access (coprime with the page count
	// works best; adjusted internally if it divides the page count).
	Stride uint64

	pos uint64
}

// Pick implements Picker.
func (p *StridedScan) Pick(r *rng.PCG, regions []addr.Range) addr.Virt {
	n := totalPages4K(regions)
	stride := p.Stride
	if stride == 0 {
		stride = 97
	}
	for n%stride == 0 && stride > 1 {
		stride--
	}
	p.pos = (p.pos + stride) % n
	return pageAt(regions, p.pos) + addr.Virt(r.Uint64n(addr.PageSize4K))
}

// Append writes sequentially like a log: it dwells on the last region's
// pages in order and wraps, modeling a circular log buffer.
type Append struct {
	// Dwell is the number of accesses per page before advancing.
	Dwell int

	sweep Sweep
}

// Pick implements Picker.
func (p *Append) Pick(r *rng.PCG, regions []addr.Range) addr.Virt {
	p.sweep.Dwell = p.Dwell
	// Appending only touches the most recent region.
	return p.sweep.Pick(r, regions[len(regions)-1:])
}

// HotspotSweep is the Redis traffic model: HotOpFrac of accesses hit a
// small hot key set (the paper's 0.01% of keys carrying 90% of traffic)
// whose pages are hash-scattered across the keyspace — as hot keys are in a
// real hash table — while the remainder sweeps cyclically through the whole
// footprint, modeling Redis's active-expiry and rehash passes. The scatter
// is what caps the movable fraction near 10%: most 2MB pages contain at
// least one hot key, and only the hot-key-free minority is safe to demote.
// The sweep is what defeats idle-bit placement: every page is eventually
// revisited at full speed.
type HotspotSweep struct {
	HotSetFrac float64
	HotOpFrac  float64
	// Dwell is the sweep's per-page access count (set to the footprint
	// scale divisor to preserve the real sweep period).
	Dwell int
	// RotatePeriodNs, when positive, re-scatters the hot key set every
	// period (simulated time): keys age out of popularity and fresh keys
	// become hot. This is what makes "idle for 10s" a dangerous placement
	// signal — a page with no hot keys today may hold tomorrow's.
	RotatePeriodNs int64

	salt       uint64
	nextRotate int64
	sweep      Sweep
}

// TickPicker implements pickerTicker: advances hot-set rotation.
func (p *HotspotSweep) TickPicker(nowNs int64) {
	if p.RotatePeriodNs <= 0 {
		return
	}
	if p.nextRotate == 0 {
		p.nextRotate = nowNs + p.RotatePeriodNs
		return
	}
	for nowNs >= p.nextRotate {
		p.salt = rng.Hash64(p.salt + 1)
		p.nextRotate += p.RotatePeriodNs
	}
}

// Pick implements Picker.
func (p *HotspotSweep) Pick(r *rng.PCG, regions []addr.Range) addr.Virt {
	n := totalPages4K(regions)
	if r.Float64() < p.HotOpFrac {
		hot := uint64(float64(n) * p.HotSetFrac)
		if hot == 0 {
			hot = 1
		}
		// Hash-scatter the hot set across the keyspace; the salt changes
		// on rotation, moving popularity to a fresh key set.
		page := rng.Hash64(r.Uint64n(hot)+0x9e3779b9+p.salt) % n
		return pageAt(regions, page) + addr.Virt(r.Uint64n(addr.PageSize4K))
	}
	p.sweep.Dwell = p.Dwell
	return p.sweep.Pick(r, regions)
}

// HotPages returns the distinct hot 4KB page indices the picker currently
// draws from, given the region page count (ground truth for tests and
// analyses; reflects the current rotation salt).
func (p *HotspotSweep) HotPages(n uint64) map[uint64]bool {
	hot := uint64(float64(n) * p.HotSetFrac)
	if hot == 0 {
		hot = 1
	}
	out := make(map[uint64]bool, hot)
	for i := uint64(0); i < hot; i++ {
		out[rng.Hash64(i+0x9e3779b9+p.salt)%n] = true
	}
	return out
}

// validatePicker panics early on nonsense configurations.
func validatePicker(p Picker, segName string) {
	switch v := p.(type) {
	case *Hotspot:
		if v.HotSetFrac <= 0 || v.HotSetFrac > 1 || v.HotOpFrac < 0 || v.HotOpFrac > 1 {
			panic(fmt.Sprintf("workload: segment %q hotspot fractions invalid", segName))
		}
	case nil:
		panic(fmt.Sprintf("workload: segment %q has no picker", segName))
	}
}
