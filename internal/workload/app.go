package workload

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
)

// SegmentSpec declares one memory segment of an application.
type SegmentSpec struct {
	// Name labels the segment (for reports).
	Name string
	// Bytes is the unscaled segment size; the app divides by its scale.
	Bytes uint64
	// Weight is the segment's relative share of the access stream
	// (weights need not sum to 1).
	Weight float64
	// Picker is the intra-segment address distribution.
	Picker Picker
	// WriteFrac is the fraction of accesses that are stores.
	WriteFrac float64
	// FileMapped marks page-cache segments (Table 2's file-mapped
	// column). With hugetmpfs these are still huge-page backed.
	FileMapped bool
}

// GrowthSpec makes an app's footprint grow at runtime (Cassandra Memtable
// fill, Spark shuffle spill). Every PeriodNs a chunk of ChunkBytes (scaled)
// is allocated; the previous growth chunk is retired into the cold target
// segment, modeling a Memtable flush whose SSTable is rarely re-read.
type GrowthSpec struct {
	// PeriodNs is the wall time between growth events.
	PeriodNs int64
	// ChunkBytes is the unscaled chunk size.
	ChunkBytes uint64
	// MaxChunks bounds total growth.
	MaxChunks int
	// ActiveSegment is the segment receiving the fresh chunk (its region
	// list is swapped to the new chunk).
	ActiveSegment string
	// RetireSegment accumulates retired chunks.
	RetireSegment string
}

// RotateSpec swaps two segments' traffic weights every period — a
// working-set change (hot data going cold and vice versa) that exercises
// the §3.5 corrector.
type RotateSpec struct {
	// PeriodNs is the time between swaps.
	PeriodNs int64
	// SegmentA and SegmentB are the names of the segments whose weights
	// exchange.
	SegmentA, SegmentB string
}

// Spec declares a full application model.
type Spec struct {
	// Name is the application name as the paper reports it.
	Name string
	// ComputeNs is the per-op computation between accesses; with the
	// machine's thread count this sets the baseline access rate.
	ComputeNs int64
	// Segments composes the footprint. Segment sizes sum to the paper's
	// Table 2 footprint (RSS + file-mapped).
	Segments []SegmentSpec
	// Growth optionally grows the footprint at runtime.
	Growth *GrowthSpec
	// Rotate optionally swaps two segments' traffic periodically.
	Rotate *RotateSpec
}

// Validate rejects inconsistent specs.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec without name")
	}
	if s.ComputeNs < 0 {
		return fmt.Errorf("workload: %s has negative compute", s.Name)
	}
	if len(s.Segments) == 0 {
		return fmt.Errorf("workload: %s has no segments", s.Name)
	}
	totalWeight := 0.0
	for _, seg := range s.Segments {
		if seg.Bytes == 0 {
			return fmt.Errorf("workload: %s segment %q empty", s.Name, seg.Name)
		}
		if seg.Weight < 0 {
			return fmt.Errorf("workload: %s segment %q negative weight", s.Name, seg.Name)
		}
		if seg.WriteFrac < 0 || seg.WriteFrac > 1 {
			return fmt.Errorf("workload: %s segment %q write fraction", s.Name, seg.Name)
		}
		totalWeight += seg.Weight
	}
	if totalWeight <= 0 {
		return fmt.Errorf("workload: %s has no traffic", s.Name)
	}
	if g := s.Growth; g != nil {
		if g.PeriodNs <= 0 || g.ChunkBytes == 0 || g.MaxChunks <= 0 {
			return fmt.Errorf("workload: %s growth spec invalid", s.Name)
		}
		if findSegment(s.Segments, g.ActiveSegment) < 0 {
			return fmt.Errorf("workload: %s growth active segment %q unknown", s.Name, g.ActiveSegment)
		}
		if findSegment(s.Segments, g.RetireSegment) < 0 {
			return fmt.Errorf("workload: %s growth retire segment %q unknown", s.Name, g.RetireSegment)
		}
	}
	if r := s.Rotate; r != nil {
		if r.PeriodNs <= 0 {
			return fmt.Errorf("workload: %s rotate period invalid", s.Name)
		}
		if findSegment(s.Segments, r.SegmentA) < 0 || findSegment(s.Segments, r.SegmentB) < 0 {
			return fmt.Errorf("workload: %s rotate segments unknown", s.Name)
		}
	}
	return nil
}

func findSegment(segs []SegmentSpec, name string) int {
	for i, s := range segs {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// segment is a segment's runtime state.
type segment struct {
	spec    SegmentSpec
	regions []addr.Range
}

// App is a runnable instance of a Spec. It implements sim.App.
type App struct {
	spec  Spec
	scale uint64
	r     *rng.PCG

	segs []*segment
	cum  []float64 // cumulative weights for traffic selection

	machine   *sim.Machine
	fourK     bool
	growthN   int
	nextGrow  int64
	growSize  uint64
	activeIdx int
	retireIdx int

	nextRotate int64
	rotations  int
}

// NewApp instantiates spec with footprints divided by scale (>= 1) and
// deterministic randomness from seed.
func NewApp(spec Spec, scale uint64, seed uint64) (*App, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if scale == 0 {
		scale = 1
	}
	// Each app owns fresh picker state: two apps built from one spec (e.g.
	// a baseline and a policy run) must not share sweep positions or
	// rotation salts.
	spec = spec.ClonePickers()
	for _, seg := range spec.Segments {
		validatePicker(seg.Picker, seg.Name)
	}
	a := &App{spec: spec, scale: scale, r: rng.New(seed)}
	return a, nil
}

// Name implements sim.App.
func (a *App) Name() string { return a.spec.Name }

// ComputeNs implements sim.App.
func (a *App) ComputeNs() int64 { return a.spec.ComputeNs }

// Scale returns the footprint divisor.
func (a *App) Scale() uint64 { return a.scale }

// DisableHugePages switches allocation to 4KB mappings (the THP-off
// configuration Table 1 compares against). Must be called before Init.
func (a *App) DisableHugePages() {
	if a.machine != nil {
		panic("workload: DisableHugePages after Init")
	}
	a.fourK = true
}

// scaled rounds bytes/scale up to a whole huge page.
func (a *App) scaled(bytes uint64) uint64 {
	s := bytes / a.scale
	if s < addr.PageSize2M {
		return addr.PageSize2M
	}
	return (s + addr.PageSize2M - 1) / addr.PageSize2M * addr.PageSize2M
}

// Init implements sim.App: allocate every segment (huge-backed — the
// evaluation runs with THP on and hugetmpfs for file pages).
func (a *App) Init(m *sim.Machine) error {
	if a.machine != nil {
		return fmt.Errorf("workload: %s initialized twice", a.spec.Name)
	}
	a.machine = m
	a.segs = nil
	a.cum = nil
	total := 0.0
	for _, spec := range a.spec.Segments {
		reg, err := m.AllocRegion(a.scaled(spec.Bytes), !a.fourK)
		if err != nil {
			return fmt.Errorf("workload: %s segment %q: %w", a.spec.Name, spec.Name, err)
		}
		a.segs = append(a.segs, &segment{spec: spec, regions: []addr.Range{reg}})
		total += spec.Weight
		a.cum = append(a.cum, total)
	}
	if g := a.spec.Growth; g != nil {
		a.growSize = a.scaled(g.ChunkBytes)
		a.nextGrow = m.Clock() + g.PeriodNs
		a.activeIdx = findSegment(a.spec.Segments, g.ActiveSegment)
		a.retireIdx = findSegment(a.spec.Segments, g.RetireSegment)
	}
	if r := a.spec.Rotate; r != nil {
		a.nextRotate = m.Clock() + r.PeriodNs
	}
	return nil
}

// Next implements sim.App.
func (a *App) Next() (addr.Virt, bool) {
	x := a.r.Float64() * a.cum[len(a.cum)-1]
	idx := 0
	for idx < len(a.cum)-1 && x >= a.cum[idx] {
		idx++
	}
	seg := a.segs[idx]
	v := seg.spec.Picker.Pick(a.r, seg.regions)
	return v, a.r.Bool(seg.spec.WriteFrac)
}

// NextBatch implements sim.BatchApp: it generates len(reqs) accesses with
// the identical RNG call sequence Next uses (segment draw, picker, write
// draw per op), so batched and per-op runs consume the same random stream.
func (a *App) NextBatch(reqs []sim.Req) int {
	r := a.r
	cum := a.cum
	total := cum[len(cum)-1]
	for i := range reqs {
		x := r.Float64() * total
		idx := 0
		for idx < len(cum)-1 && x >= cum[idx] {
			idx++
		}
		seg := a.segs[idx]
		v := seg.spec.Picker.Pick(r, seg.regions)
		reqs[i] = sim.Req{V: v, Write: r.Bool(seg.spec.WriteFrac)}
	}
	return len(reqs)
}

// pickerTicker is implemented by pickers with time-driven behaviour
// (hot-set rotation).
type pickerTicker interface {
	TickPicker(nowNs int64)
}

// Tick implements sim.App: runs growth, rotation, and picker time events.
func (a *App) Tick(m *sim.Machine, now int64) error {
	for _, seg := range a.segs {
		if pt, ok := seg.spec.Picker.(pickerTicker); ok {
			pt.TickPicker(now)
		}
	}
	if r := a.spec.Rotate; r != nil {
		for now >= a.nextRotate {
			ia := findSegment(a.spec.Segments, r.SegmentA)
			ib := findSegment(a.spec.Segments, r.SegmentB)
			a.segs[ia].spec.Weight, a.segs[ib].spec.Weight =
				a.segs[ib].spec.Weight, a.segs[ia].spec.Weight
			a.rebuildWeights()
			a.rotations++
			a.nextRotate += r.PeriodNs
		}
	}
	g := a.spec.Growth
	if g == nil || a.growthN >= g.MaxChunks {
		return nil
	}
	for now >= a.nextGrow && a.growthN < g.MaxChunks {
		chunk, err := m.AllocRegion(a.growSize, !a.fourK)
		if err != nil {
			// Out of memory: stop growing (a real system would flush
			// to disk); not an error for the workload.
			a.growthN = g.MaxChunks
			return nil
		}
		active := a.segs[a.activeIdx]
		retire := a.segs[a.retireIdx]
		// Retire the active segment's current regions, switch writes to
		// the fresh chunk.
		retire.regions = append(retire.regions, active.regions...)
		active.regions = []addr.Range{chunk}
		a.growthN++
		a.nextGrow += g.PeriodNs
	}
	return nil
}

// rebuildWeights recomputes the cumulative traffic weights after a change.
func (a *App) rebuildWeights() {
	total := 0.0
	for i, seg := range a.segs {
		total += seg.spec.Weight
		a.cum[i] = total
	}
}

// Rotations reports how many weight swaps have occurred.
func (a *App) Rotations() int { return a.rotations }

// FootprintBytes reports the current mapped footprint split into anonymous
// (RSS) and file-mapped bytes — Table 2's columns.
func (a *App) FootprintBytes() (rss, file uint64) {
	for _, seg := range a.segs {
		var n uint64
		for _, reg := range seg.regions {
			n += reg.Size()
		}
		if seg.spec.FileMapped {
			file += n
		} else {
			rss += n
		}
	}
	return rss, file
}

// Regions returns every region the app currently has mapped, across all
// segments — the app's cgroup scope for a per-tenant engine.
func (a *App) Regions() []addr.Range {
	var out []addr.Range
	for _, seg := range a.segs {
		out = append(out, seg.regions...)
	}
	return out
}

// SegmentRegions exposes a segment's current regions by name (for tests and
// ground-truth analysis).
func (a *App) SegmentRegions(name string) []addr.Range {
	for _, seg := range a.segs {
		if seg.spec.Name == name {
			return append([]addr.Range(nil), seg.regions...)
		}
	}
	return nil
}

// ClonePickers returns a copy of the spec whose segments carry fresh copies
// of every stateful picker, so transforms and runs cannot leak state between
// spec uses (e.g. a baseline run and a policy run built from the same spec
// value).
func (s Spec) ClonePickers() Spec {
	segs := make([]SegmentSpec, len(s.Segments))
	copy(segs, s.Segments)
	for i := range segs {
		switch p := segs[i].Picker.(type) {
		case *Zipf:
			cp := *p
			cp.z = nil
			segs[i].Picker = &cp
		case *Hotspot:
			cp := *p
			cp.h = nil
			segs[i].Picker = &cp
		case *Sweep:
			cp := *p
			segs[i].Picker = &cp
		case *StridedScan:
			cp := *p
			segs[i].Picker = &cp
		case *Append:
			cp := *p
			segs[i].Picker = &cp
		case *HotspotSweep:
			cp := *p
			segs[i].Picker = &cp
		}
	}
	s.Segments = segs
	return s
}

// WithDwell rescales the dwell of every sweep-style picker for a footprint
// divisor d: a sweep's revisit period is pages·dwell/rate, so multiplying
// dwell by d/DefaultScale preserves the real system's revisit period under
// scaling (see DESIGN.md). Specs express dwell at DefaultScale. The
// receiver's pickers are cloned, never mutated. Returns the transformed
// copy.
func (s Spec) WithDwell(d int) Spec {
	if d < 1 {
		d = 1
	}
	s = s.ClonePickers()
	rescale := func(dwell int) int {
		if dwell < 1 {
			dwell = 1
		}
		out := dwell * d / DefaultScale
		if out < 1 {
			out = 1
		}
		return out
	}
	for _, seg := range s.Segments {
		switch p := seg.Picker.(type) {
		case *Sweep:
			p.Dwell = rescale(p.Dwell)
		case *HotspotSweep:
			p.Dwell = rescale(p.Dwell)
		case *Append:
			p.Dwell = rescale(p.Dwell)
		}
	}
	return s
}

// WithFootprint rescales every segment (and growth chunk) so the spec's
// total unscaled footprint becomes target bytes, preserving each segment's
// relative share. Sizes round up to whole huge pages and never drop below
// one, so a small target skews slightly large rather than producing empty
// segments (Validate would reject those). target == 0 returns the spec
// unchanged — the "no override" CLI default. The receiver's pickers are
// cloned, never mutated. Returns the transformed copy.
func (s Spec) WithFootprint(target uint64) Spec {
	if target == 0 {
		return s
	}
	s = s.ClonePickers()
	var total uint64
	for _, seg := range s.Segments {
		total += seg.Bytes
	}
	if total == 0 {
		return s
	}
	rescale := func(b uint64) uint64 {
		nb := uint64(float64(b) * (float64(target) / float64(total)))
		nb = (nb + addr.PageSize2M - 1) / addr.PageSize2M * addr.PageSize2M
		if nb < addr.PageSize2M {
			nb = addr.PageSize2M
		}
		return nb
	}
	for i := range s.Segments {
		s.Segments[i].Bytes = rescale(s.Segments[i].Bytes)
	}
	if s.Growth != nil {
		g := *s.Growth
		g.ChunkBytes = rescale(g.ChunkBytes)
		s.Growth = &g
	}
	return s
}

// WithTimeDilation multiplies picker rotation periods by f, matching the
// harness's rate dilation: hot-set drift keeps the same ratio to the
// workload's access rates (and to idle windows, which also dilate by f).
// The receiver's pickers are cloned, never mutated. Returns the transformed
// copy.
func (s Spec) WithTimeDilation(f int64) Spec {
	if f <= 1 {
		return s
	}
	s = s.ClonePickers()
	for _, seg := range s.Segments {
		if p, ok := seg.Picker.(*HotspotSweep); ok && p.RotatePeriodNs > 0 {
			p.RotatePeriodNs *= f
		}
	}
	return s
}
