package workload

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
)

const testScale = 256 // tiny footprints for unit tests

func newMachine(t *testing.T) *sim.Machine {
	t.Helper()
	m, err := sim.New(sim.DefaultConfig(512<<20, 512<<20))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAllSpecsValidate(t *testing.T) {
	specs := append(All(), Aerospike(WriteHeavy), Cassandra(ReadHeavy))
	if len(All()) != 6 {
		t.Fatalf("All returned %d specs, want 6", len(All()))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestSpecValidationRejects(t *testing.T) {
	good := Redis()
	cases := map[string]func(*Spec){
		"no name":         func(s *Spec) { s.Name = "" },
		"no segments":     func(s *Spec) { s.Segments = nil },
		"zero bytes":      func(s *Spec) { s.Segments[0].Bytes = 0 },
		"negative weight": func(s *Spec) { s.Segments[0].Weight = -1 },
		"bad write frac":  func(s *Spec) { s.Segments[0].WriteFrac = 2 },
		"no traffic": func(s *Spec) {
			for i := range s.Segments {
				s.Segments[i].Weight = 0
			}
		},
	}
	for name, mutate := range cases {
		s := good
		s.Segments = append([]SegmentSpec(nil), good.Segments...)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Growth validation.
	c := Cassandra(WriteHeavy)
	c.Growth.ActiveSegment = "nope"
	if err := c.Validate(); err == nil {
		t.Error("unknown growth segment accepted")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{
		"aerospike", "cassandra", "in-memory-analytics",
		"mysql-tpcc", "redis", "web-search",
		"aerospike-write-heavy", "cassandra-read-heavy",
	} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("memcached"); ok {
		t.Error("unknown name resolved")
	}
}

func TestMixWriteFrac(t *testing.T) {
	if ReadHeavy.writeFrac() != 0.05 || WriteHeavy.writeFrac() != 0.95 {
		t.Fatal("mix write fractions wrong")
	}
}

func TestTable2Footprints(t *testing.T) {
	// The models must reproduce Table 2's RSS and file-mapped columns
	// (within huge-page rounding at the chosen scale).
	want := map[string]struct{ rss, file float64 }{ // GB
		"aerospike":           {12.3, 0.005},
		"cassandra":           {8, 4},
		"mysql-tpcc":          {6, 3.5},
		"redis":               {17.2, 0.001},
		"in-memory-analytics": {6.2, 0.001},
		"web-search":          {2.28, 0.086},
	}
	for _, spec := range All() {
		var rss, file uint64
		for _, seg := range spec.Segments {
			if seg.FileMapped {
				file += seg.Bytes
			} else {
				rss += seg.Bytes
			}
		}
		w := want[spec.Name]
		gotRSS := float64(rss) / (1 << 30)
		gotFile := float64(file) / (1 << 30)
		if gotRSS < w.rss*0.9 || gotRSS > w.rss*1.1 {
			t.Errorf("%s RSS = %.2fGB, want ~%.2fGB", spec.Name, gotRSS, w.rss)
		}
		if w.file >= 0.5 && (gotFile < w.file*0.9 || gotFile > w.file*1.1) {
			t.Errorf("%s file = %.2fGB, want ~%.2fGB", spec.Name, gotFile, w.file)
		}
	}
}

func TestAppInitAndAccessInBounds(t *testing.T) {
	for _, spec := range All() {
		m := newMachine(t)
		app, err := NewApp(spec, testScale, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := app.Init(m); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		for i := 0; i < 5000; i++ {
			v, _ := app.Next()
			if _, err := m.Access(v, false); err != nil {
				t.Fatalf("%s access %d: %v", spec.Name, i, err)
			}
		}
	}
}

func TestAppDoubleInitFails(t *testing.T) {
	m := newMachine(t)
	app, err := NewApp(Redis(), testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Init(m); err != nil {
		t.Fatal(err)
	}
	if err := app.Init(m); err == nil {
		t.Fatal("double init accepted")
	}
}

func TestSegmentTrafficShares(t *testing.T) {
	// Drawn traffic must match segment weights.
	m := newMachine(t)
	app, err := NewApp(MySQLTPCC(), testScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Init(m); err != nil {
		t.Fatal(err)
	}
	lineitem := app.SegmentRegions("lineitem")[0]
	hot := app.SegmentRegions("hot-tables")[0]
	var nLine, nHot, total int
	for i := 0; i < 200000; i++ {
		v, _ := app.Next()
		if lineitem.Contains(v) {
			nLine++
		}
		if hot.Contains(v) {
			nHot++
		}
		total++
	}
	fLine := float64(nLine) / float64(total)
	fHot := float64(nHot) / float64(total)
	if fLine > 0.01 {
		t.Errorf("lineitem traffic share = %v, want ~0.002", fLine)
	}
	if fHot < 0.33 || fHot > 0.47 {
		t.Errorf("hot-tables traffic share = %v, want ~0.40", fHot)
	}
}

func TestGrowthRetiresChunks(t *testing.T) {
	m := newMachine(t)
	app, err := NewApp(Cassandra(WriteHeavy), testScale, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Init(m); err != nil {
		t.Fatal(err)
	}
	rss0, file0 := app.FootprintBytes()
	// Drive growth ticks past several periods.
	g := app.spec.Growth
	for i := int64(1); i <= int64(g.MaxChunks)+2; i++ {
		if err := app.Tick(m, i*g.PeriodNs); err != nil {
			t.Fatal(err)
		}
	}
	rss1, file1 := app.FootprintBytes()
	if rss1 <= rss0 {
		t.Fatalf("RSS did not grow: %d -> %d", rss0, rss1)
	}
	if file1 != file0 {
		t.Fatal("file-mapped bytes changed during growth")
	}
	wantChunks := g.MaxChunks
	if got := len(app.SegmentRegions("flushed")); got != 1+wantChunks {
		t.Fatalf("flushed regions = %d, want %d", got, 1+wantChunks)
	}
	if got := len(app.SegmentRegions("memtable")); got != 1 {
		t.Fatalf("memtable regions = %d, want 1", got)
	}
	// Growth is capped.
	if err := app.Tick(m, 100*g.PeriodNs); err != nil {
		t.Fatal(err)
	}
	rss2, _ := app.FootprintBytes()
	if rss2 != rss1 {
		t.Fatal("growth exceeded MaxChunks")
	}
}

func TestRedisHotspotSweepShape(t *testing.T) {
	// 90% of traffic must land on the hot set; the rest must cover the
	// keyspace cyclically.
	m := newMachine(t)
	app, err := NewApp(Redis(), testScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Init(m); err != nil {
		t.Fatal(err)
	}
	keyspace := app.SegmentRegions("keyspace")[0]
	picker := Redis().Segments[0].Picker.(*HotspotSweep)
	hotSet := picker.HotPages(keyspace.Pages4K())
	hot := 0
	touched2M := map[uint64]bool{}
	const iters = 400000
	for i := 0; i < iters; i++ {
		v, _ := app.Next()
		if !keyspace.Contains(v) {
			continue
		}
		pageIdx := uint64(v-keyspace.Start) / addr.PageSize4K
		if hotSet[pageIdx] {
			hot++
		} else {
			touched2M[uint64(v.PageNum2M())] = true
		}
	}
	frac := float64(hot) / iters
	if frac < 0.85 || frac > 0.96 {
		t.Errorf("hot traffic share = %v, want ~0.90", frac)
	}
	// The sweep advances through distinct 2MB pages at the dwell-scaled
	// pace: ~10% of 400K picks / dwell 96 ≈ 400 4KB pages.
	if len(touched2M) < 1 {
		t.Errorf("sweep touched only %d huge pages", len(touched2M))
	}
}

func TestSweepCyclesThroughAllPages(t *testing.T) {
	s := &Sweep{Dwell: 2}
	regions := []addr.Range{addr.NewRange(0, 4*addr.PageSize4K)}
	r := rng.New(1)
	seen := map[uint64]int{}
	for i := 0; i < 16; i++ { // two full cycles at dwell 2
		v := s.Pick(r, regions)
		seen[v.PageNum4K()]++
	}
	if len(seen) != 4 {
		t.Fatalf("sweep covered %d pages, want 4", len(seen))
	}
	for p, n := range seen {
		if n != 4 {
			t.Fatalf("page %d picked %d times, want 4", p, n)
		}
	}
}

func TestAppendPicksOnlyLastRegion(t *testing.T) {
	a := &Append{Dwell: 1}
	regions := []addr.Range{
		addr.NewRange(0, 4*addr.PageSize4K),
		addr.NewRange(addr.Virt2M(5), 2*addr.PageSize4K),
	}
	r := rng.New(2)
	for i := 0; i < 20; i++ {
		v := a.Pick(r, regions)
		if !regions[1].Contains(v) {
			t.Fatalf("append picked outside last region: %s", v)
		}
	}
}

func TestZipfPickerSkewed(t *testing.T) {
	z := &Zipf{}
	regions := []addr.Range{addr.NewRange(0, 1024*addr.PageSize4K)}
	r := rng.New(3)
	counts := map[uint64]int{}
	const iters = 100000
	for i := 0; i < iters; i++ {
		counts[z.Pick(r, regions).PageNum4K()]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	// Zipfian: the hottest page is far above the uniform expectation.
	if max < 5*iters/1024 {
		t.Fatalf("hottest page got %d draws, want skew", max)
	}
}

func TestFootprintBytesSplit(t *testing.T) {
	m := newMachine(t)
	app, err := NewApp(Cassandra(WriteHeavy), testScale, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Init(m); err != nil {
		t.Fatal(err)
	}
	rss, file := app.FootprintBytes()
	if rss == 0 || file == 0 {
		t.Fatalf("rss=%d file=%d", rss, file)
	}
	// File segments: sstable-recent + sstable-cold = 4GB/scale, rounded up
	// per segment.
	if file < 4*gib/testScale {
		t.Fatalf("file = %d too small", file)
	}
}

func TestRotationSwapsWeights(t *testing.T) {
	spec := Spec{
		Name:      "rot",
		ComputeNs: 100,
		Segments: []SegmentSpec{
			{Name: "a", Bytes: 4 << 20, Weight: 0.99, Picker: Uniform{}},
			{Name: "b", Bytes: 4 << 20, Weight: 0.01, Picker: Uniform{}},
		},
		Rotate: &RotateSpec{PeriodNs: 1e9, SegmentA: "a", SegmentB: "b"},
	}
	m := newMachine(t)
	app, err := NewApp(spec, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Init(m); err != nil {
		t.Fatal(err)
	}
	share := func() float64 {
		a := app.SegmentRegions("a")[0]
		n := 0
		for i := 0; i < 20000; i++ {
			if v, _ := app.Next(); a.Contains(v) {
				n++
			}
		}
		return float64(n) / 20000
	}
	before := share()
	if before < 0.9 {
		t.Fatalf("pre-rotation share = %v", before)
	}
	if err := app.Tick(m, 1e9); err != nil {
		t.Fatal(err)
	}
	if app.Rotations() != 1 {
		t.Fatalf("rotations = %d", app.Rotations())
	}
	after := share()
	if after > 0.1 {
		t.Fatalf("post-rotation share = %v", after)
	}
	// Rotating twice restores the original weights.
	if err := app.Tick(m, 2e9); err != nil {
		t.Fatal(err)
	}
	if s := share(); s < 0.9 {
		t.Fatalf("double-rotation share = %v", s)
	}
}

func TestRotateValidation(t *testing.T) {
	spec := Redis()
	spec.Rotate = &RotateSpec{PeriodNs: 0, SegmentA: "keyspace", SegmentB: "keyspace"}
	if err := spec.Validate(); err == nil {
		t.Fatal("zero rotate period accepted")
	}
	spec.Rotate = &RotateSpec{PeriodNs: 1e9, SegmentA: "nope", SegmentB: "keyspace"}
	if err := spec.Validate(); err == nil {
		t.Fatal("unknown rotate segment accepted")
	}
}

func TestStridedScanCoversAllPagesEvenly(t *testing.T) {
	s := &StridedScan{Stride: 3}
	regions := []addr.Range{addr.NewRange(0, 10*addr.PageSize4K)}
	r := rng.New(4)
	seen := map[uint64]int{}
	for i := 0; i < 30; i++ { // three full passes at stride 3 over 10 pages
		seen[s.Pick(r, regions).PageNum4K()]++
	}
	if len(seen) != 10 {
		t.Fatalf("strided scan covered %d pages, want 10", len(seen))
	}
	for p, n := range seen {
		if n != 3 {
			t.Fatalf("page %d touched %d times, want 3", p, n)
		}
	}
}

func TestStridedScanAdjustsDegenerateStride(t *testing.T) {
	// Stride dividing the page count would orbit a subset; the picker
	// must adjust.
	s := &StridedScan{Stride: 4}
	regions := []addr.Range{addr.NewRange(0, 8*addr.PageSize4K)}
	r := rng.New(5)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[s.Pick(r, regions).PageNum4K()] = true
	}
	if len(seen) != 8 {
		t.Fatalf("degenerate stride covered %d pages, want 8", len(seen))
	}
}

func TestHotspotSweepRotation(t *testing.T) {
	p := &HotspotSweep{HotSetFrac: 0.01, HotOpFrac: 1, RotatePeriodNs: 1e9}
	before := p.HotPages(10000)
	// First tick arms the schedule; the second crosses it.
	p.TickPicker(0)
	p.TickPicker(5e8)
	same := p.HotPages(10000)
	if len(same) != len(before) {
		t.Fatal("hot set size changed without rotation")
	}
	for k := range before {
		if !same[k] {
			t.Fatal("hot set drifted before the rotation period")
		}
	}
	p.TickPicker(2e9)
	after := p.HotPages(10000)
	moved := 0
	for k := range before {
		if !after[k] {
			moved++
		}
	}
	if moved < len(before)/2 {
		t.Fatalf("only %d/%d hot pages moved after rotation", moved, len(before))
	}
	// Draws follow the rotated set.
	r := rng.New(3)
	regions := []addr.Range{addr.NewRange(0, 10000*addr.PageSize4K)}
	for i := 0; i < 1000; i++ {
		v := p.Pick(r, regions)
		if !after[v.PageNum4K()] {
			t.Fatalf("pick %d outside rotated hot set", i)
		}
	}
}

func TestHotspotSweepNoRotationByDefault(t *testing.T) {
	p := &HotspotSweep{HotSetFrac: 0.01, HotOpFrac: 1}
	before := p.HotPages(1000)
	p.TickPicker(0)
	p.TickPicker(1e18)
	after := p.HotPages(1000)
	for k := range before {
		if !after[k] {
			t.Fatal("hot set moved without a rotation period")
		}
	}
}

func TestWithDwellRescalesProportionally(t *testing.T) {
	spec := Redis() // keyspace dwell = 6*DefaultScale
	spec = spec.WithDwell(64)
	p := spec.Segments[0].Picker.(*HotspotSweep)
	if p.Dwell != 6*64 {
		t.Fatalf("dwell = %d, want %d", p.Dwell, 6*64)
	}
	// Degenerate divisor clamps to >= 1.
	spec2 := MySQLTPCC().WithDwell(0)
	if sw, ok := spec2.Segments[0].Picker.(*Sweep); ok && sw.Dwell < 1 {
		t.Fatalf("dwell = %d", sw.Dwell)
	}
}

func TestWithTimeDilation(t *testing.T) {
	spec := Redis()
	spec = spec.WithTimeDilation(4)
	p := spec.Segments[0].Picker.(*HotspotSweep)
	if p.RotatePeriodNs != 480e9 {
		t.Fatalf("rotate period = %d", p.RotatePeriodNs)
	}
	// f <= 1 is a no-op.
	spec2 := Redis().WithTimeDilation(1)
	if spec2.Segments[0].Picker.(*HotspotSweep).RotatePeriodNs != 120e9 {
		t.Fatal("dilation 1 changed the period")
	}
}

func TestAppRegions(t *testing.T) {
	m := newMachine(t)
	app, err := NewApp(WebSearch(), testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if app.Regions() != nil {
		t.Fatal("regions before init")
	}
	if err := app.Init(m); err != nil {
		t.Fatal(err)
	}
	regions := app.Regions()
	if len(regions) != len(WebSearch().Segments) {
		t.Fatalf("regions = %d", len(regions))
	}
	var total uint64
	for _, r := range regions {
		total += r.Size()
	}
	rss, file := app.FootprintBytes()
	if total != rss+file {
		t.Fatalf("regions total %d != footprint %d", total, rss+file)
	}
}

func TestWithFootprint(t *testing.T) {
	spec := ScaleSynthetic()
	var orig uint64
	for _, seg := range spec.Segments {
		orig += seg.Bytes
	}
	target := uint64(16) << 30
	scaled := spec.WithFootprint(target)
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for i, seg := range scaled.Segments {
		if seg.Bytes%addr.PageSize2M != 0 {
			t.Fatalf("segment %q not huge-page aligned: %d", seg.Name, seg.Bytes)
		}
		if seg.Bytes < addr.PageSize2M {
			t.Fatalf("segment %q below one huge page", seg.Name)
		}
		// Shares are preserved within rounding: each segment lands within
		// one huge page of its proportional size.
		want := uint64(float64(spec.Segments[i].Bytes) * float64(target) / float64(orig))
		if diff := int64(seg.Bytes) - int64(want); diff < 0 || diff > int64(addr.PageSize2M) {
			t.Fatalf("segment %q = %d, want ~%d", seg.Name, seg.Bytes, want)
		}
		total += seg.Bytes
	}
	// Total within one huge page per segment of the target.
	slack := uint64(len(scaled.Segments)) * addr.PageSize2M
	if total < target || total > target+slack {
		t.Fatalf("total = %d, want within [%d, %d]", total, target, target+slack)
	}
	// The receiver is untouched.
	if spec.Segments[0].Bytes != ScaleSynthetic().Segments[0].Bytes {
		t.Fatal("WithFootprint mutated the receiver")
	}
	// target 0 is a no-op.
	same := spec.WithFootprint(0)
	if same.Segments[0].Bytes != spec.Segments[0].Bytes {
		t.Fatal("WithFootprint(0) changed sizes")
	}
}

func TestWithFootprintGrowth(t *testing.T) {
	spec := Cassandra(WriteHeavy)
	scaled := spec.WithFootprint(32 << 30)
	if scaled.Growth == nil {
		t.Fatal("growth spec dropped")
	}
	if scaled.Growth.ChunkBytes <= spec.Growth.ChunkBytes {
		t.Fatalf("growth chunk not scaled up: %d <= %d",
			scaled.Growth.ChunkBytes, spec.Growth.ChunkBytes)
	}
	if scaled.Growth == spec.Growth {
		t.Fatal("growth spec aliased, receiver mutated")
	}
	if scaled.Growth.ChunkBytes%addr.PageSize2M != 0 {
		t.Fatalf("growth chunk unaligned: %d", scaled.Growth.ChunkBytes)
	}
}

func TestWithFootprintTiny(t *testing.T) {
	// A target smaller than one huge page per segment clamps every segment
	// to one huge page instead of producing empty segments.
	scaled := ScaleSynthetic().WithFootprint(1 << 20)
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, seg := range scaled.Segments {
		if seg.Bytes != addr.PageSize2M {
			t.Fatalf("segment %q = %d, want one huge page", seg.Name, seg.Bytes)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"4096", 4096},
		{"512k", 512 << 10},
		{"512KB", 512 << 10},
		{"1m", 1 << 20},
		{"16MiB", 16 << 20},
		{"1g", 1 << 30},
		{"64GB", 64 << 30},
		{"1t", 1 << 40},
		{"1TiB", 1 << 40},
		{"1.5g", 3 << 29},
		{" 2G ", 2 << 30},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Fatalf("ParseSize(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "g", "-1g", "0", "1q", "abc"} {
		if _, err := ParseSize(bad); err == nil {
			t.Fatalf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestFormatSize(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{1 << 40, "1T"},
		{64 << 30, "64G"},
		{16 << 20, "16M"},
		{512 << 10, "512K"},
		{3 << 29, "1536M"},
		{3<<29 + 1, "1.5G"},
		{4096, "4K"},
		{123, "123"},
	}
	for _, c := range cases {
		if got := FormatSize(c.in); got != c.want {
			t.Fatalf("FormatSize(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestScaleSynthetic(t *testing.T) {
	spec := ScaleSynthetic()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := ByName("scale-synth"); !ok {
		t.Fatal("scale-synth not registered")
	}
	// Not part of the paper's application set.
	for _, s := range All() {
		if s.Name == spec.Name {
			t.Fatal("scale-synth leaked into All()")
		}
	}
}
