package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSize parses a human-readable byte size: a plain integer is bytes, and
// a K/M/G/T suffix (optionally followed by "b"/"iB", case-insensitive)
// selects the binary multiplier — "512m", "1G", "16GiB", "1t". Sizes feed
// footprint overrides, so zero and negative values are rejected.
func ParseSize(s string) (uint64, error) {
	in := strings.TrimSpace(strings.ToLower(s))
	if in == "" {
		return 0, fmt.Errorf("workload: empty size")
	}
	mult := uint64(1)
	for _, suf := range []struct {
		tail string
		mult uint64
	}{
		{"kib", kib}, {"kb", kib}, {"k", kib},
		{"mib", mib}, {"mb", mib}, {"m", mib},
		{"gib", gib}, {"gb", gib}, {"g", gib},
		{"tib", 1 << 40}, {"tb", 1 << 40}, {"t", 1 << 40},
	} {
		if strings.HasSuffix(in, suf.tail) {
			in = strings.TrimSuffix(in, suf.tail)
			mult = suf.mult
			break
		}
	}
	n, err := strconv.ParseFloat(in, 64)
	if err != nil {
		return 0, fmt.Errorf("workload: size %q: %v", s, err)
	}
	if n <= 0 {
		return 0, fmt.Errorf("workload: size %q must be positive", s)
	}
	return uint64(n * float64(mult)), nil
}

// FormatSize renders bytes with the largest whole binary unit — the inverse
// of ParseSize for round sizes ("1.5G" otherwise).
func FormatSize(b uint64) string {
	switch {
	case b >= 1<<40 && b%(1<<40) == 0:
		return fmt.Sprintf("%dT", b>>40)
	case b >= gib && b%gib == 0:
		return fmt.Sprintf("%dG", b>>30)
	case b >= mib && b%mib == 0:
		return fmt.Sprintf("%dM", b>>20)
	case b >= kib && b%kib == 0:
		return fmt.Sprintf("%dK", b>>10)
	}
	if b >= gib {
		return fmt.Sprintf("%.1fG", float64(b)/float64(gib))
	}
	return fmt.Sprintf("%d", b)
}
