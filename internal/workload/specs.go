package workload

const (
	kib = 1 << 10
	mib = 1 << 20
	gib = 1 << 30
)

// Mix selects the YCSB read/write ratio the paper evaluates for the NoSQL
// stores (§4.3): 95:5 read-heavy or 5:95 write-heavy.
type Mix int

// Traffic mixes.
const (
	// ReadHeavy is the 95:5 read/write load.
	ReadHeavy Mix = iota
	// WriteHeavy is the 5:95 read/write load.
	WriteHeavy
)

func (m Mix) writeFrac() float64 {
	if m == WriteHeavy {
		return 0.95
	}
	return 0.05
}

// String names the mix.
func (m Mix) String() string {
	if m == WriteHeavy {
		return "write-heavy"
	}
	return "read-heavy"
}

// DefaultScale is the footprint divisor the experiments are calibrated at:
// Table 2's gigabyte footprints become tens-to-hundreds of megabytes, with
// the TLB and LLC scaled by the same factor (see harness.ScaledMachine).
const DefaultScale = 16

// Aerospike models the multi-threaded key-value store: a hot primary index,
// a large uniformly-warm data area (Zipfian keys hash-spread over fixed-size
// slabs), a lukewarm band, a mostly-idle slab-allocator reserve, and a tiny
// file mapping. RSS 12.3GB + 5MB file (Table 2); ~15% ends up cold (§5,
// Figure 7).
func Aerospike(mix Mix) Spec {
	wf := mix.writeFrac()
	return Spec{
		Name:      "aerospike",
		ComputeNs: 3000,
		Segments: []SegmentSpec{
			{Name: "index", Bytes: 18 * gib / 10, Weight: 0.30, Picker: &Zipf{}, WriteFrac: wf * 0.5},
			{Name: "data-hot", Bytes: 45 * gib / 10, Weight: 0.573, Picker: Uniform{}, WriteFrac: wf},
			// Lukewarm: per-2MB-page rates sit between the 3% and 10%
			// admission budgets at repro scale, so the movable fraction
			// grows with the slowdown knob (Figure 11).
			{Name: "data-warm", Bytes: 42 * gib / 10, Weight: 0.122, Picker: Uniform{}, WriteFrac: wf},
			{Name: "slab-idle", Bytes: 18 * gib / 10, Weight: 0.004, Picker: &Sweep{Dwell: DefaultScale}},
			{Name: "config-file", Bytes: 5 * mib, Weight: 0.001, Picker: Uniform{}, FileMapped: true},
		},
	}
}

// Cassandra models the wide-column store under its write-dominated load: a
// growing in-memory Memtable that is periodically "flushed" (the chunk
// retires into a rarely-read SSTable-cache segment — the paper observes no
// compaction shrink in its window), Zipfian row reads, and a large
// hugetmpfs page-cache split between recent (hot) and compacted (cold)
// SSTables. RSS 8GB + 4GB file (Table 2); 40-50% cold (Figure 5).
func Cassandra(mix Mix) Spec {
	wf := mix.writeFrac()
	return Spec{
		Name:      "cassandra",
		ComputeNs: 2500,
		Segments: []SegmentSpec{
			{Name: "memtable", Bytes: 5 * gib / 10, Weight: 0.40, Picker: Uniform{}, WriteFrac: wf},
			{Name: "flushed", Bytes: 25 * gib / 10, Weight: 0.01, Picker: &Sweep{Dwell: DefaultScale}},
			{Name: "row-hot", Bytes: 25 * gib / 10, Weight: 0.30, Picker: &Zipf{}, WriteFrac: 0.1},
			{Name: "heap-work", Bytes: 25 * gib / 10, Weight: 0.20, Picker: Uniform{}, WriteFrac: 0.3},
			{Name: "sstable-recent", Bytes: 1 * gib, Weight: 0.088, Picker: &Zipf{}, FileMapped: true},
			{Name: "sstable-cold", Bytes: 3 * gib, Weight: 0.002, Picker: &Sweep{Dwell: DefaultScale}, FileMapped: true},
		},
		Growth: &GrowthSpec{
			PeriodNs:      20e9,
			ChunkBytes:    5 * gib / 10,
			MaxChunks:     6,
			ActiveSegment: "memtable",
			RetireSegment: "flushed",
		},
	}
}

// MySQLTPCC models the OLTP database: the huge, rarely-read LINEITEM table
// dominating the cold footprint, a lukewarm old-orders band, hot tables and
// indexes with Zipfian skew, and a hugetmpfs page cache split between the
// active buffer pool files and archived logs. RSS 6GB + 3.5GB file
// (Table 2); 40-50% cold, saturating near 45% regardless of slowdown
// budget because every remaining page is hot (Figures 6 and 11).
func MySQLTPCC() Spec {
	return Spec{
		Name:      "mysql-tpcc",
		ComputeNs: 2500,
		Segments: []SegmentSpec{
			{Name: "lineitem", Bytes: 38 * gib / 10, Weight: 0.002, Picker: &Sweep{Dwell: DefaultScale}},
			// Lukewarm band: admitted only at 6%+ targets (Figure 11's
			// partial scaling before TPCC saturates).
			{Name: "orders-old", Bytes: 7 * gib / 10, Weight: 0.018, Picker: Uniform{}},
			{Name: "hot-tables", Bytes: 1 * gib, Weight: 0.40, Picker: &Zipf{}, WriteFrac: 0.3},
			{Name: "index", Bytes: 5 * gib / 10, Weight: 0.35, Picker: &Zipf{}, WriteFrac: 0.1},
			{Name: "bufferpool-files", Bytes: 25 * gib / 10, Weight: 0.225, Picker: &Zipf{}, WriteFrac: 0.2, FileMapped: true},
			{Name: "log-archive", Bytes: 1 * gib, Weight: 0.003, Picker: &Sweep{Dwell: DefaultScale}, FileMapped: true},
		},
	}
}

// Redis models the single-threaded key-value store under the paper's
// hotspot load: 0.01% of keys receive 90% of traffic, while active-expiry
// and rehash passes sweep the entire 17.2GB hash table at a low per-page
// rate. The sweep is what defeats idle-bit placement (>10% degradation,
// Figure 1's caption) while Thermostat's rate estimates correctly cap the
// movable fraction near 10% (Figure 8).
func Redis() Spec {
	return Spec{
		Name:      "redis",
		ComputeNs: 1200,
		Segments: []SegmentSpec{
			{
				Name:   "keyspace",
				Bytes:  172 * gib / 10,
				Weight: 0.9995,
				// HotSetFrac 0.4% of 4KB pages hash-scattered leaves
				// ~13% of 2MB pages hot-key-free (1-e^(-0.004*512) per
				// page) — the movable minority behind Figure 8's ~10%.
				// Dwell 6x the scale divisor: the expiry/rehash pass
				// revisits the whole keyspace every ~90s rather than
				// continuously, so hot-key-free pages do idle across a
				// 10s window (Figure 1) even though their average rate
				// caps the movable fraction near 10% (Figure 8).
				// The hot key set re-scatters every ~2 paper-minutes:
				// popularity drifts, so idle-looking pages regain hot
				// keys — the trap naive idle-bit placement falls into.
				Picker: &HotspotSweep{
					HotSetFrac:     0.004,
					HotOpFrac:      0.90,
					Dwell:          6 * DefaultScale,
					RotatePeriodNs: 120e9,
				},
				WriteFrac: 0.1,
			},
			{Name: "config-file", Bytes: 1 * mib, Weight: 0.0005, Picker: Uniform{}, FileMapped: true},
		},
	}
}

// InMemAnalytics models the CloudSuite Spark collaborative-filtering job:
// iterative full scans over the ratings matrix, a hot model/working set,
// and shuffle spill that accumulates over the run and goes cold — so the
// cold fraction grows with time (Figure 9). RSS 6.2GB + 1MB file (Table 2);
// 15-20% cold.
func InMemAnalytics() Spec {
	return Spec{
		Name:      "in-memory-analytics",
		ComputeNs: 2000,
		Segments: []SegmentSpec{
			{Name: "ratings", Bytes: 3 * gib, Weight: 0.45, Picker: &StridedScan{Stride: 97}},
			{Name: "model", Bytes: 17 * gib / 10, Weight: 0.50, Picker: &Zipf{}, WriteFrac: 0.5},
			{Name: "spill", Bytes: 5 * gib / 10, Weight: 0.004, Picker: &Sweep{Dwell: DefaultScale}},
			{Name: "spill-active", Bytes: 1 * gib, Weight: 0.045, Picker: Uniform{}, WriteFrac: 0.8},
			{Name: "jar-file", Bytes: 1 * mib, Weight: 0.0005, Picker: Uniform{}, FileMapped: true},
		},
		Growth: &GrowthSpec{
			PeriodNs:      15e9,
			ChunkBytes:    4 * gib / 10,
			MaxChunks:     3,
			ActiveSegment: "spill-active",
			RetireSegment: "spill",
		},
	}
}

// WebSearch models the Apache Solr node: hot term dictionaries, Zipfian
// posting-list reads, and a large rarely-touched rare-term region. The
// paper observes ~40% cold with under 1% throughput loss and no p99 impact
// (Figure 10), and no measurable huge-page benefit (Table 1) thanks to the
// small, cache-friendly hot set. RSS 2.28GB + 86MB file (Table 2).
func WebSearch() Spec {
	return Spec{
		Name:      "web-search",
		ComputeNs: 6000,
		Segments: []SegmentSpec{
			{Name: "dictionary", Bytes: 5 * gib / 10, Weight: 0.45, Picker: &Zipf{}},
			{Name: "postings-hot", Bytes: 9 * gib / 10, Weight: 0.50, Picker: &Zipf{}},
			{Name: "postings-rare", Bytes: 88 * gib / 100, Weight: 0.004, Picker: &Sweep{Dwell: DefaultScale}},
			{Name: "index-files", Bytes: 86 * mib, Weight: 0.046, Picker: &Zipf{}, FileMapped: true},
		},
	}
}

// ScaleSynthetic models the scaling benchmark's workload: a small Zipfian
// hot set and a warm band in front of a vast, almost-never-touched cold
// reserve — the footprint shape (a few percent hot, the rest idle) where
// region-grain state pays off. The spec totals 1 GiB unscaled; the scaling
// sweep stretches it with WithFootprint, which preserves these shares, so
// the hot set grows with the footprint while the cold reserve stays ~95%.
// It is deliberately not part of All: the paper experiments iterate the six
// evaluated applications only.
func ScaleSynthetic() Spec {
	return Spec{
		Name:      "scale-synth",
		ComputeNs: 2000,
		Segments: []SegmentSpec{
			{Name: "hot", Bytes: 2 * gib / 100, Weight: 0.90, Picker: &Zipf{}, WriteFrac: 0.2},
			{Name: "warm", Bytes: 3 * gib / 100, Weight: 0.098, Picker: Uniform{}, WriteFrac: 0.1},
			{Name: "cold", Bytes: 95 * gib / 100, Weight: 0.002, Picker: &Sweep{Dwell: DefaultScale}},
		},
	}
}

// All returns the six evaluated applications with the mixes the paper's
// footprint figures use (Aerospike read-heavy, Cassandra write-heavy).
func All() []Spec {
	return []Spec{
		Aerospike(ReadHeavy),
		Cassandra(WriteHeavy),
		InMemAnalytics(),
		MySQLTPCC(),
		Redis(),
		WebSearch(),
	}
}

// ByName returns the spec for an application name. The NoSQL stores accept
// "-read-heavy" / "-write-heavy" suffixes to select the mix; bare names get
// the default mixes from All.
func ByName(name string) (Spec, bool) {
	switch name {
	case "aerospike-read-heavy":
		return Aerospike(ReadHeavy), true
	case "aerospike-write-heavy":
		return Aerospike(WriteHeavy), true
	case "cassandra-read-heavy":
		return Cassandra(ReadHeavy), true
	case "cassandra-write-heavy":
		return Cassandra(WriteHeavy), true
	case "scale-synth":
		return ScaleSynthetic(), true
	}
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
