package walk

import (
	"testing"
	"testing/quick"
)

func TestNativeAccesses(t *testing.T) {
	if got := Accesses(false, Depth4K, 0); got != 4 {
		t.Errorf("native 4K = %d, want 4", got)
	}
	if got := Accesses(false, Depth2M, 0); got != 3 {
		t.Errorf("native 2M = %d, want 3", got)
	}
}

func TestNestedAccessesMatchPaper(t *testing.T) {
	// Section 2.2: "the cost of a page walk can be as high as 24 memory
	// accesses. When memory is mapped to a 2MB huge page in both the guest
	// and host, the worst-case page walk is reduced to 15 accesses."
	if got := Accesses(true, Depth4K, Depth4K); got != 24 {
		t.Errorf("nested 4K/4K = %d, want 24", got)
	}
	if got := Accesses(true, Depth2M, Depth2M); got != 15 {
		t.Errorf("nested 2M/2M = %d, want 15", got)
	}
	// Mixed configurations fall between.
	if got := Accesses(true, Depth2M, Depth4K); got != 19 {
		t.Errorf("nested 2M guest/4K host = %d, want 19", got)
	}
	if got := Accesses(true, Depth4K, Depth2M); got != 19 {
		t.Errorf("nested 4K guest/2M host = %d, want 19", got)
	}
}

func TestAccessesPanicsOnBadDepth(t *testing.T) {
	for _, fn := range []func(){
		func() { Accesses(false, 0, 4) },
		func() { Accesses(true, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for bad depth")
				}
			}()
			fn()
		}()
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := NewModel(Config{CachedStepLatency: 5, MemStepLatency: 80, CacheHitRatio: 1.5}); err == nil {
		t.Error("bad hit ratio accepted")
	}
	if _, err := NewModel(Config{CachedStepLatency: 5, MemStepLatency: 0, CacheHitRatio: 0.5}); err == nil {
		t.Error("zero mem latency accepted")
	}
	if _, err := NewModel(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestLatencyOrdering(t *testing.T) {
	m, err := NewModel(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	native4K := m.Latency(false, Depth4K, 0)
	native2M := m.Latency(false, Depth2M, 0)
	nested4K := m.Latency(true, Depth4K, Depth4K)
	nested2M := m.Latency(true, Depth2M, Depth2M)
	if !(native2M < native4K && native4K < nested2M && nested2M < nested4K) {
		t.Fatalf("latency ordering violated: %d %d %d %d",
			native2M, native4K, nested2M, nested4K)
	}
	// The nested 4K/4K : 2M/2M ratio should be 24:15.
	if ratio := float64(nested4K) / float64(nested2M); ratio < 1.5 || ratio > 1.7 {
		t.Fatalf("nested ratio = %v, want ~1.6", ratio)
	}
}

func TestStepLatencyBlend(t *testing.T) {
	m, _ := NewModel(Config{CachedStepLatency: 10, MemStepLatency: 100, CacheHitRatio: 0.5})
	if got := m.StepLatency(); got != 55 {
		t.Fatalf("StepLatency = %v, want 55", got)
	}
	// Degenerate ratios.
	m0, _ := NewModel(Config{CachedStepLatency: 10, MemStepLatency: 100, CacheHitRatio: 0})
	if m0.StepLatency() != 100 {
		t.Fatal("ratio 0 should give pure memory latency")
	}
	m1, _ := NewModel(Config{CachedStepLatency: 10, MemStepLatency: 100, CacheHitRatio: 1})
	if m1.StepLatency() != 10 {
		t.Fatal("ratio 1 should give pure cache latency")
	}
}

// Property: nested walks always cost more than native at the same guest
// depth, and access counts are monotone in both depths.
func TestAccessMonotonicityProperty(t *testing.T) {
	f := func(gRaw, hRaw uint8) bool {
		g := int(gRaw%4) + 1
		h := int(hRaw%4) + 1
		n := Accesses(true, g, h)
		if n <= Accesses(false, g, 0) {
			return false
		}
		if g < 4 && Accesses(true, g+1, h) <= n {
			return false
		}
		if h < 4 && Accesses(true, g, h+1) <= n {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
