// Package walk models the cost of hardware page-table walks, natively and
// under nested (two-dimensional) paging.
//
// A native x86-64 walk touches one page-table entry per level: 4 memory
// accesses for a 4KB mapping, 3 for a 2MB mapping. Under virtualization with
// EPT/NPT every guest-walk step is itself translated by a host walk, giving
// the (g+1)·(h+1)−1 access count the paper cites: up to 24 accesses when
// both guest and host use 4KB pages, and 15 when both use 2MB pages. This
// asymmetry is the page-walk half of Table 1's huge-page advantage.
//
// Real walkers hit most steps in the page-walk caches and the data caches;
// the model exposes a hit ratio so the simulated walk latency lands in a
// realistic range rather than charging full memory latency per step.
package walk

import "fmt"

// Depth4K and Depth2M are native walk depths by mapping grain.
const (
	// Depth4K is the number of levels touched translating a 4KB mapping.
	Depth4K = 4
	// Depth2M is the number of levels touched translating a 2MB mapping.
	Depth2M = 3
)

// Accesses returns the number of page-table memory accesses for a walk where
// the guest mapping walk has depth gDepth. For a native (non-virtualized)
// walk hDepth is ignored. For a nested walk, every guest step plus the final
// guest-physical access is translated by an (hDepth+1)-access host walk,
// minus the final data access itself: (g+1)·(h+1)−1.
func Accesses(nested bool, gDepth, hDepth int) int {
	if gDepth <= 0 {
		panic(fmt.Sprintf("walk: non-positive guest depth %d", gDepth))
	}
	if !nested {
		return gDepth
	}
	if hDepth <= 0 {
		panic(fmt.Sprintf("walk: non-positive host depth %d", hDepth))
	}
	return (gDepth+1)*(hDepth+1) - 1
}

// Config parameterizes walk latency.
type Config struct {
	// CachedStepLatency is the latency (ns) of a walk step that hits the
	// page-walk/data caches.
	CachedStepLatency int64
	// MemStepLatency is the latency (ns) of a walk step that goes to DRAM.
	MemStepLatency int64
	// CacheHitRatio is the fraction of walk steps served by caches,
	// in [0, 1].
	CacheHitRatio float64
}

// DefaultConfig returns a model calibrated so native 4KB walks cost tens of
// nanoseconds and worst-case nested 4KB walks a couple hundred — the regime
// in which the paper's Table 1 gains (6-30%) arise.
func DefaultConfig() Config {
	return Config{CachedStepLatency: 5, MemStepLatency: 80, CacheHitRatio: 0.85}
}

// Model converts walk access counts into latency.
type Model struct {
	cfg Config
}

// NewModel validates cfg and builds a model.
func NewModel(cfg Config) (*Model, error) {
	if cfg.CacheHitRatio < 0 || cfg.CacheHitRatio > 1 {
		return nil, fmt.Errorf("walk: CacheHitRatio %v outside [0, 1]", cfg.CacheHitRatio)
	}
	if cfg.CachedStepLatency < 0 || cfg.MemStepLatency <= 0 {
		return nil, fmt.Errorf("walk: non-positive step latencies %+v", cfg)
	}
	return &Model{cfg: cfg}, nil
}

// StepLatency returns the expected latency of one walk step.
func (m *Model) StepLatency() float64 {
	return m.cfg.CacheHitRatio*float64(m.cfg.CachedStepLatency) +
		(1-m.cfg.CacheHitRatio)*float64(m.cfg.MemStepLatency)
}

// Latency returns the expected total latency (ns) of a walk with the given
// shape.
func (m *Model) Latency(nested bool, gDepth, hDepth int) int64 {
	n := Accesses(nested, gDepth, hDepth)
	return int64(float64(n) * m.StepLatency())
}
