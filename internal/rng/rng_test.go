package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a, b := NewStream(7, 1), NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 identical values", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 1 << 12, 1<<63 + 9} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := New(11)
	const n, iters = 1000, 200000
	var sum float64
	for i := 0; i < iters; i++ {
		sum += float64(r.Uint64n(n))
	}
	mean := sum / iters
	if math.Abs(mean-float64(n-1)/2) > 5 {
		t.Fatalf("uniform mean = %v, want ~%v", mean, float64(n-1)/2)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(6)
	for k := 0; k <= 60; k += 10 {
		s := r.Sample(50, k)
		wantLen := k
		if k > 50 {
			wantLen = 50
		}
		if len(s) != wantLen {
			t.Fatalf("Sample(50, %d) returned %d items", k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 50 || seen[v] {
				t.Fatalf("Sample(50, %d) invalid: %v", k, s)
			}
			seen[v] = true
		}
	}
}

// Property: Sample always returns distinct in-range values.
func TestSampleProperty(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw % 600)
		s := New(seed).Sample(n, k)
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		want := k
		if want > n {
			want = n
		}
		return len(s) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZipfianSkew(t *testing.T) {
	r := New(13)
	z := NewZipfian(r, 10000, YCSBTheta)
	const iters = 200000
	counts := make(map[uint64]int)
	for i := 0; i < iters; i++ {
		v := z.Next()
		if v >= 10000 {
			t.Fatalf("Zipfian out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 must be by far the most popular; top-10 items should carry a
	// large share of traffic under theta=0.99.
	top10 := 0
	for i := uint64(0); i < 10; i++ {
		top10 += counts[i]
	}
	if frac := float64(top10) / iters; frac < 0.25 {
		t.Fatalf("top-10 Zipfian share = %v, want >= 0.25", frac)
	}
	if counts[0] <= counts[9] {
		t.Fatalf("item 0 (%d draws) not hotter than item 9 (%d draws)", counts[0], counts[9])
	}
}

func TestZipfianLargeN(t *testing.T) {
	// Construction with n > 2^20 exercises the zeta tail approximation.
	z := NewZipfian(New(17), 1<<24, YCSBTheta)
	for i := 0; i < 1000; i++ {
		if v := z.Next(); v >= 1<<24 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	s := NewScrambledZipfian(New(19), 1<<16, YCSBTheta)
	lowHalf := 0
	const iters = 50000
	for i := 0; i < iters; i++ {
		if s.Next() < 1<<15 {
			lowHalf++
		}
	}
	// Plain Zipfian would put almost everything in the low half; scrambled
	// should be roughly balanced between halves.
	frac := float64(lowHalf) / iters
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("scrambled low-half share = %v, want ~0.5", frac)
	}
}

func TestHotspotShares(t *testing.T) {
	h := NewHotspot(New(23), 1_000_000, 0.0001, 0.90)
	const iters = 200000
	hot := 0
	for i := 0; i < iters; i++ {
		if h.Next() < h.HotN() {
			hot++
		}
	}
	frac := float64(hot) / iters
	if math.Abs(frac-0.90) > 0.02 {
		t.Fatalf("hot traffic share = %v, want ~0.90", frac)
	}
	if h.HotN() != 100 {
		t.Fatalf("HotN = %d, want 100", h.HotN())
	}
}

func TestHotspotTinyPopulation(t *testing.T) {
	h := NewHotspot(New(29), 3, 0.0001, 0.9)
	for i := 0; i < 100; i++ {
		if v := h.Next(); v >= 3 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestHash64Bijective(t *testing.T) {
	// Spot-check injectivity on a window.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Hash64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision: Hash64(%d) == Hash64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func BenchmarkPCGUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(New(1), 1<<20, YCSBTheta)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
