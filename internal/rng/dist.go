package rng

import "math"

// Dist draws item indices from a fixed-size population with some popularity
// distribution. Implementations must be deterministic given their PCG.
type Dist interface {
	// Next returns the next item index in [0, N).
	Next() uint64
	// N returns the population size.
	N() uint64
}

// Uniform draws uniformly from [0, n).
type Uniform struct {
	r *PCG
	n uint64
}

// NewUniform returns a uniform distribution over [0, n).
func NewUniform(r *PCG, n uint64) *Uniform {
	if n == 0 {
		panic("rng: NewUniform(0)")
	}
	return &Uniform{r: r, n: n}
}

// Next returns the next item index.
func (u *Uniform) Next() uint64 { return u.r.Uint64n(u.n) }

// N returns the population size.
func (u *Uniform) N() uint64 { return u.n }

// Zipfian draws from a Zipfian distribution over [0, n) with parameter theta,
// using the Gray et al. rejection-free method popularized by YCSB. Item 0 is
// the most popular.
type Zipfian struct {
	r     *PCG
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// YCSBTheta is the Zipfian skew YCSB uses by default.
const YCSBTheta = 0.99

// NewZipfian returns a Zipfian distribution over [0, n) with skew theta
// (0 < theta < 1; larger is more skewed).
func NewZipfian(r *PCG, n uint64, theta float64) *Zipfian {
	if n == 0 {
		panic("rng: NewZipfian(0)")
	}
	if theta <= 0 || theta >= 1 {
		panic("rng: Zipfian theta must be in (0, 1)")
	}
	z := &Zipfian{r: r, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Direct sum for small n; for large n use the Euler-Maclaurin
	// approximation so construction stays O(1)-ish.
	if n <= 1<<20 {
		sum := 0.0
		for i := uint64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	head := zeta(1<<20, theta)
	// Integral approximation of the tail sum_{i=2^20+1}^{n} i^-theta.
	a, b := float64(uint64(1<<20)), float64(n)
	tail := (math.Pow(b, 1-theta) - math.Pow(a, 1-theta)) / (1 - theta)
	return head + tail
}

// Next returns the next item index; 0 is hottest.
func (z *Zipfian) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// N returns the population size.
func (z *Zipfian) N() uint64 { return z.n }

// ScrambledZipfian spreads Zipfian popularity across the key space by
// hashing, so hot items are not clustered at low indices. This matches how
// YCSB drives key-value stores: popularity is skewed but hot keys land at
// arbitrary positions.
type ScrambledZipfian struct {
	z *Zipfian
}

// NewScrambledZipfian returns a scrambled Zipfian distribution over [0, n).
func NewScrambledZipfian(r *PCG, n uint64, theta float64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(r, n, theta)}
}

// Next returns the next item index.
func (s *ScrambledZipfian) Next() uint64 {
	return Hash64(s.z.Next()) % s.z.n
}

// N returns the population size.
func (s *ScrambledZipfian) N() uint64 { return s.z.n }

// Hash64 is the 64-bit finalizer from MurmurHash3: a cheap bijective mixer.
func Hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Hotspot draws from [0, n) where a fraction hotSetFrac of the items receives
// a fraction hotOpnFrac of the draws (e.g. the paper's Redis load: 0.01% of
// keys receive 90% of traffic). Within the hot and cold sets draws are
// uniform. The hot set is the index prefix; combine with a key scrambler if
// spatial clustering is undesirable.
type Hotspot struct {
	r          *PCG
	n          uint64
	hotN       uint64
	hotOpnFrac float64
}

// NewHotspot returns a hotspot distribution over [0, n).
func NewHotspot(r *PCG, n uint64, hotSetFrac, hotOpnFrac float64) *Hotspot {
	if n == 0 {
		panic("rng: NewHotspot(0)")
	}
	if hotSetFrac < 0 || hotSetFrac > 1 || hotOpnFrac < 0 || hotOpnFrac > 1 {
		panic("rng: hotspot fractions must be in [0, 1]")
	}
	hotN := uint64(float64(n) * hotSetFrac)
	if hotN == 0 {
		hotN = 1
	}
	return &Hotspot{r: r, n: n, hotN: hotN, hotOpnFrac: hotOpnFrac}
}

// Next returns the next item index.
func (h *Hotspot) Next() uint64 {
	if h.r.Float64() < h.hotOpnFrac {
		return h.r.Uint64n(h.hotN)
	}
	if h.hotN >= h.n {
		return h.r.Uint64n(h.n)
	}
	return h.hotN + h.r.Uint64n(h.n-h.hotN)
}

// N returns the population size.
func (h *Hotspot) N() uint64 { return h.n }

// HotN returns the size of the hot set.
func (h *Hotspot) HotN() uint64 { return h.hotN }
