// Package rng provides a small, fast, deterministic random-number generator
// and the key-popularity distributions the workload models need: uniform,
// Zipfian (YCSB-style, with the scrambled variant), and hotspot.
//
// The simulator needs determinism across runs for reproducible experiments,
// so every generator is seeded explicitly and never touches global state.
package rng

// PCG is a 64-bit PCG-XSH-RR random number generator. The zero value is not
// usable; construct with New.
type PCG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// New returns a PCG seeded from seed, with a fixed stream.
func New(seed uint64) *PCG {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a PCG seeded from seed on the given stream. Distinct
// streams yield independent sequences even with equal seeds.
func NewStream(seed, stream uint64) *PCG {
	p := &PCG{inc: stream<<1 | 1}
	p.state = p.inc + seed
	p.Uint64()
	return p
}

// Uint64 returns the next 64 random bits.
func (p *PCG) Uint64() uint64 {
	// Two 32-bit PCG outputs glued together.
	return uint64(p.next32())<<32 | uint64(p.next32())
}

func (p *PCG) next32() uint32 {
	old := p.state
	p.state = old*pcgMult + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64n returns a uniform value in [0, n). Panics if n == 0.
func (p *PCG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n(0)")
	}
	// Lemire's multiply-shift rejection method, 64-bit variant simplified:
	// fall back to modulo bias rejection over the high bits.
	mask := ^uint64(0)
	if n&(n-1) == 0 { // power of two
		return p.Uint64() & (n - 1)
	}
	limit := mask - mask%n
	for {
		v := p.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n). Panics if n <= 0.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(p.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability prob.
func (p *PCG) Bool(prob float64) bool {
	return p.Float64() < prob
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Sample returns k distinct uniform values from [0, n) in arbitrary order.
// If k >= n it returns all of [0, n). Uses Floyd's algorithm: O(k) expected.
func (p *PCG) Sample(n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		v := p.Intn(j + 1)
		if _, dup := chosen[v]; dup {
			v = j
		}
		chosen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
