package stats

import (
	"math"
	"testing"
	"testing/quick"

	"thermostat/internal/rng"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("Value = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero")
	}
}

func TestCounterAddSaturates(t *testing.T) {
	var c Counter
	c.Add(math.MaxUint64 - 1)
	c.Add(10) // would wrap to 8 without the guard
	if c.Value() != math.MaxUint64 {
		t.Fatalf("Value = %d, want saturation at MaxUint64", c.Value())
	}
	c.Inc() // saturated counter must stay saturated
	if c.Value() != math.MaxUint64 {
		t.Fatalf("Inc past saturation = %d", c.Value())
	}
	c.Add(0) // zero delta at the ceiling is still fine
	if c.Value() != math.MaxUint64 {
		t.Fatalf("Add(0) at ceiling = %d", c.Value())
	}

	var d Counter
	d.Add(math.MaxUint64) // exact ceiling in one step is not an overflow
	if d.Value() != math.MaxUint64 {
		t.Fatalf("Add(MaxUint64) = %d", d.Value())
	}
}

func TestRate(t *testing.T) {
	if got := Rate(30000, 1e9); got != 30000 {
		t.Errorf("Rate(30000, 1s) = %v", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Errorf("Rate with zero duration = %v, want 0", got)
	}
	if got := Rate(10, 2e9); got != 5 {
		t.Errorf("Rate(10, 2s) = %v, want 5", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Set() {
		t.Fatal("fresh EWMA reports Set")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first observation should seed: %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for alpha=0")
		}
	}()
	NewEWMA(0)
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should return zeros")
	}
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-500.5) > 0.01 {
		t.Fatalf("Mean = %v", m)
	}
	p50 := h.Quantile(0.5)
	if p50 < 400 || p50 > 600 {
		t.Fatalf("p50 = %d, want ~500", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900 || p99 > 1000 {
		t.Fatalf("p99 = %d, want ~990", p99)
	}
}

func TestHistogramQuantileAccuracyProperty(t *testing.T) {
	// Quantiles must be within one log-bucket (~6%) of the true value for a
	// uniform sample.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := NewHistogram()
		const n = 5000
		for i := 0; i < n; i++ {
			h.Observe(r.Uint64n(1 << 20))
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			got := float64(h.Quantile(q))
			want := q * float64(1<<20)
			if math.Abs(got-want) > 0.10*float64(1<<20) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty Min/Max/Mean = %d/%d/%v", h.Min(), h.Max(), h.Mean())
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	// All mass in one (bucket, sub-bucket): every interior quantile must land
	// in that bucket, and the q<=0 / q>=1 clamps must return the exact
	// min/max even though the bucket floor is coarser.
	h := NewHistogram()
	const v = 1_000_003
	for i := 0; i < 100; i++ {
		h.Observe(v)
	}
	lo, _ := bucketOf(v)
	floor := bucketLow(bucketOf(v))
	if h.Quantile(0) != v || h.Quantile(1) != v {
		t.Fatalf("q0/q1 = %d/%d, want exact %d", h.Quantile(0), h.Quantile(1), v)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got != floor {
			t.Fatalf("Quantile(%v) = %d, want bucket floor %d (bucket %d)", q, got, floor, lo)
		}
		if got > v || got < v/2 {
			t.Fatalf("Quantile(%v) = %d outside one log bucket of %d", q, got, v)
		}
	}

	// A single sample behaves the same way.
	one := NewHistogram()
	one.Observe(7)
	if one.Quantile(0.5) != 7 || one.Quantile(0) != 7 || one.Quantile(1) != 7 {
		t.Fatalf("single-sample quantiles = %d/%d/%d, want 7",
			one.Quantile(0), one.Quantile(0.5), one.Quantile(1))
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := uint64(0); i < 100; i++ {
		a.Observe(i)
		b.Observe(i + 100)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 199 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	// Merging an empty histogram is a no-op.
	before := a.Count()
	a.Merge(NewHistogram())
	if a.Count() != before {
		t.Fatal("merging empty changed count")
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(math.MaxUint64)
	if h.Min() != 0 || h.Max() != math.MaxUint64 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Quantile(0) != 0 {
		t.Fatal("q0 should be min")
	}
	if h.Quantile(1) != math.MaxUint64 {
		t.Fatal("q1 should be max")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("cold")
	if s.Last() != 0 || s.Mean() != 0 {
		t.Fatal("empty series should return zeros")
	}
	s.Append(0, 1)
	s.Append(1e9, 3)
	s.Append(2e9, 5)
	if s.Len() != 3 || s.Last() != 5 {
		t.Fatalf("Len/Last = %d/%v", s.Len(), s.Last())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Max() != 5 {
		t.Fatalf("Max = %v", s.Max())
	}
	if got := s.MeanAfter(1e9); got != 4 {
		t.Fatalf("MeanAfter = %v, want 4", got)
	}
	if got := s.MeanAfter(3e9); got != 0 {
		t.Fatalf("MeanAfter past end = %v, want 0", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, yPos); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect positive r = %v", r)
	}
	if r := Pearson(x, yNeg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect negative r = %v", r)
	}
	if r := Pearson(x, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Fatalf("zero-variance r = %v, want 0", r)
	}
	if r := Pearson(x, []float64{1}); r != 0 {
		t.Fatalf("mismatched lengths r = %v, want 0", r)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{5, 1, 4, 2, 3}
	if got := Percentile(s, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(s, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(s, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Input must not be reordered.
	if s[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestBucketMonotonicProperty(t *testing.T) {
	// bucketLow(bucketOf(v)) <= v for all v, and buckets are ordered.
	f := func(v uint64) bool {
		b, s := bucketOf(v)
		return bucketLow(b, s) <= v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
