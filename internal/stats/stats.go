// Package stats provides the measurement primitives the simulator and the
// experiment harness share: counters, rates, exponentially weighted moving
// averages, log-scaled latency histograms with percentile queries, and
// fixed-interval time series.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing event count. The zero value is ready
// to use. Counter is not safe for concurrent use; the simulator is
// single-threaded per machine by design (virtual time).
type Counter struct {
	n uint64
}

// Add increments the counter by delta, saturating at the maximum uint64
// rather than wrapping: a counter that silently restarts from zero would
// corrupt every rate computed from it.
func (c *Counter) Add(delta uint64) {
	if c.n > math.MaxUint64-delta {
		c.n = math.MaxUint64
		return
	}
	c.n += delta
}

// Inc increments the counter by one, with the same saturation as Add.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Rate converts a count observed over a duration (in nanoseconds) to a
// per-second rate. Returns 0 for non-positive durations.
func Rate(count uint64, durNs int64) float64 {
	if durNs <= 0 {
		return 0
	}
	return float64(count) * 1e9 / float64(durNs)
}

// EWMA is an exponentially weighted moving average. The zero value is unset;
// the first Observe seeds it.
type EWMA struct {
	alpha float64
	v     float64
	set   bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]; larger alpha
// weights recent observations more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a new sample into the average.
func (e *EWMA) Observe(x float64) {
	if !e.set {
		e.v, e.set = x, true
		return
	}
	e.v = e.alpha*x + (1-e.alpha)*e.v
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.v }

// Set reports whether any sample has been observed.
func (e *EWMA) Set() bool { return e.set }

// Histogram is a log2-bucketed histogram of non-negative integer samples
// (typically latencies in nanoseconds). Buckets are [2^i, 2^(i+1)) with
// sub-bucket linear refinement, giving ~3% relative error on percentiles
// while staying allocation-free per sample.
type Histogram struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [64][subBuckets]uint64
}

const subBuckets = 16

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxUint64}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	b, s := bucketOf(v)
	h.buckets[b][s]++
}

func bucketOf(v uint64) (int, int) {
	if v < subBuckets {
		return 0, int(v)
	}
	b := 63 - bits.LeadingZeros64(v)
	// Linear position of the top subBuckets-worth of bits below the MSB.
	s := int((v >> (uint(b) - 4)) & (subBuckets - 1))
	return b, s
}

func bucketLow(b, s int) uint64 {
	if b == 0 {
		return uint64(s)
	}
	return 1<<uint(b) | uint64(s)<<(uint(b)-4)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the sample mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an approximation of the q-quantile (q in [0, 1]).
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.count))
	var seen uint64
	for b := 0; b < 64; b++ {
		for s := 0; s < subBuckets; s++ {
			seen += h.buckets[b][s]
			if seen > target {
				return bucketLow(b, s)
			}
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for b := range h.buckets {
		for s := range h.buckets[b] {
			h.buckets[b][s] += other.buckets[b][s]
		}
	}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max)
}

// Series is a fixed-interval time series of float64 samples, used for the
// footprint-over-time figures. Points are appended with their timestamps;
// the series does not interpolate.
type Series struct {
	Name   string
	Times  []int64 // nanoseconds of virtual time
	Values []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Append records a point.
func (s *Series) Append(timeNs int64, v float64) {
	s.Times = append(s.Times, timeNs)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Last returns the most recent value (0 if empty).
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Mean returns the average of all points (0 if empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Max returns the largest value (0 if empty).
func (s *Series) Max() float64 {
	m := 0.0
	for i, v := range s.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// MeanAfter returns the average of points with time >= fromNs, useful for
// skipping warm-up. Returns 0 if no points qualify.
func (s *Series) MeanAfter(fromNs int64) float64 {
	sum, n := 0.0, 0
	for i, ts := range s.Times {
		if ts >= fromNs {
			sum += s.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// sample vectors. Returns 0 when undefined (fewer than two points or zero
// variance).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Percentile returns the p-th percentile (p in [0, 100]) of the samples by
// nearest-rank on a sorted copy. Returns 0 for empty input.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}
