package kstaled

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/pagetable"
	"thermostat/internal/tlb"
)

func setup(t *testing.T, nHuge int) (*pagetable.Table, *tlb.TLB, *Scanner) {
	t.Helper()
	pt := pagetable.New()
	tl := tlb.New(tlb.DefaultConfig())
	for i := 0; i < nHuge; i++ {
		if err := pt.Map2M(addr.Virt2M(uint64(i)), addr.Phys2M(uint64(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	return pt, tl, New(pt, tl, 1, 0)
}

func TestScanClearsAccessedAndFlushes(t *testing.T) {
	pt, tl, s := setup(t, 2)
	v := addr.Virt2M(0)
	pt.Walk(v, false) // sets Accessed
	tl.Insert(v, pagetable.Level2M, addr.Phys2M(0), 1)

	res := s.Scan()
	if res.Scanned != 2 || res.AccessedSet != 1 {
		t.Fatalf("result %+v", res)
	}
	e, _, _ := pt.Lookup(v)
	if e.Flags.Has(pagetable.Accessed) {
		t.Fatal("Accessed not cleared")
	}
	if _, ok := tl.Lookup(v, 1); ok {
		t.Fatal("TLB entry survived scan")
	}
	if res.CostNs != 2*DefaultEntryCostNs {
		t.Fatalf("cost = %d", res.CostNs)
	}
}

func TestIdleAccumulation(t *testing.T) {
	pt, _, s := setup(t, 2)
	hot, cold := addr.Virt2M(0), addr.Virt2M(1)
	for i := 0; i < 5; i++ {
		pt.Walk(hot, false) // touch the hot page each interval
		s.Scan()
	}
	if !s.IdleFor(cold, 5) {
		t.Fatal("cold page not idle after 5 scans")
	}
	if s.IdleFor(hot, 1) {
		t.Fatal("hot page reported idle")
	}
	if st := s.State(hot); st.HotStreak != 5 {
		t.Fatalf("hot streak = %d, want 5", st.HotStreak)
	}
	// IdleFraction: one of two equal-size pages idle.
	if f := s.IdleFraction(5); f != 0.5 {
		t.Fatalf("IdleFraction = %v, want 0.5", f)
	}
}

func TestIdleResetOnAccess(t *testing.T) {
	pt, _, s := setup(t, 1)
	v := addr.Virt2M(0)
	s.Scan()
	s.Scan()
	if !s.IdleFor(v, 2) {
		t.Fatal("page should be idle")
	}
	pt.Walk(v, false)
	s.Scan()
	if s.IdleFor(v, 1) {
		t.Fatal("idle streak should reset after access")
	}
}

func TestUnmappedPagesForgotten(t *testing.T) {
	pt, _, s := setup(t, 2)
	s.Scan()
	if _, _, err := pt.Unmap(addr.Virt2M(1)); err != nil {
		t.Fatal(err)
	}
	res := s.Scan()
	if res.Scanned != 1 {
		t.Fatalf("scanned %d, want 1", res.Scanned)
	}
	if s.State(addr.Virt2M(1)) != nil {
		t.Fatal("unmapped page state retained")
	}
}

func TestIdleFractionMixedGrains(t *testing.T) {
	pt := pagetable.New()
	tl := tlb.New(tlb.DefaultConfig())
	if err := pt.Map2M(addr.Virt2M(0), addr.Phys2M(0), 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map4K(addr.Virt2M(1), addr.Phys4K(9), 0); err != nil {
		t.Fatal(err)
	}
	s := New(pt, tl, 1, 0)
	s.Scan() // both idle (never accessed)
	// 2MB idle + 4KB idle out of 2MB+4KB total = 1.0.
	if f := s.IdleFraction(1); f != 1.0 {
		t.Fatalf("IdleFraction = %v", f)
	}
	// Touch the huge page: idle fraction drops to 4K/(2M+4K).
	pt.Walk(addr.Virt2M(0), false)
	s.Scan()
	want := float64(addr.PageSize4K) / float64(addr.PageSize2M+addr.PageSize4K)
	if f := s.IdleFraction(1); f != want {
		t.Fatalf("IdleFraction = %v, want %v", f, want)
	}
}

func TestIdleFractionEmpty(t *testing.T) {
	_, _, s := setup(t, 0)
	if s.IdleFraction(1) != 0 {
		t.Fatal("empty tracker should report 0")
	}
}

func TestHotSubpagesAfterSplit(t *testing.T) {
	pt, _, s := setup(t, 1)
	v := addr.Virt2M(0)
	if err := pt.Split(v); err != nil {
		t.Fatal(err)
	}
	// Touch children 3 and 7 across three scans; child 100 only once.
	for i := 0; i < 3; i++ {
		pt.Walk(v+3*addr.Virt(addr.PageSize4K), false)
		pt.Walk(v+7*addr.Virt(addr.PageSize4K), false)
		if i == 0 {
			pt.Walk(v+100*addr.Virt(addr.PageSize4K), false)
		}
		s.Scan()
	}
	if got := s.HotSubpages(v, 3); got != 2 {
		t.Fatalf("HotSubpages(3) = %d, want 2", got)
	}
	if got := s.HotSubpages(v, 1); got != 2 {
		t.Fatalf("HotSubpages(1) = %d, want 2 (child 100 streak broken)", got)
	}
}

func TestAccessedSubpages(t *testing.T) {
	pt, _, _ := setup(t, 1)
	v := addr.Virt2M(0)
	if err := pt.Split(v); err != nil {
		t.Fatal(err)
	}
	pt.Walk(v+5*addr.Virt(addr.PageSize4K), false)
	pt.Walk(v+400*addr.Virt(addr.PageSize4K), true)
	got := AccessedSubpages(pt, v)
	if len(got) != 2 || got[0] != 5 || got[1] != 400 {
		t.Fatalf("AccessedSubpages = %v", got)
	}
}

func TestScansCounter(t *testing.T) {
	_, _, s := setup(t, 1)
	s.Scan()
	s.Scan()
	if s.Scans() != 2 {
		t.Fatalf("Scans = %d", s.Scans())
	}
}
