// Package kstaled reimplements the kernel's idle-page-tracking baseline the
// paper evaluates against (Lespinasse's kstaled, LWN 2011): periodically
// scan page-table Accessed bits, clear them, flush the TLB, and classify
// pages that stay unaccessed across consecutive scans as idle/cold.
//
// This mechanism produces Figure 1 (fraction of 2MB pages idle for 10s) and
// the motivation for Figure 2: the single Accessed bit per page says whether
// a page was touched, but not how often — so it cannot bound the performance
// cost of demoting a page, which is the gap Thermostat's fault-based access
// counting fills.
package kstaled

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/pagetable"
	"thermostat/internal/pool"
	"thermostat/internal/stats"
	"thermostat/internal/tlb"
)

// DefaultEntryCostNs is the modeled per-PTE cost of one scan step: read and
// clear the Accessed bit plus the amortized invlpg.
const DefaultEntryCostNs = 150

// PageState tracks one region's scan history. A region is a single radix
// leaf on a dense table; on a sparse table it can also be a multi-page span
// summary, in which case Pages > 1 and the history describes the whole span
// through its aggregate Accessed bit.
type PageState struct {
	// IdleScans is the number of consecutive completed scans in which the
	// page's Accessed bit stayed clear.
	IdleScans int
	// HotStreak is the number of consecutive completed scans in which the
	// Accessed bit was found set (Figure 2's "hot = accessed in three
	// consecutive scan intervals").
	HotStreak int
	// Level is the leaf grain at the last scan.
	Level pagetable.Level
	// Pages is the region's size in Level-grain pages at the last scan
	// (1 for every radix leaf, the span length for a span summary).
	Pages int
}

// Scanner is one kstaled instance over an address space.
type Scanner struct {
	pt   *pagetable.Table
	tl   *tlb.TLB
	vpid tlb.VPID

	// flag is the leaf bit the scanner reads and clears each pass:
	// Accessed for classic kstaled idle tracking, Dirty for soft-dirty
	// write tracking.
	flag pagetable.Flags

	state map[addr.Virt]*PageState

	// shards/workers partition the collect half of a scan pass into
	// contiguous region-sequence chunks run concurrently (<= 1 = serial).
	shards  int
	workers int

	scans       stats.Counter
	entryCostNs int64
}

// New builds a scanner over the Accessed bit. entryCostNs <= 0 selects
// DefaultEntryCostNs.
func New(pt *pagetable.Table, tl *tlb.TLB, vpid tlb.VPID, entryCostNs int64) *Scanner {
	return NewWithFlag(pt, tl, vpid, entryCostNs, pagetable.Accessed)
}

// NewWithFlag builds a scanner that tracks the given leaf flag instead of
// Accessed — pagetable.Dirty turns it into a soft-dirty write tracker
// (clear-and-recheck over the dirty bit, as under /proc/pid/clear_refs).
func NewWithFlag(pt *pagetable.Table, tl *tlb.TLB, vpid tlb.VPID, entryCostNs int64, flag pagetable.Flags) *Scanner {
	if entryCostNs <= 0 {
		entryCostNs = DefaultEntryCostNs
	}
	return &Scanner{
		pt: pt, tl: tl, vpid: vpid,
		flag:        flag,
		state:       make(map[addr.Virt]*PageState),
		entryCostNs: entryCostNs,
	}
}

// SetSharding partitions the scan-and-clear pass into shards contiguous
// chunks of the region sequence, collected on up to workers goroutines.
// Chunk results are concatenated in shard-index order and all scan-history
// and TLB updates are applied serially from the merged sequence, so any
// (shards, workers) setting — including the serial default — produces
// bit-identical scan results. Values <= 1 select the serial path.
func (s *Scanner) SetSharding(shards, workers int) {
	s.shards, s.workers = shards, workers
}

// Result summarizes one scan pass.
type Result struct {
	// Scanned is the number of regions (leaf entries and span summaries)
	// visited; on a dense table every region is one leaf.
	Scanned int
	// AccessedSet is how many had the Accessed bit set.
	AccessedSet int
	// CostNs is the modeled CPU cost of the pass.
	CostNs int64
}

// scanHit is one region observation from the collect half of a scan pass.
type scanHit struct {
	base  addr.Virt
	pages int
	prior pagetable.Flags
	lvl   pagetable.Level
}

// collect runs the clear-and-record sweep and returns the observations in
// address order. With sharding enabled the sweep is split into contiguous
// region-sequence chunks cleared concurrently — distinct shards touch
// distinct regions — and concatenated in shard-index order, which by the
// ScanClearRegionsShard contract reproduces the serial sequence exactly.
func (s *Scanner) collect() []scanHit {
	if s.shards <= 1 {
		var hits []scanHit
		s.pt.ScanClearRegions(s.flag, func(base addr.Virt, pages int, prior pagetable.Flags, lvl pagetable.Level) {
			hits = append(hits, scanHit{base, pages, prior, lvl})
		})
		return hits
	}
	tasks := make([]pool.Task[[]scanHit], s.shards)
	for i := 0; i < s.shards; i++ {
		shard := i
		tasks[i] = pool.Task[[]scanHit]{
			Label: fmt.Sprintf("kstaled-shard/%d", shard),
			Run: func() ([]scanHit, error) {
				var hits []scanHit
				s.pt.ScanClearRegionsShard(shard, s.shards, s.flag, func(base addr.Virt, pages int, prior pagetable.Flags, lvl pagetable.Level) {
					hits = append(hits, scanHit{base, pages, prior, lvl})
				})
				return hits, nil
			},
		}
	}
	parts, _ := pool.Map(s.workers, tasks) // collect-only tasks cannot fail
	var hits []scanHit
	for _, p := range parts {
		hits = append(hits, p...)
	}
	return hits
}

// Scan performs one pass: for every mapped region, record whether Accessed
// was set, clear it, and flush the region's TLB entry so the next touch
// re-sets it. Pages that disappeared since the last pass are forgotten.
// The pass is collect-then-apply: flag clearing (optionally sharded) only
// records observations, and all scan-history and TLB side effects are
// applied serially in address order afterwards.
func (s *Scanner) Scan() Result {
	hits := s.collect()
	var res Result
	seen := make(map[addr.Virt]struct{}, len(s.state))
	for _, h := range hits {
		res.Scanned++
		st := s.state[h.base]
		if st == nil {
			st = &PageState{}
			s.state[h.base] = st
		}
		st.Level = h.lvl
		st.Pages = h.pages
		seen[h.base] = struct{}{}
		if h.prior.Has(s.flag) {
			res.AccessedSet++
			st.IdleScans = 0
			st.HotStreak++
			s.tl.Invalidate(h.base, s.vpid)
		} else {
			st.IdleScans++
			st.HotStreak = 0
		}
	}
	// Forget unmapped pages.
	for base := range s.state {
		if _, ok := seen[base]; !ok {
			delete(s.state, base)
		}
	}
	s.scans.Inc()
	res.CostNs = int64(res.Scanned) * s.entryCostNs
	return res
}

// StateBytes reports the scanner's resident metadata: one history record
// per tracked region.
func (s *Scanner) StateBytes() uint64 {
	// map key + pointer + PageState: ~8 + 8 + 32 bytes per entry.
	return uint64(len(s.state)) * 48
}

// Scans returns the number of completed passes.
func (s *Scanner) Scans() uint64 { return s.scans.Value() }

// State returns the scan history of the leaf page with the given base
// address, or nil if unknown.
func (s *Scanner) State(base addr.Virt) *PageState { return s.state[base] }

// IdleFor reports whether the page at base has been idle for at least n
// consecutive scans.
func (s *Scanner) IdleFor(base addr.Virt, n int) bool {
	st := s.state[base]
	return st != nil && st.IdleScans >= n
}

// IdleFraction returns the fraction of tracked bytes idle for at least n
// consecutive scans (0 if nothing is tracked). This is Figure 1's metric
// when the scan period times n equals the idle window.
func (s *Scanner) IdleFraction(n int) float64 {
	var idle, total uint64
	for _, st := range s.state {
		size := addr.PageSize4K
		if st.Level == pagetable.Level2M {
			size = addr.PageSize2M
		}
		if st.Pages > 1 {
			size *= uint64(st.Pages)
		}
		total += size
		if st.IdleScans >= n {
			idle += size
		}
	}
	if total == 0 {
		return 0
	}
	return float64(idle) / float64(total)
}

// HotSubpages counts the 4KB children of the (split) 2MB page at hugeBase
// whose HotStreak is at least streak — the x-axis of Figure 2.
func (s *Scanner) HotSubpages(hugeBase addr.Virt, streak int) int {
	n := 0
	for i := 0; i < addr.PagesPerHuge; i++ {
		st := s.state[hugeBase+addr.Virt(uint64(i)*addr.PageSize4K)]
		if st != nil && st.HotStreak >= streak {
			n++
		}
	}
	return n
}

// AccessedSubpages returns the indices of 4KB children of the split 2MB page
// at hugeBase whose Accessed bit is currently set in the page table (without
// clearing). This is the pre-filter Thermostat's sampler runs before
// poisoning (§3.2 step one).
func AccessedSubpages(pt *pagetable.Table, hugeBase addr.Virt) []int {
	var out []int
	r := addr.NewRange(hugeBase, addr.PageSize2M)
	pt.ScanRange(r, func(v addr.Virt, e *pagetable.Entry, lvl pagetable.Level) {
		if lvl == pagetable.Level4K && e.Flags.Has(pagetable.Accessed) {
			out = append(out, int(uint64(v-hugeBase)>>addr.PageShift4K))
		}
	})
	return out
}
