// Package kstaled reimplements the kernel's idle-page-tracking baseline the
// paper evaluates against (Lespinasse's kstaled, LWN 2011): periodically
// scan page-table Accessed bits, clear them, flush the TLB, and classify
// pages that stay unaccessed across consecutive scans as idle/cold.
//
// This mechanism produces Figure 1 (fraction of 2MB pages idle for 10s) and
// the motivation for Figure 2: the single Accessed bit per page says whether
// a page was touched, but not how often — so it cannot bound the performance
// cost of demoting a page, which is the gap Thermostat's fault-based access
// counting fills.
package kstaled

import (
	"thermostat/internal/addr"
	"thermostat/internal/pagetable"
	"thermostat/internal/stats"
	"thermostat/internal/tlb"
)

// DefaultEntryCostNs is the modeled per-PTE cost of one scan step: read and
// clear the Accessed bit plus the amortized invlpg.
const DefaultEntryCostNs = 150

// PageState tracks one leaf page's scan history.
type PageState struct {
	// IdleScans is the number of consecutive completed scans in which the
	// page's Accessed bit stayed clear.
	IdleScans int
	// HotStreak is the number of consecutive completed scans in which the
	// Accessed bit was found set (Figure 2's "hot = accessed in three
	// consecutive scan intervals").
	HotStreak int
	// Level is the leaf grain at the last scan.
	Level pagetable.Level
}

// Scanner is one kstaled instance over an address space.
type Scanner struct {
	pt   *pagetable.Table
	tl   *tlb.TLB
	vpid tlb.VPID

	// flag is the leaf bit the scanner reads and clears each pass:
	// Accessed for classic kstaled idle tracking, Dirty for soft-dirty
	// write tracking.
	flag pagetable.Flags

	state map[addr.Virt]*PageState

	scans       stats.Counter
	entryCostNs int64
}

// New builds a scanner over the Accessed bit. entryCostNs <= 0 selects
// DefaultEntryCostNs.
func New(pt *pagetable.Table, tl *tlb.TLB, vpid tlb.VPID, entryCostNs int64) *Scanner {
	return NewWithFlag(pt, tl, vpid, entryCostNs, pagetable.Accessed)
}

// NewWithFlag builds a scanner that tracks the given leaf flag instead of
// Accessed — pagetable.Dirty turns it into a soft-dirty write tracker
// (clear-and-recheck over the dirty bit, as under /proc/pid/clear_refs).
func NewWithFlag(pt *pagetable.Table, tl *tlb.TLB, vpid tlb.VPID, entryCostNs int64, flag pagetable.Flags) *Scanner {
	if entryCostNs <= 0 {
		entryCostNs = DefaultEntryCostNs
	}
	return &Scanner{
		pt: pt, tl: tl, vpid: vpid,
		flag:        flag,
		state:       make(map[addr.Virt]*PageState),
		entryCostNs: entryCostNs,
	}
}

// Result summarizes one scan pass.
type Result struct {
	// Scanned is the number of leaf entries visited.
	Scanned int
	// AccessedSet is how many had the Accessed bit set.
	AccessedSet int
	// CostNs is the modeled CPU cost of the pass.
	CostNs int64
}

// Scan performs one pass: for every present leaf, record whether Accessed
// was set, clear it, and flush the page's TLB entry so the next touch
// re-sets it. Pages that disappeared since the last pass are forgotten.
func (s *Scanner) Scan() Result {
	var res Result
	seen := make(map[addr.Virt]struct{}, len(s.state))
	s.pt.ScanClear(s.flag, func(base addr.Virt, prior pagetable.Flags, lvl pagetable.Level) {
		res.Scanned++
		st := s.state[base]
		if st == nil {
			st = &PageState{}
			s.state[base] = st
		}
		st.Level = lvl
		seen[base] = struct{}{}
		if prior.Has(s.flag) {
			res.AccessedSet++
			st.IdleScans = 0
			st.HotStreak++
			s.tl.Invalidate(base, s.vpid)
		} else {
			st.IdleScans++
			st.HotStreak = 0
		}
	})
	// Forget unmapped pages.
	for base := range s.state {
		if _, ok := seen[base]; !ok {
			delete(s.state, base)
		}
	}
	s.scans.Inc()
	res.CostNs = int64(res.Scanned) * s.entryCostNs
	return res
}

// Scans returns the number of completed passes.
func (s *Scanner) Scans() uint64 { return s.scans.Value() }

// State returns the scan history of the leaf page with the given base
// address, or nil if unknown.
func (s *Scanner) State(base addr.Virt) *PageState { return s.state[base] }

// IdleFor reports whether the page at base has been idle for at least n
// consecutive scans.
func (s *Scanner) IdleFor(base addr.Virt, n int) bool {
	st := s.state[base]
	return st != nil && st.IdleScans >= n
}

// IdleFraction returns the fraction of tracked bytes idle for at least n
// consecutive scans (0 if nothing is tracked). This is Figure 1's metric
// when the scan period times n equals the idle window.
func (s *Scanner) IdleFraction(n int) float64 {
	var idle, total uint64
	for _, st := range s.state {
		size := addr.PageSize4K
		if st.Level == pagetable.Level2M {
			size = addr.PageSize2M
		}
		total += size
		if st.IdleScans >= n {
			idle += size
		}
	}
	if total == 0 {
		return 0
	}
	return float64(idle) / float64(total)
}

// HotSubpages counts the 4KB children of the (split) 2MB page at hugeBase
// whose HotStreak is at least streak — the x-axis of Figure 2.
func (s *Scanner) HotSubpages(hugeBase addr.Virt, streak int) int {
	n := 0
	for i := 0; i < addr.PagesPerHuge; i++ {
		st := s.state[hugeBase+addr.Virt(uint64(i)*addr.PageSize4K)]
		if st != nil && st.HotStreak >= streak {
			n++
		}
	}
	return n
}

// AccessedSubpages returns the indices of 4KB children of the split 2MB page
// at hugeBase whose Accessed bit is currently set in the page table (without
// clearing). This is the pre-filter Thermostat's sampler runs before
// poisoning (§3.2 step one).
func AccessedSubpages(pt *pagetable.Table, hugeBase addr.Virt) []int {
	var out []int
	r := addr.NewRange(hugeBase, addr.PageSize2M)
	pt.ScanRange(r, func(v addr.Virt, e *pagetable.Entry, lvl pagetable.Level) {
		if lvl == pagetable.Level4K && e.Flags.Has(pagetable.Accessed) {
			out = append(out, int(uint64(v-hugeBase)>>addr.PageShift4K))
		}
	})
	return out
}
