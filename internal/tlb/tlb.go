// Package tlb models a two-level translation lookaside buffer with VPID
// (virtual processor ID) tagging, matching the evaluation platform's 64-entry
// per-core L1 and shared 1024-entry L2. Entries exist at 4KB and 2MB grains;
// a 2MB entry gives huge pages their larger reach, which is the TLB half of
// the paper's Table 1 huge-page advantage.
//
// Poisoned translations are never cached: BadgerTrap relies on every access
// to a poisoned page missing the TLB so the poison fault fires (the fault
// handler installs only a transient translation).
package tlb

import (
	"thermostat/internal/addr"
	"thermostat/internal/pagetable"
	"thermostat/internal/stats"
)

// VPID tags entries by virtual processor, as KVM does for its guests. VPID 0
// is reserved for the host (and is what a vmexit switches to).
type VPID uint16

// HostVPID is the host's VPID.
const HostVPID VPID = 0

// key identifies a cached translation.
type key struct {
	vpn  uint64
	lvl  pagetable.Level
	vpid VPID
}

// entry is a cached translation.
type entry struct {
	key   key
	frame addr.Phys

	prev, next *entry // LRU list, most-recent at head
}

// lru is a fixed-capacity LRU map of translations. Evicted and removed
// entries park on a freelist (chained through next) so a full TLB churns
// translations without allocating.
type lru struct {
	cap   int
	items map[key]*entry
	head  *entry
	tail  *entry
	free  *entry
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, items: make(map[key]*entry, capacity)}
}

func (l *lru) get(k key) (*entry, bool) {
	e, ok := l.items[k]
	if ok {
		l.moveToFront(e)
	}
	return e, ok
}

func (l *lru) put(k key, frame addr.Phys) {
	if e, ok := l.items[k]; ok {
		e.frame = frame
		l.moveToFront(e)
		return
	}
	if len(l.items) >= l.cap {
		l.evict()
	}
	e := l.free
	if e != nil {
		l.free = e.next
		*e = entry{key: k, frame: frame}
	} else {
		e = &entry{key: k, frame: frame}
	}
	l.items[k] = e
	l.pushFront(e)
}

func (l *lru) remove(k key) bool {
	e, ok := l.items[k]
	if !ok {
		return false
	}
	l.unlink(e)
	delete(l.items, k)
	l.release(e)
	return true
}

func (l *lru) evict() {
	if l.tail == nil {
		return
	}
	victim := l.tail
	l.unlink(victim)
	delete(l.items, victim.key)
	l.release(victim)
}

func (l *lru) release(e *entry) {
	e.next = l.free
	l.free = e
}

func (l *lru) pushFront(e *entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lru) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *lru) moveToFront(e *entry) {
	if l.head == e {
		return
	}
	l.unlink(e)
	l.pushFront(e)
}

func (l *lru) clear() {
	l.items = make(map[key]*entry, l.cap)
	l.head, l.tail = nil, nil
}

func (l *lru) removeIf(pred func(key) bool) {
	for k := range l.items {
		if pred(k) {
			l.remove(k)
		}
	}
}

// Config sizes the TLB hierarchy.
type Config struct {
	// L1Entries is the per-level-1 capacity (default 64).
	L1Entries int
	// L2Entries is the shared second-level capacity (default 1024).
	L2Entries int
}

// DefaultConfig matches the paper's Xeon E5-2699 v3 testbed.
func DefaultConfig() Config { return Config{L1Entries: 64, L2Entries: 1024} }

// HitLevel says where a lookup was satisfied.
type HitLevel int

// Lookup outcomes.
const (
	// Miss means neither level held the translation.
	Miss HitLevel = iota
	// HitL1 means the first level hit.
	HitL1
	// HitL2 means the second level hit (entry is promoted to L1).
	HitL2
)

// TLB is the two-level translation cache.
type TLB struct {
	l1 *lru
	l2 *lru

	hitsL1 stats.Counter
	hitsL2 stats.Counter
	misses stats.Counter
}

// New builds a TLB from cfg, applying defaults for zero fields.
func New(cfg Config) *TLB {
	if cfg.L1Entries <= 0 {
		cfg.L1Entries = 64
	}
	if cfg.L2Entries <= 0 {
		cfg.L2Entries = 1024
	}
	return &TLB{l1: newLRU(cfg.L1Entries), l2: newLRU(cfg.L2Entries)}
}

// Result is a successful lookup.
type Result struct {
	Frame addr.Phys
	Level pagetable.Level
	Hit   HitLevel
}

// Lookup searches both grains at both levels for a translation of v under
// vpid. On an L2 hit the entry is promoted to L1.
func (t *TLB) Lookup(v addr.Virt, vpid VPID) (Result, bool) {
	for _, lvl := range [2]pagetable.Level{pagetable.Level2M, pagetable.Level4K} {
		k := keyFor(v, lvl, vpid)
		if e, ok := t.l1.get(k); ok {
			t.hitsL1.Inc()
			t.l2.get(k) // keep L2 recency in sync (inclusive hierarchy)
			return Result{Frame: e.frame, Level: lvl, Hit: HitL1}, true
		}
	}
	for _, lvl := range [2]pagetable.Level{pagetable.Level2M, pagetable.Level4K} {
		k := keyFor(v, lvl, vpid)
		if e, ok := t.l2.get(k); ok {
			t.hitsL2.Inc()
			t.l1.put(k, e.frame)
			return Result{Frame: e.frame, Level: lvl, Hit: HitL2}, true
		}
	}
	t.misses.Inc()
	return Result{}, false
}

func keyFor(v addr.Virt, lvl pagetable.Level, vpid VPID) key {
	if lvl == pagetable.Level2M {
		return key{vpn: v.PageNum2M(), lvl: lvl, vpid: vpid}
	}
	return key{vpn: v.PageNum4K(), lvl: lvl, vpid: vpid}
}

// Insert caches a translation in both levels (inclusive hierarchy).
func (t *TLB) Insert(v addr.Virt, lvl pagetable.Level, frame addr.Phys, vpid VPID) {
	k := keyFor(v, lvl, vpid)
	t.l1.put(k, frame)
	t.l2.put(k, frame)
}

// Invalidate drops any cached translation of v (both grains) under vpid —
// the invlpg analogue, required after poisoning or remapping a page.
func (t *TLB) Invalidate(v addr.Virt, vpid VPID) {
	for _, lvl := range [2]pagetable.Level{pagetable.Level4K, pagetable.Level2M} {
		k := keyFor(v, lvl, vpid)
		t.l1.remove(k)
		t.l2.remove(k)
	}
}

// InvalidateVPID drops all translations tagged with vpid.
func (t *TLB) InvalidateVPID(vpid VPID) {
	pred := func(k key) bool { return k.vpid == vpid }
	t.l1.removeIf(pred)
	t.l2.removeIf(pred)
}

// InvalidateRange drops every cached translation under vpid whose virtual
// page falls in r — the range-shootdown a munmap performs. Unlike per-page
// Invalidate it also catches transient 4KB translations BadgerTrap installed
// inside poisoned huge pages, whose bases the caller cannot enumerate.
func (t *TLB) InvalidateRange(r addr.Range, vpid VPID) {
	pred := func(k key) bool {
		if k.vpid != vpid {
			return false
		}
		var v addr.Virt
		if k.lvl == pagetable.Level2M {
			v = addr.Virt(k.vpn << addr.PageShift2M)
		} else {
			v = addr.Virt(k.vpn << addr.PageShift4K)
		}
		return r.Contains(v)
	}
	t.l1.removeIf(pred)
	t.l2.removeIf(pred)
}

// Flush empties the whole TLB.
func (t *TLB) Flush() {
	t.l1.clear()
	t.l2.clear()
}

// Stats reports lookup outcome counts since construction.
type Stats struct {
	HitsL1 uint64
	HitsL2 uint64
	Misses uint64
}

// Lookups returns the total number of lookups.
func (s Stats) Lookups() uint64 { return s.HitsL1 + s.HitsL2 + s.Misses }

// MissRate returns misses / lookups (0 when no lookups).
func (s Stats) MissRate() float64 {
	n := s.Lookups()
	if n == 0 {
		return 0
	}
	return float64(s.Misses) / float64(n)
}

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() Stats {
	return Stats{HitsL1: t.hitsL1.Value(), HitsL2: t.hitsL2.Value(), Misses: t.misses.Value()}
}

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() {
	t.hitsL1.Reset()
	t.hitsL2.Reset()
	t.misses.Reset()
}

// Size returns the number of live entries at each level.
func (t *TLB) Size() (l1, l2 int) { return len(t.l1.items), len(t.l2.items) }
