package tlb

import (
	"testing"
	"testing/quick"

	"thermostat/internal/addr"
	"thermostat/internal/pagetable"
	"thermostat/internal/rng"
)

func TestMissOnEmpty(t *testing.T) {
	tl := New(DefaultConfig())
	if _, ok := tl.Lookup(addr.Virt4K(1), 1); ok {
		t.Fatal("empty TLB hit")
	}
	s := tl.Stats()
	if s.Misses != 1 || s.Lookups() != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInsertHit4K(t *testing.T) {
	tl := New(DefaultConfig())
	v, p := addr.Virt4K(10), addr.Phys4K(20)
	tl.Insert(v, pagetable.Level4K, p, 1)
	r, ok := tl.Lookup(v+100, 1)
	if !ok || r.Frame != p || r.Level != pagetable.Level4K || r.Hit != HitL1 {
		t.Fatalf("lookup %+v ok=%v", r, ok)
	}
	// A different 4K page in the same 2M region must miss.
	if _, ok := tl.Lookup(v+addr.Virt(addr.PageSize4K), 1); ok {
		t.Fatal("adjacent page hit")
	}
}

func TestInsertHit2MReach(t *testing.T) {
	tl := New(DefaultConfig())
	v, p := addr.Virt2M(3), addr.Phys2M(7)
	tl.Insert(v, pagetable.Level2M, p, 1)
	// Any offset within the 2MB page hits the single entry.
	for _, off := range []uint64{0, 4096, 999999, addr.PageSize2M - 1} {
		r, ok := tl.Lookup(v+addr.Virt(off), 1)
		if !ok || r.Level != pagetable.Level2M || r.Frame != p {
			t.Fatalf("offset %#x: %+v ok=%v", off, r, ok)
		}
	}
}

func TestVPIDIsolation(t *testing.T) {
	tl := New(DefaultConfig())
	v := addr.Virt4K(5)
	tl.Insert(v, pagetable.Level4K, addr.Phys4K(1), 1)
	if _, ok := tl.Lookup(v, 2); ok {
		t.Fatal("entry visible under wrong VPID")
	}
	if _, ok := tl.Lookup(v, HostVPID); ok {
		t.Fatal("guest entry visible to host")
	}
}

func TestInvalidate(t *testing.T) {
	tl := New(DefaultConfig())
	v := addr.Virt2M(1)
	tl.Insert(v, pagetable.Level2M, addr.Phys2M(1), 3)
	tl.Insert(v, pagetable.Level4K, addr.Phys4K(9), 3)
	tl.Invalidate(v, 3)
	if _, ok := tl.Lookup(v, 3); ok {
		t.Fatal("translation survived Invalidate")
	}
	// Invalidate under a different VPID must not touch other VPIDs.
	tl.Insert(v, pagetable.Level4K, addr.Phys4K(9), 4)
	tl.Invalidate(v, 3)
	if _, ok := tl.Lookup(v, 4); !ok {
		t.Fatal("Invalidate crossed VPIDs")
	}
}

func TestInvalidateVPID(t *testing.T) {
	tl := New(DefaultConfig())
	for i := uint64(0); i < 10; i++ {
		tl.Insert(addr.Virt4K(i), pagetable.Level4K, addr.Phys4K(i), 1)
		tl.Insert(addr.Virt4K(i+100), pagetable.Level4K, addr.Phys4K(i), 2)
	}
	tl.InvalidateVPID(1)
	for i := uint64(0); i < 10; i++ {
		if _, ok := tl.Lookup(addr.Virt4K(i), 1); ok {
			t.Fatal("VPID 1 entry survived")
		}
		if _, ok := tl.Lookup(addr.Virt4K(i+100), 2); !ok {
			t.Fatal("VPID 2 entry lost")
		}
	}
}

func TestL1EvictionFallsBackToL2(t *testing.T) {
	tl := New(Config{L1Entries: 4, L2Entries: 64})
	for i := uint64(0); i < 8; i++ {
		tl.Insert(addr.Virt4K(i), pagetable.Level4K, addr.Phys4K(i), 1)
	}
	// Entry 0 must have been evicted from L1 (capacity 4) but still be in L2.
	r, ok := tl.Lookup(addr.Virt4K(0), 1)
	if !ok || r.Hit != HitL2 {
		t.Fatalf("want L2 hit, got %+v ok=%v", r, ok)
	}
	// The L2 hit promotes to L1: immediate re-lookup hits L1.
	r, ok = tl.Lookup(addr.Virt4K(0), 1)
	if !ok || r.Hit != HitL1 {
		t.Fatalf("want promoted L1 hit, got %+v ok=%v", r, ok)
	}
}

func TestCapacityBounded(t *testing.T) {
	tl := New(Config{L1Entries: 8, L2Entries: 16})
	for i := uint64(0); i < 1000; i++ {
		tl.Insert(addr.Virt4K(i), pagetable.Level4K, addr.Phys4K(i), 1)
	}
	l1, l2 := tl.Size()
	if l1 > 8 || l2 > 16 {
		t.Fatalf("sizes %d/%d exceed capacity", l1, l2)
	}
}

func TestLRUOrderRespected(t *testing.T) {
	tl := New(Config{L1Entries: 2, L2Entries: 2})
	a, b, c := addr.Virt4K(1), addr.Virt4K(2), addr.Virt4K(3)
	tl.Insert(a, pagetable.Level4K, addr.Phys4K(1), 1)
	tl.Insert(b, pagetable.Level4K, addr.Phys4K(2), 1)
	tl.Lookup(a, 1) // refresh a; b becomes LRU
	tl.Insert(c, pagetable.Level4K, addr.Phys4K(3), 1)
	if _, ok := tl.Lookup(a, 1); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := tl.Lookup(b, 1); ok {
		t.Fatal("LRU entry survived over-capacity insert")
	}
}

func TestFlush(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Insert(addr.Virt4K(1), pagetable.Level4K, addr.Phys4K(1), 1)
	tl.Flush()
	if l1, l2 := tl.Size(); l1 != 0 || l2 != 0 {
		t.Fatalf("sizes after flush %d/%d", l1, l2)
	}
}

func TestStatsAndReset(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Insert(addr.Virt4K(1), pagetable.Level4K, addr.Phys4K(1), 1)
	tl.Lookup(addr.Virt4K(1), 1)
	tl.Lookup(addr.Virt4K(2), 1)
	s := tl.Stats()
	if s.HitsL1 != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Fatalf("MissRate = %v", s.MissRate())
	}
	tl.ResetStats()
	if tl.Stats().Lookups() != 0 {
		t.Fatal("ResetStats did not zero")
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty MissRate should be 0")
	}
}

// Property: after any sequence of inserts/invalidates, a hit always returns
// the most recently inserted frame for that page, and sizes stay bounded.
func TestTLBConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tl := New(Config{L1Entries: 8, L2Entries: 32})
		truth := map[uint64]addr.Phys{} // 4K vpn -> frame (vpid 1 only)
		for step := 0; step < 2000; step++ {
			vpn := r.Uint64n(64)
			v := addr.Virt4K(vpn)
			switch r.Intn(3) {
			case 0:
				p := addr.Phys4K(r.Uint64n(1 << 20))
				tl.Insert(v, pagetable.Level4K, p, 1)
				truth[vpn] = p
			case 1:
				tl.Invalidate(v, 1)
				delete(truth, vpn)
			case 2:
				if res, ok := tl.Lookup(v, 1); ok {
					want, live := truth[vpn]
					if !live || res.Frame != want {
						return false
					}
				}
			}
			l1, l2 := tl.Size()
			if l1 > 8 || l2 > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tl := New(DefaultConfig())
	tl.Insert(addr.Virt2M(1), pagetable.Level2M, addr.Phys2M(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(addr.Virt2M(1)+4096, 1)
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	tl := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Insert(addr.Virt4K(uint64(i)), pagetable.Level4K, addr.Phys4K(uint64(i)), 1)
	}
}
