package core

import (
	"errors"
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/chaos"
	"thermostat/internal/mem"
)

// TestAttemptMoveUniformHandling exercises the shared retry/quarantine
// path that demote, promote, and sink all route through: plain OOM and
// injected faults get identical treatment.
func TestAttemptMoveUniformHandling(t *testing.T) {
	t.Parallel()
	m := testMachine(t)
	g := testGroup(t, nil)
	eng := NewEngine(g, 9)
	mv := &eng.pol.(*ThresholdPolicy).mv
	if err := eng.Attach(m); err != nil {
		t.Fatal(err)
	}
	base := addr.Virt(1 << 40)
	next := func() addr.Virt { base += addr.Virt(addr.PageSize2M); return base }

	// Plain OOM: retried to exhaustion with backoff, then quarantined —
	// never fatal, for demote and promote alike.
	calls := 0
	handled, err := mv.attemptMove(base, func() error { calls++; return mem.ErrOutOfMemory })
	if !handled || err != nil {
		t.Fatalf("OOM exhaustion: handled=%v err=%v", handled, err)
	}
	if calls != defaultMaxAttempts {
		t.Errorf("OOM attempted %d times, want %d", calls, defaultMaxAttempts)
	}
	if !mv.isQuarantined(base) {
		t.Error("exhausted page not quarantined")
	}

	// Transient injected fault: one retry, then success — no quarantine.
	transient := next()
	calls = 0
	handled, err = mv.attemptMove(transient, func() error {
		calls++
		if calls == 1 {
			return &chaos.Fault{Site: chaos.MigrateCopy}
		}
		return nil
	})
	if handled || err != nil || calls != 2 {
		t.Fatalf("transient fault: handled=%v err=%v calls=%d", handled, err, calls)
	}
	if mv.isQuarantined(transient) {
		t.Error("recovered page wrongly quarantined")
	}

	// Permanent injected fault: immediate quarantine, no further attempts.
	perm := next()
	calls = 0
	handled, err = mv.attemptMove(perm, func() error {
		calls++
		return &chaos.Fault{Site: chaos.MigrateCopy, Permanent: true}
	})
	if !handled || err != nil || calls != 1 {
		t.Fatalf("permanent fault: handled=%v err=%v calls=%d", handled, err, calls)
	}
	if !mv.isQuarantined(perm) {
		t.Error("permanently failed page not quarantined")
	}

	// Non-injected, non-OOM errors stay fatal: real bugs must not be
	// absorbed by the degradation machinery.
	boom := errors.New("boom")
	handled, err = mv.attemptMove(next(), func() error { return boom })
	if handled || !errors.Is(err, boom) {
		t.Fatalf("fatal error swallowed: handled=%v err=%v", handled, err)
	}

	st := eng.Stats()
	if want := uint64(defaultMaxAttempts - 1 + 1); st.Retries != want {
		t.Errorf("Retries = %d, want %d", st.Retries, want)
	}
	if st.Quarantined != 2 {
		t.Errorf("Quarantined = %d, want 2", st.Quarantined)
	}
	rep := eng.FaultReport()
	if rep.Retried != st.Retries || rep.Quarantined != st.Quarantined {
		t.Errorf("FaultReport disagrees with Stats: %+v vs %+v", rep, st)
	}
}

// TestQuarantineExpires pins the lazy-expiry contract: a quarantined page
// is skipped for quarantinePeriods sampling periods and eligible again
// afterwards.
func TestQuarantineExpires(t *testing.T) {
	t.Parallel()
	m := testMachine(t)
	g := testGroup(t, nil)
	eng := NewEngine(g, 10)
	mv := &eng.pol.(*ThresholdPolicy).mv
	if err := eng.Attach(m); err != nil {
		t.Fatal(err)
	}
	base := addr.Virt(1 << 40)
	mv.quarantine(base)
	if !mv.isQuarantined(base) {
		t.Fatal("fresh quarantine not in effect")
	}
	if eng.QuarantinedPages() != 1 {
		t.Fatalf("QuarantinedPages = %d", eng.QuarantinedPages())
	}
	for i := uint64(0); i < mv.quarantinePeriods; i++ {
		mv.periods.Inc()
	}
	if mv.isQuarantined(base) {
		t.Error("quarantine outlived its sentence")
	}
	if eng.QuarantinedPages() != 0 {
		t.Error("expired quarantine entry not reaped")
	}
}
