package core

import (
	"errors"
	"fmt"
	"sort"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/chaos"
	"thermostat/internal/kstaled"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
	"thermostat/internal/stats"
	"thermostat/internal/telemetry"
)

// Modeled daemon CPU costs (charged off the application critical path, as
// the paper's kthread runs on spare cores).
const (
	splitCostNs    = 2000
	collapseCostNs = 2000
	poisonCostNs   = 500
	perLeafScanNs  = kstaled.DefaultEntryCostNs
)

// sample tracks one huge page through a sampling cycle.
type sample struct {
	base      addr.Virt
	wasCold   bool
	nAccessed int
	poisoned  []addr.Virt
}

// Stats are the engine's lifetime counters.
type Stats struct {
	// Periods is the number of completed sampling cycles.
	Periods uint64
	// Sampled is the number of huge pages profiled.
	Sampled uint64
	// Demotions and Promotions are page movements; promotions are the
	// §3.5 corrections (mis-classifications or working-set changes).
	// In N-tier hierarchies a promotion moves one tier up; only a page
	// reaching the top tier leaves the cold set.
	Demotions  uint64
	Promotions uint64
	// Sinks counts cold pages moved a further tier down an N-tier
	// hierarchy after staying completely idle (always 0 with two tiers).
	Sinks uint64
	// DemoteFailures counts demotions abandoned because the destination
	// tier was full or the migration kept failing.
	DemoteFailures uint64
	// PromoteFailures counts promotions abandoned the same way.
	PromoteFailures uint64
	// Retries counts migration attempts re-run after a transient failure
	// (destination pressure or an injected chaos fault).
	Retries uint64
	// Quarantined counts pages benched for quarantinePeriods sampling
	// periods after a permanent or repeatedly-failing migration.
	Quarantined uint64
}

// Engine is the Thermostat policy. It implements sim.Policy.
type Engine struct {
	group *cgroup.Group
	r     *rng.PCG
	m     *sim.Machine

	// The sampling cycle is pipelined (Figure 4's three scans overlap
	// across cohorts): every tick classifies the cohort poisoned last
	// tick, poisons the cohort split last tick, and splits a fresh 5%
	// cohort — so a full sample fraction completes every scan interval.
	splitCohort    map[addr.Virt]*sample
	poisonedCohort map[addr.Virt]*sample
	// cold tracks every page below the top tier; in an N-tier hierarchy
	// the page may sit in any lower tier (idleStreak drives it deeper).
	cold     map[addr.Virt]bool
	lastTick int64

	// idleStreak counts consecutive zero-access correction passes per
	// cold page; pages idle for sinkAfterIdleScans passes sink one tier
	// deeper when the hierarchy has more than two tiers.
	idleStreak map[addr.Virt]int

	// seen holds per-page fault-count snapshots so the engine consumes
	// count *deltas* instead of resetting the shared trap — multiple
	// engines (one per cgroup) can then coexist on one machine.
	seen map[addr.Virt]uint64

	// scope, when set, restricts sampling and footprint accounting to the
	// returned address ranges (the engine's cgroup's memory). Nil means
	// the whole address space.
	scope func() []addr.Range

	lastEstimates []Estimate

	// Ablation switches (default on): the §3.2 Accessed-bit pre-filter
	// and the §3.5 mis-classification corrector.
	noPrefilter  bool
	noCorrection bool

	// Migration retry policy: failed moves are retried up to maxAttempts
	// with exponential backoff (charged as daemon time in virtual ns);
	// pages that fail permanently, or keep failing, are quarantined —
	// skipped for quarantinePeriods sampling periods — instead of killing
	// the run.
	maxAttempts       int
	backoffBaseNs     int64
	quarantinePeriods uint64
	// quarUntil maps a quarantined page to the period count at which it
	// becomes eligible again; entries expire lazily.
	quarUntil map[addr.Virt]uint64

	periods         stats.Counter
	sampled         stats.Counter
	demotions       stats.Counter
	promotions      stats.Counter
	sinks           stats.Counter
	demoteFailures  stats.Counter
	promoteFailures stats.Counter
	retries         stats.Counter
	quarantined     stats.Counter
}

// sinkAfterIdleScans is how many consecutive zero-access correction passes
// sink a cold page one tier deeper in an N-tier hierarchy.
const sinkAfterIdleScans = 3

// Default migration retry policy. Backoff doubles per attempt: 50µs, 100µs.
const (
	defaultMaxAttempts       = 3
	defaultBackoffBaseNs     = 50_000
	defaultQuarantinePeriods = 5
)

// NewEngine builds a Thermostat engine drawing parameters from group and
// randomness from seed.
func NewEngine(group *cgroup.Group, seed uint64) *Engine {
	return &Engine{
		group:             group,
		r:                 rng.New(seed),
		splitCohort:       make(map[addr.Virt]*sample),
		poisonedCohort:    make(map[addr.Virt]*sample),
		cold:              make(map[addr.Virt]bool),
		idleStreak:        make(map[addr.Virt]int),
		seen:              make(map[addr.Virt]uint64),
		maxAttempts:       defaultMaxAttempts,
		backoffBaseNs:     defaultBackoffBaseNs,
		quarantinePeriods: defaultQuarantinePeriods,
		quarUntil:         make(map[addr.Virt]uint64),
	}
}

// SetRetryPolicy overrides the migration retry/quarantine parameters (for
// tests and experiments). maxAttempts < 1 is clamped to 1.
func (e *Engine) SetRetryPolicy(maxAttempts int, backoffBaseNs int64, quarantinePeriods uint64) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	e.maxAttempts = maxAttempts
	e.backoffBaseNs = backoffBaseNs
	e.quarantinePeriods = quarantinePeriods
}

// SetPrefilter enables or disables the §3.2 two-step refinement: with the
// pre-filter off, the sampler poisons K uniformly random children instead
// of K random *accessed* children and scales estimates by the full 512 —
// the naive strategy the paper rejects because sparse hot children are
// easily missed. For ablation studies.
func (e *Engine) SetPrefilter(on bool) { e.noPrefilter = !on }

// SetCorrection enables or disables the §3.5 corrector. For ablation
// studies: without it, mis-classified pages stay in slow memory until
// resampled, and slowdown is unbounded under working-set changes.
func (e *Engine) SetCorrection(on bool) { e.noCorrection = !on }

// SetScope restricts the engine to the address ranges returned by provider
// — its cgroup's memory — so several engines can manage disjoint tenants on
// one machine. The provider is consulted at every scan (ranges may grow).
func (e *Engine) SetScope(provider func() []addr.Range) { e.scope = provider }

// inScope reports whether a page base falls in the engine's scope.
func (e *Engine) inScope(base addr.Virt, ranges []addr.Range) bool {
	if ranges == nil {
		return true
	}
	for _, r := range ranges {
		if r.Contains(base) {
			return true
		}
	}
	return false
}

// scopeRanges returns the current scope (nil = everything).
func (e *Engine) scopeRanges() []addr.Range {
	if e.scope == nil {
		return nil
	}
	return e.scope()
}

// delta returns the page's fault-count increase since this engine last
// looked, without disturbing the shared trap state. base is always the base
// address of a currently-mapped leaf (a cold huge page or a split child), so
// the trap's CountLeaf fast path applies.
func (e *Engine) delta(base addr.Virt) uint64 {
	c := e.m.Trap().CountLeaf(base)
	d := c - e.seen[base]
	e.seen[base] = c
	return d
}

// snapshot records the page's current count as already-consumed, so the
// next delta covers only events from now on.
func (e *Engine) snapshot(base addr.Virt) {
	e.seen[base] = e.m.Trap().CountLeaf(base)
}

// Name implements sim.Policy.
func (e *Engine) Name() string { return "thermostat" }

// IntervalNs implements sim.Policy: one tick per scan interval.
func (e *Engine) IntervalNs() int64 { return e.group.Params().SamplePeriodNs }

// Attach implements sim.Policy.
func (e *Engine) Attach(m *sim.Machine) error {
	e.m = m
	e.lastTick = m.Clock()
	return nil
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Periods:         e.periods.Value(),
		Sampled:         e.sampled.Value(),
		Demotions:       e.demotions.Value(),
		Promotions:      e.promotions.Value(),
		Sinks:           e.sinks.Value(),
		DemoteFailures:  e.demoteFailures.Value(),
		PromoteFailures: e.promoteFailures.Value(),
		Retries:         e.retries.Value(),
		Quarantined:     e.quarantined.Value(),
	}
}

// FaultReport implements sim.FaultReporter: the machine's injector and
// rollback counts plus this engine's retry/quarantine handling.
func (e *Engine) FaultReport() chaos.Report {
	var r chaos.Report
	if e.m != nil {
		r = e.m.FaultReport()
	}
	r.Retried = e.retries.Value()
	r.Quarantined = e.quarantined.Value()
	return r
}

// QuarantinedPages returns the number of pages currently serving a
// quarantine sentence (including lazily-unexpired entries).
func (e *Engine) QuarantinedPages() int { return len(e.quarUntil) }

// ColdPages returns the number of huge pages currently placed in slow
// memory by the engine.
func (e *Engine) ColdPages() int { return len(e.cold) }

// IsCold implements sim.ColdChecker: it reports whether the engine has
// classified the 2MB page at base cold (any tier below the top). The
// telemetry layer uses it for the confusion matrix against LLC ground truth.
func (e *Engine) IsCold(base addr.Virt) bool { return e.cold[base] }

// InflightPages returns the number of huge pages currently split for
// sampling (both pipeline cohorts).
func (e *Engine) InflightPages() int { return len(e.splitCohort) + len(e.poisonedCohort) }

// LastEstimates returns the rate estimates from the most recent classify
// scan (for inspection and the Figure 2 style analyses).
func (e *Engine) LastEstimates() []Estimate {
	return append([]Estimate(nil), e.lastEstimates...)
}

// Tick implements sim.Policy: runs the corrector, then the current scan
// phase of the sampling cycle.
func (e *Engine) Tick(m *sim.Machine, now int64) error {
	if m != e.m {
		return fmt.Errorf("core: engine ticked on a different machine")
	}
	interval := float64(now-e.lastTick) / 1e9
	if interval <= 0 {
		interval = float64(e.group.Params().SamplePeriodNs) / 1e9
	}

	if err := e.correct(interval); err != nil {
		return err
	}
	// Pipeline order: consume this interval's fault counts (classify),
	// then arm poisons for the next interval, then split a fresh cohort
	// whose Accessed bits accumulate over the next interval.
	if err := e.scanClassify(interval); err != nil {
		return err
	}
	if err := e.scanPoison(); err != nil {
		return err
	}
	if err := e.scanSplit(); err != nil {
		return err
	}
	e.periods.Inc()
	e.lastTick = now
	return nil
}

// correct implements §3.5: measure every (non-inflight) cold page's access
// rate from its poison-fault count and promote the hottest pages one tier
// up until the aggregate is back under the target rate. In hierarchies
// deeper than the paper's two tiers, it additionally sinks persistently
// idle cold pages one tier further down.
func (e *Engine) correct(intervalSec float64) error {
	if e.noCorrection || len(e.cold) == 0 {
		return nil
	}
	measured := make([]Measured, 0, len(e.cold))
	for base := range e.cold {
		if e.inflight(base) {
			continue // being re-sampled; counted at classify
		}
		d := e.delta(base)
		if e.isQuarantined(base) {
			// The delta is still consumed, so when the sentence expires
			// the measured rate covers one interval, not the whole bench.
			continue
		}
		measured = append(measured, Measured{
			Base: base,
			Rate: float64(d) / intervalSec,
		})
	}
	// Canonical order so equal-rate ties break deterministically (map
	// iteration order must not leak into placement decisions).
	sort.Slice(measured, func(i, j int) bool { return measured[i].Base < measured[j].Base })
	target := e.group.Params().TargetSlowAccessRate()
	promos := SelectPromotions(measured, target)
	if rec := e.m.Recorder(); rec != nil && len(promos) > 0 {
		rates := make(map[addr.Virt]float64, len(measured))
		for _, c := range measured {
			rates[c.Base] = c.Rate
		}
		for _, base := range promos {
			rec.Event(telemetry.Event{
				Kind: telemetry.KindClassified, TimeNs: e.m.Clock(),
				Page: base, Rate: rates[base], Cold: false,
			})
		}
	}
	for _, base := range promos {
		if err := e.promote(base); err != nil {
			return err
		}
	}
	if e.m.Memory().NumTiers() > 2 {
		return e.sink(measured)
	}
	return nil
}

// sink implements the N-tier extension of the placement rule: a cold page
// measured completely idle for sinkAfterIdleScans consecutive correction
// passes moves one tier further down, freeing the warmer tier for pages
// with some residual access rate. Never reached with two tiers.
func (e *Engine) sink(measured []Measured) error {
	for _, c := range measured {
		if _, stillCold := e.cold[c.Base]; !stillCold {
			continue // promoted to the top tier this pass
		}
		if c.Rate > 0 {
			delete(e.idleStreak, c.Base)
			continue
		}
		e.idleStreak[c.Base]++
		if e.idleStreak[c.Base] < sinkAfterIdleScans {
			continue
		}
		tier, err := e.m.Migrator().TierOfPage(c.Base)
		if err != nil {
			return err
		}
		if tier >= e.m.Memory().Bottom() {
			continue // nowhere deeper to go
		}
		handled, err := e.attemptMove(c.Base, func() error {
			_, err := e.m.Demote(c.Base)
			return err
		})
		if err != nil {
			return err
		}
		if handled {
			e.demoteFailures.Inc()
			continue
		}
		e.idleStreak[c.Base] = 0
		e.snapshot(c.Base)
		e.sinks.Inc()
	}
	return nil
}

// promote moves a cold huge page one tier up the hierarchy. A page
// reaching the top (fast) tier stops being monitored; in deeper
// hierarchies a page promoted into an intermediate tier stays in the cold
// set and keeps its poison-based monitoring. Failures take the same
// retry/quarantine path as demotions — a full fast tier degrades the
// correction, it no longer kills the run.
func (e *Engine) promote(base addr.Virt) error {
	handled, err := e.attemptMove(base, func() error {
		_, err := e.m.Promote(base)
		return err
	})
	if err != nil {
		return err
	}
	if handled {
		e.promoteFailures.Inc()
		return nil
	}
	e.promotions.Inc()
	if tier, err := e.m.Migrator().TierOfPage(base); err == nil && tier != mem.Fast {
		e.snapshot(base)
		return nil
	}
	delete(e.cold, base)
	delete(e.idleStreak, base)
	return nil
}

// quarantine benches base for quarantinePeriods sampling periods: no
// placement decision (demote, promote, sink) will touch it until the
// sentence expires.
func (e *Engine) quarantine(base addr.Virt) {
	e.quarUntil[base] = e.periods.Value() + e.quarantinePeriods
	e.quarantined.Inc()
}

// isQuarantined reports whether base is still benched; expired sentences are
// dropped lazily.
func (e *Engine) isQuarantined(base addr.Virt) bool {
	until, ok := e.quarUntil[base]
	if !ok {
		return false
	}
	if e.periods.Value() >= until {
		delete(e.quarUntil, base)
		return false
	}
	return true
}

// attemptMove runs op — one demote or promote of base — under the retry
// policy: up to maxAttempts tries, with exponential backoff charged as
// daemon time (the kthread burning virtual CPU off the critical path, like
// the kernel's migrate_pages retry loop). Retryable failures are simulated
// destination pressure (mem.ErrOutOfMemory) and injected transient faults;
// anything else is a programming error and propagates. A permanent fault, or
// attempts running out, quarantines the page and returns handled=true — the
// caller records the failure and moves on instead of killing the run.
func (e *Engine) attemptMove(base addr.Virt, op func() error) (handled bool, err error) {
	backoff := e.backoffBaseNs
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil {
			return false, nil
		}
		fault, injected := chaos.AsFault(err)
		if injected {
			if rec := e.m.Recorder(); rec != nil {
				rec.Event(telemetry.Event{
					Kind: telemetry.KindChaosFault, TimeNs: e.m.Clock(),
					Page: base, Count: uint64(attempt),
					Site: uint8(fault.Site), Permanent: fault.Permanent,
				})
			}
		}
		if !injected && !errors.Is(err, mem.ErrOutOfMemory) {
			return false, err
		}
		if (injected && fault.Permanent) || attempt >= e.maxAttempts {
			e.quarantine(base)
			return true, nil
		}
		e.retries.Inc()
		e.m.ChargeDaemon(backoff)
		backoff *= 2
	}
}

// inflight reports whether base is in either sampling cohort.
func (e *Engine) inflight(base addr.Virt) bool {
	if _, ok := e.splitCohort[base]; ok {
		return true
	}
	_, ok := e.poisonedCohort[base]
	return ok
}

// scanSplit selects a random sampleFraction of all huge pages — hot or cold,
// the sampler is agnostic (§3.2) — and splits them so their 4KB children can
// be profiled individually. Pages already mid-pipeline are excluded.
func (e *Engine) scanSplit() error {
	pt := e.m.PageTable()
	ranges := e.scopeRanges()
	var candidates []addr.Virt
	pt.Scan(func(base addr.Virt, entry *pagetable.Entry, lvl pagetable.Level) {
		if lvl == pagetable.Level2M && !e.inflight(base) && e.inScope(base, ranges) {
			candidates = append(candidates, base)
		}
	})
	var daemon int64 = int64(len(candidates)) * perLeafScanNs
	if len(candidates) == 0 {
		e.m.ChargeDaemon(daemon)
		return nil
	}
	f := e.group.Params().SampleFraction
	n := int(f * float64(len(candidates)))
	if n < 1 {
		n = 1
	}
	rec := e.m.Recorder()
	for _, idx := range e.r.Sample(len(candidates), n) {
		base := candidates[idx]
		if err := pt.Split(base); err != nil {
			return fmt.Errorf("core: split %s: %w", base, err)
		}
		// Splitting replaced the 2MB translation with 4KB ones; drop the
		// stale huge-grain TLB entry.
		e.m.TLB().Invalidate(base, e.m.VPID())
		e.splitCohort[base] = &sample{base: base, wasCold: e.cold[base]}
		e.sampled.Inc()
		if rec != nil {
			rec.Event(telemetry.Event{
				Kind: telemetry.KindHugePageSplit, TimeNs: e.m.Clock(), Page: base,
			})
			rec.Event(telemetry.Event{
				Kind: telemetry.KindPageSampled, TimeNs: e.m.Clock(),
				Page: base, Cold: e.cold[base],
			})
		}
		daemon += splitCostNs
	}
	e.m.ChargeDaemon(daemon)
	return nil
}

// scanPoison runs the §3.2 two-step refinement for each sampled page: read
// the hardware-maintained Accessed bits of all 512 children to find those
// with non-zero access rate, then poison a random subset of at most K of
// them for precise fault-based counting.
//
// Pages that were already cold need no subset selection: their children
// inherited the poison bit from the cold page's PMD at split time, so every
// access is already being counted.
func (e *Engine) scanPoison() error {
	trap := e.m.Trap()
	k := e.group.Params().MaxPoisonPerHuge
	var daemon int64
	for _, s := range e.splitCohort {
		daemon += int64(addr.PagesPerHuge) * perLeafScanNs
		if s.wasCold {
			s.nAccessed = addr.PagesPerHuge
			s.poisoned = nil // estimate uses the whole-region fault count
			// Counting starts now: absorb events from the split interval.
			for i := 0; i < addr.PagesPerHuge; i++ {
				e.snapshot(s.base + addr.Virt(uint64(i)*addr.PageSize4K))
			}
			continue
		}
		var accessed []int
		if e.noPrefilter {
			// Naive strategy (ablation): all children are candidates and
			// the estimate scales by the full 512.
			accessed = make([]int, addr.PagesPerHuge)
			for i := range accessed {
				accessed[i] = i
			}
		} else {
			accessed = kstaled.AccessedSubpages(e.m.PageTable(), s.base)
		}
		s.nAccessed = len(accessed)
		if s.nAccessed == 0 {
			continue
		}
		nPoison := k
		if nPoison > s.nAccessed {
			nPoison = s.nAccessed
		}
		for _, pick := range e.r.Sample(s.nAccessed, nPoison) {
			child := s.base + addr.Virt(uint64(accessed[pick])*addr.PageSize4K)
			if err := trap.Poison(child, e.m.VPID()); err != nil {
				return err
			}
			e.snapshot(child)
			s.poisoned = append(s.poisoned, child)
			daemon += poisonCostNs
		}
	}
	// Advance the cohort down the pipeline.
	for base, s := range e.splitCohort {
		e.poisonedCohort[base] = s
	}
	e.splitCohort = make(map[addr.Virt]*sample)
	e.m.ChargeDaemon(daemon)
	return nil
}

// scanClassify estimates each sampled page's access rate, places the coldest
// sampled pages into slow memory under the fraction-scaled budget (§3.4),
// and restores every sampled page to a huge mapping.
func (e *Engine) scanClassify(intervalSec float64) error {
	p := e.group.Params()

	var fastEsts []Estimate
	var daemon int64
	for _, s := range e.poisonedCohort {
		var rate float64
		if s.wasCold {
			// Whole region was poisoned: total faults are the estimate.
			var faults uint64
			for i := 0; i < addr.PagesPerHuge; i++ {
				faults += e.delta(s.base + addr.Virt(uint64(i)*addr.PageSize4K))
			}
			rate = float64(faults) / intervalSec
		} else {
			var faults uint64
			for _, child := range s.poisoned {
				faults += e.delta(child)
			}
			rate = ScaleEstimate(faults, intervalSec, s.nAccessed, len(s.poisoned))
			fastEsts = append(fastEsts, Estimate{Base: s.base, Rate: rate})
		}
		daemon += int64(addr.PagesPerHuge) * perLeafScanNs
	}
	sort.Slice(fastEsts, func(i, j int) bool { return fastEsts[i].Base < fastEsts[j].Base })
	e.lastEstimates = fastEsts

	// Restore all sampled pages to huge mappings.
	for _, s := range e.poisonedCohort {
		if err := e.restore(s); err != nil {
			return err
		}
		daemon += collapseCostNs
	}

	// Demote the coldest of this period's fast-tier samples. Quarantined
	// pages are not placement candidates while their sentence runs.
	budget := p.SampleFraction * p.TargetSlowAccessRate()
	eligible := fastEsts
	if len(e.quarUntil) > 0 {
		eligible = make([]Estimate, 0, len(fastEsts))
		for _, est := range fastEsts {
			if !e.isQuarantined(est.Base) {
				eligible = append(eligible, est)
			}
		}
	}
	coldSet := SelectColdSet(eligible, budget)
	if rec := e.m.Recorder(); rec != nil && len(fastEsts) > 0 {
		chosen := make(map[addr.Virt]bool, len(coldSet))
		for _, base := range coldSet {
			chosen[base] = true
		}
		for _, est := range fastEsts {
			rec.Event(telemetry.Event{
				Kind: telemetry.KindClassified, TimeNs: e.m.Clock(),
				Page: est.Base, Rate: est.Rate, Cold: chosen[est.Base],
			})
		}
	}
	for _, base := range coldSet {
		if err := e.demote(base); err != nil {
			return err
		}
	}
	e.poisonedCohort = make(map[addr.Virt]*sample)
	e.m.ChargeDaemon(daemon)
	return nil
}

// restore collapses a sampled page back to a 2MB mapping, clearing child
// poisons first and re-arming PMD-grain monitoring if the page is cold.
func (e *Engine) restore(s *sample) error {
	pt := e.m.PageTable()
	region := addr.NewRange(s.base, addr.PageSize2M)
	if n := pt.ClearFlagsRange(region, pagetable.Poisoned); n != addr.PagesPerHuge {
		return fmt.Errorf("core: sampled children of %s vanished (%d of %d left)",
			s.base, n, addr.PagesPerHuge)
	}
	if err := pt.Collapse(s.base); err != nil {
		return fmt.Errorf("core: collapse %s: %w", s.base, err)
	}
	e.m.TLB().Invalidate(s.base, e.m.VPID())
	if rec := e.m.Recorder(); rec != nil {
		rec.Event(telemetry.Event{
			Kind: telemetry.KindHugePageCollapse, TimeNs: e.m.Clock(), Page: s.base,
		})
	}
	if e.cold[s.base] {
		if err := e.m.Trap().Poison(s.base, e.m.VPID()); err != nil {
			return err
		}
		e.snapshot(s.base)
	}
	return nil
}

// demote moves a classified-cold huge page to slow memory; the machine arms
// PMD-grain monitoring (which doubles as the slow-memory emulation).
// Failures — destination pressure or injected faults — are retried and then
// quarantined rather than aborting the run.
func (e *Engine) demote(base addr.Virt) error {
	handled, err := e.attemptMove(base, func() error {
		_, err := e.m.Demote(base)
		return err
	})
	if err != nil {
		return err
	}
	if handled {
		e.demoteFailures.Inc()
		return nil
	}
	e.snapshot(base)
	e.cold[base] = true
	e.demotions.Inc()
	return nil
}

// Footprint implements sim.Policy: classify every mapped leaf by backing
// tier and grain.
func (e *Engine) Footprint(m *sim.Machine) sim.Footprint {
	return sim.ScanFootprint(m, e.scopeRanges())
}
