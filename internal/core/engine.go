package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/chaos"
	"thermostat/internal/sim"
	"thermostat/internal/stats"
)

// Stats are the engine's lifetime counters.
type Stats struct {
	// Periods is the number of completed sampling cycles.
	Periods uint64
	// Sampled is the number of huge pages profiled.
	Sampled uint64
	// Demotions and Promotions are page movements; promotions are the
	// §3.5 corrections (mis-classifications or working-set changes).
	// In N-tier hierarchies a promotion moves one tier up; only a page
	// reaching the top tier leaves the cold set.
	Demotions  uint64
	Promotions uint64
	// Sinks counts cold pages moved a further tier down an N-tier
	// hierarchy after staying completely idle (always 0 with two tiers).
	Sinks uint64
	// DemoteFailures counts demotions abandoned because the destination
	// tier was full or the migration kept failing.
	DemoteFailures uint64
	// PromoteFailures counts promotions abandoned the same way.
	PromoteFailures uint64
	// Retries counts migration attempts re-run after a transient failure
	// (destination pressure or an injected chaos fault).
	Retries uint64
	// Quarantined counts pages benched for quarantinePeriods sampling
	// periods after a permanent or repeatedly-failing migration.
	Quarantined uint64
}

// Engine drives one Tracker × Policy composition as a sim.Policy. Each tick
// runs the fixed phase order
//
//	Policy.Correct → Tracker.Estimates → Policy.Place → Tracker.Arm →
//	Policy.EndPeriod
//
// which for the poison tracker + threshold policy replays the monolithic
// Thermostat engine's correct → classify → poison → split cycle exactly.
type Engine struct {
	group *cgroup.Group
	m     *sim.Machine
	tr    Tracker
	pol   Policy

	name     string
	lastTick int64

	// frozen, when set, puts the engine in quarantine-only mode: ticks
	// keep tracking (estimate + arm) but run no placements and no
	// corrections, so no new migrations start. The daemon's degradation
	// ladder flips it, always from the simulation goroutine at an epoch
	// boundary.
	frozen bool

	lastEstimates []Estimate

	periods stats.Counter

	// pub is the engine's published observability census (see census.go);
	// publish is flipped once before the run starts and read on every tick.
	pub     censusPub
	publish atomic.Bool
}

// Compose builds an engine from a tracker and a policy. The display name is
// "<tracker>+<policy>".
func Compose(group *cgroup.Group, tr Tracker, pol Policy) *Engine {
	return &Engine{
		group: group,
		tr:    tr,
		pol:   pol,
		name:  tr.Name() + "+" + pol.Name(),
	}
}

// NewEngine builds the Thermostat engine — the poison tracker composed with
// the slowdown-threshold policy — drawing parameters from group and
// randomness from seed.
func NewEngine(group *cgroup.Group, seed uint64) *Engine {
	e := Compose(group, NewPoisonTracker(group, seed), NewThresholdPolicy())
	e.name = "thermostat"
	return e
}

// ComposeByName builds an engine from registry names (see TrackerNames and
// PolicyNames).
func ComposeByName(group *cgroup.Group, tracker, policy string, seed uint64) (*Engine, error) {
	tr, err := NewTrackerByName(tracker, group, seed)
	if err != nil {
		return nil, err
	}
	pol, err := NewPolicyByName(policy)
	if err != nil {
		return nil, err
	}
	return Compose(group, tr, pol), nil
}

// Tracker returns the composed tracker (for configuration and inspection).
func (e *Engine) Tracker() Tracker { return e.tr }

// Group returns the cgroup the engine draws its parameters from.
func (e *Engine) Group() *cgroup.Group { return e.group }

// Policy returns the composed placement policy.
func (e *Engine) Policy() Policy { return e.pol }

// SetRetryPolicy overrides the migration retry/quarantine parameters (for
// tests and experiments) when the composed policy supports them.
// maxAttempts < 1 is clamped to 1.
func (e *Engine) SetRetryPolicy(maxAttempts int, backoffBaseNs int64, quarantinePeriods uint64) {
	if rp, ok := e.pol.(interface {
		SetRetryPolicy(int, int64, uint64)
	}); ok {
		rp.SetRetryPolicy(maxAttempts, backoffBaseNs, quarantinePeriods)
	}
}

// SetPrefilter enables or disables the poison tracker's §3.2 Accessed-bit
// pre-filter (a no-op for trackers without one). For ablation studies.
func (e *Engine) SetPrefilter(on bool) {
	if pf, ok := e.tr.(interface{ SetPrefilter(bool) }); ok {
		pf.SetPrefilter(on)
	}
}

// SetCorrection enables or disables the policy's mis-classification
// corrector (a no-op for policies without one). For ablation studies.
func (e *Engine) SetCorrection(on bool) {
	if c, ok := e.pol.(interface{ SetCorrection(bool) }); ok {
		c.SetCorrection(on)
	}
}

// SetSharding partitions the composed tracker's scans into shards contiguous
// chunks of the page-table's region sequence, collected on up to workers
// goroutines, when the tracker supports it (a no-op for the rest). The
// shard merge is in shard-index order and every rng draw happens after the
// merge, so any setting — including the serial default — produces
// bit-identical runs.
func (e *Engine) SetSharding(shards, workers int) {
	if sh, ok := e.tr.(interface{ SetSharding(int, int) }); ok {
		sh.SetSharding(shards, workers)
	}
}

// StateBytes reports the engine's own resident metadata — tracker and policy
// state, when they account for it. The machine's page table, allocator and
// trap state are counted separately by sim.Machine.StateBytes; together the
// two are the scaling benchmark's state-bytes numerator.
func (e *Engine) StateBytes() uint64 {
	var b uint64
	if sb, ok := e.tr.(interface{ StateBytes() uint64 }); ok {
		b += sb.StateBytes()
	}
	if sb, ok := e.pol.(interface{ StateBytes() uint64 }); ok {
		b += sb.StateBytes()
	}
	return b
}

// SetScope restricts the engine to the address ranges returned by provider
// — its cgroup's memory — so several engines can manage disjoint tenants on
// one machine. The provider is consulted at every scan (ranges may grow).
func (e *Engine) SetScope(provider func() []addr.Range) {
	e.tr.SetScope(provider)
	e.pol.SetScope(provider)
}

// SetFrozen switches quarantine-only mode on or off: a frozen engine still
// samples, estimates and expires quarantine sentences every tick, but skips
// the Correct and Place phases entirely, so no migration — demotion,
// promotion, sink or correction — can start. Must be called from the
// simulation goroutine (tick hooks qualify).
func (e *Engine) SetFrozen(on bool) { e.frozen = on }

// Frozen reports whether the engine is in quarantine-only mode.
func (e *Engine) Frozen() bool { return e.frozen }

// Name implements sim.Policy.
func (e *Engine) Name() string { return e.name }

// IntervalNs implements sim.Policy: one tick per scan interval.
func (e *Engine) IntervalNs() int64 { return e.group.Params().SamplePeriodNs }

// Attach implements sim.Policy.
func (e *Engine) Attach(m *sim.Machine) error {
	e.m = m
	e.lastTick = m.Clock()
	if err := e.tr.Attach(m, e.pol); err != nil {
		return err
	}
	return e.pol.Attach(m, e.group, e.tr)
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	ps := e.pol.PlacementStats()
	return Stats{
		Periods:         e.periods.Value(),
		Sampled:         e.tr.Sampled(),
		Demotions:       ps.Demotions,
		Promotions:      ps.Promotions,
		Sinks:           ps.Sinks,
		DemoteFailures:  ps.DemoteFailures,
		PromoteFailures: ps.PromoteFailures,
		Retries:         ps.Retries,
		Quarantined:     ps.Quarantined,
	}
}

// FaultReport implements sim.FaultReporter: the machine's injector and
// rollback counts plus the policy's retry/quarantine handling.
func (e *Engine) FaultReport() chaos.Report {
	var r chaos.Report
	if e.m != nil {
		r = e.m.FaultReport()
	}
	ps := e.pol.PlacementStats()
	r.Retried = ps.Retries
	r.Quarantined = ps.Quarantined
	return r
}

// QuarantinedPages returns the number of pages currently serving a
// quarantine sentence (including lazily-unexpired entries), when the
// composed policy quarantines at all.
func (e *Engine) QuarantinedPages() int {
	if q, ok := e.pol.(interface{ QuarantinedPages() int }); ok {
		return q.QuarantinedPages()
	}
	return 0
}

// ActiveQuarantinedPages returns the pages whose quarantine sentence is
// still running — lazily-unexpired entries excluded. While the engine is
// frozen nothing queries (and thus expires) the bench, so this is the
// signal for "quarantine pressure persists" as distinct from "stale
// bookkeeping remains".
func (e *Engine) ActiveQuarantinedPages() int {
	if q, ok := e.pol.(interface{ ActiveQuarantinedPages() int }); ok {
		return q.ActiveQuarantinedPages()
	}
	return 0
}

// ColdPages returns the number of huge pages currently placed in slow
// memory by the engine.
func (e *Engine) ColdPages() int { return e.pol.ColdPages() }

// IsCold implements sim.ColdChecker: it reports whether the engine has
// classified the 2MB page at base cold (any tier below the top). The
// telemetry layer uses it for the confusion matrix against LLC ground truth.
func (e *Engine) IsCold(base addr.Virt) bool { return e.pol.IsCold(base) }

// InflightPages returns the number of huge pages currently mid-sample, for
// trackers with a sampling pipeline (0 for the rest).
func (e *Engine) InflightPages() int {
	if f, ok := e.tr.(interface{ InflightPages() int }); ok {
		return f.InflightPages()
	}
	return 0
}

// LastEstimates returns the rate estimates from the most recent classify
// scan (for inspection and the Figure 2 style analyses).
func (e *Engine) LastEstimates() []Estimate {
	return append([]Estimate(nil), e.lastEstimates...)
}

// MeasuredColdRate returns the aggregate measured access rate to the cold
// set from the policy's most recent correction pass, in accesses/sec (0 for
// policies that do not measure one). Multiplied by the slow-memory latency
// this is the engine's own §3.4 estimate of the slowdown it is inflicting —
// the per-tenant SLO-feedback signal the fleet arbiter consumes.
func (e *Engine) MeasuredColdRate() float64 {
	if cm, ok := e.pol.(interface{ MeasuredColdRate() float64 }); ok {
		return cm.MeasuredColdRate()
	}
	return 0
}

// EstimatedSlowdownPct converts the measured cold-access rate into the
// paper's slowdown estimate: rate × ts, as a percentage of execution time.
func (e *Engine) EstimatedSlowdownPct() float64 {
	ts := float64(e.group.Params().SlowMemLatencyNs) * 1e-9
	return e.MeasuredColdRate() * ts * 100
}

// QuarantinedBases returns the currently-quarantined page bases in address
// order, when the composed policy quarantines at all. Pure inspection.
func (e *Engine) QuarantinedBases() []addr.Virt {
	if q, ok := e.pol.(interface{ QuarantinedBases() []addr.Virt }); ok {
		return q.QuarantinedBases()
	}
	return nil
}

// capacityDemoter is the optional Policy extension Squeeze rides on: demote
// one specific top-tier page through the policy's own placement machinery.
type capacityDemoter interface {
	DemoteForCapacity(base addr.Virt) (bool, error)
}

// Squeeze demotes the coldest estimated top-tier pages until at least
// maxBytes of top-tier memory has been released (or candidates run out) —
// the fleet arbiter's enforcement hook when a tenant's DRAM grant shrinks
// below its residency. Candidates come from the most recent classify scan,
// coldest first with address-order ties, skipping pages already below the
// top tier; each demotion runs the policy's normal retry/quarantine path
// and lands in the cold set, so the §3.5 corrector can undo a squeeze that
// turns out too aggressive. Returns the bytes actually released.
func (e *Engine) Squeeze(maxBytes uint64) (uint64, error) {
	cd, ok := e.pol.(capacityDemoter)
	if !ok || maxBytes == 0 || len(e.lastEstimates) == 0 {
		return 0, nil
	}
	cands := make([]Estimate, 0, len(e.lastEstimates))
	for _, est := range e.lastEstimates {
		if !e.pol.IsCold(est.Base) {
			cands = append(cands, est)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Rate != cands[j].Rate {
			return cands[i].Rate < cands[j].Rate
		}
		return cands[i].Base < cands[j].Base
	})
	var freed uint64
	for _, c := range cands {
		if freed >= maxBytes {
			break
		}
		moved, err := cd.DemoteForCapacity(c.Base)
		if err != nil {
			return freed, err
		}
		if moved {
			freed += addr.PageSize2M
		}
	}
	return freed, nil
}

// Tick implements sim.Policy: one sampling period of the composition.
func (e *Engine) Tick(m *sim.Machine, now int64) error {
	if m != e.m {
		return fmt.Errorf("core: engine ticked on a different machine")
	}
	interval := float64(now-e.lastTick) / 1e9
	if interval <= 0 {
		interval = float64(e.group.Params().SamplePeriodNs) / 1e9
	}

	// Correct first so mis-classified pages come back before new demotions
	// compete for slow-tier capacity; then consume this interval's
	// estimates, place, and arm tracking for the next interval. In
	// quarantine-only mode both migration phases are skipped: tracking
	// stays warm so recovery has fresh estimates, but no page moves.
	if !e.frozen {
		if err := e.pol.Correct(interval); err != nil {
			return err
		}
	}
	ests, err := e.tr.Estimates(interval)
	if err != nil {
		return err
	}
	e.lastEstimates = ests
	if !e.frozen {
		if err := e.pol.Place(ests); err != nil {
			return err
		}
	}
	if err := e.tr.Arm(); err != nil {
		return err
	}
	e.pol.EndPeriod()
	e.periods.Inc()
	e.lastTick = now
	if e.publish.Load() {
		e.publishCensus(now)
	}
	return nil
}

// Footprint implements sim.Policy: classify every mapped leaf by backing
// tier and grain.
func (e *Engine) Footprint(m *sim.Machine) sim.Footprint {
	return e.pol.Footprint(m)
}
