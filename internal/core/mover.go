package core

import (
	"errors"
	"sort"

	"thermostat/internal/addr"
	"thermostat/internal/chaos"
	"thermostat/internal/mem"
	"thermostat/internal/sim"
	"thermostat/internal/stats"
	"thermostat/internal/telemetry"
)

// Default migration retry policy. Backoff doubles per attempt: 50µs, 100µs.
const (
	defaultMaxAttempts       = 3
	defaultBackoffBaseNs     = 50_000
	defaultQuarantinePeriods = 5
)

// mover is the migration machinery shared by placement policies: every move
// goes through the retry/backoff/quarantine protocol, and the mover owns
// the lifetime placement counters (PlacementStats).
type mover struct {
	m *sim.Machine

	// Migration retry policy: failed moves are retried up to maxAttempts
	// with exponential backoff (charged as daemon time in virtual ns);
	// pages that fail permanently, or keep failing, are quarantined —
	// skipped for quarantinePeriods sampling periods — instead of killing
	// the run.
	maxAttempts       int
	backoffBaseNs     int64
	quarantinePeriods uint64
	// quarUntil maps a quarantined page to the period count at which it
	// becomes eligible again; entries expire lazily.
	quarUntil map[addr.Virt]uint64

	// periods counts completed sampling periods; quarantine sentences are
	// measured against it.
	periods stats.Counter

	demotions       stats.Counter
	promotions      stats.Counter
	sinks           stats.Counter
	demoteFailures  stats.Counter
	promoteFailures stats.Counter
	retries         stats.Counter
	quarantined     stats.Counter
}

// newMover returns a mover with the default retry policy.
func newMover() mover {
	return mover{
		maxAttempts:       defaultMaxAttempts,
		backoffBaseNs:     defaultBackoffBaseNs,
		quarantinePeriods: defaultQuarantinePeriods,
		quarUntil:         make(map[addr.Virt]uint64),
	}
}

// setRetryPolicy overrides the migration retry/quarantine parameters.
// maxAttempts < 1 is clamped to 1.
func (v *mover) setRetryPolicy(maxAttempts int, backoffBaseNs int64, quarantinePeriods uint64) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	v.maxAttempts = maxAttempts
	v.backoffBaseNs = backoffBaseNs
	v.quarantinePeriods = quarantinePeriods
}

// endPeriod advances the quarantine clock by one sampling period.
func (v *mover) endPeriod() { v.periods.Inc() }

// stats snapshots the lifetime placement counters.
func (v *mover) stats() PlacementStats {
	return PlacementStats{
		Demotions:       v.demotions.Value(),
		Promotions:      v.promotions.Value(),
		Sinks:           v.sinks.Value(),
		DemoteFailures:  v.demoteFailures.Value(),
		PromoteFailures: v.promoteFailures.Value(),
		Retries:         v.retries.Value(),
		Quarantined:     v.quarantined.Value(),
	}
}

// quarantine benches base for quarantinePeriods sampling periods: no
// placement decision (demote, promote, sink) will touch it until the
// sentence expires.
func (v *mover) quarantine(base addr.Virt) {
	v.quarUntil[base] = v.periods.Value() + v.quarantinePeriods
	v.quarantined.Inc()
}

// quarantinedBases returns the benched page bases in address order,
// including lazily-unexpired sentences (no machine or quarantine state is
// touched — pure inspection).
func (v *mover) quarantinedBases() []addr.Virt {
	bases := make([]addr.Virt, 0, len(v.quarUntil))
	for base := range v.quarUntil {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases
}

// activeQuarantined counts pages whose quarantine sentence has not yet
// expired. Unlike len(quarUntil) it excludes lazily-unexpired entries, so
// it answers "is quarantine pressure still live?" — the question the
// daemon's degradation ladder asks while the engine is frozen and nothing
// else queries (and thus expires) the bench. Pure inspection.
func (v *mover) activeQuarantined() int {
	n := 0
	now := v.periods.Value()
	for _, until := range v.quarUntil {
		if now < until {
			n++
		}
	}
	return n
}

// isQuarantined reports whether base is still benched; expired sentences are
// dropped lazily.
func (v *mover) isQuarantined(base addr.Virt) bool {
	until, ok := v.quarUntil[base]
	if !ok {
		return false
	}
	if v.periods.Value() >= until {
		delete(v.quarUntil, base)
		return false
	}
	return true
}

// attemptMove runs op — one demote or promote of base — under the retry
// policy: up to maxAttempts tries, with exponential backoff charged as
// daemon time (the kthread burning virtual CPU off the critical path, like
// the kernel's migrate_pages retry loop). Retryable failures are simulated
// destination pressure (mem.ErrOutOfMemory) and injected transient faults;
// anything else is a programming error and propagates. A permanent fault, or
// attempts running out, quarantines the page and returns handled=true — the
// caller records the failure and moves on instead of killing the run.
func (v *mover) attemptMove(base addr.Virt, op func() error) (handled bool, err error) {
	backoff := v.backoffBaseNs
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil {
			return false, nil
		}
		fault, injected := chaos.AsFault(err)
		if injected {
			if rec := v.m.Recorder(); rec != nil {
				rec.Event(telemetry.Event{
					Kind: telemetry.KindChaosFault, TimeNs: v.m.Clock(),
					Page: base, Count: uint64(attempt),
					Site: uint8(fault.Site), Permanent: fault.Permanent,
				})
			}
		}
		if !injected && !errors.Is(err, mem.ErrOutOfMemory) {
			return false, err
		}
		if (injected && fault.Permanent) || attempt >= v.maxAttempts {
			v.quarantine(base)
			return true, nil
		}
		v.retries.Inc()
		v.m.ChargeDaemon(backoff)
		backoff *= 2
	}
}
