// Package core implements page-placement engines for tiered memory as the
// composition of two pluggable pieces:
//
//   - a Tracker estimates per-page access rates over sampling intervals
//     (how hot is each 2MB page?), and
//   - a Policy turns those estimates into migrations (which pages live in
//     which tier?).
//
// The paper's Thermostat engine is one point in that space — the poison
// tracker composed with the slowdown-threshold policy — and NewEngine still
// builds exactly it, bit-for-bit. Compose builds any other cell of the
// tracker × policy matrix.
package core

import (
	"fmt"
	"sort"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/sim"
)

// View is the slice of policy placement state a tracker may consult. The
// poison tracker needs it to decide which sampled pages carry whole-region
// poison (cold pages inherit the PMD poison at split time) and which need
// the §3.2 Accessed-bit subset selection.
type View interface {
	// IsCold reports whether the policy currently places the 2MB page at
	// base below the top tier.
	IsCold(base addr.Virt) bool
}

// Tracker estimates per-page access rates. One Tick of the composed engine
// drives it through four phases, always in this order:
//
//	MeasureCold (policy corrector) → Estimates → [policy places] → Arm
//
// Determinism contract: a tracker must consume randomness only from its own
// rng stream, in an order independent of Go map iteration, and must charge
// its scan work via Machine.ChargeDaemon so runs stay reproducible at any
// worker count.
type Tracker interface {
	// Name is the registry/flag name ("poison", "idlebit", ...).
	Name() string

	// Attach binds the tracker to a machine. view exposes the composed
	// policy's placement verdicts and is valid for the lifetime of the
	// run; it may be consulted during any phase.
	Attach(m *sim.Machine, view View) error

	// SetScope restricts tracking to the ranges returned by provider (nil
	// provider = whole address space). May be called before Attach.
	SetScope(provider func() []addr.Range)

	// MeasureCold returns measured access rates over the elapsed interval
	// for the given pages — the policy's cold set, sorted by base. Pages
	// the tracker cannot measure this interval (e.g. mid-resample) are
	// omitted; the returned slice preserves the input order. Measurement
	// consumes the underlying counters: the next interval starts now.
	MeasureCold(cold []addr.Virt, intervalSec float64) []Measured

	// Estimates closes the interval's estimation phase and returns access
	// rate estimates, sorted by base, for top-tier pages observed this
	// interval. Trackers that sample (poison) cover Coverage() of the
	// tier per call; scanners cover all of it.
	Estimates(intervalSec float64) ([]Estimate, error)

	// Arm starts the next tracking interval: split/poison the next
	// cohort, clear Accessed/Dirty bits, re-sample regions.
	Arm() error

	// NotePlaced tells the tracker the policy moved the 2MB page at base
	// to another tier, so per-page counters rebase from now.
	NotePlaced(base addr.Virt)

	// Coverage is the fraction of top-tier pages estimated per interval.
	// Policies scale per-interval placement budgets by it.
	Coverage() float64

	// Sampled counts huge pages profiled over the run (Stats.Sampled).
	Sampled() uint64
}

// PlacementStats are a policy's lifetime migration counters.
type PlacementStats struct {
	Demotions       uint64
	Promotions      uint64
	Sinks           uint64
	DemoteFailures  uint64
	PromoteFailures uint64
	Retries         uint64
	Quarantined     uint64
}

// Policy turns a tracker's estimates into placement. One Tick drives it
// through three phases, always in this order:
//
//	Correct → Place → EndPeriod
//
// Correct runs first so mis-classified cold pages come back before new
// demotions compete for slow-tier capacity; Place consumes the estimates
// the tracker gathered over the elapsed interval; EndPeriod advances the
// policy's period clock (quarantine sentences are measured in periods).
type Policy interface {
	// Name is the registry/flag name ("threshold", "heat").
	Name() string

	// Attach binds the policy to a machine, its cgroup (tuning
	// parameters) and the tracker it consumes estimates from.
	Attach(m *sim.Machine, g *cgroup.Group, tr Tracker) error

	// SetScope restricts footprint accounting to the provider's ranges.
	SetScope(provider func() []addr.Range)

	// Correct measures the current cold set through the tracker and
	// undoes mis-classifications (promotions, and sinks in deep
	// hierarchies).
	Correct(intervalSec float64) error

	// Place applies the placement rule to this interval's estimates
	// (sorted by base) and demotes/promotes accordingly.
	Place(ests []Estimate) error

	// EndPeriod marks the end of one sampling period.
	EndPeriod()

	// IsCold reports the policy's verdict for one 2MB page (sim.ColdChecker).
	IsCold(base addr.Virt) bool

	// ColdPages is the current size of the cold set.
	ColdPages() int

	// PlacementStats snapshots the lifetime migration counters.
	PlacementStats() PlacementStats

	// Footprint classifies the managed leaves by grain and tier.
	Footprint(m *sim.Machine) sim.Footprint
}

// TrackerNames lists the selectable trackers in presentation order.
func TrackerNames() []string { return []string{"poison", "idlebit", "softdirty", "damon"} }

// PolicyNames lists the selectable placement policies in presentation order.
func PolicyNames() []string { return []string{"threshold", "heat"} }

// Per-tracker rng stream identifiers. The poison tracker keeps the plain
// seed stream (rng.New) so the seed Thermostat composition replays the exact
// pre-refactor random sequence; every other tracker draws from its own
// dedicated stream so adding one can never perturb the workload, chaos or
// sibling-tracker streams.
const (
	streamIdleBit   = 0x1d1eb175 // "idle bits"
	streamSoftDirty = 0x50f7d127
	streamDamon     = 0xda303712
)

// NewTrackerByName builds a tracker by registry name, drawing tuning
// parameters from group and randomness from seed.
func NewTrackerByName(name string, group *cgroup.Group, seed uint64) (Tracker, error) {
	switch name {
	case "poison":
		return NewPoisonTracker(group, seed), nil
	case "idlebit":
		return NewIdleBitTracker(group, seed), nil
	case "softdirty":
		return NewSoftDirtyTracker(group, seed), nil
	case "damon":
		return NewDamonTracker(group, seed), nil
	}
	return nil, fmt.Errorf("core: unknown tracker %q (have %v)", name, TrackerNames())
}

// NewPolicyByName builds a placement policy by registry name.
func NewPolicyByName(name string) (Policy, error) {
	switch name {
	case "threshold":
		return NewThresholdPolicy(), nil
	case "heat":
		return NewHeatPolicy(), nil
	}
	return nil, fmt.Errorf("core: unknown policy %q (have %v)", name, PolicyNames())
}

// scopeContains reports whether base falls in ranges (nil = everything).
func scopeContains(base addr.Virt, ranges []addr.Range) bool {
	if ranges == nil {
		return true
	}
	for _, r := range ranges {
		if r.Contains(base) {
			return true
		}
	}
	return false
}

// sortedColdSet flattens a cold-set map into a base-sorted slice, the
// canonical order MeasureCold expects.
func sortedColdSet(cold map[addr.Virt]bool) []addr.Virt {
	out := make([]addr.Virt, 0, len(cold))
	for base := range cold {
		out = append(out, base)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
