package core

import (
	"testing"

	"thermostat/internal/cgroup"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
)

// benchLoop drives the engine hot loop (access + periodic tick) on m for b.N
// operations — the path whose cost the telemetry layer must not perturb when
// disabled.
func benchLoop(b *testing.B, m *sim.Machine) {
	b.Helper()
	p := cgroup.Default()
	p.SamplePeriodNs = 100e6
	p.SampleFraction = 0.25
	g, err := cgroup.NewGroup("bench", p)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(g, 42)
	app := &skewApp{r: rng.New(1), size: 32 << 20, hotPages: 4}
	if err := app.Init(m); err != nil {
		b.Fatal(err)
	}
	if err := eng.Attach(m); err != nil {
		b.Fatal(err)
	}
	next := m.Clock() + eng.IntervalNs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, w := app.Next()
		if _, err := m.Access(v, w); err != nil {
			b.Fatal(err)
		}
		m.AdvanceClock(app.ComputeNs())
		if now := m.Clock(); now >= next {
			if err := eng.Tick(m, now); err != nil {
				b.Fatal(err)
			}
			next += eng.IntervalNs()
		}
	}
}

// BenchmarkEngineTelemetryOff measures the engine+machine hot loop with no
// recorder installed (the default). Compare against the pre-telemetry
// baseline in results/bench-telemetry.txt: the disabled path must stay
// within 1%.
func BenchmarkEngineTelemetryOff(b *testing.B) {
	cfg := sim.DefaultConfig(256<<20, 256<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 8
	m, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchLoop(b, m)
}
