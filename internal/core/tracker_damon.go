package core

import (
	"sort"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/pagetable"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
	"thermostat/internal/stats"
)

// DAMON tracker tuning (mirroring the kernel defaults in spirit: a bounded
// region count keeps the per-interval sampling cost independent of the
// footprint).
const (
	damonSamplesPerRegion = 3
	damonMaxRegions       = 64
	// damonMergeDelta is the largest |nrAccesses| difference between two
	// adjacent regions that still counts as homogeneous (merge them).
	damonMergeDelta = 1
)

// damonRegion is a run of contiguous 2MB pages assumed to behave alike.
// pages holds the region's currently-mapped 2MB bases in ascending order;
// nrAccesses is how many of the last sample draws found the Accessed bit
// set.
type damonRegion struct {
	pages      []addr.Virt
	nrAccesses int
	sampleSize int
}

// DamonTracker estimates access rates by adaptive region sampling, after
// the kernel's DAMON: the address space is partitioned into regions of
// contiguous 2MB pages, each region is probed with a constant number of
// random single-page checks per interval (read-and-clear the Accessed
// bit), and regions split or merge by access homogeneity — neighbours that
// agree merge, regions whose own samples disagree split. Sampling cost per
// interval is O(regions × samples), not O(footprint), which is the DAMON
// trade: cheap, but a region's estimate smears over all its pages.
type DamonTracker struct {
	group *cgroup.Group
	m     *sim.Machine
	view  View
	r     *rng.PCG

	regions []damonRegion
	scope   func() []addr.Range

	scannedTick bool

	sampled stats.Counter
}

// NewDamonTracker builds the region sampler. Randomness (which page each
// region probe lands on, where a heterogeneous region splits) comes from a
// dedicated rng stream of seed, so composing this tracker never perturbs
// the workload or chaos streams.
func NewDamonTracker(group *cgroup.Group, seed uint64) *DamonTracker {
	return &DamonTracker{group: group, r: rng.NewStream(seed, streamDamon)}
}

// Name implements Tracker.
func (t *DamonTracker) Name() string { return "damon" }

// Attach implements Tracker.
func (t *DamonTracker) Attach(m *sim.Machine, view View) error {
	t.m = m
	t.view = view
	return nil
}

// SetScope implements Tracker.
func (t *DamonTracker) SetScope(provider func() []addr.Range) { t.scope = provider }

// Coverage implements Tracker: every page belongs to a sampled region, so
// each interval yields an estimate for the whole footprint.
func (t *DamonTracker) Coverage() float64 { return 1.0 }

// Sampled implements Tracker: cumulative single-page probes.
func (t *DamonTracker) Sampled() uint64 { return t.sampled.Value() }

// NotePlaced implements Tracker: region membership is by address, not
// tier, so a migration changes nothing.
func (t *DamonTracker) NotePlaced(base addr.Virt) {}

// Arm implements Tracker: the next period gets a fresh sampling pass.
func (t *DamonTracker) Arm() error {
	t.scannedTick = false
	return nil
}

// mappedPages lists the in-scope mapped 2MB bases in ascending order.
func (t *DamonTracker) mappedPages() []addr.Virt {
	ranges := scopeRangesOf(t.scope)
	var pages []addr.Virt
	t.m.PageTable().Scan(func(base addr.Virt, e *pagetable.Entry, lvl pagetable.Level) {
		if lvl == pagetable.Level2M && scopeContains(base, ranges) {
			pages = append(pages, base)
		}
	})
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}

// syncRegions reconciles the region list with the currently-mapped pages:
// vanished pages drop out, new pages extend the nearest region or start
// fresh ones, and region page lists stay sorted. Regions are kept sorted by
// their first page.
func (t *DamonTracker) syncRegions(pages []addr.Virt) {
	known := make(map[addr.Virt]int, len(pages)*2)
	for i, reg := range t.regions {
		for _, p := range reg.pages {
			known[p] = i
		}
	}
	// Drop vanished pages.
	mapped := make(map[addr.Virt]bool, len(pages))
	for _, p := range pages {
		mapped[p] = true
	}
	for i := range t.regions {
		kept := t.regions[i].pages[:0]
		for _, p := range t.regions[i].pages {
			if mapped[p] {
				kept = append(kept, p)
			}
		}
		t.regions[i].pages = kept
	}
	// Adopt new pages: contiguous runs of unknown pages become regions.
	var run []addr.Virt
	flush := func() {
		if len(run) > 0 {
			t.regions = append(t.regions, damonRegion{pages: run})
			run = nil
		}
	}
	for _, p := range pages {
		if _, ok := known[p]; ok {
			flush()
			continue
		}
		if len(run) > 0 && run[len(run)-1]+addr.Virt(addr.PageSize2M) != p {
			flush()
		}
		run = append(run, p)
	}
	flush()
	// Compact empties and restore address order.
	kept := t.regions[:0]
	for _, reg := range t.regions {
		if len(reg.pages) > 0 {
			kept = append(kept, reg)
		}
	}
	t.regions = kept
	sort.Slice(t.regions, func(i, j int) bool { return t.regions[i].pages[0] < t.regions[j].pages[0] })
}

// probe checks one 2MB page's Accessed bit and rearms it (clear + TLB
// flush) so the next interval observes fresh accesses.
func (t *DamonTracker) probe(base addr.Virt) bool {
	prior, ok := t.m.PageTable().ClearFlags(base, pagetable.Accessed)
	if !ok {
		return false
	}
	if prior.Has(pagetable.Accessed) {
		t.m.TLB().Invalidate(base, t.m.VPID())
		return true
	}
	return false
}

// ensureScanned runs the period's sampling pass on first use: probe every
// region, then merge homogeneous neighbours and split heterogeneous
// regions.
func (t *DamonTracker) ensureScanned() {
	if t.scannedTick {
		return
	}
	t.scannedTick = true
	t.syncRegions(t.mappedPages())

	var daemon int64
	for i := range t.regions {
		reg := &t.regions[i]
		n := damonSamplesPerRegion
		if n > len(reg.pages) {
			n = len(reg.pages)
		}
		reg.sampleSize = n
		reg.nrAccesses = 0
		for _, idx := range t.r.Sample(len(reg.pages), n) {
			if t.probe(reg.pages[idx]) {
				reg.nrAccesses++
			}
			t.sampled.Inc()
			daemon += perLeafScanNs
		}
	}
	t.adapt()
	t.m.ChargeDaemon(daemon)
}

// adapt is the DAMON split/merge step. Merge first: adjacent regions whose
// nrAccesses agree within damonMergeDelta fuse (their samples pool).
// Then split: a region whose own samples disagreed — some accessed, some
// not — is not homogeneous, so it splits at a random page boundary, while
// the region count stays under damonMaxRegions.
func (t *DamonTracker) adapt() {
	// Merge pass (left to right, deterministic).
	merged := t.regions[:0]
	for _, reg := range t.regions {
		if len(merged) > 0 {
			prev := &merged[len(merged)-1]
			last := prev.pages[len(prev.pages)-1]
			adjacent := last+addr.Virt(addr.PageSize2M) == reg.pages[0]
			delta := prev.nrAccesses - reg.nrAccesses
			if delta < 0 {
				delta = -delta
			}
			if adjacent && delta <= damonMergeDelta {
				prev.pages = append(prev.pages, reg.pages...)
				prev.nrAccesses += reg.nrAccesses
				prev.sampleSize += reg.sampleSize
				continue
			}
		}
		merged = append(merged, reg)
	}
	t.regions = merged

	// Split pass.
	var out []damonRegion
	room := damonMaxRegions - len(t.regions)
	for _, reg := range t.regions {
		homogeneous := reg.nrAccesses == 0 || reg.nrAccesses == reg.sampleSize
		if homogeneous || len(reg.pages) < 2 || room <= 0 {
			out = append(out, reg)
			continue
		}
		// Random split point in [1, len): both halves keep the parent's
		// density until their own samples next interval disambiguate.
		cut := 1 + int(t.r.Uint64n(uint64(len(reg.pages)-1)))
		left := damonRegion{
			pages:      append([]addr.Virt(nil), reg.pages[:cut]...),
			nrAccesses: reg.nrAccesses,
			sampleSize: reg.sampleSize,
		}
		right := damonRegion{
			pages:      append([]addr.Virt(nil), reg.pages[cut:]...),
			nrAccesses: reg.nrAccesses,
			sampleSize: reg.sampleSize,
		}
		out = append(out, left, right)
		room--
	}
	t.regions = out
}

// rateOf smears a region's sampled density over each of its pages.
func (t *DamonTracker) rateOf(reg *damonRegion) float64 {
	if reg.sampleSize == 0 {
		return 0
	}
	assumed := 2 * t.group.Params().TargetSlowAccessRate()
	return assumed * float64(reg.nrAccesses) / float64(reg.sampleSize)
}

// MeasureCold implements Tracker.
func (t *DamonTracker) MeasureCold(cold []addr.Virt, intervalSec float64) []Measured {
	t.ensureScanned()
	rate := make(map[addr.Virt]float64)
	for i := range t.regions {
		r := t.rateOf(&t.regions[i])
		for _, p := range t.regions[i].pages {
			rate[p] = r
		}
	}
	out := make([]Measured, 0, len(cold))
	for _, base := range cold {
		out = append(out, Measured{Base: base, Rate: rate[base]})
	}
	return out
}

// Estimates implements Tracker: one estimate per in-scope top-tier 2MB
// page, in ascending base order (regions are address-sorted).
func (t *DamonTracker) Estimates(intervalSec float64) ([]Estimate, error) {
	t.ensureScanned()
	var ests []Estimate
	for i := range t.regions {
		r := t.rateOf(&t.regions[i])
		for _, p := range t.regions[i].pages {
			if t.view.IsCold(p) {
				continue
			}
			ests = append(ests, Estimate{Base: p, Rate: r})
		}
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i].Base < ests[j].Base })
	return ests, nil
}
