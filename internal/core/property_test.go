package core

import (
	"fmt"
	"testing"

	"thermostat/internal/cgroup"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
	"thermostat/internal/workload"
)

// randomSpec builds an arbitrary-but-valid workload from the seed: 2-5
// segments with random sizes, weights, pickers and write fractions.
func randomSpec(r *rng.PCG) workload.Spec {
	n := 2 + r.Intn(4)
	spec := workload.Spec{
		Name:      fmt.Sprintf("random-%d", n),
		ComputeNs: int64(2000 + r.Intn(4000)),
	}
	for i := 0; i < n; i++ {
		var picker workload.Picker
		switch r.Intn(4) {
		case 0:
			picker = workload.Uniform{}
		case 1:
			picker = &workload.Zipf{}
		case 2:
			picker = &workload.Sweep{Dwell: 1 + r.Intn(32)}
		default:
			picker = &workload.StridedScan{Stride: uint64(1 + r.Intn(200))}
		}
		spec.Segments = append(spec.Segments, workload.SegmentSpec{
			Name:      fmt.Sprintf("seg%d", i),
			Bytes:     uint64(2+r.Intn(14)) << 20,
			Weight:    r.Float64(),
			Picker:    picker,
			WriteFrac: r.Float64() * 0.9,
		})
	}
	// Guarantee non-zero traffic.
	spec.Segments[0].Weight += 0.1
	return spec
}

// TestEngineInvariantsUnderRandomWorkloads drives Thermostat over randomized
// workload shapes and checks the properties that must hold regardless of
// traffic: machine-wide mapping/allocator invariants, non-negative
// accounting, and classification state consistency.
func TestEngineInvariantsUnderRandomWorkloads(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration property test")
	}
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rng.New(seed * 7919)
			spec := randomSpec(r)
			m := testMachine(t)
			p := cgroup.Default()
			p.SamplePeriodNs = 150e6
			p.SampleFraction = 0.2
			g, err := cgroup.NewGroup("prop", p)
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(g, seed)
			app, err := workload.NewApp(spec, 1, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(m, app, eng, sim.RunConfig{DurationNs: 3e9})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			st := eng.Stats()
			if st.Promotions > st.Demotions {
				t.Fatalf("more promotions (%d) than demotions (%d)",
					st.Promotions, st.Demotions)
			}
			if eng.ColdPages() != int(st.Demotions-st.Promotions) {
				t.Fatalf("cold set %d != demotions-promotions %d",
					eng.ColdPages(), st.Demotions-st.Promotions)
			}
			fp := res.FinalFootprint
			if fp.Total() == 0 {
				t.Fatal("empty footprint")
			}
			// Cold bytes in the footprint match the engine's cold set plus
			// any split cold pages (4K cold counts toward the same pages).
			coldPages := int(fp.Cold() / (2 << 20))
			if coldPages != eng.ColdPages() {
				t.Fatalf("footprint cold pages %d != engine cold set %d",
					coldPages, eng.ColdPages())
			}
		})
	}
}
