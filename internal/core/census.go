package core

import (
	"sort"
	"sync"

	"thermostat/internal/addr"
)

// PageClass is one huge page's classification in a published Census.
type PageClass struct {
	Base        addr.Virt
	RatePerSec  float64
	Cold        bool
	Quarantined bool
}

// Census is a read-side snapshot of one engine's placement state, built on
// the simulation goroutine at the end of a tick and handed out by copy.
// The observability plane's /dump endpoint renders it; nothing in the
// engine reads it back, so publishing cannot perturb a run.
type Census struct {
	TimeNs      int64
	Name        string // engine display name (tracker+policy)
	Periods     uint64
	Stats       Stats
	SlowdownPct float64
	Inflight    int
	Pages       []PageClass // sorted by Base
}

// censusPub holds the engine's published census behind its own mutex so
// HTTP handler goroutines never touch live engine state.
type censusPub struct {
	mu sync.Mutex
	c  *Census
}

// EnablePublish turns on census publishing: every subsequent Tick snapshots
// the engine's classification state into a mutex-guarded copy retrievable
// with PublishedCensus. Off by default — default runs do no extra work
// beyond one atomic load per tick.
func (e *Engine) EnablePublish() { e.publish.Store(true) }

// PublishedCensus returns a copy of the most recently published census.
// Safe to call from any goroutine; ok is false until the first published
// tick (or always, if EnablePublish was never called).
func (e *Engine) PublishedCensus() (Census, bool) {
	e.pub.mu.Lock()
	defer e.pub.mu.Unlock()
	if e.pub.c == nil {
		return Census{}, false
	}
	c := *e.pub.c
	c.Pages = append([]PageClass(nil), e.pub.c.Pages...)
	return c, true
}

// publishCensus builds and stores the census. Called from Tick on the
// simulation goroutine only; all reads here are the same ones the
// reporting accessors perform, so the published copy is pure observation.
func (e *Engine) publishCensus(now int64) {
	quar := map[addr.Virt]bool{}
	for _, b := range e.QuarantinedBases() {
		quar[b] = true
	}
	pages := make([]PageClass, 0, len(e.lastEstimates))
	for _, est := range e.lastEstimates {
		pages = append(pages, PageClass{
			Base:        est.Base,
			RatePerSec:  est.Rate,
			Cold:        e.pol.IsCold(est.Base),
			Quarantined: quar[est.Base],
		})
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].Base < pages[j].Base })
	c := &Census{
		TimeNs:      now,
		Name:        e.name,
		Periods:     e.periods.Value(),
		Stats:       e.Stats(),
		SlowdownPct: e.EstimatedSlowdownPct(),
		Inflight:    e.InflightPages(),
		Pages:       pages,
	}
	e.pub.mu.Lock()
	e.pub.c = c
	e.pub.mu.Unlock()
}
