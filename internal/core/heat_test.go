package core

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
)

// TestHeatDecayMonotone: the decay factor never exceeds 1 and is monotone
// non-increasing in idle time — waiting longer can only cool a page.
func TestHeatDecayMonotone(t *testing.T) {
	t.Parallel()
	p := NewHeatPolicy()
	p.HalfLifeNs = 800e6
	prev := p.DecayFactor(0)
	if prev != 1 {
		t.Fatalf("DecayFactor(0) = %v, want 1", prev)
	}
	if p.DecayFactor(-5) != 1 {
		t.Fatalf("negative idle time must not heat a page")
	}
	for dt := 0.01; dt < 100; dt *= 1.7 {
		f := p.DecayFactor(dt)
		if f > prev {
			t.Fatalf("DecayFactor(%v) = %v rose above %v", dt, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("DecayFactor(%v) = %v outside [0, 1]", dt, f)
		}
		prev = f
	}
	// One half-life halves the score exactly.
	if f := p.DecayFactor(0.8); f < 0.499 || f > 0.501 {
		t.Fatalf("DecayFactor(one half-life) = %v, want 0.5", f)
	}
}

// TestHeatBounded: no access pattern can push a page's heat past the
// maxHeatFactor bound, and heat never goes negative.
func TestHeatBounded(t *testing.T) {
	t.Parallel()
	p := NewHeatPolicy()
	p.group = testGroup(t, nil)
	p.HalfLifeNs = 400e6
	base := addr.Virt(0x200000)
	max := p.maxHeat()
	for i := 0; i < 1000; i++ {
		p.bump(base, max*10, 0.001) // absurd rate, negligible decay
		if h := p.Heat(base); h > max {
			t.Fatalf("heat %v exceeded bound %v after %d bumps", h, max, i+1)
		}
	}
	p.bump(base, 0, 1e9) // decay for ~forever
	if h := p.Heat(base); h < 0 {
		t.Fatalf("heat decayed below zero: %v", h)
	}
}

// TestHeatWatermarksValidated: Attach rejects an inverted hysteresis band.
func TestHeatWatermarksValidated(t *testing.T) {
	t.Parallel()
	m := testMachine(t)
	g := testGroup(t, nil)
	p := NewHeatPolicy()
	p.PromoteFraction, p.DemoteFraction = 0.1, 0.5
	tr := NewPoisonTracker(g, 1)
	if err := p.Attach(m, g, tr); err == nil {
		t.Fatal("inverted watermarks accepted")
	}
}

// TestHeatNoSingleTickOscillation runs a full poison+heat composition and
// asserts the watermark hysteresis plus the moved-this-tick guard hold: no
// page migrates twice at the same virtual timestamp (all moves within one
// engine tick share the tick's clock).
func TestHeatNoSingleTickOscillation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	col := telemetry.NewCollector()
	cfg := sim.DefaultConfig(256<<20, 256<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 8
	cfg.Recorder = col
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := testGroup(t, nil)
	eng, err := ComposeByName(g, "poison", "heat", 42)
	if err != nil {
		t.Fatal(err)
	}
	app := &skewApp{r: rng.New(1), size: 32 << 20, hotPages: 4}
	if _, err := sim.Run(m, app, eng, sim.RunConfig{DurationNs: 4e9}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Demotions == 0 {
		t.Fatalf("heat policy never demoted: %+v", st)
	}
	type tickPage struct {
		timeNs int64
		page   addr.Virt
	}
	seen := map[tickPage]int{}
	for _, ev := range col.Events() {
		if ev.Kind != telemetry.KindMigrated {
			continue
		}
		key := tickPage{ev.TimeNs, ev.Page}
		seen[key]++
		if seen[key] > 1 {
			t.Fatalf("page %v migrated %d times within one tick (t=%dns)",
				ev.Page, seen[key], ev.TimeNs)
		}
	}
}
