package core

import (
	"errors"
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/chaos"
	"thermostat/internal/kstaled"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
	"thermostat/internal/sim"
	"thermostat/internal/stats"
)

// IdleDemote is the naive Accessed-bit baseline Thermostat is motivated
// against (§2.1, Figure 1): a kstaled-style scanner demotes any huge page
// idle for IdleScans consecutive scan intervals and promotes a cold page the
// moment a scan sees its Accessed bit set.
//
// Because a single Accessed bit carries no rate information, this policy
// cannot bound the slowdown it causes — the failure mode the Redis
// experiment exposes (placing 10s-idle pages costs >10%).
type IdleDemote struct {
	// Interval is the scan period (e.g. 10s/IdleScans for a 10s idle
	// window).
	Interval int64
	// IdleScans is how many consecutive idle scans demote a page.
	IdleScans int
	// NoPromote disables the touch-triggered promotion, leaving placement
	// static — the configuration behind Figure 1's caption (placing the
	// detected-idle pages costs >10% for Redis because the idle set was
	// never safe, and nothing brings the pages back).
	NoPromote bool

	m       *sim.Machine
	scanner *kstaled.Scanner
	cold    map[addr.Virt]bool

	demotions  stats.Counter
	promotions stats.Counter
	failures   stats.Counter
}

// Name implements sim.Policy.
func (p *IdleDemote) Name() string { return "idle-demote" }

// IntervalNs implements sim.Policy.
func (p *IdleDemote) IntervalNs() int64 { return p.Interval }

// Attach implements sim.Policy.
func (p *IdleDemote) Attach(m *sim.Machine) error {
	if p.Interval <= 0 {
		return fmt.Errorf("core: IdleDemote needs a positive interval")
	}
	if p.IdleScans <= 0 {
		return fmt.Errorf("core: IdleDemote needs a positive idle-scan count")
	}
	p.m = m
	p.scanner = kstaled.New(m.PageTable(), m.TLB(), m.VPID(), 0)
	p.cold = make(map[addr.Virt]bool)
	return nil
}

// Scanner exposes the underlying kstaled scanner (for the Figure 1 idle
// fraction readout).
func (p *IdleDemote) Scanner() *kstaled.Scanner { return p.scanner }

// Demotions returns the lifetime demotion count.
func (p *IdleDemote) Demotions() uint64 { return p.demotions.Value() }

// Promotions returns the lifetime promotion count.
func (p *IdleDemote) Promotions() uint64 { return p.promotions.Value() }

// Tick implements sim.Policy: scan Accessed bits, demote pages idle long
// enough, promote cold pages that were touched.
func (p *IdleDemote) Tick(m *sim.Machine, now int64) error {
	res := p.scanner.Scan()
	m.ChargeDaemon(res.CostNs)

	var toDemote, toPromote []addr.Virt
	m.PageTable().Scan(func(base addr.Virt, e *pagetable.Entry, lvl pagetable.Level) {
		if lvl != pagetable.Level2M {
			return
		}
		st := p.scanner.State(base)
		if st == nil {
			return
		}
		if p.cold[base] {
			// Any access observed on a cold page promotes it: the bit
			// was set when scanned, so HotStreak is non-zero.
			if !p.NoPromote && st.HotStreak > 0 {
				toPromote = append(toPromote, base)
			}
			return
		}
		if st.IdleScans >= p.IdleScans {
			toDemote = append(toDemote, base)
		}
	})
	for _, base := range toPromote {
		if _, err := m.Promote(base); err != nil {
			// Graceful degradation: a full fast tier or an injected fault
			// leaves the page cold until a later scan retries it.
			if errors.Is(err, mem.ErrOutOfMemory) || chaos.IsInjected(err) {
				p.failures.Inc()
				continue
			}
			return err
		}
		delete(p.cold, base)
		p.promotions.Inc()
	}
	for _, base := range toDemote {
		if _, err := m.Demote(base); err != nil {
			if errors.Is(err, mem.ErrOutOfMemory) {
				// Destination full: later candidates need the same 2MB
				// frame, so stop this pass (pre-chaos behavior, pinned by
				// the goldens).
				p.failures.Inc()
				break
			}
			if chaos.IsInjected(err) {
				p.failures.Inc()
				continue
			}
			return err
		}
		p.cold[base] = true
		p.demotions.Inc()
	}
	return nil
}

// Failures returns how many placement moves this policy abandoned
// (destination pressure or injected chaos faults).
func (p *IdleDemote) Failures() uint64 { return p.failures.Value() }

// Footprint implements sim.Policy.
func (p *IdleDemote) Footprint(m *sim.Machine) sim.Footprint {
	return sim.ScanFootprint(m, nil)
}
