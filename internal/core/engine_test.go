package core

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/mem"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
)

// skewApp accesses a region where the first hotPages huge pages receive all
// traffic and the rest receive none (maximal hot/cold separation).
type skewApp struct {
	r        *rng.PCG
	size     uint64
	hotPages uint64
	region   addr.Range
}

func (a *skewApp) Name() string { return "skew" }
func (a *skewApp) Init(m *sim.Machine) error {
	reg, err := m.AllocRegion(a.size, true)
	a.region = reg
	return err
}
func (a *skewApp) Next() (addr.Virt, bool) {
	page := a.r.Uint64n(a.hotPages)
	off := a.r.Uint64n(addr.PageSize2M)
	return a.region.Start + addr.Virt(page*addr.PageSize2M+off), a.r.Bool(0.1)
}
func (a *skewApp) ComputeNs() int64               { return 4000 }
func (a *skewApp) Tick(*sim.Machine, int64) error { return nil }

func testGroup(t *testing.T, mutate func(*cgroup.Params)) *cgroup.Group {
	t.Helper()
	p := cgroup.Default()
	// Scale periods down so tests run quickly: 100ms scan interval.
	p.SamplePeriodNs = 100e6
	p.SampleFraction = 0.25
	if mutate != nil {
		mutate(&p)
	}
	g, err := cgroup.NewGroup("test", p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testMachine(t *testing.T) *sim.Machine {
	t.Helper()
	cfg := sim.DefaultConfig(256<<20, 256<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 8
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEngineDemotesColdPages(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	m := testMachine(t)
	g := testGroup(t, nil)
	eng := NewEngine(g, 42)
	app := &skewApp{r: rng.New(1), size: 32 << 20, hotPages: 4} // 16 pages, 4 hot

	res, err := sim.Run(m, app, eng, sim.RunConfig{DurationNs: 4e9})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Periods == 0 || st.Sampled == 0 {
		t.Fatalf("engine never cycled: %+v", st)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("machine invariants violated: %v", err)
	}
	if st.Demotions == 0 {
		t.Fatalf("no demotions: %+v", st)
	}
	if res.FinalFootprint.Cold() == 0 {
		t.Fatal("no cold bytes at end")
	}
	// Never-accessed pages (12 of 16 = 75%) should largely be found cold;
	// at minimum a third of the footprint after 20 periods.
	frac := res.FinalFootprint.ColdFraction()
	if frac < 0.3 {
		t.Fatalf("cold fraction = %v, want >= 0.3", frac)
	}
	// Hot pages must stay hot: cold fraction can't exceed the idle share.
	if frac > 0.8 {
		t.Fatalf("cold fraction = %v exceeds idle share", frac)
	}
}

func TestEngineRespectsSlowdownBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	// With everything uniformly hot, the engine must demote almost nothing:
	// every page's estimated rate exceeds the fraction-scaled budget.
	m := testMachine(t)
	g := testGroup(t, nil)
	eng := NewEngine(g, 7)
	app := &skewApp{r: rng.New(2), size: 16 << 20, hotPages: 8} // all 8 pages hot

	res, err := sim.Run(m, app, eng, sim.RunConfig{DurationNs: 4e9})
	if err != nil {
		t.Fatal(err)
	}
	if frac := res.FinalFootprint.ColdFraction(); frac > 0.2 {
		t.Fatalf("uniformly hot app got %v cold", frac)
	}
}

func TestEngineCorrectsMisclassification(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	// Phase change: pages cold during the first half become the only hot
	// pages in the second half. The corrector must promote them.
	m := testMachine(t)
	g := testGroup(t, nil)
	eng := NewEngine(g, 13)
	app := &phaseApp{r: rng.New(3), size: 48 << 20, switchNs: 2e9}

	_, err := sim.Run(m, app, eng, sim.RunConfig{DurationNs: 6e9})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Demotions == 0 {
		t.Fatal("nothing was demoted in phase one")
	}
	if st.Promotions == 0 {
		t.Fatal("corrector never promoted after the phase change")
	}
	// The now-hot pages must be back in fast memory.
	fp := eng.Footprint(m)
	if fp.ColdFraction() > 0.55 {
		t.Fatalf("cold fraction %v after correction", fp.ColdFraction())
	}
}

// phaseApp accesses the low half of its region before switchNs and the high
// half after.
type phaseApp struct {
	r        *rng.PCG
	size     uint64
	switchNs int64
	region   addr.Range
	flipped  bool
}

func (a *phaseApp) Name() string { return "phase" }
func (a *phaseApp) Init(m *sim.Machine) error {
	reg, err := m.AllocRegion(a.size, true)
	a.region = reg
	return err
}
func (a *phaseApp) Next() (addr.Virt, bool) {
	half := a.size / 2
	off := a.r.Uint64n(half)
	if a.flipped {
		off += half
	}
	return a.region.Start + addr.Virt(off), false
}
func (a *phaseApp) ComputeNs() int64 { return 4000 }
func (a *phaseApp) Tick(m *sim.Machine, now int64) error {
	if now >= a.switchNs {
		a.flipped = true
	}
	return nil
}

func TestEngineFootprintClassification(t *testing.T) {
	t.Parallel()
	m := testMachine(t)
	g := testGroup(t, nil)
	eng := NewEngine(g, 1)
	if err := eng.Attach(m); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocRegion(8<<20, true); err != nil {
		t.Fatal(err)
	}
	fp := eng.Footprint(m)
	if fp.Hot2M != 8<<20 || fp.Cold() != 0 {
		t.Fatalf("initial footprint %+v", fp)
	}
	// Demote one page manually; footprint must track it.
	if _, err := m.Demote(addr.Virt(1) << 40); err != nil {
		t.Fatal(err)
	}
	fp = eng.Footprint(m)
	if fp.Cold2M != addr.PageSize2M {
		t.Fatalf("after demotion %+v", fp)
	}
}

func TestEngineDemoteFailureWhenSlowFull(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	cfg := sim.DefaultConfig(64<<20, 0) // no slow memory at all
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 4, 16
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := testGroup(t, nil)
	eng := NewEngine(g, 5)
	app := &skewApp{r: rng.New(4), size: 8 << 20, hotPages: 1}
	if _, err := sim.Run(m, app, eng, sim.RunConfig{DurationNs: 3e9}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Demotions != 0 {
		t.Fatal("demotions succeeded with no slow tier")
	}
	if st.DemoteFailures == 0 {
		t.Fatal("demote failures not recorded")
	}
}

func TestEngineSamplingRestoresHugeMappings(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	// After each full cycle, no page may be left split: sampling must be
	// invisible to the mapping structure.
	m := testMachine(t)
	g := testGroup(t, nil)
	eng := NewEngine(g, 11)
	app := &skewApp{r: rng.New(5), size: 16 << 20, hotPages: 2}
	if _, err := sim.Run(m, app, eng, sim.RunConfig{DurationNs: 4e9}); err != nil {
		t.Fatal(err)
	}
	// The pipeline always holds two cohorts in flight; every split page
	// must be accounted to a cohort — nothing leaks.
	now := m.Clock()
	for i := 1; i <= 3; i++ {
		if err := eng.Tick(m, now+int64(i)*g.Params().SamplePeriodNs); err != nil {
			t.Fatal(err)
		}
		want := eng.InflightPages() * addr.PagesPerHuge
		if n := m.PageTable().Count4K(); n != want {
			t.Fatalf("tick %d: %d split 4K mappings, want %d (inflight %d)",
				i, n, want, eng.InflightPages())
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
}

func TestIdleDemotePolicy(t *testing.T) {
	t.Parallel()
	m := testMachine(t)
	pol := &IdleDemote{Interval: 100e6, IdleScans: 3}
	app := &skewApp{r: rng.New(6), size: 16 << 20, hotPages: 2}
	res, err := sim.Run(m, app, pol, sim.RunConfig{DurationNs: 3e9})
	if err != nil {
		t.Fatal(err)
	}
	if pol.Demotions() == 0 {
		t.Fatal("idle-demote never demoted")
	}
	// 6 of 8 pages are never touched: they must end up cold.
	if frac := res.FinalFootprint.ColdFraction(); frac < 0.5 {
		t.Fatalf("cold fraction = %v", frac)
	}
}

func TestIdleDemotePromotesOnAccess(t *testing.T) {
	t.Parallel()
	m := testMachine(t)
	pol := &IdleDemote{Interval: 100e6, IdleScans: 2}
	app := &phaseApp{r: rng.New(8), size: 8 << 20, switchNs: 15e8}
	if _, err := sim.Run(m, app, pol, sim.RunConfig{DurationNs: 4e9}); err != nil {
		t.Fatal(err)
	}
	if pol.Promotions() == 0 {
		t.Fatal("idle-demote never promoted a touched cold page")
	}
}

func TestIdleDemoteValidation(t *testing.T) {
	t.Parallel()
	m := testMachine(t)
	if err := (&IdleDemote{Interval: 0, IdleScans: 1}).Attach(m); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := (&IdleDemote{Interval: 1e9, IdleScans: 0}).Attach(m); err == nil {
		t.Fatal("zero idle scans accepted")
	}
}

func TestEngineSlowdownWithinTargetEndToEnd(t *testing.T) {
	t.Parallel()
	// The headline property (§5): measured slowdown stays within the same
	// order as the target while cold data is found. Run baseline and
	// Thermostat on identical app/seed.
	if testing.Short() {
		t.Skip("end-to-end slowdown test is slow")
	}
	run := func(policy sim.Policy) *sim.RunResult {
		m := testMachine(t)
		app := &skewApp{r: rng.New(9), size: 64 << 20, hotPages: 8} // 32 pages, 8 hot
		res, err := sim.Run(m, app, policy, sim.RunConfig{DurationNs: 10e9, WarmupNs: 2e9})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Paper parameters (5% sample fraction) for the end-to-end check.
	g := testGroup(t, func(p *cgroup.Params) {
		p.SampleFraction = 0.05
		p.SamplePeriodNs = 200e6
	})
	base := run(sim.NullPolicy{Interval: 200e6})
	ts := run(NewEngine(g, 21))
	sd := sim.Slowdown(base, ts)
	if sd > 0.06 {
		t.Fatalf("slowdown = %.3f, want <= 0.06 (2x the 3%% target)", sd)
	}
	if ts.FinalFootprint.ColdFraction() < 0.2 {
		t.Fatalf("cold fraction = %v", ts.FinalFootprint.ColdFraction())
	}
}

func TestEngineAccessors(t *testing.T) {
	t.Parallel()
	m := testMachine(t)
	g := testGroup(t, nil)
	eng := NewEngine(g, 3)
	if eng.Name() != "thermostat" {
		t.Fatal("name")
	}
	if eng.IntervalNs() != g.Params().SamplePeriodNs {
		t.Fatal("interval")
	}
	if err := eng.Attach(m); err != nil {
		t.Fatal(err)
	}
	if eng.ColdPages() != 0 || eng.InflightPages() != 0 {
		t.Fatal("fresh engine has state")
	}
	if got := eng.LastEstimates(); got != nil {
		t.Fatalf("fresh estimates = %v", got)
	}
	// Ticking a different machine is an error.
	m2 := testMachine(t)
	if err := eng.Tick(m2, 1e9); err == nil {
		t.Fatal("cross-machine tick accepted")
	}
}

func TestEngineScopeRestrictsSampling(t *testing.T) {
	t.Parallel()
	m := testMachine(t)
	g := testGroup(t, nil)
	eng := NewEngine(g, 9)
	if err := eng.Attach(m); err != nil {
		t.Fatal(err)
	}
	inScope, err := m.AllocRegion(8<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	outScope, err := m.AllocRegion(8<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetScope(func() []addr.Range { return []addr.Range{inScope} })
	// Drive several full cycles: everything in scope is idle, so it gets
	// demoted; the out-of-scope region must be untouched.
	for i := int64(1); i <= 12; i++ {
		if err := eng.Tick(m, i*g.Params().SamplePeriodNs); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Stats().Demotions == 0 {
		t.Fatal("no demotions in scope")
	}
	outScope.Each2M(func(base addr.Virt) {
		e, _, ok := m.PageTable().Lookup(base)
		if !ok {
			t.Fatalf("%s unmapped", base)
		}
		if mem.TierOf(e.Frame) != mem.Fast {
			t.Fatalf("out-of-scope page %s was demoted", base)
		}
	})
	fp := eng.Footprint(m)
	if fp.Total() != inScope.Size() {
		t.Fatalf("footprint %d includes out-of-scope bytes (want %d)", fp.Total(), inScope.Size())
	}
}

func TestEnginePrefilterAffectsEstimates(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	// With the prefilter off, estimates scale by 512/nPoisoned instead of
	// nAccessed/nPoisoned; for a page with a single hot child the naive
	// strategy usually misses it entirely. Statistical check over one
	// cycle: the naive estimate diverges from the filtered one.
	run := func(prefilter bool) float64 {
		m := testMachine(t)
		g := testGroup(t, nil)
		eng := NewEngine(g, 17)
		eng.SetPrefilter(prefilter)
		app := &skewApp{r: rng.New(7), size: 8 << 20, hotPages: 1}
		res, err := sim.Run(m, app, eng, sim.RunConfig{DurationNs: 3e9})
		if err != nil {
			t.Fatal(err)
		}
		_ = res
		return float64(eng.Stats().Demotions)
	}
	// Both configurations still find the fully idle pages; this is a
	// smoke check that the switch is plumbed through without breaking
	// classification.
	if run(true) == 0 || run(false) == 0 {
		t.Fatal("a prefilter configuration found no cold pages")
	}
}

func TestEngineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	run := func() (uint64, float64, uint64) {
		m := testMachine(t)
		g := testGroup(t, nil)
		eng := NewEngine(g, 99)
		app := &skewApp{r: rng.New(42), size: 16 << 20, hotPages: 3}
		res, err := sim.Run(m, app, eng, sim.RunConfig{DurationNs: 2e9})
		if err != nil {
			t.Fatal(err)
		}
		return res.Ops, res.FinalFootprint.ColdFraction(), eng.Stats().Demotions
	}
	ops1, cold1, dem1 := run()
	ops2, cold2, dem2 := run()
	if ops1 != ops2 || cold1 != cold2 || dem1 != dem2 {
		t.Fatalf("non-deterministic: (%d,%v,%d) vs (%d,%v,%d)",
			ops1, cold1, dem1, ops2, cold2, dem2)
	}
}
