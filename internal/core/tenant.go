package core

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/sim"
)

// ScopedApp is the application surface a fleet tenant requires: a normal
// sim.App that can also report which address ranges it owns, so its engine
// can be scoped to them and the fleet can tear them down on departure.
// workload.App implements it.
type ScopedApp interface {
	sim.App
	Regions() []addr.Range
}

// Tenant is one application sharing a multi-tenant hierarchy: a workload,
// the cgroup holding its Thermostat knobs and DRAM accounting (a child of
// the fleet's pool group), and a composed Tracker × Policy engine scoped to
// the workload's regions. The SLO fields are the fleet arbiter's inputs; a
// single-tenant Tenant degenerates to exactly the RunComposed setup.
type Tenant struct {
	// Name identifies the tenant in reports and telemetry.
	Name string
	// App is the tenant's workload. It must not be initialized before the
	// fleet admits the tenant (arrivals Init mid-run).
	App ScopedApp
	// Group holds the tenant's Thermostat parameters and its DRAM
	// accounting; its limit is the tenant's current grant.
	Group *cgroup.Group
	// Engine is the tenant's Tracker × Policy composition, scoped to the
	// app's regions.
	Engine *Engine

	// SLOPct is the tenant's tolerable-slowdown objective in percent; the
	// arbiter boosts the DRAM grant of tenants running over it. Usually
	// equal to the group's TolerableSlowdownPct but may be set tighter.
	SLOPct float64
	// Priority weights surplus DRAM distribution (min 1).
	Priority int
	// Share is the tenant's weight in the access interleave (min 1): a
	// tenant with Share 2 issues twice the ops of a Share-1 tenant.
	Share int
	// FloorBytes is the minimum DRAM grant the arbiter must always honor.
	FloorBytes uint64
}

// NewTenant wires a tenant together: the engine is scoped to the app's
// regions and the zero knobs get their minimums.
func NewTenant(name string, app ScopedApp, group *cgroup.Group, eng *Engine) *Tenant {
	t := &Tenant{Name: name, App: app, Group: group, Engine: eng, Priority: 1, Share: 1}
	eng.SetScope(app.Regions)
	return t
}

// Validate rejects incoherent tenants.
func (t *Tenant) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("core: tenant without a name")
	}
	if t.App == nil || t.Group == nil || t.Engine == nil {
		return fmt.Errorf("core: tenant %q missing app, group, or engine", t.Name)
	}
	if t.Priority < 1 {
		return fmt.Errorf("core: tenant %q priority %d < 1", t.Name, t.Priority)
	}
	if t.Share < 1 {
		return fmt.Errorf("core: tenant %q share %d < 1", t.Name, t.Share)
	}
	if t.SLOPct < 0 {
		return fmt.Errorf("core: tenant %q negative SLO %v%%", t.Name, t.SLOPct)
	}
	return nil
}

// Regions returns the address ranges the tenant currently owns.
func (t *Tenant) Regions() []addr.Range { return t.App.Regions() }

// FootprintBytes returns the tenant's total mapped bytes across all tiers.
func (t *Tenant) FootprintBytes(m *sim.Machine) uint64 {
	return sim.ScanFootprint(m, t.App.Regions()).Total()
}

// FastBytes returns the tenant's current top-tier residency in bytes.
func (t *Tenant) FastBytes(m *sim.Machine) uint64 {
	fp := sim.ScanFootprint(m, t.App.Regions())
	if len(fp.ByTier) == 0 {
		return 0
	}
	return fp.ByTier[0].Total()
}
