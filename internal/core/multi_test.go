package core

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/mem"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
)

// scopedApp is a skew app that can report its region for engine scoping.
type scopedApp struct {
	skewApp
}

func (a *scopedApp) Regions() []addr.Range { return []addr.Range{a.region} }

func TestMultiTenantEnginesStayInTheirLane(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	// Two tenants share one machine: tenant A is half idle (demotable),
	// tenant B is uniformly hot (nothing demotable). Each has its own
	// scoped engine with its own cgroup. A's engine must demote only A's
	// pages; B's engine must demote (almost) nothing.
	cfg := sim.DefaultConfig(256<<20, 256<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 8
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	appA := &scopedApp{skewApp{r: rng.New(1), size: 32 << 20, hotPages: 4}} // 16 pages, 4 hot
	appB := &scopedApp{skewApp{r: rng.New(2), size: 16 << 20, hotPages: 8}} // all 8 hot

	mkEngine := func(seed uint64, app *scopedApp) *Engine {
		p := cgroup.Default()
		p.SamplePeriodNs = 100e6
		p.SampleFraction = 0.25
		g, err := cgroup.NewGroup("tenant", p)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(g, seed)
		e.SetScope(app.Regions)
		return e
	}
	engA := mkEngine(11, appA)
	engB := mkEngine(13, appB)

	res, err := sim.RunMulti(m, []sim.Tenant{
		{App: appA, Policy: engA},
		{App: appB, Policy: engB},
	}, sim.RunConfig{DurationNs: 5e9, WindowNs: 5e8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(res.Tenants))
	}
	if res.Tenants[0].Ops == 0 || res.Tenants[1].Ops == 0 {
		t.Fatal("a tenant made no progress")
	}

	// Tenant A found its idle pages.
	fpA := res.Tenants[0].Footprint
	if fpA.ColdFraction() < 0.3 {
		t.Errorf("tenant A cold fraction = %v, want >= 0.3", fpA.ColdFraction())
	}
	// Tenant B stayed hot.
	fpB := res.Tenants[1].Footprint
	if fpB.ColdFraction() > 0.2 {
		t.Errorf("tenant B cold fraction = %v, want <= 0.2", fpB.ColdFraction())
	}
	// Scope isolation: every page engine A demoted lies in A's region,
	// and footprints are disjoint: total of both == machine total.
	var machineTotal sim.Footprint
	machineTotal = sim.NullPolicy{}.Footprint(m)
	sum := fpA.Total() + fpB.Total()
	if sum != machineTotal.Total() {
		t.Errorf("scoped footprints %d don't partition machine %d", sum, machineTotal.Total())
	}
	if engB.Stats().Demotions > 1 {
		t.Errorf("tenant B engine demoted %d pages", engB.Stats().Demotions)
	}
	if engA.Stats().Demotions == 0 {
		t.Error("tenant A engine demoted nothing")
	}
}

func TestMultiTenantSharedTrapNoInterference(t *testing.T) {
	t.Parallel()
	// The regression the delta-count design prevents: engine A's reads
	// must not erase engine B's pending fault counts. Drive two scoped
	// engines whose cold pages both fault; both correctors must see their
	// own counts.
	cfg := sim.DefaultConfig(128<<20, 128<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 4
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	appA := &scopedApp{skewApp{r: rng.New(5), size: 16 << 20, hotPages: 16}}
	appB := &scopedApp{skewApp{r: rng.New(6), size: 16 << 20, hotPages: 16}}
	mk := func(seed uint64, app *scopedApp) *Engine {
		p := cgroup.Default()
		p.SamplePeriodNs = 100e6
		p.SampleFraction = 0.25
		// Make the budget binding at this test's small fault volume:
		// target = 3%/100us = 300 faults/s.
		p.SlowMemLatencyNs = 100000
		g, _ := cgroup.NewGroup("t", p)
		e := NewEngine(g, seed)
		e.SetScope(app.Regions)
		return e
	}
	engA, engB := mk(1, appA), mk(2, appB)
	if err := appA.Init(m); err != nil {
		t.Fatal(err)
	}
	if err := appB.Init(m); err != nil {
		t.Fatal(err)
	}
	if err := engA.Attach(m); err != nil {
		t.Fatal(err)
	}
	if err := engB.Attach(m); err != nil {
		t.Fatal(err)
	}
	// Demote one page of each tenant manually and register as cold.
	pageA := appA.region.Start.Base2M()
	pageB := appB.region.Start.Base2M()
	if _, err := m.Demote(pageA); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Demote(pageB); err != nil {
		t.Fatal(err)
	}
	engA.pol.(*ThresholdPolicy).cold[pageA] = true
	engB.pol.(*ThresholdPolicy).cold[pageB] = true

	// Fault both cold pages heavily (evict TLB in between).
	for i := 0; i < 50; i++ {
		if _, err := m.Access(pageA+addr.Virt(i*64), false); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Access(pageB+addr.Virt(i*64), false); err != nil {
			t.Fatal(err)
		}
		m.TLB().Invalidate(pageA, m.VPID())
		m.TLB().Invalidate(pageB, m.VPID())
	}
	// Engine A's corrector runs first and consumes its deltas...
	if err := engA.Tick(m, m.Clock()+100e6); err != nil {
		t.Fatal(err)
	}
	// ...and engine B must still see its own page's full count.
	if err := engB.Tick(m, m.Clock()+100e6); err != nil {
		t.Fatal(err)
	}
	// Both pages were hot while cold -> both engines must have promoted.
	if engA.Stats().Promotions != 1 {
		t.Errorf("engine A promotions = %d, want 1", engA.Stats().Promotions)
	}
	if engB.Stats().Promotions != 1 {
		t.Errorf("engine B promotions = %d (count interference?), want 1", engB.Stats().Promotions)
	}
	_ = mem.Slow
}
