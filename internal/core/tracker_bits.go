package core

import (
	"sort"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/kstaled"
	"thermostat/internal/pagetable"
	"thermostat/internal/sim"
	"thermostat/internal/stats"
)

// bitIdleDemoteScans is how many consecutive idle scans make a page's rate
// estimate drop to zero (kstaled's classic "idle for N windows" rule).
const bitIdleDemoteScans = 3

// BitTracker estimates access rates from a single page-table bit: the
// Accessed bit (kstaled-style idle bitmap, tracker name "idlebit") or the
// Dirty bit (soft-dirty write tracking, tracker name "softdirty").
//
// The bit is binary — it says *whether* a page was touched in a scan
// window, never *how often* — so the tracker converts scan history into a
// coarse rate ladder: a page touched this window is assumed hot at twice
// the cgroup's target slow-access rate, each consecutive idle window halves
// that, and bitIdleDemoteScans idle windows round it down to zero. This is
// exactly the fidelity gap (paper §2, Figure 2) that motivates poison-based
// counting; the tracker exists so the policy matrix can measure the gap.
//
// The softdirty variant inherits a second blindness: read-only hot pages
// never set the Dirty bit, so read-mostly working sets look cold to it.
type BitTracker struct {
	name  string
	group *cgroup.Group
	m     *sim.Machine
	view  View

	flag    pagetable.Flags
	scanner *kstaled.Scanner

	// shards/shardWorkers are forwarded to the kstaled scanner (which may
	// not exist yet when SetSharding is called — Attach re-applies them).
	shards       int
	shardWorkers int

	scope func() []addr.Range

	// scannedTick guards the one scan-and-clear pass per sampling period;
	// MeasureCold and Estimates share its result, Arm resets it.
	scannedTick bool

	sampled stats.Counter
}

// NewIdleBitTracker builds the kstaled-backed idle-bitmap tracker. The seed
// is accepted for registry uniformity; bit scanning draws no randomness.
func NewIdleBitTracker(group *cgroup.Group, seed uint64) *BitTracker {
	_ = seed
	return &BitTracker{name: "idlebit", group: group, flag: pagetable.Accessed}
}

// NewSoftDirtyTracker builds the soft-dirty write tracker: identical scan
// machinery over the Dirty bit.
func NewSoftDirtyTracker(group *cgroup.Group, seed uint64) *BitTracker {
	_ = seed
	return &BitTracker{name: "softdirty", group: group, flag: pagetable.Dirty}
}

// Name implements Tracker.
func (t *BitTracker) Name() string { return t.name }

// Attach implements Tracker.
func (t *BitTracker) Attach(m *sim.Machine, view View) error {
	t.m = m
	t.view = view
	t.scanner = kstaled.NewWithFlag(m.PageTable(), m.TLB(), m.VPID(), 0, t.flag)
	t.scanner.SetSharding(t.shards, t.shardWorkers)
	return nil
}

// SetSharding partitions the scanner's clear-and-record pass into shards
// contiguous region-sequence chunks collected on up to workers goroutines;
// results are bit-identical at any setting (see kstaled.Scanner.SetSharding).
func (t *BitTracker) SetSharding(shards, workers int) {
	t.shards, t.shardWorkers = shards, workers
	if t.scanner != nil {
		t.scanner.SetSharding(shards, workers)
	}
}

// StateBytes reports the tracker's resident metadata (the scanner's
// per-region scan histories).
func (t *BitTracker) StateBytes() uint64 {
	if t.scanner == nil {
		return 0
	}
	return t.scanner.StateBytes()
}

// SetScope implements Tracker. Like the real kstaled, the scan pass itself
// walks the whole page table (clearing bits is global); the scope only
// restricts which pages produce estimates.
func (t *BitTracker) SetScope(provider func() []addr.Range) { t.scope = provider }

// Coverage implements Tracker: every scan covers the whole footprint.
func (t *BitTracker) Coverage() float64 { return 1.0 }

// Sampled implements Tracker: 2MB pages visited across all scan passes.
func (t *BitTracker) Sampled() uint64 { return t.sampled.Value() }

// NotePlaced implements Tracker: bit state carries across migrations
// unchanged (the PTE moves with the page), so nothing rebases.
func (t *BitTracker) NotePlaced(base addr.Virt) {}

// Arm implements Tracker: the next period gets a fresh scan pass.
func (t *BitTracker) Arm() error {
	t.scannedTick = false
	return nil
}

// ensureScanned runs the period's single scan-and-clear pass on first use.
func (t *BitTracker) ensureScanned() {
	if t.scannedTick {
		return
	}
	t.scannedTick = true
	res := t.scanner.Scan()
	t.m.ChargeDaemon(res.CostNs)
}

// assumedHotRate is the rate ascribed to a page whose bit was set this
// window: twice the target slow-access rate, so one touched cold page is
// enough to trigger the threshold policy's correction and a touched
// top-tier page can never fit in its demotion budget.
func (t *BitTracker) assumedHotRate() float64 {
	return 2 * t.group.Params().TargetSlowAccessRate()
}

// rateOf converts a page's scan history into the coarse rate ladder.
func (t *BitTracker) rateOf(base addr.Virt) float64 {
	st := t.scanner.State(base)
	if st == nil || st.IdleScans >= bitIdleDemoteScans {
		return 0
	}
	return t.assumedHotRate() / float64(uint64(1)<<uint(st.IdleScans))
}

// MeasureCold implements Tracker.
func (t *BitTracker) MeasureCold(cold []addr.Virt, intervalSec float64) []Measured {
	t.ensureScanned()
	out := make([]Measured, 0, len(cold))
	for _, base := range cold {
		out = append(out, Measured{Base: base, Rate: t.rateOf(base)})
	}
	return out
}

// Estimates implements Tracker: one estimate per in-scope top-tier 2MB
// region, in ascending base order. On a dense table every region is one
// leaf (the old per-leaf sweep exactly); on a sparse table a multi-page
// span yields one estimate at its base — region-grain fidelity matching
// the scanner's region-grain histories.
func (t *BitTracker) Estimates(intervalSec float64) ([]Estimate, error) {
	t.ensureScanned()
	ranges := scopeRangesOf(t.scope)
	var ests []Estimate
	t.m.PageTable().ScanRegions(func(base addr.Virt, pages int, e *pagetable.Entry, lvl pagetable.Level) {
		if lvl != pagetable.Level2M || !scopeContains(base, ranges) || t.view.IsCold(base) {
			return
		}
		ests = append(ests, Estimate{Base: base, Rate: t.rateOf(base)})
		t.sampled.Inc()
	})
	sort.Slice(ests, func(i, j int) bool { return ests[i].Base < ests[j].Base })
	return ests, nil
}

// scopeRangesOf resolves a scope provider (nil = everything).
func scopeRangesOf(scope func() []addr.Range) []addr.Range {
	if scope == nil {
		return nil
	}
	return scope()
}
