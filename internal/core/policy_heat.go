package core

import (
	"fmt"
	"math"
	"sort"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/mem"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
)

// Heat policy defaults, as fractions of the cgroup's target slow-access
// rate. With the default half-life (two sampling periods) a steady access
// rate r settles at heat ≈ 3.4·r, so the promotion watermark (1.0·target)
// fires for cold pages sustaining roughly 0.3·target and the demotion
// watermark (0.1·target) catches top-tier pages below roughly 0.03·target.
const (
	defaultPromoteFraction = 1.0
	defaultDemoteFraction  = 0.1
	defaultHalfLifePeriods = 2
	// maxHeatFactor bounds accumulated heat at this multiple of the
	// target rate — the "heat is bounded" invariant.
	maxHeatFactor = 1000
)

// HeatPolicy is an age/heat placement rule in the memtierd style: every
// page carries a heat score that decays exponentially with idle time and is
// recharged by measured access rate, and placement is hysteresis between
// two watermarks — cold pages whose heat climbs above the promotion
// watermark come up, top-tier pages whose heat decays below the (strictly
// lower) demotion watermark go down. The watermark gap plus a
// moved-this-tick guard guarantee a page never promotes and demotes within
// one sampling period.
//
// Unlike the threshold policy it needs no aggregate rate budget, so it
// composes with binary trackers (idlebit, softdirty) whose rate ladders
// would make a cumulative budget mostly meaningless.
type HeatPolicy struct {
	group *cgroup.Group
	m     *sim.Machine
	tr    Tracker

	// PromoteFraction and DemoteFraction position the watermarks as
	// fractions of the target slow-access rate; PromoteFraction must stay
	// strictly above DemoteFraction (hysteresis). Zero values select the
	// defaults at Attach.
	PromoteFraction float64
	DemoteFraction  float64
	// HalfLifeNs is the heat half-life; zero selects two sampling periods
	// at Attach.
	HalfLifeNs int64

	heat map[addr.Virt]float64
	cold map[addr.Virt]bool

	// moved guards single-tick oscillation: a page migrated in this
	// tick's Correct phase is not a candidate in its Place phase (and
	// vice versa). Cleared in EndPeriod.
	moved map[addr.Virt]bool

	scope func() []addr.Range

	// lastInterval carries the tick's measurement interval from Correct
	// (which receives it) to Place (which does not).
	lastInterval float64

	// lastColdRate is the aggregate measured access rate to the cold set
	// from the most recent Correct pass (accesses/sec).
	lastColdRate float64

	mv mover
}

// NewHeatPolicy builds the heat policy with default watermarks.
func NewHeatPolicy() *HeatPolicy {
	return &HeatPolicy{
		heat:  make(map[addr.Virt]float64),
		cold:  make(map[addr.Virt]bool),
		moved: make(map[addr.Virt]bool),
		mv:    newMover(),
	}
}

// Name implements Policy.
func (p *HeatPolicy) Name() string { return "heat" }

// Attach implements Policy.
func (p *HeatPolicy) Attach(m *sim.Machine, g *cgroup.Group, tr Tracker) error {
	p.m = m
	p.group = g
	p.tr = tr
	p.mv.m = m
	if p.PromoteFraction == 0 {
		p.PromoteFraction = defaultPromoteFraction
	}
	if p.DemoteFraction == 0 {
		p.DemoteFraction = defaultDemoteFraction
	}
	if p.HalfLifeNs == 0 {
		p.HalfLifeNs = defaultHalfLifePeriods * g.Params().SamplePeriodNs
	}
	if p.PromoteFraction <= p.DemoteFraction {
		return fmt.Errorf("core: heat policy watermarks inverted (promote %.3g ≤ demote %.3g)",
			p.PromoteFraction, p.DemoteFraction)
	}
	return nil
}

// SetScope implements Policy.
func (p *HeatPolicy) SetScope(provider func() []addr.Range) { p.scope = provider }

// SetRetryPolicy overrides the migration retry/quarantine parameters.
func (p *HeatPolicy) SetRetryPolicy(maxAttempts int, backoffBaseNs int64, quarantinePeriods uint64) {
	p.mv.setRetryPolicy(maxAttempts, backoffBaseNs, quarantinePeriods)
}

// IsCold implements Policy.
func (p *HeatPolicy) IsCold(base addr.Virt) bool { return p.cold[base] }

// ColdPages implements Policy.
func (p *HeatPolicy) ColdPages() int { return len(p.cold) }

// QuarantinedPages returns the pages currently serving a quarantine
// sentence.
func (p *HeatPolicy) QuarantinedPages() int { return len(p.mv.quarUntil) }

// ActiveQuarantinedPages returns the pages whose quarantine sentence is
// still running (excludes lazily-unexpired entries).
func (p *HeatPolicy) ActiveQuarantinedPages() int { return p.mv.activeQuarantined() }

// PlacementStats implements Policy.
func (p *HeatPolicy) PlacementStats() PlacementStats { return p.mv.stats() }

// EndPeriod implements Policy.
func (p *HeatPolicy) EndPeriod() {
	p.mv.endPeriod()
	p.moved = make(map[addr.Virt]bool)
}

// Footprint implements Policy.
func (p *HeatPolicy) Footprint(m *sim.Machine) sim.Footprint {
	return sim.ScanFootprint(m, scopeRangesOf(p.scope))
}

// Heat returns the page's current heat score (for inspection and tests).
func (p *HeatPolicy) Heat(base addr.Virt) float64 { return p.heat[base] }

// maxHeat bounds the accumulated score.
func (p *HeatPolicy) maxHeat() float64 {
	return maxHeatFactor * p.group.Params().TargetSlowAccessRate()
}

// DecayFactor returns the multiplicative heat decay over an idle stretch of
// dtSec seconds: 2^(-dt/halfLife). It is monotonically non-increasing in
// dtSec and never exceeds 1.
func (p *HeatPolicy) DecayFactor(dtSec float64) float64 {
	if dtSec <= 0 {
		return 1
	}
	half := float64(p.HalfLifeNs) / 1e9
	if half <= 0 {
		return 0
	}
	return math.Exp2(-dtSec / half)
}

// bump applies one interval's measurement to a page's heat: decay the old
// score over the interval, add the measured rate, clamp to the bound.
func (p *HeatPolicy) bump(base addr.Virt, rate, dtSec float64) {
	h := p.heat[base]*p.DecayFactor(dtSec) + rate
	if max := p.maxHeat(); h > max {
		h = max
	}
	p.heat[base] = h
}

// watermarks resolves the current promotion/demotion heat thresholds.
func (p *HeatPolicy) watermarks() (promote, demote float64) {
	target := p.group.Params().TargetSlowAccessRate()
	return p.PromoteFraction * target, p.DemoteFraction * target
}

// Correct implements Policy: measure the cold set, recharge heats, and
// promote pages whose heat crossed the promotion watermark — hottest
// first, so a full top tier serves the strongest candidates.
func (p *HeatPolicy) Correct(intervalSec float64) error {
	p.lastInterval = intervalSec
	p.lastColdRate = 0
	if len(p.cold) == 0 {
		return nil
	}
	measured := p.tr.MeasureCold(sortedColdSet(p.cold), intervalSec)
	promoteWM, _ := p.watermarks()
	var cands []Measured
	for _, c := range measured {
		p.lastColdRate += c.Rate
		p.bump(c.Base, c.Rate, intervalSec)
		if p.mv.isQuarantined(c.Base) || p.moved[c.Base] {
			continue
		}
		if p.heat[c.Base] >= promoteWM {
			cands = append(cands, Measured{Base: c.Base, Rate: p.heat[c.Base]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Rate != cands[j].Rate {
			return cands[i].Rate > cands[j].Rate
		}
		return cands[i].Base < cands[j].Base
	})
	if rec := p.m.Recorder(); rec != nil {
		for _, c := range cands {
			rec.Event(telemetry.Event{
				Kind: telemetry.KindClassified, TimeNs: p.m.Clock(),
				Page: c.Base, Rate: c.Rate, Cold: false,
			})
		}
	}
	for _, c := range cands {
		if err := p.promote(c.Base); err != nil {
			return err
		}
	}
	return nil
}

// promote moves a cold page one tier up; reaching the top tier removes it
// from the cold set, an intermediate stop keeps it monitored.
func (p *HeatPolicy) promote(base addr.Virt) error {
	handled, err := p.mv.attemptMove(base, func() error {
		_, err := p.m.Promote(base)
		return err
	})
	if err != nil {
		return err
	}
	if handled {
		p.mv.promoteFailures.Inc()
		return nil
	}
	p.mv.promotions.Inc()
	p.moved[base] = true
	if tier, err := p.m.Migrator().TierOfPage(base); err == nil && tier != mem.Fast {
		p.tr.NotePlaced(base)
		return nil
	}
	delete(p.cold, base)
	return nil
}

// Place implements Policy: recharge top-tier heats from this interval's
// estimates and demote pages whose heat decayed below the demotion
// watermark — coldest first. Pages promoted earlier this tick are immune
// (no single-tick oscillation), as are quarantined pages.
func (p *HeatPolicy) Place(ests []Estimate) error {
	dt := p.lastInterval
	if dt <= 0 {
		dt = float64(p.group.Params().SamplePeriodNs) / 1e9
	}
	_, demoteWM := p.watermarks()
	var cands []Estimate
	for _, est := range ests {
		p.bump(est.Base, est.Rate, dt)
		if p.cold[est.Base] || p.moved[est.Base] || p.mv.isQuarantined(est.Base) {
			continue
		}
		if p.heat[est.Base] <= demoteWM {
			cands = append(cands, Estimate{Base: est.Base, Rate: p.heat[est.Base]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Rate != cands[j].Rate {
			return cands[i].Rate < cands[j].Rate
		}
		return cands[i].Base < cands[j].Base
	})
	if rec := p.m.Recorder(); rec != nil && len(ests) > 0 {
		chosen := make(map[addr.Virt]bool, len(cands))
		for _, c := range cands {
			chosen[c.Base] = true
		}
		for _, est := range ests {
			rec.Event(telemetry.Event{
				Kind: telemetry.KindClassified, TimeNs: p.m.Clock(),
				Page: est.Base, Rate: est.Rate, Cold: chosen[est.Base],
			})
		}
	}
	for _, c := range cands {
		if err := p.demote(c.Base); err != nil {
			return err
		}
	}
	return nil
}

// demote moves a top-tier page one tier down.
func (p *HeatPolicy) demote(base addr.Virt) error {
	_, err := p.DemoteForCapacity(base)
	return err
}

// DemoteForCapacity demotes one top-tier page through the normal placement
// machinery and reports whether it actually moved (the arbiter's squeeze
// path, see ThresholdPolicy.DemoteForCapacity).
func (p *HeatPolicy) DemoteForCapacity(base addr.Virt) (bool, error) {
	handled, err := p.mv.attemptMove(base, func() error {
		_, err := p.m.Demote(base)
		return err
	})
	if err != nil {
		return false, err
	}
	if handled {
		p.mv.demoteFailures.Inc()
		return false, nil
	}
	p.tr.NotePlaced(base)
	p.cold[base] = true
	p.moved[base] = true
	p.mv.demotions.Inc()
	return true, nil
}

// MeasuredColdRate returns the aggregate measured access rate to the cold
// set from the most recent correction pass, in accesses/sec.
func (p *HeatPolicy) MeasuredColdRate() float64 { return p.lastColdRate }

// QuarantinedBases returns the currently-quarantined page bases in address
// order (including lazily-unexpired entries).
func (p *HeatPolicy) QuarantinedBases() []addr.Virt { return p.mv.quarantinedBases() }
