package core

import (
	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/mem"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
)

// sinkAfterIdleScans is how many consecutive zero-access correction passes
// sink a cold page one tier deeper in an N-tier hierarchy.
const sinkAfterIdleScans = 3

// ThresholdPolicy is the paper's slowdown-threshold placement rule: demote
// the coldest estimated pages while their cumulative access rate stays
// within the coverage-scaled budget implied by the tolerable slowdown
// (§3.4), and correct mis-classifications by promoting the hottest cold
// pages whenever the measured aggregate cold-access rate exceeds the target
// (§3.5). In hierarchies deeper than the paper's two tiers it additionally
// sinks persistently idle cold pages one tier further down.
type ThresholdPolicy struct {
	group *cgroup.Group
	m     *sim.Machine
	tr    Tracker

	// cold tracks every page below the top tier; in an N-tier hierarchy
	// the page may sit in any lower tier (idleStreak drives it deeper).
	cold map[addr.Virt]bool

	// idleStreak counts consecutive zero-access correction passes per
	// cold page; pages idle for sinkAfterIdleScans passes sink one tier
	// deeper when the hierarchy has more than two tiers.
	idleStreak map[addr.Virt]int

	// scope, when set, restricts footprint accounting.
	scope func() []addr.Range

	// noCorrection disables the §3.5 corrector (ablation).
	noCorrection bool

	// lastColdRate is the aggregate measured access rate to the cold set
	// from the most recent Correct pass (accesses/sec) — the input to the
	// per-tenant slowdown estimate the fleet arbiter feeds on.
	lastColdRate float64

	mv mover
}

// NewThresholdPolicy builds the slowdown-threshold policy with the default
// migration retry parameters.
func NewThresholdPolicy() *ThresholdPolicy {
	return &ThresholdPolicy{
		cold:       make(map[addr.Virt]bool),
		idleStreak: make(map[addr.Virt]int),
		mv:         newMover(),
	}
}

// Name implements Policy.
func (p *ThresholdPolicy) Name() string { return "threshold" }

// StateBytes reports the policy's resident metadata: the cold set and the
// sink idle-streak map. Both hold one entry per cold page, not per mapped
// page, so a mostly-untouched terabyte costs the policy almost nothing.
func (p *ThresholdPolicy) StateBytes() uint64 {
	return uint64(len(p.cold))*16 + uint64(len(p.idleStreak))*16
}

// Attach implements Policy.
func (p *ThresholdPolicy) Attach(m *sim.Machine, g *cgroup.Group, tr Tracker) error {
	p.m = m
	p.group = g
	p.tr = tr
	p.mv.m = m
	return nil
}

// SetScope implements Policy.
func (p *ThresholdPolicy) SetScope(provider func() []addr.Range) { p.scope = provider }

// SetCorrection enables or disables the §3.5 corrector. For ablation
// studies: without it, mis-classified pages stay in slow memory until
// resampled, and slowdown is unbounded under working-set changes.
func (p *ThresholdPolicy) SetCorrection(on bool) { p.noCorrection = !on }

// SetRetryPolicy overrides the migration retry/quarantine parameters (for
// tests and experiments). maxAttempts < 1 is clamped to 1.
func (p *ThresholdPolicy) SetRetryPolicy(maxAttempts int, backoffBaseNs int64, quarantinePeriods uint64) {
	p.mv.setRetryPolicy(maxAttempts, backoffBaseNs, quarantinePeriods)
}

// IsCold implements Policy (and sim.ColdChecker through the engine).
func (p *ThresholdPolicy) IsCold(base addr.Virt) bool { return p.cold[base] }

// ColdPages implements Policy.
func (p *ThresholdPolicy) ColdPages() int { return len(p.cold) }

// QuarantinedPages returns the number of pages currently serving a
// quarantine sentence (including lazily-unexpired entries).
func (p *ThresholdPolicy) QuarantinedPages() int { return len(p.mv.quarUntil) }

// ActiveQuarantinedPages returns the pages whose quarantine sentence is
// still running (excludes lazily-unexpired entries).
func (p *ThresholdPolicy) ActiveQuarantinedPages() int { return p.mv.activeQuarantined() }

// PlacementStats implements Policy.
func (p *ThresholdPolicy) PlacementStats() PlacementStats { return p.mv.stats() }

// EndPeriod implements Policy.
func (p *ThresholdPolicy) EndPeriod() { p.mv.endPeriod() }

// scopeRanges returns the current scope (nil = everything).
func (p *ThresholdPolicy) scopeRanges() []addr.Range {
	if p.scope == nil {
		return nil
	}
	return p.scope()
}

// Footprint implements Policy: classify every mapped leaf by backing tier
// and grain.
func (p *ThresholdPolicy) Footprint(m *sim.Machine) sim.Footprint {
	return sim.ScanFootprint(m, p.scopeRanges())
}

// Correct implements §3.5: measure every cold page's access rate through
// the tracker and promote the hottest pages one tier up until the aggregate
// is back under the target rate. In hierarchies deeper than the paper's two
// tiers, it additionally sinks persistently idle cold pages one tier
// further down.
func (p *ThresholdPolicy) Correct(intervalSec float64) error {
	p.lastColdRate = 0
	if p.noCorrection || len(p.cold) == 0 {
		return nil
	}
	// Canonical order so equal-rate ties break deterministically (map
	// iteration order must not leak into placement decisions).
	all := p.tr.MeasureCold(sortedColdSet(p.cold), intervalSec)
	for _, c := range all {
		p.lastColdRate += c.Rate
	}
	// Quarantined pages were still measured — so when the sentence expires
	// the measured rate covers one interval, not the whole bench — but are
	// not placement candidates.
	measured := make([]Measured, 0, len(all))
	for _, c := range all {
		if p.mv.isQuarantined(c.Base) {
			continue
		}
		measured = append(measured, c)
	}
	target := p.group.Params().TargetSlowAccessRate()
	promos := SelectPromotions(measured, target)
	if rec := p.m.Recorder(); rec != nil && len(promos) > 0 {
		rates := make(map[addr.Virt]float64, len(measured))
		for _, c := range measured {
			rates[c.Base] = c.Rate
		}
		for _, base := range promos {
			rec.Event(telemetry.Event{
				Kind: telemetry.KindClassified, TimeNs: p.m.Clock(),
				Page: base, Rate: rates[base], Cold: false,
			})
		}
	}
	for _, base := range promos {
		if err := p.promote(base); err != nil {
			return err
		}
	}
	if p.m.Memory().NumTiers() > 2 {
		return p.sink(measured)
	}
	return nil
}

// sink implements the N-tier extension of the placement rule: a cold page
// measured completely idle for sinkAfterIdleScans consecutive correction
// passes moves one tier further down, freeing the warmer tier for pages
// with some residual access rate. Never reached with two tiers.
func (p *ThresholdPolicy) sink(measured []Measured) error {
	for _, c := range measured {
		if _, stillCold := p.cold[c.Base]; !stillCold {
			continue // promoted to the top tier this pass
		}
		if c.Rate > 0 {
			delete(p.idleStreak, c.Base)
			continue
		}
		p.idleStreak[c.Base]++
		if p.idleStreak[c.Base] < sinkAfterIdleScans {
			continue
		}
		tier, err := p.m.Migrator().TierOfPage(c.Base)
		if err != nil {
			return err
		}
		if tier >= p.m.Memory().Bottom() {
			continue // nowhere deeper to go
		}
		handled, err := p.mv.attemptMove(c.Base, func() error {
			_, err := p.m.Demote(c.Base)
			return err
		})
		if err != nil {
			return err
		}
		if handled {
			p.mv.demoteFailures.Inc()
			continue
		}
		p.idleStreak[c.Base] = 0
		p.tr.NotePlaced(c.Base)
		p.mv.sinks.Inc()
	}
	return nil
}

// promote moves a cold huge page one tier up the hierarchy. A page
// reaching the top (fast) tier stops being monitored; in deeper
// hierarchies a page promoted into an intermediate tier stays in the cold
// set and keeps its tracker-based monitoring. Failures take the same
// retry/quarantine path as demotions — a full fast tier degrades the
// correction, it no longer kills the run.
func (p *ThresholdPolicy) promote(base addr.Virt) error {
	handled, err := p.mv.attemptMove(base, func() error {
		_, err := p.m.Promote(base)
		return err
	})
	if err != nil {
		return err
	}
	if handled {
		p.mv.promoteFailures.Inc()
		return nil
	}
	p.mv.promotions.Inc()
	if tier, err := p.m.Migrator().TierOfPage(base); err == nil && tier != mem.Fast {
		p.tr.NotePlaced(base)
		return nil
	}
	delete(p.cold, base)
	delete(p.idleStreak, base)
	return nil
}

// Place implements the §3.4 placement rule: demote the coldest of this
// period's top-tier estimates while their cumulative rate stays within the
// coverage-scaled slow-access budget. Quarantined pages are not placement
// candidates while their sentence runs.
func (p *ThresholdPolicy) Place(ests []Estimate) error {
	params := p.group.Params()
	budget := p.tr.Coverage() * params.TargetSlowAccessRate()
	eligible := ests
	if len(p.mv.quarUntil) > 0 {
		eligible = make([]Estimate, 0, len(ests))
		for _, est := range ests {
			if !p.mv.isQuarantined(est.Base) {
				eligible = append(eligible, est)
			}
		}
	}
	coldSet := SelectColdSet(eligible, budget)
	if rec := p.m.Recorder(); rec != nil && len(ests) > 0 {
		chosen := make(map[addr.Virt]bool, len(coldSet))
		for _, base := range coldSet {
			chosen[base] = true
		}
		for _, est := range ests {
			rec.Event(telemetry.Event{
				Kind: telemetry.KindClassified, TimeNs: p.m.Clock(),
				Page: est.Base, Rate: est.Rate, Cold: chosen[est.Base],
			})
		}
	}
	for _, base := range coldSet {
		if err := p.demote(base); err != nil {
			return err
		}
	}
	return nil
}

// demote moves a classified-cold huge page down one tier; with the poison
// tracker the machine arms PMD-grain monitoring (which doubles as the
// slow-memory emulation). Failures — destination pressure or injected
// faults — are retried and then quarantined rather than aborting the run.
func (p *ThresholdPolicy) demote(base addr.Virt) error {
	_, err := p.DemoteForCapacity(base)
	return err
}

// DemoteForCapacity demotes one top-tier page through the normal placement
// machinery (retry/quarantine, cold-set membership, tracker notification)
// and reports whether the page actually moved. The fleet arbiter uses it to
// squeeze a tenant under a shrunken DRAM grant; the page joins the cold set
// so the §3.5 corrector can bring it back if it turns out hot.
func (p *ThresholdPolicy) DemoteForCapacity(base addr.Virt) (bool, error) {
	handled, err := p.mv.attemptMove(base, func() error {
		_, err := p.m.Demote(base)
		return err
	})
	if err != nil {
		return false, err
	}
	if handled {
		p.mv.demoteFailures.Inc()
		return false, nil
	}
	p.tr.NotePlaced(base)
	p.cold[base] = true
	p.mv.demotions.Inc()
	return true, nil
}

// MeasuredColdRate returns the aggregate measured access rate to the cold
// set from the most recent correction pass, in accesses/sec.
func (p *ThresholdPolicy) MeasuredColdRate() float64 { return p.lastColdRate }

// QuarantinedBases returns the currently-quarantined page bases in address
// order (including lazily-unexpired entries).
func (p *ThresholdPolicy) QuarantinedBases() []addr.Virt { return p.mv.quarantinedBases() }
