package core

import (
	"fmt"
	"sort"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/kstaled"
	"thermostat/internal/pagetable"
	"thermostat/internal/pool"
	"thermostat/internal/rng"
	"thermostat/internal/sim"
	"thermostat/internal/stats"
	"thermostat/internal/telemetry"
)

// Modeled daemon CPU costs (charged off the application critical path, as
// the paper's kthread runs on spare cores).
const (
	splitCostNs    = 2000
	collapseCostNs = 2000
	poisonCostNs   = 500
	perLeafScanNs  = kstaled.DefaultEntryCostNs
)

// reabsorbStreak is how many consecutive samples of a fast-tier page must
// find zero accessed children before the tracker folds the page back into a
// span summary (sparse tables only). Two consecutive empty samples span at
// least one full scan interval of inactivity.
const reabsorbStreak = 2

// sample tracks one huge page through a sampling cycle.
type sample struct {
	base      addr.Virt
	wasCold   bool
	nAccessed int
	poisoned  []addr.Virt
}

// PoisonTracker is the paper's PTE-poisoning sampler (§3.2): a pipelined
// three-scan cycle that, every tick, splits a fresh random sampleFraction
// cohort of huge pages, poisons up to K accessed 4KB children of the cohort
// split last tick, and turns the fault counts of the cohort poisoned last
// tick into access-rate estimates. Cold pages stay PMD-poisoned between
// samples, so MeasureCold reads whole-page fault counts for free.
type PoisonTracker struct {
	group *cgroup.Group
	r     *rng.PCG
	m     *sim.Machine
	view  View

	// The sampling cycle is pipelined (Figure 4's three scans overlap
	// across cohorts): every tick classifies the cohort poisoned last
	// tick, poisons the cohort split last tick, and splits a fresh 5%
	// cohort — so a full sample fraction completes every scan interval.
	splitCohort    map[addr.Virt]*sample
	poisonedCohort map[addr.Virt]*sample

	// seen holds per-page fault-count snapshots so the tracker consumes
	// count *deltas* instead of resetting the shared trap — multiple
	// engines (one per cgroup) can then coexist on one machine.
	seen map[addr.Virt]uint64

	// scope, when set, restricts sampling to the returned address ranges.
	scope func() []addr.Range

	// noPrefilter disables the §3.2 Accessed-bit pre-filter (ablation).
	noPrefilter bool

	// shards/shardWorkers partition the split scan's candidate collection
	// into contiguous region-sequence chunks run concurrently (<= 1 =
	// serial). Chunks merge in shard-index order and every rng draw happens
	// after the merge, so runs are bit-identical at any setting.
	shards       int
	shardWorkers int

	// idleStreak counts consecutive samples in which a restored fast-tier
	// page showed zero accessed children; at reabsorbStreak the page folds
	// back into a span summary (sparse tables only).
	idleStreak map[addr.Virt]int

	sampled stats.Counter
}

// NewPoisonTracker builds the Thermostat sampler drawing parameters from
// group and randomness from seed. It consumes the plain seed rng stream, so
// composed with the threshold policy it replays the monolithic engine's
// exact random sequence.
func NewPoisonTracker(group *cgroup.Group, seed uint64) *PoisonTracker {
	return &PoisonTracker{
		group:          group,
		r:              rng.New(seed),
		splitCohort:    make(map[addr.Virt]*sample),
		poisonedCohort: make(map[addr.Virt]*sample),
		seen:           make(map[addr.Virt]uint64),
		idleStreak:     make(map[addr.Virt]int),
	}
}

// SetSharding partitions the tracker's split scan into shards contiguous
// chunks of the region sequence, collected on up to workers goroutines.
// Values <= 1 select the serial path.
func (t *PoisonTracker) SetSharding(shards, workers int) {
	t.shards, t.shardWorkers = shards, workers
}

// Name implements Tracker.
func (t *PoisonTracker) Name() string { return "poison" }

// Attach implements Tracker.
func (t *PoisonTracker) Attach(m *sim.Machine, view View) error {
	t.m = m
	t.view = view
	return nil
}

// SetScope implements Tracker.
func (t *PoisonTracker) SetScope(provider func() []addr.Range) { t.scope = provider }

// SetPrefilter enables or disables the §3.2 two-step refinement: with the
// pre-filter off, the sampler poisons K uniformly random children instead
// of K random *accessed* children and scales estimates by the full 512 —
// the naive strategy the paper rejects because sparse hot children are
// easily missed. For ablation studies.
func (t *PoisonTracker) SetPrefilter(on bool) { t.noPrefilter = !on }

// Coverage implements Tracker: one sampleFraction cohort completes per
// interval.
func (t *PoisonTracker) Coverage() float64 { return t.group.Params().SampleFraction }

// Sampled implements Tracker.
func (t *PoisonTracker) Sampled() uint64 { return t.sampled.Value() }

// InflightPages returns the number of huge pages currently split for
// sampling (both pipeline cohorts).
func (t *PoisonTracker) InflightPages() int { return len(t.splitCohort) + len(t.poisonedCohort) }

// scopeRanges returns the current scope (nil = everything).
func (t *PoisonTracker) scopeRanges() []addr.Range {
	if t.scope == nil {
		return nil
	}
	return t.scope()
}

// delta returns the page's fault-count increase since this tracker last
// looked, without disturbing the shared trap state. base is always the base
// address of a currently-mapped leaf (a cold huge page or a split child), so
// the trap's CountLeaf fast path applies.
func (t *PoisonTracker) delta(base addr.Virt) uint64 {
	c := t.m.Trap().CountLeaf(base)
	d := c - t.seen[base]
	t.seen[base] = c
	return d
}

// snapshot records the page's current count as already-consumed, so the
// next delta covers only events from now on.
func (t *PoisonTracker) snapshot(base addr.Virt) {
	t.seen[base] = t.m.Trap().CountLeaf(base)
}

// NotePlaced implements Tracker: a migrated page's fault counter rebases.
func (t *PoisonTracker) NotePlaced(base addr.Virt) { t.snapshot(base) }

// inflight reports whether base is in either sampling cohort.
func (t *PoisonTracker) inflight(base addr.Virt) bool {
	if _, ok := t.splitCohort[base]; ok {
		return true
	}
	_, ok := t.poisonedCohort[base]
	return ok
}

// cohortSorted returns the cohort's samples in ascending base order, the
// canonical iteration order for rng draws and telemetry events (Go map
// order must not leak into either).
func cohortSorted(cohort map[addr.Virt]*sample) []*sample {
	out := make([]*sample, 0, len(cohort))
	for _, s := range cohort {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

// MeasureCold implements Tracker: every cold page stays PMD-poisoned, so
// its access rate over the interval is its fault-count delta. Pages
// mid-pipeline are skipped — their counts are consumed at classify.
func (t *PoisonTracker) MeasureCold(cold []addr.Virt, intervalSec float64) []Measured {
	out := make([]Measured, 0, len(cold))
	for _, base := range cold {
		if t.inflight(base) {
			continue // being re-sampled; counted at classify
		}
		d := t.delta(base)
		out = append(out, Measured{
			Base: base,
			Rate: float64(d) / intervalSec,
		})
	}
	return out
}

// Estimates implements Tracker: it closes the pipeline's classify scan —
// estimate each sampled page's access rate from the poison-fault deltas,
// then restore every sampled page to a huge mapping (re-arming PMD-grain
// monitoring on the still-cold ones).
func (t *PoisonTracker) Estimates(intervalSec float64) ([]Estimate, error) {
	var fastEsts []Estimate
	var daemon int64
	cohort := cohortSorted(t.poisonedCohort)
	for _, s := range cohort {
		if s.wasCold {
			// Whole region was poisoned: total faults are the estimate.
			// The rate feeds the corrector via MeasureCold next interval;
			// here the delta consumption is what matters.
			var faults uint64
			for i := 0; i < addr.PagesPerHuge; i++ {
				faults += t.delta(s.base + addr.Virt(uint64(i)*addr.PageSize4K))
			}
			_ = float64(faults) / intervalSec
		} else {
			var faults uint64
			for _, child := range s.poisoned {
				faults += t.delta(child)
			}
			rate := ScaleEstimate(faults, intervalSec, s.nAccessed, len(s.poisoned))
			fastEsts = append(fastEsts, Estimate{Base: s.base, Rate: rate})
		}
		daemon += int64(addr.PagesPerHuge) * perLeafScanNs
	}
	sort.Slice(fastEsts, func(i, j int) bool { return fastEsts[i].Base < fastEsts[j].Base })

	// Restore all sampled pages to huge mappings.
	for _, s := range cohort {
		if err := t.restore(s); err != nil {
			return nil, err
		}
		daemon += collapseCostNs
	}
	t.poisonedCohort = make(map[addr.Virt]*sample)
	t.m.ChargeDaemon(daemon)
	return fastEsts, nil
}

// restore collapses a sampled page back to a 2MB mapping, clearing child
// poisons first and re-arming PMD-grain monitoring if the page is cold.
func (t *PoisonTracker) restore(s *sample) error {
	pt := t.m.PageTable()
	region := addr.NewRange(s.base, addr.PageSize2M)
	if n := pt.ClearFlagsRange(region, pagetable.Poisoned); n != addr.PagesPerHuge {
		return fmt.Errorf("core: sampled children of %s vanished (%d of %d left)",
			s.base, n, addr.PagesPerHuge)
	}
	if err := pt.Collapse(s.base); err != nil {
		return fmt.Errorf("core: collapse %s: %w", s.base, err)
	}
	t.m.TLB().Invalidate(s.base, t.m.VPID())
	if rec := t.m.Recorder(); rec != nil {
		rec.Event(telemetry.Event{
			Kind: telemetry.KindHugePageCollapse, TimeNs: t.m.Clock(), Page: s.base,
		})
	}
	if t.view.IsCold(s.base) {
		if err := t.m.Trap().Poison(s.base, t.m.VPID()); err != nil {
			return err
		}
		t.snapshot(s.base)
		return nil
	}
	if pt.SpansEnabled() {
		// Idle-streak reabsorb: a fast-tier page whose sample found no
		// accessed children is a candidate to fold back into a span summary.
		// Cold pages never qualify (they stay PMD-poisoned for monitoring,
		// and spans carry no poison); an accessed page resets its streak.
		if s.nAccessed == 0 {
			t.idleStreak[s.base]++
			if t.idleStreak[s.base] >= reabsorbStreak {
				delete(t.idleStreak, s.base)
				pt.Reabsorb(s.base)
			}
		} else {
			delete(t.idleStreak, s.base)
		}
	}
	return nil
}

// StateBytes reports the tracker's resident metadata: both pipeline cohorts,
// the fault-count snapshot map and the idle-streak map. With region-grain
// sampling the snapshot map holds entries only for pages that were actually
// sampled or cold, so it stays far below one entry per mapped page.
func (t *PoisonTracker) StateBytes() uint64 {
	// sample record + map slot: ~64 bytes; uint64/int map slots: ~24/16.
	return uint64(len(t.splitCohort)+len(t.poisonedCohort))*64 +
		uint64(len(t.seen))*24 + uint64(len(t.idleStreak))*16
}

// Arm implements Tracker: run the poison scan over the cohort split last
// interval, then split a fresh cohort whose Accessed bits accumulate over
// the next interval.
func (t *PoisonTracker) Arm() error {
	if err := t.scanPoison(); err != nil {
		return err
	}
	return t.scanSplit()
}

// splitCandidates returns the in-scope, non-inflight 2MB-grain sampling
// candidates in address order. On a dense table this is exactly the old
// per-leaf sweep; on a sparse table a multi-page span contributes one
// candidate — its base page, which Split carves out if selected — so the
// scan costs O(regions), not O(pages). With sharding enabled the region
// sequence is collected in contiguous chunks concurrently and concatenated
// in shard-index order, which by the ScanRegionsShard contract reproduces
// the serial sequence exactly.
func (t *PoisonTracker) splitCandidates() []addr.Virt {
	pt := t.m.PageTable()
	ranges := t.scopeRanges()
	want := func(base addr.Virt, lvl pagetable.Level) bool {
		return lvl == pagetable.Level2M && !t.inflight(base) && scopeContains(base, ranges)
	}
	if t.shards <= 1 {
		var out []addr.Virt
		pt.ScanRegions(func(base addr.Virt, pages int, e *pagetable.Entry, lvl pagetable.Level) {
			if want(base, lvl) {
				out = append(out, base)
			}
		})
		return out
	}
	tasks := make([]pool.Task[[]addr.Virt], t.shards)
	for i := 0; i < t.shards; i++ {
		shard := i
		tasks[i] = pool.Task[[]addr.Virt]{
			Label: fmt.Sprintf("split-shard/%d", shard),
			Run: func() ([]addr.Virt, error) {
				var out []addr.Virt
				pt.ScanRegionsShard(shard, t.shards, func(base addr.Virt, pages int, e *pagetable.Entry, lvl pagetable.Level) {
					if want(base, lvl) {
						out = append(out, base)
					}
				})
				return out, nil
			},
		}
	}
	parts, _ := pool.Map(t.shardWorkers, tasks) // collect-only tasks cannot fail
	var out []addr.Virt
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// scanSplit selects a random sampleFraction of all huge pages — hot or cold,
// the sampler is agnostic (§3.2) — and splits them so their 4KB children can
// be profiled individually. Pages already mid-pipeline are excluded. All
// mutations (splits, cohort inserts, rng draws) happen after the candidate
// merge, serially in sampled order.
func (t *PoisonTracker) scanSplit() error {
	pt := t.m.PageTable()
	candidates := t.splitCandidates()
	var daemon int64 = int64(len(candidates)) * perLeafScanNs
	if len(candidates) == 0 {
		t.m.ChargeDaemon(daemon)
		return nil
	}
	f := t.group.Params().SampleFraction
	n := int(f * float64(len(candidates)))
	if n < 1 {
		n = 1
	}
	rec := t.m.Recorder()
	for _, idx := range t.r.Sample(len(candidates), n) {
		base := candidates[idx]
		if err := pt.Split(base); err != nil {
			return fmt.Errorf("core: split %s: %w", base, err)
		}
		// Splitting replaced the 2MB translation with 4KB ones; drop the
		// stale huge-grain TLB entry.
		t.m.TLB().Invalidate(base, t.m.VPID())
		t.splitCohort[base] = &sample{base: base, wasCold: t.view.IsCold(base)}
		t.sampled.Inc()
		if rec != nil {
			rec.Event(telemetry.Event{
				Kind: telemetry.KindHugePageSplit, TimeNs: t.m.Clock(), Page: base,
			})
			rec.Event(telemetry.Event{
				Kind: telemetry.KindPageSampled, TimeNs: t.m.Clock(),
				Page: base, Cold: t.view.IsCold(base),
			})
		}
		daemon += splitCostNs
	}
	t.m.ChargeDaemon(daemon)
	return nil
}

// scanPoison runs the §3.2 two-step refinement for each sampled page: read
// the hardware-maintained Accessed bits of all 512 children to find those
// with non-zero access rate, then poison a random subset of at most K of
// them for precise fault-based counting.
//
// Pages that were already cold need no subset selection: their children
// inherited the poison bit from the cold page's PMD at split time, so every
// access is already being counted.
func (t *PoisonTracker) scanPoison() error {
	trap := t.m.Trap()
	k := t.group.Params().MaxPoisonPerHuge
	var daemon int64
	for _, s := range cohortSorted(t.splitCohort) {
		daemon += int64(addr.PagesPerHuge) * perLeafScanNs
		if s.wasCold {
			s.nAccessed = addr.PagesPerHuge
			s.poisoned = nil // estimate uses the whole-region fault count
			// Counting starts now: absorb events from the split interval.
			for i := 0; i < addr.PagesPerHuge; i++ {
				t.snapshot(s.base + addr.Virt(uint64(i)*addr.PageSize4K))
			}
			continue
		}
		var accessed []int
		if t.noPrefilter {
			// Naive strategy (ablation): all children are candidates and
			// the estimate scales by the full 512.
			accessed = make([]int, addr.PagesPerHuge)
			for i := range accessed {
				accessed[i] = i
			}
		} else {
			accessed = kstaled.AccessedSubpages(t.m.PageTable(), s.base)
		}
		s.nAccessed = len(accessed)
		if s.nAccessed == 0 {
			continue
		}
		nPoison := k
		if nPoison > s.nAccessed {
			nPoison = s.nAccessed
		}
		for _, pick := range t.r.Sample(s.nAccessed, nPoison) {
			child := s.base + addr.Virt(uint64(accessed[pick])*addr.PageSize4K)
			if err := trap.Poison(child, t.m.VPID()); err != nil {
				return err
			}
			t.snapshot(child)
			s.poisoned = append(s.poisoned, child)
			daemon += poisonCostNs
		}
	}
	// Advance the cohort down the pipeline.
	for base, s := range t.splitCohort {
		t.poisonedCohort[base] = s
	}
	t.splitCohort = make(map[addr.Virt]*sample)
	t.m.ChargeDaemon(daemon)
	return nil
}
