package core

import (
	"testing"
	"testing/quick"

	"thermostat/internal/addr"
	"thermostat/internal/rng"
)

func TestSelectColdSetTakesColdestWithinBudget(t *testing.T) {
	t.Parallel()
	ests := []Estimate{
		{Base: addr.Virt2M(1), Rate: 100},
		{Base: addr.Virt2M(2), Rate: 5},
		{Base: addr.Virt2M(3), Rate: 0},
		{Base: addr.Virt2M(4), Rate: 50},
	}
	got := SelectColdSet(ests, 60)
	// Sorted: 0, 5, 50, 100 -> cumulative 0, 5, 55; adding 100 exceeds 60.
	want := []addr.Virt{addr.Virt2M(3), addr.Virt2M(2), addr.Virt2M(4)}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSelectColdSetZeroBudgetTakesOnlyZeroRate(t *testing.T) {
	t.Parallel()
	ests := []Estimate{
		{Base: addr.Virt2M(1), Rate: 0},
		{Base: addr.Virt2M(2), Rate: 0.1},
	}
	got := SelectColdSet(ests, 0)
	if len(got) != 1 || got[0] != addr.Virt2M(1) {
		t.Fatalf("got %v", got)
	}
}

func TestSelectColdSetEmpty(t *testing.T) {
	t.Parallel()
	if got := SelectColdSet(nil, 100); got != nil {
		t.Fatalf("got %v", got)
	}
}

func TestSelectColdSetDoesNotMutateInput(t *testing.T) {
	t.Parallel()
	ests := []Estimate{{Base: addr.Virt2M(1), Rate: 9}, {Base: addr.Virt2M(2), Rate: 1}}
	SelectColdSet(ests, 100)
	if ests[0].Rate != 9 {
		t.Fatal("input reordered")
	}
}

func TestSelectPromotionsUnderTargetIsNil(t *testing.T) {
	t.Parallel()
	cold := []Measured{{Base: addr.Virt2M(1), Rate: 10}, {Base: addr.Virt2M(2), Rate: 15}}
	if got := SelectPromotions(cold, 30); got != nil {
		t.Fatalf("got %v, want nil", got)
	}
}

func TestSelectPromotionsEvictsHottestFirst(t *testing.T) {
	t.Parallel()
	cold := []Measured{
		{Base: addr.Virt2M(1), Rate: 10},
		{Base: addr.Virt2M(2), Rate: 100},
		{Base: addr.Virt2M(3), Rate: 40},
	}
	got := SelectPromotions(cold, 45)
	// Total 150 > 45: evict 100 (total 50, still over), then 40 (total 10).
	want := []addr.Virt{addr.Virt2M(2), addr.Virt2M(3)}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSelectPromotionsAllIfNeeded(t *testing.T) {
	t.Parallel()
	cold := []Measured{{Base: addr.Virt2M(1), Rate: 50}, {Base: addr.Virt2M(2), Rate: 50}}
	if got := SelectPromotions(cold, 0); len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

// Property: the cold set's cumulative rate never exceeds the budget, and the
// selection is maximal in count among prefix selections of the sorted order.
func TestSelectColdSetBudgetProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, budgetRaw uint16) bool {
		r := rng.New(seed)
		budget := float64(budgetRaw % 1000)
		n := 1 + r.Intn(50)
		ests := make([]Estimate, n)
		rates := map[addr.Virt]float64{}
		for i := range ests {
			ests[i] = Estimate{Base: addr.Virt2M(uint64(i)), Rate: float64(r.Intn(200))}
			rates[ests[i].Base] = ests[i].Rate
		}
		picked := SelectColdSet(ests, budget)
		sum := 0.0
		for _, b := range picked {
			sum += rates[b]
		}
		if sum > budget {
			return false
		}
		// Every non-picked page must not fit: adding the cheapest
		// remaining page would exceed budget.
		pickedSet := map[addr.Virt]bool{}
		for _, b := range picked {
			pickedSet[b] = true
		}
		minRemaining := -1.0
		for _, e := range ests {
			if !pickedSet[e.Base] && (minRemaining < 0 || e.Rate < minRemaining) {
				minRemaining = e.Rate
			}
		}
		return minRemaining < 0 || sum+minRemaining > budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: after applying SelectPromotions the remaining rate is within
// target (or everything was promoted).
func TestSelectPromotionsConvergesProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, targetRaw uint16) bool {
		r := rng.New(seed)
		target := float64(targetRaw % 500)
		n := r.Intn(40)
		cold := make([]Measured, n)
		total := 0.0
		for i := range cold {
			cold[i] = Measured{Base: addr.Virt2M(uint64(i)), Rate: float64(r.Intn(100))}
			total += cold[i].Rate
		}
		promoted := map[addr.Virt]bool{}
		for _, b := range SelectPromotions(cold, target) {
			promoted[b] = true
		}
		remaining := 0.0
		for _, c := range cold {
			if !promoted[c.Base] {
				remaining += c.Rate
			}
		}
		return remaining <= target || len(promoted) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScaleEstimate(t *testing.T) {
	t.Parallel()
	// 30 faults in 10s over 10 poisoned of 100 accessed pages:
	// observed 3/s scaled by 10x = 30/s.
	if got := ScaleEstimate(30, 10, 100, 10); got != 30 {
		t.Fatalf("ScaleEstimate = %v, want 30", got)
	}
	// Degenerate inputs.
	if ScaleEstimate(5, 10, 100, 0) != 0 {
		t.Fatal("zero poisoned should give 0")
	}
	if ScaleEstimate(5, 0, 100, 10) != 0 {
		t.Fatal("zero interval should give 0")
	}
	// Full coverage: no scaling.
	if got := ScaleEstimate(50, 1, 50, 50); got != 50 {
		t.Fatalf("unscaled = %v", got)
	}
}
