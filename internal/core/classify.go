// Package core implements Thermostat itself: the online, huge-page-aware
// hot/cold page classification and placement mechanism of Section 3.
//
// The engine runs a three-scan sampling cycle per sampling period
// (Figure 4):
//
//	scan 1 — split a random fraction of huge pages (5%) and clear their
//	         children's Accessed bits;
//	scan 2 — read the Accessed-bit pre-filter, then poison up to K (50)
//	         randomly chosen accessed 4KB children per sampled page;
//	scan 3 — estimate each sampled huge page's access rate from the poison
//	         fault counts, classify the coldest into slow memory under the
//	         fraction-scaled rate budget, and restore the rest.
//
// Independently, every scan interval the corrector (§3.5) compares the
// measured access rate of all cold pages against the target rate implied by
// the tolerable slowdown and promotes the hottest cold pages back to fast
// memory until the rate is under budget.
package core

import (
	"sort"

	"thermostat/internal/addr"
)

// Estimate is one sampled huge page's estimated access rate.
type Estimate struct {
	// Base is the huge page's virtual base address.
	Base addr.Virt
	// Rate is the estimated accesses/second for the whole 2MB page.
	Rate float64
}

// SelectColdSet implements the §3.4 placement rule: sort the sampled pages
// by estimated access rate ascending and take the coldest pages while their
// cumulative rate stays within budget (accesses/second). Pages with any
// negative rate are rejected by panic — estimates are counts over time.
func SelectColdSet(ests []Estimate, budget float64) []addr.Virt {
	sorted := append([]Estimate(nil), ests...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Rate < sorted[j].Rate })
	var out []addr.Virt
	sum := 0.0
	for _, e := range sorted {
		if e.Rate < 0 {
			panic("core: negative rate estimate")
		}
		if sum+e.Rate > budget {
			break
		}
		sum += e.Rate
		out = append(out, e.Base)
	}
	return out
}

// Measured is one cold page's measured access rate (from poison-fault
// counts).
type Measured struct {
	Base addr.Virt
	Rate float64
}

// SelectPromotions implements the §3.5 correction rule: given the measured
// rates of all pages currently in slow memory, if their aggregate exceeds
// target (accesses/second), promote the most frequently accessed pages until
// the remainder fits. Returns the pages to promote, hottest first.
func SelectPromotions(cold []Measured, target float64) []addr.Virt {
	total := 0.0
	for _, c := range cold {
		total += c.Rate
	}
	if total <= target {
		return nil
	}
	sorted := append([]Measured(nil), cold...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Rate > sorted[j].Rate })
	var out []addr.Virt
	for _, c := range sorted {
		if total <= target {
			break
		}
		total -= c.Rate
		out = append(out, c.Base)
	}
	return out
}

// ScaleEstimate implements the §3.2 spatial extrapolation: the aggregate
// rate of a 2MB page is the observed fault rate over the poisoned sample
// scaled by the ratio of accessed 4KB pages to poisoned 4KB pages. The
// remaining (never-accessed) pages are assumed to contribute nothing.
func ScaleEstimate(faultCount uint64, intervalSec float64, nAccessed, nPoisoned int) float64 {
	if nPoisoned == 0 || intervalSec <= 0 {
		return 0
	}
	observed := float64(faultCount) / intervalSec
	return observed * float64(nAccessed) / float64(nPoisoned)
}
