package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"thermostat/internal/rng"
)

func TestWorkers(t *testing.T) {
	t.Parallel()
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func squares(n int) []Task[int] {
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Label: fmt.Sprintf("sq/%d", i),
			Run:   func() (int, error) { return i * i, nil },
		}
	}
	return tasks
}

func TestMapOrderAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	for _, w := range []int{0, 1, 2, 7, 64} {
		res, err := Map(w, squares(33))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("workers=%d: res[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	t.Parallel()
	res, err := Map(4, []Task[int]{})
	if err != nil || len(res) != 0 {
		t.Fatalf("Map(4, nil) = %v, %v", res, err)
	}
}

func TestMapCollectsErrorsAndKeepsRunning(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	ran := make([]bool, 6)
	tasks := make([]Task[int], 6)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("t%d", i), Run: func() (int, error) {
			ran[i] = true
			if i%2 == 1 {
				return 0, boom
			}
			return i, nil
		}}
	}
	for _, w := range []int{1, 3} {
		for i := range ran {
			ran[i] = false
		}
		res, err := Map(w, tasks)
		if err == nil {
			t.Fatalf("workers=%d: no error", w)
		}
		for i, r := range ran {
			if !r {
				t.Errorf("workers=%d: task %d never ran after earlier failure", w, i)
			}
			if i%2 == 0 && res[i] != i {
				t.Errorf("workers=%d: healthy task %d result lost", w, i)
			}
		}
		var te *TaskError
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: error %v does not unwrap to *TaskError", w, err)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: joined error loses the cause", w)
		}
	}
}

// TestMapOptsDefaultRunsEverything pins the default contract: without
// FailFast, a failure never prevents later tasks from running — the
// behavior every existing experiment depends on.
func TestMapOptsDefaultRunsEverything(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	var ran [4]atomic.Bool
	tasks := make([]Task[int], 4)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("t%d", i), Run: func() (int, error) {
			ran[i].Store(true)
			if i == 0 {
				return 0, boom
			}
			return i, nil
		}}
	}
	for _, w := range []int{1, 3} {
		for i := range ran {
			ran[i].Store(false)
		}
		_, err := MapOpts(Options{Workers: w}, tasks)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: failure not reported: %v", w, err)
		}
		if errors.Is(err, ErrSkipped) {
			t.Fatalf("workers=%d: default options skipped a task", w)
		}
		for i := range ran {
			if !ran[i].Load() {
				t.Errorf("workers=%d: task %d skipped without FailFast", w, i)
			}
		}
	}
}

// skippedIndices walks a joined error and collects the indices of tasks
// that report ErrSkipped.
func skippedIndices(t *testing.T, err error) map[int]bool {
	t.Helper()
	skipped := map[int]bool{}
	var walk func(error)
	walk = func(e error) {
		if joined, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range joined.Unwrap() {
				walk(sub)
			}
			return
		}
		var te *TaskError
		if errors.As(e, &te) && errors.Is(te.Err, ErrSkipped) {
			skipped[te.Index] = true
		}
	}
	walk(err)
	return skipped
}

func TestMapOptsFailFastSerial(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	ran := make([]bool, 5)
	tasks := make([]Task[int], 5)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("t%d", i), Run: func() (int, error) {
			ran[i] = true
			if i == 1 {
				return 0, boom
			}
			return i, nil
		}}
	}
	res, err := MapOpts(Options{Workers: 1, FailFast: true}, tasks)
	if !errors.Is(err, boom) || !errors.Is(err, ErrSkipped) {
		t.Fatalf("error misses cause or skip marker: %v", err)
	}
	if !ran[0] || !ran[1] {
		t.Fatal("tasks before the failure did not run")
	}
	for i := 2; i < 5; i++ {
		if ran[i] {
			t.Errorf("task %d ran after serial fail-fast cut-off", i)
		}
	}
	if res[0] != 0 {
		t.Errorf("pre-failure result lost: %d", res[0])
	}
	want := map[int]bool{2: true, 3: true, 4: true}
	if got := skippedIndices(t, err); len(got) != 3 || !got[2] || !got[3] || !got[4] {
		t.Fatalf("skipped = %v, want %v", got, want)
	}
}

func TestMapOptsFailFastParallelDrainsInFlight(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	started := make(chan struct{}) // task 1 is running
	failed := make(chan struct{})  // task 0 is about to fail
	tasks := make([]Task[int], 8)
	tasks[0] = Task[int]{Label: "t0", Run: func() (int, error) {
		<-started // guarantee task 1 is in flight before failing
		close(failed)
		return 0, boom
	}}
	tasks[1] = Task[int]{Label: "t1", Run: func() (int, error) {
		close(started)
		<-failed
		return 1, nil
	}}
	for i := 2; i < len(tasks); i++ {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("t%d", i), Run: func() (int, error) {
			// Give the failing worker ample time to publish the flag
			// before the dispatcher can commit another task.
			time.Sleep(2 * time.Millisecond)
			return i, nil
		}}
	}
	res, err := MapOpts(Options{Workers: 2, FailFast: true}, tasks)
	if !errors.Is(err, boom) || !errors.Is(err, ErrSkipped) {
		t.Fatalf("error misses cause or skip marker: %v", err)
	}
	// Task 1 was in flight when task 0 failed and must drain with its
	// result intact.
	if res[1] != 1 {
		t.Errorf("in-flight task 1 lost its result: %d", res[1])
	}
	// Cancellation is racy by design, but the skip set is always a
	// contiguous suffix: once the dispatcher observes the failure it
	// never dispatches again.
	skipped := skippedIndices(t, err)
	if len(skipped) == 0 {
		t.Fatal("no tasks skipped under fail-fast")
	}
	first := len(tasks)
	for i := range skipped {
		if i < first {
			first = i
		}
	}
	for i := first; i < len(tasks); i++ {
		if !skipped[i] {
			t.Errorf("skip set is not a suffix: task %d ran after task %d was skipped", i, first)
		}
		if res[i] != 0 {
			t.Errorf("skipped task %d has a result", i)
		}
	}
}

func TestMapRecoversPanicWithLabel(t *testing.T) {
	t.Parallel()
	tasks := []Task[string]{
		{Label: "fine", Run: func() (string, error) { return "ok", nil }},
		{Label: "redis-grid-cell", Run: func() (string, error) { panic("simulated blowup") }},
	}
	for _, w := range []int{1, 2} {
		res, err := Map(w, tasks)
		if err == nil {
			t.Fatalf("workers=%d: panic not reported", w)
		}
		if res[0] != "ok" {
			t.Errorf("workers=%d: surviving result lost", w)
		}
		var te *TaskError
		if !errors.As(err, &te) || te.Label != "redis-grid-cell" || te.Index != 1 {
			t.Errorf("workers=%d: panic lost its task identity: %v", w, err)
		}
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Value != "simulated blowup" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic value/stack not preserved: %v", w, err)
		}
	}
}

func TestGridShapeAndOrder(t *testing.T) {
	t.Parallel()
	grid := [][]Task[int]{}
	for r := 0; r < 4; r++ {
		var row []Task[int]
		for c := 0; c <= r; c++ { // ragged: row r has r+1 cells
			r, c := r, c
			row = append(row, Task[int]{
				Label: fmt.Sprintf("cell/%d/%d", r, c),
				Run:   func() (int, error) { return 10*r + c, nil },
			})
		}
		grid = append(grid, row)
	}
	for _, w := range []int{1, 3} {
		res, err := Grid(w, grid)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(res) != 4 {
			t.Fatalf("workers=%d: rows = %d", w, len(res))
		}
		for r, row := range res {
			if len(row) != r+1 {
				t.Fatalf("workers=%d: row %d has %d cells", w, r, len(row))
			}
			for c, v := range row {
				if v != 10*r+c {
					t.Errorf("workers=%d: cell (%d,%d) = %d", w, r, c, v)
				}
			}
		}
	}
}

// TestMapPropertyRandomLatencies is the scheduler's property test: under
// randomized task latencies and worker counts, Map must preserve input
// order in its results and collect every error and panic exactly once.
func TestMapPropertyRandomLatencies(t *testing.T) {
	t.Parallel()
	r := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		n := 1 + int(r.Uint64n(40))
		workers := int(r.Uint64n(9)) // 0 (= all cores) through 8
		wantErr := map[int]bool{}
		wantPanic := map[int]bool{}
		tasks := make([]Task[int], n)
		for i := range tasks {
			i := i
			delay := time.Duration(r.Uint64n(300)) * time.Microsecond
			kind := r.Uint64n(5)
			switch kind {
			case 3:
				wantErr[i] = true
			case 4:
				wantPanic[i] = true
			}
			tasks[i] = Task[int]{Label: fmt.Sprintf("task/%d", i), Run: func() (int, error) {
				time.Sleep(delay)
				switch kind {
				case 3:
					return 0, fmt.Errorf("err-%d", i)
				case 4:
					panic(fmt.Sprintf("panic-%d", i))
				}
				return i * 3, nil
			}}
		}
		res, err := Map(workers, tasks)
		if len(res) != n {
			t.Fatalf("trial %d: %d results for %d tasks", trial, len(res), n)
		}
		for i, v := range res {
			if wantErr[i] || wantPanic[i] {
				continue
			}
			if v != i*3 {
				t.Fatalf("trial %d (workers=%d): res[%d] = %d, order not preserved",
					trial, workers, i, v)
			}
		}
		if len(wantErr)+len(wantPanic) == 0 {
			if err != nil {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("trial %d: %d failures uncollected", trial, len(wantErr)+len(wantPanic))
		}
		// Every failure must appear exactly once, carrying its own label.
		seen := map[int]int{}
		var walk func(error)
		walk = func(e error) {
			if joined, ok := e.(interface{ Unwrap() []error }); ok {
				for _, sub := range joined.Unwrap() {
					walk(sub)
				}
				return
			}
			var te *TaskError
			if errors.As(e, &te) {
				seen[te.Index]++
				if te.Label != fmt.Sprintf("task/%d", te.Index) {
					t.Fatalf("trial %d: task %d reported under label %q", trial, te.Index, te.Label)
				}
				var pe *PanicError
				isPanic := errors.As(te.Err, &pe)
				if isPanic != wantPanic[te.Index] {
					t.Fatalf("trial %d: task %d panic/error kind mismatch", trial, te.Index)
				}
			}
		}
		walk(err)
		for i := range wantErr {
			if seen[i] != 1 {
				t.Fatalf("trial %d: error of task %d collected %d times", trial, i, seen[i])
			}
		}
		for i := range wantPanic {
			if seen[i] != 1 {
				t.Fatalf("trial %d: panic of task %d collected %d times", trial, i, seen[i])
			}
		}
	}
}
