// Package pool schedules independent deterministic simulation runs across a
// bounded set of worker goroutines.
//
// The determinism contract (see DESIGN.md): every task owns its entire
// mutable state — its own sim.Machine, workload.App, and seeded RNG — and
// communicates only through its return value. Under that contract the merge
// is order-preserving (results[i] always comes from tasks[i]) and the
// results are bit-for-bit identical at any worker count, including the
// Workers == 1 case, which runs the tasks sequentially on the calling
// goroutine exactly like the serial loops the pool replaced.
//
// Failures never tear down the process: a task that returns an error or
// panics is reported as a *TaskError carrying the task's label and index,
// and every other task still runs to completion. All failures are joined
// (in task order) into the single error Map returns. Options.FailFast
// trades that run-everything guarantee for early cancellation: the first
// failure stops dispatching queued tasks (in-flight tasks drain normally)
// and every never-dispatched task reports ErrSkipped.
package pool

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Task is one labelled unit of independent work.
type Task[T any] struct {
	// Label identifies the task in error reports (e.g. "fig11/redis/6%").
	Label string
	// Run produces the task's result. It must not share mutable state with
	// any other task.
	Run func() (T, error)
}

// TaskError wraps one task's failure with its identity.
type TaskError struct {
	Index int
	Label string
	Err   error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("task %d (%s): %v", e.Index, e.Label, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// PanicError is a recovered task panic, preserved with its stack so a
// panicking run reports its task label instead of killing the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// Workers resolves a worker-count option: n <= 0 selects GOMAXPROCS (all
// available cores), anything else is taken literally.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ErrSkipped marks a task that was never dispatched because an earlier
// task had already failed under Options.FailFast. It reaches the caller
// wrapped in that task's *TaskError, so errors.Is(err, ErrSkipped)
// distinguishes "never ran" from "ran and failed".
var ErrSkipped = errors.New("pool: task skipped after earlier failure")

// Options configures a MapOpts invocation.
type Options struct {
	// Workers bounds concurrency; <= 0 selects all cores (see Workers).
	Workers int
	// FailFast stops dispatching queued tasks once any task fails.
	// Tasks already in flight drain to completion and keep their
	// results; tasks never dispatched report ErrSkipped. The default
	// (false) preserves Map's run-everything behavior. On the serial
	// (Workers <= 1) path the cut-off is deterministic: everything
	// after the first failing task is skipped.
	FailFast bool
}

// Map runs every task on at most Workers(workers) goroutines and returns
// the results in task order. All tasks run regardless of failures; the
// returned error joins every *TaskError in task order (nil if none).
func Map[T any](workers int, tasks []Task[T]) ([]T, error) {
	return MapOpts(Options{Workers: workers}, tasks)
}

// MapOpts is Map with scheduling options.
func MapOpts[T any](opt Options, tasks []Task[T]) ([]T, error) {
	results := make([]T, len(tasks))
	errs := make([]error, len(tasks))
	w := Workers(opt.Workers)
	if w > len(tasks) {
		w = len(tasks)
	}
	if w <= 1 {
		stopped := false
		for i := range tasks {
			if stopped {
				errs[i] = &TaskError{Index: i, Label: tasks[i].Label, Err: ErrSkipped}
				continue
			}
			results[i], errs[i] = runOne(i, tasks[i])
			if errs[i] != nil && opt.FailFast {
				stopped = true
			}
		}
		return results, errors.Join(errs...)
	}
	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = runOne(i, tasks[i])
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range tasks {
		if opt.FailFast && failed.Load() {
			// Never dispatched, so no worker touches this slot.
			errs[i] = &TaskError{Index: i, Label: tasks[i].Label, Err: ErrSkipped}
			continue
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, errors.Join(errs...)
}

// Grid runs a ragged rows×cols task grid and returns results in the same
// shape, scheduling every cell through one flat Map so rows share the
// worker budget.
func Grid[T any](workers int, tasks [][]Task[T]) ([][]T, error) {
	var flat []Task[T]
	for _, row := range tasks {
		flat = append(flat, row...)
	}
	res, err := Map(workers, flat)
	out := make([][]T, len(tasks))
	k := 0
	for r, row := range tasks {
		out[r] = res[k : k+len(row) : k+len(row)]
		k += len(row)
	}
	return out, err
}

// runOne executes a single task with panic containment.
func runOne[T any](i int, t Task[T]) (result T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &TaskError{Index: i, Label: t.Label,
				Err: &PanicError{Value: r, Stack: debug.Stack()}}
		}
	}()
	result, err = t.Run()
	if err != nil {
		err = &TaskError{Index: i, Label: t.Label, Err: err}
	}
	return result, err
}
