package sim

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
)

// Verify checks machine-wide invariants that any amount of splitting,
// migration, poisoning and collapsing must preserve:
//
//  1. no two leaf mappings share a physical 4KB frame;
//  2. every mapped byte is charged to its tier's allocator (mapped bytes
//     never exceed the tier's Used accounting);
//  3. split-THP children are physically contiguous within one aligned 2MB
//     frame (the invariant MoveHuge and Collapse rely on);
//  4. huge-leaf frames are 2MB-aligned;
//  5. every mapped frame belongs to a configured tier of the hierarchy.
//
// Tests call this after integration runs; it is O(mapped pages).
func (m *Machine) Verify() error {
	type frameUse struct {
		v   addr.Virt
		lvl pagetable.Level
	}
	owner := make(map[uint64]frameUse) // 4K frame number -> first user
	mappedByTier := map[mem.TierID]uint64{}

	// Span regions are checked at interval grain (a terabyte of spans must
	// not materialize a per-4K map): alignment, tier, and pairwise frame
	// disjointness against every other span and leaf.
	type span struct {
		v     addr.Virt
		start uint64 // first 4K frame number
		end   uint64 // one past last
	}
	var spans []span

	var err error
	m.pt.ScanRegions(func(base addr.Virt, pages int, e *pagetable.Entry, lvl pagetable.Level) {
		if err != nil {
			return
		}
		tier := mem.TierOf(e.Frame)
		if int(tier) >= m.sys.NumTiers() {
			err = fmt.Errorf("sim: leaf %s frame %s belongs to tier %d outside the %d-tier hierarchy",
				base, e.Frame, int(tier), m.sys.NumTiers())
			return
		}
		if pages > 1 {
			if e.Frame.Base2M() != e.Frame {
				err = fmt.Errorf("sim: span %s has unaligned frame base %s", base, e.Frame)
				return
			}
			mappedByTier[tier] += uint64(pages) * addr.PageSize2M
			spans = append(spans, span{v: base, start: e.Frame.FrameNum4K(),
				end: e.Frame.FrameNum4K() + uint64(pages)*uint64(addr.PagesPerHuge)})
			return
		}
		switch lvl {
		case pagetable.Level2M:
			if e.Frame.Base2M() != e.Frame {
				err = fmt.Errorf("sim: huge leaf %s has unaligned frame %s", base, e.Frame)
				return
			}
			mappedByTier[tier] += addr.PageSize2M
			for i := uint64(0); i < uint64(addr.PagesPerHuge); i++ {
				fn := e.Frame.FrameNum4K() + i
				if prev, dup := owner[fn]; dup {
					err = fmt.Errorf("sim: frame %#x mapped by both %s and %s", fn, prev.v, base)
					return
				}
				owner[fn] = frameUse{v: base, lvl: lvl}
			}
		case pagetable.Level4K:
			mappedByTier[tier] += addr.PageSize4K
			fn := e.Frame.FrameNum4K()
			if prev, dup := owner[fn]; dup {
				err = fmt.Errorf("sim: frame %#x mapped by both %s and %s", fn, prev.v, base)
				return
			}
			owner[fn] = frameUse{v: base, lvl: lvl}
			if e.Flags.Has(pagetable.SplitSampled) {
				// Contiguity: child i of the region must sit at parent
				// frame + i.
				idx := base.SubpageIndex()
				want := e.Frame.Base2M() + addr.Phys(uint64(idx)*addr.PageSize4K)
				if e.Frame != want {
					err = fmt.Errorf("sim: split child %s frame %s breaks contiguity", base, e.Frame)
					return
				}
			}
		}
	})
	if err != nil {
		return err
	}
	for i, s := range spans {
		for _, o := range spans[i+1:] {
			if s.start < o.end && o.start < s.end {
				return fmt.Errorf("sim: spans %s and %s share physical frames", s.v, o.v)
			}
		}
		for fn, use := range owner {
			if fn >= s.start && fn < s.end {
				return fmt.Errorf("sim: frame %#x mapped by both %s and span %s", fn, use.v, s.v)
			}
		}
	}
	for tier, mapped := range mappedByTier {
		used := m.sys.Tier(tier).Used()
		if mapped > used {
			return fmt.Errorf("sim: %s tier maps %d bytes but allocator charged only %d",
				tier, mapped, used)
		}
	}
	return nil
}
