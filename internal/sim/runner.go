package sim

import (
	"errors"
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/pagetable"
	"thermostat/internal/stats"
)

// ErrStopRun, returned by a RunConfig.TickHook, stops the run cleanly at
// the current policy-tick boundary: Run finishes its bookkeeping and
// returns the partial result with a nil error, exactly as if the duration
// had elapsed. The daemon's graceful-stop and halt paths use it.
var ErrStopRun = errors.New("sim: run stopped at tick boundary")

// App is a workload model: it allocates its footprint on Init and then
// produces an access stream. Apps are closed-loop: the runner issues the
// next access as soon as the previous completes.
type App interface {
	// Name identifies the application.
	Name() string
	// Init allocates and maps the app's memory on the machine.
	Init(m *Machine) error
	// Next returns the next access: virtual address and whether it is a
	// store.
	Next() (v addr.Virt, write bool)
	// ComputeNs is the fixed computation time between accesses (per op).
	ComputeNs() int64
	// Tick runs app phase behaviour (footprint growth, phase changes) and
	// is called at every policy interval boundary.
	Tick(m *Machine, nowNs int64) error
}

// BatchApp is the optional fast path an App can provide: NextBatch must
// fill reqs with exactly the accesses len(reqs) successive Next calls would
// produce (same addresses, same write bits, same RNG consumption) and
// return how many it generated — len(reqs) unless the app has a reason to
// stop short. The runner falls back to per-op Next when the count is 0.
type BatchApp interface {
	App
	NextBatch(reqs []Req) int
}

// TierBytes is one tier's share of a footprint, by mapping grain.
type TierBytes struct {
	Bytes2M uint64
	Bytes4K uint64
}

// Total returns the tier's mapped bytes.
func (t TierBytes) Total() uint64 { return t.Bytes2M + t.Bytes4K }

// Footprint classifies the app's mapped bytes for the paper's
// footprint-over-time figures. Hot is the top (fast) tier; Cold aggregates
// every lower tier of the hierarchy.
type Footprint struct {
	Hot2M  uint64
	Hot4K  uint64
	Cold2M uint64
	Cold4K uint64
	// ByTier, when populated (ScanFootprint does), breaks mapped bytes
	// down per tier, indexed by mem.TierID. Nil for policies that only
	// track the hot/cold binary.
	ByTier []TierBytes
}

// Total returns all mapped bytes.
func (f Footprint) Total() uint64 { return f.Hot2M + f.Hot4K + f.Cold2M + f.Cold4K }

// Cold returns cold (non-top-tier) bytes.
func (f Footprint) Cold() uint64 { return f.Cold2M + f.Cold4K }

// ColdFraction returns cold/total (0 when empty).
func (f Footprint) ColdFraction() float64 {
	t := f.Total()
	if t == 0 {
		return 0
	}
	return float64(f.Cold()) / float64(t)
}

// Policy is a page-placement policy driven at a fixed interval.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Attach binds the policy to a machine after the app is initialized.
	Attach(m *Machine) error
	// IntervalNs is the policy's tick period (the scan interval).
	IntervalNs() int64
	// Tick runs one policy interval (sample, classify, migrate).
	Tick(m *Machine, nowNs int64) error
	// Footprint reports the current hot/cold classification.
	Footprint(m *Machine) Footprint
}

// NullPolicy leaves everything in fast memory: the all-DRAM baseline.
type NullPolicy struct {
	// Interval controls tick cadence (only observable in footprint
	// sampling); defaults to 1s.
	Interval int64
}

// Name implements Policy.
func (NullPolicy) Name() string { return "all-dram" }

// Attach implements Policy.
func (NullPolicy) Attach(*Machine) error { return nil }

// IntervalNs implements Policy.
func (p NullPolicy) IntervalNs() int64 {
	if p.Interval > 0 {
		return p.Interval
	}
	return 1e9
}

// Tick implements Policy.
func (NullPolicy) Tick(*Machine, int64) error { return nil }

// Footprint implements Policy: everything mapped is hot.
func (NullPolicy) Footprint(m *Machine) Footprint {
	return AllHotFootprint(m.PageTable())
}

// Stack composes several policies into one: each member ticks at its own
// interval (the stack's interval is their gcd-like minimum), and the first
// member provides the footprint classification. Use it to run a placement
// policy together with background daemons (e.g. Thermostat + khugepaged).
type Stack struct {
	Policies []Policy

	next []int64
}

// Name implements Policy.
func (s *Stack) Name() string {
	names := ""
	for i, p := range s.Policies {
		if i > 0 {
			names += "+"
		}
		names += p.Name()
	}
	return names
}

// IntervalNs implements Policy: the smallest member interval.
func (s *Stack) IntervalNs() int64 {
	min := int64(0)
	for _, p := range s.Policies {
		if iv := p.IntervalNs(); min == 0 || iv < min {
			min = iv
		}
	}
	return min
}

// Attach implements Policy.
func (s *Stack) Attach(m *Machine) error {
	if len(s.Policies) == 0 {
		return fmt.Errorf("sim: empty policy stack")
	}
	s.next = make([]int64, len(s.Policies))
	for i, p := range s.Policies {
		if err := p.Attach(m); err != nil {
			return err
		}
		s.next[i] = m.Clock() + p.IntervalNs()
	}
	return nil
}

// Tick implements Policy: runs each member whose own interval has elapsed.
func (s *Stack) Tick(m *Machine, now int64) error {
	for i, p := range s.Policies {
		for now >= s.next[i] {
			if err := p.Tick(m, now); err != nil {
				return err
			}
			s.next[i] += p.IntervalNs()
		}
	}
	return nil
}

// Footprint implements Policy: the first member's classification.
func (s *Stack) Footprint(m *Machine) Footprint {
	return s.Policies[0].Footprint(m)
}

// RunConfig controls a simulation run.
type RunConfig struct {
	// DurationNs is the virtual run length.
	DurationNs int64
	// WindowNs is the metric sampling window (default: policy interval).
	WindowNs int64
	// WarmupNs excludes an initial span from summary statistics
	// (series still record it).
	WarmupNs int64
	// MaxOps bounds total simulated accesses as a safety valve
	// (0 = unlimited).
	MaxOps uint64
	// OpsPerRequest groups consecutive ops into requests and records
	// request latencies, enabling tail-latency comparisons (the paper
	// reports 95th/99th percentile read/write latencies). 0 disables.
	OpsPerRequest int
	// DisableBatch forces the per-op access path even when the app
	// implements BatchApp. Batched and serial execution are bit-identical
	// by construction; this switch exists so the differential tests can
	// prove it.
	DisableBatch bool
	// TickHook, when non-nil, runs after every policy tick (and after the
	// telemetry epoch rolls), on the simulation goroutine at virtual time
	// now. It is the daemon's deterministic control point: config-reload
	// timeline events, the degradation ladder, and checkpoints all apply
	// here, so anything the hook changes lands exactly on an epoch
	// boundary. Returning ErrStopRun ends the run cleanly; any other
	// error aborts it. The policy interval is re-read after each tick, so
	// a hook that retunes the scan period takes effect the next period.
	TickHook func(nowNs int64) error
}

// RunResult captures everything the experiment harness needs.
type RunResult struct {
	AppName    string
	PolicyName string

	Ops        uint64
	DurationNs int64
	// Throughput is ops per virtual second over the post-warmup span.
	Throughput float64

	// SlowRate is the slow-memory access rate (accesses/sec) per window —
	// Figure 3's series.
	SlowRate *stats.Series
	// Cold2M, Cold4K, Hot2M, Hot4K are footprint bytes per window —
	// Figures 5-10's series.
	Cold2M, Cold4K, Hot2M, Hot4K *stats.Series

	// FinalFootprint is the classification at run end.
	FinalFootprint Footprint
	// Metrics is the machine counter snapshot at run end.
	Metrics Metrics
	// RequestLatency aggregates per-request latencies when
	// RunConfig.OpsPerRequest > 0 (for p95/p99 comparisons); nil
	// otherwise.
	RequestLatency *stats.Histogram
}

// MeanColdFraction averages cold/total over windows after fromNs.
func (r *RunResult) MeanColdFraction(fromNs int64) float64 {
	var fracs []float64
	for i := range r.Cold2M.Values {
		if r.Cold2M.Times[i] < fromNs {
			continue
		}
		total := r.Cold2M.Values[i] + r.Cold4K.Values[i] + r.Hot2M.Values[i] + r.Hot4K.Values[i]
		if total > 0 {
			fracs = append(fracs, (r.Cold2M.Values[i]+r.Cold4K.Values[i])/total)
		}
	}
	if len(fracs) == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range fracs {
		sum += f
	}
	return sum / float64(len(fracs))
}

// Run executes app under pol on m for the configured duration. The app must
// not have been initialized already.
func Run(m *Machine, app App, pol Policy, rc RunConfig) (*RunResult, error) {
	if rc.DurationNs <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration %d", rc.DurationNs)
	}
	if err := app.Init(m); err != nil {
		return nil, fmt.Errorf("sim: init %s: %w", app.Name(), err)
	}
	if err := pol.Attach(m); err != nil {
		return nil, fmt.Errorf("sim: attach %s: %w", pol.Name(), err)
	}
	interval := pol.IntervalNs()
	if interval <= 0 {
		return nil, fmt.Errorf("sim: policy %s has non-positive interval", pol.Name())
	}
	window := rc.WindowNs
	if window <= 0 {
		window = interval
	}

	res := &RunResult{
		AppName:    app.Name(),
		PolicyName: pol.Name(),
		SlowRate:   stats.NewSeries("slow-access-rate"),
		Cold2M:     stats.NewSeries("cold-2M-bytes"),
		Cold4K:     stats.NewSeries("cold-4K-bytes"),
		Hot2M:      stats.NewSeries("hot-2M-bytes"),
		Hot4K:      stats.NewSeries("hot-4K-bytes"),
	}

	if rc.OpsPerRequest > 0 {
		res.RequestLatency = stats.NewHistogram()
	}

	// Telemetry epochs follow the policy tick: one epoch per scan interval,
	// recorded in virtual time so traces are deterministic.
	var et *epochTracker
	if m.Recorder() != nil {
		et = newEpochTracker(m, pol)
	}

	start := m.Clock()
	end := start + rc.DurationNs
	nextTick := start + interval
	nextWindow := start + window
	var windowStartSlow uint64
	var warmupOps uint64
	warmupClock := start + rc.WarmupNs
	var reqLat int64
	var reqOps int

	// Batched fast path: when the app can pregenerate requests and no miss
	// hook observes individual accesses, ops run through AccessBatch in
	// blocks sized so that no tick, window, warmup or end boundary can fire
	// before the batch's last op — the block is then exactly equivalent to
	// that many serial iterations (see DESIGN.md "Hot path").
	const maxBatch = 2048
	computeNs := app.ComputeNs()
	batcher, canBatch := app.(BatchApp)
	canBatch = canBatch && !rc.DisableBatch && m.BatchSafe()
	var reqs []Req
	var lats, clks []int64
	var maxAdv int64
	if canBatch {
		reqs = make([]Req, maxBatch)
		lats = make([]int64, maxBatch)
		if rc.OpsPerRequest > 0 {
			clks = make([]int64, maxBatch)
		}
		maxAdv = m.MaxOpAdvanceNs(computeNs)
	}

	for m.Clock() < end {
		if rc.MaxOps > 0 && res.Ops >= rc.MaxOps {
			break
		}
		batched := false
		if canBatch {
			now := m.Clock()
			// Nearest boundary the batch must not cross before its last op.
			limit := nextTick
			if nextWindow < limit {
				limit = nextWindow
			}
			if end < limit {
				limit = end
			}
			inWarmup := rc.WarmupNs > 0 && now <= warmupClock
			if inWarmup && warmupClock+1 < limit {
				limit = warmupClock + 1
			}
			// Largest n with (n-1)*maxAdv < limit-now: ops 1..n-1 finish
			// strictly before the boundary, only op n may cross it.
			n := (limit - now - 1) / maxAdv
			if n >= maxBatch {
				n = maxBatch - 1
			}
			n++
			if rc.MaxOps > 0 && uint64(n) > rc.MaxOps-res.Ops {
				n = int64(rc.MaxOps - res.Ops)
			}
			if n >= 2 {
				got := batcher.NextBatch(reqs[:n])
				if got > 0 {
					if err := m.AccessBatch(reqs[:got], computeNs, lats[:got], clks); err != nil {
						return nil, fmt.Errorf("sim: %s op %d: %w", app.Name(), res.Ops, err)
					}
					if rc.OpsPerRequest > 0 {
						for i := 0; i < got; i++ {
							reqLat += lats[i] + computeNs
							reqOps++
							if reqOps >= rc.OpsPerRequest {
								if clks[i] >= warmupClock {
									res.RequestLatency.Observe(uint64(reqLat))
								}
								reqLat, reqOps = 0, 0
							}
						}
					}
					res.Ops += uint64(got)
					if inWarmup {
						// Ops 1..got-1 ended at or before warmupClock by
						// construction; only the last can have crossed.
						if m.Clock() <= warmupClock {
							warmupOps = res.Ops
						} else {
							warmupOps = res.Ops - 1
						}
					}
					batched = true
				}
			}
		}
		if !batched {
			v, write := app.Next()
			lat, err := m.Access(v, write)
			if err != nil {
				return nil, fmt.Errorf("sim: %s op %d: %w", app.Name(), res.Ops, err)
			}
			if computeNs > 0 {
				m.AdvanceClock(computeNs)
			}
			if rc.OpsPerRequest > 0 {
				reqLat += lat + computeNs
				reqOps++
				if reqOps >= rc.OpsPerRequest {
					if m.Clock() >= warmupClock {
						res.RequestLatency.Observe(uint64(reqLat))
					}
					reqLat, reqOps = 0, 0
				}
			}
			res.Ops++
			if rc.WarmupNs > 0 && m.Clock() <= warmupClock {
				warmupOps = res.Ops
			}
		}

		now := m.Clock()
		for now >= nextWindow {
			slow := m.Metrics().SlowAccesses
			rate := stats.Rate(slow-windowStartSlow, window)
			res.SlowRate.Append(nextWindow-start, rate)
			windowStartSlow = slow
			fp := pol.Footprint(m)
			res.Cold2M.Append(nextWindow-start, float64(fp.Cold2M))
			res.Cold4K.Append(nextWindow-start, float64(fp.Cold4K))
			res.Hot2M.Append(nextWindow-start, float64(fp.Hot2M))
			res.Hot4K.Append(nextWindow-start, float64(fp.Hot4K))
			nextWindow += window
		}
		stopped := false
		for now >= nextTick {
			if err := app.Tick(m, now); err != nil {
				return nil, fmt.Errorf("sim: %s tick: %w", app.Name(), err)
			}
			if err := pol.Tick(m, now); err != nil {
				return nil, fmt.Errorf("sim: %s tick: %w", pol.Name(), err)
			}
			if et != nil {
				et.roll(now)
			}
			if rc.TickHook != nil {
				if err := rc.TickHook(now); err != nil {
					if errors.Is(err, ErrStopRun) {
						stopped = true
						break
					}
					return nil, fmt.Errorf("sim: tick hook: %w", err)
				}
			}
			// Re-read the interval: a TickHook may have retuned the scan
			// period (reload or degradation), and the change must govern
			// the very next tick. Policies with a fixed interval return
			// the same value, so this is bit-identical to the old
			// captured-once increment.
			nextTick += pol.IntervalNs()
		}
		if stopped {
			break
		}
	}
	if et != nil {
		et.end(m.Clock())
	}

	res.DurationNs = m.Clock() - start
	span := res.DurationNs - rc.WarmupNs
	if span <= 0 {
		span = res.DurationNs
		warmupOps = 0
	}
	res.Throughput = stats.Rate(res.Ops-warmupOps, span)
	res.FinalFootprint = pol.Footprint(m)
	res.Metrics = m.Metrics()
	return res, nil
}

// Slowdown compares a policy run against a baseline run of the same app:
// (baseline throughput / policy throughput) - 1, e.g. 0.03 for a 3%
// degradation.
func Slowdown(baseline, policy *RunResult) float64 {
	if policy.Throughput == 0 {
		return 0
	}
	return baseline.Throughput/policy.Throughput - 1
}

// ScanFootprint classifies every mapped leaf by backing tier and grain,
// optionally restricted to the given address ranges (nil = whole table).
// Policies use it to implement Footprint. The per-tier breakdown covers the
// machine's whole hierarchy; the Hot/Cold aggregates fold every non-top
// tier into Cold.
func ScanFootprint(m *Machine, ranges []addr.Range) Footprint {
	fp := Footprint{ByTier: make([]TierBytes, m.Memory().NumTiers())}
	m.PageTable().ScanRegions(func(base addr.Virt, pages int, e *pagetable.Entry, lvl pagetable.Level) {
		if ranges != nil {
			in := false
			for _, r := range ranges {
				if r.Contains(base) {
					in = true
					break
				}
			}
			if !in {
				return
			}
		}
		fp.AddRegion(lvl, m.Memory().TierOf(e.Frame), pages)
	})
	return fp
}
