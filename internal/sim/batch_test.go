package sim

import (
	"reflect"
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
	"thermostat/internal/rng"
)

// batchUniformApp is uniformApp plus the BatchApp fast path. NextBatch must
// consume the RNG in exactly the order Next does.
type batchUniformApp struct {
	uniformApp
}

func (a *batchUniformApp) NextBatch(reqs []Req) int {
	for i := range reqs {
		off := a.r.Uint64n(a.region.Size())
		reqs[i] = Req{V: a.region.Start + addr.Virt(off), Write: a.r.Bool(0.1)}
	}
	return len(reqs)
}

// churnPolicy demotes a sliding window of huge pages each tick and promotes
// the previously demoted window, keeping poison faults and migrations active
// throughout the run so the differential tests exercise the full access path
// (TLB invalidations, fault dispatch, slow-tier costing).
type churnPolicy struct {
	interval int64
	region   addr.Range
	cursor   int
	demoted  []addr.Virt
}

func (p *churnPolicy) Name() string            { return "churn" }
func (p *churnPolicy) IntervalNs() int64       { return p.interval }
func (p *churnPolicy) Attach(m *Machine) error { return nil }
func (p *churnPolicy) Footprint(m *Machine) Footprint {
	return ScanFootprint(m, nil)
}

func (p *churnPolicy) Tick(m *Machine, now int64) error {
	for _, v := range p.demoted {
		if _, err := m.Promote(v); err != nil {
			return err
		}
	}
	p.demoted = p.demoted[:0]
	pages := int(p.region.Size() / addr.PageSize2M)
	for i := 0; i < 2 && pages > 0; i++ {
		v := p.region.Start + addr.Virt(uint64(p.cursor%pages)*addr.PageSize2M)
		if _, err := m.Demote(v); err != nil {
			return err
		}
		p.demoted = append(p.demoted, v)
		p.cursor++
	}
	return nil
}

// runPair executes the same seeded workload twice — once batched, once with
// DisableBatch — and returns both results and machines.
func runPair(t *testing.T, rc RunConfig, mode SlowMemMode) (batched, serial *RunResult, mb, ms *Machine) {
	t.Helper()
	run := func(disable bool) (*RunResult, *Machine) {
		cfg := DefaultConfig(64<<20, 64<<20)
		cfg.Mode = mode
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.EnablePageCounts()
		app := &batchUniformApp{uniformApp{
			name: "batch-uniform", size: 8 << 20, huge: true,
			r: rng.New(42), compute: 300,
		}}
		pol := &churnPolicy{interval: 1e8}
		// The app allocates in Init; give the policy the region afterwards
		// via a wrapper policy Attach is too early for, so hook Tick lazily.
		rc := rc
		rc.DisableBatch = disable
		res, err := Run(m, &regionWire{app: app, pol: pol}, pol, rc)
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}
	batched, mb = run(false)
	serial, ms = run(true)
	return batched, serial, mb, ms
}

// regionWire forwards App calls and points the policy at the app's region
// once Init has allocated it.
type regionWire struct {
	app *batchUniformApp
	pol *churnPolicy
}

func (w *regionWire) Name() string { return w.app.Name() }
func (w *regionWire) Init(m *Machine) error {
	if err := w.app.Init(m); err != nil {
		return err
	}
	w.pol.region = w.app.region
	return nil
}
func (w *regionWire) Next() (addr.Virt, bool)          { return w.app.Next() }
func (w *regionWire) NextBatch(reqs []Req) int         { return w.app.NextBatch(reqs) }
func (w *regionWire) ComputeNs() int64                 { return w.app.ComputeNs() }
func (w *regionWire) Tick(m *Machine, now int64) error { return w.app.Tick(m, now) }

func checkRunPairEqual(t *testing.T, batched, serial *RunResult, mb, ms *Machine) {
	t.Helper()
	if batched.Ops != serial.Ops {
		t.Errorf("ops: batched %d serial %d", batched.Ops, serial.Ops)
	}
	if batched.DurationNs != serial.DurationNs {
		t.Errorf("duration: batched %d serial %d", batched.DurationNs, serial.DurationNs)
	}
	if batched.Throughput != serial.Throughput {
		t.Errorf("throughput: batched %v serial %v", batched.Throughput, serial.Throughput)
	}
	if !reflect.DeepEqual(batched.Metrics, serial.Metrics) {
		t.Errorf("metrics diverge:\nbatched %+v\nserial  %+v", batched.Metrics, serial.Metrics)
	}
	if !reflect.DeepEqual(batched, serial) {
		t.Error("run results diverge beyond summarized fields (series or histograms)")
	}
	if !reflect.DeepEqual(mb.PageCounts(), ms.PageCounts()) {
		t.Error("ground-truth page counts diverge")
	}
}

// TestBatchSerialEquivalence is the differential proof that the batched
// access engine is bit-identical to the per-op path: same seeded run, same
// policy churn, compared field by field including histograms and series.
func TestBatchSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second differential run")
	}
	t.Parallel()
	rc := RunConfig{DurationNs: 8e8, WindowNs: 1e8, WarmupNs: 3e8, OpsPerRequest: 16}
	for _, mode := range []SlowMemMode{EmulatedFault, Device} {
		batched, serial, mb, ms := runPair(t, rc, mode)
		checkRunPairEqual(t, batched, serial, mb, ms)
		if batched.Metrics.PoisonFaults == 0 {
			t.Errorf("%s: no poison faults — differential run not exercising the fault path", mode)
		}
	}
}

// TestBatchSerialEquivalenceMaxOps pins the MaxOps cap interaction: the
// batch sizing must clamp to the remaining budget so both paths stop at the
// same op.
func TestBatchSerialEquivalenceMaxOps(t *testing.T) {
	t.Parallel()
	rc := RunConfig{DurationNs: 1e12, WindowNs: 1e8, MaxOps: 12345}
	batched, serial, mb, ms := runPair(t, rc, EmulatedFault)
	checkRunPairEqual(t, batched, serial, mb, ms)
	if batched.Ops != 12345 {
		t.Errorf("ops = %d, want MaxOps 12345", batched.Ops)
	}
}

// TestPageCountsRegression pins the dense-counter PageCounts against the
// original map semantics: counts key on 2MB bases, record LLC misses only,
// include the below-base map fallback, and survive resets.
func TestPageCountsRegression(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	if m.PageCounts() != nil {
		t.Fatal("PageCounts non-nil before EnablePageCounts")
	}
	m.EnablePageCounts()
	r, err := m.AllocRegion(6<<20, true) // three huge pages
	if err != nil {
		t.Fatal(err)
	}
	base := r.Start.Base2M()

	// Touch distinct cache lines: every first touch is an LLC miss and must
	// count; a second touch of the same line hits and must not.
	want := map[addr.Virt]uint64{}
	for page := 0; page < 3; page++ {
		pb := base + addr.Virt(uint64(page)*addr.PageSize2M)
		for line := 0; line < 10*(page+1); line++ {
			v := pb + addr.Virt(uint64(line)*64)
			if _, err := m.Access(v, false); err != nil {
				t.Fatal(err)
			}
			want[pb]++
		}
	}
	if _, err := m.Access(base, false); err != nil { // cached line: no miss
		t.Fatal(err)
	}
	if got := m.PageCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PageCounts = %v, want %v", got, want)
	}

	// Below-base addresses (never produced by AllocRegion) still count via
	// the map fallback with identical key semantics.
	low := m.Config().VirtBase - addr.Virt(4*addr.PageSize2M)
	frame, err := m.Memory().Tier(mem.Fast).Alloc2M()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PageTable().Map2M(low, frame, pagetable.Writable); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Access(low+128, true); err != nil {
		t.Fatal(err)
	}
	want[low] = 1
	if got := m.PageCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PageCounts with low page = %v, want %v", got, want)
	}

	m.ResetPageCounts()
	if got := m.PageCounts(); len(got) != 0 {
		t.Fatalf("PageCounts after reset = %v, want empty", got)
	}
	if _, err := m.Access(base+addr.Virt(512*64), false); err != nil {
		t.Fatal(err)
	}
	if got := m.PageCounts(); len(got) != 1 || got[base] != 1 {
		t.Fatalf("PageCounts after reset+miss = %v, want {%v:1}", got, base)
	}
}
