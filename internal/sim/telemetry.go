package sim

import (
	"thermostat/internal/addr"
	"thermostat/internal/chaos"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
	"thermostat/internal/telemetry"
)

// ColdChecker is an optional Policy extension: it reports the policy's
// classification verdict for one 2MB page, letting the telemetry layer build
// the per-epoch classification-confusion matrix against the simulator's LLC
// ground truth (which no real hardware can observe).
type ColdChecker interface {
	IsCold(base addr.Virt) bool
}

// FaultReporter is an optional Policy extension: it summarizes chaos fault
// handling (injected/retried/rolled-back/quarantined). Policies that retry
// and quarantine (core.Engine) implement it; for the rest the tracker falls
// back to the machine-level report.
type FaultReporter interface {
	FaultReport() chaos.Report
}

// epochBase is the machine counter baseline captured at an epoch boundary;
// the next boundary's snapshot is the delta against it.
type epochBase struct {
	accesses     uint64
	slow         uint64
	tierAccesses []uint64
	tlbMisses    uint64
	llcMisses    uint64
	faults       uint64
	migBytes     uint64
	demotions    uint64
	promotions   uint64
	chaos        chaos.Report
}

// epochTracker drives the telemetry epoch protocol for one run: it brackets
// every policy interval with EpochStart/End events and emits one metric
// Snapshot per epoch. It only exists when a Recorder is installed, so the
// disabled path costs nothing.
type epochTracker struct {
	m   *Machine
	rec telemetry.Recorder
	cc  ColdChecker   // nil when the policy has no cold set
	fr  FaultReporter // nil when the policy has no fault handling

	epoch      uint64
	startNs    int64
	base       epochBase
	prevCounts map[addr.Virt]uint64 // LLC ground truth at epoch start
}

// newEpochTracker starts epoch 1 at the machine's current clock.
func newEpochTracker(m *Machine, pol Policy) *epochTracker {
	t := &epochTracker{m: m, rec: m.Recorder()}
	if st, ok := pol.(*Stack); ok && len(st.Policies) > 0 {
		pol = st.Policies[0] // the placement policy owns the cold set
	}
	if pol != nil {
		t.cc, _ = pol.(ColdChecker)
		t.fr, _ = pol.(FaultReporter)
	}
	t.epoch = 1
	t.begin(m.Clock())
	return t
}

// faultReport reads the richest available chaos summary: the policy's (which
// includes retries/quarantines) when it reports one, else the machine's.
func (t *epochTracker) faultReport() chaos.Report {
	if t.fr != nil {
		return t.fr.FaultReport()
	}
	return t.m.FaultReport()
}

func (t *epochTracker) capture() epochBase {
	met := t.m.Metrics()
	meter := t.m.Meter()
	return epochBase{
		accesses:     met.Accesses,
		slow:         met.SlowAccesses,
		tierAccesses: met.TierAccesses,
		tlbMisses:    met.TLB.Misses,
		llcMisses:    met.LLC.Misses,
		faults:       met.PoisonFaults,
		migBytes:     met.MigrationBytes,
		demotions:    meter.Pages2M(mem.Demotion) + meter.Pages4K(mem.Demotion),
		promotions:   meter.Pages2M(mem.Promotion) + meter.Pages4K(mem.Promotion),
		chaos:        t.faultReport(),
	}
}

func (t *epochTracker) begin(nowNs int64) {
	t.startNs = nowNs
	t.base = t.capture()
	if t.m.PageCounts() != nil && t.cc != nil {
		t.prevCounts = t.m.PageCounts()
	}
	t.rec.Event(telemetry.Event{Kind: telemetry.KindEpochStart, TimeNs: nowNs, Epoch: t.epoch})
}

// roll closes the current epoch at nowNs (summary event + snapshot) and
// opens the next.
func (t *epochTracker) roll(nowNs int64) {
	t.end(nowNs)
	t.epoch++
	t.begin(nowNs)
}

// end closes the current epoch without opening a new one (run teardown).
func (t *epochTracker) end(nowNs int64) {
	cur := t.capture()
	snap := telemetry.Snapshot{
		Epoch:          t.epoch,
		StartNs:        t.startNs,
		EndNs:          nowNs,
		Accesses:       cur.accesses - t.base.accesses,
		SlowAccesses:   cur.slow - t.base.slow,
		TLBMisses:      cur.tlbMisses - t.base.tlbMisses,
		LLCMisses:      cur.llcMisses - t.base.llcMisses,
		PoisonFaults:   cur.faults - t.base.faults,
		MigrationBytes: cur.migBytes - t.base.migBytes,
		Demotions:      cur.demotions - t.base.demotions,
		Promotions:     cur.promotions - t.base.promotions,
	}
	if d := cur.chaos.Sub(t.base.chaos); !d.Zero() {
		snap.FaultsInjected = d.Injected
		snap.FaultsPermanent = d.Permanent
		snap.MigrationRetries = d.Retried
		snap.MigrationRollbacks = d.RolledBack
		snap.PagesQuarantined = d.Quarantined
	}
	snap.TierAccesses = make([]uint64, len(cur.tierAccesses))
	for i := range cur.tierAccesses {
		snap.TierAccesses[i] = cur.tierAccesses[i] - t.base.tierAccesses[i]
	}
	snap.TierOccupancy = make([]uint64, t.m.Memory().NumTiers())
	for i, tier := range t.m.Memory().Tiers() {
		snap.TierOccupancy[i] = tier.Used()
	}

	// One sweep of the hybrid region view gathers the poisoned-leaf count
	// and the placement-based hot/cold byte split. On a dense table this
	// visits exactly the leaves the old per-leaf Scan did; in sparse mode a
	// cold terabyte is a handful of span summaries, not half a million
	// visits. The per-2MB-page map is only materialized when the confusion
	// matrix actually consumes it (page counts enabled + policy exposes a
	// cold set) — for every other run the epoch boundary does no O(pages)
	// work at all.
	var counts map[addr.Virt]uint64
	if t.cc != nil && t.prevCounts != nil {
		counts = t.m.PageCounts()
	}
	confusion := counts != nil
	var pages map[addr.Virt]bool // 2MB base -> seen (confusion only)
	if confusion {
		pages = make(map[addr.Virt]bool)
	}
	sys := t.m.Memory()
	t.m.PageTable().ScanRegions(func(base addr.Virt, n int, e *pagetable.Entry, lvl pagetable.Level) {
		if e.Flags.Has(pagetable.Poisoned) {
			snap.PoisonedPages++
		}
		cold := sys.TierOf(e.Frame) != mem.Fast
		grain := addr.PageSize4K
		if lvl == pagetable.Level2M {
			grain = addr.PageSize2M
		}
		snap.ColdBytes += boolBytes(cold, uint64(n)*grain)
		snap.HotBytes += boolBytes(!cold, uint64(n)*grain)
		if pages != nil {
			if n == 1 {
				pages[base.Base2M()] = true
			} else {
				for i := 0; i < n; i++ {
					pages[base+addr.Virt(uint64(i)*addr.PageSize2M)] = true
				}
			}
		}
	})

	// Confusion vs. LLC ground truth: a 2MB page is "truly accessed" if it
	// took at least one LLC miss this epoch.
	if confusion {
		snap.ConfusionValid = true
		for hb := range pages {
			accessed := counts[hb] > t.prevCounts[hb]
			cold := t.cc.IsCold(hb)
			switch {
			case cold && accessed:
				snap.ColdAccessed++
			case cold:
				snap.ColdIdle++
			case accessed:
				snap.HotAccessed++
			default:
				snap.HotIdle++
			}
		}
	}

	t.rec.Event(telemetry.Event{
		Kind: telemetry.KindTLBMiss, TimeNs: nowNs, Epoch: t.epoch,
		Count: snap.TLBMisses,
	})
	t.rec.Event(telemetry.Event{Kind: telemetry.KindEpochEnd, TimeNs: nowNs, Epoch: t.epoch})
	t.rec.Snapshot(snap)
}

func boolBytes(b bool, n uint64) uint64 {
	if b {
		return n
	}
	return 0
}

// EpochTracker is the exported handle to the epoch protocol for run loops
// that live outside this package (the fleet runner). It brackets policy
// intervals with EpochStart/End events and emits one Snapshot per epoch,
// exactly as Run does internally.
type EpochTracker struct{ t *epochTracker }

// NewEpochTracker starts epoch 1 at the machine's current clock, recording
// into the machine's installed Recorder. pol, when non-nil, supplies the
// cold set (confusion matrix) and fault report; pass nil when no single
// policy owns the whole machine. Returns nil when the machine has no
// recorder, and every method on a nil tracker is a no-op — callers need no
// telemetry-enabled check.
func NewEpochTracker(m *Machine, pol Policy) *EpochTracker {
	if m.Recorder() == nil {
		return nil
	}
	return &EpochTracker{t: newEpochTracker(m, pol)}
}

// Roll closes the current epoch at nowNs and opens the next.
func (e *EpochTracker) Roll(nowNs int64) {
	if e != nil {
		e.t.roll(nowNs)
	}
}

// End closes the current epoch without opening a new one (run teardown).
func (e *EpochTracker) End(nowNs int64) {
	if e != nil {
		e.t.end(nowNs)
	}
}
