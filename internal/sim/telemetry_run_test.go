package sim_test

import (
	"bytes"
	"testing"

	"thermostat/internal/cgroup"
	"thermostat/internal/core"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

// runTiny drives the Redis model under Thermostat at unit-test scale with a
// collector attached, mirroring what the harness does.
func runTiny(t *testing.T, col *telemetry.Collector) *sim.RunResult {
	t.Helper()
	spec, ok := workload.ByName("redis")
	if !ok {
		t.Fatal("redis model missing")
	}
	const div = 256
	var footprint uint64
	for _, seg := range spec.Segments {
		footprint += seg.Bytes
	}
	footprint /= div
	cfg := sim.DefaultConfig(footprint+32<<20, footprint+32<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 8
	cfg.LLC.SizeBytes = 1 << 20
	cfg.Recorder = col
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.EnablePageCounts()
	app, err := workload.NewApp(spec, div, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := cgroup.Default()
	p.SamplePeriodNs = 500e6
	g, err := cgroup.NewGroup("t", p)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(g, 42)
	res, err := sim.Run(m, app, eng, sim.RunConfig{DurationNs: 3e9, WarmupNs: 500e6, WindowNs: 500e6})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunProducesEpochTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	col := telemetry.NewCollector()
	runTiny(t, col)

	snaps := col.Snapshots()
	if len(snaps) < 4 {
		t.Fatalf("only %d epoch snapshots for a 4s run at 500ms ticks", len(snaps))
	}
	kinds := map[telemetry.Kind]int{}
	for _, e := range col.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []telemetry.Kind{
		telemetry.KindEpochStart, telemetry.KindEpochEnd, telemetry.KindTLBMiss,
		telemetry.KindPageSampled, telemetry.KindHugePageSplit, telemetry.KindClassified,
		telemetry.KindMigrated, telemetry.KindFaultInjected,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events in a full Thermostat run", k)
		}
	}
	if kinds[telemetry.KindEpochStart] != kinds[telemetry.KindEpochEnd] {
		t.Errorf("unbalanced epochs: %d starts, %d ends",
			kinds[telemetry.KindEpochStart], kinds[telemetry.KindEpochEnd])
	}

	// Epochs tile the run: contiguous, increasing, non-overlapping.
	for i, s := range snaps {
		if s.Epoch != uint64(i+1) {
			t.Fatalf("snapshot %d has epoch %d", i, s.Epoch)
		}
		if i > 0 && s.StartNs != snaps[i-1].EndNs {
			t.Fatalf("epoch %d starts at %d, previous ended at %d", s.Epoch, s.StartNs, snaps[i-1].EndNs)
		}
		if s.EndNs < s.StartNs {
			t.Fatalf("epoch %d ends before it starts", s.Epoch)
		}
	}

	// The engine demoted pages, so later epochs must see slow-tier traffic
	// and a classified cold set.
	var sawMigration, sawCold, sawConfusion bool
	for _, s := range snaps {
		if s.MigrationBytes > 0 {
			sawMigration = true
		}
		if s.ColdBytes > 0 {
			sawCold = true
		}
		if s.ConfusionValid && (s.ColdIdle+s.ColdAccessed+s.HotIdle+s.HotAccessed) > 0 {
			sawConfusion = true
		}
	}
	if !sawMigration || !sawCold {
		t.Errorf("no epoch saw migration (%v) / cold bytes (%v)", sawMigration, sawCold)
	}
	if !sawConfusion {
		t.Error("no epoch computed a confusion matrix despite page counts enabled")
	}
}

// TestTelemetryDeterministicAcrossRuns is the virtual-time determinism
// contract at the sim layer: two identical seeded runs export byte-identical
// traces and metrics.
func TestTelemetryDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	export := func() ([]byte, []byte) {
		col := telemetry.NewCollector()
		runTiny(t, col)
		var tr, js bytes.Buffer
		if err := col.WriteChromeTrace(&tr); err != nil {
			t.Fatal(err)
		}
		if err := col.WriteJSONL(&js); err != nil {
			t.Fatal(err)
		}
		return tr.Bytes(), js.Bytes()
	}
	tr1, js1 := export()
	tr2, js2 := export()
	if !bytes.Equal(tr1, tr2) {
		t.Error("Chrome traces differ between identical seeded runs")
	}
	if !bytes.Equal(js1, js2) {
		t.Error("JSONL metrics differ between identical seeded runs")
	}
}
