package sim

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
)

// TestFootprintAddLeaf pins the shared grain/tier → bytes arithmetic: fast
// leaves are hot, everything below is cold, and ByTier fills only when the
// caller pre-sized it.
func TestFootprintAddLeaf(t *testing.T) {
	t.Parallel()
	var fp Footprint
	fp.ByTier = make([]TierBytes, 3)

	fp.AddLeaf(pagetable.Level2M, mem.Fast)
	fp.AddLeaf(pagetable.Level2M, mem.TierID(1))
	fp.AddLeaf(pagetable.Level2M, mem.TierID(2))
	fp.AddLeaf(pagetable.Level4K, mem.Fast)
	fp.AddLeaf(pagetable.Level4K, mem.TierID(1))

	if fp.Hot2M != addr.PageSize2M || fp.Cold2M != 2*addr.PageSize2M {
		t.Fatalf("2M split wrong: hot=%d cold=%d", fp.Hot2M, fp.Cold2M)
	}
	if fp.Hot4K != addr.PageSize4K || fp.Cold4K != addr.PageSize4K {
		t.Fatalf("4K split wrong: hot=%d cold=%d", fp.Hot4K, fp.Cold4K)
	}
	if got := fp.Total(); got != 3*addr.PageSize2M+2*addr.PageSize4K {
		t.Fatalf("Total = %d", got)
	}
	if fp.ByTier[0].Bytes2M != addr.PageSize2M || fp.ByTier[0].Bytes4K != addr.PageSize4K {
		t.Fatalf("tier 0 bytes wrong: %+v", fp.ByTier[0])
	}
	if fp.ByTier[1].Bytes2M != addr.PageSize2M || fp.ByTier[1].Bytes4K != addr.PageSize4K {
		t.Fatalf("tier 1 bytes wrong: %+v", fp.ByTier[1])
	}
	if fp.ByTier[2].Bytes2M != addr.PageSize2M || fp.ByTier[2].Bytes4K != 0 {
		t.Fatalf("tier 2 bytes wrong: %+v", fp.ByTier[2])
	}

	// Without a pre-sized ByTier the per-tier breakdown is skipped but the
	// hot/cold totals still accumulate.
	var flat Footprint
	flat.AddLeaf(pagetable.Level2M, mem.TierID(1))
	if flat.ByTier != nil || flat.Cold2M != addr.PageSize2M {
		t.Fatalf("flat accounting wrong: %+v", flat)
	}
}

// TestAllHotFootprintMatchesScan: on a machine that never migrated, the
// O(1) counter-based footprint must equal the full page-table walk.
func TestAllHotFootprintMatchesScan(t *testing.T) {
	t.Parallel()
	m, err := New(DefaultConfig(64<<20, 64<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocRegion(8<<20, true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocRegion(1<<20, false); err != nil { // 4K-mapped region
		t.Fatal(err)
	}
	walk := ScanFootprint(m, nil)
	fast := AllHotFootprint(m.PageTable())
	if fast.Hot2M != walk.Hot2M || fast.Hot4K != walk.Hot4K {
		t.Fatalf("counter footprint %+v != walked %+v", fast, walk)
	}
	if fast.Cold() != 0 || walk.Cold() != 0 {
		t.Fatalf("fresh machine reported cold bytes: %+v / %+v", fast, walk)
	}
	if fast.Hot2M == 0 || fast.Hot4K == 0 {
		t.Fatalf("expected both grains mapped: %+v", fast)
	}
}
