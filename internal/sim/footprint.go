package sim

import (
	"thermostat/internal/addr"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
)

// AddLeaf accumulates one mapped leaf of the given grain, backed by the
// given tier, into the footprint — the single home of the grain/tier →
// bytes arithmetic every footprint accounting path shares. ByTier is only
// populated when the caller pre-sized it (ScanFootprint does).
func (f *Footprint) AddLeaf(lvl pagetable.Level, tier mem.TierID) {
	slow := tier != mem.Fast
	switch {
	case lvl == pagetable.Level2M && slow:
		f.Cold2M += addr.PageSize2M
	case lvl == pagetable.Level2M:
		f.Hot2M += addr.PageSize2M
	case slow:
		f.Cold4K += addr.PageSize4K
	default:
		f.Hot4K += addr.PageSize4K
	}
	if int(tier) < len(f.ByTier) {
		if lvl == pagetable.Level2M {
			f.ByTier[tier].Bytes2M += addr.PageSize2M
		} else {
			f.ByTier[tier].Bytes4K += addr.PageSize4K
		}
	}
}

// AddRegion accumulates a pages-sized region of the given grain and tier —
// the region-grain form of AddLeaf that hybrid (span-aware) scans feed.
func (f *Footprint) AddRegion(lvl pagetable.Level, tier mem.TierID, pages int) {
	size := uint64(pages) * addr.PageSize4K
	if lvl == pagetable.Level2M {
		size = uint64(pages) * addr.PageSize2M
	}
	slow := tier != mem.Fast
	switch {
	case lvl == pagetable.Level2M && slow:
		f.Cold2M += size
	case lvl == pagetable.Level2M:
		f.Hot2M += size
	case slow:
		f.Cold4K += size
	default:
		f.Hot4K += size
	}
	if int(tier) < len(f.ByTier) {
		if lvl == pagetable.Level2M {
			f.ByTier[tier].Bytes2M += size
		} else {
			f.ByTier[tier].Bytes4K += size
		}
	}
}

// AllHotFootprint classifies every mapped leaf as top-tier resident — the
// accounting for policies that never migrate (NullPolicy and the harness
// scan baselines). It reads the page table's leaf counters instead of
// walking, so it is O(1).
func AllHotFootprint(pt *pagetable.Table) Footprint {
	return Footprint{
		Hot2M: uint64(pt.Count2M()) * addr.PageSize2M,
		Hot4K: uint64(pt.Count4K()) * addr.PageSize4K,
	}
}
