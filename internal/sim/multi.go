package sim

import (
	"fmt"

	"thermostat/internal/stats"
)

// Tenant pairs one application with its own placement policy — the
// multi-tenant deployment the paper targets: a host managing several
// customers' cgroups independently on shared hardware.
type Tenant struct {
	App    App
	Policy Policy
	// Share is the tenant's relative CPU share (ops are interleaved in
	// this proportion); 0 means 1.
	Share int
}

// TenantResult is one tenant's outcome.
type TenantResult struct {
	AppName    string
	PolicyName string
	Ops        uint64
	Throughput float64
	// Footprint is the tenant's final hot/cold classification (scoped to
	// its own policy's view).
	Footprint Footprint
	// SlowRate and footprint series, sampled per window like Run's.
	Cold, Hot *stats.Series
}

// MultiResult is the outcome of a RunMulti.
type MultiResult struct {
	Tenants    []TenantResult
	DurationNs int64
}

// RunMulti drives several tenants on one shared machine: one TLB, one LLC,
// one pair of memory tiers — so tenants contend for translation and cache
// reach exactly as co-located VMs do. Each tenant's policy ticks at its own
// interval and sees only its own pages (policies should be scoped; see
// core.Engine.SetScope).
func RunMulti(m *Machine, tenants []Tenant, rc RunConfig) (*MultiResult, error) {
	if rc.DurationNs <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration %d", rc.DurationNs)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("sim: no tenants")
	}
	type state struct {
		t        Tenant
		ops      uint64
		nextTick int64
		share    int
	}
	states := make([]*state, len(tenants))
	for i, t := range tenants {
		if err := t.App.Init(m); err != nil {
			return nil, fmt.Errorf("sim: init %s: %w", t.App.Name(), err)
		}
		share := t.Share
		if share <= 0 {
			share = 1
		}
		states[i] = &state{t: t, share: share}
	}
	// Attach after all inits so scoped policies see final base layouts.
	for _, s := range states {
		if err := s.t.Policy.Attach(m); err != nil {
			return nil, fmt.Errorf("sim: attach %s: %w", s.t.Policy.Name(), err)
		}
		interval := s.t.Policy.IntervalNs()
		if interval <= 0 {
			return nil, fmt.Errorf("sim: policy %s has non-positive interval", s.t.Policy.Name())
		}
		s.nextTick = m.Clock() + interval
	}

	window := rc.WindowNs
	if window <= 0 {
		window = states[0].t.Policy.IntervalNs()
	}
	res := &MultiResult{Tenants: make([]TenantResult, len(tenants))}
	series := make([]struct{ cold, hot *stats.Series }, len(tenants))
	for i, t := range tenants {
		series[i].cold = stats.NewSeries("cold_" + t.App.Name())
		series[i].hot = stats.NewSeries("hot_" + t.App.Name())
	}

	start := m.Clock()
	end := start + rc.DurationNs
	nextWindow := start + window
	var totalOps uint64

	// Telemetry epochs in multi-tenant runs follow the sampling window
	// (tenant policies tick on their own cadences); snapshots are
	// machine-level, aggregated over all tenants.
	var et *epochTracker
	if m.Recorder() != nil {
		et = newEpochTracker(m, nil)
	}

	for m.Clock() < end {
		if rc.MaxOps > 0 && totalOps >= rc.MaxOps {
			break
		}
		for _, s := range states {
			for k := 0; k < s.share; k++ {
				v, write := s.t.App.Next()
				if _, err := m.Access(v, write); err != nil {
					return nil, fmt.Errorf("sim: %s op %d: %w", s.t.App.Name(), s.ops, err)
				}
				if c := s.t.App.ComputeNs(); c > 0 {
					m.AdvanceClock(c)
				}
				s.ops++
				totalOps++
			}
			now := m.Clock()
			for now >= s.nextTick {
				if err := s.t.App.Tick(m, now); err != nil {
					return nil, err
				}
				if err := s.t.Policy.Tick(m, now); err != nil {
					return nil, err
				}
				s.nextTick += s.t.Policy.IntervalNs()
			}
		}
		if now := m.Clock(); now >= nextWindow {
			for i, s := range states {
				fp := s.t.Policy.Footprint(m)
				series[i].cold.Append(nextWindow-start, float64(fp.Cold()))
				series[i].hot.Append(nextWindow-start, float64(fp.Hot2M+fp.Hot4K))
			}
			if et != nil {
				et.roll(now)
			}
			nextWindow += window
		}
	}
	if et != nil {
		et.end(m.Clock())
	}

	res.DurationNs = m.Clock() - start
	for i, s := range states {
		res.Tenants[i] = TenantResult{
			AppName:    s.t.App.Name(),
			PolicyName: s.t.Policy.Name(),
			Ops:        s.ops,
			Throughput: stats.Rate(s.ops, res.DurationNs),
			Footprint:  s.t.Policy.Footprint(m),
			Cold:       series[i].cold,
			Hot:        series[i].hot,
		}
	}
	return res, nil
}
