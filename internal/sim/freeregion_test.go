package sim

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/mem"
)

// TestFreeRegionRestoresMachineState exercises the tenant-departure path:
// a region holding hot fast-tier pages, a demoted (poisoned) page, and a
// sampling-split page must tear down to exactly the pre-allocation state —
// allocator usage, page-table leaves, TLB entries, and trap counts.
func TestFreeRegionRestoresMachineState(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	fast := m.Memory().Tier(mem.Fast)
	slow := m.Memory().Tier(mem.Slow)
	fastUsed, slowUsed := fast.Used(), slow.Used()
	mapped := m.PageTable().MappedBytes()

	r, err := m.AllocRegion(8<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	// Touch every page so the TLB and trap have state to tear down.
	for v := r.Start; v < r.End; v += addr.Virt(addr.PageSize4K) {
		if _, err := m.Access(v, false); err != nil {
			t.Fatal(err)
		}
	}
	// One page demoted (poisoned, slow tier), with a fault recorded on it.
	cold := r.Start.Base2M()
	if _, err := m.Demote(cold); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Access(cold, false); err != nil {
		t.Fatal(err)
	}
	if m.Trap().CountLeaf(cold) == 0 {
		t.Fatal("expected a poison fault on the demoted page")
	}
	// One page split for sampling with a poisoned 4KB leaf, as the poison
	// tracker leaves it mid-period.
	split := cold + addr.Virt(addr.PageSize2M)
	if err := m.PageTable().Split(split); err != nil {
		t.Fatal(err)
	}
	if err := m.Trap().Poison(split+addr.Virt(addr.PageSize4K), m.VPID()); err != nil {
		t.Fatal(err)
	}

	freed, err := m.FreeRegion(r)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := freed[mem.Fast], uint64(6<<20); got != want {
		t.Errorf("fast bytes freed = %d, want %d", got, want)
	}
	if got, want := freed[mem.Slow], uint64(2<<20); got != want {
		t.Errorf("slow bytes freed = %d, want %d", got, want)
	}
	if fast.Used() != fastUsed || slow.Used() != slowUsed {
		t.Errorf("allocator usage not restored: fast %d->%d slow %d->%d",
			fastUsed, fast.Used(), slowUsed, slow.Used())
	}
	if got := m.PageTable().MappedBytes(); got != mapped {
		t.Errorf("mapped bytes = %d, want %d", got, mapped)
	}
	for v := r.Start; v < r.End; v += addr.Virt(addr.PageSize2M) {
		if _, ok := m.TLB().Lookup(v, m.VPID()); ok {
			t.Errorf("stale TLB entry for %s", v)
		}
	}
	if m.Trap().CountLeaf(cold) != 0 {
		t.Error("trap counts survived FreeRegion")
	}
	if _, err := m.Access(r.Start, false); err == nil {
		t.Error("access to freed region succeeded")
	}

	// The frames are reusable: an identical allocation succeeds.
	if _, err := m.AllocRegion(8<<20, true); err != nil {
		t.Fatal(err)
	}
}

// TestFreeRegion4K covers the THP-disabled allocation grain.
func TestFreeRegion4K(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	fast := m.Memory().Tier(mem.Fast)
	used := fast.Used()
	r, err := m.AllocRegion(1<<20, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Access(r.Start, true); err != nil {
		t.Fatal(err)
	}
	freed, err := m.FreeRegion(r)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := freed[mem.Fast], uint64(1<<20); got != want {
		t.Errorf("freed = %d, want %d", got, want)
	}
	if fast.Used() != used {
		t.Errorf("fast usage %d, want %d", fast.Used(), used)
	}
}
