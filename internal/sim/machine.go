// Package sim is the machine model: it composes the memory system, page
// table, TLB, LLC, page-walk model, virtualization layer, BadgerTrap and the
// migration engine into a single virtual-time simulator that workloads issue
// memory accesses against.
//
// The simulator is closed-loop: each access is charged its full latency
// (TLB, page walk, poison faults, cache, memory device) and the virtual
// clock advances by that latency divided by the thread count, so throughput
// degradation emerges from the latency model exactly as wall-clock slowdown
// does on the paper's testbed.
package sim

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/badgertrap"
	"thermostat/internal/cache"
	"thermostat/internal/chaos"
	"thermostat/internal/fault"
	"thermostat/internal/mem"
	"thermostat/internal/numa"
	"thermostat/internal/pagetable"
	"thermostat/internal/stats"
	"thermostat/internal/telemetry"
	"thermostat/internal/tlb"
	"thermostat/internal/vm"
	"thermostat/internal/walk"
)

// SlowMemMode selects how accesses to the slow tier are costed.
type SlowMemMode int

// Slow-memory costing modes.
const (
	// EmulatedFault is the paper's methodology (§4.2): slow-tier data
	// physically sits in DRAM-speed memory and the ~1us BadgerTrap poison
	// fault on each TLB miss to a cold page provides the slow-memory
	// latency. Accesses that hit a transient TLB entry see DRAM speed
	// (the documented under-estimation); faults fire even for
	// cache-resident lines (the documented over-estimation).
	EmulatedFault SlowMemMode = iota
	// Device charges the slow tier's device read/write latency on LLC
	// misses, modeling real slow memory. Poison faults (when the policy
	// poisons pages for monitoring) are charged separately.
	Device
)

// String names the mode.
func (m SlowMemMode) String() string {
	switch m {
	case EmulatedFault:
		return "emulated-fault"
	case Device:
		return "device"
	default:
		return fmt.Sprintf("mode%d", int(m))
	}
}

// Config assembles a machine.
type Config struct {
	// VM is the virtualization setup (default: nested, huge host pages).
	VM vm.Config
	// TLB sizes the translation caches.
	TLB tlb.Config
	// LLC sizes the last-level cache.
	LLC cache.Config
	// Walk parameterizes page-walk latency.
	Walk walk.Config
	// Tiers, when non-empty, is the ordered memory hierarchy (fastest
	// first, up to mem.MaxTiers entries); it takes precedence over
	// FastSpec/SlowSpec.
	Tiers []mem.Spec
	// FastSpec and SlowSpec size the two-tier (paper) configuration used
	// when Tiers is empty.
	FastSpec, SlowSpec mem.Spec
	// Mode selects slow-memory costing (default EmulatedFault).
	Mode SlowMemMode
	// Threads is the number of worker threads sharing the machine
	// (default 8, the paper's medium cloud instance).
	Threads int
	// TLBHitNs, LLCHitNs are hit latencies (defaults 1, 30).
	TLBHitNs int64
	LLCHitNs int64
	// FaultLatencyNs is the BadgerTrap poison-fault service time
	// (default 1000, the paper's ~1us).
	FaultLatencyNs int64
	// VirtBase is where region allocation starts (default 16TB mark).
	VirtBase addr.Virt
	// Recorder, when non-nil, receives telemetry events from every
	// instrumented component (machine, migrator, engine, daemons). Nil
	// (the default) compiles the instrumentation down to one nil check
	// per site.
	Recorder telemetry.Recorder
	// Chaos configures deterministic fault injection into the migration
	// and poisoning machinery. The zero value (all rates 0) installs no
	// injector at all, so default machines are bit-identical to pre-chaos
	// builds.
	Chaos chaos.Config
	// Sparse arms the hybrid span-compressed page-table representation:
	// huge regions allocate as Telescope-style region summaries and carve
	// to page grain on first page-grain touch (sampling, poisoning,
	// migration). Off by default — dense machines are byte-identical to
	// pre-sparse builds; see DESIGN.md "Scaling to terabytes".
	Sparse bool
}

// DefaultConfig returns the paper's evaluated machine: KVM guest with huge
// pages at both levels, 64/1024-entry TLBs, 45MB LLC, 8 threads, BadgerTrap
// slow-memory emulation.
func DefaultConfig(fastBytes, slowBytes uint64) Config {
	return Config{
		VM:       vm.DefaultConfig(),
		TLB:      tlb.DefaultConfig(),
		LLC:      cache.DefaultConfig(),
		Walk:     walk.DefaultConfig(),
		FastSpec: mem.DefaultDRAM(fastBytes),
		SlowSpec: mem.DefaultSlow(slowBytes),
		Mode:     EmulatedFault,
		Threads:  8,
	}
}

// DefaultTieredConfig returns the default machine over an arbitrary ordered
// memory hierarchy (fastest first), e.g. DRAM/CXL/NVM. In EmulatedFault
// mode every non-top tier is emulated with poison faults at the configured
// fault latency; Device mode charges each tier's own device latency.
func DefaultTieredConfig(tiers ...mem.Spec) Config {
	cfg := DefaultConfig(0, 0)
	cfg.Tiers = tiers
	return cfg
}

// TierSpecs returns the ordered hierarchy a config will build.
func (c Config) TierSpecs() []mem.Spec {
	if len(c.Tiers) > 0 {
		return c.Tiers
	}
	return []mem.Spec{c.FastSpec, c.SlowSpec}
}

// Metrics is a snapshot of machine-level counters.
type Metrics struct {
	Accesses uint64
	// SlowAccesses counts accesses served by any non-top tier.
	SlowAccesses uint64
	// TierAccesses counts accesses per tier, indexed by mem.TierID.
	TierAccesses []uint64
	PoisonFaults uint64
	TLB          tlb.Stats
	LLC          cache.Stats
	// AccessLatency aggregates per-access latency in nanoseconds.
	AccessLatency *stats.Histogram
	// ClockNs is the current virtual time.
	ClockNs int64
	// MigrationBytes is the total inter-tier traffic from the machine's
	// shared meter (all kinds, all tier pairs).
	MigrationBytes uint64
}

// Machine is the composed simulator.
type Machine struct {
	cfg Config

	sys   *mem.System
	pt    *pagetable.Table
	tl    *tlb.TLB
	llc   *cache.Cache
	wm    *walk.Model
	guest *vm.VM
	trap  *badgertrap.Trap
	reg   *fault.Registry
	mig   *numa.Migrator
	meter *mem.Meter

	// rec is the telemetry sink; nil (the default) means telemetry is off
	// and every instrumentation site reduces to one nil check.
	rec telemetry.Recorder

	// chaos is the fault injector; nil (the default) means chaos is off
	// and every injection site reduces to one nil check.
	chaos *chaos.Injector

	clock int64
	next  addr.Virt // bump pointer for region allocation

	// tierReadLat/tierWriteLat are the per-tier device latencies, indexed
	// by mem.TierID — precomputed at construction so the access path reads
	// one slice element instead of chasing Tier→Spec per miss. fastReadLat
	// caches the top tier's read latency for the EmulatedFault fill path.
	tierReadLat  []int64
	tierWriteLat []int64
	fastReadLat  int64
	// maxAccessLat is a lazily computed conservative upper bound on one
	// access's modeled latency (see MaxOpAdvanceNs).
	maxAccessLat int64
	// batchTierAcc is AccessBatch's scratch per-tier counter block.
	batchTierAcc []uint64

	accesses     stats.Counter
	slowAccesses stats.Counter
	tierAccesses []stats.Counter // indexed by mem.TierID
	latHist      *stats.Histogram

	// daemonNs accumulates policy CPU time (scans, sorting) which the
	// paper runs on spare cores; it is tracked but not charged to the
	// application's critical path.
	daemonNs int64

	// Ground-truth per-2MB-page access (LLC miss) counting — Figure 2's
	// y-axis, which no real x86 can observe but a simulator can. Counts
	// live in a dense slice indexed by 2MB region number above pcBase
	// (regions come from a 2MB-aligned bump allocator, so the space is
	// contiguous); pcLow catches the stray below-base address so the
	// map-based semantics are preserved exactly.
	pcEnabled bool
	pcBase    addr.Virt
	pcCounts  []uint64
	pcLow     map[addr.Virt]uint64

	// missHook, when set, observes every LLC miss and returns extra
	// latency to charge the access — the attachment point for the §6.1
	// hardware-assisted access counters (CM-bit, PEBS).
	missHook func(v addr.Virt, write bool) int64
}

// New validates cfg and builds a machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	if cfg.TLBHitNs <= 0 {
		cfg.TLBHitNs = 1
	}
	if cfg.LLCHitNs <= 0 {
		cfg.LLCHitNs = 30
	}
	if cfg.FaultLatencyNs <= 0 {
		cfg.FaultLatencyNs = badgertrap.DefaultFaultLatencyNs
	}
	if cfg.VirtBase == 0 {
		cfg.VirtBase = addr.Virt(1) << 40
	}
	if cfg.VirtBase.Base2M() != cfg.VirtBase {
		return nil, fmt.Errorf("sim: VirtBase %s not 2MB-aligned", cfg.VirtBase)
	}
	wm, err := walk.NewModel(cfg.Walk)
	if err != nil {
		return nil, err
	}
	vpid := tlb.VPID(1)
	if cfg.VM.Mode == vm.Native {
		vpid = tlb.HostVPID
	}
	guest, err := vm.New(cfg.VM, vpid)
	if err != nil {
		return nil, err
	}
	sys, err := mem.NewHierarchy(cfg.TierSpecs()...)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	pt := pagetable.New()
	if cfg.Sparse {
		pt.EnableSpans()
	}
	m := &Machine{
		cfg:          cfg,
		sys:          sys,
		pt:           pt,
		tl:           tlb.New(cfg.TLB),
		llc:          cache.New(cfg.LLC),
		wm:           wm,
		guest:        guest,
		next:         cfg.VirtBase,
		latHist:      stats.NewHistogram(),
		tierAccesses: make([]stats.Counter, sys.NumTiers()),
	}
	m.tierReadLat = make([]int64, sys.NumTiers())
	m.tierWriteLat = make([]int64, sys.NumTiers())
	m.batchTierAcc = make([]uint64, sys.NumTiers())
	for t := 0; t < sys.NumTiers(); t++ {
		spec := sys.Tier(mem.TierID(t)).Spec()
		m.tierReadLat[t] = spec.ReadLatency
		m.tierWriteLat[t] = spec.WriteLatency
	}
	m.fastReadLat = m.tierReadLat[mem.Fast]
	m.trap = badgertrap.New(m.pt, m.tl, cfg.FaultLatencyNs)
	m.reg = fault.NewRegistry()
	m.reg.Register(fault.Poison, m.trap)
	// The machine owns one traffic meter and shares it with the migrator,
	// so every migration — whoever initiates it — lands in the same
	// traffic matrix that Metrics and the N-tier reports read.
	m.meter = mem.NewMeter(0)
	m.mig = numa.NewMigrator(m.sys, m.pt, m.tl, m.meter)
	if inj := chaos.New(cfg.Chaos); inj != nil {
		m.chaos = inj
		m.mig.SetInjector(inj, func() int64 { return m.clock })
	}
	if cfg.Recorder != nil {
		m.SetRecorder(cfg.Recorder)
	}
	return m, nil
}

// Component accessors, used by policies and tests.

// PageTable returns the guest page table.
func (m *Machine) PageTable() *pagetable.Table { return m.pt }

// TLB returns the translation caches.
func (m *Machine) TLB() *tlb.TLB { return m.tl }

// LLC returns the last-level cache model.
func (m *Machine) LLC() *cache.Cache { return m.llc }

// Memory returns the tiered memory system.
func (m *Machine) Memory() *mem.System { return m.sys }

// Trap returns the BadgerTrap instance.
func (m *Machine) Trap() *badgertrap.Trap { return m.trap }

// Migrator returns the page migration engine.
func (m *Machine) Migrator() *numa.Migrator { return m.mig }

// Meter returns the machine's inter-tier traffic meter, shared with the
// migrator.
func (m *Machine) Meter() *mem.Meter { return m.meter }

// Recorder returns the telemetry sink (nil when telemetry is off). Policies
// and daemons emit their events through it, guarding with a nil check.
func (m *Machine) Recorder() telemetry.Recorder { return m.rec }

// SetRecorder installs (or, with nil, removes) the telemetry sink and hooks
// the migrator so every page move emits a Migrated event stamped with the
// machine's virtual clock.
func (m *Machine) SetRecorder(r telemetry.Recorder) {
	m.rec = r
	if r == nil {
		m.mig.SetObserver(nil)
		return
	}
	m.mig.SetObserver(func(v addr.Virt, src, dst mem.TierID, bytes uint64, kind mem.TrafficKind, costNs int64) {
		r.Event(telemetry.Event{
			Kind: telemetry.KindMigrated, TimeNs: m.clock, Page: v,
			FromTier: int8(src), ToTier: int8(dst), Bytes: bytes,
		})
	})
}

// Injector returns the chaos fault injector (nil when chaos is off).
func (m *Machine) Injector() *chaos.Injector { return m.chaos }

// FaultReport returns the machine-level chaos summary: injected-fault counts
// from the injector plus migration-transaction rollbacks from the migrator.
// Policy layers (core.Engine) add their retry/quarantine counts on top.
func (m *Machine) FaultReport() chaos.Report {
	r := m.chaos.Report()
	r.RolledBack = m.mig.Rollbacks()
	return r
}

// Guest returns the virtualization layer.
func (m *Machine) Guest() *vm.VM { return m.guest }

// VPID returns the guest's TLB tag.
func (m *Machine) VPID() tlb.VPID { return m.guest.VPID() }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Mode returns the slow-memory costing mode.
func (m *Machine) Mode() SlowMemMode { return m.cfg.Mode }

// Clock returns the virtual time in nanoseconds.
func (m *Machine) Clock() int64 { return m.clock }

// AdvanceClock adds application compute time (divided across threads).
func (m *Machine) AdvanceClock(ns int64) {
	m.clock += ns / int64(m.cfg.Threads)
}

// ChargeDaemon accounts policy CPU time off the application critical path.
func (m *Machine) ChargeDaemon(ns int64) { m.daemonNs += ns }

// DaemonNs returns accumulated policy CPU time.
func (m *Machine) DaemonNs() int64 { return m.daemonNs }

// AllocRegion maps size bytes (rounded up to whole pages) of fresh virtual
// address space backed by the fast tier. With huge=true the region is backed
// by 2MB THP mappings; otherwise by 4KB mappings (THP disabled, or
// page-cache pages without hugetmpfs).
func (m *Machine) AllocRegion(size uint64, huge bool) (addr.Range, error) {
	if size == 0 {
		return addr.Range{}, fmt.Errorf("sim: AllocRegion of zero size")
	}
	// Round the region itself to 2MB so the bump pointer stays aligned.
	rounded := (size + addr.PageSize2M - 1) / addr.PageSize2M * addr.PageSize2M
	start := m.next
	r := addr.NewRange(start, size)
	fast := m.sys.Tier(mem.Fast)
	if huge && m.cfg.Sparse {
		// Sparse mode: the whole region is one span record over one
		// physically contiguous run — the same frames the per-page loop
		// below would hand out from a fresh tier, at O(1) state.
		pages := int(rounded / addr.PageSize2M)
		p, err := fast.AllocContig2M(pages)
		if err != nil {
			return addr.Range{}, fmt.Errorf("sim: AllocRegion: %w", err)
		}
		if err := m.pt.MapSpan(start, p, pages, pagetable.Writable); err != nil {
			return addr.Range{}, err
		}
	} else if huge {
		for v := start; v < start+addr.Virt(rounded); v += addr.Virt(addr.PageSize2M) {
			p, err := fast.Alloc2M()
			if err != nil {
				return addr.Range{}, fmt.Errorf("sim: AllocRegion: %w", err)
			}
			if err := m.pt.Map2M(v, p, pagetable.Writable); err != nil {
				return addr.Range{}, err
			}
		}
	} else {
		nPages := (size + addr.PageSize4K - 1) / addr.PageSize4K
		for i := uint64(0); i < nPages; i++ {
			v := start + addr.Virt(i*addr.PageSize4K)
			p, err := fast.Alloc4K()
			if err != nil {
				return addr.Range{}, fmt.Errorf("sim: AllocRegion: %w", err)
			}
			if err := m.pt.Map4K(v, p, pagetable.Writable); err != nil {
				return addr.Range{}, err
			}
		}
	}
	m.next = start + addr.Virt(rounded)
	return r, nil
}

// FreeRegion unmaps every leaf in r and returns its frames to their owning
// tiers — the munmap path a departing tenant takes. Poisoned leaves are
// disarmed, split huge pages are collapsed back to their 2MB allocation
// grain, the TLB range is shot down (including transient BadgerTrap
// translations), and the trap's per-page fault counts for the range are
// dropped. The LLC is deliberately not flushed: real kernels do not flush
// caches on munmap, and recycled frames genuinely keep their lines warm.
//
// Returns the freed bytes per tier, indexed by mem.TierID. Freed virtual
// addresses are never reused (the region allocator only bumps forward).
func (m *Machine) FreeRegion(r addr.Range) ([]uint64, error) {
	type leafInfo struct {
		base addr.Virt
		lvl  pagetable.Level
		poi  bool
		spl  bool
	}
	// Span-held pages first: whole cold runs return to their tier in bulk,
	// trimming any span that accretion merged across the range boundary.
	freed := make([]uint64, m.sys.NumTiers())
	for _, run := range m.pt.UnmapSpansRange(r) {
		tier := m.sys.TierOf(run.Pbase)
		for i := 0; i < run.Pages; i++ {
			m.sys.Tier(tier).Free2M(run.Pbase + addr.Phys(uint64(i)*addr.PageSize2M))
		}
		freed[tier] += uint64(run.Pages) * addr.PageSize2M
	}
	var leaves []leafInfo
	m.pt.ScanRange(r, func(base addr.Virt, e *pagetable.Entry, lvl pagetable.Level) {
		leaves = append(leaves, leafInfo{
			base: base, lvl: lvl,
			poi: e.Flags.Has(pagetable.Poisoned),
			spl: e.Flags.Has(pagetable.SplitSampled),
		})
	})
	// Disarm monitoring, then restore sampled pages to their 2MB allocation
	// grain so each Unmap returns exactly one allocator block.
	var collapse []addr.Virt
	for _, l := range leaves {
		if l.poi {
			if err := m.trap.Unpoison(l.base); err != nil {
				return nil, fmt.Errorf("sim: FreeRegion: %w", err)
			}
		}
		if hv := l.base.Base2M(); l.spl &&
			(len(collapse) == 0 || collapse[len(collapse)-1] != hv) {
			collapse = append(collapse, hv)
		}
	}
	for _, hv := range collapse {
		if err := m.pt.Collapse(hv); err != nil {
			return nil, fmt.Errorf("sim: FreeRegion: %w", err)
		}
	}
	// Re-scan (the leaf set changed shape), then unmap and free.
	var final []leafInfo
	m.pt.ScanRange(r, func(base addr.Virt, e *pagetable.Entry, lvl pagetable.Level) {
		final = append(final, leafInfo{base: base, lvl: lvl})
	})
	for _, l := range final {
		e, lvl, err := m.pt.Unmap(l.base)
		if err != nil {
			return nil, fmt.Errorf("sim: FreeRegion: %w", err)
		}
		tier := m.sys.TierOf(e.Frame)
		if lvl == pagetable.Level2M {
			m.sys.Tier(tier).Free2M(e.Frame)
			freed[tier] += addr.PageSize2M
		} else {
			m.sys.Tier(tier).Free4K(e.Frame)
			freed[tier] += addr.PageSize4K
		}
	}
	m.tl.InvalidateRange(r, m.VPID())
	m.trap.ForgetRange(r)
	return freed, nil
}

// Demote moves the 2MB region containing v one tier down the hierarchy and
// arms PMD-grain poisoning on it. The poison serves double duty: in
// EmulatedFault mode it is the slow-memory emulation itself (each TLB miss
// to the page costs a ~1us fault, per the paper's methodology), and in both
// modes its fault counts are the §3.5 access monitoring policies read. In
// the paper's two-tier configuration this is exactly fast→slow. Returns
// the migration cost in nanoseconds.
func (m *Machine) Demote(v addr.Virt) (int64, error) {
	src, err := m.mig.TierOfPage(v.Base2M())
	if err != nil {
		return 0, err
	}
	if src >= m.sys.Bottom() {
		return 0, fmt.Errorf("sim: %s already in the bottom (%s) tier", v.Base2M(), src)
	}
	// Whether monitoring must be armed is decided up front so an injected
	// poison failure strikes before any state changes (the demotion is then
	// a clean no-op, trivially transactional).
	needArm := !m.trap.IsPoisoned(v.Base2M())
	if needArm && m.chaos != nil {
		if f := m.chaos.Inject(chaos.PoisonArm, m.clock); f != nil {
			return 0, fmt.Errorf("sim: Demote %s: %w", v.Base2M(), f)
		}
	}
	cost, err := m.mig.MoveHuge(v, src+1, m.VPID(), mem.Demotion)
	if err != nil {
		return 0, err
	}
	if !needArm {
		// Already monitored (page was below the top tier before); the
		// poison carries over to the new frame's mapping unchanged.
		return cost, nil
	}
	if err := m.trap.Poison(v.Base2M(), m.VPID()); err != nil {
		return 0, err
	}
	return cost, nil
}

// Promote moves the 2MB region containing v one tier up the hierarchy. The
// poison is disarmed for the move and re-armed when the destination is
// still below the top tier (monitoring and slow-memory emulation continue
// there); a page reaching the fast tier stops being monitored. In the
// paper's two-tier configuration this is exactly slow→fast. Returns the
// migration cost in nanoseconds.
func (m *Machine) Promote(v addr.Virt) (int64, error) {
	base := v.Base2M()
	src, err := m.mig.TierOfPage(base)
	if err != nil {
		return 0, err
	}
	if src == mem.Fast {
		return 0, fmt.Errorf("sim: %s already in the top (%s) tier", base, mem.Fast)
	}
	armed := m.trap.IsPoisoned(base)
	if m.chaos != nil {
		// Both poison-site faults strike before any state changes, so a
		// failed promotion is a clean no-op.
		if armed {
			if f := m.chaos.Inject(chaos.PoisonDisarm, m.clock); f != nil {
				return 0, fmt.Errorf("sim: Promote %s: %w", base, f)
			}
		}
		if src-1 != mem.Fast {
			if f := m.chaos.Inject(chaos.PoisonArm, m.clock); f != nil {
				return 0, fmt.Errorf("sim: Promote %s: %w", base, f)
			}
		}
	}
	if armed {
		if err := m.trap.Unpoison(base); err != nil {
			return 0, err
		}
	}
	cost, err := m.mig.MoveHuge(base, src-1, m.VPID(), mem.Promotion)
	if err != nil {
		// The move rolled back; re-arm the poison disarmed above so a
		// failed promotion leaves monitoring (and slow-memory emulation)
		// exactly as it was.
		if armed {
			if perr := m.trap.Poison(base, m.VPID()); perr != nil {
				return 0, fmt.Errorf("sim: Promote %s: re-arm after failed move: %v (move error: %w)", base, perr, err)
			}
		}
		return 0, err
	}
	if src-1 != mem.Fast {
		if err := m.trap.Poison(base, m.VPID()); err != nil {
			return 0, err
		}
	}
	return cost, nil
}

// Access simulates one memory access to v, charging the full latency path
// and advancing the virtual clock by latency/threads. Returns the modeled
// latency of this access.
func (m *Machine) Access(v addr.Virt, write bool) (int64, error) {
	var lat int64
	var frame addr.Phys
	var lvl pagetable.Level

	vpid := m.guest.VPID()
	if res, ok := m.tl.Lookup(v, vpid); ok {
		lat += m.cfg.TLBHitNs
		frame, lvl = res.Frame, res.Level
	} else {
		// Hardware page walk.
		wr := m.pt.Walk(v, write)
		if !wr.Found {
			return 0, fmt.Errorf("sim: access to unmapped %s", v)
		}
		lat += m.wm.Latency(m.guest.Nested(), wr.Depth, m.guest.HostWalkDepth())
		if wr.Poisoned {
			// Protection fault: BadgerTrap services it (counts the
			// access, installs a transient translation, re-poisons).
			fl, err := m.reg.Dispatch(fault.Fault{
				Kind: fault.Poison, Virt: v, Write: write,
				VPID: vpid, TimeNs: m.clock,
			})
			if err != nil {
				return 0, err
			}
			lat += fl + m.guest.FaultOverheadNs()
			if m.rec != nil {
				m.rec.Event(telemetry.Event{
					Kind: telemetry.KindFaultInjected, TimeNs: m.clock,
					Page: v.Base4K(), Count: 1,
				})
			}
			res, ok := m.tl.Lookup(v, vpid)
			if !ok {
				return 0, fmt.Errorf("sim: fault handler left %s untranslated", v)
			}
			frame, lvl = res.Frame, res.Level
		} else {
			frame, lvl = wr.Entry.Frame, wr.Level
			m.tl.Insert(v, lvl, frame, vpid)
		}
	}

	// Physical address of the accessed byte.
	var pa addr.Phys
	if lvl == pagetable.Level2M {
		pa = frame + addr.Phys(v.Offset2M())
	} else {
		pa = frame + addr.Phys(v.Offset4K())
	}
	tier := m.sys.TierOf(pa)
	m.tierAccesses[tier].Inc()
	if tier != mem.Fast {
		m.slowAccesses.Inc()
	}

	// Cache hierarchy and memory device.
	if m.llc.Access(pa) {
		lat += m.cfg.LLCHitNs
	} else {
		if m.pcEnabled {
			m.countPage(v)
		}
		if m.missHook != nil {
			lat += m.missHook(v, write)
		}
		switch {
		case m.cfg.Mode == EmulatedFault && tier != mem.Fast:
			// Paper methodology: data physically in DRAM; the poison
			// fault above supplied the emulated slow latency. Charge
			// DRAM device time for the actual fill.
			lat += m.fastReadLat
		case write:
			lat += m.tierWriteLat[tier]
		default:
			lat += m.tierReadLat[tier]
		}
	}

	m.accesses.Inc()
	m.latHist.Observe(uint64(lat))
	m.clock += lat / int64(m.cfg.Threads)
	return lat, nil
}

// Req is one memory access request, the element type of AccessBatch and
// BatchApp.NextBatch.
type Req struct {
	V     addr.Virt
	Write bool
}

// BatchSafe reports whether AccessBatch currently follows the exact same
// code path as per-op Access calls. A miss hook is the one per-access
// callback that could observe the difference, so it disables batching.
func (m *Machine) BatchSafe() bool { return m.missHook == nil }

// MaxOpAdvanceNs returns a conservative upper bound on how far one access
// followed by computeNs of application compute can advance the virtual
// clock. The runner sizes batches so that (n-1) ops at this bound cannot
// reach the next tick/window boundary, which makes batched execution
// boundary-exact (see DESIGN.md "Hot path"). Overestimating only shrinks
// batches; it never affects results.
func (m *Machine) MaxOpAdvanceNs(computeNs int64) int64 {
	if m.maxAccessLat == 0 {
		walkMax := m.wm.Latency(m.guest.Nested(), 4, m.guest.HostWalkDepth())
		devMax := int64(0)
		for t := range m.tierReadLat {
			if m.tierReadLat[t] > devMax {
				devMax = m.tierReadLat[t]
			}
			if m.tierWriteLat[t] > devMax {
				devMax = m.tierWriteLat[t]
			}
		}
		m.maxAccessLat = m.cfg.TLBHitNs + walkMax + m.cfg.FaultLatencyNs +
			m.guest.FaultOverheadNs() + m.cfg.LLCHitNs + devMax
	}
	threads := int64(m.cfg.Threads)
	return m.maxAccessLat/threads + computeNs/threads + 1
}

// AccessBatch simulates len(reqs) consecutive accesses, equivalent to
// calling Access for each request followed by AdvanceClock(computeNs) when
// computeNs > 0 — same latencies, same clock trajectory, same fault and
// telemetry behavior — but with the per-op bookkeeping amortized: the VPID
// is fetched once, tier and access counters accumulate locally and flush
// once per batch (Metrics is only read at boundaries, which the runner
// keeps outside batches). lats[i] receives each op's modeled latency;
// clocks, when non-nil, receives the virtual time after each op.
func (m *Machine) AccessBatch(reqs []Req, computeNs int64, lats, clocks []int64) (err error) {
	threads := int64(m.cfg.Threads)
	vpid := m.guest.VPID()
	var nAcc, nSlow uint64
	tierAcc := m.batchTierAcc
	for i := range tierAcc {
		tierAcc[i] = 0
	}
	defer func() {
		m.accesses.Add(nAcc)
		m.slowAccesses.Add(nSlow)
		for t, n := range tierAcc {
			if n > 0 {
				m.tierAccesses[t].Add(n)
			}
		}
	}()

	for i := range reqs {
		v, write := reqs[i].V, reqs[i].Write
		var lat int64
		var frame addr.Phys
		var lvl pagetable.Level

		if res, ok := m.tl.Lookup(v, vpid); ok {
			lat += m.cfg.TLBHitNs
			frame, lvl = res.Frame, res.Level
		} else {
			wr := m.pt.Walk(v, write)
			if !wr.Found {
				return fmt.Errorf("sim: access to unmapped %s", v)
			}
			lat += m.wm.Latency(m.guest.Nested(), wr.Depth, m.guest.HostWalkDepth())
			if wr.Poisoned {
				fl, ferr := m.reg.Dispatch(fault.Fault{
					Kind: fault.Poison, Virt: v, Write: write,
					VPID: vpid, TimeNs: m.clock,
				})
				if ferr != nil {
					return ferr
				}
				lat += fl + m.guest.FaultOverheadNs()
				if m.rec != nil {
					m.rec.Event(telemetry.Event{
						Kind: telemetry.KindFaultInjected, TimeNs: m.clock,
						Page: v.Base4K(), Count: 1,
					})
				}
				res, ok := m.tl.Lookup(v, vpid)
				if !ok {
					return fmt.Errorf("sim: fault handler left %s untranslated", v)
				}
				frame, lvl = res.Frame, res.Level
			} else {
				frame, lvl = wr.Entry.Frame, wr.Level
				m.tl.Insert(v, lvl, frame, vpid)
			}
		}

		var pa addr.Phys
		if lvl == pagetable.Level2M {
			pa = frame + addr.Phys(v.Offset2M())
		} else {
			pa = frame + addr.Phys(v.Offset4K())
		}
		tier := m.sys.TierOf(pa)
		tierAcc[tier]++
		if tier != mem.Fast {
			nSlow++
		}

		if m.llc.Access(pa) {
			lat += m.cfg.LLCHitNs
		} else {
			if m.pcEnabled {
				m.countPage(v)
			}
			switch {
			case m.cfg.Mode == EmulatedFault && tier != mem.Fast:
				lat += m.fastReadLat
			case write:
				lat += m.tierWriteLat[tier]
			default:
				lat += m.tierReadLat[tier]
			}
		}

		nAcc++
		m.latHist.Observe(uint64(lat))
		// Two separate floored divisions, exactly as Access followed by
		// AdvanceClock performs them.
		m.clock += lat / threads
		if computeNs > 0 {
			m.clock += computeNs / threads
		}
		lats[i] = lat
		if clocks != nil {
			clocks[i] = m.clock
		}
	}
	return nil
}

// SetMissHook installs an observer invoked on every LLC miss; its return
// value is added to the access latency. Pass nil to remove. Used by the
// §6.1 hardware-assisted access-counting models.
func (m *Machine) SetMissHook(h func(v addr.Virt, write bool) int64) {
	m.missHook = h
}

// EnablePageCounts turns on ground-truth per-2MB-page memory access (LLC
// miss) counting. This is simulator-only instrumentation: the paper's
// motivation is precisely that real x86 hardware cannot observe this.
func (m *Machine) EnablePageCounts() {
	if !m.pcEnabled {
		m.pcEnabled = true
		m.pcBase = m.cfg.VirtBase
	}
}

// countPage records one LLC miss against the 2MB page containing v. Regions
// are bump-allocated from pcBase, so the common case is one bounds check and
// a slice increment; addresses below the base (never produced by
// AllocRegion) fall back to a map to keep semantics identical.
func (m *Machine) countPage(v addr.Virt) {
	if v >= m.pcBase {
		idx := uint64(v-m.pcBase) >> addr.PageShift2M
		if idx >= uint64(len(m.pcCounts)) {
			grown := make([]uint64, idx+1, (idx+1)*2)
			copy(grown, m.pcCounts)
			m.pcCounts = grown
		}
		m.pcCounts[idx]++
		return
	}
	if m.pcLow == nil {
		m.pcLow = make(map[addr.Virt]uint64)
	}
	m.pcLow[v.Base2M()]++
}

// PageCounts returns a copy of the ground-truth per-2MB-page access counts
// since EnablePageCounts (nil if disabled). Only pages with at least one
// recorded miss appear, matching the map-increment implementation this
// reconstructs.
func (m *Machine) PageCounts() map[addr.Virt]uint64 {
	if !m.pcEnabled {
		return nil
	}
	out := make(map[addr.Virt]uint64, len(m.pcCounts)+len(m.pcLow))
	for i, c := range m.pcCounts {
		if c != 0 {
			out[m.pcBase+addr.Virt(uint64(i)<<addr.PageShift2M)] = c
		}
	}
	for k, c := range m.pcLow {
		out[k] = c
	}
	return out
}

// ResetPageCounts clears the ground-truth counters (keeps counting enabled).
func (m *Machine) ResetPageCounts() {
	for i := range m.pcCounts {
		m.pcCounts[i] = 0
	}
	m.pcLow = nil
}

// Sparse reports whether the machine runs the hybrid span-compressed page
// table.
func (m *Machine) Sparse() bool { return m.cfg.Sparse }

// StateBytes estimates the machine's footprint-dependent simulator state:
// page table (radix nodes, leaf index, spans), tier allocators, BadgerTrap
// fault counts, and the ground-truth page counters. Fixed-size components
// (TLB, LLC, walk model) are excluded — the scaling gate tracks how state
// grows with simulated footprint, and they don't.
func (m *Machine) StateBytes() uint64 {
	return m.pt.StateBytes() + m.sys.StateBytes() + m.trap.StateBytes() +
		uint64(cap(m.pcCounts))*8 + uint64(len(m.pcLow))*24
}

// Metrics returns a snapshot of the machine counters. The histogram is the
// live aggregation; callers must not mutate it.
func (m *Machine) Metrics() Metrics {
	perTier := make([]uint64, len(m.tierAccesses))
	for i := range m.tierAccesses {
		perTier[i] = m.tierAccesses[i].Value()
	}
	return Metrics{
		Accesses:       m.accesses.Value(),
		SlowAccesses:   m.slowAccesses.Value(),
		TierAccesses:   perTier,
		PoisonFaults:   m.trap.TotalFaults(),
		TLB:            m.tl.Stats(),
		LLC:            m.llc.Stats(),
		AccessLatency:  m.latHist,
		ClockNs:        m.clock,
		MigrationBytes: m.meter.TotalBytes(),
	}
}
