package sim

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/mem"
	"thermostat/internal/rng"
	"thermostat/internal/stats"
	"thermostat/internal/vm"
	"thermostat/internal/walk"
)

func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultConfig(64<<20, 64<<20))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAllocRegionHuge(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	r, err := m.AllocRegion(4<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 4<<20 {
		t.Fatalf("size = %d", r.Size())
	}
	if m.PageTable().Count2M() != 2 || m.PageTable().Count4K() != 0 {
		t.Fatalf("counts %d/%d", m.PageTable().Count2M(), m.PageTable().Count4K())
	}
	// Regions don't overlap.
	r2, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Overlaps(r2) {
		t.Fatal("regions overlap")
	}
}

func TestAllocRegion4K(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	r, err := m.AllocRegion(3*addr.PageSize4K, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.PageTable().Count4K() != 3 {
		t.Fatalf("Count4K = %d", m.PageTable().Count4K())
	}
	// Next region still 2MB aligned.
	r2, _ := m.AllocRegion(2<<20, true)
	if r2.Start.Base2M() != r2.Start {
		t.Fatal("bump pointer lost alignment")
	}
	_ = r
}

func TestAllocRegionErrors(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	if _, err := m.AllocRegion(0, true); err == nil {
		t.Fatal("zero-size accepted")
	}
	if _, err := m.AllocRegion(1<<30, true); err == nil {
		t.Fatal("over-capacity alloc accepted")
	}
}

func TestAccessLatencyPaths(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	r, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	v := r.Start

	// First access: TLB miss -> nested 2M/2M walk (15 steps) + LLC miss +
	// DRAM fill.
	lat1, err := m.Access(v, false)
	if err != nil {
		t.Fatal(err)
	}
	wm, _ := walk.NewModel(m.Config().Walk)
	walkLat := wm.Latency(true, walk.Depth2M, walk.Depth2M)
	dram := m.Memory().Tier(mem.Fast).Spec().ReadLatency
	want1 := walkLat + dram
	if lat1 != want1 {
		t.Fatalf("cold access lat = %d, want %d", lat1, want1)
	}

	// Second access to the same line: TLB hit + LLC hit.
	lat2, err := m.Access(v, false)
	if err != nil {
		t.Fatal(err)
	}
	if want2 := m.Config().TLBHitNs + m.Config().LLCHitNs; lat2 != want2 {
		t.Fatalf("warm access lat = %d, want %d", lat2, want2)
	}
	if lat2 >= lat1 {
		t.Fatal("warm access not faster than cold")
	}
}

func TestAccessUnmappedFails(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	if _, err := m.Access(addr.Virt(0xdead000), false); err == nil {
		t.Fatal("unmapped access succeeded")
	}
}

func TestPoisonedAccessChargesFaultAndCounts(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	r, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	v := r.Start
	if err := m.Trap().Poison(v, m.VPID()); err != nil {
		t.Fatal(err)
	}
	lat, err := m.Access(v, false)
	if err != nil {
		t.Fatal(err)
	}
	if lat < m.Config().FaultLatencyNs {
		t.Fatalf("poisoned access lat = %d, want >= fault latency", lat)
	}
	if m.Trap().Count(v) != 1 {
		t.Fatal("fault not counted")
	}
	// Transient TLB entry: next access is fast and uncounted.
	lat2, err := m.Access(v, false)
	if err != nil {
		t.Fatal(err)
	}
	if lat2 >= m.Config().FaultLatencyNs {
		t.Fatalf("TLB-resident poisoned access lat = %d", lat2)
	}
	if m.Trap().Count(v) != 1 {
		t.Fatal("TLB-resident access should not fault")
	}
}

func TestSlowAccessCountingAndEmulation(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	r, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	v := r.Start
	if _, err := m.Migrator().MoveHuge(v, mem.Slow, m.VPID(), mem.Demotion); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Access(v, false); err != nil {
		t.Fatal(err)
	}
	if m.Metrics().SlowAccesses != 1 {
		t.Fatalf("SlowAccesses = %d", m.Metrics().SlowAccesses)
	}
	// In EmulatedFault mode an unpoisoned slow page costs DRAM speed (the
	// emulation latency comes from poison faults, which the policy arms).
	lat, _ := m.Access(v, false)
	if lat > 2*m.Config().LLCHitNs+m.Config().TLBHitNs {
		t.Fatalf("emulated-mode slow access lat = %d, want DRAM-class", lat)
	}
}

func TestDeviceModeChargesSlowLatency(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig(64<<20, 64<<20)
	cfg.Mode = Device
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	v := r.Start
	if _, err := m.Migrator().MoveHuge(v, mem.Slow, m.VPID(), mem.Demotion); err != nil {
		t.Fatal(err)
	}
	lat, err := m.Access(v, false)
	if err != nil {
		t.Fatal(err)
	}
	if lat < m.Memory().Tier(mem.Slow).Spec().ReadLatency {
		t.Fatalf("device-mode slow access lat = %d, want >= 1000", lat)
	}
}

func TestClockAdvancesByLatencyOverThreads(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig(64<<20, 64<<20)
	cfg.Threads = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Clock()
	lat, err := m.Access(r.Start, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Clock() - before; got != lat/4 {
		t.Fatalf("clock advanced %d, want %d", got, lat/4)
	}
	m.AdvanceClock(400)
	if got := m.Clock() - before; got != lat/4+100 {
		t.Fatalf("AdvanceClock wrong: %d", got)
	}
}

func TestNativeModeMachine(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig(64<<20, 64<<20)
	cfg.VM = vm.Config{Mode: vm.Native}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := m.Access(r.Start, false)
	if err != nil {
		t.Fatal(err)
	}
	// Native 2M walk = 3 steps: cheaper than the nested machine's 15.
	wm, _ := walk.NewModel(cfg.Walk)
	want := wm.Latency(false, walk.Depth2M, 0) + m.Memory().Tier(mem.Fast).Spec().ReadLatency
	if lat != want {
		t.Fatalf("native cold access = %d, want %d", lat, want)
	}
}

// uniformApp is a minimal closed-loop App for runner tests.
type uniformApp struct {
	name    string
	size    uint64
	huge    bool
	r       *rng.PCG
	region  addr.Range
	compute int64
	ticks   int
}

func (a *uniformApp) Name() string { return a.name }
func (a *uniformApp) Init(m *Machine) error {
	reg, err := m.AllocRegion(a.size, a.huge)
	a.region = reg
	return err
}
func (a *uniformApp) Next() (addr.Virt, bool) {
	off := a.r.Uint64n(a.region.Size())
	return a.region.Start + addr.Virt(off), a.r.Bool(0.1)
}
func (a *uniformApp) ComputeNs() int64           { return a.compute }
func (a *uniformApp) Tick(*Machine, int64) error { a.ticks++; return nil }

func TestRunBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	m := newMachine(t)
	app := &uniformApp{name: "uniform", size: 8 << 20, huge: true, r: rng.New(1), compute: 500}
	res, err := Run(m, app, NullPolicy{Interval: 1e8}, RunConfig{DurationNs: 1e9, WindowNs: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops executed")
	}
	if res.DurationNs < 1e9 {
		t.Fatalf("run too short: %d", res.DurationNs)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	if app.ticks == 0 {
		t.Fatal("app.Tick never called")
	}
	if res.SlowRate.Len() < 9 {
		t.Fatalf("windows sampled = %d", res.SlowRate.Len())
	}
	// Nothing demoted under the null policy.
	if res.FinalFootprint.Cold() != 0 {
		t.Fatal("null policy produced cold bytes")
	}
	if res.FinalFootprint.Hot2M != 8<<20 {
		t.Fatalf("hot 2M bytes = %d", res.FinalFootprint.Hot2M)
	}
	if res.Metrics.SlowAccesses != 0 {
		t.Fatal("slow accesses under null policy")
	}
}

func TestRunRespectsMaxOps(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	app := &uniformApp{name: "u", size: 2 << 20, huge: true, r: rng.New(2), compute: 100}
	res, err := Run(m, app, NullPolicy{}, RunConfig{DurationNs: 1e12, MaxOps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1000 {
		t.Fatalf("ops = %d, want 1000", res.Ops)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	app := &uniformApp{name: "u", size: 2 << 20, huge: true, r: rng.New(3)}
	if _, err := Run(m, app, NullPolicy{}, RunConfig{}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestSlowdownMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	// Identical app on two machines; on the second, half the footprint is
	// demoted and poisoned (the emulated slow memory). Throughput must
	// drop, and Slowdown must report it.
	mkRes := func(demote bool) *RunResult {
		cfg := DefaultConfig(64<<20, 64<<20)
		// Scale TLB reach down with the scaled footprint; otherwise every
		// transient post-fault translation stays resident and the
		// emulated slow latency never recurs (see DESIGN.md on scaling).
		cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 4
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		app := &uniformApp{name: "u", size: 16 << 20, huge: true, r: rng.New(7), compute: 200}
		if err := app.Init(m); err != nil {
			t.Fatal(err)
		}
		if demote {
			// Demote and poison the second half of the region.
			for v := app.region.Start + 8<<20; v < app.region.End; v += addr.Virt(addr.PageSize2M) {
				if _, err := m.Migrator().MoveHuge(v, mem.Slow, m.VPID(), mem.Demotion); err != nil {
					t.Fatal(err)
				}
				if err := m.Trap().Poison(v, m.VPID()); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Drive directly (app already initialized): reuse the loop via a
		// fresh wrapper app that shares the region.
		res := &RunResult{}
		start := m.Clock()
		for m.Clock()-start < 2e8 {
			v, w := app.Next()
			if _, err := m.Access(v, w); err != nil {
				t.Fatal(err)
			}
			m.AdvanceClock(app.ComputeNs())
			res.Ops++
		}
		res.DurationNs = m.Clock() - start
		res.Throughput = float64(res.Ops) * 1e9 / float64(res.DurationNs)
		return res
	}
	base := mkRes(false)
	slow := mkRes(true)
	sd := Slowdown(base, slow)
	if sd <= 0.05 {
		t.Fatalf("slowdown = %v, want substantial (half footprint emulated-slow)", sd)
	}
}

func TestDaemonAccounting(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	m.ChargeDaemon(12345)
	if m.DaemonNs() != 12345 {
		t.Fatal("daemon time lost")
	}
}

func TestFootprintHelpers(t *testing.T) {
	t.Parallel()
	f := Footprint{Hot2M: 100, Hot4K: 50, Cold2M: 30, Cold4K: 20}
	if f.Total() != 200 || f.Cold() != 50 {
		t.Fatal("totals wrong")
	}
	if f.ColdFraction() != 0.25 {
		t.Fatalf("ColdFraction = %v", f.ColdFraction())
	}
	if (Footprint{}).ColdFraction() != 0 {
		t.Fatal("empty ColdFraction should be 0")
	}
}

func TestRequestLatencyPercentiles(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	m := newMachine(t)
	app := &uniformApp{name: "u", size: 4 << 20, huge: true, r: rng.New(11), compute: 500}
	res, err := Run(m, app, NullPolicy{Interval: 1e8}, RunConfig{
		DurationNs:    5e8,
		WarmupNs:      1e8,
		OpsPerRequest: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestLatency == nil || res.RequestLatency.Count() == 0 {
		t.Fatal("no request latencies recorded")
	}
	// A 100-op request at ~500ns compute each must cost at least 50us.
	if p50 := res.RequestLatency.Quantile(0.5); p50 < 50_000 {
		t.Fatalf("p50 request latency = %d", p50)
	}
	if res.RequestLatency.Quantile(0.99) < res.RequestLatency.Quantile(0.5) {
		t.Fatal("p99 below p50")
	}
	// Disabled by default.
	m2 := newMachine(t)
	app2 := &uniformApp{name: "u", size: 4 << 20, huge: true, r: rng.New(12), compute: 500}
	res2, err := Run(m2, app2, NullPolicy{Interval: 1e8}, RunConfig{DurationNs: 2e8})
	if err != nil {
		t.Fatal(err)
	}
	if res2.RequestLatency != nil {
		t.Fatal("request latency recorded without opt-in")
	}
}

func TestVerifyCleanMachine(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	if _, err := m.AllocRegion(8<<20, true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocRegion(1<<20, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// Split + demote + promote churn must preserve the invariants.
	base := addr.Virt(1) << 40
	if err := m.PageTable().Split(base); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.PageTable().Collapse(base); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Demote(base); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Promote(base); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesDoubleMapping(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	r, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	e, _, _ := m.PageTable().Lookup(r.Start)
	// Map a second virtual page onto the same frame behind the
	// allocator's back.
	if err := m.PageTable().Map2M(addr.Virt2M(999999), e.Frame, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err == nil {
		t.Fatal("double mapping not detected")
	}
}

// errPolicy fails on its nth tick.
type errPolicy struct {
	NullPolicy
	failAt int
	ticks  int
}

func (p *errPolicy) IntervalNs() int64 { return 1e8 }
func (p *errPolicy) Tick(*Machine, int64) error {
	p.ticks++
	if p.ticks >= p.failAt {
		return errSentinel
	}
	return nil
}

var errSentinel = errorsNew("policy boom")

func errorsNew(s string) error { return &simTestErr{s} }

type simTestErr struct{ s string }

func (e *simTestErr) Error() string { return e.s }

func TestRunPropagatesPolicyError(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	app := &uniformApp{name: "u", size: 2 << 20, huge: true, r: rng.New(4), compute: 500}
	_, err := Run(m, app, &errPolicy{failAt: 2}, RunConfig{DurationNs: 1e9})
	if err == nil {
		t.Fatal("policy error swallowed")
	}
}

// errApp fails on Tick.
type errApp struct {
	uniformApp
}

func (a *errApp) Tick(*Machine, int64) error { return errSentinel }

func TestRunPropagatesAppTickError(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	app := &errApp{uniformApp{name: "u", size: 2 << 20, huge: true, r: rng.New(5), compute: 500}}
	_, err := Run(m, app, NullPolicy{Interval: 1e8}, RunConfig{DurationNs: 1e9})
	if err == nil {
		t.Fatal("app tick error swallowed")
	}
}

func TestMeanColdFraction(t *testing.T) {
	t.Parallel()
	r := &RunResult{
		Cold2M: statsSeries("c2", 0, 100, 100),
		Cold4K: statsSeries("c4", 0, 0, 0),
		Hot2M:  statsSeries("h2", 100, 100, 100),
		Hot4K:  statsSeries("h4", 0, 0, 0),
	}
	// Windows at t=0,1e9,2e9: fractions 0, 0.5, 0.5.
	if got := r.MeanColdFraction(0); got < 0.33 || got > 0.34 {
		t.Fatalf("mean = %v", got)
	}
	if got := r.MeanColdFraction(1e9); got != 0.5 {
		t.Fatalf("post-warmup mean = %v", got)
	}
}

func statsSeries(name string, vals ...float64) *stats.Series {
	s := stats.NewSeries(name)
	for i, v := range vals {
		s.Append(int64(i)*1e9, v)
	}
	return s
}
