package sim

import (
	"testing"

	"thermostat/internal/rng"
)

func TestRunMultiValidation(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	if _, err := RunMulti(m, nil, RunConfig{DurationNs: 1e9}); err == nil {
		t.Fatal("no tenants accepted")
	}
	app := &uniformApp{name: "u", size: 2 << 20, huge: true, r: rng.New(1), compute: 500}
	if _, err := RunMulti(m, []Tenant{{App: app, Policy: NullPolicy{}}}, RunConfig{}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestRunMultiSharesAndIsolation(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	a := &uniformApp{name: "a", size: 4 << 20, huge: true, r: rng.New(1), compute: 1000}
	b := &uniformApp{name: "b", size: 4 << 20, huge: true, r: rng.New(2), compute: 1000}
	res, err := RunMulti(m, []Tenant{
		{App: a, Policy: NullPolicy{Interval: 1e8}, Share: 3},
		{App: b, Policy: NullPolicy{Interval: 1e8}, Share: 1},
	}, RunConfig{DurationNs: 1e9, WindowNs: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(res.Tenants))
	}
	ra, rb := res.Tenants[0], res.Tenants[1]
	if ra.AppName != "a" || rb.AppName != "b" {
		t.Fatal("tenant order lost")
	}
	// 3:1 shares: tenant a does ~3x the ops.
	ratio := float64(ra.Ops) / float64(rb.Ops)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("ops ratio = %v, want ~3", ratio)
	}
	// Ticks fired for both apps.
	if a.ticks == 0 || b.ticks == 0 {
		t.Fatal("app ticks not delivered")
	}
	// Footprint series recorded.
	if ra.Cold.Len() == 0 || rb.Hot.Len() == 0 {
		t.Fatal("series not sampled")
	}
	// Machine invariants hold with both tenants mapped.
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiRespectsMaxOps(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	a := &uniformApp{name: "a", size: 2 << 20, huge: true, r: rng.New(3), compute: 100}
	res, err := RunMulti(m, []Tenant{{App: a, Policy: NullPolicy{Interval: 1e8}}},
		RunConfig{DurationNs: 1e12, MaxOps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants[0].Ops != 500 {
		t.Fatalf("ops = %d", res.Tenants[0].Ops)
	}
}

func TestStackBasics(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	if err := (&Stack{}).Attach(m); err == nil {
		t.Fatal("empty stack accepted")
	}
	a := &errPolicy{failAt: 1 << 30}
	st := &Stack{Policies: []Policy{NullPolicy{Interval: 3e8}, a}}
	if st.Name() != "all-dram+all-dram" {
		t.Fatalf("name = %q", st.Name())
	}
	// Interval is the minimum of members (errPolicy ticks at 1e8).
	if st.IntervalNs() != 1e8 {
		t.Fatalf("interval = %d", st.IntervalNs())
	}
	if err := st.Attach(m); err != nil {
		t.Fatal(err)
	}
	// Three stack ticks at 1e8 spacing: the 3e8-interval member fires once,
	// the 1e8 member three times.
	for i := int64(1); i <= 3; i++ {
		if err := st.Tick(m, i*1e8); err != nil {
			t.Fatal(err)
		}
	}
	if a.ticks != 3 {
		t.Fatalf("fast member ticked %d times, want 3", a.ticks)
	}
	// Footprint delegates to the first member.
	if _, err := m.AllocRegion(2<<20, true); err != nil {
		t.Fatal(err)
	}
	if st.Footprint(m).Hot2M != 2<<20 {
		t.Fatal("footprint not delegated")
	}
}
