package sim

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/telemetry"
)

// benchEpochMachine builds a machine with footprint bytes mapped as one
// contiguous huge-page region — the shape the epoch snapshot sweeps.
func benchEpochMachine(b *testing.B, footprint uint64, sparse bool) *Machine {
	b.Helper()
	cfg := DefaultConfig(footprint+64<<20, footprint+64<<20)
	cfg.Sparse = sparse
	cfg.Recorder = telemetry.Nop{}
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.AllocRegion(footprint, true); err != nil {
		b.Fatal(err)
	}
	return m
}

// benchColdPolicy gives the tracker a cold set, turning the confusion
// matrix on — the epoch boundary's most expensive optional feature.
type benchColdPolicy struct{ NullPolicy }

func (benchColdPolicy) IsCold(addr.Virt) bool { return false }

// BenchmarkEpochSnapshot measures one epoch-boundary close (the snapshot
// sweep in epochTracker.end) over a 64 GB mapped footprint:
//
//   - dense: one visit per mapped 2MB leaf — the pre-rewrite cost shape,
//     which every telemetry-enabled run used to pay at every boundary;
//   - sparse: the idle footprint is span summaries, so the sweep is
//     O(touched regions + spans);
//   - dense-confusion: page counts enabled and a policy exposing a cold
//     set, so the per-2MB-page map is materialized — the O(pages) path,
//     now only taken when the confusion matrix actually consumes it.
//
// Measured numbers are pinned in results/bench-telemetry-epoch.txt.
func BenchmarkEpochSnapshot(b *testing.B) {
	const footprint = 64 << 30
	cases := []struct {
		name      string
		sparse    bool
		confusion bool
	}{
		{"dense-64G", false, false},
		{"sparse-64G", true, false},
		{"dense-64G-confusion", false, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			m := benchEpochMachine(b, footprint, c.sparse)
			var pol Policy
			if c.confusion {
				m.EnablePageCounts()
				pol = benchColdPolicy{}
			}
			tr := newEpochTracker(m, pol)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.end(int64(i + 1))
			}
		})
	}
}
