package sim

import (
	"testing"

	"thermostat/internal/mem"
	"thermostat/internal/telemetry"
)

// TestMachineSharesMigratorMeter is the regression test for the meter wiring
// bug: the machine used to hand the migrator a throwaway mem.NewMeter(0), so
// Machine-level migration accounting never saw the migrator's traffic.
func TestMachineSharesMigratorMeter(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	if m.Meter() != m.Migrator().Meter() {
		t.Fatal("machine and migrator hold different meters")
	}

	r, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Demote(r.Start); err != nil {
		t.Fatal(err)
	}
	if got := m.Meter().Pages2M(mem.Demotion); got != 1 {
		t.Fatalf("machine meter saw %d demoted huge pages, want 1", got)
	}
	if got := m.Meter().TotalBytes(); got != 2<<20 {
		t.Fatalf("machine meter saw %d bytes, want %d", got, 2<<20)
	}
	if got := m.Metrics().MigrationBytes; got != 2<<20 {
		t.Fatalf("Metrics().MigrationBytes = %d, want %d", got, 2<<20)
	}
}

func TestMachineEmitsMigrationAndFaultEvents(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	col := telemetry.NewCollector()
	m.SetRecorder(col)

	r, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Demote(r.Start); err != nil {
		t.Fatal(err)
	}

	var mig *telemetry.Event
	for i := range col.Events() {
		if col.Events()[i].Kind == telemetry.KindMigrated {
			mig = &col.Events()[i]
		}
	}
	if mig == nil {
		t.Fatal("no KindMigrated event after Demote")
	}
	if mig.Page != r.Start || mig.FromTier != 0 || mig.ToTier != 1 || mig.Bytes != 2<<20 {
		t.Fatalf("migration event = %+v", *mig)
	}

	// Poison a page; the next TLB-missing access must emit a fault event.
	if err := m.Trap().Poison(r.Start, m.VPID()); err != nil {
		t.Fatal(err)
	}
	m.TLB().Invalidate(r.Start, m.VPID())
	if _, err := m.Access(r.Start, false); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range col.Events() {
		if e.Kind == telemetry.KindFaultInjected && e.Page == r.Start {
			found = true
		}
	}
	if !found {
		t.Fatal("no KindFaultInjected event after poisoned access")
	}

	// Detaching restores the zero-overhead path.
	m.SetRecorder(nil)
	if m.Recorder() != nil {
		t.Fatal("SetRecorder(nil) left a recorder attached")
	}
	n := col.EventCount()
	if _, err := m.Demote(r.Start + 0); err == nil {
		// Already in slow tier; a failed demote must not emit.
		_ = err
	}
	if col.EventCount() != n {
		t.Fatal("events recorded after detach")
	}
}

// TestRunWithoutRecorderUnchanged guards the disabled path: a fresh machine
// must not allocate telemetry state or enable page counting.
func TestRunWithoutRecorderUnchanged(t *testing.T) {
	t.Parallel()
	m := newMachine(t)
	if m.Recorder() != nil {
		t.Fatal("fresh machine has a recorder")
	}
	if m.PageCounts() != nil {
		t.Fatal("fresh machine counts pages")
	}
}
