package sim

import (
	"strings"
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/mem"
	"thermostat/internal/walk"
)

func newThreeTierMachine(t *testing.T, mode SlowMemMode) *Machine {
	t.Helper()
	cfg := DefaultTieredConfig(
		mem.DefaultDRAM(64<<20),
		mem.DefaultCXL(64<<20),
		mem.DefaultNVM(64<<20),
	)
	cfg.Mode = mode
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tierOf(t *testing.T, m *Machine, v addr.Virt) mem.TierID {
	t.Helper()
	tier, err := m.Migrator().TierOfPage(v.Base2M())
	if err != nil {
		t.Fatal(err)
	}
	return tier
}

// TestDemotePromoteChain walks a page down the full three-tier hierarchy one
// tier at a time and back up, checking tier position, poison monitoring
// state, and the bottom/top error cases at the ends of the chain.
func TestDemotePromoteChain(t *testing.T) {
	t.Parallel()
	m := newThreeTierMachine(t, EmulatedFault)
	r, err := m.AllocRegion(2<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	v := r.Start

	// Down: 0 -> 1 -> 2. The page is monitored (poisoned) as soon as it
	// leaves the top tier and stays monitored below it.
	for want := mem.TierID(1); want <= 2; want++ {
		if _, err := m.Demote(v); err != nil {
			t.Fatalf("demote to %v: %v", want, err)
		}
		if got := tierOf(t, m, v); got != want {
			t.Fatalf("after demote: tier %v, want %v", got, want)
		}
		if !m.Trap().IsPoisoned(v) {
			t.Fatalf("page in tier %v not poisoned", want)
		}
	}
	// Bottom of the hierarchy: no further demotion.
	if _, err := m.Demote(v); err == nil || !strings.Contains(err.Error(), "bottom") {
		t.Fatalf("demote past bottom: err = %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}

	// Up: 2 -> 1 (still monitored) -> 0 (monitoring stops).
	if _, err := m.Promote(v); err != nil {
		t.Fatal(err)
	}
	if got := tierOf(t, m, v); got != 1 {
		t.Fatalf("after promote: tier %v, want 1", got)
	}
	if !m.Trap().IsPoisoned(v) {
		t.Fatal("middle-tier page lost its poison on promotion")
	}
	if _, err := m.Promote(v); err != nil {
		t.Fatal(err)
	}
	if got := tierOf(t, m, v); got != mem.Fast {
		t.Fatalf("after second promote: tier %v, want %v", got, mem.Fast)
	}
	if m.Trap().IsPoisoned(v) {
		t.Fatal("top-tier page still poisoned")
	}
	// Top of the hierarchy: no further promotion.
	if _, err := m.Promote(v); err == nil || !strings.Contains(err.Error(), "top") {
		t.Fatalf("promote past top: err = %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestDeviceModePerTierLatency checks that in Device mode an LLC-missing
// read is charged the owning tier's device latency — each tier its own.
func TestDeviceModePerTierLatency(t *testing.T) {
	t.Parallel()
	m := newThreeTierMachine(t, Device)
	r, err := m.AllocRegion(6<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := walk.NewModel(m.Config().Walk)
	if err != nil {
		t.Fatal(err)
	}
	walkLat := wm.Latency(true, walk.Depth2M, walk.Depth2M)

	for tier := 0; tier < m.Memory().NumTiers(); tier++ {
		v := r.Start + addr.Virt(uint64(tier)*addr.PageSize2M)
		// Place the page directly (no poison) so the access path charges
		// pure walk + device time.
		if tier != 0 {
			if _, err := m.Migrator().MoveHuge(v, mem.TierID(tier), m.VPID(), mem.Demotion); err != nil {
				t.Fatal(err)
			}
		}
		lat, err := m.Access(v, false)
		if err != nil {
			t.Fatal(err)
		}
		want := walkLat + m.Memory().Tier(mem.TierID(tier)).Spec().ReadLatency
		if lat != want {
			t.Errorf("tier %d first-access latency = %d, want %d", tier, lat, want)
		}
	}

	met := m.Metrics()
	if len(met.TierAccesses) != 3 {
		t.Fatalf("TierAccesses = %v", met.TierAccesses)
	}
	for tier, n := range met.TierAccesses {
		if n != 1 {
			t.Errorf("TierAccesses[%d] = %d, want 1", tier, n)
		}
	}
	if met.SlowAccesses != 2 {
		t.Errorf("SlowAccesses = %d, want 2 (both non-top tiers)", met.SlowAccesses)
	}
}

// TestScanFootprintByTier places pages in all three tiers and checks the
// per-tier footprint breakdown agrees with the legacy hot/cold split.
func TestScanFootprintByTier(t *testing.T) {
	t.Parallel()
	m := newThreeTierMachine(t, EmulatedFault)
	r, err := m.AllocRegion(8<<20, true) // four huge pages
	if err != nil {
		t.Fatal(err)
	}
	// Leave page 0 in DRAM; demote page 1 once (CXL); demote page 2 twice
	// (NVM); split page 3 in DRAM to get a 4K component.
	p1 := r.Start + addr.Virt(1*addr.PageSize2M)
	p2 := r.Start + addr.Virt(2*addr.PageSize2M)
	p3 := r.Start + addr.Virt(3*addr.PageSize2M)
	if _, err := m.Demote(p1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Demote(p2); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.PageTable().Split(p3); err != nil {
		t.Fatal(err)
	}

	fp := ScanFootprint(m, []addr.Range{r})
	if len(fp.ByTier) != 3 {
		t.Fatalf("ByTier has %d entries, want 3", len(fp.ByTier))
	}
	if fp.ByTier[0].Bytes2M != 2<<20 || fp.ByTier[0].Bytes4K != 2<<20 {
		t.Errorf("tier 0 = %+v, want 2MB huge + 2MB split", fp.ByTier[0])
	}
	if fp.ByTier[1].Total() != 2<<20 || fp.ByTier[2].Total() != 2<<20 {
		t.Errorf("lower tiers = %+v %+v, want 2MB each", fp.ByTier[1], fp.ByTier[2])
	}
	// The legacy hot/cold view is the top tier vs. everything below it.
	if hot := fp.Hot2M + fp.Hot4K; hot != fp.ByTier[0].Total() {
		t.Errorf("hot = %d, ByTier[0] = %d", hot, fp.ByTier[0].Total())
	}
	if fp.Cold() != fp.ByTier[1].Total()+fp.ByTier[2].Total() {
		t.Errorf("Cold() = %d, lower tiers = %d", fp.Cold(), fp.ByTier[1].Total()+fp.ByTier[2].Total())
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}
