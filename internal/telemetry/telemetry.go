// Package telemetry is the simulator's structured instrumentation layer:
// typed events stamped in virtual time, per-epoch metric snapshots held in a
// bounded ring buffer, and exporters (Chrome trace_event JSON, JSONL, a
// human-readable epoch table).
//
// Design constraints (see DESIGN.md "Telemetry"):
//
//   - Zero overhead when disabled. Instrumentation sites hold a Recorder
//     interface that is nil by default and guard every emission with a single
//     nil check; no event struct is built on the disabled path.
//
//   - Virtual-time determinism. Events carry the simulator's virtual clock,
//     never wall time, and every simulation owns its own Recorder — so two
//     runs of the same seeded configuration produce byte-identical exports
//     regardless of how many runs execute concurrently around them.
//
//   - Bounded memory. Events are capped (drops are counted, deterministic)
//     and epoch snapshots live in a fixed-size ring that keeps the most
//     recent epochs.
package telemetry

import "thermostat/internal/addr"

// Kind discriminates event types.
type Kind uint8

// Event kinds. EpochStart/EpochEnd bracket one policy interval; the rest are
// decision-level events from the engine, migrator, trap and daemons.
const (
	// KindEpochStart opens epoch Event.Epoch at Event.TimeNs.
	KindEpochStart Kind = iota
	// KindEpochEnd closes the current epoch.
	KindEpochEnd
	// KindPageSampled marks a huge page entering the sampling pipeline
	// (split + poison). Cold reports whether it was already classified cold.
	KindPageSampled
	// KindClassified records one classification decision: Page's estimated
	// access rate (Rate) and the verdict (Cold).
	KindClassified
	// KindMigrated records one inter-tier page move: FromTier → ToTier,
	// Bytes moved.
	KindMigrated
	// KindTLBMiss is the per-epoch TLB-miss summary (Count = misses in the
	// closing epoch). Per-miss events would swamp the trace; the simulator
	// aggregates.
	KindTLBMiss
	// KindFaultInjected records one BadgerTrap poison fault serviced on the
	// access path.
	KindFaultInjected
	// KindHugePageSplit records a 2MB mapping split into 4KB children.
	KindHugePageSplit
	// KindHugePageCollapse records 512 children collapsed back to one 2MB
	// mapping (engine restore or khugepaged).
	KindHugePageCollapse
	// KindChaosFault records one injected chaos fault observed by the
	// policy: Site identifies the injection point, Count the attempt number
	// it struck, Permanent whether retrying is futile.
	KindChaosFault
	// KindTenantArrived records a tenant admitted to a fleet run (Tenant
	// names it, Bytes is its initial DRAM grant).
	KindTenantArrived
	// KindTenantDeparted records a tenant torn down mid-run (Bytes is the
	// memory it released).
	KindTenantDeparted
	// KindGrantChanged records the fleet arbiter revising one tenant's DRAM
	// grant (Bytes is the new grant).
	KindGrantChanged
	nKinds
)

// String names the kind (also the Chrome-trace event name).
func (k Kind) String() string {
	switch k {
	case KindEpochStart:
		return "epoch-start"
	case KindEpochEnd:
		return "epoch-end"
	case KindPageSampled:
		return "page-sampled"
	case KindClassified:
		return "classified"
	case KindMigrated:
		return "migrated"
	case KindTLBMiss:
		return "tlb-miss-summary"
	case KindFaultInjected:
		return "fault-injected"
	case KindHugePageSplit:
		return "huge-split"
	case KindHugePageCollapse:
		return "huge-collapse"
	case KindChaosFault:
		return "chaos-fault"
	case KindTenantArrived:
		return "tenant-arrived"
	case KindTenantDeparted:
		return "tenant-departed"
	case KindGrantChanged:
		return "grant-changed"
	default:
		return "unknown"
	}
}

// Event is one structured simulation event. Fields beyond Kind and TimeNs
// are kind-specific; unused fields stay zero.
type Event struct {
	Kind   Kind
	TimeNs int64 // virtual time
	Epoch  uint64
	Page   addr.Virt // subject page base (0 when not page-scoped)
	// FromTier and ToTier are migration endpoints (KindMigrated only).
	FromTier int8
	ToTier   int8
	// Bytes is a data volume (migration size).
	Bytes uint64
	// Count is a kind-specific tally (faults, misses).
	Count uint64
	// Rate is an access-rate estimate in events/sec (KindClassified).
	Rate float64
	// Cold is the classification verdict or prior state.
	Cold bool
	// Site is the chaos injection site (KindChaosFault only; numeric value
	// of chaos.Site).
	Site uint8
	// Permanent marks a permanent injected fault (KindChaosFault only).
	Permanent bool
	// Tenant names the fleet tenant the event concerns (tenant lifecycle
	// and grant events only; empty otherwise).
	Tenant string
}

// Snapshot is one epoch's metric snapshot, built from machine counter deltas
// at the closing policy tick.
type Snapshot struct {
	Epoch   uint64
	StartNs int64
	EndNs   int64

	// Accesses and SlowAccesses are access counts within the epoch;
	// TierAccesses breaks them down per tier (indexed by mem.TierID).
	Accesses     uint64
	SlowAccesses uint64
	TierAccesses []uint64
	// TierOccupancy is each tier's used bytes at epoch end.
	TierOccupancy []uint64

	TLBMisses    uint64
	LLCMisses    uint64
	PoisonFaults uint64
	// PoisonedPages is the number of leaf mappings armed for fault
	// interception at epoch end.
	PoisonedPages uint64

	// MigrationBytes, Demotions and Promotions are inter-tier traffic
	// within the epoch (page counts at 2MB grain).
	MigrationBytes uint64
	Demotions      uint64
	Promotions     uint64

	// ColdBytes/HotBytes are the policy's classification at epoch end.
	ColdBytes uint64
	HotBytes  uint64

	// Classification confusion vs. LLC ground truth, valid only when the
	// machine's page counting is enabled and the policy exposes its cold
	// set (ConfusionValid). A page is "truly accessed" if it took at least
	// one LLC miss within the epoch.
	ConfusionValid bool
	ColdIdle       uint64 // classified cold, truly idle   (correct)
	ColdAccessed   uint64 // classified cold, truly active (false cold: pays slow-mem)
	HotIdle        uint64 // classified hot, truly idle    (missed saving)
	HotAccessed    uint64 // classified hot, truly active  (correct)

	// Chaos/robustness counters within the epoch: injected faults, retried
	// migration attempts, rolled-back migration transactions, and pages
	// newly quarantined. All zero (and omitted from JSONL) when no chaos
	// injector is installed and no migration failed.
	FaultsInjected     uint64
	FaultsPermanent    uint64
	MigrationRetries   uint64
	MigrationRollbacks uint64
	PagesQuarantined   uint64
}

// Recorder receives events and snapshots. Implementations must not retain
// slices inside the snapshot beyond the call unless they copy them.
// Instrumentation sites keep a nil Recorder when telemetry is off and guard
// every emission with a nil check.
type Recorder interface {
	Event(Event)
	Snapshot(Snapshot)
}

// TenantSink is an optional Recorder extension: recorders that implement it
// additionally receive the fleet runner's per-tenant arbiter-period
// snapshots. The standard Collector does not implement it (tenant series
// live in the fleet result); the live observability plane does.
type TenantSink interface {
	TenantSnapshot(TenantSnapshot)
}

// Nop is the no-op Recorder: it discards everything. It exists for callers
// that want an always-valid Recorder instead of a nil check.
type Nop struct{}

// Event implements Recorder.
func (Nop) Event(Event) {}

// Snapshot implements Recorder.
func (Nop) Snapshot(Snapshot) {}

// Config bounds a Collector's memory.
type Config struct {
	// MaxEvents caps buffered events (default 1<<20); past the cap events
	// are counted as dropped, deterministically.
	MaxEvents int
	// MaxSnapshots sizes the epoch-snapshot ring (default 4096); the ring
	// keeps the most recent epochs.
	MaxSnapshots int
}

// Default collector bounds.
const (
	DefaultMaxEvents    = 1 << 20
	DefaultMaxSnapshots = 4096
)

// Collector is the standard Recorder: it buffers events, stamps them with
// the current epoch, and keeps the most recent epoch snapshots in a ring.
// It is not safe for concurrent use; every simulation owns its own.
type Collector struct {
	cfg     Config
	events  []Event
	dropped uint64

	snaps []Snapshot // ring storage
	head  int        // index of oldest snapshot
	n     int        // live snapshots
	seen  uint64     // total snapshots ever recorded (including evicted)

	epoch uint64 // current epoch stamp
}

// NewCollector returns a collector with default bounds.
func NewCollector() *Collector { return NewCollectorWith(Config{}) }

// NewCollectorWith returns a collector with the given bounds (zero fields
// select defaults).
func NewCollectorWith(cfg Config) *Collector {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	if cfg.MaxSnapshots <= 0 {
		cfg.MaxSnapshots = DefaultMaxSnapshots
	}
	return &Collector{cfg: cfg, snaps: make([]Snapshot, 0, cfg.MaxSnapshots)}
}

// Event implements Recorder. KindEpochStart advances the collector's epoch
// stamp; every other event is stamped with the current epoch.
func (c *Collector) Event(e Event) {
	if e.Kind == KindEpochStart {
		c.epoch = e.Epoch
	} else {
		e.Epoch = c.epoch
	}
	if len(c.events) >= c.cfg.MaxEvents {
		c.dropped++
		return
	}
	c.events = append(c.events, e)
}

// Snapshot implements Recorder: appends to the ring, evicting the oldest
// epoch when full.
func (c *Collector) Snapshot(s Snapshot) {
	// Deep-copy the per-tier slices; callers may reuse their buffers.
	s.TierAccesses = append([]uint64(nil), s.TierAccesses...)
	s.TierOccupancy = append([]uint64(nil), s.TierOccupancy...)
	c.seen++
	if c.n < c.cfg.MaxSnapshots {
		c.snaps = append(c.snaps, s)
		c.n++
		return
	}
	c.snaps[c.head] = s
	c.head = (c.head + 1) % c.cfg.MaxSnapshots
}

// Epoch returns the current epoch stamp.
func (c *Collector) Epoch() uint64 { return c.epoch }

// Events returns the buffered events in record order. The slice is the
// collector's own; callers must not mutate it.
func (c *Collector) Events() []Event { return c.events }

// Dropped returns the number of events discarded past the MaxEvents cap.
func (c *Collector) Dropped() uint64 { return c.dropped }

// Snapshots returns the retained epoch snapshots, oldest first.
func (c *Collector) Snapshots() []Snapshot {
	if c.head == 0 {
		return c.snaps[:c.n]
	}
	out := make([]Snapshot, 0, c.n)
	out = append(out, c.snaps[c.head:]...)
	out = append(out, c.snaps[:c.head]...)
	return out
}

// EventCount returns the number of buffered events.
func (c *Collector) EventCount() int { return len(c.events) }

// Bounds returns the collector's resolved memory bounds (defaults filled
// in). The observability plane mirrors the collector's deterministic drop
// and ring accounting from these bounds instead of reading the collector
// concurrently.
func (c *Collector) Bounds() Config { return c.cfg }

// SnapshotsSeen returns the total number of snapshots ever recorded,
// including those since evicted from the ring.
func (c *Collector) SnapshotsSeen() uint64 { return c.seen }

// RingHighWater returns the maximum number of snapshots the ring has held
// at once (its high-water mark, capped at MaxSnapshots).
func (c *Collector) RingHighWater() int { return c.n }
