// Fleet-run telemetry: per-tenant epoch snapshots (the slowdown-vs-SLO
// series the arbiter steers by) and per-tenant trace extraction from a
// shared collector.
package telemetry

import (
	"bufio"
	"fmt"
	"io"

	"thermostat/internal/addr"
)

// TenantSnapshot is one tenant's state at one arbiter period boundary —
// the fleet analogue of Snapshot, recorded once per tenant per period.
type TenantSnapshot struct {
	// Epoch is the arbiter period number (1-based), EndNs its closing
	// virtual time.
	Epoch  uint64
	EndNs  int64
	Tenant string

	// GrantBytes is the DRAM grant in force during the period; UsageBytes
	// the tenant's top-tier residency at period end (its cgroup usage);
	// FootprintBytes its total mapped bytes across all tiers.
	GrantBytes     uint64
	UsageBytes     uint64
	FootprintBytes uint64

	// SlowdownPct is the tenant engine's own slowdown estimate (measured
	// cold-access rate × slow-memory latency) and SLOPct its objective.
	SlowdownPct float64
	SLOPct      float64

	// Ops is the tenant's cumulative access count at period end.
	Ops uint64
	// ColdPages and QuarantinedPages mirror the tenant engine's state.
	ColdPages        int
	QuarantinedPages int
}

// WriteTenantCSV emits tenant snapshots as CSV, one row per tenant per
// period, in the order given. Deterministic: byte-identical for identical
// series.
func WriteTenantCSV(w io.Writer, snaps []TenantSnapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw,
		"period,end_s,tenant,grant_mb,usage_mb,footprint_mb,slowdown_pct,slo_pct,ops,cold_pages,quarantined"); err != nil {
		return err
	}
	for _, s := range snaps {
		if _, err := fmt.Fprintf(bw, "%d,%.3f,%s,%.1f,%.1f,%.1f,%.3f,%.3f,%d,%d,%d\n",
			s.Epoch, float64(s.EndNs)/1e9, s.Tenant,
			float64(s.GrantBytes)/(1<<20), float64(s.UsageBytes)/(1<<20),
			float64(s.FootprintBytes)/(1<<20),
			s.SlowdownPct, s.SLOPct, s.Ops, s.ColdPages, s.QuarantinedPages); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Filter returns a new collector holding only the events keep admits (in
// original order, same epoch stamps) plus every snapshot. The receiver is
// unchanged. Used to extract one tenant's trace from a shared fleet
// collector: keep page-scoped events inside the tenant's ranges and the
// non-page-scoped skeleton (epoch brackets, summaries).
func (c *Collector) Filter(keep func(Event) bool) *Collector {
	out := NewCollectorWith(c.cfg)
	for _, e := range c.events {
		if keep(e) {
			out.events = append(out.events, e)
		}
	}
	for _, s := range c.Snapshots() {
		out.Snapshot(s)
	}
	out.epoch = c.epoch
	out.dropped = c.dropped
	return out
}

// TenantEventFilter is the standard per-tenant trace predicate: admit
// events explicitly tagged with the tenant's name, page-scoped events whose
// page lies in one of the tenant's ranges, and the non-page-scoped run
// skeleton (epoch brackets, per-epoch summaries).
func TenantEventFilter(name string, ranges []addr.Range) func(Event) bool {
	return func(e Event) bool {
		if e.Tenant != "" {
			return e.Tenant == name
		}
		if e.Page == 0 {
			return true
		}
		for _, r := range ranges {
			if r.Contains(e.Page) {
				return true
			}
		}
		return false
	}
}
