package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermostat/internal/addr"
)

var update = flag.Bool("update", false, "rewrite golden export files")

func TestCollectorEpochStamping(t *testing.T) {
	c := NewCollector()
	c.Event(Event{Kind: KindFaultInjected, TimeNs: 5}) // before any epoch
	c.Event(Event{Kind: KindEpochStart, TimeNs: 10, Epoch: 1})
	c.Event(Event{Kind: KindMigrated, TimeNs: 20, Bytes: 4096})
	c.Event(Event{Kind: KindEpochEnd, TimeNs: 30})
	c.Event(Event{Kind: KindEpochStart, TimeNs: 30, Epoch: 2})
	c.Event(Event{Kind: KindClassified, TimeNs: 40})

	evs := c.Events()
	wantEpochs := []uint64{0, 1, 1, 1, 2, 2}
	if len(evs) != len(wantEpochs) {
		t.Fatalf("got %d events, want %d", len(evs), len(wantEpochs))
	}
	for i, e := range evs {
		if e.Epoch != wantEpochs[i] {
			t.Errorf("event %d (%v): epoch = %d, want %d", i, e.Kind, e.Epoch, wantEpochs[i])
		}
	}
	if c.Epoch() != 2 {
		t.Fatalf("Epoch = %d, want 2", c.Epoch())
	}
}

func TestCollectorEventCap(t *testing.T) {
	c := NewCollectorWith(Config{MaxEvents: 3})
	for i := 0; i < 10; i++ {
		c.Event(Event{Kind: KindFaultInjected, TimeNs: int64(i)})
	}
	if c.EventCount() != 3 {
		t.Fatalf("EventCount = %d, want 3", c.EventCount())
	}
	if c.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", c.Dropped())
	}
	// The retained events are the first three, in record order.
	for i, e := range c.Events() {
		if e.TimeNs != int64(i) {
			t.Fatalf("event %d has TimeNs %d", i, e.TimeNs)
		}
	}
}

func TestCollectorSnapshotRing(t *testing.T) {
	c := NewCollectorWith(Config{MaxSnapshots: 4})
	for i := uint64(1); i <= 10; i++ {
		c.Snapshot(Snapshot{Epoch: i})
	}
	got := c.Snapshots()
	if len(got) != 4 {
		t.Fatalf("retained %d snapshots, want 4", len(got))
	}
	// The ring keeps the most recent epochs, oldest first.
	for i, s := range got {
		if want := uint64(7 + i); s.Epoch != want {
			t.Fatalf("snapshot %d: epoch %d, want %d", i, s.Epoch, want)
		}
	}
}

func TestCollectorRingWrapAccounting(t *testing.T) {
	const cap = 5
	c := NewCollectorWith(Config{MaxEvents: 3, MaxSnapshots: cap})
	if got := c.Bounds(); got.MaxEvents != 3 || got.MaxSnapshots != cap {
		t.Fatalf("Bounds = %+v, want {3 %d}", got, cap)
	}

	// Fill well past the ring capacity, checking accounting at each step.
	for i := uint64(1); i <= 3*cap; i++ {
		c.Snapshot(Snapshot{Epoch: i})
		if c.SnapshotsSeen() != i {
			t.Fatalf("after %d snapshots: SnapshotsSeen = %d", i, c.SnapshotsSeen())
		}
		wantHW := int(i)
		if wantHW > cap {
			wantHW = cap
		}
		if c.RingHighWater() != wantHW {
			t.Fatalf("after %d snapshots: RingHighWater = %d, want %d", i, c.RingHighWater(), wantHW)
		}
		// Oldest-first ordering must hold across every wrap position.
		snaps := c.Snapshots()
		first := i - uint64(len(snaps)) + 1
		for j, s := range snaps {
			if want := first + uint64(j); s.Epoch != want {
				t.Fatalf("after %d snapshots: snaps[%d].Epoch = %d, want %d", i, j, s.Epoch, want)
			}
		}
	}

	// Snapshot eviction never touches the event drop counter.
	if c.Dropped() != 0 {
		t.Fatalf("Dropped = %d after ring wrap, want 0", c.Dropped())
	}
	for i := 0; i < 10; i++ {
		c.Event(Event{Kind: KindFaultInjected, TimeNs: int64(i)})
	}
	if c.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", c.Dropped())
	}
	// And further wraps leave the drop count stable.
	c.Snapshot(Snapshot{Epoch: 3*cap + 1})
	if c.Dropped() != 7 || c.SnapshotsSeen() != 3*cap+1 {
		t.Fatalf("Dropped = %d SnapshotsSeen = %d after extra wrap", c.Dropped(), c.SnapshotsSeen())
	}
}

func TestCollectorSnapshotCopiesSlices(t *testing.T) {
	c := NewCollector()
	occ := []uint64{100, 200}
	c.Snapshot(Snapshot{Epoch: 1, TierOccupancy: occ, TierAccesses: occ})
	occ[0] = 999 // caller reuses its buffer
	s := c.Snapshots()[0]
	if s.TierOccupancy[0] != 100 || s.TierAccesses[0] != 100 {
		t.Fatal("Snapshot retained the caller's slice instead of copying")
	}
}

func TestNopRecorder(t *testing.T) {
	var r Recorder = Nop{}
	r.Event(Event{Kind: KindMigrated})
	r.Snapshot(Snapshot{})
}

// syntheticCollector builds a small, fully deterministic collector whose
// exports are pinned as golden files.
func syntheticCollector() *Collector {
	c := NewCollectorWith(Config{MaxEvents: 8, MaxSnapshots: 8})
	c.Event(Event{Kind: KindEpochStart, TimeNs: 0, Epoch: 1})
	c.Event(Event{Kind: KindHugePageSplit, TimeNs: 100_000, Page: addr.Virt(2 << 20)})
	c.Event(Event{Kind: KindPageSampled, TimeNs: 100_000, Page: addr.Virt(2 << 20), Cold: false})
	c.Event(Event{Kind: KindFaultInjected, TimeNs: 250_000, Page: addr.Virt(2<<20 + 4096), Count: 1})
	c.Event(Event{Kind: KindClassified, TimeNs: 900_000, Page: addr.Virt(2 << 20), Rate: 12.5, Cold: true})
	c.Event(Event{Kind: KindMigrated, TimeNs: 950_000, Page: addr.Virt(2 << 20), FromTier: 0, ToTier: 1, Bytes: 2 << 20})
	c.Event(Event{Kind: KindTLBMiss, TimeNs: 1_000_000, Count: 4242})
	c.Event(Event{Kind: KindEpochEnd, TimeNs: 1_000_000})
	// Past the cap: dropped, counted.
	c.Event(Event{Kind: KindFaultInjected, TimeNs: 1_000_001})
	c.Event(Event{Kind: KindFaultInjected, TimeNs: 1_000_002})
	c.Snapshot(Snapshot{
		Epoch: 1, StartNs: 0, EndNs: 1_000_000,
		Accesses: 50_000, SlowAccesses: 120,
		TierAccesses: []uint64{49_880, 120}, TierOccupancy: []uint64{64 << 20, 2 << 20},
		TLBMisses: 4242, LLCMisses: 17_000, PoisonFaults: 1, PoisonedPages: 50,
		MigrationBytes: 2 << 20, Demotions: 1,
		ColdBytes: 2 << 20, HotBytes: 62 << 20,
		ConfusionValid: true, ColdIdle: 1, HotAccessed: 30, HotIdle: 2,
	})
	return c
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run with -update after verifying):\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticCollector().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	// Structural sanity independent of the golden bytes.
	s := string(out)
	if !strings.HasPrefix(s, "[\n") || !strings.HasSuffix(s, "\n]\n") {
		t.Fatal("not a JSON array")
	}
	for _, want := range []string{`"ph":"B"`, `"ph":"E"`, `"ph":"i"`, `"ph":"C"`,
		`"name":"epoch 1"`, `"from_tier":0`, `"to_tier":1`, `"dropped_events"`} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	checkGolden(t, "synthetic.trace.json", out)
}

func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticCollector().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "synthetic.metrics.jsonl", buf.Bytes())
}

func TestEpochTable(t *testing.T) {
	table := syntheticCollector().EpochTable()
	for _, want := range []string{"epoch", "cold_mb", "dropped past the 8-event cap"} {
		if !strings.Contains(table, want) {
			t.Errorf("epoch table missing %q:\n%s", want, table)
		}
	}
	if lines := strings.Count(table, "\n"); lines != 3 { // header + 1 row + drop note
		t.Errorf("epoch table has %d lines, want 3:\n%s", lines, table)
	}
}

func TestExportsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := syntheticCollector().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := syntheticCollector().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical collectors exported different traces")
	}
}
