package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"thermostat/internal/chaos"
)

// Chrome trace_event lane (tid) assignment: one lane per event family so
// Perfetto renders epochs, sampling, placement and faults as parallel tracks.
const (
	laneEpochs    = 0
	laneSampling  = 1
	lanePlacement = 2
	laneFaults    = 3
	laneDaemons   = 4
)

func laneOf(k Kind) int {
	switch k {
	case KindEpochStart, KindEpochEnd, KindTLBMiss:
		return laneEpochs
	case KindPageSampled, KindClassified:
		return laneSampling
	case KindMigrated:
		return lanePlacement
	case KindFaultInjected, KindChaosFault:
		return laneFaults
	default:
		// huge-split / huge-collapse, and the fleet's tenant lifecycle and
		// grant revisions — all daemon work. The fleet kinds deliberately
		// share this existing lane: a new lane would add a thread_name
		// metadata record to every trace and break byte-compatibility with
		// pre-fleet goldens.
		return laneDaemons
	}
}

var laneNames = map[int]string{
	laneEpochs:    "epochs",
	laneSampling:  "sampling",
	lanePlacement: "placement",
	laneFaults:    "faults",
	laneDaemons:   "daemons",
}

// chromeEvent is one trace_event object. Field order is fixed by the struct,
// and encoding/json sorts map keys, so output is deterministic.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func usOf(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace writes the collector's contents in Chrome trace_event
// JSON array format, loadable in chrome://tracing or https://ui.perfetto.dev.
// Epochs render as duration slices, decision events as instants on
// per-family lanes, and snapshot metrics as counter tracks. Output is
// deterministic: byte-identical for identical collector contents.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	// Metadata: name the process and lanes.
	if err := emit(chromeEvent{Name: "process_name", Phase: "M", Pid: 1,
		Args: map[string]any{"name": "thermostat-sim"}}); err != nil {
		return err
	}
	for tid := laneEpochs; tid <= laneDaemons; tid++ {
		if err := emit(chromeEvent{Name: "thread_name", Phase: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": laneNames[tid]}}); err != nil {
			return err
		}
	}

	// Events. EpochStart/End pairs become B/E slices on the epoch lane.
	for _, e := range c.events {
		ev := chromeEvent{Name: e.Kind.String(), TsUs: usOf(e.TimeNs), Pid: 1, Tid: laneOf(e.Kind)}
		switch e.Kind {
		case KindEpochStart:
			ev.Name = fmt.Sprintf("epoch %d", e.Epoch)
			ev.Phase = "B"
		case KindEpochEnd:
			ev.Name = fmt.Sprintf("epoch %d", e.Epoch)
			ev.Phase = "E"
		default:
			ev.Phase = "i"
			ev.Scope = "t"
			args := map[string]any{"epoch": e.Epoch}
			if e.Page != 0 {
				args["page"] = e.Page.String()
			}
			if e.Kind == KindMigrated {
				args["from_tier"] = e.FromTier
				args["to_tier"] = e.ToTier
			}
			if e.Bytes != 0 {
				args["bytes"] = e.Bytes
			}
			if e.Count != 0 {
				args["count"] = e.Count
			}
			if e.Kind == KindClassified {
				args["rate"] = e.Rate
				args["cold"] = e.Cold
			}
			if e.Kind == KindPageSampled {
				args["was_cold"] = e.Cold
			}
			if e.Kind == KindChaosFault {
				args["site"] = chaos.Site(e.Site).String()
				args["permanent"] = e.Permanent
			}
			if e.Tenant != "" {
				args["tenant"] = e.Tenant
			}
			ev.Args = args
		}
		if err := emit(ev); err != nil {
			return err
		}
	}

	// Snapshots become counter tracks.
	for _, s := range c.Snapshots() {
		ts := usOf(s.EndNs)
		occ := map[string]any{}
		for i, b := range s.TierOccupancy {
			occ[fmt.Sprintf("tier%d_bytes", i)] = b
		}
		if err := emit(chromeEvent{Name: "occupancy", Phase: "C", TsUs: ts, Pid: 1, Args: occ}); err != nil {
			return err
		}
		acc := map[string]any{"slow": s.SlowAccesses, "total": s.Accesses}
		if err := emit(chromeEvent{Name: "accesses", Phase: "C", TsUs: ts, Pid: 1, Args: acc}); err != nil {
			return err
		}
		mig := map[string]any{
			"bytes": s.MigrationBytes, "demotions": s.Demotions, "promotions": s.Promotions,
		}
		if err := emit(chromeEvent{Name: "migration", Phase: "C", TsUs: ts, Pid: 1, Args: mig}); err != nil {
			return err
		}
		// The chaos track appears only when the epoch saw fault activity, so
		// traces from uninjected runs stay byte-identical.
		if s.FaultsInjected != 0 || s.MigrationRetries != 0 || s.MigrationRollbacks != 0 || s.PagesQuarantined != 0 {
			ch := map[string]any{
				"injected": s.FaultsInjected, "retried": s.MigrationRetries,
				"rolled_back": s.MigrationRollbacks, "quarantined": s.PagesQuarantined,
			}
			if err := emit(chromeEvent{Name: "chaos", Phase: "C", TsUs: ts, Pid: 1, Args: ch}); err != nil {
				return err
			}
		}
	}

	if c.dropped > 0 {
		if err := emit(chromeEvent{Name: "dropped_events", Phase: "M", Pid: 1,
			Args: map[string]any{"count": c.dropped}}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// jsonlSnapshot fixes the JSONL field order.
type jsonlSnapshot struct {
	Epoch          uint64   `json:"epoch"`
	StartNs        int64    `json:"start_ns"`
	EndNs          int64    `json:"end_ns"`
	Accesses       uint64   `json:"accesses"`
	SlowAccesses   uint64   `json:"slow_accesses"`
	TierAccesses   []uint64 `json:"tier_accesses,omitempty"`
	TierOccupancy  []uint64 `json:"tier_occupancy,omitempty"`
	TLBMisses      uint64   `json:"tlb_misses"`
	LLCMisses      uint64   `json:"llc_misses"`
	PoisonFaults   uint64   `json:"poison_faults"`
	PoisonedPages  uint64   `json:"poisoned_pages"`
	MigrationBytes uint64   `json:"migration_bytes"`
	Demotions      uint64   `json:"demotions"`
	Promotions     uint64   `json:"promotions"`
	ColdBytes      uint64   `json:"cold_bytes"`
	HotBytes       uint64   `json:"hot_bytes"`
	ConfusionValid bool     `json:"confusion_valid,omitempty"`
	ColdIdle       uint64   `json:"cold_idle,omitempty"`
	ColdAccessed   uint64   `json:"cold_accessed,omitempty"`
	HotIdle        uint64   `json:"hot_idle,omitempty"`
	HotAccessed    uint64   `json:"hot_accessed,omitempty"`
	// Chaos counters are omitted when zero so uninjected runs keep their
	// pre-chaos byte layout.
	FaultsInjected     uint64 `json:"chaos_injected,omitempty"`
	FaultsPermanent    uint64 `json:"chaos_permanent,omitempty"`
	MigrationRetries   uint64 `json:"migration_retries,omitempty"`
	MigrationRollbacks uint64 `json:"migration_rollbacks,omitempty"`
	PagesQuarantined   uint64 `json:"pages_quarantined,omitempty"`
}

// WriteJSONL writes one JSON object per retained epoch snapshot, oldest
// first — the metrics sink for offline analysis (jq, pandas).
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range c.Snapshots() {
		if err := enc.Encode(jsonlSnapshot{
			Epoch: s.Epoch, StartNs: s.StartNs, EndNs: s.EndNs,
			Accesses: s.Accesses, SlowAccesses: s.SlowAccesses,
			TierAccesses: s.TierAccesses, TierOccupancy: s.TierOccupancy,
			TLBMisses: s.TLBMisses, LLCMisses: s.LLCMisses,
			PoisonFaults: s.PoisonFaults, PoisonedPages: s.PoisonedPages,
			MigrationBytes: s.MigrationBytes, Demotions: s.Demotions,
			Promotions: s.Promotions, ColdBytes: s.ColdBytes, HotBytes: s.HotBytes,
			ConfusionValid: s.ConfusionValid, ColdIdle: s.ColdIdle,
			ColdAccessed: s.ColdAccessed, HotIdle: s.HotIdle, HotAccessed: s.HotAccessed,
			FaultsInjected: s.FaultsInjected, FaultsPermanent: s.FaultsPermanent,
			MigrationRetries: s.MigrationRetries, MigrationRollbacks: s.MigrationRollbacks,
			PagesQuarantined: s.PagesQuarantined,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EpochTable renders the retained snapshots as a fixed-width human-readable
// table (the quickstart and CLI -epochs output).
func (c *Collector) EpochTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %9s %12s %8s %10s %9s %7s %7s %9s %9s %6s %6s %6s %6s\n",
		"epoch", "end_s", "accesses", "slow%", "tlb_miss", "faults", "demote", "promote", "mig_mb", "cold_mb",
		"inject", "retry", "rollbk", "quar")
	for _, s := range c.Snapshots() {
		slowPct := 0.0
		if s.Accesses > 0 {
			slowPct = 100 * float64(s.SlowAccesses) / float64(s.Accesses)
		}
		fmt.Fprintf(&b, "%5d %9.2f %12d %8.2f %10d %9d %7d %7d %9.2f %9.1f %6d %6d %6d %6d\n",
			s.Epoch, float64(s.EndNs)/1e9, s.Accesses, slowPct,
			s.TLBMisses, s.PoisonFaults, s.Demotions, s.Promotions,
			float64(s.MigrationBytes)/(1<<20), float64(s.ColdBytes)/(1<<20),
			s.FaultsInjected, s.MigrationRetries, s.MigrationRollbacks, s.PagesQuarantined)
	}
	if c.dropped > 0 {
		fmt.Fprintf(&b, "(%d events dropped past the %d-event cap)\n", c.dropped, c.cfg.MaxEvents)
	}
	return b.String()
}
