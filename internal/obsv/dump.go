package obsv

import (
	"bufio"
	"fmt"
	"io"

	"thermostat/internal/addr"
)

// WriteAccessedDump renders the engine classification census as plain
// text, in the spirit of memtierd's `policy -dump accessed` query: one
// summary table per engine (pages and megabytes per class) followed by up
// to maxPages per-page rows (base address, estimated rate, class).
// maxPages <= 0 selects the default of 256.
func (p *Publisher) WriteAccessedDump(w io.Writer, maxPages int) error {
	if maxPages <= 0 {
		maxPages = 256
	}
	bw := bufio.NewWriter(w)
	engines := p.Engines()
	if len(engines) == 0 {
		fmt.Fprintln(bw, "no engine census published yet (runs attach engines after their first tick)")
		return bw.Flush()
	}
	const pageMB = float64(addr.PageSize2M) / (1 << 20)
	for _, e := range engines {
		c := e.Census
		fmt.Fprintf(bw, "# run %s engine %s periods %d time %.3fs slowdown %.3f%% inflight %d\n",
			e.Label, c.Name, c.Periods, float64(c.TimeNs)/1e9, c.SlowdownPct, c.Inflight)
		var hot, cold, quar int
		for _, pg := range c.Pages {
			switch {
			case pg.Quarantined:
				quar++
			case pg.Cold:
				cold++
			default:
				hot++
			}
		}
		fmt.Fprintln(bw, "table: classification census")
		fmt.Fprintf(bw, "%12s %8s %10s\n", "class", "pages", "mem[M]")
		for _, row := range []struct {
			class string
			n     int
		}{{"hot", hot}, {"cold", cold}, {"quarantined", quar}} {
			fmt.Fprintf(bw, "%12s %8d %10.1f\n", row.class, row.n, float64(row.n)*pageMB)
		}
		fmt.Fprintln(bw, "table: pages")
		fmt.Fprintf(bw, "%14s %14s %12s\n", "base", "rate[acc/s]", "class")
		shown := 0
		for _, pg := range c.Pages {
			if shown >= maxPages {
				fmt.Fprintf(bw, "... %d more pages (raise ?n=)\n", len(c.Pages)-shown)
				break
			}
			class := "hot"
			switch {
			case pg.Quarantined:
				class = "quarantined"
			case pg.Cold:
				class = "cold"
			}
			fmt.Fprintf(bw, "%#14x %14.3f %12s\n", uint64(pg.Base), pg.RatePerSec, class)
			shown++
		}
	}
	return bw.Flush()
}
