package obsv

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// Server exposes a Publisher over HTTP. It replaces the old sim-only debug
// server: the same mux carries the observability endpoints plus pprof and
// expvar, so one -serve (or -pprof) address inspects everything.
//
// Endpoints:
//
//	/metrics          Prometheus text format (see metrics.go)
//	/healthz          liveness: "ok\n"
//	/status           JSON run status (phase, per-run epoch/virtual time)
//	/tenants          JSON per-tenant fleet state
//	/dump?what=accessed[&n=N]  plain-text classification census
//	/debug/pprof/...  runtime profiles
//	/debug/vars       expvar
type Server struct {
	pub *Publisher
	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener

	mu     sync.Mutex
	reload func() ([]string, error)
}

// NewServer builds a server for pub (which must be non-nil).
func NewServer(pub *Publisher) *Server {
	s := &Server{pub: pub, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/tenants", s.handleTenants)
	s.mux.HandleFunc("/dump", s.handleDump)
	s.mux.HandleFunc("/reload", s.handleReload)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.Handle("/debug/vars", expvar.Handler())
	return s
}

// Handler returns the server's mux (for tests via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// SetReloadHandler installs the function POST /reload invokes (the daemon
// wires it to a config re-read). Without one, /reload answers 501. The
// handler returns the queued change list, or an error rendered as 409.
func (s *Server) SetReloadHandler(fn func() ([]string, error)) {
	s.mu.Lock()
	s.reload = fn
	s.mu.Unlock()
}

// Start listens on addr and serves in a background goroutine, returning
// the bound address (useful with ":0"). The server carries read and idle
// timeouts so a stalled client (slowloris) cannot pin a connection
// forever; there is deliberately no write timeout, which would cut off
// streaming pprof profiles.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return ln.Addr().String(), nil
}

// Close stops the listener immediately, dropping in-flight requests
// (idempotent; nil-safe before Start). Prefer Shutdown on orderly exits.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown drains the server gracefully: the listener closes at once, but
// in-flight requests (a /metrics scrape, a /dump) finish within ctx's
// deadline before connections are torn down. Idempotent; nil-safe before
// Start. Both CLIs and the daemon call this on SIGINT/SIGTERM.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// Serve is the one-call helper the cmds use: build a server on pub and
// start it on addr.
func Serve(addr string, pub *Publisher) (*Server, string, error) {
	s := NewServer(pub)
	bound, err := s.Start(addr)
	if err != nil {
		return nil, "", err
	}
	return s, bound, nil
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST /reload", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	fn := s.reload
	s.mu.Unlock()
	if fn == nil {
		http.Error(w, "no reload handler (batch run)", http.StatusNotImplemented)
		return
	}
	changes, err := fn()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if changes == nil {
		changes = []string{}
	}
	writeJSON(w, map[string]any{"queued": changes})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.pub.WriteMetrics(w); err != nil {
		// Headers are gone; nothing useful to do beyond dropping the conn.
		return
	}
}

// statusRun is one stream's /status entry.
type statusRun struct {
	Run          string  `json:"run"`
	Epoch        uint64  `json:"epoch"`
	VirtualTimeS float64 `json:"virtual_time_s"`
	Events       uint64  `json:"events"`
	Dropped      uint64  `json:"dropped"`
	Snapshots    uint64  `json:"snapshots"`
}

// statusBody is the /status payload.
type statusBody struct {
	Phase        string      `json:"phase"`
	Health       string      `json:"health,omitempty"`
	Info         Info        `json:"info"`
	VirtualTimeS float64     `json:"virtual_time_s"`
	Runs         []statusRun `json:"runs"`
	Tenants      int         `json:"tenants"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	st := s.pub.State()
	body := statusBody{Phase: st.Phase, Health: st.Health, Info: st.Info, Runs: []statusRun{}, Tenants: len(st.Tenants)}
	for _, r := range st.Streams {
		vt := float64(r.TimeNs) / 1e9
		if vt > body.VirtualTimeS {
			body.VirtualTimeS = vt
		}
		body.Runs = append(body.Runs, statusRun{
			Run:          r.Label,
			Epoch:        r.Epoch,
			VirtualTimeS: vt,
			Events:       r.Events,
			Dropped:      r.Dropped,
			Snapshots:    r.SnapshotsSeen,
		})
	}
	writeJSON(w, body)
}

// tenantBody is one tenant's /tenants entry.
type tenantBody struct {
	Tenant           string  `json:"tenant"`
	Resident         bool    `json:"resident"`
	ArrivedS         float64 `json:"arrived_s"`
	DepartedS        float64 `json:"departed_s"`
	GrantBytes       uint64  `json:"grant_bytes"`
	UsageBytes       uint64  `json:"usage_bytes"`
	FootprintBytes   uint64  `json:"footprint_bytes"`
	SlowdownPct      float64 `json:"slowdown_pct"`
	SLOPct           float64 `json:"slo_pct"`
	SLOSlackPct      float64 `json:"slo_slack_pct"`
	Ops              uint64  `json:"ops"`
	ColdPages        int     `json:"cold_pages"`
	QuarantinedPages int     `json:"quarantined_pages"`
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	st := s.pub.State()
	out := []tenantBody{}
	for _, t := range st.Tenants {
		out = append(out, tenantBody{
			Tenant:           t.Name,
			Resident:         t.Resident,
			ArrivedS:         float64(t.ArrivedNs) / 1e9,
			DepartedS:        float64(t.DepartedNs) / 1e9,
			GrantBytes:       t.GrantBytes,
			UsageBytes:       t.Last.UsageBytes,
			FootprintBytes:   t.Last.FootprintBytes,
			SlowdownPct:      t.Last.SlowdownPct,
			SLOPct:           t.Last.SLOPct,
			SLOSlackPct:      t.Last.SLOPct - t.Last.SlowdownPct,
			Ops:              t.Last.Ops,
			ColdPages:        t.Last.ColdPages,
			QuarantinedPages: t.Last.QuarantinedPages,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleDump(w http.ResponseWriter, r *http.Request) {
	what := r.URL.Query().Get("what")
	if what == "" {
		what = "accessed"
	}
	if what != "accessed" {
		http.Error(w, fmt.Sprintf("unknown dump %q (supported: accessed)", what), http.StatusBadRequest)
		return
	}
	maxPages := 0
	if n := r.URL.Query().Get("n"); n != "" {
		v, err := strconv.Atoi(n)
		if err != nil || v <= 0 {
			http.Error(w, fmt.Sprintf("bad n %q", n), http.StatusBadRequest)
			return
		}
		maxPages = v
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.pub.WriteAccessedDump(w, maxPages) //nolint:errcheck // best-effort over HTTP
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort over HTTP
}
