package obsv

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition format (version 0.0.4), hand-rolled — the
// repo's no-new-dependencies rule rules out client_golang, and the subset
// we need (HELP/TYPE headers, counter and gauge samples with escaped
// labels) is small.

// MetricType is the TYPE of a metric family.
type MetricType string

// Supported metric types.
const (
	TypeCounter MetricType = "counter"
	TypeGauge   MetricType = "gauge"
)

// Label is one name="value" pair.
type Label struct {
	Name  string
	Value string
}

// Sample is one sample line within a family.
type Sample struct {
	Labels []Label
	Value  float64
}

// Family is one metric family: HELP + TYPE + samples.
type Family struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []Sample
}

// escapeLabelValue applies the exposition-format label escaping rules:
// backslash, double-quote, and newline are escaped.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline only (quotes are
// legal there).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// unescapeHelp reverses escapeHelp so a parsed scrape round-trips.
func unescapeHelp(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects; the 'g'
// format is deterministic and round-trips float64 exactly.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm encodes families in the text exposition format. Families and
// samples are emitted in the order given; the encoder assumes callers
// provide unique family names and unique label sets per family (ParseProm
// enforces both, and tests scrape through it).
func WriteProm(w io.Writer, fams []Family) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if len(f.Samples) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if len(s.Labels) == 0 {
				if _, err := fmt.Fprintf(bw, "%s %s\n", f.Name, formatValue(s.Value)); err != nil {
					return err
				}
				continue
			}
			parts := make([]string, len(s.Labels))
			for i, l := range s.Labels {
				parts[i] = l.Name + `="` + escapeLabelValue(l.Value) + `"`
			}
			if _, err := fmt.Fprintf(bw, "%s{%s} %s\n", f.Name, strings.Join(parts, ","), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ParseProm is a strict parser for the subset of the text exposition
// format the encoder emits. It enforces what a Prometheus server would
// reject and more: every sample's family must have HELP and TYPE lines
// (HELP first), names must be legal, label values must use legal escapes,
// no duplicate families, and no duplicate samples (same name + label set).
// It exists for tests and the promlint tool; a valid scrape round-trips.
func ParseProm(r io.Reader) ([]Family, error) {
	var (
		fams    []Family
		byName  = map[string]int{}
		helpFor = map[string]bool{}
		seen    = map[string]bool{} // name + sorted label set
		lineNo  int
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, help, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q in HELP", lineNo, name)
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %q", lineNo, name)
			}
			byName[name] = len(fams)
			helpFor[name] = true
			fams = append(fams, Family{Name: name, Help: unescapeHelp(help)})
		case strings.HasPrefix(line, "# TYPE "):
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
			}
			if !helpFor[name] {
				return nil, fmt.Errorf("line %d: TYPE %s before its HELP", lineNo, name)
			}
			i := byName[name]
			if fams[i].Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			switch MetricType(typ) {
			case TypeCounter, TypeGauge:
				fams[i].Type = MetricType(typ)
			default:
				return nil, fmt.Errorf("line %d: unsupported metric type %q", lineNo, typ)
			}
			if len(fams[i].Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE %s after its samples", lineNo, name)
			}
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and ignored.
		default:
			name, labels, val, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			i, ok := byName[name]
			if !ok || fams[i].Type == "" {
				return nil, fmt.Errorf("line %d: sample for %q without HELP/TYPE", lineNo, name)
			}
			key := sampleKey(name, labels)
			if seen[key] {
				return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
			}
			seen[key] = true
			fams[i].Samples = append(fams[i].Samples, Sample{Labels: labels, Value: val})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %q has HELP but no TYPE", f.Name)
		}
		if len(f.Samples) == 0 {
			return nil, fmt.Errorf("family %q has no samples", f.Name)
		}
	}
	return fams, nil
}

// parseSample parses one sample line: name[{labels}] value.
func parseSample(line string) (string, []Label, float64, error) {
	var name, rest string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		labels, err := parseLabels(line[i+1 : end])
		if err != nil {
			return "", nil, 0, err
		}
		if !validMetricName(name) {
			return "", nil, 0, fmt.Errorf("bad metric name %q", name)
		}
		val, err := parseValue(line[end+1:])
		return name, labels, val, err
	}
	name, rest, _ = strings.Cut(line, " ")
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	val, err := parseValue(rest)
	return name, nil, val, err
}

// parseValue parses the value (and rejects trailing garbage; we never emit
// timestamps).
func parseValue(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("sample without a value")
	}
	if strings.ContainsAny(s, " \t") {
		return 0, fmt.Errorf("unexpected trailing fields in %q", s)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// parseLabels parses the inside of a {...} label set, validating names and
// escape sequences.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", s[i:])
		}
		name := s[i : i+eq]
		if !validLabelName(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", name)
		}
		i++
		var b strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %s: dangling backslash", name)
				}
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: illegal escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", name)
		}
		out = append(out, Label{Name: name, Value: b.String()})
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s[i:])
			}
			i++
		}
	}
	return out, nil
}

// sampleKey identifies a sample by family name + sorted label set.
func sampleKey(name string, labels []Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		fmt.Fprintf(&b, "{%s=%q}", l.Name, l.Value)
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
