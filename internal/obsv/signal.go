package obsv

import (
	"context"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ShutdownOnSignal installs a SIGINT/SIGTERM handler that drains the given
// observability servers gracefully — in-flight scrapes finish within grace
// — and then exits with the conventional 128+signal code (130 for SIGINT,
// 143 for SIGTERM). The batch CLIs use it so a ^C mid-run no longer kills
// listeners mid-scrape; the daemon has its own, richer signal loop and does
// not. The returned stop function uninstalls the handler (call it when the
// run ends normally, so late signals get default handling again).
func ShutdownOnSignal(grace time.Duration, logger *slog.Logger, servers ...*Server) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			if logger != nil {
				logger.Info("signal received; draining observability listeners",
					"signal", sig.String(), "grace", grace.String())
			}
			ctx, cancel := context.WithTimeout(context.Background(), grace)
			for _, s := range servers {
				s.Shutdown(ctx) //nolint:errcheck // best-effort drain on the way out
			}
			cancel()
			code := 130
			if sig == syscall.SIGTERM {
				code = 143
			}
			os.Exit(code)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
