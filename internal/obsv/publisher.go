// Package obsv is the live observability plane: a thread-safe Publisher
// that tees the telemetry Recorder stream into mirrored read-side state,
// a hand-rolled Prometheus text-format encoder (and strict parser), an
// HTTP server (/metrics, /healthz, /status, /tenants, /dump, pprof,
// expvar), and structured run logging via log/slog.
//
// Contract (see DESIGN.md "Observability plane"): the Publisher is strictly
// read-side. It forwards every Event/Snapshot to the inner Recorder
// unchanged, mirrors what it needs under its own mutex, and never feeds
// anything back into the simulation — so trace and metrics exports remain
// byte-identical with or without a live server attached.
package obsv

import (
	"sort"
	"sync"

	"thermostat/internal/core"
	"thermostat/internal/telemetry"
)

// Census is the engine classification census rendered by /dump (an alias
// of core.Census so obsv callers need not import core).
type Census = core.Census

// Info is static run identification set once by the command before the run
// starts; it becomes the thermostat_run_info metric and part of /status.
type Info struct {
	Binary  string `json:"binary"`
	App     string `json:"app"`
	Tracker string `json:"tracker"`
	Policy  string `json:"policy"`
	Scale   string `json:"scale"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
}

// Run phases reported by /status.
const (
	PhaseIdle    = "idle"
	PhaseRunning = "running"
	PhaseDone    = "done"
)

// Counters accumulates per-epoch Snapshot deltas into lifetime counter totals
// (Prometheus counters must be monotonic; individual snapshots are deltas).
type Counters struct {
	Accesses       uint64
	SlowAccesses   uint64
	TierAccesses   []uint64
	TLBMisses      uint64
	LLCMisses      uint64
	PoisonFaults   uint64
	MigrationBytes uint64
	Demotions      uint64
	Promotions     uint64

	FaultsInjected     uint64
	FaultsPermanent    uint64
	MigrationRetries   uint64
	MigrationRollbacks uint64
	PagesQuarantined   uint64
}

// stream is the mirrored state of one recorder stream (one simulation run).
type stream struct {
	label  string
	bounds telemetry.Config // inner collector bounds, for drop mirroring

	epoch     uint64
	timeNs    int64
	events    uint64 // events offered (recorded + dropped)
	snapsSeen uint64
	totals    Counters
	last      telemetry.Snapshot // latest snapshot (gauges); slices owned
	hasSnap   bool
}

// dropped mirrors the Collector's deterministic event-drop accounting:
// everything offered past MaxEvents is dropped.
func (s *stream) dropped() uint64 {
	if s.bounds.MaxEvents <= 0 || s.events <= uint64(s.bounds.MaxEvents) {
		return 0
	}
	return s.events - uint64(s.bounds.MaxEvents)
}

// ringHighWater mirrors the Collector's snapshot-ring high-water mark.
func (s *stream) ringHighWater() int {
	if s.bounds.MaxSnapshots > 0 && s.snapsSeen > uint64(s.bounds.MaxSnapshots) {
		return s.bounds.MaxSnapshots
	}
	return int(s.snapsSeen)
}

// tenantState is one fleet tenant's mirrored lifecycle and latest arbiter
// snapshot.
type tenantState struct {
	name       string
	resident   bool
	arrivedNs  int64
	departedNs int64
	grantBytes uint64
	last       telemetry.TenantSnapshot
	hasSnap    bool
}

// CensusSource exposes an engine's published classification census
// (implemented by *core.Engine after EnablePublish).
type CensusSource interface {
	PublishedCensus() (Census, bool)
}

// engineRef pairs a census source with its display label.
type engineRef struct {
	label string
	src   CensusSource
}

// Publisher is the live observability plane's state hub. One Publisher
// serves one process; attach it to runs with Recorder and to engines with
// AttachEngine, then hand it to a Server. All methods are safe for
// concurrent use.
type Publisher struct {
	mu       sync.Mutex
	info     Info
	phase    string
	health   string
	streams  []*stream
	byLabel  map[string]*stream
	tenants  []*tenantState
	byTenant map[string]*tenantState
	engines  []engineRef
}

// NewPublisher returns an empty publisher in the idle phase.
func NewPublisher() *Publisher {
	return &Publisher{
		phase:    PhaseIdle,
		byLabel:  map[string]*stream{},
		byTenant: map[string]*tenantState{},
	}
}

// SetInfo records static run identification (call before serving).
func (p *Publisher) SetInfo(i Info) {
	p.mu.Lock()
	p.info = i
	p.mu.Unlock()
}

// SetPhase moves the run phase shown by /status and /healthz.
func (p *Publisher) SetPhase(phase string) {
	p.mu.Lock()
	p.phase = phase
	p.mu.Unlock()
}

// SetHealth records the daemon's degradation-ladder position ("healthy",
// "degraded", "quarantine-only", "halted") for /status. Empty — the default
// for the batch CLIs, which have no ladder — omits the field.
func (p *Publisher) SetHealth(health string) {
	p.mu.Lock()
	p.health = health
	p.mu.Unlock()
}

// AttachEngine registers an engine census source under a display label.
func (p *Publisher) AttachEngine(label string, src CensusSource) {
	p.mu.Lock()
	p.engines = append(p.engines, engineRef{label: label, src: src})
	p.mu.Unlock()
}

// Recorder returns a telemetry.Recorder that forwards every call to inner
// (which may be nil) and mirrors stream state under the publisher's mutex.
// The label names the stream in metrics ({run="<label>"}) and /status.
// Calling Recorder twice with one label reuses (and resets) the stream.
func (p *Publisher) Recorder(label string, inner *telemetry.Collector) telemetry.Recorder {
	p.mu.Lock()
	s := p.byLabel[label]
	if s == nil {
		s = &stream{label: label}
		p.byLabel[label] = s
		p.streams = append(p.streams, s)
	} else {
		*s = stream{label: label}
	}
	if inner != nil {
		s.bounds = inner.Bounds()
	}
	p.mu.Unlock()
	var in telemetry.Recorder
	if inner != nil {
		in = inner
	}
	return &streamRecorder{p: p, s: s, inner: in}
}

// streamRecorder is the tee handed to one simulation. Event/Snapshot run on
// the simulation goroutine; forwarding happens before mirroring so the
// inner collector sees exactly the stream it would without the tee.
type streamRecorder struct {
	p     *Publisher
	s     *stream
	inner telemetry.Recorder
}

// Event implements telemetry.Recorder.
func (r *streamRecorder) Event(e telemetry.Event) {
	if r.inner != nil {
		r.inner.Event(e)
	}
	r.p.observeEvent(r.s, e)
}

// Snapshot implements telemetry.Recorder.
func (r *streamRecorder) Snapshot(s telemetry.Snapshot) {
	if r.inner != nil {
		r.inner.Snapshot(s)
	}
	r.p.observeSnapshot(r.s, s)
}

// TenantSnapshot implements telemetry.TenantSink: mirrors per-tenant
// arbiter-period state and forwards to the inner recorder if it is a sink
// too (the standard Collector is not — tenant series live in fleet results).
func (r *streamRecorder) TenantSnapshot(ts telemetry.TenantSnapshot) {
	if sink, ok := r.inner.(telemetry.TenantSink); ok {
		sink.TenantSnapshot(ts)
	}
	r.p.observeTenant(ts)
}

func (p *Publisher) observeEvent(s *stream, e telemetry.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s.events++
	if e.TimeNs > s.timeNs {
		s.timeNs = e.TimeNs
	}
	if e.Kind == telemetry.KindEpochStart {
		s.epoch = e.Epoch
	}
	switch e.Kind {
	case telemetry.KindTenantArrived:
		t := p.tenant(e.Tenant)
		t.resident = true
		t.arrivedNs = e.TimeNs
		t.grantBytes = e.Bytes
	case telemetry.KindTenantDeparted:
		t := p.tenant(e.Tenant)
		t.resident = false
		t.departedNs = e.TimeNs
	case telemetry.KindGrantChanged:
		p.tenant(e.Tenant).grantBytes = e.Bytes
	}
}

func (p *Publisher) observeSnapshot(s *stream, snap telemetry.Snapshot) {
	// Own the slices: the sender may reuse its buffers.
	snap.TierAccesses = append([]uint64(nil), snap.TierAccesses...)
	snap.TierOccupancy = append([]uint64(nil), snap.TierOccupancy...)
	p.mu.Lock()
	defer p.mu.Unlock()
	s.snapsSeen++
	if snap.EndNs > s.timeNs {
		s.timeNs = snap.EndNs
	}
	t := &s.totals
	t.Accesses += snap.Accesses
	t.SlowAccesses += snap.SlowAccesses
	for len(t.TierAccesses) < len(snap.TierAccesses) {
		t.TierAccesses = append(t.TierAccesses, 0)
	}
	for i, v := range snap.TierAccesses {
		t.TierAccesses[i] += v
	}
	t.TLBMisses += snap.TLBMisses
	t.LLCMisses += snap.LLCMisses
	t.PoisonFaults += snap.PoisonFaults
	t.MigrationBytes += snap.MigrationBytes
	t.Demotions += snap.Demotions
	t.Promotions += snap.Promotions
	t.FaultsInjected += snap.FaultsInjected
	t.FaultsPermanent += snap.FaultsPermanent
	t.MigrationRetries += snap.MigrationRetries
	t.MigrationRollbacks += snap.MigrationRollbacks
	t.PagesQuarantined += snap.PagesQuarantined
	s.last = snap
	s.hasSnap = true
}

func (p *Publisher) observeTenant(ts telemetry.TenantSnapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.tenant(ts.Tenant)
	t.last = ts
	t.hasSnap = true
	t.grantBytes = ts.GrantBytes
	// Tenants present from run start are admitted silently (no arrival
	// event — they are the run's shape, not churn), so an arbiter snapshot
	// is itself proof of residency.
	if t.departedNs == 0 {
		t.resident = true
	}
}

// tenant returns (creating if needed) the state for one tenant tag.
// Callers hold p.mu.
func (p *Publisher) tenant(name string) *tenantState {
	t := p.byTenant[name]
	if t == nil {
		t = &tenantState{name: name}
		p.byTenant[name] = t
		p.tenants = append(p.tenants, t)
	}
	return t
}

// StreamState is one stream's mirrored state, exported by copy.
type StreamState struct {
	Label         string
	Epoch         uint64
	TimeNs        int64
	Events        uint64
	Dropped       uint64
	SnapshotsSeen uint64
	RingHighWater int
	Totals        Counters
	Last          telemetry.Snapshot
	HasSnapshot   bool
}

// TenantState is one tenant's mirrored state, exported by copy.
type TenantState struct {
	Name       string
	Resident   bool
	ArrivedNs  int64
	DepartedNs int64
	GrantBytes uint64
	Last       telemetry.TenantSnapshot
	HasSnap    bool
}

// State is a point-in-time copy of everything the publisher mirrors.
type State struct {
	Info    Info
	Phase   string
	Health  string
	Streams []StreamState
	Tenants []TenantState
}

// State returns a deep copy of the published state. Streams keep
// registration order; tenants are sorted by name for deterministic output.
func (p *Publisher) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := State{Info: p.info, Phase: p.phase, Health: p.health}
	for _, s := range p.streams {
		cp := StreamState{
			Label:         s.label,
			Epoch:         s.epoch,
			TimeNs:        s.timeNs,
			Events:        s.events,
			Dropped:       s.dropped(),
			SnapshotsSeen: s.snapsSeen,
			RingHighWater: s.ringHighWater(),
			Totals:        s.totals,
			Last:          s.last,
			HasSnapshot:   s.hasSnap,
		}
		cp.Totals.TierAccesses = append([]uint64(nil), s.totals.TierAccesses...)
		cp.Last.TierAccesses = append([]uint64(nil), s.last.TierAccesses...)
		cp.Last.TierOccupancy = append([]uint64(nil), s.last.TierOccupancy...)
		st.Streams = append(st.Streams, cp)
	}
	for _, t := range p.tenants {
		st.Tenants = append(st.Tenants, TenantState{
			Name:       t.name,
			Resident:   t.resident,
			ArrivedNs:  t.arrivedNs,
			DepartedNs: t.departedNs,
			GrantBytes: t.grantBytes,
			Last:       t.last,
			HasSnap:    t.hasSnap,
		})
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
	return st
}

// EngineCensus pairs an engine label with its latest published census.
type EngineCensus struct {
	Label  string
	Census Census
}

// Engines returns the latest census from every registered source that has
// published one, in registration order.
func (p *Publisher) Engines() []EngineCensus {
	p.mu.Lock()
	refs := append([]engineRef(nil), p.engines...)
	p.mu.Unlock()
	var out []EngineCensus
	for _, r := range refs {
		if c, ok := r.src.PublishedCensus(); ok {
			out = append(out, EngineCensus{Label: r.label, Census: c})
		}
	}
	return out
}
