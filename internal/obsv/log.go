package obsv

import (
	"fmt"
	"io"
	"log/slog"
)

// Log formats accepted by -log-format.
const (
	LogText = "text"
	LogJSON = "json"
)

// ValidLogFormat reports whether f names a supported log format ("" means
// the text default, matching NewLogger).
func ValidLogFormat(f string) bool { return f == LogText || f == LogJSON || f == "" }

// NewLogger builds the command-line logger: text (human, the default) or
// json (machine-parseable, one object per line). Unknown formats error so
// validate() can reject them before a run starts.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case LogText, "":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want %s or %s)", format, LogText, LogJSON)
	}
}
