// Live integration tests: an in-process HTTP server scraped mid-run, the
// byte-identity contract (exports with and without a live server), and the
// golden Prometheus scrape from a seeded short run. External test package
// so it can use the harness (which imports obsv).
package obsv_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermostat/internal/cgroup"
	"thermostat/internal/core"
	"thermostat/internal/harness"
	"thermostat/internal/obsv"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden scrape file")

// liveScale is the short seeded schedule the live tests run at.
func liveScale() harness.Scale {
	sc := harness.Tiny()
	sc.DurationNs = 4e9
	sc.WarmupNs = 1e9
	return sc
}

// epochHook wraps a Recorder and fires fn once, from the simulation
// goroutine, when the run reaches the given epoch — a deterministic
// "mid-run" moment for scraping.
type epochHook struct {
	telemetry.Recorder
	epoch uint64
	fired bool
	fn    func()
}

func (h *epochHook) Event(e telemetry.Event) {
	h.Recorder.Event(e)
	if !h.fired && e.Kind == telemetry.KindEpochStart && e.Epoch >= h.epoch {
		h.fired = true
		h.fn()
	}
}

// exports renders the collector's two export formats.
func exports(t *testing.T, col *telemetry.Collector) (trace, jsonl []byte) {
	t.Helper()
	var tb, jb bytes.Buffer
	if err := col.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), jb.Bytes()
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return body
}

// TestServeScrapeMidRun is the acceptance-criteria integration test: a
// seeded run with a live server answers /metrics (parser-validated),
// /healthz, /status, /tenants and /dump mid-run, and its exports stay
// byte-identical to the same run without the server.
func TestServeScrapeMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	sc := liveScale()
	spec, _ := workload.ByName("redis")
	bounds := telemetry.Config{MaxEvents: 512}

	// Control: the same seeded run with a bare collector, no publisher.
	ctrlCol := telemetry.NewCollectorWith(bounds)
	if _, err := harness.RunThermostatWith(spec, sc, 3,
		func(cfg *sim.Config) { cfg.Recorder = ctrlCol }, nil); err != nil {
		t.Fatal(err)
	}
	wantTrace, wantJSONL := exports(t, ctrlCol)

	// Live run: collector behind the publisher tee, HTTP server up, all
	// endpoints scraped synchronously at epoch 5.
	pub := obsv.NewPublisher()
	pub.SetInfo(obsv.Info{Binary: "test", App: spec.Name, Tracker: "poison",
		Policy: "threshold", Scale: sc.Name, Seed: sc.Seed, Workers: 1})
	pub.SetPhase(obsv.PhaseRunning)
	srv := obsv.NewServer(pub)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	col := telemetry.NewCollectorWith(bounds)
	hook := &epochHook{
		Recorder: pub.Recorder("redis/thermostat", col),
		epoch:    5,
		fn: func() {
			if got := string(get(t, ts.URL+"/healthz")); got != "ok\n" {
				t.Errorf("/healthz = %q", got)
			}

			scrape := get(t, ts.URL+"/metrics")
			fams, err := obsv.ParseProm(bytes.NewReader(scrape))
			if err != nil {
				t.Errorf("mid-run /metrics failed strict parse: %v", err)
			}
			byName := map[string]obsv.Family{}
			for _, f := range fams {
				byName[f.Name] = f
			}
			for _, name := range []string{
				"thermostat_run_info", "thermostat_run_phase",
				"thermostat_accesses_total", "thermostat_tier_accesses_total",
				"thermostat_tier_occupancy_bytes", "thermostat_migration_bytes_total",
				"thermostat_cold_bytes", "thermostat_hot_bytes",
				"thermostat_telemetry_dropped_total", "thermostat_telemetry_ring_high_water",
			} {
				if _, ok := byName[name]; !ok {
					t.Errorf("mid-run scrape missing family %s", name)
				}
			}
			if f := byName["thermostat_accesses_total"]; len(f.Samples) != 1 || f.Samples[0].Value <= 0 {
				t.Errorf("thermostat_accesses_total = %+v", f.Samples)
			}

			var status struct {
				Phase string `json:"phase"`
				Runs  []struct {
					Run   string `json:"run"`
					Epoch uint64 `json:"epoch"`
				} `json:"runs"`
			}
			if err := json.Unmarshal(get(t, ts.URL+"/status"), &status); err != nil {
				t.Errorf("/status: %v", err)
			}
			if status.Phase != obsv.PhaseRunning || len(status.Runs) != 1 ||
				status.Runs[0].Run != "redis/thermostat" || status.Runs[0].Epoch < 5 {
				t.Errorf("/status = %+v", status)
			}

			var tenants []any
			if err := json.Unmarshal(get(t, ts.URL+"/tenants"), &tenants); err != nil {
				t.Errorf("/tenants: %v", err)
			}
			if len(tenants) != 0 {
				t.Errorf("/tenants on a solo run = %v", tenants)
			}

			dump := string(get(t, ts.URL+"/dump?what=accessed&n=8"))
			if !strings.Contains(dump, "classification census") {
				t.Errorf("/dump missing census:\n%s", dump)
			}
		},
	}
	_, err := harness.RunThermostatWith(spec, sc, 3,
		func(cfg *sim.Config) { cfg.Recorder = hook },
		func(_ *cgroup.Group, eng *core.Engine) {
			eng.EnablePublish()
			pub.AttachEngine("redis/thermostat", eng)
		})
	if err != nil {
		t.Fatal(err)
	}
	if !hook.fired {
		t.Fatal("run never reached the scrape epoch")
	}
	pub.SetPhase(obsv.PhaseDone)

	// Byte-identity: the teed collector's exports equal the control's.
	gotTrace, gotJSONL := exports(t, col)
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("Chrome trace differs with a live server attached (%d vs %d bytes)",
			len(gotTrace), len(wantTrace))
	}
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Errorf("JSONL metrics differ with a live server attached (%d vs %d bytes)",
			len(gotJSONL), len(wantJSONL))
	}

	// Unknown dump queries are rejected.
	resp, err := http.Get(ts.URL + "/dump?what=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/dump?what=bogus = %d, want 400", resp.StatusCode)
	}
}

// TestMetricsGoldenScrape pins the full end-of-run scrape of a seeded short
// run: every family, sample, and formatting decision. Run with -update
// after intentional changes.
func TestMetricsGoldenScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	sc := liveScale()
	spec, _ := workload.ByName("redis")

	pub := obsv.NewPublisher()
	pub.SetInfo(obsv.Info{Binary: "thermostat-sim", App: spec.Name, Tracker: "poison",
		Policy: "threshold", Scale: sc.Name, Seed: sc.Seed, Workers: 1})
	pub.SetPhase(obsv.PhaseRunning)
	col := telemetry.NewCollectorWith(telemetry.Config{MaxEvents: 512})
	_, err := harness.RunThermostatWith(spec, sc, 3,
		func(cfg *sim.Config) { cfg.Recorder = pub.Recorder("redis/thermostat", col) },
		func(_ *cgroup.Group, eng *core.Engine) {
			eng.EnablePublish()
			pub.AttachEngine("redis/thermostat", eng)
		})
	if err != nil {
		t.Fatal(err)
	}
	pub.SetPhase(obsv.PhaseDone)

	var buf bytes.Buffer
	if err := pub.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	// The golden scrape must satisfy the strict parser too.
	fams, err := obsv.ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("golden scrape fails strict parse: %v", err)
	}
	if len(fams) < 20 {
		t.Fatalf("suspiciously few families: %d", len(fams))
	}

	golden := filepath.Join("testdata", "metrics_golden.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", golden, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("scrape drifted from golden (%d vs %d bytes; verify and run with -update)",
			buf.Len(), len(want))
	}
}

// TestFleetPublisherTenants runs a two-tenant fleet with the live plane
// attached and checks the per-tenant surface: arbiter snapshots mirrored
// via TenantSink, /tenants JSON, and per-tenant metric families.
func TestFleetPublisherTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	sc := liveScale()
	redis, _ := workload.ByName("redis")
	search, _ := workload.ByName("web-search")

	pub := obsv.NewPublisher()
	pub.SetPhase(obsv.PhaseRunning)
	_, err := harness.FleetRun(harness.FleetOptions{
		Scale: sc,
		Tenants: []harness.FleetTenant{
			{Name: "redis-a", Spec: redis, SLOPct: 3},
			{Name: "search-b", Spec: search, SLOPct: 10},
		},
		Publisher: pub,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub.SetPhase(obsv.PhaseDone)

	st := pub.State()
	if len(st.Tenants) != 2 {
		t.Fatalf("mirrored tenants = %d, want 2", len(st.Tenants))
	}
	for _, tn := range st.Tenants {
		if !tn.HasSnap {
			t.Errorf("tenant %s never received an arbiter snapshot", tn.Name)
		}
		if !tn.Resident {
			t.Errorf("tenant %s not resident at end of run", tn.Name)
		}
	}
	if got := len(pub.Engines()); got != 2 {
		t.Fatalf("published engine censuses = %d, want 2", got)
	}

	srv := obsv.NewServer(pub)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var tenants []map[string]any
	if err := json.Unmarshal(get(t, ts.URL+"/tenants"), &tenants); err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 {
		t.Fatalf("/tenants = %d entries, want 2", len(tenants))
	}
	for _, tn := range tenants {
		if tn["grant_bytes"].(float64) <= 0 {
			t.Errorf("tenant %v has no grant", tn["tenant"])
		}
	}

	scrape := get(t, ts.URL+"/metrics")
	fams, err := obsv.ParseProm(bytes.NewReader(scrape))
	if err != nil {
		t.Fatalf("fleet scrape failed strict parse: %v", err)
	}
	found := map[string]int{}
	for _, f := range fams {
		if strings.HasPrefix(f.Name, "thermostat_tenant_") || f.Name == "thermostat_engine_pages" {
			found[f.Name] = len(f.Samples)
		}
	}
	if found["thermostat_tenant_grant_bytes"] != 2 {
		t.Errorf("thermostat_tenant_grant_bytes samples = %d, want 2", found["thermostat_tenant_grant_bytes"])
	}
	if found["thermostat_engine_pages"] != 6 { // 2 engines x 3 classes
		t.Errorf("thermostat_engine_pages samples = %d, want 6", found["thermostat_engine_pages"])
	}
	if fmt.Sprint(found["thermostat_tenant_slo_slack_pct"]) != "2" {
		t.Errorf("thermostat_tenant_slo_slack_pct samples = %v, want 2", found["thermostat_tenant_slo_slack_pct"])
	}
}
