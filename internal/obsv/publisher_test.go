package obsv

import (
	"reflect"
	"testing"

	"thermostat/internal/telemetry"
)

// feed drives one synthetic run's worth of events and snapshots through r.
func feed(r telemetry.Recorder, epochs int) {
	for e := 1; e <= epochs; e++ {
		start := int64(e-1) * 1_000_000
		r.Event(telemetry.Event{Kind: telemetry.KindEpochStart, TimeNs: start, Epoch: uint64(e)})
		r.Event(telemetry.Event{Kind: telemetry.KindMigrated, TimeNs: start + 10, Bytes: 2 << 20, ToTier: 1})
		r.Event(telemetry.Event{Kind: telemetry.KindEpochEnd, TimeNs: start + 1_000_000})
		r.Snapshot(telemetry.Snapshot{
			Epoch: uint64(e), StartNs: start, EndNs: start + 1_000_000,
			Accesses: 100, SlowAccesses: 7,
			TierAccesses:   []uint64{93, 7},
			TierOccupancy:  []uint64{64 << 20, 2 << 20},
			MigrationBytes: 2 << 20, Demotions: 1,
			ColdBytes: 2 << 20, HotBytes: 62 << 20,
		})
	}
}

// TestTeeForwardsExactly pins the read-side-only contract at the unit
// level: a collector behind the publisher tee ends up in exactly the state
// of a collector fed directly.
func TestTeeForwardsExactly(t *testing.T) {
	t.Parallel()
	cfg := telemetry.Config{MaxEvents: 5, MaxSnapshots: 3}
	direct := telemetry.NewCollectorWith(cfg)
	teed := telemetry.NewCollectorWith(cfg)

	feed(direct, 4)
	p := NewPublisher()
	feed(p.Recorder("run", teed), 4)

	if !reflect.DeepEqual(direct.Events(), teed.Events()) {
		t.Fatal("teed collector buffered different events")
	}
	if !reflect.DeepEqual(direct.Snapshots(), teed.Snapshots()) {
		t.Fatal("teed collector retained different snapshots")
	}
	if direct.Dropped() != teed.Dropped() || direct.Epoch() != teed.Epoch() {
		t.Fatalf("collector counters diverged: dropped %d/%d epoch %d/%d",
			direct.Dropped(), teed.Dropped(), direct.Epoch(), teed.Epoch())
	}
}

// TestPublisherMirrorsCollectorAccounting pins the drop/ring mirroring: the
// publisher computes drops and the ring high-water mark from the bounds
// rather than reading the collector, and the two must agree.
func TestPublisherMirrorsCollectorAccounting(t *testing.T) {
	t.Parallel()
	col := telemetry.NewCollectorWith(telemetry.Config{MaxEvents: 5, MaxSnapshots: 3})
	p := NewPublisher()
	feed(p.Recorder("run", col), 6)

	st := p.State()
	if len(st.Streams) != 1 {
		t.Fatalf("streams = %d", len(st.Streams))
	}
	s := st.Streams[0]
	if s.Dropped != col.Dropped() {
		t.Fatalf("mirrored dropped %d, collector %d", s.Dropped, col.Dropped())
	}
	if s.Dropped == 0 {
		t.Fatal("test fed too few events to overflow the cap")
	}
	if s.RingHighWater != col.RingHighWater() {
		t.Fatalf("mirrored high water %d, collector %d", s.RingHighWater, col.RingHighWater())
	}
	if s.SnapshotsSeen != col.SnapshotsSeen() {
		t.Fatalf("mirrored snapshots %d, collector %d", s.SnapshotsSeen, col.SnapshotsSeen())
	}
	if s.Events != uint64(col.EventCount())+col.Dropped() {
		t.Fatalf("mirrored events %d, collector %d+%d", s.Events, col.EventCount(), col.Dropped())
	}
	if s.Epoch != 6 || s.TimeNs != 6*1_000_000 {
		t.Fatalf("stream position epoch=%d timeNs=%d", s.Epoch, s.TimeNs)
	}
	// Counter totals accumulate the per-epoch deltas.
	if s.Totals.Accesses != 600 || s.Totals.MigrationBytes != 6*(2<<20) {
		t.Fatalf("totals = %+v", s.Totals)
	}
	if !s.HasSnapshot || s.Last.Epoch != 6 {
		t.Fatalf("last snapshot = %+v", s.Last)
	}
}

// TestPublisherWithoutCollector covers the -serve-without-telemetry path:
// a nil inner collector must not panic and mirrors with no drop cap.
func TestPublisherWithoutCollector(t *testing.T) {
	t.Parallel()
	p := NewPublisher()
	feed(p.Recorder("solo", nil), 2)
	s := p.State().Streams[0]
	if s.Dropped != 0 || s.Events == 0 || s.SnapshotsSeen != 2 {
		t.Fatalf("stream = %+v", s)
	}
}

// TestPublisherTenantLifecycle drives tenant events and arbiter snapshots
// through the tee and checks /tenants-visible state.
func TestPublisherTenantLifecycle(t *testing.T) {
	t.Parallel()
	p := NewPublisher()
	rec := p.Recorder("fleet", nil)
	rec.Event(telemetry.Event{Kind: telemetry.KindTenantArrived, TimeNs: 100, Tenant: "redis", Bytes: 1 << 30})
	rec.Event(telemetry.Event{Kind: telemetry.KindGrantChanged, TimeNs: 200, Tenant: "redis", Bytes: 2 << 30})
	sink, ok := rec.(telemetry.TenantSink)
	if !ok {
		t.Fatal("publisher recorder does not implement TenantSink")
	}
	sink.TenantSnapshot(telemetry.TenantSnapshot{
		Epoch: 1, EndNs: 300, Tenant: "redis",
		GrantBytes: 2 << 30, SlowdownPct: 1.5, SLOPct: 3,
	})
	rec.Event(telemetry.Event{Kind: telemetry.KindTenantDeparted, TimeNs: 400, Tenant: "redis", Bytes: 2 << 30})

	ts := p.State().Tenants
	if len(ts) != 1 {
		t.Fatalf("tenants = %d", len(ts))
	}
	tn := ts[0]
	if tn.Name != "redis" || tn.Resident || tn.ArrivedNs != 100 || tn.DepartedNs != 400 {
		t.Fatalf("tenant = %+v", tn)
	}
	if !tn.HasSnap || tn.Last.SlowdownPct != 1.5 || tn.GrantBytes != 2<<30 {
		t.Fatalf("tenant snapshot = %+v", tn)
	}
}

func TestLogFormats(t *testing.T) {
	t.Parallel()
	for _, f := range []string{LogText, LogJSON, ""} {
		if _, err := NewLogger(nil, f); err != nil {
			t.Fatalf("NewLogger(%q): %v", f, err)
		}
	}
	if _, err := NewLogger(nil, "yaml"); err == nil {
		t.Fatal("NewLogger accepted unknown format")
	}
	if ValidLogFormat("yaml") || !ValidLogFormat(LogJSON) {
		t.Fatal("ValidLogFormat wrong")
	}
}
