package obsv

import (
	"io"
	"strconv"
)

// Families renders the publisher's current state as Prometheus metric
// families in a fixed, deterministic order. Counters accumulate per-epoch
// Snapshot deltas; gauges are the latest snapshot's values.
func (p *Publisher) Families() []Family {
	st := p.State()
	engines := p.Engines()

	var fams []Family
	add := func(name, help string, typ MetricType, samples ...Sample) {
		fams = append(fams, Family{Name: name, Help: help, Type: typ, Samples: samples})
	}

	info := st.Info
	add("thermostat_run_info",
		"Static run identification; value is always 1.",
		TypeGauge, Sample{Labels: []Label{
			{"binary", info.Binary},
			{"app", info.App},
			{"tracker", info.Tracker},
			{"policy", info.Policy},
			{"scale", info.Scale},
			{"seed", strconv.FormatUint(info.Seed, 10)},
			{"workers", strconv.Itoa(info.Workers)},
		}, Value: 1})
	add("thermostat_run_phase",
		"Run phase (idle/running/done); value is always 1 for the current phase.",
		TypeGauge, Sample{Labels: []Label{{"phase", st.Phase}}, Value: 1})

	// Per-stream families. Streams keep registration order; each sample
	// carries a run="<label>" label.
	type perStream struct {
		name  string
		help  string
		typ   MetricType
		value func(s StreamState) (float64, bool)
	}
	counters := []perStream{
		{"thermostat_virtual_time_seconds", "Virtual time high-water mark of the run.", TypeGauge,
			func(s StreamState) (float64, bool) { return float64(s.TimeNs) / 1e9, true }},
		{"thermostat_epoch", "Current telemetry epoch.", TypeGauge,
			func(s StreamState) (float64, bool) { return float64(s.Epoch), true }},
		{"thermostat_accesses_total", "Memory accesses executed.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.Accesses), true }},
		{"thermostat_slow_accesses_total", "Accesses served from non-top tiers.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.SlowAccesses), true }},
		{"thermostat_tlb_misses_total", "Simulated TLB misses.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.TLBMisses), true }},
		{"thermostat_llc_misses_total", "Simulated LLC misses.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.LLCMisses), true }},
		{"thermostat_poison_faults_total", "BadgerTrap poison faults serviced.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.PoisonFaults), true }},
		{"thermostat_migration_bytes_total", "Bytes moved between tiers.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.MigrationBytes), true }},
		{"thermostat_demotions_total", "Pages demoted toward slower tiers.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.Demotions), true }},
		{"thermostat_promotions_total", "Pages promoted back toward DRAM.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.Promotions), true }},
		{"thermostat_chaos_faults_injected_total", "Chaos faults injected.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.FaultsInjected), true }},
		{"thermostat_chaos_faults_permanent_total", "Chaos faults marked permanent.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.FaultsPermanent), true }},
		{"thermostat_migration_retries_total", "Migration attempts retried after an injected fault.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.MigrationRetries), true }},
		{"thermostat_migration_rollbacks_total", "Migration transactions rolled back.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.MigrationRollbacks), true }},
		{"thermostat_pages_quarantined_total", "Pages quarantined after exhausting retries.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Totals.PagesQuarantined), true }},
		{"thermostat_cold_bytes", "Bytes classified cold at the last epoch boundary.", TypeGauge,
			func(s StreamState) (float64, bool) { return float64(s.Last.ColdBytes), s.HasSnapshot }},
		{"thermostat_hot_bytes", "Bytes classified hot at the last epoch boundary.", TypeGauge,
			func(s StreamState) (float64, bool) { return float64(s.Last.HotBytes), s.HasSnapshot }},
		{"thermostat_poisoned_pages", "Leaf mappings armed for fault interception.", TypeGauge,
			func(s StreamState) (float64, bool) { return float64(s.Last.PoisonedPages), s.HasSnapshot }},
		{"thermostat_telemetry_events_total", "Telemetry events offered to the collector.", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Events), true }},
		{"thermostat_telemetry_dropped_total", "Telemetry events dropped past the MaxEvents cap (deterministic).", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.Dropped), true }},
		{"thermostat_telemetry_snapshots_total", "Epoch snapshots recorded (including ring-evicted).", TypeCounter,
			func(s StreamState) (float64, bool) { return float64(s.SnapshotsSeen), true }},
		{"thermostat_telemetry_ring_high_water", "Snapshot-ring high-water mark (caps at MaxSnapshots).", TypeGauge,
			func(s StreamState) (float64, bool) { return float64(s.RingHighWater), true }},
	}
	for _, m := range counters {
		var samples []Sample
		for _, s := range st.Streams {
			v, ok := m.value(s)
			if !ok {
				continue
			}
			samples = append(samples, Sample{Labels: []Label{{"run", s.Label}}, Value: v})
		}
		add(m.name, m.help, m.typ, samples...)
	}

	// Per-tier families ({run, tier} with tier as the numeric mem.TierID).
	var tierAcc, tierOcc []Sample
	for _, s := range st.Streams {
		for i, v := range s.Totals.TierAccesses {
			tierAcc = append(tierAcc, Sample{
				Labels: []Label{{"run", s.Label}, {"tier", strconv.Itoa(i)}},
				Value:  float64(v),
			})
		}
		if s.HasSnapshot {
			for i, v := range s.Last.TierOccupancy {
				tierOcc = append(tierOcc, Sample{
					Labels: []Label{{"run", s.Label}, {"tier", strconv.Itoa(i)}},
					Value:  float64(v),
				})
			}
		}
	}
	add("thermostat_tier_accesses_total", "Accesses served per tier.", TypeCounter, tierAcc...)
	add("thermostat_tier_occupancy_bytes", "Used bytes per tier at the last epoch boundary.", TypeGauge, tierOcc...)

	// Confusion-matrix cells vs. LLC ground truth (latest valid epoch).
	var confusion []Sample
	for _, s := range st.Streams {
		if !s.HasSnapshot || !s.Last.ConfusionValid {
			continue
		}
		for _, c := range []struct {
			cell string
			v    uint64
		}{
			{"cold_idle", s.Last.ColdIdle},
			{"cold_accessed", s.Last.ColdAccessed},
			{"hot_idle", s.Last.HotIdle},
			{"hot_accessed", s.Last.HotAccessed},
		} {
			confusion = append(confusion, Sample{
				Labels: []Label{{"run", s.Label}, {"cell", c.cell}},
				Value:  float64(c.v),
			})
		}
	}
	add("thermostat_classified_pages",
		"Classification confusion cells vs. LLC ground truth in the last epoch.",
		TypeGauge, confusion...)

	// Per-tenant families from the fleet arbiter (sorted by tenant name).
	type perTenant struct {
		name  string
		help  string
		typ   MetricType
		value func(t TenantState) (float64, bool)
	}
	tenantFams := []perTenant{
		{"thermostat_tenant_resident", "1 while the tenant is resident, 0 after departure.", TypeGauge,
			func(t TenantState) (float64, bool) {
				if t.Resident {
					return 1, true
				}
				return 0, true
			}},
		{"thermostat_tenant_grant_bytes", "DRAM grant currently in force.", TypeGauge,
			func(t TenantState) (float64, bool) { return float64(t.GrantBytes), true }},
		{"thermostat_tenant_arrived_seconds", "Virtual arrival time.", TypeGauge,
			func(t TenantState) (float64, bool) { return float64(t.ArrivedNs) / 1e9, true }},
		{"thermostat_tenant_departed_seconds", "Virtual departure time (0 while resident).", TypeGauge,
			func(t TenantState) (float64, bool) { return float64(t.DepartedNs) / 1e9, true }},
		{"thermostat_tenant_usage_bytes", "Top-tier residency at the last arbiter period.", TypeGauge,
			func(t TenantState) (float64, bool) { return float64(t.Last.UsageBytes), t.HasSnap }},
		{"thermostat_tenant_footprint_bytes", "Total mapped bytes across tiers.", TypeGauge,
			func(t TenantState) (float64, bool) { return float64(t.Last.FootprintBytes), t.HasSnap }},
		{"thermostat_tenant_slowdown_pct", "Tenant engine's slowdown estimate.", TypeGauge,
			func(t TenantState) (float64, bool) { return t.Last.SlowdownPct, t.HasSnap }},
		{"thermostat_tenant_slo_pct", "Tenant slowdown objective.", TypeGauge,
			func(t TenantState) (float64, bool) { return t.Last.SLOPct, t.HasSnap }},
		{"thermostat_tenant_slo_slack_pct", "SLO headroom: objective minus estimated slowdown.", TypeGauge,
			func(t TenantState) (float64, bool) { return t.Last.SLOPct - t.Last.SlowdownPct, t.HasSnap }},
		{"thermostat_tenant_ops_total", "Cumulative tenant accesses at the last arbiter period.", TypeCounter,
			func(t TenantState) (float64, bool) { return float64(t.Last.Ops), t.HasSnap }},
		{"thermostat_tenant_cold_pages", "Pages the tenant engine classifies cold.", TypeGauge,
			func(t TenantState) (float64, bool) { return float64(t.Last.ColdPages), t.HasSnap }},
		{"thermostat_tenant_quarantined_pages", "Tenant pages under chaos quarantine.", TypeGauge,
			func(t TenantState) (float64, bool) { return float64(t.Last.QuarantinedPages), t.HasSnap }},
	}
	for _, m := range tenantFams {
		var samples []Sample
		for _, t := range st.Tenants {
			v, ok := m.value(t)
			if !ok {
				continue
			}
			samples = append(samples, Sample{Labels: []Label{{"tenant", t.Name}}, Value: v})
		}
		add(m.name, m.help, m.typ, samples...)
	}

	// Per-engine placement families from published censuses.
	type perEngine struct {
		name  string
		help  string
		typ   MetricType
		value func(e EngineCensus) float64
	}
	engineFams := []perEngine{
		{"thermostat_engine_periods_total", "Completed engine sampling periods.", TypeCounter,
			func(e EngineCensus) float64 { return float64(e.Census.Stats.Periods) }},
		{"thermostat_engine_sampled_pages_total", "Huge pages profiled by the tracker.", TypeCounter,
			func(e EngineCensus) float64 { return float64(e.Census.Stats.Sampled) }},
		{"thermostat_engine_slowdown_pct", "Engine's estimated slowdown.", TypeGauge,
			func(e EngineCensus) float64 { return e.Census.SlowdownPct }},
		{"thermostat_engine_inflight_pages", "Pages mid-migration (transactional).", TypeGauge,
			func(e EngineCensus) float64 { return float64(e.Census.Inflight) }},
		{"thermostat_engine_demote_failures_total", "Demotion attempts that failed.", TypeCounter,
			func(e EngineCensus) float64 { return float64(e.Census.Stats.DemoteFailures) }},
		{"thermostat_engine_promote_failures_total", "Promotion attempts that failed.", TypeCounter,
			func(e EngineCensus) float64 { return float64(e.Census.Stats.PromoteFailures) }},
	}
	for _, m := range engineFams {
		var samples []Sample
		for _, e := range engines {
			samples = append(samples, Sample{Labels: []Label{{"run", e.Label}}, Value: m.value(e)})
		}
		add(m.name, m.help, m.typ, samples...)
	}
	var classSamples []Sample
	for _, e := range engines {
		var hot, cold, quar int
		for _, pg := range e.Census.Pages {
			switch {
			case pg.Quarantined:
				quar++
			case pg.Cold:
				cold++
			default:
				hot++
			}
		}
		for _, c := range []struct {
			class string
			n     int
		}{{"hot", hot}, {"cold", cold}, {"quarantined", quar}} {
			classSamples = append(classSamples, Sample{
				Labels: []Label{{"run", e.Label}, {"class", c.class}},
				Value:  float64(c.n),
			})
		}
	}
	add("thermostat_engine_pages",
		"Engine classification census by class (hot/cold/quarantined).",
		TypeGauge, classSamples...)

	return fams
}

// WriteMetrics renders the /metrics payload.
func (p *Publisher) WriteMetrics(w io.Writer) error {
	return WriteProm(w, p.Families())
}
