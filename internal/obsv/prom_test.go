package obsv

import (
	"reflect"
	"strings"
	"testing"
)

func TestWritePromRoundTrip(t *testing.T) {
	t.Parallel()
	fams := []Family{
		{Name: "a_total", Help: "a counter", Type: TypeCounter, Samples: []Sample{
			{Value: 42},
		}},
		{Name: "b_bytes", Help: `tricky help with \ backslash`, Type: TypeGauge, Samples: []Sample{
			{Labels: []Label{{"run", "redis/thermostat"}, {"tier", "0"}}, Value: 1.5},
			{Labels: []Label{{"run", "redis/thermostat"}, {"tier", "1"}}, Value: 0},
			{Labels: []Label{{"run", `we"ird\lab` + "\nel"}}, Value: -3},
		}},
		{Name: "empty_family_skipped", Help: "no samples", Type: TypeGauge},
	}
	var sb strings.Builder
	if err := WriteProm(&sb, fams); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if strings.Contains(text, "empty_family_skipped") {
		t.Fatalf("sample-less family emitted:\n%s", text)
	}
	if !strings.Contains(text, `run="we\"ird\\lab\nel"`) {
		t.Fatalf("label escaping wrong:\n%s", text)
	}

	got, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseProm rejected our own output: %v\n%s", err, text)
	}
	want := fams[:2]
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %#v\nwant %#v", got, want)
	}
}

func TestParsePromRejections(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		in   string
		want string // error substring
	}{
		{"sample without HELP/TYPE", "x_total 1\n", "without HELP/TYPE"},
		{"TYPE before HELP", "# TYPE x_total counter\nx_total 1\n", "before its HELP"},
		{"HELP only", "# HELP x_total help\nx_total 1\n", "without HELP/TYPE"},
		{"family with no samples", "# HELP x_total h\n# TYPE x_total counter\n", "no samples"},
		{"duplicate family", "# HELP x h\n# TYPE x gauge\nx 1\n# HELP x h\n", "duplicate family"},
		{"duplicate TYPE", "# HELP x h\n# TYPE x gauge\n# TYPE x gauge\nx 1\n", "duplicate TYPE"},
		{"TYPE after samples", "# HELP x h\n# TYPE x gauge\nx 1\n# HELP y h\n# TYPE y gauge\ny 2\n# TYPE x gauge\n", "duplicate TYPE"},
		{"unsupported type", "# HELP x h\n# TYPE x histogram\nx 1\n", "unsupported metric type"},
		{"bad metric name", "# HELP 9x h\n# TYPE 9x gauge\n9x 1\n", "bad metric name"},
		{"duplicate sample", "# HELP x h\n# TYPE x gauge\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n", "duplicate sample"},
		{"reordered duplicate labels", "# HELP x h\n# TYPE x gauge\nx{a=\"1\",b=\"2\"} 1\nx{b=\"2\",a=\"1\"} 2\n", "duplicate sample"},
		{"bad escape", "# HELP x h\n# TYPE x gauge\nx{a=\"\\t\"} 1\n", "illegal escape"},
		{"unterminated label value", "# HELP x h\n# TYPE x gauge\nx{a=\"1} 1\n", "unterminated"},
		{"unquoted label value", "# HELP x h\n# TYPE x gauge\nx{a=1} 1\n", "not quoted"},
		{"bad label name", "# HELP x h\n# TYPE x gauge\nx{__a=\"1\"} 1\n", "bad label name"},
		{"missing value", "# HELP x h\n# TYPE x gauge\nx \n", "without a value"},
		{"bad value", "# HELP x h\n# TYPE x gauge\nx nope\n", "bad sample value"},
		{"trailing fields", "# HELP x h\n# TYPE x gauge\nx 1 1234567\n", "trailing fields"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := ParseProm(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted invalid input:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParsePromIgnoresCommentsAndBlanks(t *testing.T) {
	t.Parallel()
	in := "# a plain comment\n\n# HELP x h\n# TYPE x counter\n\nx 7\n# trailing comment\n"
	fams, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || fams[0].Samples[0].Value != 7 {
		t.Fatalf("parsed %#v", fams)
	}
}
