package badgertrap

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/fault"
	"thermostat/internal/pagetable"
	"thermostat/internal/tlb"
)

func setup() (*pagetable.Table, *tlb.TLB, *Trap) {
	pt := pagetable.New()
	tl := tlb.New(tlb.DefaultConfig())
	return pt, tl, New(pt, tl, 0)
}

func TestDefaultLatency(t *testing.T) {
	_, _, bt := setup()
	if bt.FaultLatency() != DefaultFaultLatencyNs {
		t.Fatalf("latency = %d", bt.FaultLatency())
	}
}

func TestPoisonRequiresMapped(t *testing.T) {
	_, _, bt := setup()
	if err := bt.Poison(addr.Virt4K(1), 1); err == nil {
		t.Fatal("poison of unmapped should fail")
	}
}

func TestPoisonHugeLeaf(t *testing.T) {
	// §3.5: cold huge pages in slow memory are monitored by poisoning their
	// PMD entry directly, without splitting.
	pt, tl, bt := setup()
	v := addr.Virt2M(1)
	if err := pt.Map2M(v, addr.Phys2M(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := bt.Poison(v, 1); err != nil {
		t.Fatal(err)
	}
	r := pt.Walk(v+12345, false)
	if !r.Poisoned {
		t.Fatal("walk of poisoned huge page should fault")
	}
	lat, err := bt.Handle(fault.Fault{Kind: fault.Poison, Virt: v + 12345, VPID: 1})
	if err != nil || lat != DefaultFaultLatencyNs {
		t.Fatalf("handle: lat=%d err=%v", lat, err)
	}
	// Count is recorded against the 2MB base, for any offset queried.
	if bt.Count(v+999999) != 1 {
		t.Fatalf("count = %d, want 1", bt.Count(v+999999))
	}
	// Transient translation covers the whole huge page.
	if res, ok := tl.Lookup(v+addr.Virt(addr.PageSize2M-1), 1); !ok || res.Level != pagetable.Level2M {
		t.Fatal("transient 2M translation not installed")
	}
	if !bt.IsPoisoned(v) {
		t.Fatal("PMD not re-poisoned")
	}
}

func TestPoisonFlushesTLB(t *testing.T) {
	pt, tl, bt := setup()
	v := addr.Virt4K(5)
	if err := pt.Map4K(v, addr.Phys4K(9), 0); err != nil {
		t.Fatal(err)
	}
	tl.Insert(v, pagetable.Level4K, addr.Phys4K(9), 1)
	if err := bt.Poison(v, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := tl.Lookup(v, 1); ok {
		t.Fatal("TLB entry survived poisoning")
	}
	if !bt.IsPoisoned(v) {
		t.Fatal("IsPoisoned false")
	}
}

func TestHandleCountsAndRepoisons(t *testing.T) {
	pt, tl, bt := setup()
	v := addr.Virt4K(7)
	if err := pt.Map4K(v, addr.Phys4K(3), pagetable.Writable); err != nil {
		t.Fatal(err)
	}
	if err := bt.Poison(v, 2); err != nil {
		t.Fatal(err)
	}
	lat, err := bt.Handle(fault.Fault{Kind: fault.Poison, Virt: v + 100, Write: true, VPID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lat != DefaultFaultLatencyNs {
		t.Fatalf("latency = %d", lat)
	}
	if bt.Count(v) != 1 || bt.TotalFaults() != 1 {
		t.Fatalf("count = %d total = %d", bt.Count(v), bt.TotalFaults())
	}
	// PTE re-poisoned, but the TLB holds a transient valid translation.
	if !bt.IsPoisoned(v) {
		t.Fatal("PTE not re-poisoned")
	}
	if _, ok := tl.Lookup(v, 2); !ok {
		t.Fatal("transient translation not installed")
	}
	// The architectural bits reflect the serviced access.
	e, _, _ := pt.Lookup(v)
	if !e.Flags.Has(pagetable.Accessed | pagetable.Dirty) {
		t.Fatalf("flags = %v", e.Flags)
	}
}

func TestHandleSpuriousFault(t *testing.T) {
	pt, _, bt := setup()
	v := addr.Virt4K(1)
	if _, err := bt.Handle(fault.Fault{Kind: fault.Poison, Virt: v}); err == nil {
		t.Fatal("fault on unmapped page should error")
	}
	if err := pt.Map4K(v, addr.Phys4K(1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := bt.Handle(fault.Fault{Kind: fault.Poison, Virt: v}); err == nil {
		t.Fatal("fault on unpoisoned page should error")
	}
}

func TestUnderEstimationViaTLBResidency(t *testing.T) {
	// After a fault installs the transient translation, accesses that hit
	// the TLB are not counted — the paper's documented under-estimation.
	pt, tl, bt := setup()
	v := addr.Virt4K(11)
	if err := pt.Map4K(v, addr.Phys4K(4), 0); err != nil {
		t.Fatal(err)
	}
	if err := bt.Poison(v, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := bt.Handle(fault.Fault{Kind: fault.Poison, Virt: v, VPID: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulated accesses now hit the TLB: no new faults.
	for i := 0; i < 10; i++ {
		if _, ok := tl.Lookup(v, 1); !ok {
			t.Fatal("expected TLB hit")
		}
	}
	if bt.Count(v) != 1 {
		t.Fatalf("count = %d, want 1 (TLB-resident accesses uncounted)", bt.Count(v))
	}
	// Once the entry is invalidated (eviction analogue), the next walk
	// faults again and the count advances.
	tl.Invalidate(v, 1)
	r := pt.Walk(v, false)
	if !r.Poisoned {
		t.Fatal("walk should trip poison")
	}
	if _, err := bt.Handle(fault.Fault{Kind: fault.Poison, Virt: v, VPID: 1}); err != nil {
		t.Fatal(err)
	}
	if bt.Count(v) != 2 {
		t.Fatalf("count = %d, want 2", bt.Count(v))
	}
}

func TestUnpoisonAndReset(t *testing.T) {
	pt, _, bt := setup()
	v := addr.Virt4K(3)
	if err := pt.Map4K(v, addr.Phys4K(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := bt.Poison(v, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := bt.Handle(fault.Fault{Kind: fault.Poison, Virt: v, VPID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bt.Unpoison(v); err != nil {
		t.Fatal(err)
	}
	if bt.IsPoisoned(v) {
		t.Fatal("still poisoned")
	}
	if bt.Count(v) != 1 {
		t.Fatal("count should survive unpoison")
	}
	bt.ResetCounts()
	if bt.Count(v) != 0 {
		t.Fatal("count survived reset")
	}
	if bt.TotalFaults() != 1 {
		t.Fatal("TotalFaults should be lifetime")
	}
	if err := bt.Unpoison(addr.Virt4K(999)); err == nil {
		t.Fatal("unpoison of unmapped should fail")
	}
}

func TestCountsSnapshotIsCopy(t *testing.T) {
	pt, _, bt := setup()
	v := addr.Virt4K(2)
	if err := pt.Map4K(v, addr.Phys4K(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := bt.Poison(v, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := bt.Handle(fault.Fault{Kind: fault.Poison, Virt: v, VPID: 1}); err != nil {
		t.Fatal(err)
	}
	snap := bt.CountsSnapshot()
	snap[v.Base4K()] = 99
	if bt.Count(v) != 1 {
		t.Fatal("snapshot mutation leaked")
	}
}

func TestRegistryDispatchToTrap(t *testing.T) {
	pt, _, bt := setup()
	v := addr.Virt4K(6)
	if err := pt.Map4K(v, addr.Phys4K(2), 0); err != nil {
		t.Fatal(err)
	}
	if err := bt.Poison(v, 1); err != nil {
		t.Fatal(err)
	}
	reg := fault.NewRegistry()
	reg.Register(fault.Poison, bt)
	lat, err := reg.Dispatch(fault.Fault{Kind: fault.Poison, Virt: v, VPID: 1})
	if err != nil || lat != DefaultFaultLatencyNs {
		t.Fatalf("dispatch: lat=%d err=%v", lat, err)
	}
	if _, err := reg.Dispatch(fault.Fault{Kind: fault.NotPresent, Virt: v}); err == nil {
		t.Fatal("unregistered kind should error")
	}
}
