// Package badgertrap reimplements the BadgerTrap mechanism (Gandhi et al.,
// CAN 2014) the paper uses for page-access counting and slow-memory
// emulation: a kernel extension that intercepts TLB misses by poisoning PTEs
// with a reserved bit.
//
// When a page is sampled for access counting, its PTE is poisoned (reserved
// bit set) and its TLB entry flushed. The next access misses the TLB, the
// hardware walk trips over the poisoned PTE and raises a protection fault,
// and the fault handler: unpoisons the PTE, installs a (transient)
// translation in the TLB, re-poisons the PTE, and counts the event. The TLB
// miss count is Thermostat's proxy for the page's memory access rate.
//
// The same protocol doubles as the paper's slow-memory emulator: the ~1us
// fault latency approximates a slow-memory access, charged on each TLB miss
// to a poisoned page.
package badgertrap

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/fault"
	"thermostat/internal/pagetable"
	"thermostat/internal/stats"
	"thermostat/internal/tlb"
)

// DefaultFaultLatencyNs is the paper's measured BadgerTrap fault cost
// (≈ 1us in their guest kernel).
const DefaultFaultLatencyNs = 1000

// Trap is one BadgerTrap instance bound to an address space (page table) and
// its TLB — the paper installs it inside the guest.
type Trap struct {
	pt  *pagetable.Table
	tl  *tlb.TLB
	lat int64

	// counts records poison faults per leaf page (keyed by the leaf's
	// virtual base address) since the last reset; the engine reads these
	// as per-page access estimates.
	counts map[addr.Virt]uint64

	faults stats.Counter
}

// New builds a trap over the given page table and TLB. faultLatencyNs <= 0
// selects DefaultFaultLatencyNs.
func New(pt *pagetable.Table, tl *tlb.TLB, faultLatencyNs int64) *Trap {
	if faultLatencyNs <= 0 {
		faultLatencyNs = DefaultFaultLatencyNs
	}
	return &Trap{pt: pt, tl: tl, lat: faultLatencyNs, counts: make(map[addr.Virt]uint64)}
}

// FaultLatency returns the per-fault handling latency in nanoseconds.
func (t *Trap) FaultLatency() int64 { return t.lat }

// Poison arms interception on the leaf page containing v: sets the entry's
// reserved bit and flushes the translation so the next access faults. Works
// at either grain — per-4KB-PTE for sampled split pages, per-PMD for whole
// cold huge pages under §3.5 monitoring. Fails if v is unmapped.
func (t *Trap) Poison(v addr.Virt, vpid tlb.VPID) error {
	e, _, ok := t.pt.EntryRef(v)
	if !ok {
		return fmt.Errorf("badgertrap: poison of unmapped %s", v)
	}
	e.Flags |= pagetable.Poisoned
	t.tl.Invalidate(v, vpid)
	return nil
}

// Unpoison disarms interception on the 4KB page containing v. The recorded
// count survives until ResetCounts.
func (t *Trap) Unpoison(v addr.Virt) error {
	if _, ok := t.pt.ClearFlags(v, pagetable.Poisoned); !ok {
		return fmt.Errorf("badgertrap: unpoison of unmapped %s", v)
	}
	return nil
}

// IsPoisoned reports whether the page containing v is currently armed.
func (t *Trap) IsPoisoned(v addr.Virt) bool {
	e, _, ok := t.pt.Lookup(v)
	return ok && e.Flags.Has(pagetable.Poisoned)
}

// Handle services a poison fault: unpoison, install a transient TLB
// translation, re-poison, count. Implements fault.Handler.
//
// Because the PTE is re-poisoned but the TLB now holds a valid translation,
// subsequent accesses to the same page hit the TLB and do not fault until
// the entry is evicted — the paper's documented under-estimation. Conversely
// the fault fires even when the target line is cache-resident — the
// documented over-estimation.
func (t *Trap) Handle(f fault.Fault) (int64, error) {
	e, lvl, ok := t.pt.EntryRef(f.Virt)
	if !ok || !e.Flags.Has(pagetable.Poisoned) {
		return 0, fmt.Errorf("badgertrap: spurious poison fault at %s", f.Virt)
	}
	// The handler unpoisons so the access can complete, marks the
	// architectural bits the walk would have set, installs the translation,
	// and re-poisons. The PTE ends with Poisoned still set plus the new
	// Accessed/Dirty bits, so the unpoison/re-poison pair reduces to a single
	// flag OR on the entry.
	mark := pagetable.Accessed
	if f.Write {
		mark |= pagetable.Dirty
	}
	e.Flags |= mark
	t.tl.Insert(f.Virt, lvl, e.Frame, f.VPID)

	t.counts[leafBase(f.Virt, lvl)]++
	t.faults.Inc()
	return t.lat, nil
}

func leafBase(v addr.Virt, lvl pagetable.Level) addr.Virt {
	if lvl == pagetable.Level2M {
		return v.Base2M()
	}
	return v.Base4K()
}

// Count returns the poison-fault count recorded for the leaf page containing
// v since the last reset. For an address whose mapping has since vanished,
// the 4KB-base count is consulted, then the 2MB base.
func (t *Trap) Count(v addr.Virt) uint64 {
	if _, lvl, ok := t.pt.Lookup(v); ok {
		return t.counts[leafBase(v, lvl)]
	}
	if n, ok := t.counts[v.Base4K()]; ok {
		return n
	}
	return t.counts[v.Base2M()]
}

// CountLeaf returns the poison-fault count recorded for the leaf page whose
// base address is base. Unlike Count it does not consult the page table, so
// base must already be a leaf base address — which is what the engine holds
// for every page it tracks (bases come from Scan or from the split layout).
// For a currently-mapped leaf base, CountLeaf(base) == Count(base).
func (t *Trap) CountLeaf(base addr.Virt) uint64 { return t.counts[base] }

// TotalFaults returns the lifetime number of poison faults handled.
func (t *Trap) TotalFaults() uint64 { return t.faults.Value() }

// CountsSnapshot returns a copy of the per-page fault counts, keyed by leaf
// virtual base address.
func (t *Trap) CountsSnapshot() map[addr.Virt]uint64 {
	out := make(map[addr.Virt]uint64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// ResetCounts clears the per-page counts (start of a new sampling interval).
func (t *Trap) ResetCounts() {
	t.counts = make(map[addr.Virt]uint64)
}

// ForgetRange drops the recorded counts for every leaf page in r. Called
// when an address range is unmapped for good (tenant departure), so the
// count map does not accumulate entries for dead mappings.
func (t *Trap) ForgetRange(r addr.Range) {
	for k := range t.counts {
		if r.Contains(k) {
			delete(t.counts, k)
		}
	}
}

// StateBytes estimates the trap's footprint-dependent state: the per-page
// fault-count map. Only faulted (i.e. sampled or demoted) pages have
// entries, so this scales with monitoring activity, not with footprint.
func (t *Trap) StateBytes() uint64 {
	return uint64(len(t.counts)) * 24
}
