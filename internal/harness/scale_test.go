package harness

import (
	"encoding/json"
	"reflect"
	"testing"

	"thermostat/internal/workload"
)

// shardProfile is the quick profile the determinism and gate tests run
// under: small simulated duration, Div=1 so the footprint override is taken
// literally, sparse tables on.
func shardProfile() Scale {
	return Scale{
		Name: "shard-test", Div: 1, TimeDilate: 8,
		PeriodNs: 500e6, DurationNs: 4e9, WarmupNs: 1e9, Seed: 1,
		Sparse: true,
	}
}

// TestShardWorkersIdentical pins the sharding determinism contract: the
// same run at shard-workers 0 (serial path), 1, and 8 must produce
// reflect.DeepEqual results and byte-identical JSON exports — sharding is
// a wall-clock knob, never a semantics knob.
func TestShardWorkersIdentical(t *testing.T) {
	spec := workload.ScaleSynthetic().WithFootprint(1 << 30)
	var ref *Outcome
	var refJSON []byte
	for _, w := range []int{0, 1, 8} {
		sc := shardProfile()
		sc.ShardWorkers = w
		out, err := RunThermostat(spec, sc, 3)
		if err != nil {
			t.Fatalf("shard-workers %d: %v", w, err)
		}
		js, err := json.Marshal(out.Result)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refJSON = out, js
			continue
		}
		if !reflect.DeepEqual(ref.Result, out.Result) {
			t.Fatalf("shard-workers %d diverged from serial run result", w)
		}
		if !reflect.DeepEqual(ref.Engine.Stats(), out.Engine.Stats()) {
			t.Fatalf("shard-workers %d diverged in engine stats", w)
		}
		if string(refJSON) != string(js) {
			t.Fatalf("shard-workers %d JSON export not byte-identical", w)
		}
	}
}

// TestShardWorkersIdenticalDense re-pins the same contract on a dense
// table, where shard windows partition plain leaf sequences.
func TestShardWorkersIdenticalDense(t *testing.T) {
	spec := workload.ScaleSynthetic().WithFootprint(1 << 30)
	sc := shardProfile()
	sc.Sparse = false
	serial, err := RunThermostat(spec, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	sc.ShardWorkers = 8
	sharded, err := RunThermostat(spec, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Result, sharded.Result) {
		t.Fatal("dense sharded run diverged from serial")
	}
}

// TestScaleStateShrinks is the short-mode gate: growing the footprint
// 1 GB -> 16 GB must shrink sparse state bytes per simulated GB (the
// sublinearity claim), and sparse state must undercut the dense table's at
// equal footprint.
func TestScaleStateShrinks(t *testing.T) {
	sc := ScaleBenchProfile()
	sc.DurationNs, sc.WarmupNs = 4e9, 1e9
	oneGB, err := RunScalePoint(sc, 1<<30, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	sixteenGB, err := RunScalePoint(sc, 16<<30, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sixteenGB.StatePerGB >= oneGB.StatePerGB {
		t.Fatalf("state bytes/GB did not shrink: 1GB=%.0f 16GB=%.0f",
			oneGB.StatePerGB, sixteenGB.StatePerGB)
	}
	dense, err := RunScalePoint(sc, 1<<30, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if oneGB.StateBytes*10 >= dense.StateBytes {
		t.Fatalf("sparse state %d not under 10%% of dense %d at 1GB",
			oneGB.StateBytes, dense.StateBytes)
	}
}

// TestScaleSweepGate runs a miniature sweep end-to-end through the same
// gate predicate cmd/repro applies to the committed numbers.
func TestScaleSweepGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	sc := ScaleBenchProfile()
	sc.DurationNs, sc.WarmupNs = 4e9, 1e9
	points, err := ScaleSweep(sc, []uint64{1 << 30, 4 << 30, 128 << 30}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 128 GB is beyond DenseMaxFootprint only in the real sweep; here every
	// dense point is measured (128 GB <= 64 GB is false — so extrapolated).
	var extrapolated bool
	for _, p := range points {
		if p.Extrapolated {
			extrapolated = true
			if p.Sparse {
				t.Fatal("sparse point marked extrapolated")
			}
		}
	}
	if !extrapolated {
		t.Fatal("no extrapolated dense point at 128 GB")
	}
	if err := CheckScaleGate(points, 0.10, 2.0); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkScalePoint keeps the sweep cell benchmarkable from go test
// -bench (the CI bench-compile smoke target).
func BenchmarkScalePoint(b *testing.B) {
	sc := ScaleBenchProfile()
	sc.DurationNs, sc.WarmupNs = 2e9, 500e6
	for i := 0; i < b.N; i++ {
		if _, err := RunScalePoint(sc, 1<<30, true, 1); err != nil {
			b.Fatal(err)
		}
	}
}
