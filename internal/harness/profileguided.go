package harness

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/core"
	"thermostat/internal/pool"
	"thermostat/internal/report"
	"thermostat/internal/sim"
	"thermostat/internal/workload"
)

// staticPlacement demotes a fixed page set at attach time and never adapts —
// the X-Mem-style profile-guided flow of §7: an offline profiling run
// decides placement, the production run executes it.
type staticPlacement struct {
	interval int64
	plan     []addr.Virt
	placed   int
	// missing counts plan pages that did not exist at placement time —
	// the profiling run saw allocations (growth) the production run has
	// not made yet, one of the representativeness problems §7 raises.
	missing int
}

func (p *staticPlacement) Name() string      { return "profile-guided" }
func (p *staticPlacement) IntervalNs() int64 { return p.interval }

func (p *staticPlacement) Attach(m *sim.Machine) error {
	if p.interval <= 0 {
		return fmt.Errorf("harness: staticPlacement needs an interval")
	}
	for _, base := range p.plan {
		if _, _, ok := m.PageTable().Lookup(base); !ok {
			p.missing++
			continue
		}
		if _, err := m.Demote(base); err != nil {
			return fmt.Errorf("harness: static demotion of %s: %w", base, err)
		}
		p.placed++
	}
	return nil
}

func (p *staticPlacement) Tick(*sim.Machine, int64) error { return nil }

func (p *staticPlacement) Footprint(m *sim.Machine) sim.Footprint {
	return sim.ScanFootprint(m, nil)
}

// RunProfileGuided reproduces the profiling-based placement flow the paper
// contrasts itself with (§7, X-Mem): run the application once with the
// simulator's ground-truth page access counting (standing in for a Pin
// trace), pick the coldest pages whose aggregate rate fits the same budget
// Thermostat uses, then run production with that static placement.
//
// The profiling run sees only the first third of the execution, so
// workloads whose behaviour changes (growth, hot-set drift) expose the
// approach's weakness — no representative profile, no adaptation.
func RunProfileGuided(spec workload.Spec, sc Scale, slowdownPct float64) (*Outcome, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// Profiling run.
	mp, err := sim.New(sc.MachineConfig(spec, true))
	if err != nil {
		return nil, err
	}
	mp.EnablePageCounts()
	appP, err := sc.NewApp(spec, sc.Seed)
	if err != nil {
		return nil, err
	}
	profDur := sc.DurationNs / 3
	if _, err := sim.Run(mp, appP, sim.NullPolicy{Interval: sc.PeriodNs}, sim.RunConfig{
		DurationNs: profDur, WindowNs: sc.PeriodNs,
	}); err != nil {
		return nil, fmt.Errorf("harness: profiling run: %w", err)
	}
	counts := mp.PageCounts()
	profSec := float64(profDur) / 1e9

	// Build per-huge-page estimates over everything mapped at profile end.
	var ests []core.Estimate
	for _, reg := range appP.Regions() {
		reg.Each2M(func(base addr.Virt) {
			ests = append(ests, core.Estimate{
				Base: base,
				Rate: float64(counts[base]) / profSec,
			})
		})
	}
	g, err := sc.Group(slowdownPct)
	if err != nil {
		return nil, err
	}
	plan := core.SelectColdSet(ests, g.Params().TargetSlowAccessRate())

	// Production run with static placement.
	m, err := sim.New(sc.MachineConfig(spec, true))
	if err != nil {
		return nil, err
	}
	app, err := sc.NewApp(spec, sc.Seed)
	if err != nil {
		return nil, err
	}
	pol := &staticPlacement{interval: sc.PeriodNs, plan: plan}
	res, err := sim.Run(m, app, pol, sim.RunConfig{
		DurationNs: sc.DurationNs, WarmupNs: sc.WarmupNs, WindowNs: sc.PeriodNs,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: profile-guided run: %w", err)
	}
	return &Outcome{Spec: spec, Scale: sc, Machine: m, App: app, Result: res}, nil
}

// BaselineRow is one policy's outcome in the baseline comparison.
type BaselineRow struct {
	Policy       string
	ColdFraction float64
	Slowdown     float64
}

// CompareBaselines runs one application under every placement approach the
// paper discusses: all-DRAM, X-Mem-style profile-guided, kstaled-style
// idle-demote, and Thermostat.
func CompareBaselines(spec workload.Spec, opt Options) ([]BaselineRow, *report.Table, error) {
	opt = opt.withDefaults()
	sc := opt.Scale

	// The four arms are independent runs (profile-guided bundles its own
	// profiling pass); fan them out and assemble rows after the merge.
	outs, err := pool.Map(opt.Workers, []pool.Task[*Outcome]{
		{Label: "baselines/" + spec.Name + "/all-dram", Run: func() (*Outcome, error) {
			return RunBaseline(spec, sc)
		}},
		{Label: "baselines/" + spec.Name + "/profile-guided", Run: func() (*Outcome, error) {
			return RunProfileGuided(spec, sc, opt.SlowdownPct)
		}},
		// The paper's naive baseline: place whatever looked idle, with no
		// correction mechanism and no way to bound the resulting slowdown.
		{Label: "baselines/" + spec.Name + "/idle-demote", Run: func() (*Outcome, error) {
			return RunPolicy(spec, sc, &core.IdleDemote{
				Interval: sc.PeriodNs, IdleScans: 4, NoPromote: true,
			})
		}},
		{Label: "baselines/" + spec.Name + "/thermostat", Run: func() (*Outcome, error) {
			return RunThermostat(spec, sc, opt.SlowdownPct)
		}},
	})
	if err != nil {
		return nil, nil, err
	}
	base, pg, idle, th := outs[0], outs[1], outs[2], outs[3]
	rows := []BaselineRow{
		{Policy: "all-dram", ColdFraction: 0, Slowdown: 0},
		{
			Policy:       "profile-guided (X-Mem-like)",
			ColdFraction: pg.Result.MeanColdFraction(sc.WarmupNs),
			Slowdown:     sim.Slowdown(base.Result, pg.Result),
		},
		{
			Policy:       "idle-demote (kstaled-like)",
			ColdFraction: idle.Result.MeanColdFraction(sc.WarmupNs),
			Slowdown:     sim.Slowdown(base.Result, idle.Result),
		},
		{
			Policy:       "thermostat",
			ColdFraction: th.Result.MeanColdFraction(sc.WarmupNs),
			Slowdown:     sim.Slowdown(base.Result, th.Result),
		},
	}

	t := report.NewTable("Placement policy comparison ("+spec.Name+")",
		"policy", "cold_fraction_pct", "slowdown_pct")
	for _, r := range rows {
		t.AddF(r.Policy, r.ColdFraction*100, r.Slowdown*100)
	}
	return rows, t, nil
}
