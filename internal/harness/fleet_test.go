package harness

import (
	"bytes"
	"reflect"
	"testing"

	"thermostat/internal/chaos"

	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

// TestFleetSingleTenantMatchesRunComposed is the fleet layer's differential
// anchor: one tenant holding the full DRAM pool with no churn must replay
// the solo RunComposed run exactly — identical engine counters, identical
// RunResult, byte-identical trace and metrics exports. The arbiter runs
// every period but, with nothing to redistribute, must leave no trace.
func TestFleetSingleTenantMatchesRunComposed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	spec, _ := workload.ByName("redis")
	sc := matrixScale()

	soloCol := telemetry.NewCollector()
	solo, err := RunComposedWith(spec, sc, "poison", "threshold", 3,
		func(cfg *sim.Config) { cfg.Recorder = soloCol })
	if err != nil {
		t.Fatal(err)
	}

	ftel := &TelemetryOptions{Dir: t.TempDir()}
	fo, err := FleetRun(FleetOptions{
		Scale: sc,
		Tenants: []FleetTenant{{
			Name: "solo", Spec: spec, SLOPct: 3,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-run with telemetry for the export comparison; the no-telemetry
	// run above guards against recorder-dependent behavior creeping in.
	fot, err := FleetRun(FleetOptions{
		Scale: sc,
		Tenants: []FleetTenant{{
			Name: "solo", Spec: spec, SLOPct: 3,
		}},
		Telemetry: ftel,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, out := range []*FleetOutcome{fo, fot} {
		if got, want := out.Tenants[0].Engine.Stats(), solo.Engine.Stats(); got != want {
			t.Fatalf("fleet tenant stats diverged from solo run:\n got %+v\nwant %+v", got, want)
		}
		soloRes, fleetRes := *solo.Result, *out.Result.Global
		if fleetRes.PolicyName != "fleet" || soloRes.PolicyName != "poison+threshold" {
			t.Fatalf("unexpected policy names %q / %q", fleetRes.PolicyName, soloRes.PolicyName)
		}
		soloRes.PolicyName, fleetRes.PolicyName = "", ""
		soloRes.AppName, fleetRes.AppName = "", ""
		if !reflect.DeepEqual(soloRes, fleetRes) {
			t.Fatalf("run results diverged:\n got %+v\nwant %+v", fleetRes, soloRes)
		}
		// The arbiter must have run (one round per period) yet granted the
		// full pool to the lone tenant every time.
		if out.Result.Periods == 0 {
			t.Fatal("arbiter never ran")
		}
		for _, s := range out.Result.Series {
			if s.GrantBytes != out.Result.PoolBytes {
				t.Fatalf("period %d: lone tenant granted %d of pool %d",
					s.Epoch, s.GrantBytes, out.Result.PoolBytes)
			}
		}
	}

	var soloTrace, fleetTrace, soloMetrics, fleetMetrics bytes.Buffer
	if err := soloCol.WriteChromeTrace(&soloTrace); err != nil {
		t.Fatal(err)
	}
	if err := fot.Telemetry.WriteChromeTrace(&fleetTrace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(soloTrace.Bytes(), fleetTrace.Bytes()) {
		t.Fatal("trace streams diverged between solo run and single-tenant fleet")
	}
	if err := soloCol.WriteJSONL(&soloMetrics); err != nil {
		t.Fatal(err)
	}
	if err := fot.Telemetry.WriteJSONL(&fleetMetrics); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(soloMetrics.Bytes(), fleetMetrics.Bytes()) {
		t.Fatal("metric streams diverged between solo run and single-tenant fleet")
	}
}

// fleetNightScale shrinks the night scenario to unit-test size.
func fleetNightScale() Scale {
	sc := Tiny()
	sc.DurationNs = 6_000_000_000
	sc.WarmupNs = 1_000_000_000
	return sc
}

// TestFleetNightScenario runs the full churn scenario at tiny scale: the
// batch tenant must depart, the canary must be admitted, every resident
// tenant must make progress, and the accounting must never oversubscribe
// the pool.
func TestFleetNightScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	res, err := FleetNight(Options{Scale: fleetNightScale(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Outcome.Result
	byName := map[string]fleetTenantRes{}
	for _, tr := range r.Tenants {
		byName[tr.Name] = fleetTenantRes{tr.Ops, tr.DepartedNs, tr.ArrivedNs, tr.Rejected}
	}
	if tr := byName["analytics-batch"]; tr.departed == 0 {
		t.Error("analytics-batch never departed")
	}
	if tr := byName["search-canary"]; tr.rejected {
		t.Error("search-canary was rejected — pool sizing should admit it")
	} else if tr.arrived == 0 {
		t.Error("search-canary never arrived")
	}
	for _, tr := range r.Tenants {
		if !tr.Rejected && tr.Ops == 0 {
			t.Errorf("tenant %s made no progress", tr.Name)
		}
	}
	// Grants must respect the arbiter's invariants in every recorded
	// period: per-period sums within the pool, every grant at or above
	// its floor (floors are 10% of footprint estimate).
	perPeriod := map[uint64]uint64{}
	for _, s := range r.Series {
		perPeriod[s.Epoch] += s.GrantBytes
	}
	for ep, sum := range perPeriod {
		if sum > r.PoolBytes {
			t.Errorf("period %d: grants %d oversubscribe pool %d", ep, sum, r.PoolBytes)
		}
	}
	if res.SavingsPct <= 0 {
		t.Errorf("night scenario reported no DRAM saving (%.2f%%)", res.SavingsPct)
	}
	if _, err := res.TenantCSV(); err != nil {
		t.Fatal(err)
	}
}

type fleetTenantRes struct {
	ops      uint64
	departed int64
	arrived  int64
	rejected bool
}

// TestFleetDepartureLeavesNoResidue: after a tenant departs, none of its
// pages, TLB translations, or trap state may survive on the machine, and
// its cgroup accounting must read zero — the "departure leaks nothing"
// property, checked on the night scenario's departing batch tenant.
func TestFleetDepartureLeavesNoResidue(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	sc := fleetNightScale()
	fo, err := FleetRun(FleetOptions{
		Scale: sc,
		Tenants: []FleetTenant{
			{Name: "stayer", Spec: workload.WebSearch(), SLOPct: 5},
			{Name: "leaver", Spec: workload.Redis(), SLOPct: 10,
				DepartNs: sc.DurationNs / 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var leaver int
	for i, tr := range fo.Result.Tenants {
		if tr.Name == "leaver" {
			leaver = i
			if tr.DepartedNs == 0 {
				t.Fatal("leaver never departed")
			}
		}
	}
	ten := fo.Tenants[leaver]
	if got := ten.Group.Usage(); got != 0 {
		t.Errorf("departed tenant still charged %d bytes", got)
	}
	m := fo.Machine
	if got := sim.ScanFootprint(m, ten.Regions()).Total(); got != 0 {
		t.Fatalf("departed tenant still maps %d bytes", got)
	}
	// No trap state (fault counts or poisoned translations) may survive in
	// the departed ranges; the stayer may legitimately hold its own.
	for v := range m.Trap().CountsSnapshot() {
		for _, reg := range ten.Regions() {
			if reg.Contains(v) {
				t.Errorf("departed tenant keeps trap state at %v", v)
			}
		}
	}
}

// TestFleetChaosIsolation crosses the fleet with the fault injector. With
// every MigrateCopy attempt faulting (half permanently), each tenant's
// engine must quarantine pages — but only pages inside that tenant's own
// ranges: one tenant's faults never bench another tenant's memory. And the
// rate-0 control must stay bit-identical to a run with no injector at all.
func TestFleetChaosIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	sc := fleetNightScale()
	tenants := []FleetTenant{
		{Name: "left", Spec: workload.Redis(), SLOPct: 3},
		{Name: "right", Spec: workload.WebSearch(), SLOPct: 6},
	}
	run := func(mutate func(*sim.Config)) *FleetOutcome {
		fo, err := FleetRun(FleetOptions{
			Scale: sc, Tenants: tenants,
			Telemetry:    &TelemetryOptions{Dir: t.TempDir()},
			ConfigMutate: mutate,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fo
	}

	plain := run(nil)
	zero := run(func(cfg *sim.Config) {
		cfg.Chaos = chaos.Config{Seed: 7, Rate: 0, PermanentFraction: 1}
	})
	if !reflect.DeepEqual(plain.Result, zero.Result) {
		t.Error("rate-0 chaos config perturbed the fleet result")
	}
	var pt, zt bytes.Buffer
	if err := plain.Telemetry.WriteChromeTrace(&pt); err != nil {
		t.Fatal(err)
	}
	if err := zero.Telemetry.WriteChromeTrace(&zt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt.Bytes(), zt.Bytes()) {
		t.Error("rate-0 chaos config perturbed the fleet trace")
	}

	faulty := run(func(cfg *sim.Config) {
		cfg.Chaos = chaos.Config{
			Seed:              11,
			SiteRates:         map[chaos.Site]float64{chaos.MigrateCopy: 1},
			PermanentFraction: 0.5,
		}
	})
	var quarantined int
	for i, ten := range faulty.Tenants {
		bases := ten.Engine.QuarantinedBases()
		quarantined += len(bases)
		for _, base := range bases {
			owned := false
			for _, reg := range ten.Regions() {
				if reg.Contains(base) {
					owned = true
					break
				}
			}
			if !owned {
				t.Errorf("tenant %s quarantined foreign page %v", ten.Name, base)
			}
			for j, other := range faulty.Tenants {
				if i == j {
					continue
				}
				for _, reg := range other.Regions() {
					if reg.Contains(base) {
						t.Errorf("tenant %s quarantined page %v inside tenant %s",
							ten.Name, base, other.Name)
					}
				}
			}
		}
	}
	if quarantined == 0 {
		t.Error("no tenant quarantined any page under total migration failure")
	}
}
