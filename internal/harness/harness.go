// Package harness assembles scaled, reproducible experiments: it builds
// machines whose TLB/LLC reach scales with the footprint divisor, applies
// the time-dilation transform that keeps classification fractions and
// slowdowns invariant while shrinking simulated access counts, and provides
// the runners each table and figure regeneration uses.
//
// Scaling model (see DESIGN.md): with footprint divisor D and time dilation
// F, footprints, TLB entries and LLC capacity divide by D (preserving the
// footprint:reach ratio that drives TLB-miss behaviour), while slow-memory
// latency multiplies by F and per-op compute multiplies by F (preserving
// slowdown percentages and the cold-set budget fractions: the target rate
// x/(100·ts) divides by F exactly as the workload's absolute access rates
// do). Reported rates convert back to paper units by multiplying by F.
package harness

import (
	"fmt"

	"thermostat/internal/cgroup"
	"thermostat/internal/chaos"
	"thermostat/internal/core"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

// Scale fixes the size/time transform and run schedule for an experiment.
type Scale struct {
	// Name labels the profile in reports.
	Name string
	// Div divides footprints, TLB entries, and LLC capacity.
	Div uint64
	// TimeDilate is F: multiplies slow-memory latency and per-op compute.
	TimeDilate int64
	// PeriodNs is the (compressed) scan interval.
	PeriodNs int64
	// DurationNs and WarmupNs schedule each run.
	DurationNs int64
	WarmupNs   int64
	// Seed drives all randomness.
	Seed uint64
	// Sparse enables region-grain (span) page state on the machines the
	// profile builds. Off by default: dense tables are the pinned-golden
	// configuration.
	Sparse bool
	// ShardWorkers > 1 shards the engine's tracker scans across that many
	// contiguous region-sequence chunks collected on as many goroutines.
	// Any value — including the 0 serial default — produces bit-identical
	// runs (the shard merge is order-preserving and all rng draws happen
	// after it), so this is purely a wall-clock knob.
	ShardWorkers int
}

// Validate rejects degenerate profiles.
func (s Scale) Validate() error {
	if s.Div == 0 || s.TimeDilate <= 0 || s.PeriodNs <= 0 || s.DurationNs <= 0 {
		return fmt.Errorf("harness: invalid scale %+v", s)
	}
	if s.WarmupNs < 0 || s.WarmupNs >= s.DurationNs {
		return fmt.Errorf("harness: warmup %d outside run %d", s.WarmupNs, s.DurationNs)
	}
	if s.ShardWorkers < 0 {
		return fmt.Errorf("harness: negative shard workers %d", s.ShardWorkers)
	}
	return nil
}

// applyEngineScale applies the profile's engine-level knobs (intra-run scan
// sharding) to a freshly composed engine.
func (s Scale) applyEngineScale(eng *core.Engine) {
	if s.ShardWorkers > 1 {
		eng.SetSharding(s.ShardWorkers, s.ShardWorkers)
	}
}

// Repro is the full-fidelity profile cmd/repro uses: 1/16 footprints, 4x
// time dilation, 2s scan intervals over a 100s run (the equivalent of a 30s
// interval over a 1500s run at paper scale).
func Repro() Scale {
	return Scale{
		Name: "repro", Div: 16, TimeDilate: 4,
		PeriodNs: 2e9, DurationNs: 100e9, WarmupNs: 20e9, Seed: 1,
	}
}

// Bench is the profile bench_test.go uses: smaller, faster, same shapes.
func Bench() Scale {
	return Scale{
		Name: "bench", Div: 64, TimeDilate: 8,
		PeriodNs: 1e9, DurationNs: 30e9, WarmupNs: 6e9, Seed: 1,
	}
}

// Tiny is the unit-test profile.
func Tiny() Scale {
	return Scale{
		Name: "tiny", Div: 256, TimeDilate: 8,
		PeriodNs: 400e6, DurationNs: 8e9, WarmupNs: 2e9, Seed: 1,
	}
}

// PaperRate converts a measured rate (per second of dilated time) back to
// paper units.
func (s Scale) PaperRate(measured float64) float64 {
	return measured * float64(s.TimeDilate)
}

// PeriodCompression is the ratio between the paper's 30s scan interval and
// this profile's, used to convert migration bandwidths to paper units.
func (s Scale) PeriodCompression() float64 {
	return 30e9 / float64(s.PeriodNs)
}

// MachineConfig builds a machine sized for the spec's footprint under this
// scale. fourKHost selects 4KB host mappings (the THP-off configuration).
func (s Scale) MachineConfig(spec workload.Spec, hugeHost bool) sim.Config {
	var footprint uint64
	for _, seg := range spec.Segments {
		footprint += seg.Bytes
	}
	if g := spec.Growth; g != nil {
		footprint += g.ChunkBytes * uint64(g.MaxChunks)
	}
	footprint /= s.Div
	// Headroom for rounding each segment up to a huge page.
	headroom := uint64(len(spec.Segments)+8) * (2 << 20)
	fast := footprint + footprint/4 + headroom
	slow := footprint + headroom

	cfg := sim.DefaultConfig(fast, slow)
	cfg.TLB.L1Entries = intMax(2, int(64/s.Div))
	cfg.TLB.L2Entries = intMax(8, int(1024/s.Div))
	cfg.LLC.SizeBytes = maxU64(1<<20, (45<<20)/s.Div)
	cfg.FaultLatencyNs = 1000 * s.TimeDilate
	cfg.SlowSpec.ReadLatency = 1000 * s.TimeDilate
	cfg.SlowSpec.WriteLatency = 1000 * s.TimeDilate
	cfg.VM.HostHugePages = hugeHost
	cfg.Sparse = s.Sparse
	return cfg
}

func intMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// NewApp instantiates spec under this scale: footprint divided, compute
// dilated, growth periods compressed like the scan interval.
func (s Scale) NewApp(spec workload.Spec, seed uint64) (*workload.App, error) {
	spec.ComputeNs *= s.TimeDilate
	if spec.Growth != nil {
		g := *spec.Growth
		g.PeriodNs = int64(float64(g.PeriodNs) / s.PeriodCompression())
		spec.Growth = &g
	}
	// Rescale sweep dwells so background-revisit periods survive the
	// footprint divisor, and dilate picker rotation periods with the
	// workload's rates.
	spec = spec.WithDwell(int(s.Div))
	spec = spec.WithTimeDilation(s.TimeDilate)
	return workload.NewApp(spec, s.Div, seed)
}

// Group builds the Thermostat cgroup for this scale and slowdown target.
func (s Scale) Group(slowdownPct float64) (*cgroup.Group, error) {
	p := cgroup.Default()
	p.TolerableSlowdownPct = slowdownPct
	p.SamplePeriodNs = s.PeriodNs
	p.SlowMemLatencyNs = 1000 * s.TimeDilate
	return cgroup.NewGroup("thermostat", p)
}

// Outcome bundles one policy run with everything analyses need.
type Outcome struct {
	Spec    workload.Spec
	Scale   Scale
	Machine *sim.Machine
	App     *workload.App
	Engine  *core.Engine // nil for non-Thermostat policies
	Result  *sim.RunResult
	// Telemetry is the run's collector when the experiment enabled
	// telemetry (nil otherwise).
	Telemetry *telemetry.Collector
	// Faults summarizes chaos fault handling over the whole run: all
	// zeros unless the machine config installed an injector. Thermostat
	// runs report through the engine (adding retry/quarantine counts);
	// other policies report the machine-level injector view.
	Faults chaos.Report
}

// RunThermostat runs spec under Thermostat at the given slowdown target.
func RunThermostat(spec workload.Spec, sc Scale, slowdownPct float64) (*Outcome, error) {
	return RunThermostatWith(spec, sc, slowdownPct, nil, nil)
}

// RunThermostatWith is RunThermostat with hooks to mutate the machine
// config and group parameters before the run — the ablation entry point.
func RunThermostatWith(spec workload.Spec, sc Scale, slowdownPct float64,
	cfgMutate func(*sim.Config), engMutate func(*cgroup.Group, *core.Engine)) (*Outcome, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg := sc.MachineConfig(spec, true)
	if cfgMutate != nil {
		cfgMutate(&cfg)
	}
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	app, err := sc.NewApp(spec, sc.Seed)
	if err != nil {
		return nil, err
	}
	g, err := sc.Group(slowdownPct)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(g, sc.Seed+0x7e)
	sc.applyEngineScale(eng)
	if engMutate != nil {
		engMutate(g, eng)
	}
	res, err := sim.Run(m, app, eng, sim.RunConfig{
		DurationNs: sc.DurationNs, WarmupNs: sc.WarmupNs, WindowNs: sc.PeriodNs,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s under thermostat: %w", spec.Name, err)
	}
	return &Outcome{Spec: spec, Scale: sc, Machine: m, App: app, Engine: eng,
		Result: res, Faults: eng.FaultReport()}, nil
}

// RunComposed runs spec under an arbitrary tracker × policy composition
// (see core.TrackerNames / core.PolicyNames) at the given slowdown target.
func RunComposed(spec workload.Spec, sc Scale, tracker, policy string, slowdownPct float64) (*Outcome, error) {
	return RunComposedWith(spec, sc, tracker, policy, slowdownPct, nil)
}

// RunComposedWith is RunComposed with a machine-config hook.
func RunComposedWith(spec workload.Spec, sc Scale, tracker, policy string, slowdownPct float64,
	cfgMutate func(*sim.Config)) (*Outcome, error) {
	return RunComposedHooked(spec, sc, tracker, policy, slowdownPct, cfgMutate, nil)
}

// RunComposedHooked is RunComposedWith with an additional engine hook,
// called after composition and before the run (e.g. to enable the
// observability census).
func RunComposedHooked(spec workload.Spec, sc Scale, tracker, policy string, slowdownPct float64,
	cfgMutate func(*sim.Config), engMutate func(*cgroup.Group, *core.Engine)) (*Outcome, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg := sc.MachineConfig(spec, true)
	if cfgMutate != nil {
		cfgMutate(&cfg)
	}
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	app, err := sc.NewApp(spec, sc.Seed)
	if err != nil {
		return nil, err
	}
	g, err := sc.Group(slowdownPct)
	if err != nil {
		return nil, err
	}
	eng, err := core.ComposeByName(g, tracker, policy, sc.Seed+0x7e)
	if err != nil {
		return nil, err
	}
	sc.applyEngineScale(eng)
	if engMutate != nil {
		engMutate(g, eng)
	}
	res, err := sim.Run(m, app, eng, sim.RunConfig{
		DurationNs: sc.DurationNs, WarmupNs: sc.WarmupNs, WindowNs: sc.PeriodNs,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s under %s: %w", spec.Name, eng.Name(), err)
	}
	return &Outcome{Spec: spec, Scale: sc, Machine: m, App: app, Engine: eng,
		Result: res, Faults: eng.FaultReport()}, nil
}

// RunBaseline runs spec with everything in fast memory (all-DRAM).
func RunBaseline(spec workload.Spec, sc Scale) (*Outcome, error) {
	return runWithPolicy(spec, sc, sim.NullPolicy{Interval: sc.PeriodNs}, true, nil)
}

// RunBaselineWith is RunBaseline with a hook to mutate the machine config
// first (e.g. to attach a telemetry recorder).
func RunBaselineWith(spec workload.Spec, sc Scale, cfgMutate func(*sim.Config)) (*Outcome, error) {
	return runWithPolicy(spec, sc, sim.NullPolicy{Interval: sc.PeriodNs}, true, cfgMutate)
}

// RunPolicy runs spec under an arbitrary policy (e.g. core.IdleDemote).
func RunPolicy(spec workload.Spec, sc Scale, pol sim.Policy) (*Outcome, error) {
	return runWithPolicy(spec, sc, pol, true, nil)
}

// RunPolicyWith is RunPolicy with a machine-config hook.
func RunPolicyWith(spec workload.Spec, sc Scale, pol sim.Policy, cfgMutate func(*sim.Config)) (*Outcome, error) {
	return runWithPolicy(spec, sc, pol, true, cfgMutate)
}

func runWithPolicy(spec workload.Spec, sc Scale, pol sim.Policy, hugeHost bool, cfgMutate func(*sim.Config)) (*Outcome, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg := sc.MachineConfig(spec, hugeHost)
	if cfgMutate != nil {
		cfgMutate(&cfg)
	}
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	app, err := sc.NewApp(spec, sc.Seed)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(m, app, pol, sim.RunConfig{
		DurationNs: sc.DurationNs, WarmupNs: sc.WarmupNs, WindowNs: sc.PeriodNs,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s under %s: %w", spec.Name, pol.Name(), err)
	}
	return &Outcome{Spec: spec, Scale: sc, Machine: m, App: app,
		Result: res, Faults: m.FaultReport()}, nil
}

// RunPageMode runs spec with no placement policy and the given page-size
// configuration at both guest and host — the Table 1 comparison arms.
func RunPageMode(spec workload.Spec, sc Scale, huge bool) (*Outcome, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	m, err := sim.New(sc.MachineConfig(spec, huge))
	if err != nil {
		return nil, err
	}
	app, err := sc.NewApp(spec, sc.Seed)
	if err != nil {
		return nil, err
	}
	if !huge {
		app.DisableHugePages()
	}
	res, err := sim.Run(m, app, sim.NullPolicy{Interval: sc.PeriodNs}, sim.RunConfig{
		DurationNs: sc.DurationNs, WarmupNs: sc.WarmupNs, WindowNs: sc.PeriodNs,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s page-mode: %w", spec.Name, err)
	}
	return &Outcome{Spec: spec, Scale: sc, Machine: m, App: app,
		Result: res, Faults: m.FaultReport()}, nil
}
