package harness

import (
	"strings"
	"testing"

	"thermostat/internal/workload"
)

func TestScaleValidate(t *testing.T) {
	t.Parallel()
	for _, sc := range []Scale{Repro(), Bench(), Tiny()} {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
	}
	bad := Repro()
	bad.Div = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero Div accepted")
	}
	bad = Repro()
	bad.WarmupNs = bad.DurationNs
	if err := bad.Validate(); err == nil {
		t.Error("warmup >= duration accepted")
	}
}

func TestScaleConversions(t *testing.T) {
	t.Parallel()
	sc := Repro() // F=4, period 2s
	if got := sc.PaperRate(7500); got != 30000 {
		t.Fatalf("PaperRate = %v", got)
	}
	if got := sc.PeriodCompression(); got != 15 {
		t.Fatalf("PeriodCompression = %v", got)
	}
}

func TestMachineConfigScaling(t *testing.T) {
	t.Parallel()
	sc := Repro()
	cfg := sc.MachineConfig(workload.Redis(), true)
	if cfg.TLB.L1Entries != 4 || cfg.TLB.L2Entries != 64 {
		t.Fatalf("TLB = %d/%d", cfg.TLB.L1Entries, cfg.TLB.L2Entries)
	}
	if cfg.LLC.SizeBytes != (45<<20)/16 {
		t.Fatalf("LLC = %d", cfg.LLC.SizeBytes)
	}
	if cfg.FaultLatencyNs != 4000 || cfg.SlowSpec.ReadLatency != 4000 {
		t.Fatal("time dilation not applied to slow latencies")
	}
	// Fast tier must hold the scaled footprint with headroom.
	if cfg.FastSpec.Capacity < (172*(1<<30)/10)/16 {
		t.Fatalf("fast capacity %d too small", cfg.FastSpec.Capacity)
	}
	// Floors at extreme divisors.
	sc.Div = 4096
	cfg = sc.MachineConfig(workload.WebSearch(), true)
	if cfg.TLB.L1Entries < 2 || cfg.TLB.L2Entries < 8 || cfg.LLC.SizeBytes < 1<<20 {
		t.Fatal("scaling floors not applied")
	}
}

func TestGroupParamsFromScale(t *testing.T) {
	t.Parallel()
	sc := Repro()
	g, err := sc.Group(3)
	if err != nil {
		t.Fatal(err)
	}
	p := g.Params()
	if p.SamplePeriodNs != sc.PeriodNs || p.SlowMemLatencyNs != 4000 {
		t.Fatalf("params %+v", p)
	}
	// Dilated target: 30000/F.
	if got := p.TargetSlowAccessRate(); got < 7499.9 || got > 7500.1 {
		t.Fatalf("target = %v", got)
	}
}

func TestRunAllTinyTwoApps(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	opt := Options{
		Scale: Tiny(),
		Apps:  []workload.Spec{workload.MySQLTPCC(), workload.WebSearch()},
	}
	runs, err := RunAll(opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range runs {
		if r.Thermo.Result.Ops == 0 {
			t.Fatalf("%s: no ops", name)
		}
		// Thermostat must find cold data in both (each has a large idle
		// region) without blowing the budget. The tiny 8s schedule only
		// covers the start of the discovery ramp, so the bar is low; the
		// repro-scale runs in EXPERIMENTS.md measure the real fractions.
		if r.ColdFraction < 0.05 {
			t.Errorf("%s: cold fraction %.3f too low", name, r.ColdFraction)
		}
		if r.Slowdown > 0.10 {
			t.Errorf("%s: slowdown %.3f too high", name, r.Slowdown)
		}
		st := r.Thermo.Engine.Stats()
		if st.Demotions == 0 {
			t.Errorf("%s: no demotions", name)
		}
	}

	// Downstream artifacts from the same runs.
	t3 := Table3(runs, opt)
	if len(t3) != 2 {
		t.Fatalf("Table3 rows = %d", len(t3))
	}
	for _, row := range t3 {
		if row.MigrationMBps < 0 || row.MigrationMBps > 1000 {
			t.Errorf("%s migration rate %v implausible", row.App, row.MigrationMBps)
		}
	}
	t4, err := Table4(runs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t4 {
		if row.SavingsPct[2] < row.SavingsPct[0] {
			t.Errorf("%s: savings must grow as slow memory gets cheaper", row.App)
		}
	}
	t2 := Table2(runs, opt)
	for _, row := range t2 {
		if row.RSSGB <= 0 {
			t.Errorf("%s: zero RSS", row.App)
		}
	}
	f3 := Fig3(runs, opt)
	if len(f3) != 2 {
		t.Fatalf("Fig3 series = %d", len(f3))
	}
	for _, s := range f3 {
		if s.TargetRate != 30000 {
			t.Errorf("target rate = %v", s.TargetRate)
		}
		// The controller keeps the rate within a small multiple of target.
		if s.MeanPostWarmup > 4*s.TargetRate {
			t.Errorf("%s: slow rate %v far above target", s.App, s.MeanPostWarmup)
		}
	}
	cd := ColdData(runs, opt)
	for _, f := range cd {
		if f.Cold2M.Len() == 0 {
			t.Errorf("%s: empty cold series", f.App)
		}
		out := f.Table().String()
		if !strings.Contains(out, "2MB_cold_GB") {
			t.Error("cold series missing from table")
		}
	}
}

func TestTable1TinyOrdering(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	sc := Tiny()
	sc.DurationNs = 3e9
	sc.WarmupNs = 5e8
	rows, err := Table1(Options{
		Scale: sc,
		Apps:  []workload.Spec{workload.Redis(), workload.WebSearch()},
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.App] = r.GainPct
	}
	// Table 1's shape: Redis gains most from huge pages, web-search least.
	if byName["redis"] <= byName["web-search"] {
		t.Errorf("huge-page gain ordering wrong: redis %.2f%% vs web-search %.2f%%",
			byName["redis"], byName["web-search"])
	}
	if byName["redis"] <= 0 {
		t.Errorf("redis gain %.2f%% should be positive", byName["redis"])
	}
}

func TestFig2ProducesDispersedScatter(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	sc := Tiny()
	sc.DurationNs = 4e9
	sc.WarmupNs = 5e8
	res, err := Fig2(Options{Scale: sc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 10 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The paper's claim: hot-region counts are a poor predictor of access
	// rate. Perfect correlation would be ~1; we require it to be visibly
	// imperfect.
	if res.Pearson > 0.8 {
		t.Errorf("Pearson r = %.3f: Accessed bits predict rates too well", res.Pearson)
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestFig1IdleFractionsShape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	sc := Tiny()
	sc.TimeDilate = 2 // shrink the idle window so the test stays fast
	opt := Options{Scale: sc, Apps: []workload.Spec{workload.MySQLTPCC(), workload.Aerospike(workload.ReadHeavy)}}
	res, err := Fig1(opt)
	if err != nil {
		t.Fatal(err)
	}
	// MySQL's LINEITEM-dominated footprint idles far more than Aerospike's
	// uniformly-warm data (Figure 1's ordering).
	if res.IdleFrac["mysql-tpcc"] <= res.IdleFrac["aerospike"] {
		t.Errorf("idle ordering wrong: mysql %.2f vs aerospike %.2f",
			res.IdleFrac["mysql-tpcc"], res.IdleFrac["aerospike"])
	}
	if res.IdleFrac["mysql-tpcc"] < 0.25 {
		t.Errorf("mysql idle fraction = %.2f, want large", res.IdleFrac["mysql-tpcc"])
	}
	if res.Bar() == "" || res.Table().String() == "" {
		t.Fatal("rendering failed")
	}
}
