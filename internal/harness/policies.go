package harness

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/kstaled"
	"thermostat/internal/pagetable"
	"thermostat/internal/sim"
)

// scanOnly is a measurement-only policy: it runs a kstaled Accessed-bit
// scanner every interval and never moves a page. Figure 1's idle fractions
// come from its scanner.
type scanOnly struct {
	interval int64
	scanner  *kstaled.Scanner
}

func (p *scanOnly) Name() string      { return "kstaled-scan" }
func (p *scanOnly) IntervalNs() int64 { return p.interval }

func (p *scanOnly) Attach(m *sim.Machine) error {
	if p.interval <= 0 {
		return fmt.Errorf("harness: scanOnly needs an interval")
	}
	p.scanner = kstaled.New(m.PageTable(), m.TLB(), m.VPID(), 0)
	return nil
}

func (p *scanOnly) Tick(m *sim.Machine, now int64) error {
	res := p.scanner.Scan()
	m.ChargeDaemon(res.CostNs)
	return nil
}

func (p *scanOnly) Footprint(m *sim.Machine) sim.Footprint {
	return sim.AllHotFootprint(m.PageTable())
}

// splitScan is the Figure 2 instrument: it splits every huge page at attach
// time and scans Accessed bits each interval, tracking per-child hot
// streaks. No pages move.
type splitScan struct {
	interval int64
	scanner  *kstaled.Scanner
	bases    []addr.Virt
}

func (p *splitScan) Name() string      { return "split-scan" }
func (p *splitScan) IntervalNs() int64 { return p.interval }

func (p *splitScan) Attach(m *sim.Machine) error {
	if p.interval <= 0 {
		return fmt.Errorf("harness: splitScan needs an interval")
	}
	pt := m.PageTable()
	pt.Scan(func(base addr.Virt, e *pagetable.Entry, lvl pagetable.Level) {
		if lvl == pagetable.Level2M {
			p.bases = append(p.bases, base)
		}
	})
	for _, base := range p.bases {
		if err := pt.Split(base); err != nil {
			return err
		}
		m.TLB().Invalidate(base, m.VPID())
	}
	p.scanner = kstaled.New(pt, m.TLB(), m.VPID(), 0)
	return nil
}

func (p *splitScan) Tick(m *sim.Machine, now int64) error {
	res := p.scanner.Scan()
	m.ChargeDaemon(res.CostNs)
	return nil
}

func (p *splitScan) Footprint(m *sim.Machine) sim.Footprint {
	return sim.AllHotFootprint(m.PageTable())
}
