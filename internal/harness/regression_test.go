package harness

import (
	"testing"

	"thermostat/internal/workload"
)

// goldenTwoTier pins the deterministic two-tier results captured from the
// seed tree (Tiny scale, 3% tolerable slowdown, seed 1). The N-tier
// generalization must leave the paper's two-tier configuration bit-for-bit
// unchanged: every counter here — engine stats, final footprint, virtual
// clock, fault counts — must match exactly, not approximately.
var goldenTwoTier = []struct {
	spec workload.Spec

	periods, sampled, demotions, promotions, demoteFailures uint64
	hot2M, hot4K, cold2M, cold4K                            uint64
	ops, accesses, slowAccesses, poisonFaults               uint64
	clockNs                                                 int64
	coldPages                                               int
}{
	{
		spec:    workload.Redis(),
		periods: 20, sampled: 20, demotions: 2, promotions: 0, demoteFailures: 0,
		hot2M: 67108864, hot4K: 4194304, cold2M: 4194304, cold4K: 0,
		ops: 6413283, accesses: 6413283, slowAccesses: 2228, poisonFaults: 151390,
		clockNs:   8000001045,
		coldPages: 2,
	},
	{
		spec:    workload.MySQLTPCC(),
		periods: 20, sampled: 20, demotions: 4, promotions: 0, demoteFailures: 0,
		hot2M: 29360128, hot4K: 4194304, cold2M: 8388608, cold4K: 0,
		ops: 3176646, accesses: 3176646, slowAccesses: 0, poisonFaults: 19526,
		clockNs:   8000001311,
		coldPages: 4,
	},
}

func TestTwoTierGoldenRegression(t *testing.T) {
	t.Parallel()
	for _, g := range goldenTwoTier {
		g := g
		t.Run(g.spec.Name, func(t *testing.T) {
			t.Parallel()
			out, err := RunThermostat(g.spec, Tiny(), 3)
			if err != nil {
				t.Fatal(err)
			}
			st := out.Engine.Stats()
			fp := out.Result.FinalFootprint
			met := out.Result.Metrics

			check := func(what string, got, want uint64) {
				t.Helper()
				if got != want {
					t.Errorf("%s = %d, want %d (two-tier determinism broken)", what, got, want)
				}
			}
			check("Periods", st.Periods, g.periods)
			check("Sampled", st.Sampled, g.sampled)
			check("Demotions", st.Demotions, g.demotions)
			check("Promotions", st.Promotions, g.promotions)
			check("DemoteFailures", st.DemoteFailures, g.demoteFailures)
			if st.Sinks != 0 {
				t.Errorf("Sinks = %d, want 0: sinking must never run on a two-tier machine", st.Sinks)
			}
			check("Hot2M", fp.Hot2M, g.hot2M)
			check("Hot4K", fp.Hot4K, g.hot4K)
			check("Cold2M", fp.Cold2M, g.cold2M)
			check("Cold4K", fp.Cold4K, g.cold4K)
			check("Ops", out.Result.Ops, g.ops)
			check("Accesses", met.Accesses, g.accesses)
			check("SlowAccesses", met.SlowAccesses, g.slowAccesses)
			check("PoisonFaults", met.PoisonFaults, g.poisonFaults)
			if met.ClockNs != g.clockNs {
				t.Errorf("ClockNs = %d, want %d", met.ClockNs, g.clockNs)
			}
			if got := out.Engine.ColdPages(); got != g.coldPages {
				t.Errorf("ColdPages = %d, want %d", got, g.coldPages)
			}
			// The per-tier access vector must be consistent with the legacy
			// fast/slow split on a two-tier machine.
			if n := len(met.TierAccesses); n != 2 {
				t.Fatalf("TierAccesses has %d tiers, want 2", n)
			}
			if met.TierAccesses[0]+met.TierAccesses[1] != met.Accesses {
				t.Errorf("TierAccesses sum %d+%d != Accesses %d",
					met.TierAccesses[0], met.TierAccesses[1], met.Accesses)
			}
			if met.TierAccesses[1] != met.SlowAccesses {
				t.Errorf("TierAccesses[1] = %d, want SlowAccesses %d",
					met.TierAccesses[1], met.SlowAccesses)
			}
		})
	}
}

// TestThreeTierGoldenRegression pins the deterministic three-tier results
// (Redis on the DRAM/CXL/NVM hierarchy, Tiny scale, 3% target, seed 1)
// captured from the PR 1 N-tier path, so tier-relative demotion, idle-page
// sinking, and the pair traffic matrix are regression-locked exactly like
// the two-tier configuration.
func TestThreeTierGoldenRegression(t *testing.T) {
	t.Parallel()
	out, err := RunNTier(workload.Redis(), Tiny(), DefaultThreeTier(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	st := out.Engine.Stats()
	fp := out.Result.FinalFootprint
	met := out.Result.Metrics

	check := func(what string, got, want uint64) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %d, want %d (three-tier determinism broken)", what, got, want)
		}
	}
	check("Periods", st.Periods, 20)
	check("Sampled", st.Sampled, 20)
	check("Demotions", st.Demotions, 2)
	check("Promotions", st.Promotions, 0)
	check("Sinks", st.Sinks, 1)
	check("DemoteFailures", st.DemoteFailures, 0)
	check("Hot2M", fp.Hot2M, 67108864)
	check("Hot4K", fp.Hot4K, 4194304)
	check("Cold2M", fp.Cold2M, 4194304)
	check("Cold4K", fp.Cold4K, 0)
	check("Ops", out.Result.Ops, 6412880)
	check("Accesses", met.Accesses, 6412880)
	check("SlowAccesses", met.SlowAccesses, 2228)
	check("PoisonFaults", met.PoisonFaults, 151366)
	if met.ClockNs != 8000001084 {
		t.Errorf("ClockNs = %d, want 8000001084", met.ClockNs)
	}
	if got := out.Engine.ColdPages(); got != 2 {
		t.Errorf("ColdPages = %d, want 2", got)
	}
	// Per-tier placement: the sunk page sits in NVM, its sibling in CXL.
	if n := len(fp.ByTier); n != 3 {
		t.Fatalf("ByTier has %d tiers, want 3", n)
	}
	check("tier0 bytes", fp.ByTier[0].Total(), 71303168)
	check("tier1 bytes", fp.ByTier[1].Total(), 2097152)
	check("tier2 bytes", fp.ByTier[2].Total(), 2097152)
	if want := []uint64{6410652, 2228, 0}; len(met.TierAccesses) != 3 ||
		met.TierAccesses[0] != want[0] || met.TierAccesses[1] != want[1] || met.TierAccesses[2] != want[2] {
		t.Errorf("TierAccesses = %v, want %v", met.TierAccesses, want)
	}

	rep, err := AnalyzeNTier(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Savings; got < 0.036111110 || got > 0.036111112 {
		t.Errorf("Savings = %.9f, want 0.036111111", got)
	}
	wantPairs := []struct {
		src, dst                int
		bytes, pages2M, pages4K uint64
	}{
		{0, 1, 4194304, 2, 0},
		{1, 2, 2097152, 1, 0},
	}
	if len(rep.Pairs) != len(wantPairs) {
		t.Fatalf("pair matrix has %d entries, want %d: %+v", len(rep.Pairs), len(wantPairs), rep.Pairs)
	}
	for i, w := range wantPairs {
		p := rep.Pairs[i]
		if int(p.Src) != w.src || int(p.Dst) != w.dst ||
			p.Bytes != w.bytes || p.Pages2M != w.pages2M || p.Pages4K != w.pages4K {
			t.Errorf("pair %d = %+v, want %+v", i, p, w)
		}
	}
}
