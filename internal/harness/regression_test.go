package harness

import (
	"testing"

	"thermostat/internal/workload"
)

// goldenTwoTier pins the deterministic two-tier results captured from the
// seed tree (Tiny scale, 3% tolerable slowdown, seed 1). The N-tier
// generalization must leave the paper's two-tier configuration bit-for-bit
// unchanged: every counter here — engine stats, final footprint, virtual
// clock, fault counts — must match exactly, not approximately.
var goldenTwoTier = []struct {
	spec workload.Spec

	periods, sampled, demotions, promotions, demoteFailures uint64
	hot2M, hot4K, cold2M, cold4K                            uint64
	ops, accesses, slowAccesses, poisonFaults               uint64
	clockNs                                                 int64
	coldPages                                               int
}{
	{
		spec:    workload.Redis(),
		periods: 20, sampled: 20, demotions: 2, promotions: 0, demoteFailures: 0,
		hot2M: 67108864, hot4K: 4194304, cold2M: 4194304, cold4K: 0,
		ops: 6413283, accesses: 6413283, slowAccesses: 2228, poisonFaults: 151390,
		clockNs:   8000001045,
		coldPages: 2,
	},
	{
		spec:    workload.MySQLTPCC(),
		periods: 20, sampled: 20, demotions: 4, promotions: 0, demoteFailures: 0,
		hot2M: 29360128, hot4K: 4194304, cold2M: 8388608, cold4K: 0,
		ops: 3176646, accesses: 3176646, slowAccesses: 0, poisonFaults: 19526,
		clockNs:   8000001311,
		coldPages: 4,
	},
}

func TestTwoTierGoldenRegression(t *testing.T) {
	for _, g := range goldenTwoTier {
		g := g
		t.Run(g.spec.Name, func(t *testing.T) {
			out, err := RunThermostat(g.spec, Tiny(), 3)
			if err != nil {
				t.Fatal(err)
			}
			st := out.Engine.Stats()
			fp := out.Result.FinalFootprint
			met := out.Result.Metrics

			check := func(what string, got, want uint64) {
				t.Helper()
				if got != want {
					t.Errorf("%s = %d, want %d (two-tier determinism broken)", what, got, want)
				}
			}
			check("Periods", st.Periods, g.periods)
			check("Sampled", st.Sampled, g.sampled)
			check("Demotions", st.Demotions, g.demotions)
			check("Promotions", st.Promotions, g.promotions)
			check("DemoteFailures", st.DemoteFailures, g.demoteFailures)
			if st.Sinks != 0 {
				t.Errorf("Sinks = %d, want 0: sinking must never run on a two-tier machine", st.Sinks)
			}
			check("Hot2M", fp.Hot2M, g.hot2M)
			check("Hot4K", fp.Hot4K, g.hot4K)
			check("Cold2M", fp.Cold2M, g.cold2M)
			check("Cold4K", fp.Cold4K, g.cold4K)
			check("Ops", out.Result.Ops, g.ops)
			check("Accesses", met.Accesses, g.accesses)
			check("SlowAccesses", met.SlowAccesses, g.slowAccesses)
			check("PoisonFaults", met.PoisonFaults, g.poisonFaults)
			if met.ClockNs != g.clockNs {
				t.Errorf("ClockNs = %d, want %d", met.ClockNs, g.clockNs)
			}
			if got := out.Engine.ColdPages(); got != g.coldPages {
				t.Errorf("ColdPages = %d, want %d", got, g.coldPages)
			}
			// The per-tier access vector must be consistent with the legacy
			// fast/slow split on a two-tier machine.
			if n := len(met.TierAccesses); n != 2 {
				t.Fatalf("TierAccesses has %d tiers, want 2", n)
			}
			if met.TierAccesses[0]+met.TierAccesses[1] != met.Accesses {
				t.Errorf("TierAccesses sum %d+%d != Accesses %d",
					met.TierAccesses[0], met.TierAccesses[1], met.Accesses)
			}
			if met.TierAccesses[1] != met.SlowAccesses {
				t.Errorf("TierAccesses[1] = %d, want SlowAccesses %d",
					met.TierAccesses[1], met.SlowAccesses)
			}
		})
	}
}
