package harness

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"thermostat/internal/pool"
	"thermostat/internal/rng"
	"thermostat/internal/workload"
)

// equivScale is the reduced profile the serial-equivalence differential
// tests run at: every run is cheap, but still exercises sampling, demotion
// and correction.
func equivScale() Scale {
	sc := Tiny()
	sc.DurationNs = 4e9
	sc.WarmupNs = 1e9
	return sc
}

// TestSerialEquivalenceRunAll is the scheduler's core differential test:
// RunAll with Workers: 1 (the exact old serial path) and Workers: 8 must
// produce reflect.DeepEqual outcomes — every series point, counter, and
// engine stat bit-for-bit identical.
func TestSerialEquivalenceRunAll(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	apps := []workload.Spec{workload.MySQLTPCC(), workload.WebSearch()}
	serial, err := RunAll(Options{Scale: equivScale(), Apps: apps, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(Options{Scale: equivScale(), Apps: apps, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("app sets differ: %d vs %d", len(serial), len(parallel))
	}
	for name, s := range serial {
		p, ok := parallel[name]
		if !ok {
			t.Fatalf("%s missing from parallel runs", name)
		}
		if !reflect.DeepEqual(s.Base.Result, p.Base.Result) {
			t.Errorf("%s: baseline results diverge between worker counts", name)
		}
		if !reflect.DeepEqual(s.Thermo.Result, p.Thermo.Result) {
			t.Errorf("%s: thermostat results diverge between worker counts", name)
		}
		if !reflect.DeepEqual(s.Thermo.Engine.Stats(), p.Thermo.Engine.Stats()) {
			t.Errorf("%s: engine stats diverge: %+v vs %+v",
				name, s.Thermo.Engine.Stats(), p.Thermo.Engine.Stats())
		}
		if s.Slowdown != p.Slowdown || s.ColdFraction != p.ColdFraction {
			t.Errorf("%s: derived metrics diverge: (%v, %v) vs (%v, %v)",
				name, s.Slowdown, s.ColdFraction, p.Slowdown, p.ColdFraction)
		}
	}
}

// TestSerialEquivalenceAblation pins one design-choice grid: the rows the
// pooled grid produces must be bit-identical to the serial ones.
func TestSerialEquivalenceAblation(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	spec := workload.MySQLTPCC()
	serial, _, err := AblationPoisonBudget(spec, Options{Scale: equivScale(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := AblationPoisonBudget(spec, Options{Scale: equivScale(), Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("ablation rows diverge between worker counts:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

// TestSerialEquivalenceFig11 pins the slowdown sweep: app-major, target-
// minor row order and every value must survive the fan-out.
func TestSerialEquivalenceFig11(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	apps := []workload.Spec{workload.Redis()}
	serial, err := Fig11(Options{Scale: equivScale(), Apps: apps, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig11(Options{Scale: equivScale(), Apps: apps, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("fig11 rows diverge between worker counts:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

// TestPoolMapPropertyUnderHarness re-checks the scheduler's contract with
// randomized task latencies: pool.Map must keep results in input order and
// collect every error and panic with its task label, at any worker count.
// (The pool package holds the exhaustive version; this guards the contract
// from the harness's side, where the experiment rewiring depends on it.)
func TestPoolMapPropertyUnderHarness(t *testing.T) {
	t.Parallel()
	r := rng.New(7)
	for trial := 0; trial < 8; trial++ {
		n := 5 + int(r.Uint64n(20))
		workers := int(r.Uint64n(9))
		failing := map[int]bool{}
		panicking := map[int]bool{}
		tasks := make([]pool.Task[int], n)
		for i := range tasks {
			i := i
			delay := time.Duration(r.Uint64n(200)) * time.Microsecond
			mode := r.Uint64n(6)
			if mode == 4 {
				failing[i] = true
			} else if mode == 5 {
				panicking[i] = true
			}
			tasks[i] = pool.Task[int]{Label: fmt.Sprintf("run/%d", i), Run: func() (int, error) {
				time.Sleep(delay)
				if failing[i] {
					return 0, fmt.Errorf("run %d failed", i)
				}
				if panicking[i] {
					panic(i)
				}
				return i, nil
			}}
		}
		res, err := pool.Map(workers, tasks)
		for i, v := range res {
			if !failing[i] && !panicking[i] && v != i {
				t.Fatalf("trial %d: result %d out of order (= %d)", trial, i, v)
			}
		}
		collected := map[int]bool{}
		var walk func(error)
		walk = func(e error) {
			if joined, ok := e.(interface{ Unwrap() []error }); ok {
				for _, sub := range joined.Unwrap() {
					walk(sub)
				}
				return
			}
			var te *pool.TaskError
			if errors.As(e, &te) {
				collected[te.Index] = true
				var pe *pool.PanicError
				if errors.As(te.Err, &pe) != panicking[te.Index] {
					t.Fatalf("trial %d: task %d misreported as panic=%v", trial, te.Index, !panicking[te.Index])
				}
			}
		}
		if err != nil {
			walk(err)
		}
		for i := range failing {
			if !collected[i] {
				t.Fatalf("trial %d: error of task %d lost", trial, i)
			}
		}
		for i := range panicking {
			if !collected[i] {
				t.Fatalf("trial %d: panic of task %d lost", trial, i)
			}
		}
		if len(failing)+len(panicking) == 0 && err != nil {
			t.Fatalf("trial %d: spurious error %v", trial, err)
		}
	}
}

// TestSerialEquivalenceFleetRun extends the workers differential to the
// fleet: a churning two-tenant run with per-tenant baselines fanned over 1
// vs 8 workers must produce DeepEqual outcomes — fleet result, per-tenant
// series, baselines — and byte-identical per-tenant trace exports.
func TestSerialEquivalenceFleetRun(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	sc := equivScale()
	run := func(workers int) (*FleetOutcome, map[string][2]string, error) {
		fo, err := FleetRun(FleetOptions{
			Scale: sc,
			Tenants: []FleetTenant{
				{Name: "front", Spec: workload.WebSearch(), SLOPct: 3, Priority: 2, Share: 2},
				{Name: "batch", Spec: workload.MySQLTPCC(), SLOPct: 10,
					DepartNs: sc.DurationNs * 3 / 4},
			},
			Workers: workers, Baselines: true,
			Telemetry: &TelemetryOptions{Dir: t.TempDir()},
		})
		if err != nil {
			return nil, nil, err
		}
		paths, err := fo.ExportTenantTraces(&TelemetryOptions{Dir: t.TempDir()})
		return fo, paths, err
	}
	serial, serialPaths, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	fanned, fannedPaths, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Result, fanned.Result) {
		t.Errorf("fleet results diverge between worker counts:\n w1 %+v\n w8 %+v",
			serial.Result, fanned.Result)
	}
	if !reflect.DeepEqual(serial.Baselines, fanned.Baselines) {
		t.Error("per-tenant baselines diverge between worker counts")
	}
	for name, sp := range serialPaths {
		fp, ok := fannedPaths[name]
		if !ok {
			t.Fatalf("tenant %s missing from fanned exports", name)
		}
		for i := 0; i < 2; i++ {
			sb, err := os.ReadFile(sp[i])
			if err != nil {
				t.Fatal(err)
			}
			fb, err := os.ReadFile(fp[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sb, fb) {
				t.Errorf("tenant %s export %d differs between worker counts", name, i)
			}
		}
	}
}
