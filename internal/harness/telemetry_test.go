package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"thermostat/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden telemetry export files")

// telemetryScale is a short schedule for the export tests: enough epochs for
// several sampling periods without the full Tiny run length.
func telemetryScale() Scale {
	sc := Tiny()
	sc.DurationNs = 4e9
	sc.WarmupNs = 1e9
	return sc
}

// exportAll runs the Redis baseline+Thermostat pair with telemetry into dir
// at the given worker count and returns the exported file names.
func exportAll(t *testing.T, dir string, workers int) []string {
	t.Helper()
	spec, _ := workload.ByName("redis")
	runs, err := RunAll(Options{
		Scale:   telemetryScale(),
		Apps:    []workload.Spec{spec},
		Workers: workers,
		// A small event cap keeps files reviewable and exercises the
		// deterministic drop accounting.
		Telemetry: &TelemetryOptions{Dir: dir, MaxEvents: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := runs[spec.Name]
	if run.Base.Telemetry == nil || run.Thermo.Telemetry == nil {
		t.Fatal("outcomes missing their collectors")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 4 { // {baseline,thermostat} x {trace,metrics}
		t.Fatalf("exported %v, want 4 files", names)
	}
	return names
}

// TestRunAllTelemetryWorkerInvariance is the acceptance-criteria differential
// test: the same experiment at Workers=1 and Workers=8 must export
// byte-identical trace and metrics files, because telemetry is recorded in
// virtual time by per-run collectors.
func TestRunAllTelemetryWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	dir1, dir8 := t.TempDir(), t.TempDir()
	names := exportAll(t, dir1, 1)
	names8 := exportAll(t, dir8, 8)
	if len(names8) != len(names) {
		t.Fatalf("worker counts exported different file sets: %v vs %v", names, names8)
	}
	for _, name := range names {
		a, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir8, name))
		if err != nil {
			t.Fatalf("Workers=8 missing %s: %v", name, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between Workers=1 and Workers=8 (%d vs %d bytes)",
				name, len(a), len(b))
		}
	}

	// Golden pin of the seeded two-tier Thermostat exports: any drift in
	// event content, field order or formatting fails here.
	for _, name := range []string{
		"runall-redis-thermostat.trace.json",
		"runall-redis-thermostat.metrics.jsonl",
	} {
		got, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden %s (run with -update): %v", golden, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden (%d vs %d bytes; verify and run with -update)",
				name, len(got), len(want))
		}
	}
}

func TestSanitizeLabel(t *testing.T) {
	t.Parallel()
	if got := sanitizeLabel("runall/redis:3%"); got != "runall-redis-3-" {
		t.Fatalf("sanitizeLabel = %q", got)
	}
	if got := sanitizeLabel("ok-name_1.2"); got != "ok-name_1.2" {
		t.Fatalf("safe label mangled: %q", got)
	}
}
