package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"thermostat/internal/chaos"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

// chaosScale shortens Tiny for the chaos differential tests: the runs need
// several scan periods of migration activity, not the full schedule.
func chaosScale() Scale {
	sc := Tiny()
	sc.DurationNs = 4e9
	sc.WarmupNs = 1e9
	return sc
}

// runWithChaos runs one workload under Thermostat with the given injector
// config and a telemetry collector attached.
func runWithChaos(t *testing.T, app string, sc Scale, cfg chaos.Config) (*Outcome, *telemetry.Collector) {
	t.Helper()
	spec, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("no workload %q", app)
	}
	col := telemetry.NewCollector()
	out, err := RunThermostatWith(spec, sc, 3, func(c *sim.Config) {
		c.Recorder = col
		c.Chaos = cfg
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out, col
}

func exportBytes(t *testing.T, col *telemetry.Collector) (trace, metrics []byte) {
	t.Helper()
	var tb, mb bytes.Buffer
	if err := col.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteJSONL(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes()
}

// TestChaosRateZeroIsByteIdentical is the tentpole differential gate: a
// chaos config with rate 0 — even with a seed and permanent fraction set —
// must install no injector, leaving the run byte-identical to an
// uninjected one (traces, metrics, final counters, throughput).
func TestChaosRateZeroIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	plain, plainCol := runWithChaos(t, "redis", chaosScale(), chaos.Config{})
	zero, zeroCol := runWithChaos(t, "redis", chaosScale(),
		chaos.Config{Seed: 7, Rate: 0, PermanentFraction: 1})

	ptrace, pmetrics := exportBytes(t, plainCol)
	ztrace, zmetrics := exportBytes(t, zeroCol)
	if !bytes.Equal(ptrace, ztrace) {
		t.Error("chaos-rate-0 Chrome trace differs from the uninjected run's")
	}
	if !bytes.Equal(pmetrics, zmetrics) {
		t.Error("chaos-rate-0 JSONL metrics differ from the uninjected run's")
	}
	if !reflect.DeepEqual(plain.Result.Metrics, zero.Result.Metrics) {
		t.Error("chaos-rate-0 machine counters differ from the uninjected run's")
	}
	if plain.Result.Throughput != zero.Result.Throughput {
		t.Errorf("throughput differs: %g vs %g", plain.Result.Throughput, zero.Result.Throughput)
	}
	if !zero.Faults.Zero() {
		t.Errorf("rate-0 run reports fault activity: %+v", zero.Faults)
	}
}

// TestChaosSweepWorkerInvariance: a nonzero-rate seeded sweep must be
// bit-identical at any worker count — every arm owns its machine, injector
// stream, and RNG.
func TestChaosSweepWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	spec, _ := workload.ByName("redis")
	rates := []float64{0, 0.02, 0.1}
	opt := ChaosOptions{
		Scale: chaosScale(),
		Base:  chaos.Config{Seed: 11, PermanentFraction: 0.25},
	}
	run := func(workers int) []ChaosPoint {
		o := opt
		o.Workers = workers
		pts, err := ChaosSweep(spec, rates, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return pts
	}
	p1, p8 := run(1), run(8)
	for i := range p1 {
		a, b := p1[i], p8[i]
		if a.Outcome.Faults != b.Outcome.Faults {
			t.Errorf("rate %g: fault reports differ across worker counts:\n  w1: %+v\n  w8: %+v",
				a.Rate, a.Outcome.Faults, b.Outcome.Faults)
		}
		if !reflect.DeepEqual(a.Outcome.Result.Metrics, b.Outcome.Result.Metrics) {
			t.Errorf("rate %g: machine counters differ across worker counts", a.Rate)
		}
		if a.Outcome.Result.Throughput != b.Outcome.Result.Throughput {
			t.Errorf("rate %g: throughput differs across worker counts", a.Rate)
		}
	}
	if !p1[0].Outcome.Faults.Zero() {
		t.Errorf("rate-0 arm reports fault activity: %+v", p1[0].Outcome.Faults)
	}
	if p1[2].Outcome.Faults.Injected == 0 {
		t.Error("rate-0.1 arm injected nothing — the sweep exercised no faults")
	}
}

// TestChaosPermanentFaultsQuarantine is the graceful-degradation
// acceptance run: with permanent migration failures injected, the run must
// complete (not abort), report retry/rollback/quarantine counts in the
// FaultReport, and expose them through the telemetry snapshots and epoch
// table.
func TestChaosPermanentFaultsQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	// Cassandra demotes steadily at Tiny scale; forcing every migration
	// copy to fault exercises the full retry -> rollback -> quarantine
	// chain (PermanentFraction splits injections between the immediate
	// and exhaustion quarantine paths).
	out, col := runWithChaos(t, "cassandra", Tiny(), chaos.Config{
		Seed:              3,
		SiteRates:         map[chaos.Site]float64{chaos.MigrateCopy: 1},
		PermanentFraction: 0.5,
	})
	f := out.Faults
	if f.Injected == 0 || f.Permanent == 0 {
		t.Fatalf("injector idle: %+v", f)
	}
	if f.Quarantined == 0 {
		t.Errorf("no pages quarantined despite permanent faults: %+v", f)
	}
	if f.Retried == 0 {
		t.Errorf("no retries despite transient faults: %+v", f)
	}
	if f.RolledBack == 0 {
		t.Errorf("no rollbacks despite mid-copy faults: %+v", f)
	}

	var injected, retried, quarantined uint64
	for _, s := range col.Snapshots() {
		injected += s.FaultsInjected
		retried += s.MigrationRetries
		quarantined += s.PagesQuarantined
	}
	if injected == 0 || retried == 0 || quarantined == 0 {
		t.Errorf("epoch snapshots missing fault activity: injected=%d retried=%d quarantined=%d",
			injected, retried, quarantined)
	}
	table := col.EpochTable()
	if !strings.Contains(table, "inject") || !strings.Contains(table, "quar") {
		t.Error("epoch table missing the chaos columns")
	}
	_, metrics := exportBytes(t, col)
	if !bytes.Contains(metrics, []byte("chaos_injected")) {
		t.Error("JSONL metrics omit chaos counters for an injected run")
	}
}

// TestThermostatSurvivesFullSlowTier is the satellite regression: a slow
// tier with almost no capacity used to abort the policy loop on the first
// promotion pressure; with uniform retry/quarantine the run completes and
// accounts for every abandoned move.
func TestThermostatSurvivesFullSlowTier(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	spec, _ := workload.ByName("redis")
	out, err := RunThermostatWith(spec, chaosScale(), 3, func(c *sim.Config) {
		c.SlowSpec.Capacity = 2 << 20 // one 2MB frame: demotion pressure hits OOM fast
	}, nil)
	if err != nil {
		t.Fatalf("full slow tier aborted the run: %v", err)
	}
	st := out.Engine.Stats()
	if st.DemoteFailures == 0 {
		t.Error("no demote failures recorded against a full slow tier")
	}
	if out.Faults.Retried == 0 {
		t.Error("full-tier demotions were not retried")
	}
	if out.Faults.Quarantined == 0 {
		t.Error("exhausted demotions were not quarantined")
	}
}
