// Policy-matrix experiment: run every tracker × policy composition over
// every workload and tier topology, and score each cell on the three axes
// that matter for "which policy when" — how much the application slowed
// down, how much memory cost the placement saved, and how accurately the
// composition classified pages against the simulator's LLC ground truth
// (which no real system can observe).
package harness

import (
	"fmt"
	"io"

	"thermostat/internal/core"
	"thermostat/internal/mem"
	"thermostat/internal/pool"
	"thermostat/internal/pricing"
	"thermostat/internal/report"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

// MatrixTopology names one tier hierarchy a matrix cell runs on. Nil Tiers
// selects the paper's two-tier configuration (fault-emulated slow memory);
// otherwise the machine runs in Device mode over the given hierarchy.
type MatrixTopology struct {
	Name  string
	Tiers []mem.Spec
}

// TwoTierTopology is the paper's DRAM + emulated-slow-memory config.
func TwoTierTopology() MatrixTopology { return MatrixTopology{Name: "2tier"} }

// ThreeTierTopology is the DRAM/CXL/NVM hierarchy of the N-tier experiment.
// Capacities are sized per workload by TieredMachineConfig.
func ThreeTierTopology() MatrixTopology {
	return MatrixTopology{Name: "3tier", Tiers: DefaultThreeTier(0)}
}

// MatrixOptions configures a PolicyMatrix sweep. Zero values select the
// full registry cross-product at Tiny scale with a 3% slowdown target.
type MatrixOptions struct {
	Scale       Scale
	Apps        []workload.Spec
	Trackers    []string
	Policies    []string
	Topologies  []MatrixTopology
	SlowdownPct float64
	// Workers bounds pool parallelism (0 = pool default).
	Workers int
}

func (o MatrixOptions) withDefaults() MatrixOptions {
	if o.Scale.Div == 0 {
		o.Scale = Tiny()
	}
	if len(o.Apps) == 0 {
		for _, name := range []string{"redis", "mysql-tpcc"} {
			if spec, ok := workload.ByName(name); ok {
				o.Apps = append(o.Apps, spec)
			}
		}
	}
	if len(o.Trackers) == 0 {
		o.Trackers = core.TrackerNames()
	}
	if len(o.Policies) == 0 {
		o.Policies = core.PolicyNames()
	}
	if len(o.Topologies) == 0 {
		o.Topologies = []MatrixTopology{TwoTierTopology(), ThreeTierTopology()}
	}
	if o.SlowdownPct == 0 {
		o.SlowdownPct = 3
	}
	return o
}

// MatrixCell is one scored tracker × policy × workload × topology run.
type MatrixCell struct {
	App      string
	Topology string
	Tracker  string
	Policy   string

	// SlowdownPct is the throughput loss vs. the all-top-tier baseline on
	// the same topology, in percent.
	SlowdownPct float64
	// ColdFraction is the mean post-warmup fraction of the footprint held
	// below the top tier.
	ColdFraction float64
	// Savings is the memory-cost saving of the final placement relative
	// to an all-top-tier system (pricing model).
	Savings float64
	// Accuracy is (cold∧idle + hot∧accessed) / all classified pages,
	// summed over post-warmup telemetry epochs against LLC ground truth;
	// valid only when ConfusionValid.
	Accuracy       float64
	ConfusionValid bool

	Stats core.Stats
	Ops   uint64
}

// MatrixReport is a completed sweep.
type MatrixReport struct {
	Scale Scale
	Cells []MatrixCell
}

// RunMatrixCell runs one tracker × policy composition on one workload and
// topology, with ground-truth page counting and a telemetry collector
// enabled so the confusion matrix is available.
func RunMatrixCell(spec workload.Spec, sc Scale, topo MatrixTopology,
	tracker, policy string, slowdownPct float64) (*Outcome, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	var cfg sim.Config
	if topo.Tiers == nil {
		cfg = sc.MachineConfig(spec, true)
	} else {
		cfg = sc.TieredMachineConfig(spec, topo.Tiers)
	}
	col := telemetry.NewCollector()
	cfg.Recorder = col
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	m.EnablePageCounts()
	app, err := sc.NewApp(spec, sc.Seed)
	if err != nil {
		return nil, err
	}
	g, err := sc.Group(slowdownPct)
	if err != nil {
		return nil, err
	}
	eng, err := core.ComposeByName(g, tracker, policy, sc.Seed+0x7e)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(m, app, eng, sim.RunConfig{
		DurationNs: sc.DurationNs, WarmupNs: sc.WarmupNs, WindowNs: sc.PeriodNs,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s under %s on %s: %w",
			spec.Name, eng.Name(), topo.Name, err)
	}
	return &Outcome{Spec: spec, Scale: sc, Machine: m, App: app, Engine: eng,
		Result: res, Telemetry: col, Faults: eng.FaultReport()}, nil
}

// matrixBaseline runs the all-top-tier baseline for one app × topology.
func matrixBaseline(spec workload.Spec, sc Scale, topo MatrixTopology) (*Outcome, error) {
	if topo.Tiers == nil {
		return RunBaseline(spec, sc)
	}
	return runWithPolicy(spec, sc, sim.NullPolicy{Interval: sc.PeriodNs}, true,
		func(cfg *sim.Config) {
			tiered := sc.TieredMachineConfig(spec, topo.Tiers)
			*cfg = tiered
		})
}

// confusionAccuracy folds the post-warmup confusion-matrix epochs into one
// accuracy number: correctly-idle cold pages plus correctly-accessed hot
// pages over everything classified.
func confusionAccuracy(col *telemetry.Collector, warmupNs int64) (float64, bool) {
	var right, total uint64
	for _, s := range col.Snapshots() {
		if !s.ConfusionValid || s.StartNs < warmupNs {
			continue
		}
		right += s.ColdIdle + s.HotAccessed
		total += s.ColdIdle + s.HotAccessed + s.ColdAccessed + s.HotIdle
	}
	if total == 0 {
		return 0, false
	}
	return float64(right) / float64(total), true
}

// placementSavings prices the final placement against an all-top-tier
// system of the same footprint, using each tier's cost model.
func placementSavings(out *Outcome) (float64, error) {
	fp := out.Result.FinalFootprint
	if fp.ByTier == nil || fp.Total() == 0 {
		return 0, fmt.Errorf("harness: outcome has no per-tier footprint")
	}
	sys := out.Machine.Memory()
	topCost := sys.Tier(mem.Fast).Spec().CostPerGB
	if topCost <= 0 {
		return 0, fmt.Errorf("harness: top tier has no cost")
	}
	var shares []pricing.TierShare
	for i := 0; i < sys.NumTiers(); i++ {
		t := sys.Tier(mem.TierID(i))
		shares = append(shares, pricing.TierShare{
			Name:      t.Name(),
			Fraction:  float64(fp.ByTier[i].Total()) / float64(fp.Total()),
			CostRatio: t.Spec().CostPerGB / topCost,
		})
	}
	return pricing.SavingsTiered(shares)
}

// PolicyMatrix runs the full tracker × policy × workload × topology
// cross-product on the worker pool. Baselines (one per app × topology) run
// first; every composition cell is then scored against its topology's
// baseline.
func PolicyMatrix(opt MatrixOptions) (*MatrixReport, error) {
	opt = opt.withDefaults()
	if err := opt.Scale.Validate(); err != nil {
		return nil, err
	}

	// Baselines: one per app × topology.
	type baseKey struct{ app, topo string }
	var baseTasks []pool.Task[*Outcome]
	var baseKeys []baseKey
	for _, spec := range opt.Apps {
		for _, topo := range opt.Topologies {
			spec, topo := spec, topo
			baseKeys = append(baseKeys, baseKey{spec.Name, topo.Name})
			baseTasks = append(baseTasks, pool.Task[*Outcome]{
				Label: fmt.Sprintf("matrix/%s/%s/baseline", spec.Name, topo.Name),
				Run: func() (*Outcome, error) {
					return matrixBaseline(spec, opt.Scale, topo)
				},
			})
		}
	}
	baseOuts, err := pool.Map(opt.Workers, baseTasks)
	if err != nil {
		return nil, err
	}
	baselines := make(map[baseKey]*Outcome, len(baseOuts))
	for i, out := range baseOuts {
		baselines[baseKeys[i]] = out
	}

	// Cells.
	var tasks []pool.Task[MatrixCell]
	for _, spec := range opt.Apps {
		for _, topo := range opt.Topologies {
			for _, tracker := range opt.Trackers {
				for _, policy := range opt.Policies {
					spec, topo, tracker, policy := spec, topo, tracker, policy
					base := baselines[baseKey{spec.Name, topo.Name}]
					tasks = append(tasks, pool.Task[MatrixCell]{
						Label: fmt.Sprintf("matrix/%s/%s/%s+%s",
							spec.Name, topo.Name, tracker, policy),
						Run: func() (MatrixCell, error) {
							out, err := RunMatrixCell(spec, opt.Scale, topo,
								tracker, policy, opt.SlowdownPct)
							if err != nil {
								return MatrixCell{}, err
							}
							cell := MatrixCell{
								App:      spec.Name,
								Topology: topo.Name,
								Tracker:  tracker,
								Policy:   policy,
								SlowdownPct: 100 *
									sim.Slowdown(base.Result, out.Result),
								ColdFraction: out.Result.MeanColdFraction(opt.Scale.WarmupNs),
								Stats:        out.Engine.Stats(),
								Ops:          out.Result.Ops,
							}
							cell.Accuracy, cell.ConfusionValid =
								confusionAccuracy(out.Telemetry, opt.Scale.WarmupNs)
							if sv, err := placementSavings(out); err == nil {
								cell.Savings = sv
							}
							return cell, nil
						},
					})
				}
			}
		}
	}
	cells, err := pool.Map(opt.Workers, tasks)
	if err != nil {
		return nil, err
	}
	return &MatrixReport{Scale: opt.Scale, Cells: cells}, nil
}

// Table renders the "which policy when" comparison.
func (r *MatrixReport) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Policy matrix (%s scale): slowdown vs. savings vs. accuracy", r.Scale.Name),
		"app", "topology", "tracker", "policy",
		"slowdown%", "coldfrac%", "savings%", "accuracy%",
		"demote", "promote", "sink", "quarantine")
	for _, c := range r.Cells {
		acc := "n/a"
		if c.ConfusionValid {
			acc = fmt.Sprintf("%.1f", c.Accuracy*100)
		}
		t.Add(c.App, c.Topology, c.Tracker, c.Policy,
			fmt.Sprintf("%.2f", c.SlowdownPct),
			fmt.Sprintf("%.1f", c.ColdFraction*100),
			fmt.Sprintf("%.1f", c.Savings*100),
			acc,
			fmt.Sprintf("%d", c.Stats.Demotions),
			fmt.Sprintf("%d", c.Stats.Promotions),
			fmt.Sprintf("%d", c.Stats.Sinks),
			fmt.Sprintf("%d", c.Stats.Quarantined),
		)
	}
	return t
}

// WriteCSV emits the cells in machine-readable form.
func (r *MatrixReport) WriteCSV(w io.Writer) error {
	return r.Table().WriteCSV(w)
}
