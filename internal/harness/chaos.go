package harness

import (
	"fmt"

	"thermostat/internal/chaos"
	"thermostat/internal/pool"
	"thermostat/internal/sim"
	"thermostat/internal/workload"
)

// ChaosPoint is one arm of a ChaosSweep: a full Thermostat run at one
// injection rate, with the run's fault report surfaced alongside.
type ChaosPoint struct {
	// Rate is the per-site injection probability this arm ran at.
	Rate float64
	// Outcome is the complete run (Outcome.Faults carries the report).
	Outcome *Outcome
}

// ChaosOptions configures a ChaosSweep.
type ChaosOptions struct {
	// Scale is the size/time transform (default Tiny()).
	Scale Scale
	// SlowdownPct is the Thermostat target (default 3).
	SlowdownPct float64
	// Workers bounds the sweep's parallelism (0 = all cores). Arms are
	// independent seeded runs, so results are bit-identical at any
	// worker count.
	Workers int
	// Base is the injector template each arm copies; Rate is overridden
	// per arm, everything else (Seed, SiteRates, PermanentFraction)
	// carries through. A zero Seed still yields a valid injector — the
	// chaos stream is seeded independently of the workload's.
	Base chaos.Config
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Scale.Div == 0 {
		o.Scale = Tiny()
	}
	if o.SlowdownPct == 0 {
		o.SlowdownPct = 3
	}
	return o
}

// ChaosSweep runs spec under Thermostat once per injection rate and
// returns one point per rate, in input order. The sweep fails fast: a rate
// whose run errors out stops dispatching the remaining arms (in-flight
// arms drain), since a configuration the policy cannot survive makes the
// rest of the sweep moot. Rate 0 arms install no injector at all, so the
// zero point doubles as the sweep's built-in control run.
func ChaosSweep(spec workload.Spec, rates []float64, opt ChaosOptions) ([]ChaosPoint, error) {
	opt = opt.withDefaults()
	if err := opt.Scale.Validate(); err != nil {
		return nil, err
	}
	tasks := make([]pool.Task[*Outcome], len(rates))
	for i, rate := range rates {
		rate := rate
		cfg := opt.Base
		cfg.Rate = rate
		tasks[i] = pool.Task[*Outcome]{
			Label: fmt.Sprintf("chaos/%s/rate=%g", spec.Name, rate),
			Run: func() (*Outcome, error) {
				return RunThermostatWith(spec, opt.Scale, opt.SlowdownPct,
					func(c *sim.Config) { c.Chaos = cfg }, nil)
			},
		}
	}
	outs, err := pool.MapOpts(pool.Options{Workers: opt.Workers, FailFast: true}, tasks)
	if err != nil {
		return nil, err
	}
	points := make([]ChaosPoint, len(rates))
	for i, out := range outs {
		points[i] = ChaosPoint{Rate: rates[i], Outcome: out}
	}
	return points, nil
}
