package harness

import (
	"fmt"

	"thermostat/internal/cgroup"
	"thermostat/internal/core"
	"thermostat/internal/fleet"
	"thermostat/internal/mem"
	"thermostat/internal/obsv"
	"thermostat/internal/pool"
	"thermostat/internal/pricing"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

// FleetTenant describes one tenant of a fleet experiment: a workload, its
// Thermostat composition, its SLO, and its churn schedule.
type FleetTenant struct {
	Name string
	Spec workload.Spec
	// SLOPct is the tenant's tolerable-slowdown objective and the
	// TolerableSlowdownPct its cgroup's Thermostat runs with (default 3).
	SLOPct float64
	// Priority and Share weight arbitration and the access interleave
	// (defaults 1).
	Priority int
	Share    int
	// FloorBytes is the guaranteed minimum DRAM grant (already scaled).
	FloorBytes uint64
	// Tracker and Policy pick the engine composition (defaults "poison"
	// and "threshold" — the paper's Thermostat).
	Tracker string
	Policy  string
	// ArriveNs and DepartNs schedule churn relative to run start
	// (0 = present from the start / stays to the end).
	ArriveNs int64
	DepartNs int64
	// SeedDelta offsets this tenant's app seed from Scale.Seed so tenants
	// draw independent streams. Tenant 0 defaults to 0 — its app and
	// engine then seed exactly as RunComposed would, which is what the
	// degenerate-fleet differential test pins — and tenant i>0 defaults
	// to i spaced by a large odd constant.
	SeedDelta uint64
}

func (t FleetTenant) withDefaults(i int) FleetTenant {
	if t.Name == "" {
		t.Name = fmt.Sprintf("%s-%d", t.Spec.Name, i)
	}
	if t.SLOPct == 0 {
		t.SLOPct = 3
	}
	if t.Priority < 1 {
		t.Priority = 1
	}
	if t.Share < 1 {
		t.Share = 1
	}
	if t.Tracker == "" {
		t.Tracker = "poison"
	}
	if t.Policy == "" {
		t.Policy = "threshold"
	}
	if t.SeedDelta == 0 {
		t.SeedDelta = uint64(i) * 0x9e3779b97f4a7c15
	}
	return t
}

// scaledFootprint estimates the tenant's mapped bytes under sc: the spec's
// committed bytes divided down, plus per-segment huge-page rounding slop.
func (t FleetTenant) scaledFootprint(sc Scale) uint64 {
	var fp uint64
	for _, seg := range t.Spec.Segments {
		fp += seg.Bytes
	}
	if g := t.Spec.Growth; g != nil {
		fp += g.ChunkBytes * uint64(g.MaxChunks)
	}
	return fp/sc.Div + uint64(len(t.Spec.Segments)+1)*(2<<20)
}

// FleetOptions configures a FleetRun.
type FleetOptions struct {
	// Scale is the size/time transform (default Repro()).
	Scale Scale
	// Tenants is the fleet population in member order.
	Tenants []FleetTenant
	// FastBytes overrides the fast tier's capacity — the DRAM pool the
	// arbiter splits. The default sizes the machine as the sum of each
	// tenant's solo sizing, which leaves the pool unconstrained; set it
	// below the combined footprint to create real arbitration pressure.
	FastBytes uint64
	// Workers fans the per-tenant all-DRAM baselines out (the fleet run
	// itself shares one machine and is inherently serial). Results are
	// bit-identical at any setting.
	Workers int
	// Baselines enables the per-tenant solo all-DRAM baseline runs.
	Baselines bool
	// Telemetry attaches a collector to the fleet machine.
	Telemetry *TelemetryOptions
	// Publisher, when non-nil, tees the fleet machine's recorder stream
	// (and per-tenant arbiter snapshots) into the live observability plane
	// and publishes each tenant engine's classification census. Strictly
	// read-side; exports stay byte-identical.
	Publisher *obsv.Publisher
	// ConfigMutate, when non-nil, adjusts the machine config before the
	// machine is built — the hook chaos experiments install their
	// injector through. A zero-rate chaos config installs no injector, so
	// mutated-but-disabled runs stay bit-identical to unmutated ones.
	ConfigMutate func(*sim.Config)
}

// FleetOutcome bundles a fleet run with everything reports and tests need.
type FleetOutcome struct {
	Scale   Scale
	Machine *sim.Machine
	Root    *cgroup.Group
	Tenants []*core.Tenant
	Members []fleet.Member
	Result  *fleet.Result
	// Baselines maps tenant name to its solo all-DRAM run (only with
	// FleetOptions.Baselines).
	Baselines map[string]*sim.RunResult
	// Telemetry is the fleet machine's collector when enabled.
	Telemetry *telemetry.Collector
}

// FleetRun builds one machine sized for the whole population, wires each
// tenant's cgroup (a child of one pool root), app, and scoped engine, and
// runs them under fleet arbitration. The per-tenant all-DRAM baselines, when
// requested, fan out across opt.Workers; everything is deterministic and
// bit-identical at any worker count.
func FleetRun(opt FleetOptions) (*FleetOutcome, error) {
	if opt.Scale.Div == 0 {
		opt.Scale = Repro()
	}
	sc := opt.Scale
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(opt.Tenants) == 0 {
		return nil, fmt.Errorf("harness: fleet with no tenants")
	}
	tens := make([]FleetTenant, len(opt.Tenants))
	for i, t := range opt.Tenants {
		tens[i] = t.withDefaults(i)
	}

	// Machine: tenant 0's solo sizing (TLB/LLC reach depend only on the
	// scale) widened by every further tenant's memory, so a one-tenant
	// fleet gets exactly the RunComposed machine.
	cfg := sc.MachineConfig(tens[0].Spec, true)
	for _, t := range tens[1:] {
		extra := sc.MachineConfig(t.Spec, true)
		cfg.FastSpec.Capacity += extra.FastSpec.Capacity
		cfg.SlowSpec.Capacity += extra.SlowSpec.Capacity
	}
	if opt.FastBytes > 0 {
		cfg.FastSpec.Capacity = opt.FastBytes
	}
	if opt.ConfigMutate != nil {
		opt.ConfigMutate(&cfg)
	}
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	// Note: no EnablePageCounts here — the solo RunComposedWith runs the
	// differential tests compare against attach a bare Recorder, and the
	// confusion-matrix columns must agree (absent) for byte-identity.
	var col *telemetry.Collector
	if opt.Telemetry != nil {
		col = opt.Telemetry.NewCollector()
		m.SetRecorder(col)
	}
	if opt.Publisher != nil {
		m.SetRecorder(opt.Publisher.Recorder("fleet", col))
	}

	rootParams := cgroup.Default()
	rootParams.SamplePeriodNs = sc.PeriodNs
	rootParams.SlowMemLatencyNs = 1000 * sc.TimeDilate
	root, err := cgroup.NewGroup("fleet", rootParams)
	if err != nil {
		return nil, err
	}

	out := &FleetOutcome{Scale: sc, Machine: m, Root: root}
	for _, t := range tens {
		p := cgroup.Default()
		p.TolerableSlowdownPct = t.SLOPct
		p.SamplePeriodNs = sc.PeriodNs
		p.SlowMemLatencyNs = 1000 * sc.TimeDilate
		g, err := root.NewChild(t.Name, p)
		if err != nil {
			return nil, err
		}
		app, err := sc.NewApp(t.Spec, sc.Seed+t.SeedDelta)
		if err != nil {
			return nil, err
		}
		eng, err := core.ComposeByName(g, t.Tracker, t.Policy, sc.Seed+t.SeedDelta+0x7e)
		if err != nil {
			return nil, err
		}
		if opt.Publisher != nil {
			eng.EnablePublish()
			opt.Publisher.AttachEngine("fleet/"+t.Name, eng)
		}
		ten := core.NewTenant(t.Name, app, g, eng)
		ten.SLOPct = t.SLOPct
		ten.Priority = t.Priority
		ten.Share = t.Share
		ten.FloorBytes = t.FloorBytes
		if err := ten.Validate(); err != nil {
			return nil, err
		}
		out.Tenants = append(out.Tenants, ten)
		out.Members = append(out.Members, fleet.Member{
			Tenant: ten, ArriveNs: t.ArriveNs, DepartNs: t.DepartNs,
			EstBytes: t.scaledFootprint(sc),
		})
	}

	res, err := fleet.Run(m, fleet.Config{
		Root: root, DurationNs: sc.DurationNs, WarmupNs: sc.WarmupNs,
		WindowNs: sc.PeriodNs, ArbiterPeriodNs: sc.PeriodNs,
	}, out.Members)
	if err != nil {
		return nil, err
	}
	out.Result = res
	out.Telemetry = col

	if opt.Baselines {
		tasks := make([]pool.Task[*sim.RunResult], len(tens))
		for i, t := range tens {
			t := t
			scb := sc
			scb.Seed = sc.Seed + t.SeedDelta
			tasks[i] = pool.Task[*sim.RunResult]{
				Label: "fleet-baseline/" + t.Name,
				Run: func() (*sim.RunResult, error) {
					o, err := RunBaseline(t.Spec, scb)
					if err != nil {
						return nil, err
					}
					return o.Result, nil
				},
			}
		}
		results, err := pool.Map(opt.Workers, tasks)
		if err != nil {
			return nil, err
		}
		out.Baselines = make(map[string]*sim.RunResult, len(tens))
		for i, t := range tens {
			out.Baselines[t.Name] = results[i]
		}
	}
	return out, nil
}

// ExportTenantTraces writes one Chrome-trace + JSONL pair per tenant,
// filtered from the fleet's shared collector by the tenant's name tag and
// address ranges. Returns tenant name → [trace, metrics] paths. Exports are
// derived from virtual-time state only, so they are byte-identical at any
// worker count.
func (o *FleetOutcome) ExportTenantTraces(topt *TelemetryOptions) (map[string][2]string, error) {
	if o.Telemetry == nil {
		return nil, fmt.Errorf("harness: fleet ran without telemetry")
	}
	if topt == nil {
		topt = &TelemetryOptions{}
	}
	paths := make(map[string][2]string, len(o.Tenants))
	for _, t := range o.Tenants {
		sub := o.Telemetry.Filter(telemetry.TenantEventFilter(t.Name, t.Regions()))
		tp, mp, err := topt.Export("fleet-"+t.Name, sub)
		if err != nil {
			return nil, err
		}
		paths[t.Name] = [2]string{tp, mp}
	}
	return paths, nil
}

// FleetSavings prices the fleet's final machine-wide placement against an
// all-DRAM system of the same footprint (the paper's cost model applied to
// the whole pool).
func FleetSavings(o *FleetOutcome) (float64, error) {
	fp := o.Result.Global.FinalFootprint
	if fp.ByTier == nil || fp.Total() == 0 {
		return 0, fmt.Errorf("harness: fleet result has no per-tier footprint")
	}
	sys := o.Machine.Memory()
	topCost := sys.Tier(mem.Fast).Spec().CostPerGB
	if topCost <= 0 {
		return 0, fmt.Errorf("harness: top tier has no cost")
	}
	var shares []pricing.TierShare
	for i := 0; i < sys.NumTiers(); i++ {
		t := sys.Tier(mem.TierID(i))
		shares = append(shares, pricing.TierShare{
			Name:      t.Name(),
			Fraction:  float64(fp.ByTier[i].Total()) / float64(fp.Total()),
			CostRatio: t.Spec().CostPerGB / topCost,
		})
	}
	return pricing.SavingsTiered(shares)
}
