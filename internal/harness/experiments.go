package harness

import (
	"fmt"
	"sort"

	"thermostat/internal/cgroup"
	"thermostat/internal/core"
	"thermostat/internal/mem"
	"thermostat/internal/obsv"
	"thermostat/internal/pool"
	"thermostat/internal/pricing"
	"thermostat/internal/report"
	"thermostat/internal/sim"
	"thermostat/internal/stats"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

// Options configures an experiment.
type Options struct {
	// Scale is the size/time transform (default Repro()).
	Scale Scale
	// Apps restricts the application set (default workload.All()).
	Apps []workload.Spec
	// SlowdownPct is the Thermostat target (default 3).
	SlowdownPct float64
	// Workers bounds the goroutines fanning independent runs out: 0 uses
	// every core (GOMAXPROCS), 1 runs the exact old serial path. Results
	// are bit-for-bit identical at any setting — each run owns its own
	// machine and seeded RNG (see DESIGN.md's determinism contract).
	Workers int
	// Telemetry, when non-nil, attaches a collector to every RunAll run
	// and exports per-run trace files (Chrome trace + JSONL) under
	// Telemetry.Dir. Traces are in virtual time: byte-identical at any
	// Workers setting.
	Telemetry *TelemetryOptions
	// Publisher, when non-nil, tees every run's recorder stream into the
	// live observability plane (see internal/obsv). Strictly read-side:
	// exports stay byte-identical with or without it.
	Publisher *obsv.Publisher
}

func (o Options) withDefaults() Options {
	if o.Scale.Div == 0 {
		o.Scale = Repro()
	}
	if len(o.Apps) == 0 {
		o.Apps = workload.All()
	}
	if o.SlowdownPct == 0 {
		o.SlowdownPct = 3
	}
	return o
}

// AppRun pairs a Thermostat run with its all-DRAM baseline.
type AppRun struct {
	Base   *Outcome
	Thermo *Outcome
	// Slowdown is the measured throughput degradation (0.03 = 3%).
	Slowdown float64
	// ColdFraction is the mean post-warmup cold share of the footprint.
	ColdFraction float64
}

// RunAll executes the paired baseline/Thermostat runs for every app — the
// shared input of Figures 3 and 5-10 and Tables 3 and 4. The per-app pairs
// are independent and fan out across opt.Workers goroutines; the baseline
// and Thermostat runs of one app stay paired in a single task so the serial
// order within each pair is preserved.
func RunAll(opt Options) (map[string]*AppRun, error) {
	opt = opt.withDefaults()
	tasks := make([]pool.Task[*AppRun], len(opt.Apps))
	for i, spec := range opt.Apps {
		spec := spec
		tasks[i] = pool.Task[*AppRun]{Label: "runall/" + spec.Name, Run: func() (*AppRun, error) {
			var baseCol, thCol *telemetry.Collector
			var baseMutate, thMutate func(*sim.Config)
			var engMutate func(*cgroup.Group, *core.Engine)
			if opt.Telemetry != nil {
				baseCol = opt.Telemetry.NewCollector()
				thCol = opt.Telemetry.NewCollector()
				baseMutate = func(cfg *sim.Config) { cfg.Recorder = baseCol }
				thMutate = func(cfg *sim.Config) { cfg.Recorder = thCol }
			}
			if opt.Publisher != nil {
				// Tee through the publisher (collector may be nil; the
				// tee forwards only when it isn't).
				baseRec := opt.Publisher.Recorder(spec.Name+"/baseline", baseCol)
				thRec := opt.Publisher.Recorder(spec.Name+"/thermostat", thCol)
				baseMutate = func(cfg *sim.Config) { cfg.Recorder = baseRec }
				thMutate = func(cfg *sim.Config) { cfg.Recorder = thRec }
				engMutate = func(_ *cgroup.Group, eng *core.Engine) {
					eng.EnablePublish()
					opt.Publisher.AttachEngine(spec.Name+"/thermostat", eng)
				}
			}
			base, err := RunBaselineWith(spec, opt.Scale, baseMutate)
			if err != nil {
				return nil, err
			}
			th, err := RunThermostatWith(spec, opt.Scale, opt.SlowdownPct, thMutate, engMutate)
			if err != nil {
				return nil, err
			}
			if opt.Telemetry != nil {
				base.Telemetry, th.Telemetry = baseCol, thCol
				if _, _, err := opt.Telemetry.Export("runall-"+spec.Name+"-baseline", baseCol); err != nil {
					return nil, err
				}
				if _, _, err := opt.Telemetry.Export("runall-"+spec.Name+"-thermostat", thCol); err != nil {
					return nil, err
				}
			}
			return &AppRun{
				Base:         base,
				Thermo:       th,
				Slowdown:     sim.Slowdown(base.Result, th.Result),
				ColdFraction: th.Result.MeanColdFraction(opt.Scale.WarmupNs),
			}, nil
		}}
	}
	runs, err := pool.Map(opt.Workers, tasks)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*AppRun, len(runs))
	for i, r := range runs {
		out[opt.Apps[i].Name] = r
	}
	return out, nil
}

// ---------------------------------------------------------------- Figure 1

// Fig1Result is the fraction of 2MB pages idle for the 10s-equivalent
// window, detected via hardware Accessed bits (the kstaled baseline).
type Fig1Result struct {
	Scale Scale
	// IdleFrac maps app name to idle fraction in [0, 1].
	IdleFrac map[string]float64
	order    []string
}

// Fig1 regenerates Figure 1.
func Fig1(opt Options) (*Fig1Result, error) {
	opt = opt.withDefaults()
	res := &Fig1Result{Scale: opt.Scale, IdleFrac: map[string]float64{}}
	// 10s of paper time is 10s·F of simulated time; detect idleness as 4
	// consecutive idle scans of window/4 each.
	const idleScans = 4
	window := 10e9 * opt.Scale.TimeDilate
	sc := opt.Scale
	sc.PeriodNs = window / idleScans
	// The run must span several idle windows regardless of profile.
	if sc.DurationNs < 3*window {
		sc.DurationNs = 3 * window
	}
	if sc.WarmupNs >= sc.DurationNs {
		sc.WarmupNs = sc.DurationNs / 5
	}
	tasks := make([]pool.Task[float64], len(opt.Apps))
	for i, spec := range opt.Apps {
		spec := spec
		tasks[i] = pool.Task[float64]{Label: "fig1/" + spec.Name, Run: func() (float64, error) {
			pol := &scanOnly{interval: sc.PeriodNs}
			if _, err := RunPolicy(spec, sc, pol); err != nil {
				return 0, err
			}
			return pol.scanner.IdleFraction(idleScans), nil
		}}
	}
	fracs, err := pool.Map(opt.Workers, tasks)
	if err != nil {
		return nil, err
	}
	for i, spec := range opt.Apps {
		res.IdleFrac[spec.Name] = fracs[i]
		res.order = append(res.order, spec.Name)
	}
	return res, nil
}

// Table renders the result.
func (r *Fig1Result) Table() *report.Table {
	t := report.NewTable(
		"Figure 1: fraction of 2MB pages idle for 10s (Accessed-bit detection)",
		"application", "idle_fraction_pct")
	for _, name := range r.order {
		t.AddF(name, r.IdleFrac[name]*100)
	}
	return t
}

// Bar renders the result as an ASCII bar chart.
func (r *Fig1Result) Bar() string {
	var labels []string
	var vals []float64
	for _, name := range r.order {
		labels = append(labels, name)
		vals = append(vals, r.IdleFrac[name])
	}
	return report.Bar("Figure 1: 2MB pages idle for 10s", labels, vals, 50)
}

// NaiveResult quantifies what happens when the Figure 1 idle pages are
// actually placed in slow memory by an Accessed-bit-only policy — the
// paper's caption: for Redis the degradation exceeds 10%.
type NaiveResult struct {
	App          string
	Slowdown     float64
	ColdFraction float64
	Demotions    uint64
	Promotions   uint64
}

// NaivePlacement runs the idle-demote baseline on one app and measures the
// damage. The run is long enough to span several hot-set rotations, and any
// rotating picker is accelerated to twice the idle window (ratios between
// window, rotation and run length mirror the paper's 10s window against
// minutes of drift) — the idle set looks safe when placed and becomes hot
// afterwards, with no correction mechanism to undo the damage.
func NaivePlacement(spec workload.Spec, opt Options) (*NaiveResult, error) {
	opt = opt.withDefaults()
	const idleScans = 4
	sc := opt.Scale
	window := 10e9 * sc.TimeDilate
	sc.PeriodNs = window / idleScans
	if sc.DurationNs < 8*window {
		sc.DurationNs = 8 * window
	}
	sc.WarmupNs = 2 * window
	// Accelerate hot-set drift: rotation lands at 2x the idle window after
	// the harness's time dilation.
	for i := range spec.Segments {
		if p, ok := spec.Segments[i].Picker.(*workload.HotspotSweep); ok && p.RotatePeriodNs > 0 {
			p.RotatePeriodNs = 20e9
		}
	}
	// The paper's naive baseline has no correction mechanism: pages placed
	// on idle-bit evidence stay in slow memory. The all-DRAM reference and
	// the naive run are independent; fan them out.
	pol := &core.IdleDemote{Interval: sc.PeriodNs, IdleScans: idleScans, NoPromote: true}
	outs, err := pool.Map(opt.Workers, []pool.Task[*Outcome]{
		{Label: "naive/" + spec.Name + "/baseline", Run: func() (*Outcome, error) {
			return RunBaseline(spec, sc)
		}},
		{Label: "naive/" + spec.Name + "/idle-demote", Run: func() (*Outcome, error) {
			return RunPolicy(spec, sc, pol)
		}},
	})
	if err != nil {
		return nil, err
	}
	base, naive := outs[0], outs[1]
	return &NaiveResult{
		App:          spec.Name,
		Slowdown:     sim.Slowdown(base.Result, naive.Result),
		ColdFraction: naive.Result.MeanColdFraction(sc.WarmupNs),
		Demotions:    pol.Demotions(),
		Promotions:   pol.Promotions(),
	}, nil
}

// ---------------------------------------------------------------- Figure 2

// Fig2Point is one 2MB page in the Figure 2 scatter.
type Fig2Point struct {
	// HotRegions is the number of 4KB children accessed in three
	// consecutive scan intervals.
	HotRegions int
	// RatePerSec is the ground-truth memory access rate (paper units).
	RatePerSec float64
}

// Fig2Result is the Accessed-bit-vs-true-rate scatter for Redis.
type Fig2Result struct {
	Points []Fig2Point
	// Pearson is the correlation between the two axes; the paper's claim
	// is that it is weak.
	Pearson float64
}

// Fig2 regenerates Figure 2: split every huge page of Redis, scan Accessed
// bits at the maximum frequency compatible with the slowdown budget, and
// compare hot-region counts against the simulator's ground-truth access
// rates.
func Fig2(opt Options) (*Fig2Result, error) {
	opt = opt.withDefaults()
	spec := workload.Redis()
	sc := opt.Scale
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	m, err := sim.New(sc.MachineConfig(spec, true))
	if err != nil {
		return nil, err
	}
	m.EnablePageCounts()
	app, err := sc.NewApp(spec, sc.Seed)
	if err != nil {
		return nil, err
	}
	pol := &splitScan{interval: sc.PeriodNs}
	res, err := sim.Run(m, app, pol, sim.RunConfig{
		DurationNs: sc.DurationNs, WarmupNs: sc.WarmupNs, WindowNs: sc.PeriodNs,
	})
	if err != nil {
		return nil, err
	}
	counts := m.PageCounts()
	durSec := float64(res.DurationNs) / 1e9
	out := &Fig2Result{}
	var xs, ys []float64
	for _, base := range pol.bases {
		hot := pol.scanner.HotSubpages(base, 3)
		rate := sc.PaperRate(float64(counts[base]) / durSec)
		out.Points = append(out.Points, Fig2Point{HotRegions: hot, RatePerSec: rate})
		xs = append(xs, float64(hot))
		ys = append(ys, rate)
	}
	out.Pearson = stats.Pearson(xs, ys)
	return out, nil
}

// Table renders the scatter points.
func (r *Fig2Result) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 2: Redis access rate vs Accessed-bit hot 4KB regions (Pearson r = %.3f)", r.Pearson),
		"hot_4k_regions", "true_accesses_per_sec")
	pts := append([]Fig2Point(nil), r.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].HotRegions < pts[j].HotRegions })
	for _, p := range pts {
		t.AddF(p.HotRegions, p.RatePerSec)
	}
	return t
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one app's huge-page gain under virtualization.
type Table1Row struct {
	App string
	// GainPct is (2M/2M throughput / 4K/4K throughput - 1) · 100.
	GainPct float64
}

// Table1 regenerates Table 1: throughput gain from 2MB pages at both guest
// and host versus 4KB at both, under nested paging.
func Table1(opt Options) ([]Table1Row, error) {
	opt = opt.withDefaults()
	// Placement plays no role here; shorten the schedule.
	sc := opt.Scale
	sc.DurationNs /= 3
	if sc.WarmupNs >= sc.DurationNs {
		sc.WarmupNs = sc.DurationNs / 5
	}
	grid := make([][]pool.Task[*Outcome], len(opt.Apps))
	for i, spec := range opt.Apps {
		spec := spec
		grid[i] = []pool.Task[*Outcome]{
			{Label: "table1/" + spec.Name + "/2M", Run: func() (*Outcome, error) {
				return RunPageMode(spec, sc, true)
			}},
			{Label: "table1/" + spec.Name + "/4K", Run: func() (*Outcome, error) {
				return RunPageMode(spec, sc, false)
			}},
		}
	}
	outs, err := pool.Grid(opt.Workers, grid)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for i, spec := range opt.Apps {
		huge, small := outs[i][0], outs[i][1]
		gain := huge.Result.Throughput/small.Result.Throughput - 1
		rows = append(rows, Table1Row{App: spec.Name, GainPct: gain * 100})
	}
	return rows, nil
}

// Table1Table renders the rows.
func Table1Table(rows []Table1Row) *report.Table {
	t := report.NewTable(
		"Table 1: throughput gain from 2MB huge pages under virtualization",
		"application", "gain_pct")
	for _, r := range rows {
		t.AddF(r.App, r.GainPct)
	}
	return t
}

// ---------------------------------------------------------------- Figure 3

// Fig3Series is one app's slow-memory access rate over time in paper units.
type Fig3Series struct {
	App string
	// Rate is accesses/sec (paper units) per window.
	Rate *stats.Series
	// MeanPostWarmup is the average rate after warmup.
	MeanPostWarmup float64
	// TargetRate is the x/(100·ts) line (30K/s at 3%, 1us).
	TargetRate float64
}

// Fig3 extracts the slow-memory access-rate series from completed runs.
func Fig3(runs map[string]*AppRun, opt Options) []Fig3Series {
	opt = opt.withDefaults()
	target := opt.SlowdownPct / 100 / 1e-6 // paper units: ts = 1us
	var out []Fig3Series
	for _, spec := range opt.Apps {
		run, ok := runs[spec.Name]
		if !ok {
			continue
		}
		conv := stats.NewSeries("slow_rate_" + spec.Name)
		for i, ts := range run.Thermo.Result.SlowRate.Times {
			conv.Append(ts, opt.Scale.PaperRate(run.Thermo.Result.SlowRate.Values[i]))
		}
		out = append(out, Fig3Series{
			App:            spec.Name,
			Rate:           conv,
			MeanPostWarmup: conv.MeanAfter(opt.Scale.WarmupNs),
			TargetRate:     target,
		})
	}
	return out
}

// Fig3Table renders the series side by side.
func Fig3Table(series []Fig3Series) *report.Table {
	ss := make([]*stats.Series, len(series))
	for i, s := range series {
		ss[i] = s.Rate
	}
	title := "Figure 3: slow memory access rate over time (accesses/sec, paper units)"
	if len(series) > 0 {
		title += fmt.Sprintf(" — target %.0f/s", series[0].TargetRate)
	}
	return report.SeriesTable(title, ss...)
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one app's footprint.
type Table2Row struct {
	App    string
	RSSGB  float64
	FileGB float64
}

// Table2 measures end-of-run footprints in paper units (scaled back up).
func Table2(runs map[string]*AppRun, opt Options) []Table2Row {
	opt = opt.withDefaults()
	var rows []Table2Row
	for _, spec := range opt.Apps {
		run, ok := runs[spec.Name]
		if !ok {
			continue
		}
		rss, file := run.Thermo.App.FootprintBytes()
		rows = append(rows, Table2Row{
			App:    spec.Name,
			RSSGB:  float64(rss*opt.Scale.Div) / (1 << 30),
			FileGB: float64(file*opt.Scale.Div) / (1 << 30),
		})
	}
	return rows
}

// Table2Table renders the rows.
func Table2Table(rows []Table2Row) *report.Table {
	t := report.NewTable("Table 2: application memory footprints (paper units)",
		"application", "resident_set_gb", "file_mapped_gb")
	for _, r := range rows {
		t.AddF(r.App, r.RSSGB, r.FileGB)
	}
	return t
}

// ------------------------------------------------- Figures 5-10 (cold data)

// ColdDataFigure is one app's footprint-over-time breakdown plus the
// headline numbers the paper quotes in each figure caption.
type ColdDataFigure struct {
	App          string
	Slowdown     float64
	ColdFraction float64
	// Series are in paper-unit GB.
	Cold2M, Cold4K, Hot2M, Hot4K *stats.Series
}

// ColdData builds the Figure 5-10 artifacts from completed runs.
func ColdData(runs map[string]*AppRun, opt Options) []ColdDataFigure {
	opt = opt.withDefaults()
	toGB := func(name string, s *stats.Series) *stats.Series {
		out := stats.NewSeries(name)
		for i, ts := range s.Times {
			out.Append(ts, s.Values[i]*float64(opt.Scale.Div)/(1<<30))
		}
		return out
	}
	var out []ColdDataFigure
	for _, spec := range opt.Apps {
		run, ok := runs[spec.Name]
		if !ok {
			continue
		}
		r := run.Thermo.Result
		out = append(out, ColdDataFigure{
			App:          spec.Name,
			Slowdown:     run.Slowdown,
			ColdFraction: run.ColdFraction,
			Cold2M:       toGB("2MB_cold_GB", r.Cold2M),
			Cold4K:       toGB("4KB_cold_GB", r.Cold4K),
			Hot2M:        toGB("2MB_hot_GB", r.Hot2M),
			Hot4K:        toGB("4KB_hot_GB", r.Hot4K),
		})
	}
	return out
}

// Table renders one cold-data figure.
func (f ColdDataFigure) Table() *report.Table {
	title := fmt.Sprintf(
		"Cold data over time: %s (slowdown %.1f%%, mean cold fraction %.0f%%)",
		f.App, f.Slowdown*100, f.ColdFraction*100)
	return report.SeriesTable(title, f.Cold2M, f.Cold4K, f.Hot2M, f.Hot4K)
}

// ---------------------------------------------------------------- Figure 11

// Fig11Row is one app at one slowdown target.
type Fig11Row struct {
	App          string
	SlowdownPct  float64
	ColdFraction float64
	Measured     float64 // measured slowdown fraction
}

// fig11Targets are the tolerable-slowdown points the sweep visits.
var fig11Targets = []float64{3, 6, 10}

// Fig11 sweeps the tolerable-slowdown knob over {3, 6, 10}%. Every cell of
// the app × target grid (plus each app's all-DRAM reference) is an
// independent run; the whole grid fans out across opt.Workers goroutines
// and merges back in app-major, target-minor order.
func Fig11(opt Options) ([]Fig11Row, error) {
	opt = opt.withDefaults()
	grid := make([][]pool.Task[*Outcome], len(opt.Apps))
	for i, spec := range opt.Apps {
		spec := spec
		row := []pool.Task[*Outcome]{
			{Label: "fig11/" + spec.Name + "/baseline", Run: func() (*Outcome, error) {
				return RunBaseline(spec, opt.Scale)
			}},
		}
		for _, pct := range fig11Targets {
			pct := pct
			row = append(row, pool.Task[*Outcome]{
				Label: fmt.Sprintf("fig11/%s/%g%%", spec.Name, pct),
				Run: func() (*Outcome, error) {
					return RunThermostat(spec, opt.Scale, pct)
				}})
		}
		grid[i] = row
	}
	outs, err := pool.Grid(opt.Workers, grid)
	if err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for i, spec := range opt.Apps {
		base := outs[i][0]
		for j, pct := range fig11Targets {
			th := outs[i][j+1]
			rows = append(rows, Fig11Row{
				App:          spec.Name,
				SlowdownPct:  pct,
				ColdFraction: th.Result.MeanColdFraction(opt.Scale.WarmupNs),
				Measured:     sim.Slowdown(base.Result, th.Result),
			})
		}
	}
	return rows, nil
}

// Fig11Table renders the sweep.
func Fig11Table(rows []Fig11Row) *report.Table {
	t := report.NewTable(
		"Figure 11: cold data fraction vs specified tolerable slowdown",
		"application", "target_slowdown_pct", "cold_fraction_pct", "measured_slowdown_pct")
	for _, r := range rows {
		t.AddF(r.App, r.SlowdownPct, r.ColdFraction*100, r.Measured*100)
	}
	return t
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one app's migration traffic.
type Table3Row struct {
	App string
	// MigrationMBps is demotion traffic, false-classification is the
	// correction (promotion) traffic — both in paper-unit MB/s.
	MigrationMBps  float64
	FalseClassMBps float64
}

// Table3 extracts migration bandwidths from completed runs, converting to
// paper units: bytes scale back up by the footprint divisor, and the run's
// compressed timeline stretches back out by the scan-interval compression.
func Table3(runs map[string]*AppRun, opt Options) []Table3Row {
	opt = opt.withDefaults()
	var rows []Table3Row
	for _, spec := range opt.Apps {
		run, ok := runs[spec.Name]
		if !ok {
			continue
		}
		m := run.Thermo.Machine.Migrator().Meter()
		now := run.Thermo.Machine.Clock()
		conv := float64(opt.Scale.Div) / opt.Scale.PeriodCompression()
		rows = append(rows, Table3Row{
			App:            spec.Name,
			MigrationMBps:  m.RateMBps(mem.Demotion, now) * conv,
			FalseClassMBps: m.RateMBps(mem.Promotion, now) * conv,
		})
	}
	return rows
}

// Table3Table renders the rows.
func Table3Table(rows []Table3Row) *report.Table {
	t := report.NewTable("Table 3: migration and false-classification rates (MB/s, paper units)",
		"application", "migration_mbps", "false_classification_mbps")
	for _, r := range rows {
		t.AddF(r.App, r.MigrationMBps, r.FalseClassMBps)
	}
	return t
}

// ---------------------------------------------------------------- Table 4

// Table4Row is one app's memory cost savings across slow-memory price
// points.
type Table4Row struct {
	App string
	// SavingsPct is indexed like pricing.PaperRatios (1/3, 1/4, 1/5).
	SavingsPct [3]float64
}

// Table4 computes cost savings from the measured cold fractions.
func Table4(runs map[string]*AppRun, opt Options) ([]Table4Row, error) {
	opt = opt.withDefaults()
	var rows []Table4Row
	for _, spec := range opt.Apps {
		run, ok := runs[spec.Name]
		if !ok {
			continue
		}
		row := Table4Row{App: spec.Name}
		for i, ratio := range pricing.PaperRatios {
			s, err := pricing.Savings(run.ColdFraction, ratio)
			if err != nil {
				return nil, err
			}
			row.SavingsPct[i] = s * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table4Table renders the rows.
func Table4Table(rows []Table4Row) *report.Table {
	t := report.NewTable("Table 4: memory spending savings vs all-DRAM",
		"application", "slow_cost_0.33x", "slow_cost_0.25x", "slow_cost_0.2x")
	for _, r := range rows {
		t.AddF(r.App,
			fmt.Sprintf("%.0f%%", r.SavingsPct[0]),
			fmt.Sprintf("%.0f%%", r.SavingsPct[1]),
			fmt.Sprintf("%.0f%%", r.SavingsPct[2]))
	}
	return t
}
