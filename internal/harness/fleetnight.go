package harness

import (
	"bytes"
	"fmt"
	"strings"

	"thermostat/internal/report"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

// FleetNightTenants is the "datacenter night" cast: two latency-critical
// services resident all night, an overnight analytics batch that finishes
// and departs, and a search service that scales up mid-run — mixed SLOs,
// priorities, and interleave shares, with churn on both edges. Times are
// fractions of the run: the batch departs at 75%, the search arrives at 40%.
func FleetNightTenants(sc Scale) []FleetTenant {
	d := sc.DurationNs
	return []FleetTenant{
		{Name: "redis-cache", Spec: workload.Redis(), SLOPct: 3, Priority: 2, Share: 2},
		{Name: "mysql-oltp", Spec: workload.MySQLTPCC(), SLOPct: 5, Priority: 2, Share: 1},
		{Name: "analytics-batch", Spec: workload.InMemAnalytics(), SLOPct: 15,
			DepartNs: d * 3 / 4},
		{Name: "search-canary", Spec: workload.WebSearch(), SLOPct: 10,
			ArriveNs: d * 2 / 5},
	}
}

// FleetNightResult is the night scenario's full report bundle.
type FleetNightResult struct {
	Outcome *FleetOutcome
	// SavingsPct prices the final machine-wide placement against all-DRAM.
	SavingsPct float64
	// Table is the per-tenant summary; Text the full rendered report.
	Table *report.Table
	Text  string
}

// FleetNight runs the seeded datacenter-night scenario: the FleetNightTenants
// cast on one machine whose DRAM pool is sized to the initial population
// (plus 8% headroom) with per-tenant floors at 10% of footprint, so the
// mid-run arrival has to be carved out of incumbents' cold memory by the
// arbiter. Fully deterministic from opt.Scale.Seed.
func FleetNight(opt Options) (*FleetNightResult, error) {
	opt = opt.withDefaults()
	sc := opt.Scale
	tens := FleetNightTenants(sc)
	var pool uint64
	for i := range tens {
		est := tens[i].scaledFootprint(sc)
		tens[i].FloorBytes = est / 10
		if tens[i].ArriveNs == 0 {
			pool += est
		}
	}
	pool += pool / 12 // ~8% headroom over the initial population

	fo, err := FleetRun(FleetOptions{
		Scale: sc, Tenants: tens, FastBytes: pool,
		Workers: opt.Workers, Baselines: true, Telemetry: opt.Telemetry,
		Publisher: opt.Publisher,
	})
	if err != nil {
		return nil, err
	}
	res := &FleetNightResult{Outcome: fo}
	if sv, err := FleetSavings(fo); err == nil {
		res.SavingsPct = 100 * sv
	}

	tbl := report.NewTable("Fleet night: per-tenant slowdown vs SLO",
		"tenant", "pri", "share", "slo%", "est_slow%", "sl_ok",
		"arrive_s", "depart_s", "ops", "tput/s", "grant_mb", "fast_mb", "foot_mb")
	for _, t := range fo.Result.Tenants {
		status := "meets"
		if t.Rejected {
			status = "rejected"
		} else if t.MeanSlowdownPct > t.SLOPct {
			status = "MISSES"
		}
		dep := "-"
		if t.DepartedNs > 0 {
			dep = fmt.Sprintf("%.0f", float64(t.DepartedNs)/1e9)
		}
		tbl.AddF(t.Name, t.Priority, t.Share,
			fmt.Sprintf("%.1f", t.SLOPct),
			fmt.Sprintf("%.2f", t.MeanSlowdownPct),
			status,
			fmt.Sprintf("%.0f", float64(t.ArrivedNs)/1e9), dep,
			t.Ops, fmt.Sprintf("%.0f", t.Throughput),
			fmt.Sprintf("%.0f", float64(t.GrantBytes)/(1<<20)),
			fmt.Sprintf("%.0f", float64(t.FastBytes)/(1<<20)),
			fmt.Sprintf("%.0f", float64(t.FootprintBytes)/(1<<20)))
	}
	res.Table = tbl

	var b strings.Builder
	fmt.Fprintf(&b, "Datacenter night — one hierarchy, %d tenants, per-tenant SLOs\n", len(tens))
	fmt.Fprintf(&b, "scale %s  seed %d  pool %.0f MB  arbiter period %.1fs  %d periods\n\n",
		sc.Name, sc.Seed, float64(fo.Result.PoolBytes)/(1<<20),
		float64(sc.PeriodNs)/1e9, fo.Result.Periods)
	b.WriteString(tbl.String())
	fp := fo.Result.Global.FinalFootprint
	fmt.Fprintf(&b, "\nfinal fleet placement: %.0f MB hot / %.0f MB cold (%.1f%% cold)\n",
		float64(fp.Hot2M+fp.Hot4K)/(1<<20), float64(fp.Cold())/(1<<20),
		100*fp.ColdFraction())
	fmt.Fprintf(&b, "fleet-wide DRAM cost saving vs all-DRAM provisioning: %.1f%%\n", res.SavingsPct)
	res.Text = b.String()
	return res, nil
}

// TenantCSV renders the run's per-tenant period series as CSV.
func (r *FleetNightResult) TenantCSV() ([]byte, error) {
	var buf bytes.Buffer
	if err := telemetry.WriteTenantCSV(&buf, r.Outcome.Result.Series); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
