package harness

import (
	"testing"

	"thermostat/internal/workload"
)

func ablationOpt() Options {
	sc := Tiny()
	sc.DurationNs = 5e9
	sc.WarmupNs = 1e9
	return Options{Scale: sc}
}

func TestAblationPoisonBudget(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	rows, tbl, err := AblationPoisonBudget(workload.MySQLTPCC(), ablationOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
	// More poisons cost more faults (monotone in K, allowing noise at the
	// extremes: compare the smallest and largest budgets).
	if rows[0].PoisonFaults >= rows[3].PoisonFaults {
		t.Errorf("faults not increasing with K: %d (K=10) vs %d (K=100)",
			rows[0].PoisonFaults, rows[3].PoisonFaults)
	}
	for _, r := range rows {
		if r.ColdFraction <= 0 {
			t.Errorf("%s: no cold data found", r.Config)
		}
	}
}

func TestAblationCorrection(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	opt := ablationOpt()
	opt.Scale.DurationNs = 9e9
	rows, _, err := AblationCorrection(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	on, off := rows[0], rows[1]
	if on.Promotions == 0 {
		t.Error("corrector made no promotions under rotation")
	}
	if off.Promotions != 0 {
		t.Error("disabled corrector still promoted")
	}
	// Without correction, newly-hot pages stay in slow memory: slowdown
	// must be clearly worse.
	if off.Slowdown <= on.Slowdown {
		t.Errorf("correction off (%.3f) not worse than on (%.3f)",
			off.Slowdown, on.Slowdown)
	}
}

func TestAblationTrapPlacement(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	rows, _, err := AblationTrapPlacement(workload.MySQLTPCC(), ablationOpt())
	if err != nil {
		t.Fatal(err)
	}
	guest, host := rows[0], rows[1]
	// Host-side trapping charges a vmexit per fault: overhead must rise.
	if host.Slowdown < guest.Slowdown {
		t.Errorf("host trap (%.4f) cheaper than guest trap (%.4f)",
			host.Slowdown, guest.Slowdown)
	}
}

func TestAblationCounters(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	opt := ablationOpt()
	rows, tbl, err := AblationCounters(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]CounterRow{}
	for _, r := range rows {
		byName[r.Backend] = r
	}
	// §6.1: the CM bit counts true LLC misses — it must be the most
	// accurate mechanism.
	cm := byName["cm-bit"]
	bt := byName["badgertrap"]
	if cm.MeanRelErr > bt.MeanRelErr {
		t.Errorf("CM-bit error %.3f worse than BadgerTrap %.3f",
			cm.MeanRelErr, bt.MeanRelErr)
	}
	if cm.MeanRelErr > 0.05 {
		t.Errorf("CM-bit should be near-exact, got %.3f", cm.MeanRelErr)
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
}

func TestCompareBaselines(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("integration run")
	}
	opt := ablationOpt()
	rows, tbl, err := CompareBaselines(workload.MySQLTPCC(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	pg := byName["profile-guided (X-Mem-like)"]
	th := byName["thermostat"]
	if pg.ColdFraction == 0 {
		t.Error("profile-guided placed nothing")
	}
	if th.ColdFraction == 0 {
		t.Error("thermostat placed nothing")
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
}
