package harness

import (
	"bytes"
	"reflect"
	"testing"

	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

func matrixScale() Scale {
	sc := Tiny()
	sc.DurationNs = 4_000_000_000
	sc.WarmupNs = 1_000_000_000
	return sc
}

// TestComposedThermostatMatchesSeedEngine is the refactor's differential
// gate at the library layer: the explicit poison+threshold composition must
// replay the monolithic engine's run event-for-event — byte-identical trace
// and metrics streams, identical counters.
func TestComposedThermostatMatchesSeedEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	spec, _ := workload.ByName("redis")
	sc := matrixScale()

	run := func(composed bool) (*Outcome, *telemetry.Collector) {
		col := telemetry.NewCollector()
		attach := func(cfg *sim.Config) { cfg.Recorder = col }
		var out *Outcome
		var err error
		if composed {
			out, err = RunComposedWith(spec, sc, "poison", "threshold", 3, attach)
		} else {
			out, err = RunThermostatWith(spec, sc, 3, attach, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		return out, col
	}
	seedOut, seedCol := run(false)
	compOut, compCol := run(true)

	if got, want := compOut.Engine.Stats(), seedOut.Engine.Stats(); got != want {
		t.Fatalf("composition stats diverged:\n got %+v\nwant %+v", got, want)
	}
	// The engine's registry name is the only permitted difference.
	seedRes, compRes := *seedOut.Result, *compOut.Result
	if seedRes.PolicyName != "thermostat" || compRes.PolicyName != "poison+threshold" {
		t.Fatalf("unexpected engine names %q / %q", seedRes.PolicyName, compRes.PolicyName)
	}
	seedRes.PolicyName, compRes.PolicyName = "", ""
	if !reflect.DeepEqual(seedRes, compRes) {
		t.Fatalf("run results diverged:\n got %+v\nwant %+v", compRes, seedRes)
	}
	var seedTrace, compTrace, seedMetrics, compMetrics bytes.Buffer
	if err := seedCol.WriteChromeTrace(&seedTrace); err != nil {
		t.Fatal(err)
	}
	if err := compCol.WriteChromeTrace(&compTrace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seedTrace.Bytes(), compTrace.Bytes()) {
		t.Fatal("trace streams diverged between seed engine and composition")
	}
	if err := seedCol.WriteJSONL(&seedMetrics); err != nil {
		t.Fatal(err)
	}
	if err := compCol.WriteJSONL(&compMetrics); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seedMetrics.Bytes(), compMetrics.Bytes()) {
		t.Fatal("metric streams diverged between seed engine and composition")
	}
}

// TestMatrixDeterministicAcrossWorkers: every new tracker × policy cell must
// produce identical scores whether the sweep runs serially or fanned out.
func TestMatrixDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	spec, _ := workload.ByName("redis")
	opts := func(workers int) MatrixOptions {
		return MatrixOptions{
			Scale:      matrixScale(),
			Apps:       []workload.Spec{spec},
			Trackers:   []string{"idlebit", "damon"},
			Policies:   []string{"threshold", "heat"},
			Topologies: []MatrixTopology{TwoTierTopology()},
			Workers:    workers,
		}
	}
	serial, err := PolicyMatrix(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := PolicyMatrix(opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Cells, fanned.Cells) {
		t.Fatalf("matrix cells depend on worker count:\n w1: %+v\n w8: %+v",
			serial.Cells, fanned.Cells)
	}
}

// TestMatrixSmoke exercises one abbreviated run per tracker × policy cell on
// the two-tier topology — the CI gate that every composition still builds,
// attaches and migrates deterministically end-to-end.
func TestMatrixSmoke(t *testing.T) {
	t.Parallel()
	sc := matrixScale()
	if testing.Short() {
		sc.DurationNs = 2_000_000_000
		sc.WarmupNs = 500_000_000
	}
	spec, _ := workload.ByName("redis")
	rep, err := PolicyMatrix(MatrixOptions{
		Scale:      sc,
		Apps:       []workload.Spec{spec},
		Topologies: []MatrixTopology{TwoTierTopology()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 8 {
		t.Fatalf("expected 4 trackers × 2 policies = 8 cells, got %d", len(rep.Cells))
	}
	var demotions uint64
	for _, c := range rep.Cells {
		if c.SlowdownPct < -1 || c.SlowdownPct > 50 {
			t.Errorf("%s+%s: implausible slowdown %v%%", c.Tracker, c.Policy, c.SlowdownPct)
		}
		if c.ColdFraction < 0 || c.ColdFraction > 1 {
			t.Errorf("%s+%s: cold fraction %v outside [0, 1]", c.Tracker, c.Policy, c.ColdFraction)
		}
		demotions += c.Stats.Demotions
	}
	if demotions == 0 {
		t.Fatal("no composition demoted anything")
	}
}
