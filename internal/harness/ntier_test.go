package harness

import (
	"strings"
	"testing"

	"thermostat/internal/workload"
)

func TestRunNTierThreeTierEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	sc := Tiny()
	out, err := RunNTier(workload.Redis(), sc, DefaultThreeTier(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Machine.Memory().NumTiers() != 3 {
		t.Fatalf("NumTiers = %d", out.Machine.Memory().NumTiers())
	}
	if err := out.Machine.Verify(); err != nil {
		t.Fatal(err)
	}
	st := out.Engine.Stats()
	if st.Periods == 0 || st.Sampled == 0 {
		t.Fatalf("engine never ran: %+v", st)
	}
	if st.Demotions == 0 {
		t.Fatal("no demotions on a three-tier machine")
	}

	rep, err := AnalyzeNTier(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tiers) != 3 {
		t.Fatalf("report has %d tiers", len(rep.Tiers))
	}
	var frac float64
	for _, u := range rep.Tiers {
		frac += u.Fraction
	}
	if frac < 0.999 || frac > 1.001 {
		t.Fatalf("tier fractions sum to %v", frac)
	}
	// Cold data left DRAM, so the placement must be cheaper than all-DRAM.
	if rep.Tiers[0].Fraction >= 1 {
		t.Fatal("nothing ever left the top tier")
	}
	if rep.Savings <= 0 || rep.Savings >= 1 {
		t.Fatalf("savings = %v", rep.Savings)
	}
	// Demotions out of DRAM show up in the pair matrix as (0 -> 1) traffic.
	if len(rep.Pairs) == 0 {
		t.Fatal("no pair traffic recorded")
	}
	found01 := false
	for _, p := range rep.Pairs {
		if int(p.Src) >= 3 || int(p.Dst) >= 3 {
			t.Fatalf("pair %v names an unconfigured tier", p)
		}
		if p.Src == 0 && p.Dst == 1 {
			found01 = true
			if p.Bytes == 0 || p.Pages2M == 0 {
				t.Fatalf("(0,1) traffic empty: %+v", p)
			}
			if p.PaperMBps <= 0 {
				t.Fatalf("(0,1) paper rate = %v", p.PaperMBps)
			}
		}
	}
	if !found01 {
		t.Fatalf("no DRAM->CXL demotion traffic in %+v", rep.Pairs)
	}

	traffic := rep.TrafficTable().String()
	if !strings.Contains(traffic, "fast") || !strings.Contains(traffic, "cxl") {
		t.Errorf("traffic table missing tier names:\n%s", traffic)
	}
	cost := rep.CostTable().String()
	if !strings.Contains(cost, "nvm") || !strings.Contains(cost, "savings vs all-DRAM") {
		t.Errorf("cost table missing content:\n%s", cost)
	}
}

func TestTieredMachineConfigDilation(t *testing.T) {
	t.Parallel()
	sc := Tiny()
	cfg := sc.TieredMachineConfig(workload.Redis(), DefaultThreeTier(0))
	if len(cfg.Tiers) != 3 {
		t.Fatalf("Tiers = %d", len(cfg.Tiers))
	}
	// Top tier keeps native DRAM latency; lower tiers are time-dilated like
	// the two-tier slow tier.
	if cfg.Tiers[0].ReadLatency != 80 {
		t.Errorf("tier 0 latency = %d", cfg.Tiers[0].ReadLatency)
	}
	if cfg.Tiers[1].ReadLatency != 250*sc.TimeDilate {
		t.Errorf("tier 1 latency = %d, want %d", cfg.Tiers[1].ReadLatency, 250*sc.TimeDilate)
	}
	if cfg.Tiers[2].ReadLatency != 1000*sc.TimeDilate {
		t.Errorf("tier 2 latency = %d, want %d", cfg.Tiers[2].ReadLatency, 1000*sc.TimeDilate)
	}
	// Top tier gets hot-set headroom over the lower tiers.
	if cfg.Tiers[0].Capacity <= cfg.Tiers[1].Capacity {
		t.Errorf("top capacity %d not above lower %d", cfg.Tiers[0].Capacity, cfg.Tiers[1].Capacity)
	}
	if cfg.Mode.String() != "device" {
		t.Errorf("mode = %v, want device", cfg.Mode)
	}
	if _, err := RunNTier(workload.Redis(), sc, DefaultThreeTier(0)[:1], 3); err == nil {
		t.Error("single-tier hierarchy accepted")
	}
}
