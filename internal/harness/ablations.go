package harness

import (
	"fmt"
	"math"
	"sort"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/core"
	"thermostat/internal/counter"
	"thermostat/internal/pool"
	"thermostat/internal/report"
	"thermostat/internal/sim"
	"thermostat/internal/workload"
)

// AblationRow is one configuration's outcome in a design-choice sweep.
type AblationRow struct {
	Config       string
	ColdFraction float64
	Slowdown     float64
	PoisonFaults uint64
	Promotions   uint64
}

func ablationTable(title string, rows []AblationRow) *report.Table {
	t := report.NewTable(title,
		"config", "cold_fraction_pct", "slowdown_pct", "poison_faults", "corrections")
	for _, r := range rows {
		t.AddF(r.Config, r.ColdFraction*100, r.Slowdown*100, r.PoisonFaults, r.Promotions)
	}
	return t
}

// ablationArm is one configuration of a design-choice sweep.
type ablationArm struct {
	config    string
	cfgMutate func(*sim.Config)
	engMutate func(*cgroup.Group, *core.Engine)
}

// runAblationGrid runs the sweep's all-DRAM reference plus every arm as one
// pooled grid: the arms are independent Thermostat runs, so they fan out
// across opt.Workers goroutines, and the rows merge back in arm order. Row
// assembly (which needs the shared baseline) happens after the barrier.
func runAblationGrid(title string, spec workload.Spec, opt Options, arms []ablationArm) ([]AblationRow, *report.Table, error) {
	sc := opt.Scale
	tasks := make([]pool.Task[*Outcome], 0, len(arms)+1)
	tasks = append(tasks, pool.Task[*Outcome]{
		Label: title + "/baseline",
		Run:   func() (*Outcome, error) { return RunBaseline(spec, sc) },
	})
	for _, arm := range arms {
		arm := arm
		tasks = append(tasks, pool.Task[*Outcome]{
			Label: title + "/" + arm.config,
			Run: func() (*Outcome, error) {
				return RunThermostatWith(spec, sc, 3, arm.cfgMutate, arm.engMutate)
			},
		})
	}
	outs, err := pool.Map(opt.Workers, tasks)
	if err != nil {
		return nil, nil, err
	}
	base := outs[0]
	rows := make([]AblationRow, len(arms))
	for i, arm := range arms {
		out := outs[i+1]
		rows[i] = AblationRow{
			Config:       arm.config,
			ColdFraction: out.Result.MeanColdFraction(sc.WarmupNs),
			Slowdown:     sim.Slowdown(base.Result, out.Result),
			PoisonFaults: out.Result.Metrics.PoisonFaults,
			Promotions:   out.Engine.Stats().Promotions,
		}
	}
	return rows, ablationTable(title, rows), nil
}

// AblationPoisonBudget sweeps K, the per-huge-page poison budget (§3.2's
// "at most 50"): small K is cheap but noisy, large K costs more faults for
// little extra accuracy.
func AblationPoisonBudget(spec workload.Spec, opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	var arms []ablationArm
	for _, k := range []int{10, 25, 50, 100} {
		k := k
		arms = append(arms, ablationArm{
			config: fmt.Sprintf("K=%d", k),
			engMutate: func(g *cgroup.Group, _ *core.Engine) {
				p := g.Params()
				p.MaxPoisonPerHuge = k
				if err := g.Update(p); err != nil {
					panic(err)
				}
			},
		})
	}
	return runAblationGrid(
		"Ablation: poison budget K per sampled huge page ("+spec.Name+")", spec, opt, arms)
}

// AblationSampleFraction sweeps the fraction of huge pages sampled per
// interval (§3.2's 5%): more sampling reacts faster but costs more splits
// and faults.
func AblationSampleFraction(spec workload.Spec, opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	var arms []ablationArm
	for _, f := range []float64{0.01, 0.05, 0.20} {
		f := f
		arms = append(arms, ablationArm{
			config: fmt.Sprintf("f=%.0f%%", f*100),
			engMutate: func(g *cgroup.Group, _ *core.Engine) {
				p := g.Params()
				p.SampleFraction = f
				if err := g.Update(p); err != nil {
					panic(err)
				}
			},
		})
	}
	return runAblationGrid(
		"Ablation: sample fraction per scan interval ("+spec.Name+")", spec, opt, arms)
}

// AblationPrefilter compares the §3.2 two-step refinement (poison only
// accessed children) against naive uniform child selection.
func AblationPrefilter(spec workload.Spec, opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	var arms []ablationArm
	for _, on := range []bool{true, false} {
		on := on
		config := "accessed-bit prefilter"
		if !on {
			config = "uniform children (naive)"
		}
		arms = append(arms, ablationArm{
			config:    config,
			engMutate: func(_ *cgroup.Group, e *core.Engine) { e.SetPrefilter(on) },
		})
	}
	return runAblationGrid(
		"Ablation: Accessed-bit pre-filter before poisoning ("+spec.Name+")", spec, opt, arms)
}

// rotatorSpec is a working-set-change workload: two equal regions swap hot
// and cold roles periodically, so yesterday's cold pages become today's
// working set.
func rotatorSpec(periodNs int64) workload.Spec {
	return workload.Spec{
		Name:      "rotator",
		ComputeNs: 2500,
		Segments: []workload.SegmentSpec{
			{Name: "a", Bytes: 4 << 30, Weight: 0.999, Picker: workload.Uniform{}, WriteFrac: 0.1},
			{Name: "b", Bytes: 4 << 30, Weight: 0.001, Picker: workload.Uniform{}},
		},
		Rotate: &workload.RotateSpec{PeriodNs: periodNs, SegmentA: "a", SegmentB: "b"},
	}
}

// AblationCorrection shows what the §3.5 corrector is worth: under a
// rotating working set, disabling it leaves newly-hot pages stranded in
// slow memory and the slowdown blows through the target.
func AblationCorrection(opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	// Rotate every third of the run (period expressed directly in
	// simulated time; rotation is not compressed like growth is).
	spec := rotatorSpec(opt.Scale.DurationNs / 3)

	var arms []ablationArm
	for _, on := range []bool{true, false} {
		on := on
		config := "corrector on"
		if !on {
			config = "corrector off"
		}
		arms = append(arms, ablationArm{
			config:    config,
			engMutate: func(_ *cgroup.Group, e *core.Engine) { e.SetCorrection(on) },
		})
	}
	return runAblationGrid(
		"Ablation: §3.5 mis-classification correction under working-set rotation", spec, opt, arms)
}

// AblationTrapPlacement compares BadgerTrap in the guest (the paper's
// choice) against the host, where every poison fault costs a vmexit (§4.2).
func AblationTrapPlacement(spec workload.Spec, opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	var arms []ablationArm
	for _, inHost := range []bool{false, true} {
		inHost := inHost
		config := "trap in guest"
		if inHost {
			config = "trap in host (vmexit per fault)"
		}
		arms = append(arms, ablationArm{
			config:    config,
			cfgMutate: func(cfg *sim.Config) { cfg.VM.TrapInHost = inHost },
		})
	}
	return runAblationGrid(
		"Ablation: BadgerTrap placement ("+spec.Name+")", spec, opt, arms)
}

// AblationSlowMemMode compares the paper's fault-based slow-memory
// emulation against a device-latency model of real slow memory.
func AblationSlowMemMode(spec workload.Spec, opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	var arms []ablationArm
	for _, mode := range []sim.SlowMemMode{sim.EmulatedFault, sim.Device} {
		mode := mode
		arms = append(arms, ablationArm{
			config:    mode.String(),
			cfgMutate: func(cfg *sim.Config) { cfg.Mode = mode },
		})
	}
	return runAblationGrid(
		"Ablation: slow-memory model ("+spec.Name+")", spec, opt, arms)
}

// CounterRow compares one §6.1 access-counting backend against ground
// truth.
type CounterRow struct {
	Backend string
	// MeanRelErr is the mean relative error of per-page count estimates
	// against true LLC misses, over pages with non-trivial traffic.
	MeanRelErr float64
	// Slowdown is the measured overhead of the counting mechanism itself.
	Slowdown float64
}

// AblationCounters runs the §6.1 head-to-head: BadgerTrap (TLB-miss proxy,
// ~1us/event) vs the proposed CM-bit (exact, cheap) vs PEBS sampling
// (cheap, resolution-limited).
func AblationCounters(opt Options) ([]CounterRow, *report.Table, error) {
	opt = opt.withDefaults()
	spec := workload.Redis()
	sc := opt.Scale

	type setup struct {
		name string
		mk   func(m *sim.Machine) counter.Backend
	}
	setups := []setup{
		{"badgertrap", func(m *sim.Machine) counter.Backend { return counter.NewBadgerTrap(m) }},
		{"cm-bit", func(m *sim.Machine) counter.Backend { return counter.NewCMBit(m) }},
		{"pebs", func(m *sim.Machine) counter.Backend { return counter.NewPEBS(m, 0) }},
	}

	run := func(mk func(m *sim.Machine) counter.Backend) (float64, float64, error) {
		m, err := sim.New(sc.MachineConfig(spec, true))
		if err != nil {
			return 0, 0, err
		}
		m.EnablePageCounts()
		app, err := sc.NewApp(spec, sc.Seed)
		if err != nil {
			return 0, 0, err
		}
		if err := app.Init(m); err != nil {
			return 0, 0, err
		}
		// Arm every 8th huge page of the keyspace.
		var armed []addr.Virt
		var b counter.Backend
		if mk != nil {
			b = mk(m)
			ks := app.SegmentRegions("keyspace")[0]
			i := 0
			ks.Each2M(func(base addr.Virt) {
				if i%8 == 0 {
					if err := b.Arm(base); err != nil {
						panic(err)
					}
					armed = append(armed, base)
				}
				i++
			})
		}
		start := m.Clock()
		var ops uint64
		for m.Clock()-start < sc.DurationNs/3 {
			v, w := app.Next()
			if _, err := m.Access(v, w); err != nil {
				return 0, 0, err
			}
			m.AdvanceClock(app.ComputeNs())
			ops++
		}
		thr := float64(ops) * 1e9 / float64(m.Clock()-start)
		if b == nil {
			return 0, thr, nil
		}
		// Accuracy vs ground truth on armed pages with real traffic.
		truth := m.PageCounts()
		var errs []float64
		for _, base := range armed {
			tr := float64(truth[base])
			if tr < 50 {
				continue // too little traffic for a meaningful ratio
			}
			est := float64(b.Count(base))
			errs = append(errs, math.Abs(est-tr)/tr)
		}
		sort.Float64s(errs)
		mean := 0.0
		for _, e := range errs {
			mean += e
		}
		if len(errs) > 0 {
			mean /= float64(len(errs))
		}
		return mean, thr, nil
	}

	// The uninstrumented reference and the three backends are independent
	// measurement runs; fan all four out and assemble rows after the merge.
	type measurement struct{ relErr, thr float64 }
	tasks := []pool.Task[measurement]{{
		Label: "ablation-counters/baseline",
		Run: func() (measurement, error) {
			_, thr, err := run(nil)
			return measurement{thr: thr}, err
		},
	}}
	for _, s := range setups {
		s := s
		tasks = append(tasks, pool.Task[measurement]{
			Label: "ablation-counters/" + s.name,
			Run: func() (measurement, error) {
				relErr, thr, err := run(s.mk)
				if err != nil {
					return measurement{}, fmt.Errorf("counters %s: %w", s.name, err)
				}
				return measurement{relErr: relErr, thr: thr}, nil
			},
		})
	}
	ms, err := pool.Map(opt.Workers, tasks)
	if err != nil {
		return nil, nil, err
	}
	baseThr := ms[0].thr
	var rows []CounterRow
	for i, s := range setups {
		rows = append(rows, CounterRow{
			Backend:    s.name,
			MeanRelErr: ms[i+1].relErr,
			Slowdown:   baseThr/ms[i+1].thr - 1,
		})
	}
	t := report.NewTable("Ablation: §6.1 access-counting mechanisms (redis, 1/8 of pages armed)",
		"backend", "mean_rel_error", "overhead_pct")
	for _, r := range rows {
		t.AddF(r.Backend, r.MeanRelErr, r.Slowdown*100)
	}
	return rows, t, nil
}
