package harness

import (
	"fmt"
	"math"
	"sort"

	"thermostat/internal/addr"
	"thermostat/internal/cgroup"
	"thermostat/internal/core"
	"thermostat/internal/counter"
	"thermostat/internal/report"
	"thermostat/internal/sim"
	"thermostat/internal/workload"
)

// AblationRow is one configuration's outcome in a design-choice sweep.
type AblationRow struct {
	Config       string
	ColdFraction float64
	Slowdown     float64
	PoisonFaults uint64
	Promotions   uint64
}

func ablationTable(title string, rows []AblationRow) *report.Table {
	t := report.NewTable(title,
		"config", "cold_fraction_pct", "slowdown_pct", "poison_faults", "corrections")
	for _, r := range rows {
		t.AddF(r.Config, r.ColdFraction*100, r.Slowdown*100, r.PoisonFaults, r.Promotions)
	}
	return t
}

func ablationRun(spec workload.Spec, sc Scale, base *Outcome,
	cfgMutate func(*sim.Config), engMutate func(*cgroup.Group, *core.Engine)) (AblationRow, error) {
	out, err := RunThermostatWith(spec, sc, 3, cfgMutate, engMutate)
	if err != nil {
		return AblationRow{}, err
	}
	row := AblationRow{
		ColdFraction: out.Result.MeanColdFraction(sc.WarmupNs),
		Slowdown:     sim.Slowdown(base.Result, out.Result),
		PoisonFaults: out.Result.Metrics.PoisonFaults,
		Promotions:   out.Engine.Stats().Promotions,
	}
	return row, nil
}

// AblationPoisonBudget sweeps K, the per-huge-page poison budget (§3.2's
// "at most 50"): small K is cheap but noisy, large K costs more faults for
// little extra accuracy.
func AblationPoisonBudget(spec workload.Spec, opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	base, err := RunBaseline(spec, opt.Scale)
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow
	for _, k := range []int{10, 25, 50, 100} {
		k := k
		row, err := ablationRun(spec, opt.Scale, base, nil,
			func(g *cgroup.Group, _ *core.Engine) {
				p := g.Params()
				p.MaxPoisonPerHuge = k
				if err := g.Update(p); err != nil {
					panic(err)
				}
			})
		if err != nil {
			return nil, nil, err
		}
		row.Config = fmt.Sprintf("K=%d", k)
		rows = append(rows, row)
	}
	return rows, ablationTable(
		"Ablation: poison budget K per sampled huge page ("+spec.Name+")", rows), nil
}

// AblationSampleFraction sweeps the fraction of huge pages sampled per
// interval (§3.2's 5%): more sampling reacts faster but costs more splits
// and faults.
func AblationSampleFraction(spec workload.Spec, opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	base, err := RunBaseline(spec, opt.Scale)
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow
	for _, f := range []float64{0.01, 0.05, 0.20} {
		f := f
		row, err := ablationRun(spec, opt.Scale, base, nil,
			func(g *cgroup.Group, _ *core.Engine) {
				p := g.Params()
				p.SampleFraction = f
				if err := g.Update(p); err != nil {
					panic(err)
				}
			})
		if err != nil {
			return nil, nil, err
		}
		row.Config = fmt.Sprintf("f=%.0f%%", f*100)
		rows = append(rows, row)
	}
	return rows, ablationTable(
		"Ablation: sample fraction per scan interval ("+spec.Name+")", rows), nil
}

// AblationPrefilter compares the §3.2 two-step refinement (poison only
// accessed children) against naive uniform child selection.
func AblationPrefilter(spec workload.Spec, opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	base, err := RunBaseline(spec, opt.Scale)
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow
	for _, on := range []bool{true, false} {
		on := on
		row, err := ablationRun(spec, opt.Scale, base, nil,
			func(_ *cgroup.Group, e *core.Engine) { e.SetPrefilter(on) })
		if err != nil {
			return nil, nil, err
		}
		if on {
			row.Config = "accessed-bit prefilter"
		} else {
			row.Config = "uniform children (naive)"
		}
		rows = append(rows, row)
	}
	return rows, ablationTable(
		"Ablation: Accessed-bit pre-filter before poisoning ("+spec.Name+")", rows), nil
}

// rotatorSpec is a working-set-change workload: two equal regions swap hot
// and cold roles periodically, so yesterday's cold pages become today's
// working set.
func rotatorSpec(periodNs int64) workload.Spec {
	return workload.Spec{
		Name:      "rotator",
		ComputeNs: 2500,
		Segments: []workload.SegmentSpec{
			{Name: "a", Bytes: 4 << 30, Weight: 0.999, Picker: workload.Uniform{}, WriteFrac: 0.1},
			{Name: "b", Bytes: 4 << 30, Weight: 0.001, Picker: workload.Uniform{}},
		},
		Rotate: &workload.RotateSpec{PeriodNs: periodNs, SegmentA: "a", SegmentB: "b"},
	}
}

// AblationCorrection shows what the §3.5 corrector is worth: under a
// rotating working set, disabling it leaves newly-hot pages stranded in
// slow memory and the slowdown blows through the target.
func AblationCorrection(opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	// Rotate every third of the run (period expressed directly in
	// simulated time; rotation is not compressed like growth is).
	spec := rotatorSpec(opt.Scale.DurationNs / 3)

	base, err := RunBaseline(spec, opt.Scale)
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow
	for _, on := range []bool{true, false} {
		on := on
		row, err := ablationRun(spec, opt.Scale, base, nil,
			func(_ *cgroup.Group, e *core.Engine) { e.SetCorrection(on) })
		if err != nil {
			return nil, nil, err
		}
		if on {
			row.Config = "corrector on"
		} else {
			row.Config = "corrector off"
		}
		rows = append(rows, row)
	}
	return rows, ablationTable(
		"Ablation: §3.5 mis-classification correction under working-set rotation", rows), nil
}

// AblationTrapPlacement compares BadgerTrap in the guest (the paper's
// choice) against the host, where every poison fault costs a vmexit (§4.2).
func AblationTrapPlacement(spec workload.Spec, opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	base, err := RunBaseline(spec, opt.Scale)
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow
	for _, inHost := range []bool{false, true} {
		inHost := inHost
		row, err := ablationRun(spec, opt.Scale, base,
			func(cfg *sim.Config) { cfg.VM.TrapInHost = inHost }, nil)
		if err != nil {
			return nil, nil, err
		}
		if inHost {
			row.Config = "trap in host (vmexit per fault)"
		} else {
			row.Config = "trap in guest"
		}
		rows = append(rows, row)
	}
	return rows, ablationTable(
		"Ablation: BadgerTrap placement ("+spec.Name+")", rows), nil
}

// AblationSlowMemMode compares the paper's fault-based slow-memory
// emulation against a device-latency model of real slow memory.
func AblationSlowMemMode(spec workload.Spec, opt Options) ([]AblationRow, *report.Table, error) {
	opt = opt.withDefaults()
	base, err := RunBaseline(spec, opt.Scale)
	if err != nil {
		return nil, nil, err
	}
	var rows []AblationRow
	for _, mode := range []sim.SlowMemMode{sim.EmulatedFault, sim.Device} {
		mode := mode
		row, err := ablationRun(spec, opt.Scale, base,
			func(cfg *sim.Config) { cfg.Mode = mode }, nil)
		if err != nil {
			return nil, nil, err
		}
		row.Config = mode.String()
		rows = append(rows, row)
	}
	return rows, ablationTable(
		"Ablation: slow-memory model ("+spec.Name+")", rows), nil
}

// CounterRow compares one §6.1 access-counting backend against ground
// truth.
type CounterRow struct {
	Backend string
	// MeanRelErr is the mean relative error of per-page count estimates
	// against true LLC misses, over pages with non-trivial traffic.
	MeanRelErr float64
	// Slowdown is the measured overhead of the counting mechanism itself.
	Slowdown float64
}

// AblationCounters runs the §6.1 head-to-head: BadgerTrap (TLB-miss proxy,
// ~1us/event) vs the proposed CM-bit (exact, cheap) vs PEBS sampling
// (cheap, resolution-limited).
func AblationCounters(opt Options) ([]CounterRow, *report.Table, error) {
	opt = opt.withDefaults()
	spec := workload.Redis()
	sc := opt.Scale

	type setup struct {
		name string
		mk   func(m *sim.Machine) counter.Backend
	}
	setups := []setup{
		{"badgertrap", func(m *sim.Machine) counter.Backend { return counter.NewBadgerTrap(m) }},
		{"cm-bit", func(m *sim.Machine) counter.Backend { return counter.NewCMBit(m) }},
		{"pebs", func(m *sim.Machine) counter.Backend { return counter.NewPEBS(m, 0) }},
	}

	run := func(mk func(m *sim.Machine) counter.Backend) (float64, float64, error) {
		m, err := sim.New(sc.MachineConfig(spec, true))
		if err != nil {
			return 0, 0, err
		}
		m.EnablePageCounts()
		app, err := sc.NewApp(spec, sc.Seed)
		if err != nil {
			return 0, 0, err
		}
		if err := app.Init(m); err != nil {
			return 0, 0, err
		}
		// Arm every 8th huge page of the keyspace.
		var armed []addr.Virt
		var b counter.Backend
		if mk != nil {
			b = mk(m)
			ks := app.SegmentRegions("keyspace")[0]
			i := 0
			ks.Each2M(func(base addr.Virt) {
				if i%8 == 0 {
					if err := b.Arm(base); err != nil {
						panic(err)
					}
					armed = append(armed, base)
				}
				i++
			})
		}
		start := m.Clock()
		var ops uint64
		for m.Clock()-start < sc.DurationNs/3 {
			v, w := app.Next()
			if _, err := m.Access(v, w); err != nil {
				return 0, 0, err
			}
			m.AdvanceClock(app.ComputeNs())
			ops++
		}
		thr := float64(ops) * 1e9 / float64(m.Clock()-start)
		if b == nil {
			return 0, thr, nil
		}
		// Accuracy vs ground truth on armed pages with real traffic.
		truth := m.PageCounts()
		var errs []float64
		for _, base := range armed {
			tr := float64(truth[base])
			if tr < 50 {
				continue // too little traffic for a meaningful ratio
			}
			est := float64(b.Count(base))
			errs = append(errs, math.Abs(est-tr)/tr)
		}
		sort.Float64s(errs)
		mean := 0.0
		for _, e := range errs {
			mean += e
		}
		if len(errs) > 0 {
			mean /= float64(len(errs))
		}
		return mean, thr, nil
	}

	_, baseThr, err := run(nil)
	if err != nil {
		return nil, nil, err
	}
	var rows []CounterRow
	for _, s := range setups {
		relErr, thr, err := run(s.mk)
		if err != nil {
			return nil, nil, fmt.Errorf("counters %s: %w", s.name, err)
		}
		rows = append(rows, CounterRow{
			Backend:    s.name,
			MeanRelErr: relErr,
			Slowdown:   baseThr/thr - 1,
		})
	}
	t := report.NewTable("Ablation: §6.1 access-counting mechanisms (redis, 1/8 of pages armed)",
		"backend", "mean_rel_error", "overhead_pct")
	for _, r := range rows {
		t.AddF(r.Backend, r.MeanRelErr, r.Slowdown*100)
	}
	return rows, t, nil
}
