package harness

import (
	"reflect"
	"testing"

	"thermostat/internal/core"
	"thermostat/internal/sim"
	"thermostat/internal/workload"
)

// runThermostatBatch replicates RunThermostatWith but exposes the
// DisableBatch switch, so the test can compare the batched engine against
// the per-op reference on a full Thermostat experiment.
func runThermostatBatch(t *testing.T, spec workload.Spec, sc Scale, disable bool) *sim.RunResult {
	t.Helper()
	cfg := sc.MachineConfig(spec, true)
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := sc.NewApp(spec, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Group(3)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(g, sc.Seed+0x7e)
	res, err := sim.Run(m, app, eng, sim.RunConfig{
		DurationNs: sc.DurationNs, WarmupNs: sc.WarmupNs, WindowNs: sc.PeriodNs,
		DisableBatch: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestThermostatBatchSerialEquivalence proves the batched hot path is
// bit-identical end to end: a seeded redis run under the full Thermostat
// engine (sampling, classification, migration, THP churn) must produce a
// deep-equal RunResult with batching on and off.
func TestThermostatBatchSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second differential run")
	}
	t.Parallel()
	spec, ok := workload.ByName("redis")
	if !ok {
		t.Fatal("redis spec missing")
	}
	sc := Tiny()
	batched := runThermostatBatch(t, spec, sc, false)
	serial := runThermostatBatch(t, spec, sc, true)
	if batched.Ops != serial.Ops {
		t.Errorf("ops: batched %d serial %d", batched.Ops, serial.Ops)
	}
	if !reflect.DeepEqual(batched.Metrics, serial.Metrics) {
		t.Errorf("metrics diverge:\nbatched %+v\nserial  %+v", batched.Metrics, serial.Metrics)
	}
	if !reflect.DeepEqual(batched, serial) {
		t.Error("run results diverge (series/histograms/footprints)")
	}
	if batched.Metrics.SlowAccesses == 0 {
		t.Error("no slow accesses — Thermostat never demoted, differential run too weak")
	}
}
