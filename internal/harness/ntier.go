// N-tier experiment: run Thermostat's engine over a hierarchy deeper than
// the paper's two tiers (e.g. local DRAM, a CXL expander, and NVM) and
// report what the two-tier tables cannot: the per-tier-pair migration
// traffic matrix and the per-tier cost breakdown of the final placement.
package harness

import (
	"fmt"

	"thermostat/internal/cgroup"
	"thermostat/internal/core"
	"thermostat/internal/mem"
	"thermostat/internal/pool"
	"thermostat/internal/pricing"
	"thermostat/internal/report"
	"thermostat/internal/sim"
	"thermostat/internal/workload"
)

// DefaultThreeTier returns the DRAM/CXL/NVM hierarchy the N-tier experiment
// evaluates: 80ns local DRAM, a 250ns CXL-attached expander at half DRAM
// cost, and 1000ns NVM at a fifth. Each tier gets the given capacity.
func DefaultThreeTier(capacity uint64) []mem.Spec {
	return []mem.Spec{
		mem.DefaultDRAM(capacity),
		mem.DefaultCXL(capacity),
		mem.DefaultNVM(capacity),
	}
}

// TieredMachineConfig sizes a machine over the given hierarchy for spec's
// footprint under this scale. Capacities follow MachineConfig's sizing (top
// tier gets 25% headroom for the hot set); every non-top tier's device
// latency is time-dilated exactly as the two-tier slow tier is. The machine
// runs in Device mode so each tier's own latency is charged — with more than
// one slow tier the single-latency fault emulation can't distinguish them.
func (s Scale) TieredMachineConfig(spec workload.Spec, tiers []mem.Spec) sim.Config {
	var footprint uint64
	for _, seg := range spec.Segments {
		footprint += seg.Bytes
	}
	if g := spec.Growth; g != nil {
		footprint += g.ChunkBytes * uint64(g.MaxChunks)
	}
	footprint /= s.Div
	headroom := uint64(len(spec.Segments)+8) * (2 << 20)

	cfg := s.MachineConfig(spec, true)
	cfg.Mode = sim.Device
	cfg.Tiers = make([]mem.Spec, len(tiers))
	for i, t := range tiers {
		t.Capacity = footprint + headroom
		if i == 0 {
			t.Capacity += footprint / 4
		} else {
			t.ReadLatency *= s.TimeDilate
			t.WriteLatency *= s.TimeDilate
		}
		cfg.Tiers[i] = t
	}
	return cfg
}

// RunNTier runs spec under Thermostat on the given hierarchy at the given
// slowdown target. The engine's demote/promote mechanics are tier-relative
// (cold pages sink one tier at a time, reheated pages climb back), so no
// policy changes are needed — only the machine differs from RunThermostat.
func RunNTier(spec workload.Spec, sc Scale, tiers []mem.Spec, slowdownPct float64) (*Outcome, error) {
	return runNTierEngine(spec, sc, tiers, slowdownPct, func(g *cgroup.Group) (*core.Engine, error) {
		return core.NewEngine(g, sc.Seed+0x7e), nil
	})
}

// RunNTierComposed is RunNTier with an arbitrary tracker × policy
// composition in place of the paper's engine.
func RunNTierComposed(spec workload.Spec, sc Scale, tiers []mem.Spec,
	tracker, policy string, slowdownPct float64) (*Outcome, error) {
	return runNTierEngine(spec, sc, tiers, slowdownPct, func(g *cgroup.Group) (*core.Engine, error) {
		return core.ComposeByName(g, tracker, policy, sc.Seed+0x7e)
	})
}

func runNTierEngine(spec workload.Spec, sc Scale, tiers []mem.Spec, slowdownPct float64,
	build func(*cgroup.Group) (*core.Engine, error)) (*Outcome, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(tiers) < 2 {
		return nil, fmt.Errorf("harness: N-tier run needs at least two tiers, got %d", len(tiers))
	}
	cfg := sc.TieredMachineConfig(spec, tiers)
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	app, err := sc.NewApp(spec, sc.Seed)
	if err != nil {
		return nil, err
	}
	g, err := sc.Group(slowdownPct)
	if err != nil {
		return nil, err
	}
	eng, err := build(g)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(m, app, eng, sim.RunConfig{
		DurationNs: sc.DurationNs, WarmupNs: sc.WarmupNs, WindowNs: sc.PeriodNs,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %d tiers: %w", spec.Name, len(tiers), err)
	}
	return &Outcome{Spec: spec, Scale: sc, Machine: m, App: app, Engine: eng, Result: res}, nil
}

// NTierSweep runs every app in opt.Apps through RunNTier on the given
// hierarchy and returns the analyzed reports in app order. The per-app runs
// are independent and fan out across opt.Workers goroutines.
func NTierSweep(opt Options, tiers []mem.Spec) ([]*NTierReport, error) {
	opt = opt.withDefaults()
	tasks := make([]pool.Task[*NTierReport], len(opt.Apps))
	for i, spec := range opt.Apps {
		spec := spec
		tasks[i] = pool.Task[*NTierReport]{
			Label: fmt.Sprintf("ntier/%s/%d-tiers", spec.Name, len(tiers)),
			Run: func() (*NTierReport, error) {
				out, err := RunNTier(spec, opt.Scale, tiers, opt.SlowdownPct)
				if err != nil {
					return nil, err
				}
				return AnalyzeNTier(out)
			},
		}
	}
	return pool.Map(opt.Workers, tasks)
}

// TierUsage is one tier's slice of the final placement.
type TierUsage struct {
	ID        mem.TierID
	Name      string
	Bytes     uint64
	Fraction  float64 // of the application footprint
	CostPerGB float64
	Accesses  uint64
}

// PairTrafficRow is one cell of the migration traffic matrix.
type PairTrafficRow struct {
	Src, Dst mem.TierID
	Bytes    uint64
	Pages2M  uint64
	Pages4K  uint64
	// PaperMBps is the migration rate converted back to paper time units.
	PaperMBps float64
}

// NTierReport summarizes an N-tier outcome: where the footprint ended up,
// what moving it cost in migration traffic, and what the placement saves
// relative to an all-DRAM system.
type NTierReport struct {
	App     string
	Tiers   []TierUsage
	Pairs   []PairTrafficRow
	Stats   core.Stats
	Savings float64
}

// AnalyzeNTier builds the report from a finished N-tier outcome.
func AnalyzeNTier(out *Outcome) (*NTierReport, error) {
	if out.Engine == nil {
		return nil, fmt.Errorf("harness: N-tier report needs an engine outcome")
	}
	m := out.Machine
	sys := m.Memory()
	fp := out.Result.FinalFootprint
	if fp.ByTier == nil {
		return nil, fmt.Errorf("harness: outcome has no per-tier footprint")
	}
	met := out.Result.Metrics

	rep := &NTierReport{App: out.Spec.Name, Stats: out.Engine.Stats()}
	total := fp.Total()
	topCost := sys.Tier(mem.Fast).Spec().CostPerGB
	if topCost <= 0 {
		return nil, fmt.Errorf("harness: top tier has no cost")
	}
	var shares []pricing.TierShare
	for i := 0; i < sys.NumTiers(); i++ {
		t := sys.Tier(mem.TierID(i))
		u := TierUsage{
			ID: t.ID(), Name: t.Name(),
			Bytes:     fp.ByTier[i].Total(),
			CostPerGB: t.Spec().CostPerGB,
		}
		if total > 0 {
			u.Fraction = float64(u.Bytes) / float64(total)
		}
		if i < len(met.TierAccesses) {
			u.Accesses = met.TierAccesses[i]
		}
		rep.Tiers = append(rep.Tiers, u)
		shares = append(shares, pricing.TierShare{
			Name: u.Name, Fraction: u.Fraction, CostRatio: u.CostPerGB / topCost,
		})
	}
	savings, err := pricing.SavingsTiered(shares)
	if err != nil {
		return nil, fmt.Errorf("harness: N-tier savings: %w", err)
	}
	rep.Savings = savings

	meter := m.Migrator().Meter()
	// Convert to paper-scale MB/s like Table 3: undo scan-interval
	// compression and footprint division.
	conv := out.Scale.PeriodCompression() / float64(out.Scale.Div)
	for _, p := range meter.Pairs() {
		tr := meter.PairTraffic(p.Src, p.Dst)
		rep.Pairs = append(rep.Pairs, PairTrafficRow{
			Src: p.Src, Dst: p.Dst,
			Bytes: tr.Bytes, Pages2M: tr.Pages2M, Pages4K: tr.Pages4K,
			PaperMBps: meter.PairRateMBps(p.Src, p.Dst, met.ClockNs) / conv,
		})
	}
	return rep, nil
}

// TrafficTable renders the per-tier-pair migration matrix.
func (r *NTierReport) TrafficTable() *report.Table {
	t := report.NewTable(fmt.Sprintf("%s: per-tier-pair migration traffic", r.App),
		"src", "dst", "MB moved", "2M pages", "4K pages", "MB/s (paper)")
	for _, p := range r.Pairs {
		t.AddF(p.Src, p.Dst, fmt.Sprintf("%.1f", float64(p.Bytes)/1e6),
			p.Pages2M, p.Pages4K, fmt.Sprintf("%.2f", p.PaperMBps))
	}
	return t
}

// CostTable renders the per-tier placement and the blended savings.
func (r *NTierReport) CostTable() *report.Table {
	t := report.NewTable(fmt.Sprintf("%s: placement and cost (savings vs all-DRAM: %.1f%%)",
		r.App, r.Savings*100),
		"tier", "resident MB", "footprint %", "cost/GB", "accesses")
	for _, u := range r.Tiers {
		t.AddF(u.Name, fmt.Sprintf("%.1f", float64(u.Bytes)/1e6),
			fmt.Sprintf("%.1f", u.Fraction*100),
			fmt.Sprintf("%.2f", u.CostPerGB), u.Accesses)
	}
	return t
}
