// Scaling benchmark: how simulation cost grows with simulated footprint.
//
// The sweep runs the synthetic scaling workload (workload.ScaleSynthetic,
// stretched with WithFootprint) under the full Thermostat engine at
// footprints from 1 GB to 1 TB, and reports two unit costs per point:
//
//   - ns per simulated access (wall-clock over the whole run, allocation
//     and engine ticks included), which must stay bounded as the footprint
//     grows — the sparse table's O(regions) scans are what keep it flat;
//   - simulator state bytes per simulated GB (page table + allocator +
//     trap + engine metadata), which must *shrink* with footprint in
//     sparse mode because cold terabytes collapse into span summaries.
//
// Dense tables are measured only up to DenseMaxFootprint: beyond that the
// per-tick split scan splices hundred-thousand-entry leaf slices and the
// run stops being benchmarkable — which is the point of the sparse
// representation. Dense per-GB unit costs are linear in footprint (one
// leafRef per mapped 2MB page), so the dense 1 TB baseline the acceptance
// gate compares against is extrapolated from the measured dense points and
// marked Extrapolated in the output.
package harness

import (
	"fmt"
	"time"

	"thermostat/internal/report"
	"thermostat/internal/sim"
	"thermostat/internal/workload"
)

// DenseMaxFootprint is the largest footprint the dense arm of the sweep is
// measured at; larger dense points are extrapolated.
const DenseMaxFootprint = 64 << 30

// ScalePoint is one (footprint, representation) cell of the scaling sweep.
type ScalePoint struct {
	Footprint    uint64  `json:"footprint_bytes"`
	Sparse       bool    `json:"sparse"`
	ShardWorkers int     `json:"shard_workers"`
	Ops          uint64  `json:"ops"`
	WallNs       int64   `json:"wall_ns"`
	NsPerOp      float64 `json:"ns_per_op"`
	StateBytes   uint64  `json:"state_bytes"`
	StatePerGB   float64 `json:"state_bytes_per_gb"`
	Regions      int     `json:"regions"`
	Spans        int     `json:"spans"`
	// Extrapolated marks points not measured but projected from the
	// measured dense unit costs (see package comment).
	Extrapolated bool `json:"extrapolated,omitempty"`
}

// ScaleBenchProfile is the profile every sweep point runs under: no
// footprint divisor (the point *is* the simulated footprint), with the
// bench profile's time compression so each point simulates a handful of
// scan intervals in a few hundred milliseconds of wall clock.
func ScaleBenchProfile() Scale {
	return Scale{
		Name: "scale", Div: 1, TimeDilate: 8,
		PeriodNs: 1e9, DurationNs: 12e9, WarmupNs: 2e9, Seed: 1,
	}
}

// scaleSpec builds the sweep workload at the given footprint: the 1 GiB
// synthetic spec with only its cold reserve stretched to make up the total.
// The hot and warm working sets stay at their 1 GiB sizes — the paper's
// premise is that footprints grow while working sets do not — so every
// sweep point has identical per-access microarchitectural behavior
// (TLB/LLC hit rates, picker distributions) and ns/op differences isolate
// simulator cost. Footprints at or below 1 GiB use the spec as declared
// (proportional shaping for small points is WithFootprint's job).
func scaleSpec(footprint uint64) workload.Spec {
	spec := workload.ScaleSynthetic()
	var rest uint64
	cold := -1
	for i := range spec.Segments {
		if spec.Segments[i].Name == "cold" {
			cold = i
		} else {
			rest += spec.Segments[i].Bytes
		}
	}
	if cold >= 0 && footprint > rest+spec.Segments[cold].Bytes {
		spec.Segments[cold].Bytes = footprint - rest
	}
	return spec
}

// RunScalePoint measures one sweep cell: footprint simulated bytes under the
// Thermostat engine, dense or sparse, with the given scan-shard worker count
// (<= 1 = serial). The profile's Div must be 1 — the footprint is not
// re-divided.
func RunScalePoint(sc Scale, footprint uint64, sparse bool, shardWorkers int) (*ScalePoint, error) {
	if sc.Div != 1 {
		return nil, fmt.Errorf("harness: scale bench needs Div=1, got %d", sc.Div)
	}
	sc.Sparse = sparse
	sc.ShardWorkers = shardWorkers
	spec := scaleSpec(footprint)
	start := time.Now()
	out, err := RunThermostat(spec, sc, 3)
	if err != nil {
		return nil, fmt.Errorf("harness: scale point %s: %w", workload.FormatSize(footprint), err)
	}
	wall := time.Since(start)
	p := &ScalePoint{
		Footprint:    footprint,
		Sparse:       sparse,
		ShardWorkers: shardWorkers,
		Ops:          out.Result.Ops,
		WallNs:       wall.Nanoseconds(),
		StateBytes:   out.Machine.StateBytes() + out.Engine.StateBytes(),
		Regions:      out.Machine.PageTable().RegionCount(),
		Spans:        out.Machine.PageTable().SpanCount(),
	}
	if p.Ops > 0 {
		p.NsPerOp = float64(p.WallNs) / float64(p.Ops)
	}
	p.StatePerGB = float64(p.StateBytes) / (float64(footprint) / float64(1<<30))
	return p, nil
}

// ExtrapolateDense projects a dense point at footprint from measured dense
// points: dense state is one leafRef + radix share per mapped 2MB page, so
// state bytes per GB are constant and total state is linear in footprint;
// ns/op is dominated by the per-tick O(pages) scans, so it is projected
// linearly in footprint from the largest measured point. The result is
// marked Extrapolated.
func ExtrapolateDense(measured []*ScalePoint, footprint uint64) (*ScalePoint, error) {
	var last *ScalePoint
	for _, m := range measured {
		if !m.Sparse && !m.Extrapolated && (last == nil || m.Footprint > last.Footprint) {
			last = m
		}
	}
	if last == nil {
		return nil, fmt.Errorf("harness: no measured dense points to extrapolate from")
	}
	ratio := float64(footprint) / float64(last.Footprint)
	return &ScalePoint{
		Footprint:    footprint,
		Sparse:       false,
		ShardWorkers: last.ShardWorkers,
		NsPerOp:      last.NsPerOp * ratio,
		StateBytes:   uint64(float64(last.StateBytes) * ratio),
		StatePerGB:   last.StatePerGB,
		Extrapolated: true,
	}, nil
}

// ScaleSweep runs the full scaling benchmark: the sparse arm across every
// footprint in footprints, the dense arm up to DenseMaxFootprint with
// larger points extrapolated. shardWorkers applies to the sparse arm (the
// dense arm stays serial — its baseline is the pre-sharding configuration).
func ScaleSweep(sc Scale, footprints []uint64, shardWorkers int) ([]*ScalePoint, error) {
	var points []*ScalePoint
	var denseMeasured []*ScalePoint
	for _, fp := range footprints {
		if fp <= DenseMaxFootprint {
			p, err := RunScalePoint(sc, fp, false, 1)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
			denseMeasured = append(denseMeasured, p)
		} else {
			p, err := ExtrapolateDense(denseMeasured, fp)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
		sp, err := RunScalePoint(sc, fp, true, shardWorkers)
		if err != nil {
			return nil, err
		}
		points = append(points, sp)
	}
	return points, nil
}

// CheckScaleGate asserts the scaling acceptance criteria over a completed
// sweep and describes any violation:
//
//  1. at the largest footprint, sparse state bytes per simulated GB are at
//     most maxStateFrac of the dense baseline's (measured or extrapolated);
//  2. sparse ns/op at the largest footprint is within maxNsOpRatio of the
//     sparse ns/op at the smallest footprint.
func CheckScaleGate(points []*ScalePoint, maxStateFrac, maxNsOpRatio float64) error {
	var smallest, largest *ScalePoint
	var denseAtLargest *ScalePoint
	for _, p := range points {
		if p.Sparse {
			if smallest == nil || p.Footprint < smallest.Footprint {
				smallest = p
			}
			if largest == nil || p.Footprint > largest.Footprint {
				largest = p
			}
		}
	}
	if smallest == nil || largest == nil {
		return fmt.Errorf("harness: sweep has no sparse points")
	}
	for _, p := range points {
		if !p.Sparse && p.Footprint == largest.Footprint {
			denseAtLargest = p
		}
	}
	if denseAtLargest == nil {
		return fmt.Errorf("harness: sweep has no dense baseline at %s",
			workload.FormatSize(largest.Footprint))
	}
	if largest.StatePerGB > maxStateFrac*denseAtLargest.StatePerGB {
		return fmt.Errorf("harness: sparse state %.0f B/GB at %s exceeds %.0f%% of dense %.0f B/GB",
			largest.StatePerGB, workload.FormatSize(largest.Footprint),
			maxStateFrac*100, denseAtLargest.StatePerGB)
	}
	if smallest.NsPerOp > 0 && largest.NsPerOp > maxNsOpRatio*smallest.NsPerOp {
		return fmt.Errorf("harness: sparse %.0f ns/op at %s exceeds %.1fx the %.0f ns/op at %s",
			largest.NsPerOp, workload.FormatSize(largest.Footprint),
			maxNsOpRatio, smallest.NsPerOp, workload.FormatSize(smallest.Footprint))
	}
	return nil
}

// ScaleFootprints is the committed sweep's footprint ladder, 1 GB to 1 TB.
func ScaleFootprints() []uint64 {
	return []uint64{1 << 30, 4 << 30, 16 << 30, 64 << 30, 256 << 30, 1 << 40}
}

// ScaleShardWorkers is the shard-worker count the committed sweep's sparse
// arm runs at (results are identical at any setting; this one is the
// wall-clock configuration the pinned numbers were measured under).
const ScaleShardWorkers = 8

// ScaleTable renders a completed sweep as the repro report table.
func ScaleTable(points []*ScalePoint) *report.Table {
	t := report.NewTable("Scaling sweep: simulator cost vs simulated footprint",
		"footprint", "table", "shards", "ops", "ns/op",
		"state_bytes", "state_B/GB", "regions", "spans", "measured")
	for _, p := range points {
		kind := "dense"
		if p.Sparse {
			kind = "sparse"
		}
		measured := "yes"
		if p.Extrapolated {
			measured = "extrapolated"
		}
		t.AddF(workload.FormatSize(p.Footprint), kind, p.ShardWorkers, p.Ops,
			fmt.Sprintf("%.0f", p.NsPerOp), p.StateBytes,
			fmt.Sprintf("%.0f", p.StatePerGB), p.Regions, p.Spans, measured)
	}
	return t
}

// The machine the bench builds must expose its state accounting.
var _ interface{ StateBytes() uint64 } = (*sim.Machine)(nil)
