package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"thermostat/internal/telemetry"
)

// TelemetryOptions turns on per-run trace collection for an experiment.
// Every run gets its own telemetry.Collector (traces are recorded in
// virtual time, so they are deterministic regardless of Options.Workers)
// and exports one Chrome-trace file and one JSONL metrics file named after
// the run's label — distinct per task, so concurrent pool workers never
// share a file.
type TelemetryOptions struct {
	// Dir receives the trace files (default "results/traces"); it is
	// created if missing.
	Dir string
	// MaxEvents and MaxSnapshots override the collector bounds
	// (0 = telemetry defaults).
	MaxEvents    int
	MaxSnapshots int
}

func (t *TelemetryOptions) dir() string {
	if t.Dir != "" {
		return t.Dir
	}
	return filepath.Join("results", "traces")
}

// NewCollector builds a collector with this option set's bounds.
func (t *TelemetryOptions) NewCollector() *telemetry.Collector {
	return telemetry.NewCollectorWith(telemetry.Config{
		MaxEvents: t.MaxEvents, MaxSnapshots: t.MaxSnapshots,
	})
}

// sanitizeLabel maps a run label to a safe file stem.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, label)
}

// Export writes c's Chrome trace and JSONL metrics under the configured
// directory and returns the two paths. Distinct labels yield distinct files,
// so exports are safe under pool parallelism.
func (t *TelemetryOptions) Export(label string, c *telemetry.Collector) (tracePath, metricsPath string, err error) {
	dir := t.dir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", fmt.Errorf("harness: telemetry dir: %w", err)
	}
	stem := sanitizeLabel(label)
	tracePath = filepath.Join(dir, stem+".trace.json")
	metricsPath = filepath.Join(dir, stem+".metrics.jsonl")

	tf, err := os.Create(tracePath)
	if err != nil {
		return "", "", err
	}
	if err := c.WriteChromeTrace(tf); err != nil {
		tf.Close()
		return "", "", err
	}
	if err := tf.Close(); err != nil {
		return "", "", err
	}

	mf, err := os.Create(metricsPath)
	if err != nil {
		return "", "", err
	}
	if err := c.WriteJSONL(mf); err != nil {
		mf.Close()
		return "", "", err
	}
	return tracePath, metricsPath, mf.Close()
}
