package harness

import (
	"strings"
	"testing"

	"thermostat/internal/stats"
)

func TestTable1TableRendering(t *testing.T) {
	t.Parallel()
	rows := []Table1Row{{App: "redis", GainPct: 12.3}, {App: "web-search", GainPct: 0.4}}
	out := Table1Table(rows).String()
	for _, want := range []string{"Table 1", "redis", "12.300", "web-search"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable2TableRendering(t *testing.T) {
	t.Parallel()
	rows := []Table2Row{{App: "cassandra", RSSGB: 8.01, FileGB: 4.02}}
	out := Table2Table(rows).String()
	if !strings.Contains(out, "cassandra") || !strings.Contains(out, "8.010") {
		t.Errorf("bad render:\n%s", out)
	}
}

func TestTable3TableRendering(t *testing.T) {
	t.Parallel()
	rows := []Table3Row{{App: "redis", MigrationMBps: 11.3, FalseClassMBps: 10}}
	out := Table3Table(rows).String()
	if !strings.Contains(out, "11.300") || !strings.Contains(out, "10.000") {
		t.Errorf("bad render:\n%s", out)
	}
}

func TestTable4TableRendering(t *testing.T) {
	t.Parallel()
	rows := []Table4Row{{App: "cassandra", SavingsPct: [3]float64{27, 30, 32}}}
	out := Table4Table(rows).String()
	for _, want := range []string{"27%", "30%", "32%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFig11TableRendering(t *testing.T) {
	t.Parallel()
	rows := []Fig11Row{
		{App: "mysql-tpcc", SlowdownPct: 3, ColdFraction: 0.45, Measured: 0.013},
		{App: "mysql-tpcc", SlowdownPct: 10, ColdFraction: 0.46, Measured: 0.02},
	}
	out := Fig11Table(rows).String()
	if !strings.Contains(out, "45.000") || !strings.Contains(out, "1.300") {
		t.Errorf("bad render:\n%s", out)
	}
}

func TestFig3TableRendering(t *testing.T) {
	t.Parallel()
	s := stats.NewSeries("slow_rate_redis")
	s.Append(2e9, 29000)
	series := []Fig3Series{{App: "redis", Rate: s, MeanPostWarmup: 29000, TargetRate: 30000}}
	out := Fig3Table(series).String()
	if !strings.Contains(out, "target 30000/s") || !strings.Contains(out, "2.9e+04") {
		t.Errorf("bad render:\n%s", out)
	}
	// Empty input doesn't panic.
	if Fig3Table(nil).String() == "" {
		t.Error("empty Fig3 table should still render a title")
	}
}

func TestColdDataFigureRendering(t *testing.T) {
	t.Parallel()
	mk := func(name string, v float64) *stats.Series {
		s := stats.NewSeries(name)
		s.Append(1e9, v)
		return s
	}
	f := ColdDataFigure{
		App: "cassandra", Slowdown: 0.02, ColdFraction: 0.45,
		Cold2M: mk("2MB_cold_GB", 3.5), Cold4K: mk("4KB_cold_GB", 0.2),
		Hot2M: mk("2MB_hot_GB", 4), Hot4K: mk("4KB_hot_GB", 0),
	}
	out := f.Table().String()
	for _, want := range []string{"cassandra", "2.0%", "45%", "2MB_cold_GB"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestAblationTableRendering(t *testing.T) {
	t.Parallel()
	rows := []AblationRow{{Config: "K=50", ColdFraction: 0.4, Slowdown: 0.02, PoisonFaults: 123, Promotions: 4}}
	out := ablationTable("Ablation: test", rows).String()
	for _, want := range []string{"K=50", "40.000", "123"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}
