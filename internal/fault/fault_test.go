package fault

import (
	"errors"
	"strings"
	"testing"

	"thermostat/internal/addr"
)

func TestKindString(t *testing.T) {
	if NotPresent.String() != "not-present" || Poison.String() != "poison" {
		t.Fatal("kind names wrong")
	}
	if Kind(42).String() != "kind42" {
		t.Fatal("unknown kind name wrong")
	}
}

func TestRegistryDispatch(t *testing.T) {
	r := NewRegistry()
	called := 0
	r.Register(Poison, HandlerFunc(func(f Fault) (int64, error) {
		called++
		if f.Virt != addr.Virt4K(7) || !f.Write {
			t.Errorf("fault fields lost: %+v", f)
		}
		return 123, nil
	}))
	lat, err := r.Dispatch(Fault{Kind: Poison, Virt: addr.Virt4K(7), Write: true})
	if err != nil || lat != 123 || called != 1 {
		t.Fatalf("dispatch: lat=%d err=%v called=%d", lat, err, called)
	}
}

func TestRegistryUnhandled(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Dispatch(Fault{Kind: NotPresent}); err == nil {
		t.Fatal("unhandled kind should error")
	}
}

func TestRegistryReplace(t *testing.T) {
	r := NewRegistry()
	r.Register(Poison, HandlerFunc(func(Fault) (int64, error) { return 1, nil }))
	r.Register(Poison, HandlerFunc(func(Fault) (int64, error) { return 2, nil }))
	lat, _ := r.Dispatch(Fault{Kind: Poison})
	if lat != 2 {
		t.Fatalf("replacement not effective: %d", lat)
	}
}

func TestRegisterNilRemovesHandler(t *testing.T) {
	r := NewRegistry()
	r.Register(Poison, HandlerFunc(func(Fault) (int64, error) { return 1, nil }))
	r.Register(Poison, nil)
	// Must degrade to the unhandled-kind error, not panic through a nil
	// interface value.
	if _, err := r.Dispatch(Fault{Kind: Poison}); err == nil {
		t.Fatal("deregistered kind should report unhandled")
	}
	// Deregistering a kind that was never registered is a no-op.
	r.Register(NotPresent, nil)
	if _, err := r.Dispatch(Fault{Kind: NotPresent}); err == nil {
		t.Fatal("never-registered kind should report unhandled")
	}
}

func TestUnhandledErrorNamesKindAndAddress(t *testing.T) {
	r := NewRegistry()
	_, err := r.Dispatch(Fault{Kind: Poison, Virt: addr.Virt4K(3)})
	if err == nil {
		t.Fatal("unhandled kind should error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "poison") {
		t.Errorf("error %q does not name the fault kind", msg)
	}
	if !strings.Contains(msg, addr.Virt4K(3).String()) {
		t.Errorf("error %q does not name the faulting address", msg)
	}
}

func TestDispatchPreservesAllFields(t *testing.T) {
	r := NewRegistry()
	want := Fault{Kind: Poison, Virt: addr.Virt4K(9), Write: true, VPID: 5, TimeNs: 1234}
	var got Fault
	r.Register(Poison, HandlerFunc(func(f Fault) (int64, error) {
		got = f
		return 0, nil
	}))
	if _, err := r.Dispatch(want); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("handler saw %+v, want %+v", got, want)
	}
}

func TestHandlerError(t *testing.T) {
	r := NewRegistry()
	sentinel := errors.New("boom")
	r.Register(NotPresent, HandlerFunc(func(Fault) (int64, error) { return 0, sentinel }))
	if _, err := r.Dispatch(Fault{Kind: NotPresent}); !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
}
