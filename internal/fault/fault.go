// Package fault defines the simulated MMU's fault taxonomy and a dispatch
// registry, the analogue of the kernel's page-fault entry point that
// BadgerTrap hooks to intercept reserved-bit protection faults.
package fault

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/tlb"
)

// Kind classifies a fault.
type Kind int

// Fault kinds.
const (
	// NotPresent is a true page fault: no translation exists.
	NotPresent Kind = iota
	// Poison is a reserved-bit protection fault from a poisoned PTE —
	// the signal BadgerTrap intercepts.
	Poison
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case NotPresent:
		return "not-present"
	case Poison:
		return "poison"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// Fault describes one faulting access.
type Fault struct {
	Kind  Kind
	Virt  addr.Virt
	Write bool
	VPID  tlb.VPID
	// TimeNs is the virtual time at which the fault was raised.
	TimeNs int64
}

// Handler services faults of one kind. It returns the handling latency in
// nanoseconds. Returning an error aborts the faulting access (the simulator
// treats it as a fatal workload error, as an unhandled fault would be).
type Handler interface {
	Handle(f Fault) (latencyNs int64, err error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(f Fault) (int64, error)

// Handle implements Handler.
func (fn HandlerFunc) Handle(f Fault) (int64, error) { return fn(f) }

// Registry dispatches faults to per-kind handlers.
type Registry struct {
	handlers map[Kind]Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{handlers: make(map[Kind]Handler)}
}

// Register installs h for kind, replacing any previous handler. A nil h
// removes the kind's handler, so subsequent faults of that kind report
// "unhandled" instead of panicking through a nil interface.
func (r *Registry) Register(kind Kind, h Handler) {
	if h == nil {
		delete(r.handlers, kind)
		return
	}
	r.handlers[kind] = h
}

// Dispatch routes f to its handler. An unregistered kind is an error — the
// simulated kernel would oops.
func (r *Registry) Dispatch(f Fault) (int64, error) {
	h, ok := r.handlers[f.Kind]
	if !ok {
		return 0, fmt.Errorf("fault: unhandled %s fault at %s", f.Kind, f.Virt)
	}
	return h.Handle(f)
}
